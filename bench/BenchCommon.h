//===- bench/BenchCommon.h - Shared experiment drivers ---------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the paper-reproduction benches: compile+profile
/// the suite once, then score estimators with the paper's protocols —
/// static estimates against each profile averaged, profiles against the
/// aggregate of the others (§3).
///
//===----------------------------------------------------------------------===//

#ifndef BENCH_BENCHCOMMON_H
#define BENCH_BENCHCOMMON_H

#include "estimators/Pipeline.h"
#include "metrics/BranchMiss.h"
#include "metrics/Evaluation.h"
#include "suite/Suite.h"
#include "suite/SuiteRunner.h"
#include "suite/Synthetic.h"
#include "support/Json.h"
#include "support/Prng.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace sest::bench {

/// Prints to stdout (benches are tools; the iostream ban applies to
/// libraries).
inline void out(const std::string &S) { std::fputs(S.c_str(), stdout); }

/// Compile + profile the whole suite, exiting loudly on failure.
inline std::vector<CompiledSuiteProgram> loadSuite() {
  std::vector<CompiledSuiteProgram> Suite = compileAndProfileSuite();
  for (const CompiledSuiteProgram &P : Suite) {
    if (!P.Ok) {
      out("FATAL: " + P.Error + "\n");
      std::exit(1);
    }
  }
  return Suite;
}

/// Average over profiles of a static estimate's score.
inline double
scoreStaticEstimate(const CompiledSuiteProgram &P,
                    const ProgramEstimate &E,
                    const std::function<double(const ProgramEstimate &,
                                               const Profile &)> &Score) {
  return averageOverProfiles(P.Profiles, [&](const Profile &Prof) {
    return Score(E, Prof);
  });
}

/// Leave-one-out profiling score: each profile is predicted by the
/// aggregate of the others.
inline double scoreProfilingEstimate(
    const CompiledSuiteProgram &P,
    const std::function<double(const ProgramEstimate &, const Profile &)>
        &Score) {
  double Sum = 0;
  for (size_t I = 0; I < P.Profiles.size(); ++I) {
    Profile Agg = aggregateExcept(P.Profiles, I);
    ProgramEstimate E = estimateFromProfile(Agg, *P.CG);
    Sum += Score(E, P.Profiles[I]);
  }
  return Sum / static_cast<double>(P.Profiles.size());
}

/// Static estimate for a program under \p Options.
inline ProgramEstimate estimateWith(const CompiledSuiteProgram &P,
                                    const EstimatorOptions &Options) {
  return estimateProgram(P.unit(), *P.Cfgs, *P.CG, Options);
}

/// Percent string with one decimal.
inline std::string pct(double Fraction) { return formatPercent(Fraction); }

//===----------------------------------------------------------------------===//
// Synthetic request workload — shared by the service-shaped benches.
//
// bench_service and bench_pipeline_latency both model the stream of
// requests an analysis service sees: a pool of genprog-shaped programs
// whose popularity follows a zipfian rank-frequency law (a few hot
// sources dominate, a long tail recurs rarely), crossed with a weighted
// mix of service operations. One helper so both benches — and any
// future replay tool — agree on what "the workload" means.
//===----------------------------------------------------------------------===//

/// Zipfian rank sampler over [0, Count): rank R is drawn with
/// probability proportional to 1/(R+1)^Exponent. Deterministic for a
/// fixed (Count, Exponent, Seed).
class ZipfSampler {
public:
  ZipfSampler(size_t Count, double Exponent, uint64_t Seed) : Rng(Seed) {
    Cdf.reserve(Count);
    double Sum = 0.0;
    for (size_t I = 0; I < Count; ++I) {
      Sum += 1.0 / std::pow(static_cast<double>(I + 1), Exponent);
      Cdf.push_back(Sum);
    }
    for (double &C : Cdf)
      C /= Sum;
  }

  size_t next() {
    double U = Rng.nextDouble();
    return static_cast<size_t>(
        std::lower_bound(Cdf.begin(), Cdf.end(), U) - Cdf.begin());
  }

private:
  std::vector<double> Cdf;
  Prng Rng;
};

/// One service operation with its relative weight in the request mix.
struct RequestMixEntry {
  const char *Op;
  unsigned Weight;
};

/// The default op mix: mostly estimates (the service's reason to
/// exist), a fifth cheap parses, the rest full optimizer plans and
/// interpreter-backed reports.
inline const std::vector<RequestMixEntry> &defaultRequestMix() {
  static const std::vector<RequestMixEntry> Mix = {
      {"estimate", 55}, {"parse", 20}, {"optimize", 15}, {"report", 10}};
  return Mix;
}

/// One sampled request: which pool program, which operation, and a
/// small variant index the bench maps to an options/passes/seed flavor
/// (so identical (program, op) pairs still exercise distinct cache
/// keys).
struct SampledRequest {
  size_t Program;
  const char *Op;
  unsigned Variant;
};

/// Deterministic request stream: zipfian program popularity crossed
/// with a weighted op mix. Same (pool size, mix, seed) — same stream,
/// on every platform.
class RequestStream {
public:
  RequestStream(size_t PoolSize, std::vector<RequestMixEntry> MixIn,
                uint64_t Seed, double ZipfExponent = 1.0)
      : Programs(PoolSize, ZipfExponent, Seed),
        Mix(std::move(MixIn)), Rng(Seed ^ 0x9e3779b97f4a7c15ULL) {
    for (const RequestMixEntry &E : Mix)
      TotalWeight += E.Weight;
  }

  SampledRequest next() {
    SampledRequest R;
    R.Program = Programs.next();
    uint64_t W = Rng.nextBelow(TotalWeight);
    R.Op = Mix.back().Op;
    for (const RequestMixEntry &E : Mix) {
      if (W < E.Weight) {
        R.Op = E.Op;
        break;
      }
      W -= E.Weight;
    }
    R.Variant = static_cast<unsigned>(Rng.nextBelow(4));
    return R;
  }

private:
  ZipfSampler Programs;
  std::vector<RequestMixEntry> Mix;
  Prng Rng;
  uint64_t TotalWeight = 0;
};

/// Knobs for the synthetic source pool backing a workload.
struct WorkloadConfig {
  size_t PoolSize = 48;     ///< distinct programs
  size_t TargetBlocks = 80; ///< CFG blocks per program
  uint64_t Seed = 1;
};

/// Pool of genprog-shaped sources cycling the five generator shapes
/// (loop nests, switch dispatch, goto cycles, wide calls, mixed) with
/// per-program seeds, so the workload stresses every solver idiom.
inline std::vector<std::string>
syntheticSourcePool(const WorkloadConfig &C) {
  static const SyntheticShape Shapes[] = {
      SyntheticShape::LoopNest, SyntheticShape::SwitchDispatch,
      SyntheticShape::GotoCycles, SyntheticShape::WideCalls,
      SyntheticShape::Mixed};
  std::vector<std::string> Pool;
  Pool.reserve(C.PoolSize);
  for (size_t I = 0; I < C.PoolSize; ++I) {
    SyntheticConfig SC;
    SC.Shape = Shapes[I % (sizeof(Shapes) / sizeof(Shapes[0]))];
    SC.TargetBlocks = C.TargetBlocks;
    SC.Seed = C.Seed + I;
    Pool.push_back(generateSyntheticSource(SC));
  }
  return Pool;
}

/// Machine-readable bench output. Construct with argc/argv; when the
/// user passed `--json FILE`, every add() is collected and finish()
/// writes one JSON document:
///
///   {"schema": "sest-bench-report/1", "bench": "<name>",
///    "results": [{"name": ..., "value": ...} | {"name": ..., "text": ...}]}
///
/// Without --json the reporter is inert and add()/finish() cost nothing,
/// so benches call it unconditionally alongside their tables.
class BenchReport {
public:
  BenchReport(std::string_view BenchName, int argc, char **argv) {
    for (int I = 1; I + 1 < argc; ++I)
      if (std::string_view(argv[I]) == "--json")
        Path = argv[I + 1];
    if (Path.empty())
      return;
    W.beginObject();
    W.member("schema", "sest-bench-report/1");
    W.member("bench", BenchName);
    W.key("results");
    W.beginArray();
  }

  bool enabled() const { return !Path.empty(); }

  /// Records one named numeric result (a table cell, an average, ...).
  void add(std::string_view Name, double Value) {
    if (!enabled())
      return;
    W.beginObject();
    W.member("name", Name);
    W.member("value", Value);
    W.endObject();
  }

  /// Records one named string result.
  void add(std::string_view Name, std::string_view Text) {
    if (!enabled())
      return;
    W.beginObject();
    W.member("name", Name);
    W.member("text", Text);
    W.endObject();
  }

  /// Closes the document and writes it. Returns false only when a file
  /// was requested and could not be written.
  bool finish() {
    if (!enabled())
      return true;
    W.endArray();
    W.endObject();
    std::ofstream OutFile(Path);
    if (!OutFile) {
      out("bench: cannot write '" + Path + "'\n");
      return false;
    }
    OutFile << W.str();
    out("bench results written to " + Path + "\n");
    Path.clear();
    return true;
  }

private:
  std::string Path;
  JsonWriter W;
};

} // namespace sest::bench

#endif // BENCH_BENCHCOMMON_H

//===- bench/BenchCommon.h - Shared experiment drivers ---------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the paper-reproduction benches: compile+profile
/// the suite once, then score estimators with the paper's protocols —
/// static estimates against each profile averaged, profiles against the
/// aggregate of the others (§3).
///
//===----------------------------------------------------------------------===//

#ifndef BENCH_BENCHCOMMON_H
#define BENCH_BENCHCOMMON_H

#include "estimators/Pipeline.h"
#include "metrics/BranchMiss.h"
#include "metrics/Evaluation.h"
#include "suite/Suite.h"
#include "suite/SuiteRunner.h"
#include "support/Json.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace sest::bench {

/// Prints to stdout (benches are tools; the iostream ban applies to
/// libraries).
inline void out(const std::string &S) { std::fputs(S.c_str(), stdout); }

/// Compile + profile the whole suite, exiting loudly on failure.
inline std::vector<CompiledSuiteProgram> loadSuite() {
  std::vector<CompiledSuiteProgram> Suite = compileAndProfileSuite();
  for (const CompiledSuiteProgram &P : Suite) {
    if (!P.Ok) {
      out("FATAL: " + P.Error + "\n");
      std::exit(1);
    }
  }
  return Suite;
}

/// Average over profiles of a static estimate's score.
inline double
scoreStaticEstimate(const CompiledSuiteProgram &P,
                    const ProgramEstimate &E,
                    const std::function<double(const ProgramEstimate &,
                                               const Profile &)> &Score) {
  return averageOverProfiles(P.Profiles, [&](const Profile &Prof) {
    return Score(E, Prof);
  });
}

/// Leave-one-out profiling score: each profile is predicted by the
/// aggregate of the others.
inline double scoreProfilingEstimate(
    const CompiledSuiteProgram &P,
    const std::function<double(const ProgramEstimate &, const Profile &)>
        &Score) {
  double Sum = 0;
  for (size_t I = 0; I < P.Profiles.size(); ++I) {
    Profile Agg = aggregateExcept(P.Profiles, I);
    ProgramEstimate E = estimateFromProfile(Agg, *P.CG);
    Sum += Score(E, P.Profiles[I]);
  }
  return Sum / static_cast<double>(P.Profiles.size());
}

/// Static estimate for a program under \p Options.
inline ProgramEstimate estimateWith(const CompiledSuiteProgram &P,
                                    const EstimatorOptions &Options) {
  return estimateProgram(P.unit(), *P.Cfgs, *P.CG, Options);
}

/// Percent string with one decimal.
inline std::string pct(double Fraction) { return formatPercent(Fraction); }

/// Machine-readable bench output. Construct with argc/argv; when the
/// user passed `--json FILE`, every add() is collected and finish()
/// writes one JSON document:
///
///   {"schema": "sest-bench-report/1", "bench": "<name>",
///    "results": [{"name": ..., "value": ...} | {"name": ..., "text": ...}]}
///
/// Without --json the reporter is inert and add()/finish() cost nothing,
/// so benches call it unconditionally alongside their tables.
class BenchReport {
public:
  BenchReport(std::string_view BenchName, int argc, char **argv) {
    for (int I = 1; I + 1 < argc; ++I)
      if (std::string_view(argv[I]) == "--json")
        Path = argv[I + 1];
    if (Path.empty())
      return;
    W.beginObject();
    W.member("schema", "sest-bench-report/1");
    W.member("bench", BenchName);
    W.key("results");
    W.beginArray();
  }

  bool enabled() const { return !Path.empty(); }

  /// Records one named numeric result (a table cell, an average, ...).
  void add(std::string_view Name, double Value) {
    if (!enabled())
      return;
    W.beginObject();
    W.member("name", Name);
    W.member("value", Value);
    W.endObject();
  }

  /// Records one named string result.
  void add(std::string_view Name, std::string_view Text) {
    if (!enabled())
      return;
    W.beginObject();
    W.member("name", Name);
    W.member("text", Text);
    W.endObject();
  }

  /// Closes the document and writes it. Returns false only when a file
  /// was requested and could not be written.
  bool finish() {
    if (!enabled())
      return true;
    W.endArray();
    W.endObject();
    std::ofstream OutFile(Path);
    if (!OutFile) {
      out("bench: cannot write '" + Path + "'\n");
      return false;
    }
    OutFile << W.str();
    out("bench results written to " + Path + "\n");
    Path.clear();
    return true;
  }

private:
  std::string Path;
  JsonWriter W;
};

} // namespace sest::bench

#endif // BENCH_BENCHCOMMON_H

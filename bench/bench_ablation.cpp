//===- bench/bench_ablation.cpp - Ablations over design choices ------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation studies for the design choices the paper calls out:
///
///  - loop iteration count (the paper picked 5, "near the average of the
///    observed values");
///  - the predicted-arm probability (the paper picked 0.8 and found "the
///    exact value chosen did not have a significant effect");
///  - switch-arm weighting (uniform vs. case-label weighted — "the
///    latter performed slightly better");
///  - individual branch heuristics (drop-one miss rates);
///  - the SCC solution ceiling of the Markov call-graph repair ("after
///    some experimentation, we chose a ceiling of 5").
///
/// Each section reports the suite-average score of the affected metric.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace sest;
using namespace sest::bench;

namespace {

double averageIntraScore(const std::vector<CompiledSuiteProgram> &Suite,
                         const EstimatorOptions &Options, double Cutoff) {
  double Sum = 0;
  for (const CompiledSuiteProgram &P : Suite) {
    std::vector<size_t> Ids = scoredFunctionIds(P.unit());
    ProgramEstimate E = estimateWith(P, Options);
    Sum += scoreStaticEstimate(
        P, E, [&](const ProgramEstimate &Est, const Profile &Prof) {
          return intraProceduralScore(Est, Prof, Ids, Cutoff);
        });
  }
  return Sum / static_cast<double>(Suite.size());
}

double averageFunctionScore(const std::vector<CompiledSuiteProgram> &Suite,
                            const EstimatorOptions &Options,
                            double Cutoff) {
  double Sum = 0;
  for (const CompiledSuiteProgram &P : Suite) {
    std::vector<size_t> Ids = scoredFunctionIds(P.unit());
    ProgramEstimate E = estimateWith(P, Options);
    Sum += scoreStaticEstimate(
        P, E, [&](const ProgramEstimate &Est, const Profile &Prof) {
          return functionInvocationScore(Est, Prof, Ids, Cutoff);
        });
  }
  return Sum / static_cast<double>(Suite.size());
}

double averageMissRate(const std::vector<CompiledSuiteProgram> &Suite,
                       const BranchPredictorConfig &Config) {
  double Sum = 0;
  for (const CompiledSuiteProgram &P : Suite) {
    BranchPredictor BP(Config);
    auto Preds = predictAllFunctions(P.unit(), *P.Cfgs, BP);
    BranchMissCounts Total;
    for (const Profile &Prof : P.Profiles)
      Total += branchMissRate(*P.Cfgs, Preds, Prof, BranchOracle::Static);
    Sum += Total.rate();
  }
  return Sum / static_cast<double>(Suite.size());
}

} // namespace

int main() {
  std::vector<CompiledSuiteProgram> Suite = loadSuite();

  // --- Loop iteration count sweep ---
  out("== Ablation A: assumed loop iteration count (intra score @5%) "
      "==\n\n");
  {
    TextTable T;
    T.setHeader({"Loop count", "loop est.", "smart est."});
    for (double L : {2.0, 3.0, 5.0, 8.0, 16.0}) {
      EstimatorOptions LoopOpt;
      LoopOpt.Intra = IntraEstimatorKind::Loop;
      LoopOpt.setLoopIterations(L);
      EstimatorOptions SmartOpt;
      SmartOpt.Intra = IntraEstimatorKind::Smart;
      SmartOpt.setLoopIterations(L);
      T.addRow({formatDouble(L, 0),
                pct(averageIntraScore(Suite, LoopOpt, 0.05)),
                pct(averageIntraScore(Suite, SmartOpt, 0.05))});
    }
    out(T.str());
    out("(paper: 5, near the observed average, is a reasonable choice)\n");
  }

  // --- Predicted-arm probability sweep ---
  out("\n== Ablation B: predicted-arm probability (intra score @5%, "
      "branch miss) ==\n\n");
  {
    TextTable T;
    T.setHeader({"Prob", "smart intra", "markov intra"});
    for (double Prob : {0.6, 0.7, 0.8, 0.9, 0.95}) {
      EstimatorOptions Smart;
      Smart.Intra = IntraEstimatorKind::Smart;
      Smart.Branch.TakenProbability = Prob;
      EstimatorOptions Markov;
      Markov.Intra = IntraEstimatorKind::Markov;
      Markov.Branch.TakenProbability = Prob;
      T.addRow({formatDouble(Prob, 2),
                pct(averageIntraScore(Suite, Smart, 0.05)),
                pct(averageIntraScore(Suite, Markov, 0.05))});
    }
    out(T.str());
    out("(paper: \"the exact value chosen did not have a significant "
        "effect\")\n");
  }

  // --- Switch weighting ---
  out("\n== Ablation C: switch-arm weighting (intra score @5%) ==\n\n");
  {
    TextTable T;
    T.setHeader({"Strategy", "smart intra"});
    for (auto [Name, Mode] :
         {std::pair<const char *, SwitchWeighting>{
              "uniform", SwitchWeighting::Uniform},
          {"case-label-weighted", SwitchWeighting::CaseLabelWeighted}}) {
      EstimatorOptions Options;
      Options.Intra = IntraEstimatorKind::Smart;
      Options.Branch.SwitchMode = Mode;
      T.addRow({Name, pct(averageIntraScore(Suite, Options, 0.05))});
    }
    out(T.str());
    out("(paper: label weighting \"performed slightly better, although "
        "switches did not represent a large enough fraction of dynamic "
        "branches ... to have much effect\")\n");
  }

  // --- Drop-one heuristic ablation (branch miss rates) ---
  out("\n== Ablation D: branch heuristics, drop-one (static miss rate) "
      "==\n\n");
  {
    TextTable T;
    T.setHeader({"Configuration", "Miss rate"});
    BranchPredictorConfig Full;
    T.addRow({"all heuristics", pct(averageMissRate(Suite, Full))});

    auto DropOne = [&](const char *Name, auto Mutate) {
      BranchPredictorConfig C;
      Mutate(C);
      T.addRow({Name, pct(averageMissRate(Suite, C))});
    };
    DropOne("without loop", [](BranchPredictorConfig &C) {
      C.UseLoopHeuristic = false;
    });
    DropOne("without pointer", [](BranchPredictorConfig &C) {
      C.UsePointerHeuristic = false;
    });
    DropOne("without opcode", [](BranchPredictorConfig &C) {
      C.UseOpcodeHeuristic = false;
    });
    DropOne("without error", [](BranchPredictorConfig &C) {
      C.UseErrorHeuristic = false;
    });
    DropOne("without and", [](BranchPredictorConfig &C) {
      C.UseAndHeuristic = false;
    });
    DropOne("without store", [](BranchPredictorConfig &C) {
      C.UseStoreHeuristic = false;
    });
    BranchPredictorConfig None;
    None.UseLoopHeuristic = false;
    None.UsePointerHeuristic = false;
    None.UseOpcodeHeuristic = false;
    None.UseErrorHeuristic = false;
    None.UseAndHeuristic = false;
    None.UseStoreHeuristic = false;
    T.addRow({"none (always-taken)", pct(averageMissRate(Suite, None))});
    out(T.str());
  }

  // --- Probability-generating predictors (the paper's §5.1 open
  // question) ---
  out("\n== Ablation F: probability modes for the Markov-intra model "
      "(intra score @5%) ==\n\n");
  {
    TextTable T;
    T.setHeader({"Mode", "markov intra", "smart intra"});
    for (auto [Name, Mode] :
         {std::pair<const char *, ProbabilityMode>{
              "fixed-0.8 (paper)", ProbabilityMode::Fixed},
          {"per-heuristic", ProbabilityMode::PerHeuristic},
          {"dempster-shafer", ProbabilityMode::DempsterShafer}}) {
      EstimatorOptions Markov;
      Markov.Intra = IntraEstimatorKind::Markov;
      Markov.Branch.ProbMode = Mode;
      EstimatorOptions Smart;
      Smart.Intra = IntraEstimatorKind::Smart;
      Smart.Branch.ProbMode = Mode;
      T.addRow({Name, pct(averageIntraScore(Suite, Markov, 0.05)),
                pct(averageIntraScore(Suite, Smart, 0.05))});
    }
    out(T.str());
    out("(paper: \"It is an open question whether static branch "
        "prediction can be accurate enough to make good use of the "
        "intra-procedural Markov model (for example, by using a static "
        "predictor that generates probabilities directly...)\")\n");
  }

  // --- Constant loop bounds ---
  out("\n== Ablation G: constant loop-bound detection (intra score @5%) "
      "==\n\n");
  {
    TextTable T;
    T.setHeader({"Counted loops", "smart intra", "markov intra"});
    for (bool Use : {false, true}) {
      EstimatorOptions Smart;
      Smart.Intra = IntraEstimatorKind::Smart;
      Smart.Branch.UseConstantLoopBounds = Use;
      EstimatorOptions Markov;
      Markov.Intra = IntraEstimatorKind::Markov;
      Markov.Branch.UseConstantLoopBounds = Use;
      T.addRow({Use ? "exact trip counts" : "fixed count of 5",
                pct(averageIntraScore(Suite, Smart, 0.05)),
                pct(averageIntraScore(Suite, Markov, 0.05))});
    }
    out(T.str());
    out("(paper: \"In the numerical category, it is often possible to "
        "estimate the iteration counts of loops accurately\")\n");
  }

  // --- Cutoff-width sweep ---
  out("\n== Ablation I: weight-matching score vs. cutoff width ==\n\n");
  {
    // Paper §3: "Often scores are higher for wider cutoffs, but this is
    // by no means universal."
    TextTable T;
    T.setHeader({"Cutoff", "smart intra", "markov functions",
                 "markov call sites"});
    for (double Cutoff : {0.05, 0.10, 0.25, 0.50}) {
      EstimatorOptions Options; // smart intra + markov inter
      double Intra = averageIntraScore(Suite, Options, Cutoff);
      double Fns = averageFunctionScore(Suite, Options, Cutoff);
      double Sites = 0;
      for (const CompiledSuiteProgram &P : Suite) {
        ProgramEstimate E = estimateWith(P, Options);
        Sites += scoreStaticEstimate(
            P, E, [&](const ProgramEstimate &Est, const Profile &Prof) {
              return callSiteScore(Est, Prof, Cutoff);
            });
      }
      Sites /= static_cast<double>(Suite.size());
      T.addRow({formatPercent(Cutoff, 0), pct(Intra), pct(Fns),
                pct(Sites)});
    }
    out(T.str());
  }

  // --- Branch-behavior consistency across inputs (the premise, after
  // Fisher & Freudenberger [7]) ---
  out("\n== Ablation H: branch-direction consistency across inputs "
      "==\n\n");
  {
    // For each program: the fraction of dynamic branch executions whose
    // direction matches the branch's majority direction in a *different*
    // input's profile. High values are the premise that makes both
    // profiling and static prediction work.
    TextTable T;
    T.setHeader({"Program", "Cross-input agreement", "Self agreement"});
    double SumCross = 0, SumSelf = 0;
    for (const CompiledSuiteProgram &P : Suite) {
      BranchPredictor BP;
      auto Preds = predictAllFunctions(P.unit(), *P.Cfgs, BP);
      BranchMissCounts Cross, Self;
      for (size_t I = 0; I < P.Profiles.size(); ++I) {
        Profile Agg = aggregateExcept(P.Profiles, I);
        Cross += branchMissRate(*P.Cfgs, Preds, P.Profiles[I],
                                BranchOracle::Training, &Agg);
        Self += branchMissRate(*P.Cfgs, Preds, P.Profiles[I],
                               BranchOracle::Perfect);
      }
      double CrossAgree = 1.0 - Cross.rate();
      double SelfAgree = 1.0 - Self.rate();
      SumCross += CrossAgree;
      SumSelf += SelfAgree;
      T.addRow({P.Spec->Name, pct(CrossAgree), pct(SelfAgree)});
    }
    T.addRow({"AVERAGE", pct(SumCross / Suite.size()),
              pct(SumSelf / Suite.size())});
    out(T.str());
    out("(Fisher & Freudenberger: \"branches in programs behave "
        "consistently enough that static branch prediction is "
        "feasible\" — cross-input agreement close to self agreement is "
        "that consistency.)\n");
  }

  // --- SCC ceiling sweep ---
  out("\n== Ablation E: Markov call-graph SCC ceiling (function score "
      "@25%) ==\n\n");
  {
    TextTable T;
    T.setHeader({"Ceiling", "markov functions"});
    for (double Ceiling : {2.0, 5.0, 10.0, 50.0}) {
      EstimatorOptions Options;
      Options.Inter = InterEstimatorKind::Markov;
      Options.Inter_.SccCeiling = Ceiling;
      T.addRow({formatDouble(Ceiling, 0),
                pct(averageFunctionScore(Suite, Options, 0.25))});
    }
    out(T.str());
    out("(paper: \"after some experimentation, we chose a ceiling of "
        "5\")\n");
  }
  return 0;
}

//===- bench/bench_analysis_time.cpp - Analysis-cost benchmark -------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark timings backing the paper's cost claim ("We limited
/// our analysis methods to those whose running time was comparable to
/// conventional sequential compiler optimizations", §2): per-program
/// wall time for the frontend (lex+parse+sema), CFG construction, and
/// each estimation pipeline, so the estimators can be compared against
/// the cost of compilation itself.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "lang/Parser.h"

#include <benchmark/benchmark.h>

using namespace sest;

namespace {

const SuiteProgram &programByIndex(int64_t I) {
  return benchmarkSuite()[static_cast<size_t>(I)];
}

void BM_Frontend(benchmark::State &State) {
  const SuiteProgram &P = programByIndex(State.range(0));
  State.SetLabel(P.Name);
  for (auto _ : State) {
    AstContext Ctx;
    DiagnosticEngine Diags;
    bool Ok = parseAndAnalyze(P.Source, Ctx, Diags);
    benchmark::DoNotOptimize(Ok);
  }
}

void BM_CfgBuild(benchmark::State &State) {
  const SuiteProgram &P = programByIndex(State.range(0));
  State.SetLabel(P.Name);
  AstContext Ctx;
  DiagnosticEngine Diags;
  parseAndAnalyze(P.Source, Ctx, Diags);
  for (auto _ : State) {
    CfgModule Cfgs = CfgModule::build(Ctx.unit(), Diags);
    benchmark::DoNotOptimize(Cfgs.all().size());
  }
}

void estimatePipeline(benchmark::State &State, IntraEstimatorKind Intra,
                      InterEstimatorKind Inter) {
  const SuiteProgram &P = programByIndex(State.range(0));
  State.SetLabel(P.Name);
  AstContext Ctx;
  DiagnosticEngine Diags;
  parseAndAnalyze(P.Source, Ctx, Diags);
  CfgModule Cfgs = CfgModule::build(Ctx.unit(), Diags);
  CallGraph CG = CallGraph::build(Ctx.unit(), Cfgs);
  EstimatorOptions Options;
  Options.Intra = Intra;
  Options.Inter = Inter;
  for (auto _ : State) {
    ProgramEstimate E = estimateProgram(Ctx.unit(), Cfgs, CG, Options);
    benchmark::DoNotOptimize(E.FunctionEstimates.data());
  }
}

void BM_EstimateSmartDirect(benchmark::State &State) {
  estimatePipeline(State, IntraEstimatorKind::Smart,
                   InterEstimatorKind::Direct);
}

void BM_EstimateSmartMarkov(benchmark::State &State) {
  estimatePipeline(State, IntraEstimatorKind::Smart,
                   InterEstimatorKind::Markov);
}

void BM_EstimateMarkovMarkov(benchmark::State &State) {
  estimatePipeline(State, IntraEstimatorKind::Markov,
                   InterEstimatorKind::Markov);
}

void registerAll() {
  int64_t N = static_cast<int64_t>(benchmarkSuite().size());
  for (int64_t I = 0; I < N; ++I) {
    benchmark::RegisterBenchmark("frontend", BM_Frontend)->Arg(I);
    benchmark::RegisterBenchmark("cfg_build", BM_CfgBuild)->Arg(I);
    benchmark::RegisterBenchmark("estimate/smart+direct",
                                 BM_EstimateSmartDirect)
        ->Arg(I);
    benchmark::RegisterBenchmark("estimate/smart+markov",
                                 BM_EstimateSmartMarkov)
        ->Arg(I);
    benchmark::RegisterBenchmark("estimate/markov+markov",
                                 BM_EstimateMarkovMarkov)
        ->Arg(I);
  }
}

} // namespace

int main(int argc, char **argv) {
  registerAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

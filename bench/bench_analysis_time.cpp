//===- bench/bench_analysis_time.cpp - Analysis-cost benchmark -------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark timings backing the paper's cost claim ("We limited
/// our analysis methods to those whose running time was comparable to
/// conventional sequential compiler optimizations", §2): per-program
/// wall time for the frontend (lex+parse+sema), CFG construction, and
/// each estimation pipeline, so the estimators can be compared against
/// the cost of compilation itself.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "lang/Parser.h"
#include "suite/Synthetic.h"

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

using namespace sest;

namespace {

const SuiteProgram &programByIndex(int64_t I) {
  return benchmarkSuite()[static_cast<size_t>(I)];
}

void BM_Frontend(benchmark::State &State) {
  const SuiteProgram &P = programByIndex(State.range(0));
  State.SetLabel(P.Name);
  for (auto _ : State) {
    AstContext Ctx;
    DiagnosticEngine Diags;
    bool Ok = parseAndAnalyze(P.Source, Ctx, Diags);
    benchmark::DoNotOptimize(Ok);
  }
}

void BM_CfgBuild(benchmark::State &State) {
  const SuiteProgram &P = programByIndex(State.range(0));
  State.SetLabel(P.Name);
  AstContext Ctx;
  DiagnosticEngine Diags;
  parseAndAnalyze(P.Source, Ctx, Diags);
  for (auto _ : State) {
    CfgModule Cfgs = CfgModule::build(Ctx.unit(), Diags);
    benchmark::DoNotOptimize(Cfgs.all().size());
  }
}

void estimatePipeline(benchmark::State &State, IntraEstimatorKind Intra,
                      InterEstimatorKind Inter) {
  const SuiteProgram &P = programByIndex(State.range(0));
  State.SetLabel(P.Name);
  AstContext Ctx;
  DiagnosticEngine Diags;
  parseAndAnalyze(P.Source, Ctx, Diags);
  CfgModule Cfgs = CfgModule::build(Ctx.unit(), Diags);
  CallGraph CG = CallGraph::build(Ctx.unit(), Cfgs);
  EstimatorOptions Options;
  Options.Intra = Intra;
  Options.Inter = Inter;
  for (auto _ : State) {
    ProgramEstimate E = estimateProgram(Ctx.unit(), Cfgs, CG, Options);
    benchmark::DoNotOptimize(E.FunctionEstimates.data());
  }
}

void BM_EstimateSmartDirect(benchmark::State &State) {
  estimatePipeline(State, IntraEstimatorKind::Smart,
                   InterEstimatorKind::Direct);
}

void BM_EstimateSmartMarkov(benchmark::State &State) {
  estimatePipeline(State, IntraEstimatorKind::Smart,
                   InterEstimatorKind::Markov);
}

void BM_EstimateMarkovMarkov(benchmark::State &State) {
  estimatePipeline(State, IntraEstimatorKind::Markov,
                   InterEstimatorKind::Markov);
}

//===----------------------------------------------------------------------===//
// Solver scaling on generated large CFGs
//===----------------------------------------------------------------------===//

/// One compiled synthetic program per (shape, blocks), built lazily and
/// kept for the process lifetime so the timed region is the solve alone.
struct SyntheticCfg {
  std::unique_ptr<AstContext> Ctx;
  std::unique_ptr<CfgModule> Cfgs;
  const Cfg *Biggest = nullptr;
  FunctionBranchPredictions Predictions;
};

const SyntheticCfg &syntheticCfg(size_t Blocks) {
  static std::map<size_t, SyntheticCfg> Cache;
  auto [It, New] = Cache.try_emplace(Blocks);
  SyntheticCfg &S = It->second;
  if (!New)
    return S;
  // Mixed control flow concentrated in one giant function: serial if
  // chains, loop nests, switch dispatch, and irreducible goto regions —
  // the block mix a large real function would have.
  SyntheticConfig Config;
  Config.Shape = SyntheticShape::Mixed;
  Config.TargetBlocks = Blocks;
  Config.FunctionBlocks = Blocks;
  Config.Seed = 9;
  std::string Source = generateSyntheticSource(Config);
  S.Ctx = std::make_unique<AstContext>();
  DiagnosticEngine Diags;
  if (!parseAndAnalyze(Source, *S.Ctx, Diags))
    std::abort();
  S.Cfgs = std::make_unique<CfgModule>(
      CfgModule::build(S.Ctx->unit(), Diags));
  for (const auto &[F, G] : S.Cfgs->all()) {
    (void)F;
    if (!S.Biggest || G->size() > S.Biggest->size())
      S.Biggest = G;
  }
  BranchPredictor Predictor((BranchPredictorConfig()));
  S.Predictions = Predictor.predictFunction(*S.Biggest);
  return S;
}

void solverBench(benchmark::State &State, MarkovSolverKind Kind) {
  const SyntheticCfg &S = syntheticCfg(static_cast<size_t>(State.range(0)));
  State.SetLabel(std::to_string(S.Biggest->size()) + " blocks");
  MarkovIntraConfig Config;
  Config.Solver = Kind;
  for (auto _ : State) {
    MarkovIntraResult R =
        markovBlockFrequencies(*S.Biggest, Config, &S.Predictions);
    benchmark::DoNotOptimize(R.BlockFrequencies.data());
  }
}

void BM_SolverSparse(benchmark::State &State) {
  solverBench(State, MarkovSolverKind::Sparse);
}

void BM_SolverDense(benchmark::State &State) {
  solverBench(State, MarkovSolverKind::Dense);
}

/// Whole-pipeline wall time on a many-function synthetic program, at
/// several worker counts — the parallel-estimation payoff.
void BM_PipelineJobs(benchmark::State &State) {
  static std::unique_ptr<AstContext> Ctx;
  static std::unique_ptr<CfgModule> Cfgs;
  static std::unique_ptr<CallGraph> CG;
  if (!Ctx) {
    SyntheticConfig Config;
    Config.Shape = SyntheticShape::Mixed;
    Config.TargetBlocks = 4000;
    Config.Seed = 13;
    std::string Source = generateSyntheticSource(Config);
    Ctx = std::make_unique<AstContext>();
    DiagnosticEngine Diags;
    if (!parseAndAnalyze(Source, *Ctx, Diags))
      std::abort();
    Cfgs = std::make_unique<CfgModule>(CfgModule::build(Ctx->unit(), Diags));
    CG = std::make_unique<CallGraph>(CallGraph::build(Ctx->unit(), *Cfgs));
  }
  EstimatorOptions Options;
  Options.Intra = IntraEstimatorKind::Markov;
  Options.Jobs = static_cast<unsigned>(State.range(0));
  State.SetLabel("jobs=" + std::to_string(Options.Jobs));
  for (auto _ : State) {
    ProgramEstimate E = estimateProgram(Ctx->unit(), *Cfgs, *CG, Options);
    benchmark::DoNotOptimize(E.FunctionEstimates.data());
  }
}

void registerAll() {
  int64_t N = static_cast<int64_t>(benchmarkSuite().size());
  for (int64_t I = 0; I < N; ++I) {
    benchmark::RegisterBenchmark("frontend", BM_Frontend)->Arg(I);
    benchmark::RegisterBenchmark("cfg_build", BM_CfgBuild)->Arg(I);
    benchmark::RegisterBenchmark("estimate/smart+direct",
                                 BM_EstimateSmartDirect)
        ->Arg(I);
    benchmark::RegisterBenchmark("estimate/smart+markov",
                                 BM_EstimateSmartMarkov)
        ->Arg(I);
    benchmark::RegisterBenchmark("estimate/markov+markov",
                                 BM_EstimateMarkovMarkov)
        ->Arg(I);
  }
  // Solver scaling: sparse at every size; dense only where O(N^3)
  // stays affordable (at 5k blocks one dense solve takes minutes).
  for (int64_t Blocks : {100, 1000, 5000})
    benchmark::RegisterBenchmark("solver/sparse", BM_SolverSparse)
        ->Arg(Blocks);
  for (int64_t Blocks : {100, 1000})
    benchmark::RegisterBenchmark("solver/dense", BM_SolverDense)
        ->Arg(Blocks);
  for (int64_t Jobs : {1, 4})
    benchmark::RegisterBenchmark("pipeline/estimate_jobs", BM_PipelineJobs)
        ->Arg(Jobs);
}

} // namespace

int main(int argc, char **argv) {
  registerAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

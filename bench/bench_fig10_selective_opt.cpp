//===- bench/bench_fig10_selective_opt.cpp - Fig. 10 ----------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 10: selective optimization of compress. Functions
/// are ranked three ways — by the static Markov estimate of function
/// invocations, by the first profile, and by the aggregated (normalized
/// and summed) results of the remaining profiles — and the top 1..6 and
/// all 16 functions are "optimized" (their simulated per-operation cost
/// halves). Each binary runs on an input different from the ones used
/// for profiling; we report the speedup over the unoptimized program.
///
/// Expected shape: performance rises monotonically with the number of
/// optimized functions; compress is dominated by ~4 of its 16 functions,
/// and the static estimate identifies the top 4 correctly (100% at the
/// 25% cutoff), so its curve is flat after k=4.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "opt/WeightSource.h"

using namespace sest;
using namespace sest::bench;

namespace {

/// Defined functions hot-first under \p W (the same ranking every
/// optimizer pass in src/opt/ consumes).
std::vector<const FunctionDecl *>
rankedFunctions(const CompiledSuiteProgram &P, const opt::WeightSource &W) {
  std::vector<const FunctionDecl *> Fns;
  for (const opt::RankedFunction &R : opt::rankFunctions(P.unit(), W))
    Fns.push_back(R.F);
  return Fns;
}

/// Simulated cycles with the top \p K of \p Ranking optimized.
double cyclesWithTopK(const CompiledSuiteProgram &P,
                      const std::vector<const FunctionDecl *> &Ranking,
                      size_t K, const ProgramInput &EvalInput) {
  InterpOptions Options;
  for (size_t I = 0; I < K && I < Ranking.size(); ++I)
    Options.OptimizedFunctions.insert(Ranking[I]);
  RunResult R = runProgram(P.unit(), *P.Cfgs, EvalInput, Options);
  if (!R.Ok) {
    out("FATAL: " + R.Error + "\n");
    std::exit(1);
  }
  return R.TheProfile.TotalCycles;
}

std::string topNames(const std::vector<const FunctionDecl *> &Ranking,
                     size_t K) {
  std::string S;
  for (size_t I = 0; I < K && I < Ranking.size(); ++I) {
    if (I)
      S += ", ";
    S += Ranking[I]->name();
  }
  return S;
}

} // namespace

int main() {
  out("== Figure 10: speedup from selectively optimizing compress ==\n\n");

  const SuiteProgram *Spec = findSuiteProgram("compress");
  CompiledSuiteProgram P = compileAndProfileProgram(*Spec);
  if (!P.Ok) {
    out("FATAL: " + P.Error + "\n");
    return 1;
  }

  // Orderings. Evaluation runs on the last input; profiles come from the
  // others ("an input set different from the one used for profiling").
  const ProgramInput &EvalInput = Spec->Inputs.back();

  EstimatorOptions Options; // smart intra + Markov inter
  ProgramEstimate Static = estimateWith(P, Options);
  std::vector<const FunctionDecl *> ByEstimate = rankedFunctions(
      P, opt::weightsFromEstimate(P.unit(), *P.Cfgs, Static, Options));

  std::vector<const FunctionDecl *> ByFirstProfile = rankedFunctions(
      P, opt::weightsFromProfile(P.unit(), P.Profiles[0]));

  std::vector<const Profile *> Rest;
  for (size_t I = 1; I + 1 < P.Profiles.size(); ++I)
    Rest.push_back(&P.Profiles[I]);
  Profile Agg = aggregateProfiles(Rest);
  std::vector<const FunctionDecl *> ByAggregate = rankedFunctions(
      P, opt::weightsFromProfile(P.unit(), Agg, "aggregate"));

  double Base = cyclesWithTopK(P, ByEstimate, 0, EvalInput);

  TextTable T;
  T.setHeader({"Optimized", "estimate", "profile", "aggregate"});
  std::vector<size_t> Ks = {0, 1, 2, 3, 4, 5, 6, 16};
  for (size_t K : Ks) {
    double E = cyclesWithTopK(P, ByEstimate, K, EvalInput);
    double F = cyclesWithTopK(P, ByFirstProfile, K, EvalInput);
    double A = cyclesWithTopK(P, ByAggregate, K, EvalInput);
    T.addRow({std::to_string(K), formatDouble(Base / E, 3) + "x",
              formatDouble(Base / F, 3) + "x",
              formatDouble(Base / A, 3) + "x"});
  }
  out(T.str());

  out("\nTop-4 by static estimate: " + topNames(ByEstimate, 4) + "\n");
  out("Top-4 by first profile:   " + topNames(ByFirstProfile, 4) + "\n");
  out("Top-4 by aggregate:       " + topNames(ByAggregate, 4) + "\n");
  out("\nPaper: performance increases monotonically; at the 25% cutoff "
      "(4 of 16 functions) the static estimate identifies the top four "
      "correctly, and optimizing the remaining 12 adds nothing "
      "measurable.\n");
  return 0;
}

//===- bench/bench_fig2_branch_miss.cpp - Fig. 2: branch miss rates --------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 2: the percentage of dynamic branches mispredicted
/// by the smart static predictor, by profiling with alternate inputs
/// (leave-one-out aggregates), and by the perfect static predictor
/// (PSP). Constant-condition branches and switches are excluded, as in
/// the paper.
///
/// Expected shape: the static predictor's miss rate is roughly twice
/// profiling's; PSP lower-bounds both; loop-only numerical programs
/// (alvinn) are near zero for everyone.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace sest;
using namespace sest::bench;

int main() {
  out("== Figure 2: branch miss rates (percent of dynamic branches "
      "mispredicted) ==\n\n");

  std::vector<CompiledSuiteProgram> Suite = loadSuite();

  TextTable T;
  T.setHeader({"Program", "Predictor", "Profiling", "PSP"});
  double SumStatic = 0, SumProf = 0, SumPsp = 0;

  for (const CompiledSuiteProgram &P : Suite) {
    BranchPredictor BP;
    auto Preds = predictAllFunctions(P.unit(), *P.Cfgs, BP);

    // Static and PSP: score against each profile, average the rates.
    BranchMissCounts StaticTotal, PspTotal;
    for (const Profile &Prof : P.Profiles) {
      StaticTotal += branchMissRate(*P.Cfgs, Preds, Prof,
                                    BranchOracle::Static);
      PspTotal += branchMissRate(*P.Cfgs, Preds, Prof,
                                 BranchOracle::Perfect);
    }

    // Profiling: each profile predicted by the aggregate of the others.
    BranchMissCounts ProfTotal;
    for (size_t I = 0; I < P.Profiles.size(); ++I) {
      Profile Agg = aggregateExcept(P.Profiles, I);
      ProfTotal += branchMissRate(*P.Cfgs, Preds, P.Profiles[I],
                                  BranchOracle::Training, &Agg);
    }

    double S = StaticTotal.rate(), F = ProfTotal.rate(),
           G = PspTotal.rate();
    SumStatic += S;
    SumProf += F;
    SumPsp += G;
    T.addRow({P.Spec->Name, pct(S), pct(F), pct(G)});
  }
  double N = static_cast<double>(Suite.size());
  T.addRow({"AVERAGE", pct(SumStatic / N), pct(SumProf / N),
            pct(SumPsp / N)});
  out(T.str());
  out("\nPaper shape: static ~2x profiling miss rate; PSP is the lower "
      "bound intrinsic to any software scheme.\n");
  return 0;
}

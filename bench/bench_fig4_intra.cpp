//===- bench/bench_fig4_intra.cpp - Fig. 4: intra-procedural scores --------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 4: weight-matching scores for estimates of
/// intra-procedural basic-block frequency at the 5% cutoff — the loop
/// heuristic, the smart heuristic, the Markov technique, and profiling
/// with alternate inputs; final column the average across programs.
///
/// Expected shape: essentially all the benefit comes from loop iteration
/// alone; smart adds a little; Markov-intra adds no significant
/// improvement; all are close to profiling.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace sest;
using namespace sest::bench;

int main(int argc, char **argv) {
  out("== Figure 4: intra-procedural weight matching (5% cutoff) ==\n\n");

  const double Cutoff = 0.05;
  BenchReport Report("fig4_intra", argc, argv);
  std::vector<CompiledSuiteProgram> Suite = loadSuite();

  TextTable T;
  T.setHeader({"Program", "loop", "smart", "markov", "profiling"});
  double Sums[4] = {0, 0, 0, 0};

  for (const CompiledSuiteProgram &P : Suite) {
    std::vector<size_t> Ids = scoredFunctionIds(P.unit());
    auto Score = [&](const ProgramEstimate &E, const Profile &Prof) {
      return intraProceduralScore(E, Prof, Ids, Cutoff);
    };

    double Col[4];
    IntraEstimatorKind Kinds[3] = {IntraEstimatorKind::Loop,
                                   IntraEstimatorKind::Smart,
                                   IntraEstimatorKind::Markov};
    for (int K = 0; K < 3; ++K) {
      EstimatorOptions Options;
      Options.Intra = Kinds[K];
      ProgramEstimate E = estimateWith(P, Options);
      Col[K] = scoreStaticEstimate(P, E, Score);
    }
    Col[3] = scoreProfilingEstimate(P, Score);

    for (int K = 0; K < 4; ++K)
      Sums[K] += Col[K];
    T.addRow({P.Spec->Name, pct(Col[0]), pct(Col[1]), pct(Col[2]),
              pct(Col[3])});
    const char *Cols[4] = {"loop", "smart", "markov", "profiling"};
    for (int K = 0; K < 4; ++K)
      Report.add(P.Spec->Name + "." + Cols[K], Col[K]);
  }
  double N = static_cast<double>(Suite.size());
  T.addRow({"AVERAGE", pct(Sums[0] / N), pct(Sums[1] / N),
            pct(Sums[2] / N), pct(Sums[3] / N)});
  out(T.str());
  out("\nPaper shape: loop alone captures most of the benefit; smart and "
      "Markov refine only slightly; the gap to profiling is small.\n");
  Report.add("average.loop", Sums[0] / N);
  Report.add("average.smart", Sums[1] / N);
  Report.add("average.markov", Sums[2] / N);
  Report.add("average.profiling", Sums[3] / N);
  return Report.finish() ? 0 : 1;
}

//===- bench/bench_fig5_functions.cpp - Fig. 5: function invocations -------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 5: weight-matching scores for function-invocation
/// estimates. Part (a): the simple predictors (call-site, direct,
/// all_rec, all_rec2) and profiling at the 25% cutoff. Parts (b) and
/// (c): direct vs. the Markov call-graph model vs. profiling at 10% and
/// 25%. All static estimators are built on the smart intra-procedural
/// estimator, as in the paper.
///
/// Expected shape: all_rec2 slightly best among the simple predictors at
/// 25%; direct nearly as good and more stable; Markov clearly better
/// than direct (paper: ~10 points at both cutoffs, ~80% at 25%).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace sest;
using namespace sest::bench;

namespace {

void runCutoff(const std::vector<CompiledSuiteProgram> &Suite,
               const std::vector<InterEstimatorKind> &Kinds,
               double Cutoff) {
  TextTable T;
  std::vector<std::string> Header = {"Program"};
  for (InterEstimatorKind K : Kinds)
    Header.push_back(interEstimatorName(K));
  Header.push_back("profiling");
  T.setHeader(Header);

  std::vector<double> Sums(Kinds.size() + 1, 0.0);
  for (const CompiledSuiteProgram &P : Suite) {
    std::vector<size_t> Ids = scoredFunctionIds(P.unit());
    auto Score = [&](const ProgramEstimate &E, const Profile &Prof) {
      return functionInvocationScore(E, Prof, Ids, Cutoff);
    };

    std::vector<std::string> Row = {P.Spec->Name};
    for (size_t K = 0; K < Kinds.size(); ++K) {
      EstimatorOptions Options;
      Options.Intra = IntraEstimatorKind::Smart;
      Options.Inter = Kinds[K];
      double S = scoreStaticEstimate(P, estimateWith(P, Options), Score);
      Sums[K] += S;
      Row.push_back(pct(S));
    }
    double Prof = scoreProfilingEstimate(P, Score);
    Sums.back() += Prof;
    Row.push_back(pct(Prof));
    T.addRow(Row);
  }
  std::vector<std::string> Avg = {"AVERAGE"};
  for (double S : Sums)
    Avg.push_back(pct(S / static_cast<double>(Suite.size())));
  T.addRow(Avg);
  out(T.str());
}

} // namespace

int main() {
  std::vector<CompiledSuiteProgram> Suite = loadSuite();

  out("== Figure 5a: function invocations, simple predictors "
      "(25% cutoff) ==\n\n");
  runCutoff(Suite,
            {InterEstimatorKind::CallSite, InterEstimatorKind::Direct,
             InterEstimatorKind::AllRec, InterEstimatorKind::AllRec2},
            0.25);

  out("\n== Figure 5b: direct vs. Markov (10% cutoff) ==\n\n");
  runCutoff(Suite, {InterEstimatorKind::Direct, InterEstimatorKind::Markov},
            0.10);

  out("\n== Figure 5c: direct vs. Markov (25% cutoff) ==\n\n");
  runCutoff(Suite, {InterEstimatorKind::Direct, InterEstimatorKind::Markov},
            0.25);

  out("\nPaper shape: Markov improves ~10 points over direct at both "
      "cutoffs, scoring ~80% at 25%.\n");
  return 0;
}

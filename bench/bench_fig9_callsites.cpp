//===- bench/bench_fig9_callsites.cpp - Fig. 9: call-site estimates --------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 9: weight-matching scores for global call-site
/// frequency estimates at the 25% cutoff — intra (smart) combined with
/// either the direct or the Markov function estimator, against
/// profiling. Calls through pointers are omitted, as the paper does for
/// inlining ("it is difficult or impossible to inline calls through
/// pointers").
///
/// Expected shape: the combined technique identifies the busiest quarter
/// of call sites with ~76% accuracy (Markov column average).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace sest;
using namespace sest::bench;

int main() {
  out("== Figure 9: call-site weight matching (25% cutoff) ==\n\n");

  const double Cutoff = 0.25;
  std::vector<CompiledSuiteProgram> Suite = loadSuite();

  TextTable T;
  T.setHeader({"Program", "direct", "markov", "profiling"});
  double Sums[3] = {0, 0, 0};

  for (const CompiledSuiteProgram &P : Suite) {
    auto Score = [&](const ProgramEstimate &E, const Profile &Prof) {
      return callSiteScore(E, Prof, Cutoff);
    };

    InterEstimatorKind Kinds[2] = {InterEstimatorKind::Direct,
                                   InterEstimatorKind::Markov};
    double Col[3];
    for (int K = 0; K < 2; ++K) {
      EstimatorOptions Options;
      Options.Intra = IntraEstimatorKind::Smart;
      Options.Inter = Kinds[K];
      Col[K] = scoreStaticEstimate(P, estimateWith(P, Options), Score);
    }
    Col[2] = scoreProfilingEstimate(P, Score);

    for (int K = 0; K < 3; ++K)
      Sums[K] += Col[K];
    T.addRow({P.Spec->Name, pct(Col[0]), pct(Col[1]), pct(Col[2])});
  }
  double N = static_cast<double>(Suite.size());
  T.addRow({"AVERAGE", pct(Sums[0] / N), pct(Sums[1] / N),
            pct(Sums[2] / N)});
  out(T.str());
  out("\nPaper: the combination of intra- and inter-procedural "
      "heuristics identifies the busiest 1/4 of call sites with 76% "
      "accuracy.\n");
  return 0;
}

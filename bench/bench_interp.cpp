//===- bench/bench_interp.cpp - Interpreter-tier benchmark -----------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark timings for the two execution tiers: per suite
/// program, the AST tree-walker vs. the bytecode VM on the program's
/// first input, plus the cost of the one-time bytecode lowering itself.
/// The ratio of run_ast to run_bytecode is the single-threaded speedup
/// reported in docs/PERFORMANCE.md.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "interp/bytecode/BytecodeCompiler.h"
#include "interp/bytecode/BytecodeVM.h"
#include "lang/Parser.h"

#include <benchmark/benchmark.h>

using namespace sest;

namespace {

const SuiteProgram &programByIndex(int64_t I) {
  return benchmarkSuite()[static_cast<size_t>(I)];
}

/// Compiled once per benchmark; runs share it like the suite runner.
struct Prepared {
  AstContext Ctx;
  CfgModule Cfgs;
  Prepared(const SuiteProgram &P) : Cfgs([&] {
    DiagnosticEngine Diags;
    parseAndAnalyze(P.Source, Ctx, Diags);
    return CfgModule::build(Ctx.unit(), Diags);
  }()) {}
};

void BM_RunAst(benchmark::State &State) {
  const SuiteProgram &P = programByIndex(State.range(0));
  State.SetLabel(P.Name);
  Prepared Prep(P);
  InterpOptions Options;
  Options.Engine = InterpEngine::Ast;
  uint64_t Steps = 0;
  for (auto _ : State) {
    RunResult R = runProgram(Prep.Ctx.unit(), Prep.Cfgs, P.Inputs.front(),
                             Options);
    Steps = R.StepsExecuted;
    benchmark::DoNotOptimize(R.ExitCode);
  }
  State.counters["steps"] = static_cast<double>(Steps);
  State.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(Steps), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_RunBytecode(benchmark::State &State) {
  const SuiteProgram &P = programByIndex(State.range(0));
  State.SetLabel(P.Name);
  Prepared Prep(P);
  bc::BcModule Module = bc::compileBytecode(Prep.Ctx.unit(), Prep.Cfgs);
  InterpOptions Options;
  uint64_t Steps = 0;
  for (auto _ : State) {
    RunResult R = bc::runProgramBytecode(Prep.Ctx.unit(), Prep.Cfgs, Module,
                                         P.Inputs.front(), Options);
    Steps = R.StepsExecuted;
    benchmark::DoNotOptimize(R.ExitCode);
  }
  State.counters["steps"] = static_cast<double>(Steps);
  State.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(Steps), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_BytecodeCompile(benchmark::State &State) {
  const SuiteProgram &P = programByIndex(State.range(0));
  State.SetLabel(P.Name);
  Prepared Prep(P);
  for (auto _ : State) {
    bc::BcModule Module = bc::compileBytecode(Prep.Ctx.unit(), Prep.Cfgs);
    benchmark::DoNotOptimize(Module.NumInstrs);
  }
}

void registerAll() {
  int64_t N = static_cast<int64_t>(benchmarkSuite().size());
  for (int64_t I = 0; I < N; ++I) {
    benchmark::RegisterBenchmark("run_ast", BM_RunAst)->Arg(I);
    benchmark::RegisterBenchmark("run_bytecode", BM_RunBytecode)->Arg(I);
    benchmark::RegisterBenchmark("bytecode_compile", BM_BytecodeCompile)
        ->Arg(I);
  }
}

} // namespace

int main(int argc, char **argv) {
  registerAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

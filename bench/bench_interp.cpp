//===- bench/bench_interp.cpp - Execution-tier benchmark -------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark timings for the three execution tiers: per suite
/// program, the AST tree-walker vs. the bytecode VM vs. the compiled-C
/// native tier on the program's first input, plus the cost of the
/// one-time bytecode lowering itself. The run_bytecode / run_native
/// ratio is the native speedup reported in docs/PERFORMANCE.md.
///
/// Besides the google-benchmark surface, `--tiers-json FILE` runs a
/// one-shot three-tier comparison over the whole suite and writes a
/// sest-interp-tiers/1 document: per-program wall times for all tiers,
/// the native host-cc compile cost, and the compile+run amortization
/// curve (after how many runs does paying the native compile beat
/// re-running the bytecode VM). That file is the checked-in
/// bench/interp_tiers.json baseline check_perf.py and bench_history.py
/// read.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "backend/Backend.h"
#include "backend/Native.h"
#include "interp/bytecode/BytecodeCompiler.h"
#include "interp/bytecode/BytecodeVM.h"
#include "lang/Parser.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <string>

using namespace sest;
using namespace sest::bench;

namespace {

const SuiteProgram &programByIndex(int64_t I) {
  return benchmarkSuite()[static_cast<size_t>(I)];
}

/// Compiled once per benchmark; runs share it like the suite runner.
struct Prepared {
  AstContext Ctx;
  CfgModule Cfgs;
  Prepared(const SuiteProgram &P) : Cfgs([&] {
    DiagnosticEngine Diags;
    parseAndAnalyze(P.Source, Ctx, Diags);
    return CfgModule::build(Ctx.unit(), Diags);
  }()) {}
};

void BM_RunAst(benchmark::State &State) {
  const SuiteProgram &P = programByIndex(State.range(0));
  State.SetLabel(P.Name);
  Prepared Prep(P);
  InterpOptions Options;
  Options.Engine = InterpEngine::Ast;
  uint64_t Steps = 0;
  for (auto _ : State) {
    RunResult R = runProgram(Prep.Ctx.unit(), Prep.Cfgs, P.Inputs.front(),
                             Options);
    Steps = R.StepsExecuted;
    benchmark::DoNotOptimize(R.ExitCode);
  }
  State.counters["steps"] = static_cast<double>(Steps);
  State.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(Steps), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_RunBytecode(benchmark::State &State) {
  const SuiteProgram &P = programByIndex(State.range(0));
  State.SetLabel(P.Name);
  Prepared Prep(P);
  bc::BcModule Module = bc::compileBytecode(Prep.Ctx.unit(), Prep.Cfgs);
  InterpOptions Options;
  uint64_t Steps = 0;
  for (auto _ : State) {
    RunResult R = bc::runProgramBytecode(Prep.Ctx.unit(), Prep.Cfgs, Module,
                                         P.Inputs.front(), Options);
    Steps = R.StepsExecuted;
    benchmark::DoNotOptimize(R.ExitCode);
  }
  State.counters["steps"] = static_cast<double>(Steps);
  State.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(Steps), benchmark::Counter::kIsIterationInvariantRate);
}

/// Native artifact compiled once outside the timing loop (like the suite
/// runner's pool); the loop times pure execution. The one-time host-cc
/// cost is reported as the "compile_ms" counter, not folded into
/// real_time — the amortization curve in --tiers-json combines the two.
void BM_RunNative(benchmark::State &State) {
  const SuiteProgram &P = programByIndex(State.range(0));
  State.SetLabel(P.Name);
  Prepared Prep(P);
  bc::BcModule Module = bc::compileBytecode(Prep.Ctx.unit(), Prep.Cfgs);
  std::string Err;
  std::shared_ptr<const backend::NativeArtifact> Artifact =
      backend::cBackend().compile(Prep.Ctx.unit(), Prep.Cfgs, Module, {},
                                  &Err);
  if (!Artifact) {
    State.SkipWithError(("native compile failed: " + Err).c_str());
    return;
  }
  InterpOptions Options;
  Options.Engine = InterpEngine::Native;
  uint64_t Steps = 0;
  for (auto _ : State) {
    RunResult R = Artifact->run(Prep.Ctx.unit(), Prep.Cfgs, P.Inputs.front(),
                                Options);
    Steps = R.StepsExecuted;
    benchmark::DoNotOptimize(R.ExitCode);
  }
  State.counters["steps"] = static_cast<double>(Steps);
  State.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(Steps), benchmark::Counter::kIsIterationInvariantRate);
  State.counters["compile_ms"] = Artifact->compileMs();
}

void BM_BytecodeCompile(benchmark::State &State) {
  const SuiteProgram &P = programByIndex(State.range(0));
  State.SetLabel(P.Name);
  Prepared Prep(P);
  for (auto _ : State) {
    bc::BcModule Module = bc::compileBytecode(Prep.Ctx.unit(), Prep.Cfgs);
    benchmark::DoNotOptimize(Module.NumInstrs);
  }
}

void registerAll() {
  bool Native = backend::nativeEngineAvailable();
  int64_t N = static_cast<int64_t>(benchmarkSuite().size());
  for (int64_t I = 0; I < N; ++I) {
    benchmark::RegisterBenchmark("run_ast", BM_RunAst)->Arg(I);
    benchmark::RegisterBenchmark("run_bytecode", BM_RunBytecode)->Arg(I);
    if (Native)
      benchmark::RegisterBenchmark("run_native", BM_RunNative)->Arg(I);
    benchmark::RegisterBenchmark("bytecode_compile", BM_BytecodeCompile)
        ->Arg(I);
  }
}

//===----------------------------------------------------------------------===//
// --tiers-json: the one-shot three-tier suite comparison.
//===----------------------------------------------------------------------===//

double nowMs() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double, std::milli>(
             Clock::now().time_since_epoch())
      .count();
}

/// Best-of-N wall time of \p Run, in milliseconds.
template <typename Fn> double bestOfMs(int N, Fn &&Run) {
  double Best = 0.0;
  for (int I = 0; I < N; ++I) {
    double T0 = nowMs();
    Run();
    double T = nowMs() - T0;
    if (I == 0 || T < Best)
      Best = T;
  }
  return Best;
}

struct TierSample {
  std::string Name;
  std::string Input;
  uint64_t Steps = 0;
  double AstMs = 0.0;
  double BytecodeMs = 0.0;
  double BytecodeCompileMs = 0.0;
  double NativeMs = 0.0;
  double NativeCompileMs = 0.0;
  bool NativeOk = false;
};

/// Runs after how many of which the native tier's cumulative cost
/// (compile + n runs) drops below the bytecode VM's (n runs) — the
/// break-even point of paying the host cc up front. Infinity (reported
/// as 0) when native is not faster per run.
double breakevenRuns(double NativeCompileMs, double BytecodeMs,
                     double NativeMs) {
  double PerRunGain = BytecodeMs - NativeMs;
  if (PerRunGain <= 0.0)
    return 0.0;
  return NativeCompileMs / PerRunGain;
}

int runTiersReport(const std::string &Path) {
  std::string Why;
  bool NativeAvailable = backend::nativeEngineAvailable(&Why);

  const std::vector<SuiteProgram> &Suite = benchmarkSuite();
  std::vector<TierSample> Samples;
  Samples.reserve(Suite.size());

  out("three-tier comparison over " + std::to_string(Suite.size()) +
      " suite programs (first input, best of 3)\n");
  for (const SuiteProgram &P : Suite) {
    Prepared Prep(P);
    TierSample S;
    S.Name = P.Name;
    S.Input = P.Inputs.front().Name;

    double T0 = nowMs();
    bc::BcModule Module = bc::compileBytecode(Prep.Ctx.unit(), Prep.Cfgs);
    S.BytecodeCompileMs = nowMs() - T0;

    InterpOptions AstOptions;
    AstOptions.Engine = InterpEngine::Ast;
    S.AstMs = bestOfMs(3, [&] {
      RunResult R = runProgram(Prep.Ctx.unit(), Prep.Cfgs, P.Inputs.front(),
                               AstOptions);
      S.Steps = R.StepsExecuted;
    });

    InterpOptions BcOptions;
    S.BytecodeMs = bestOfMs(3, [&] {
      RunResult R = bc::runProgramBytecode(
          Prep.Ctx.unit(), Prep.Cfgs, Module, P.Inputs.front(), BcOptions);
      benchmark::DoNotOptimize(R.ExitCode);
    });

    if (NativeAvailable) {
      std::string Err;
      std::shared_ptr<const backend::NativeArtifact> Artifact =
          backend::cBackend().compile(Prep.Ctx.unit(), Prep.Cfgs, Module, {},
                                      &Err);
      if (Artifact) {
        S.NativeOk = true;
        S.NativeCompileMs = Artifact->compileMs();
        InterpOptions NativeOptions;
        NativeOptions.Engine = InterpEngine::Native;
        S.NativeMs = bestOfMs(3, [&] {
          RunResult R = Artifact->run(Prep.Ctx.unit(), Prep.Cfgs,
                                      P.Inputs.front(), NativeOptions);
          benchmark::DoNotOptimize(R.ExitCode);
        });
      } else {
        out("  " + P.Name + ": native compile failed: " + Err + "\n");
      }
    }

    std::string Line = "  " + S.Name + ": ast " + formatDouble(S.AstMs, 2) +
                       "ms, bytecode " + formatDouble(S.BytecodeMs, 2) + "ms";
    if (S.NativeOk)
      Line += ", native " + formatDouble(S.NativeMs, 2) + "ms (cc " +
              formatDouble(S.NativeCompileMs, 0) + "ms, break-even " +
              formatDouble(
                  breakevenRuns(S.NativeCompileMs, S.BytecodeMs, S.NativeMs),
                  1) +
              " runs)";
    out(Line + "\n");
    Samples.push_back(std::move(S));
  }

  double SuiteAst = 0, SuiteBc = 0, SuiteBcCompile = 0, SuiteNative = 0,
         SuiteNativeCompile = 0;
  bool AllNative = NativeAvailable;
  for (const TierSample &S : Samples) {
    SuiteAst += S.AstMs;
    SuiteBc += S.BytecodeMs;
    SuiteBcCompile += S.BytecodeCompileMs;
    SuiteNative += S.NativeMs;
    SuiteNativeCompile += S.NativeCompileMs;
    AllNative = AllNative && S.NativeOk;
  }

  JsonWriter W;
  W.beginObject();
  W.member("schema", "sest-interp-tiers/1");
  W.member("native_available", NativeAvailable);
  if (!NativeAvailable)
    W.member("native_unavailable_reason", Why);
  W.key("programs");
  W.beginArray();
  for (const TierSample &S : Samples) {
    W.beginObject();
    W.member("name", S.Name);
    W.member("input", S.Input);
    W.member("steps", static_cast<double>(S.Steps));
    W.member("ast_ms", S.AstMs);
    W.member("bytecode_ms", S.BytecodeMs);
    W.member("bytecode_compile_ms", S.BytecodeCompileMs);
    if (S.NativeOk) {
      W.member("native_ms", S.NativeMs);
      W.member("native_compile_ms", S.NativeCompileMs);
      W.member("ast_over_native",
               S.NativeMs > 0 ? S.AstMs / S.NativeMs : 0.0);
      W.member("bytecode_over_native",
               S.NativeMs > 0 ? S.BytecodeMs / S.NativeMs : 0.0);
      W.member("breakeven_runs",
               breakevenRuns(S.NativeCompileMs, S.BytecodeMs, S.NativeMs));
    }
    W.endObject();
  }
  W.endArray();
  W.key("suite");
  W.beginObject();
  W.member("ast_ms", SuiteAst);
  W.member("bytecode_ms", SuiteBc);
  W.member("bytecode_compile_ms", SuiteBcCompile);
  W.member("ast_over_bytecode", SuiteBc > 0 ? SuiteAst / SuiteBc : 0.0);
  if (AllNative) {
    W.member("native_ms", SuiteNative);
    W.member("native_compile_ms", SuiteNativeCompile);
    W.member("bytecode_over_native",
             SuiteNative > 0 ? SuiteBc / SuiteNative : 0.0);
    W.member("ast_over_native", SuiteNative > 0 ? SuiteAst / SuiteNative : 0.0);
    W.member("breakeven_runs",
             breakevenRuns(SuiteNativeCompile, SuiteBc, SuiteNative));
    // Amortization curve: cumulative suite cost after n runs per tier.
    // The bytecode tier pays its (cheap) lowering once; the native tier
    // pays the host cc once. The crossover row is the break-even point.
    W.key("amortization");
    W.beginArray();
    for (int Runs : {1, 2, 5, 10, 20, 50, 100, 200}) {
      W.beginObject();
      W.member("runs", static_cast<double>(Runs));
      W.member("bytecode_total_ms", SuiteBcCompile + Runs * SuiteBc);
      W.member("native_total_ms", SuiteNativeCompile + Runs * SuiteNative);
      W.endObject();
    }
    W.endArray();
  }
  W.endObject();
  W.endObject();

  std::ofstream OutFile(Path);
  if (!OutFile) {
    out("bench_interp: cannot write '" + Path + "'\n");
    return 1;
  }
  OutFile << W.str();
  out("tier report written to " + Path + "\n");
  if (AllNative) {
    out("suite: bytecode-over-native " +
        formatDouble(SuiteBc / SuiteNative, 2) + "x, break-even " +
        formatDouble(breakevenRuns(SuiteNativeCompile, SuiteBc, SuiteNative),
                     1) +
        " suite runs\n");
  } else if (!NativeAvailable) {
    out("native tier unavailable: " + Why + "\n");
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I) {
    if (std::string_view(argv[I]) == "--tiers-json") {
      if (I + 1 >= argc) {
        out("bench_interp: --tiers-json needs a file argument\n");
        return 2;
      }
      return runTiersReport(argv[I + 1]);
    }
  }
  registerAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

//===- bench/bench_opt.cpp - Estimate-driven optimization scoring ---------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end experiment behind the paper's title: how much of a
/// profile-driven optimizer's benefit do the static estimators recover?
/// Runs block layout, branch hints and call-site inlining over the whole
/// suite three ways (static estimate / first profile / held-out oracle)
/// and reports the realized dynamic-cost reduction of each on a held-out
/// input, plus decision overlap between the static and profile plans.
///
/// `--json FILE` writes the full sest-opt-report/1 document — the same
/// artifact `sestc --suite --opt-report FILE` produces and the baseline
/// checked in as bench/opt_report.json. The document contains no
/// wall-clock fields, so regenerating it on any machine is diff-clean.
///
/// Exit status is non-zero when a deterministic invariant breaks: an
/// inlined program failing differential verification, or the VM
/// cross-check of a predicted layout cost disagreeing with a real run.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "opt/OptReport.h"

#include <fstream>

using namespace sest;
using namespace sest::bench;

int main(int argc, char **argv) {
  std::string JsonPath;
  for (int I = 1; I + 1 < argc; ++I)
    if (std::string_view(argv[I]) == "--json")
      JsonPath = argv[I + 1];

  out("== Estimate-driven optimization: static vs profile vs oracle ==\n\n");

  std::vector<CompiledSuiteProgram> Suite = loadSuite();

  opt::OptReportOptions Options;
  Options.Jobs = 0; // all cores; the report is byte-identical anyway
  opt::OptSuiteReport Report = opt::computeOptReport(Suite, Options);

  TextTable T;
  T.setHeader({"Program", "Identity cost", "Static", "Profile", "Oracle",
               "Overlap", "Inlined", "Verified"});
  for (const opt::OptProgramReport &P : Report.Programs) {
    if (!P.Ok) {
      T.addRow({P.Name, "ERROR: " + P.Error, "", "", "", "", "", ""});
      continue;
    }
    size_t StaticSites = P.Inline.empty() ? 0 : P.Inline[0].Sites.size();
    bool Verified = true;
    for (const opt::InlineSourceResult &I : P.Inline)
      Verified = Verified && I.Verified;
    T.addRow({P.Name, formatDouble(P.IdentityCost, 0),
              pct(P.Layout[0].Reduction), pct(P.Layout[1].Reduction),
              pct(P.Layout[2].Reduction), pct(P.LayoutPairOverlap),
              std::to_string(StaticSites), Verified ? "yes" : "NO"});
  }
  out(T.str());

  out("\nStatic layout recovers " + pct(Report.StaticRecoveryRatio) +
      " of the profile-driven cost reduction (advisory floor: " +
      pct(Options.StaticRecoveryFloor) + ", " +
      (Report.MeetsRecoveryFloor ? "met" : "NOT met") + ").\n");
  out("Mean static-vs-profile inline-site Jaccard: " +
      formatDouble(Report.MeanInlineJaccard, 3) + "\n");
  out("All inlined programs differentially verified: " +
      std::string(Report.AllInlineVerified ? "yes" : "NO") + "\n");
  out("All layout-cost VM cross-checks passed: " +
      std::string(Report.AllCrossChecksOk ? "yes" : "NO") + "\n");

  if (!JsonPath.empty()) {
    std::ofstream OutFile(JsonPath);
    if (!OutFile) {
      out("bench: cannot write '" + JsonPath + "'\n");
      return 1;
    }
    OutFile << opt::optReportJson(Report, Options);
    out("\nopt report written to " + JsonPath + "\n");
  }

  return Report.AllInlineVerified && Report.AllCrossChecksOk ? 0 : 1;
}

//===- bench/bench_pipeline_latency.cpp - Per-stage latency percentiles ---===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Latency observability for the analysis pipeline: times each stage
/// (parse, CFG construction, call-graph construction, estimation) per
/// suite program over many repetitions and reports p50/p90/p99
/// percentiles per stage — the flight-recorder view of "how long does
/// one request take", sized for the future sestd analysis service.
///
/// `--json FILE` writes the sest-pipeline-latency/1 artifact consumed
/// (advisorily) by scripts/check_perf.py; the checked-in baseline lives
/// at bench/pipeline_latency.json. `--reps N` overrides the repetition
/// count (default 20).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "callgraph/CallGraph.h"
#include "cfg/Cfg.h"
#include "lang/Parser.h"
#include "obs/Telemetry.h"

#include <chrono>
#include <fstream>

using namespace sest;
using namespace sest::bench;

namespace {

using Clock = std::chrono::steady_clock;

double usSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - Start)
      .count();
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath;
  unsigned Reps = 20;
  for (int I = 1; I + 1 < argc; ++I) {
    if (std::string_view(argv[I]) == "--json")
      JsonPath = argv[I + 1];
    if (std::string_view(argv[I]) == "--reps")
      Reps = static_cast<unsigned>(
          std::strtoul(argv[I + 1], nullptr, 10));
  }

  out("== Pipeline stage latency percentiles ==\n\n");

  // One Telemetry context used purely as a percentile-histogram sink;
  // it is never installed, so the measured stages run unobserved.
  obs::Telemetry Hist;
  const std::vector<SuiteProgram> &Suite = benchmarkSuite();
  unsigned Programs = 0;

  for (const SuiteProgram &P : Suite) {
    ++Programs;
    for (unsigned R = 0; R < Reps; ++R) {
      AstContext Ctx;
      DiagnosticEngine Diags;

      Clock::time_point T0 = Clock::now();
      bool Parsed = parseAndAnalyze(P.Source, Ctx, Diags);
      Hist.record("parse", usSince(T0));
      if (!Parsed) {
        out("FATAL: " + P.Name + ": compile error:\n" + Diags.str());
        return 1;
      }

      T0 = Clock::now();
      CfgModule Cfgs = CfgModule::build(Ctx.unit(), Diags);
      Hist.record("cfg", usSince(T0));
      if (Diags.hasErrors()) {
        out("FATAL: " + P.Name + ": CFG error:\n" + Diags.str());
        return 1;
      }

      T0 = Clock::now();
      CallGraph CG = CallGraph::build(Ctx.unit(), Cfgs);
      Hist.record("callgraph", usSince(T0));

      EstimatorOptions Est;
      Est.Jobs = 1;
      T0 = Clock::now();
      ProgramEstimate E = estimateProgram(Ctx.unit(), Cfgs, CG, Est);
      Hist.record("estimate", usSince(T0));
      (void)E;
    }
  }

  TextTable T;
  T.setHeader({"Stage", "N", "Mean us", "P50 us", "P90 us", "P99 us",
               "Max us"});
  for (const auto &[Name, H] : Hist.histograms())
    T.addRow({Name, std::to_string(H.Count), formatDouble(H.mean(), 1),
              formatDouble(H.p50(), 1), formatDouble(H.p90(), 1),
              formatDouble(H.p99(), 1), formatDouble(H.Max, 1)});
  out(T.str());

  if (!JsonPath.empty()) {
    JsonWriter W;
    W.beginObject();
    W.member("schema", "sest-pipeline-latency/1");
    W.member("repetitions", static_cast<uint64_t>(Reps));
    W.member("programs", static_cast<uint64_t>(Programs));
    W.key("stages").beginObject();
    for (const auto &[Name, H] : Hist.histograms()) {
      W.key(Name).beginObject();
      W.member("count", static_cast<uint64_t>(H.Count))
          .member("mean_us", H.mean())
          .member("p50_us", H.p50())
          .member("p90_us", H.p90())
          .member("p99_us", H.p99())
          .member("max_us", H.Max);
      W.endObject();
    }
    W.endObject();
    W.endObject();
    std::ofstream OutFile(JsonPath);
    if (!OutFile) {
      out("bench: cannot write '" + JsonPath + "'\n");
      return 1;
    }
    OutFile << W.take();
    out("\nlatency artifact written to " + JsonPath + "\n");
  }
  return 0;
}

//===- bench/bench_pipeline_latency.cpp - Per-stage latency percentiles ---===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Latency observability for the analysis pipeline: times each stage
/// (parse, CFG construction, call-graph construction, estimation) over
/// a zipfian stream of genprog-shaped programs — the same workload
/// model bench_service drives through the sestd analysis service (see
/// the shared helpers in BenchCommon.h) — and reports p50/p90/p99
/// percentiles per stage: the flight-recorder view of "what does one
/// cold request cost, stage by stage".
///
/// `--json FILE` writes the sest-pipeline-latency/1 artifact consumed
/// (advisorily) by scripts/check_perf.py; the checked-in baseline lives
/// at bench/pipeline_latency.json. `--reps N` scales the sample count
/// (N samples per pool program on average, default 20).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "callgraph/CallGraph.h"
#include "cfg/Cfg.h"
#include "lang/Parser.h"
#include "obs/Telemetry.h"

#include <chrono>
#include <fstream>

using namespace sest;
using namespace sest::bench;

namespace {

using Clock = std::chrono::steady_clock;

double usSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - Start)
      .count();
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath;
  unsigned Reps = 20;
  WorkloadConfig WC;
  WC.PoolSize = 24;
  WC.Seed = 7;
  for (int I = 1; I + 1 < argc; ++I) {
    std::string_view Arg = argv[I];
    if (Arg == "--json")
      JsonPath = argv[I + 1];
    else if (Arg == "--reps")
      Reps = static_cast<unsigned>(
          std::strtoul(argv[I + 1], nullptr, 10));
    else if (Arg == "--pool")
      WC.PoolSize = std::strtoull(argv[I + 1], nullptr, 10);
    else if (Arg == "--blocks")
      WC.TargetBlocks = std::strtoull(argv[I + 1], nullptr, 10);
    else if (Arg == "--seed")
      WC.Seed = std::strtoull(argv[I + 1], nullptr, 10);
  }
  size_t Samples = static_cast<size_t>(Reps) * WC.PoolSize;

  out("== Pipeline stage latency percentiles ==\n\n");
  out("pool " + std::to_string(WC.PoolSize) + " programs x " +
      std::to_string(WC.TargetBlocks) + " blocks, " +
      std::to_string(Samples) + " zipfian samples\n\n");

  // One Telemetry context used purely as a percentile-histogram sink;
  // it is never installed, so the measured stages run unobserved.
  obs::Telemetry Hist;
  std::vector<std::string> Pool = syntheticSourcePool(WC);
  ZipfSampler Zipf(Pool.size(), 1.0, WC.Seed);

  for (size_t S = 0; S < Samples; ++S) {
    const std::string &Source = Pool[Zipf.next()];
    AstContext Ctx;
    DiagnosticEngine Diags;

    Clock::time_point T0 = Clock::now();
    bool Parsed = parseAndAnalyze(Source, Ctx, Diags);
    Hist.record("parse", usSince(T0));
    if (!Parsed) {
      out("FATAL: synthetic program failed to compile:\n" + Diags.str());
      return 1;
    }

    T0 = Clock::now();
    CfgModule Cfgs = CfgModule::build(Ctx.unit(), Diags);
    Hist.record("cfg", usSince(T0));
    if (Diags.hasErrors()) {
      out("FATAL: synthetic program CFG error:\n" + Diags.str());
      return 1;
    }

    T0 = Clock::now();
    CallGraph CG = CallGraph::build(Ctx.unit(), Cfgs);
    Hist.record("callgraph", usSince(T0));

    EstimatorOptions Est;
    Est.Jobs = 1;
    T0 = Clock::now();
    ProgramEstimate E = estimateProgram(Ctx.unit(), Cfgs, CG, Est);
    Hist.record("estimate", usSince(T0));
    (void)E;
  }

  TextTable T;
  T.setHeader({"Stage", "N", "Mean us", "P50 us", "P90 us", "P99 us",
               "Max us"});
  for (const auto &[Name, H] : Hist.histograms())
    T.addRow({Name, std::to_string(H.Count), formatDouble(H.mean(), 1),
              formatDouble(H.p50(), 1), formatDouble(H.p90(), 1),
              formatDouble(H.p99(), 1), formatDouble(H.Max, 1)});
  out(T.str());

  if (!JsonPath.empty()) {
    JsonWriter W;
    W.beginObject();
    W.member("schema", "sest-pipeline-latency/1");
    W.member("repetitions", static_cast<uint64_t>(Reps));
    W.member("programs", static_cast<uint64_t>(WC.PoolSize));
    W.member("samples", static_cast<uint64_t>(Samples));
    W.key("stages").beginObject();
    for (const auto &[Name, H] : Hist.histograms()) {
      W.key(Name).beginObject();
      W.member("count", static_cast<uint64_t>(H.Count))
          .member("mean_us", H.mean())
          .member("p50_us", H.p50())
          .member("p90_us", H.p90())
          .member("p99_us", H.p99())
          .member("max_us", H.Max);
      W.endObject();
    }
    W.endObject();
    W.endObject();
    std::ofstream OutFile(JsonPath);
    if (!OutFile) {
      out("bench: cannot write '" + JsonPath + "'\n");
      return 1;
    }
    OutFile << W.take();
    out("\nlatency artifact written to " + JsonPath + "\n");
  }
  return 0;
}

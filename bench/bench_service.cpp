//===- bench/bench_service.cpp - Service throughput cold vs warm ----------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Million-request throughput bench for the sestd analysis service: a
/// zipfian stream of requests over a pool of genprog-shaped programs
/// (the shared workload model in BenchCommon.h), executed batched
/// through service::Service twice —
///
///   cold: memoization disabled (cache budget 0), a sampled prefix of
///         the stream, every request pays the full pipeline;
///   warm: the full stream against a cached service, so all but the
///         first occurrence of each distinct request is a cache hit.
///
/// Reports throughput (requests/s) and p50/p90/p99 request latency for
/// both phases (from the service.request_us histogram the service
/// records into the installed Telemetry), the warm-over-cold speedup,
/// and the warm service's per-tier cache counters.
///
/// `--json FILE` writes the sest-service-throughput/1 artifact;
/// the checked-in baseline lives at bench/service_throughput.json and
/// scripts/check_perf.py enforces the >= 5x warm-over-cold floor.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "obs/Telemetry.h"
#include "service/Service.h"

#include <chrono>
#include <cstring>
#include <thread>

using namespace sest;
using namespace sest::bench;

namespace {

using Clock = std::chrono::steady_clock;

/// The four service operations the mix draws from, in a fixed order so
/// (program, op, variant) maps to a dense unique-request index.
constexpr const char *Ops[] = {"estimate", "parse", "optimize", "report"};
constexpr size_t NumOps = sizeof(Ops) / sizeof(Ops[0]);
constexpr unsigned NumVariants = 4;

size_t opIndex(const char *Op) {
  for (size_t I = 0; I < NumOps; ++I)
    if (std::strcmp(Ops[I], Op) == 0)
      return I;
  return 0;
}

/// Renders the request line for one (program, op, variant) triple. The
/// variant picks an options/passes/seed flavor so repeats of the same
/// program still exercise several distinct cache keys per tier.
std::string renderRequest(uint64_t Id, const std::string &Source,
                          const char *Op, unsigned Variant) {
  JsonWriter W;
  W.beginObject();
  W.member("id", Id);
  W.member("op", Op);
  W.member("source", Source);
  std::string_view OpView = Op;
  if (OpView == "estimate") {
    switch (Variant) {
    case 0:
      break; // default options
    case 1:
      W.key("options").beginObject();
      W.member("intra", "markov").member("inter", "markov");
      W.endObject();
      break;
    case 2:
      W.key("options").beginObject();
      W.member("loop_iterations", static_cast<uint64_t>(16));
      W.endObject();
      break;
    default:
      W.member("blocks", true);
      break;
    }
  } else if (OpView == "optimize") {
    static const char *PassesByVariant[] = {"all", "layout", "inline",
                                            "all"};
    W.member("passes", PassesByVariant[Variant % 4]);
    if (Variant == 3) {
      W.key("options").beginObject();
      W.member("taken_probability", 0.8);
      W.endObject();
    }
  } else if (OpView == "report") {
    W.member("input", "");
    W.member("seed", static_cast<uint64_t>(1 + Variant));
  }
  // parse: the variants collapse onto one semantic cache key, which is
  // exactly what repeated parses of a hot source look like.
  W.endObject();
  return W.take();
}

struct PhaseResult {
  uint64_t Requests = 0;
  uint64_t BadResponses = 0;
  double Seconds = 0.0;
  double Rps = 0.0;
  obs::HistogramStats Latency;
};

/// Feeds stream positions [Begin, End) through \p S in batches,
/// timing the whole phase and collecting per-request latency from the
/// service.request_us histogram.
PhaseResult runPhase(service::Service &S,
                     const std::vector<std::string> &Lines,
                     const std::vector<uint32_t> &Stream, size_t Begin,
                     size_t End, size_t BatchSize) {
  PhaseResult R;
  obs::Telemetry T;
  T.install();
  Clock::time_point Start = Clock::now();
  std::vector<std::string> Batch;
  for (size_t I = Begin; I < End;) {
    size_t N = std::min(BatchSize, End - I);
    Batch.clear();
    Batch.reserve(N);
    for (size_t J = 0; J < N; ++J)
      Batch.push_back(Lines[Stream[I + J]]);
    std::vector<std::string> Responses = S.handleBatch(Batch);
    for (const std::string &Resp : Responses)
      if (Resp.find("\"ok\":false") != std::string::npos)
        ++R.BadResponses;
    I += N;
  }
  R.Seconds =
      std::chrono::duration<double>(Clock::now() - Start).count();
  T.uninstall();
  R.Requests = End - Begin;
  R.Rps = R.Seconds > 0 ? static_cast<double>(R.Requests) / R.Seconds
                        : 0.0;
  auto It = T.histograms().find("service.request_us");
  if (It != T.histograms().end())
    R.Latency = It->second;
  return R;
}

void addPhaseRow(TextTable &T, const char *Name, const PhaseResult &R) {
  T.addRow({Name, std::to_string(R.Requests), formatDouble(R.Seconds, 2),
            formatDouble(R.Rps, 0), formatDouble(R.Latency.p50(), 1),
            formatDouble(R.Latency.p90(), 1),
            formatDouble(R.Latency.p99(), 1)});
}

void writePhase(JsonWriter &W, const char *Name, const PhaseResult &R) {
  W.key(Name).beginObject();
  W.member("requests", R.Requests)
      .member("bad_responses", R.BadResponses)
      .member("seconds", R.Seconds)
      .member("rps", R.Rps)
      .member("p50_us", R.Latency.p50())
      .member("p90_us", R.Latency.p90())
      .member("p99_us", R.Latency.p99());
  W.endObject();
}

} // namespace

int main(int argc, char **argv) {
  size_t Requests = 1000000;
  size_t ColdRequests = 2000;
  size_t BatchSize = 256;
  unsigned Jobs = 0; // hardware concurrency
  WorkloadConfig WC;
  std::string JsonPath;
  for (int I = 1; I + 1 < argc; ++I) {
    std::string_view Arg = argv[I];
    if (Arg == "--json")
      JsonPath = argv[I + 1];
    else if (Arg == "--requests")
      Requests = std::strtoull(argv[I + 1], nullptr, 10);
    else if (Arg == "--cold-requests")
      ColdRequests = std::strtoull(argv[I + 1], nullptr, 10);
    else if (Arg == "--batch")
      BatchSize = std::strtoull(argv[I + 1], nullptr, 10);
    else if (Arg == "--jobs")
      Jobs = static_cast<unsigned>(std::strtoul(argv[I + 1], nullptr, 10));
    else if (Arg == "--pool")
      WC.PoolSize = std::strtoull(argv[I + 1], nullptr, 10);
    else if (Arg == "--blocks")
      WC.TargetBlocks = std::strtoull(argv[I + 1], nullptr, 10);
    else if (Arg == "--seed")
      WC.Seed = std::strtoull(argv[I + 1], nullptr, 10);
  }
  if (BatchSize == 0)
    BatchSize = 1;
  ColdRequests = std::min(ColdRequests, Requests);
  unsigned ResolvedJobs =
      Jobs ? Jobs : std::max(1u, std::thread::hardware_concurrency());

  out("== Service throughput: cold vs warm over a zipfian request mix "
      "==\n\n");
  out("pool " + std::to_string(WC.PoolSize) + " programs x " +
      std::to_string(WC.TargetBlocks) + " blocks, " +
      std::to_string(Requests) + " requests, batch " +
      std::to_string(BatchSize) + ", jobs " +
      std::to_string(ResolvedJobs) + "\n\n");

  // Unique request lines: every (program, op, variant) rendered once,
  // the zipfian stream indexes into them.
  std::vector<std::string> Sources = syntheticSourcePool(WC);
  std::vector<std::string> Lines(Sources.size() * NumOps * NumVariants);
  for (size_t P = 0; P < Sources.size(); ++P)
    for (size_t O = 0; O < NumOps; ++O)
      for (unsigned V = 0; V < NumVariants; ++V) {
        size_t Idx = (P * NumOps + O) * NumVariants + V;
        Lines[Idx] = renderRequest(Idx, Sources[P], Ops[O], V);
      }

  RequestStream Stream(Sources.size(), defaultRequestMix(), WC.Seed);
  std::vector<uint32_t> StreamIdx(Requests);
  for (uint32_t &Idx : StreamIdx) {
    SampledRequest R = Stream.next();
    Idx = static_cast<uint32_t>(
        (R.Program * NumOps + opIndex(R.Op)) * NumVariants + R.Variant);
  }

  // Cold: memoization off, every request recomputes the full pipeline.
  service::ServiceOptions ColdOpts;
  ColdOpts.Jobs = Jobs;
  ColdOpts.CacheBudgetBytes = 0;
  PhaseResult Cold;
  {
    service::Service S(ColdOpts);
    Cold = runPhase(S, Lines, StreamIdx, 0, ColdRequests, BatchSize);
  }

  // Warm: the full stream against one cached service. The first
  // occurrence of each distinct request misses (the self-warming
  // prefix); everything after answers from the response tier.
  service::ServiceOptions WarmOpts;
  WarmOpts.Jobs = Jobs;
  PhaseResult Warm;
  service::Service WarmService(WarmOpts);
  Warm = runPhase(WarmService, Lines, StreamIdx, 0, Requests, BatchSize);

  double Speedup = Cold.Rps > 0 ? Warm.Rps / Cold.Rps : 0.0;

  TextTable T;
  T.setHeader({"Phase", "Requests", "Seconds", "Req/s", "P50 us",
               "P90 us", "P99 us"});
  addPhaseRow(T, "cold (no cache)", Cold);
  addPhaseRow(T, "warm (cached)", Warm);
  out(T.str());
  out("\nwarm-over-cold speedup: " + formatDouble(Speedup, 1) + "x\n");
  if (Cold.BadResponses || Warm.BadResponses)
    out("WARNING: " +
        std::to_string(Cold.BadResponses + Warm.BadResponses) +
        " ok:false responses in the mix\n");

  TextTable C;
  C.setHeader({"Tier", "Hits", "Misses", "Evictions", "Bytes",
               "Entries"});
  for (const service::ShardedCache *Tier : WarmService.caches().all()) {
    service::CacheTierStats St = Tier->stats();
    C.addRow({Tier->tier(), std::to_string(St.Hits),
              std::to_string(St.Misses), std::to_string(St.Evictions),
              std::to_string(St.Bytes), std::to_string(St.Entries)});
  }
  out("\n" + C.str());

  if (!JsonPath.empty()) {
    JsonWriter W;
    W.beginObject();
    W.member("schema", "sest-service-throughput/1");
    W.member("requests", static_cast<uint64_t>(Requests));
    W.member("pool", static_cast<uint64_t>(WC.PoolSize));
    W.member("target_blocks", static_cast<uint64_t>(WC.TargetBlocks));
    W.member("unique_requests", static_cast<uint64_t>(Lines.size()));
    W.member("batch", static_cast<uint64_t>(BatchSize));
    W.member("jobs", static_cast<uint64_t>(ResolvedJobs));
    writePhase(W, "cold", Cold);
    writePhase(W, "warm", Warm);
    W.member("warm_speedup", Speedup);
    W.key("cache").beginObject();
    for (const service::ShardedCache *Tier : WarmService.caches().all()) {
      service::CacheTierStats St = Tier->stats();
      W.key(Tier->tier()).beginObject();
      W.member("hit", St.Hits)
          .member("miss", St.Misses)
          .member("evict", St.Evictions)
          .member("bytes", St.Bytes)
          .member("entries", St.Entries);
      W.endObject();
    }
    W.endObject();
    W.endObject();
    std::ofstream OutFile(JsonPath);
    if (!OutFile) {
      out("bench: cannot write '" + JsonPath + "'\n");
      return 1;
    }
    OutFile << W.take();
    out("\nthroughput artifact written to " + JsonPath + "\n");
  }
  return 0;
}

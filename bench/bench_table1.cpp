//===- bench/bench_table1.cpp - Table 1: the program suite -----------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 1: the programs used in the study with their source
/// line counts and descriptions, extended with the number of functions,
/// call sites, and inputs of each stand-in.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace sest;
using namespace sest::bench;

int main(int argc, char **argv) {
  out("== Table 1: programs used in this study ==\n\n");

  BenchReport Report("table1", argc, argv);
  TextTable T;
  T.setHeader({"Program", "Lines", "Description", "Fns", "Sites", "Inputs",
               "Stands in for"});
  unsigned TotalLines = 0;
  for (const SuiteProgram &P : benchmarkSuite()) {
    CompiledSuiteProgram C = compileProgramOnly(P);
    if (!C.Ok) {
      out("FATAL: " + C.Error + "\n");
      return 1;
    }
    unsigned Fns = 0;
    for (const FunctionDecl *F : C.unit().Functions)
      if (F->isDefined())
        ++Fns;
    TotalLines += P.sourceLines();
    T.addRow({P.Name, std::to_string(P.sourceLines()), P.Description,
              std::to_string(Fns), std::to_string(C.unit().NumCallSites),
              std::to_string(P.Inputs.size()), P.PaperAnalogue});
    Report.add(P.Name + ".lines", static_cast<double>(P.sourceLines()));
    Report.add(P.Name + ".functions", static_cast<double>(Fns));
    Report.add(P.Name + ".call_sites",
               static_cast<double>(C.unit().NumCallSites));
    Report.add(P.Name + ".inputs", static_cast<double>(P.Inputs.size()));
  }
  T.addRow({"TOTAL", std::to_string(TotalLines), "", "", "", "", ""});
  out(T.str());
  out("\n(The first eight are stand-ins for the C programs of the SPEC92 "
      "benchmark suite.)\n");
  Report.add("total.lines", static_cast<double>(TotalLines));
  return Report.finish() ? 0 : 1;
}

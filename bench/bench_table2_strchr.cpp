//===- bench/bench_table2_strchr.cpp - Table 2 / Figs. 1,3,6,7 ------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's running example end to end: the strchr
/// function (Figure 1), the AST-walk estimates (Figure 3), the Markov
/// CFG solution (Figures 6-7: test count 2.78 instead of 5 because the
/// return inside the loop drains flow), the actual counts from searching
/// "abc" for 'a' and 'b', and the weight-matching scores at the 20% and
/// 60% cutoffs (Table 2: 100% and 88%).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "estimators/AstEstimator.h"
#include "estimators/MarkovIntra.h"
#include "lang/AstPrinter.h"
#include "lang/Parser.h"
#include "metrics/WeightMatching.h"

using namespace sest;
using namespace sest::bench;

namespace {

const char *StrchrProgram = R"(
/* Figure 1: a simple implementation of strchr */
char *strchr(char *str, int c) {
  while (*str) {
    if (*str == c)
      return str;
    str++;
  }
  return NULL;
}
int main() {
  char s[4] = "abc";
  strchr(s, 'a');
  strchr(s, 'b');
  return 0;
}
)";

} // namespace

int main() {
  out("== Table 2 / Figures 1, 3, 6, 7: the strchr running example ==\n\n");

  AstContext Ctx;
  DiagnosticEngine Diags;
  if (!parseAndAnalyze(StrchrProgram, Ctx, Diags)) {
    out("FATAL: " + Diags.str() + "\n");
    return 1;
  }
  CfgModule Cfgs = CfgModule::build(Ctx.unit(), Diags);
  const FunctionDecl *F = Ctx.unit().findFunction("strchr");
  const Cfg *G = Cfgs.cfg(F);

  // Figure 3: the annotated AST.
  AstEstimatorConfig AstConfig;
  AstFrequencies Freqs = estimateAstFrequencies(F, AstConfig);
  AstPrintOptions PrintOpts;
  PrintOpts.StmtFrequencies = &Freqs.Exec;
  out("-- Figure 3: AST with estimated execution counts --\n");
  out(printFunctionAst(F, PrintOpts));
  out("\n-- Figure 6: control-flow graph --\n");
  out(printCfg(*G));

  // Estimates.
  std::vector<double> AstEst = blockEstimatesFromAst(*G, Freqs);
  MarkovIntraResult Markov = markovBlockFrequencies(*G, MarkovIntraConfig());

  // Actual counts: run the two searches.
  ProgramInput In;
  RunResult R = runProgram(Ctx.unit(), Cfgs, In);
  if (!R.Ok) {
    out("FATAL: " + R.Error + "\n");
    return 1;
  }
  const FunctionProfile &FP = R.TheProfile.Functions[F->functionId()];

  out("\n-- Table 2: blocks, actual counts, and estimates --\n");
  TextTable T;
  T.setHeader({"Block", "Paper name", "Actual", "Estimate (smart)",
               "Markov (Fig. 7)"});
  std::map<std::string, std::string> PaperNames = {
      {"while.cond", "while"},    {"while.body", "if"},
      {"if.then", "return1"},     {"if.end", "incr"},
      {"while.end", "return2"}};
  for (const auto &B : G->blocks()) {
    std::string Paper = PaperNames.count(B->label())
                            ? PaperNames[B->label()]
                            : "-";
    T.addRow({B->label(), Paper,
              formatDouble(FP.BlockCounts[B->id()], 0),
              formatDouble(AstEst[B->id()], 1),
              formatDouble(Markov.BlockFrequencies[B->id()], 2)});
  }
  out(T.str());

  std::vector<double> Actual = FP.BlockCounts;
  out("\n-- Table 2: weight-matching scores --\n");
  TextTable S;
  S.setHeader({"Cutoff", "Score", "Paper"});
  S.addRow({"20%", pct(weightMatchingScore(AstEst, Actual, 0.20)), "100%"});
  S.addRow({"60%", pct(weightMatchingScore(AstEst, Actual, 0.60)),
            "88% (7/8)"});
  out(S.str());
  out("\nFigure 7 check: the Markov while-test frequency is "
      + formatDouble(Markov.BlockFrequencies[G->entry()->id()], 2)
      + " (paper: 2.78), below the AST model's 5 because the return "
        "inside the loop reduces the flow back to the top.\n");
  return 0;
}

//===- bench/bench_tune.cpp - Estimator-guided autotuning ------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The autotuner experiment: searching the optimizer's configuration
/// space (pass order, inlining budgets, cold-outlining boundary,
/// function ordering) with a purely static cost oracle versus a
/// profile-driven one, then scoring both winners on a held-out input.
/// The headline — static_search_recovery — is the tuner-level analogue
/// of bench_opt's StaticRecoveryRatio: how much of the profile-guided
/// search's improvement the estimate-guided search finds without ever
/// running the program.
///
/// `--json FILE` writes the full sest-tune-report/1 document — the same
/// artifact `sestune --report FILE` produces and the baseline checked
/// in as bench/tune_report.json. No wall-clock fields: regenerating it
/// on any machine, at any --jobs value, is diff-clean.
///
/// Exit status is non-zero when a tuned winner fails differential
/// verification against the unoptimized run.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "tune/Tune.h"

#include <fstream>

using namespace sest;
using namespace sest::bench;

int main(int argc, char **argv) {
  std::string JsonPath;
  for (int I = 1; I + 1 < argc; ++I)
    if (std::string_view(argv[I]) == "--json")
      JsonPath = argv[I + 1];

  out("== Estimator-guided autotuning: static vs profile search ==\n\n");

  std::vector<CompiledSuiteProgram> Suite = loadSuite();

  tune::TuneOptions Options;
  Options.Budget = 24;
  Options.Jobs = 0; // all cores; the report is byte-identical anyway
  tune::TuneSuiteReport Report = tune::computeTuneReport(Suite, Options);

  TextTable T;
  T.setHeader({"Program", "Identity", "Static best", "Profile best",
               "Overlap", "Regret", "Verified"});
  for (const tune::TuneProgramReport &P : Report.Programs) {
    if (!P.Ok) {
      T.addRow({P.Name, "ERROR: " + P.Error, "", "", "", "", ""});
      continue;
    }
    const tune::TuneOracleResult *Static = nullptr, *Profile = nullptr;
    bool Verified = true;
    for (const tune::TuneOracleResult &R : P.Oracles) {
      if (R.Oracle == "static")
        Static = &R;
      if (R.Oracle == "profile")
        Profile = &R;
      Verified = Verified && R.Verified;
    }
    T.addRow({P.Name, formatDouble(P.IdentityEvalCost, 0),
              Static ? pct(Static->EvalReduction) : "-",
              Profile ? pct(Profile->EvalReduction) : "-",
              pct(P.ConfigOverlap), formatDouble(P.Regret, 4),
              Verified ? "yes" : "NO"});
  }
  out(T.str());

  out("\nStatic-oracle search recovers " +
      pct(Report.StaticSearchRecovery) +
      " of the profile-oracle search's cost reduction (advisory floor: " +
      pct(Options.StaticSearchRecoveryFloor) + ", " +
      (Report.MeetsRecoveryFloor ? "met" : "NOT met") + ").\n");
  out("Mean winning-config agreement: " + pct(Report.MeanConfigOverlap) +
      "; mean regret: " + formatDouble(Report.MeanRegret, 4) + "\n");
  out("All tuned winners differentially verified: " +
      std::string(Report.AllVerified ? "yes" : "NO") + "\n");

  if (!JsonPath.empty()) {
    std::ofstream OutFile(JsonPath);
    if (!OutFile) {
      out("bench: cannot write '" + JsonPath + "'\n");
      return 1;
    }
    OutFile << tune::tuneReportJson(Report, Options);
    out("\ntune report written to " + JsonPath + "\n");
  }

  return Report.AllVerified ? 0 : 1;
}

# Empty dependencies file for bench_fig10_selective_opt.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_functions.dir/bench_fig5_functions.cpp.o"
  "CMakeFiles/bench_fig5_functions.dir/bench_fig5_functions.cpp.o.d"
  "bench_fig5_functions"
  "bench_fig5_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_callsites.dir/bench_fig9_callsites.cpp.o"
  "CMakeFiles/bench_fig9_callsites.dir/bench_fig9_callsites.cpp.o.d"
  "bench_fig9_callsites"
  "bench_fig9_callsites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_callsites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig9_callsites.
# This may be replaced when dependencies are built.

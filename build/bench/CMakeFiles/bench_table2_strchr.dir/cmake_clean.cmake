file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_strchr.dir/bench_table2_strchr.cpp.o"
  "CMakeFiles/bench_table2_strchr.dir/bench_table2_strchr.cpp.o.d"
  "bench_table2_strchr"
  "bench_table2_strchr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_strchr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

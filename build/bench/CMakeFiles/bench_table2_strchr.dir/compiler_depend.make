# Empty compiler generated dependencies file for bench_table2_strchr.
# This may be replaced when dependencies are built.

# Empty dependencies file for inline_advisor.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/profile_compare.cpp" "examples/CMakeFiles/profile_compare.dir/profile_compare.cpp.o" "gcc" "examples/CMakeFiles/profile_compare.dir/profile_compare.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/suite/CMakeFiles/sest_suite.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/sest_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/estimators/CMakeFiles/sest_estimators.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/sest_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/callgraph/CMakeFiles/sest_callgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/sest_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/sest_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/sest_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sest_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

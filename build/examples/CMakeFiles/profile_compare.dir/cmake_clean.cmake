file(REMOVE_RECURSE
  "CMakeFiles/profile_compare.dir/profile_compare.cpp.o"
  "CMakeFiles/profile_compare.dir/profile_compare.cpp.o.d"
  "profile_compare"
  "profile_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

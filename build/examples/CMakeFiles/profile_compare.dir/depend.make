# Empty dependencies file for profile_compare.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/selective_optimizer.dir/selective_optimizer.cpp.o"
  "CMakeFiles/selective_optimizer.dir/selective_optimizer.cpp.o.d"
  "selective_optimizer"
  "selective_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selective_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

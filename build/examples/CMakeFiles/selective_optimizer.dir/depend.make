# Empty dependencies file for selective_optimizer.
# This may be replaced when dependencies are built.

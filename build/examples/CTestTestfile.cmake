# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_inline_advisor "/root/repo/build/examples/inline_advisor")
set_tests_properties(example_inline_advisor PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_code_layout "/root/repo/build/examples/code_layout")
set_tests_properties(example_code_layout PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_selective_optimizer "/root/repo/build/examples/selective_optimizer")
set_tests_properties(example_selective_optimizer PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_profile_compare "/root/repo/build/examples/profile_compare")
set_tests_properties(example_profile_compare PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")

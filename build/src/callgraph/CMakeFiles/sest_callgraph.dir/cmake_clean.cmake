file(REMOVE_RECURSE
  "CMakeFiles/sest_callgraph.dir/CallGraph.cpp.o"
  "CMakeFiles/sest_callgraph.dir/CallGraph.cpp.o.d"
  "CMakeFiles/sest_callgraph.dir/CallGraphDot.cpp.o"
  "CMakeFiles/sest_callgraph.dir/CallGraphDot.cpp.o.d"
  "libsest_callgraph.a"
  "libsest_callgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sest_callgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsest_callgraph.a"
)

# Empty dependencies file for sest_callgraph.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sest_cfg.dir/Cfg.cpp.o"
  "CMakeFiles/sest_cfg.dir/Cfg.cpp.o.d"
  "CMakeFiles/sest_cfg.dir/CfgDot.cpp.o"
  "CMakeFiles/sest_cfg.dir/CfgDot.cpp.o.d"
  "CMakeFiles/sest_cfg.dir/CfgPrinter.cpp.o"
  "CMakeFiles/sest_cfg.dir/CfgPrinter.cpp.o.d"
  "CMakeFiles/sest_cfg.dir/Dominators.cpp.o"
  "CMakeFiles/sest_cfg.dir/Dominators.cpp.o.d"
  "libsest_cfg.a"
  "libsest_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sest_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

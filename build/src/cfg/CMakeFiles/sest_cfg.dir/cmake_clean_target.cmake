file(REMOVE_RECURSE
  "libsest_cfg.a"
)

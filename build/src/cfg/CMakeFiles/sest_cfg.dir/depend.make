# Empty dependencies file for sest_cfg.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/estimators/AstEstimator.cpp" "src/estimators/CMakeFiles/sest_estimators.dir/AstEstimator.cpp.o" "gcc" "src/estimators/CMakeFiles/sest_estimators.dir/AstEstimator.cpp.o.d"
  "/root/repo/src/estimators/BranchPrediction.cpp" "src/estimators/CMakeFiles/sest_estimators.dir/BranchPrediction.cpp.o" "gcc" "src/estimators/CMakeFiles/sest_estimators.dir/BranchPrediction.cpp.o.d"
  "/root/repo/src/estimators/InterEstimators.cpp" "src/estimators/CMakeFiles/sest_estimators.dir/InterEstimators.cpp.o" "gcc" "src/estimators/CMakeFiles/sest_estimators.dir/InterEstimators.cpp.o.d"
  "/root/repo/src/estimators/LoopBounds.cpp" "src/estimators/CMakeFiles/sest_estimators.dir/LoopBounds.cpp.o" "gcc" "src/estimators/CMakeFiles/sest_estimators.dir/LoopBounds.cpp.o.d"
  "/root/repo/src/estimators/MarkovIntra.cpp" "src/estimators/CMakeFiles/sest_estimators.dir/MarkovIntra.cpp.o" "gcc" "src/estimators/CMakeFiles/sest_estimators.dir/MarkovIntra.cpp.o.d"
  "/root/repo/src/estimators/Pipeline.cpp" "src/estimators/CMakeFiles/sest_estimators.dir/Pipeline.cpp.o" "gcc" "src/estimators/CMakeFiles/sest_estimators.dir/Pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/callgraph/CMakeFiles/sest_callgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/sest_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/sest_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/sest_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sest_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

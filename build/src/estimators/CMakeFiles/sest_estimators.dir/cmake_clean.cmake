file(REMOVE_RECURSE
  "CMakeFiles/sest_estimators.dir/AstEstimator.cpp.o"
  "CMakeFiles/sest_estimators.dir/AstEstimator.cpp.o.d"
  "CMakeFiles/sest_estimators.dir/BranchPrediction.cpp.o"
  "CMakeFiles/sest_estimators.dir/BranchPrediction.cpp.o.d"
  "CMakeFiles/sest_estimators.dir/InterEstimators.cpp.o"
  "CMakeFiles/sest_estimators.dir/InterEstimators.cpp.o.d"
  "CMakeFiles/sest_estimators.dir/LoopBounds.cpp.o"
  "CMakeFiles/sest_estimators.dir/LoopBounds.cpp.o.d"
  "CMakeFiles/sest_estimators.dir/MarkovIntra.cpp.o"
  "CMakeFiles/sest_estimators.dir/MarkovIntra.cpp.o.d"
  "CMakeFiles/sest_estimators.dir/Pipeline.cpp.o"
  "CMakeFiles/sest_estimators.dir/Pipeline.cpp.o.d"
  "libsest_estimators.a"
  "libsest_estimators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sest_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

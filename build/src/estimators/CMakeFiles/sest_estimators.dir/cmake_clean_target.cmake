file(REMOVE_RECURSE
  "libsest_estimators.a"
)

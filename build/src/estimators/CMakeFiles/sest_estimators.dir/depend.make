# Empty dependencies file for sest_estimators.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sest_interp.dir/Interp.cpp.o"
  "CMakeFiles/sest_interp.dir/Interp.cpp.o.d"
  "CMakeFiles/sest_interp.dir/Value.cpp.o"
  "CMakeFiles/sest_interp.dir/Value.cpp.o.d"
  "libsest_interp.a"
  "libsest_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sest_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsest_interp.a"
)

# Empty compiler generated dependencies file for sest_interp.
# This may be replaced when dependencies are built.

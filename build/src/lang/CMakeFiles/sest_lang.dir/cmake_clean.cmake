file(REMOVE_RECURSE
  "CMakeFiles/sest_lang.dir/Ast.cpp.o"
  "CMakeFiles/sest_lang.dir/Ast.cpp.o.d"
  "CMakeFiles/sest_lang.dir/AstPrinter.cpp.o"
  "CMakeFiles/sest_lang.dir/AstPrinter.cpp.o.d"
  "CMakeFiles/sest_lang.dir/ConstFold.cpp.o"
  "CMakeFiles/sest_lang.dir/ConstFold.cpp.o.d"
  "CMakeFiles/sest_lang.dir/Lexer.cpp.o"
  "CMakeFiles/sest_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/sest_lang.dir/Parser.cpp.o"
  "CMakeFiles/sest_lang.dir/Parser.cpp.o.d"
  "CMakeFiles/sest_lang.dir/Sema.cpp.o"
  "CMakeFiles/sest_lang.dir/Sema.cpp.o.d"
  "CMakeFiles/sest_lang.dir/Type.cpp.o"
  "CMakeFiles/sest_lang.dir/Type.cpp.o.d"
  "libsest_lang.a"
  "libsest_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sest_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsest_lang.a"
)

# Empty dependencies file for sest_lang.
# This may be replaced when dependencies are built.

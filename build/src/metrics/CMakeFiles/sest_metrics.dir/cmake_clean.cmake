file(REMOVE_RECURSE
  "CMakeFiles/sest_metrics.dir/BranchMiss.cpp.o"
  "CMakeFiles/sest_metrics.dir/BranchMiss.cpp.o.d"
  "CMakeFiles/sest_metrics.dir/Evaluation.cpp.o"
  "CMakeFiles/sest_metrics.dir/Evaluation.cpp.o.d"
  "CMakeFiles/sest_metrics.dir/WeightMatching.cpp.o"
  "CMakeFiles/sest_metrics.dir/WeightMatching.cpp.o.d"
  "libsest_metrics.a"
  "libsest_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sest_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsest_metrics.a"
)

# Empty compiler generated dependencies file for sest_metrics.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sest_profile.dir/Profile.cpp.o"
  "CMakeFiles/sest_profile.dir/Profile.cpp.o.d"
  "libsest_profile.a"
  "libsest_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sest_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

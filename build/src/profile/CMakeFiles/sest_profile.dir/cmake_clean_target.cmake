file(REMOVE_RECURSE
  "libsest_profile.a"
)

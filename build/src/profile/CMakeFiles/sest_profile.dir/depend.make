# Empty dependencies file for sest_profile.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/suite/Suite.cpp" "src/suite/CMakeFiles/sest_suite.dir/Suite.cpp.o" "gcc" "src/suite/CMakeFiles/sest_suite.dir/Suite.cpp.o.d"
  "/root/repo/src/suite/SuiteRunner.cpp" "src/suite/CMakeFiles/sest_suite.dir/SuiteRunner.cpp.o" "gcc" "src/suite/CMakeFiles/sest_suite.dir/SuiteRunner.cpp.o.d"
  "/root/repo/src/suite/programs/Alvinn.cpp" "src/suite/CMakeFiles/sest_suite.dir/programs/Alvinn.cpp.o" "gcc" "src/suite/CMakeFiles/sest_suite.dir/programs/Alvinn.cpp.o.d"
  "/root/repo/src/suite/programs/Awk.cpp" "src/suite/CMakeFiles/sest_suite.dir/programs/Awk.cpp.o" "gcc" "src/suite/CMakeFiles/sest_suite.dir/programs/Awk.cpp.o.d"
  "/root/repo/src/suite/programs/Bison.cpp" "src/suite/CMakeFiles/sest_suite.dir/programs/Bison.cpp.o" "gcc" "src/suite/CMakeFiles/sest_suite.dir/programs/Bison.cpp.o.d"
  "/root/repo/src/suite/programs/Cholesky.cpp" "src/suite/CMakeFiles/sest_suite.dir/programs/Cholesky.cpp.o" "gcc" "src/suite/CMakeFiles/sest_suite.dir/programs/Cholesky.cpp.o.d"
  "/root/repo/src/suite/programs/Compress.cpp" "src/suite/CMakeFiles/sest_suite.dir/programs/Compress.cpp.o" "gcc" "src/suite/CMakeFiles/sest_suite.dir/programs/Compress.cpp.o.d"
  "/root/repo/src/suite/programs/Ear.cpp" "src/suite/CMakeFiles/sest_suite.dir/programs/Ear.cpp.o" "gcc" "src/suite/CMakeFiles/sest_suite.dir/programs/Ear.cpp.o.d"
  "/root/repo/src/suite/programs/Eqntott.cpp" "src/suite/CMakeFiles/sest_suite.dir/programs/Eqntott.cpp.o" "gcc" "src/suite/CMakeFiles/sest_suite.dir/programs/Eqntott.cpp.o.d"
  "/root/repo/src/suite/programs/Espresso.cpp" "src/suite/CMakeFiles/sest_suite.dir/programs/Espresso.cpp.o" "gcc" "src/suite/CMakeFiles/sest_suite.dir/programs/Espresso.cpp.o.d"
  "/root/repo/src/suite/programs/Gcc.cpp" "src/suite/CMakeFiles/sest_suite.dir/programs/Gcc.cpp.o" "gcc" "src/suite/CMakeFiles/sest_suite.dir/programs/Gcc.cpp.o.d"
  "/root/repo/src/suite/programs/Gs.cpp" "src/suite/CMakeFiles/sest_suite.dir/programs/Gs.cpp.o" "gcc" "src/suite/CMakeFiles/sest_suite.dir/programs/Gs.cpp.o.d"
  "/root/repo/src/suite/programs/Mpeg.cpp" "src/suite/CMakeFiles/sest_suite.dir/programs/Mpeg.cpp.o" "gcc" "src/suite/CMakeFiles/sest_suite.dir/programs/Mpeg.cpp.o.d"
  "/root/repo/src/suite/programs/Sc.cpp" "src/suite/CMakeFiles/sest_suite.dir/programs/Sc.cpp.o" "gcc" "src/suite/CMakeFiles/sest_suite.dir/programs/Sc.cpp.o.d"
  "/root/repo/src/suite/programs/Water.cpp" "src/suite/CMakeFiles/sest_suite.dir/programs/Water.cpp.o" "gcc" "src/suite/CMakeFiles/sest_suite.dir/programs/Water.cpp.o.d"
  "/root/repo/src/suite/programs/Xlisp.cpp" "src/suite/CMakeFiles/sest_suite.dir/programs/Xlisp.cpp.o" "gcc" "src/suite/CMakeFiles/sest_suite.dir/programs/Xlisp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interp/CMakeFiles/sest_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/callgraph/CMakeFiles/sest_callgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/cfg/CMakeFiles/sest_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/sest_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/sest_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/sest_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libsest_suite.a"
)

# Empty dependencies file for sest_suite.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sest_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/sest_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/sest_support.dir/LinearSystem.cpp.o"
  "CMakeFiles/sest_support.dir/LinearSystem.cpp.o.d"
  "CMakeFiles/sest_support.dir/Scc.cpp.o"
  "CMakeFiles/sest_support.dir/Scc.cpp.o.d"
  "CMakeFiles/sest_support.dir/StringUtils.cpp.o"
  "CMakeFiles/sest_support.dir/StringUtils.cpp.o.d"
  "CMakeFiles/sest_support.dir/TextTable.cpp.o"
  "CMakeFiles/sest_support.dir/TextTable.cpp.o.d"
  "libsest_support.a"
  "libsest_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sest_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libsest_support.a"
)

# Empty dependencies file for sest_support.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_lang_extra.dir/test_lang_extra.cpp.o"
  "CMakeFiles/test_lang_extra.dir/test_lang_extra.cpp.o.d"
  "test_lang_extra"
  "test_lang_extra.pdb"
  "test_lang_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lang_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_lang_extra.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_parser_sema.dir/test_parser_sema.cpp.o"
  "CMakeFiles/test_parser_sema.dir/test_parser_sema.cpp.o.d"
  "test_parser_sema"
  "test_parser_sema.pdb"
  "test_parser_sema[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parser_sema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_lexer[1]_include.cmake")
include("/root/repo/build/tests/test_parser_sema[1]_include.cmake")
include("/root/repo/build/tests/test_cfg[1]_include.cmake")
include("/root/repo/build/tests/test_interp[1]_include.cmake")
include("/root/repo/build/tests/test_suite[1]_include.cmake")
include("/root/repo/build/tests/test_estimators[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_callgraph[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_lang_extra[1]_include.cmake")
include("/root/repo/build/tests/test_dominators[1]_include.cmake")

file(REMOVE_RECURSE
  "CMakeFiles/sestc.dir/sestc.cpp.o"
  "CMakeFiles/sestc.dir/sestc.cpp.o.d"
  "sestc"
  "sestc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sestc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for sestc.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(sestc_ast "/root/repo/build/tools/sestc" "--ast" "/root/repo/tools/testdata/smoke.mc")
set_tests_properties(sestc_ast PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(sestc_cfg "/root/repo/build/tools/sestc" "--cfg" "/root/repo/tools/testdata/smoke.mc")
set_tests_properties(sestc_cfg PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(sestc_dot "/root/repo/build/tools/sestc" "--dot" "/root/repo/tools/testdata/smoke.mc")
set_tests_properties(sestc_dot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(sestc_callgraph "/root/repo/build/tools/sestc" "--callgraph" "/root/repo/tools/testdata/smoke.mc")
set_tests_properties(sestc_callgraph PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(sestc_estimate "/root/repo/build/tools/sestc" "--estimate" "/root/repo/tools/testdata/smoke.mc")
set_tests_properties(sestc_estimate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(sestc_compare "/root/repo/build/tools/sestc" "--compare" "--input" "12" "/root/repo/tools/testdata/smoke.mc")
set_tests_properties(sestc_compare PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(sestc_counted_loops "/root/repo/build/tools/sestc" "--estimate" "--counted-loops" "--intra" "markov" "/root/repo/tools/testdata/smoke.mc")
set_tests_properties(sestc_counted_loops PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(sestc_rejects_bad_usage "/root/repo/build/tools/sestc" "--bogus")
set_tests_properties(sestc_rejects_bad_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")

//===- examples/code_layout.cpp - Hot-path block layout --------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An intra-procedural client from the paper's introduction: "code
/// layout for instruction cache packing" (McFarling [8]). This example
/// chains each function's basic blocks with the Pettis–Hansen-style
/// layout pass from src/opt/ — once driven by static smart estimates and
/// once by a measured profile, through the same WeightSource abstraction
/// — then scores each layout by the fraction of dynamic control
/// transfers that fall through to the next block in memory.
///
/// Usage: code_layout [suite-program-name]   (default: compress)
///
//===----------------------------------------------------------------------===//

#include "estimators/Pipeline.h"
#include "opt/Layout.h"
#include "opt/WeightSource.h"
#include "suite/SuiteRunner.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <cstdio>
#include <numeric>

using namespace sest;

namespace {

void print(const std::string &S) { std::fputs(S.c_str(), stdout); }

/// Fraction of dynamic transfers that fall through: arc (B, S) is free
/// when S is placed immediately after B.
double fallthroughQuality(const Cfg &G, const FunctionProfile &FP,
                          const std::vector<uint32_t> &Order) {
  std::vector<uint32_t> PosOf(G.size());
  for (uint32_t I = 0; I < Order.size(); ++I)
    PosOf[Order[I]] = I;
  double Free = 0, Total = 0;
  for (const auto &B : G.blocks()) {
    const auto &Succs = B->successors();
    for (size_t S = 0; S < Succs.size(); ++S) {
      double N = FP.ArcCounts[B->id()][S];
      Total += N;
      if (PosOf[Succs[S]->id()] == PosOf[B->id()] + 1)
        Free += N;
    }
  }
  return Total > 0 ? Free / Total : 1.0;
}

} // namespace

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "compress";
  const SuiteProgram *Spec = findSuiteProgram(Name);
  if (!Spec) {
    print("unknown suite program '" + Name + "'\n");
    return 1;
  }
  CompiledSuiteProgram P = compileAndProfileProgram(*Spec);
  if (!P.Ok) {
    print(P.Error + "\n");
    return 1;
  }

  // The same layout pass, two weight sources: that is the whole point of
  // the WeightSource abstraction.
  EstimatorOptions Options;
  ProgramEstimate E = estimateProgram(P.unit(), *P.Cfgs, *P.CG, Options);
  opt::WeightSource WStatic =
      opt::weightsFromEstimate(P.unit(), *P.Cfgs, E, Options);
  Profile Agg = aggregateProfiles(P.Profiles);
  opt::WeightSource WProfile = opt::weightsFromProfile(P.unit(), Agg);

  opt::ProgramLayout Static = opt::computeBlockLayout(P.unit(), *P.Cfgs, WStatic);
  opt::ProgramLayout Prof = opt::computeBlockLayout(P.unit(), *P.Cfgs, WProfile);

  print("Block-layout quality for '" + Name + "' (fraction of dynamic "
        "transfers that fall through):\n\n");
  TextTable T;
  T.setHeader({"Function", "Blocks", "Source order", "Static layout",
               "Profile layout"});
  double SumSrc = 0, SumStatic = 0, SumProf = 0;
  unsigned Rows = 0;
  for (const auto &[F, G] : P.Cfgs->all()) {
    const FunctionProfile &FP = Agg.Functions[F->functionId()];
    if (FP.EntryCount <= 0 || G->size() < 3)
      continue;

    std::vector<uint32_t> SourceOrder(G->size());
    std::iota(SourceOrder.begin(), SourceOrder.end(), 0u);
    const std::vector<uint32_t> &StaticOrder =
        Static.Functions[F->functionId()].Order;
    const std::vector<uint32_t> &ProfileOrder =
        Prof.Functions[F->functionId()].Order;

    double QSrc = fallthroughQuality(*G, FP, SourceOrder);
    double QStatic = fallthroughQuality(*G, FP, StaticOrder);
    double QProf = fallthroughQuality(*G, FP, ProfileOrder);
    SumSrc += QSrc;
    SumStatic += QStatic;
    SumProf += QProf;
    ++Rows;
    T.addRow({F->name(), std::to_string(G->size()), formatPercent(QSrc),
              formatPercent(QStatic), formatPercent(QProf)});
  }
  if (Rows) {
    T.addRow({"AVERAGE", "", formatPercent(SumSrc / Rows),
              formatPercent(SumStatic / Rows),
              formatPercent(SumProf / Rows)});
  }
  print(T.str());
  print("\nA static layout close to the profile-driven one means the "
        "estimates suffice for cache packing without profiling.\n");
  return 0;
}

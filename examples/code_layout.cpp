//===- examples/code_layout.cpp - Hot-path block layout --------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An intra-procedural client from the paper's introduction: "code
/// layout for instruction cache packing" (McFarling [8]). This example
/// lays out each function's basic blocks hottest-first using the static
/// smart estimates, then scores the layout by the fraction of dynamic
/// control transfers that fall through to the next block in memory —
/// comparing the static layout against a profile-driven layout and
/// against source order.
///
/// Usage: code_layout [suite-program-name]   (default: compress)
///
//===----------------------------------------------------------------------===//

#include "estimators/Pipeline.h"
#include "suite/SuiteRunner.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <algorithm>
#include <cstdio>
#include <numeric>

using namespace sest;

namespace {

void print(const std::string &S) { std::fputs(S.c_str(), stdout); }

/// Greedy layout: place blocks in decreasing weight, but start from the
/// entry block (it must come first).
std::vector<uint32_t> layoutByWeight(const Cfg &G,
                                     const std::vector<double> &Weight) {
  std::vector<uint32_t> Order(G.size());
  std::iota(Order.begin(), Order.end(), 0u);
  std::stable_sort(Order.begin(), Order.end(),
                   [&Weight](uint32_t A, uint32_t B) {
                     return Weight[A] > Weight[B];
                   });
  // Entry first.
  auto It = std::find(Order.begin(), Order.end(), G.entry()->id());
  std::rotate(Order.begin(), It, It + 1);
  return Order;
}

/// Fraction of dynamic transfers that fall through: arc (B, S) is free
/// when S is placed immediately after B.
double fallthroughQuality(const Cfg &G, const FunctionProfile &FP,
                          const std::vector<uint32_t> &Order) {
  std::vector<uint32_t> PosOf(G.size());
  for (uint32_t I = 0; I < Order.size(); ++I)
    PosOf[Order[I]] = I;
  double Free = 0, Total = 0;
  for (const auto &B : G.blocks()) {
    const auto &Succs = B->successors();
    for (size_t S = 0; S < Succs.size(); ++S) {
      double N = FP.ArcCounts[B->id()][S];
      Total += N;
      if (PosOf[Succs[S]->id()] == PosOf[B->id()] + 1)
        Free += N;
    }
  }
  return Total > 0 ? Free / Total : 1.0;
}

} // namespace

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "compress";
  const SuiteProgram *Spec = findSuiteProgram(Name);
  if (!Spec) {
    print("unknown suite program '" + Name + "'\n");
    return 1;
  }
  CompiledSuiteProgram P = compileAndProfileProgram(*Spec);
  if (!P.Ok) {
    print(P.Error + "\n");
    return 1;
  }

  EstimatorOptions Options;
  IntraEstimates Static = computeIntraEstimates(P.unit(), *P.Cfgs, Options);
  Profile Agg = aggregateProfiles(P.Profiles);

  print("Block-layout quality for '" + Name + "' (fraction of dynamic "
        "transfers that fall through):\n\n");
  TextTable T;
  T.setHeader({"Function", "Blocks", "Source order", "Static layout",
               "Profile layout"});
  double SumSrc = 0, SumStatic = 0, SumProf = 0;
  unsigned Rows = 0;
  for (const auto &[F, G] : P.Cfgs->all()) {
    const FunctionProfile &FP = Agg.Functions[F->functionId()];
    if (FP.EntryCount <= 0 || G->size() < 3)
      continue;

    std::vector<uint32_t> SourceOrder(G->size());
    std::iota(SourceOrder.begin(), SourceOrder.end(), 0u);
    std::vector<uint32_t> StaticOrder =
        layoutByWeight(*G, Static.Blocks[F->functionId()]);
    std::vector<uint32_t> ProfileOrder =
        layoutByWeight(*G, FP.BlockCounts);

    double QSrc = fallthroughQuality(*G, FP, SourceOrder);
    double QStatic = fallthroughQuality(*G, FP, StaticOrder);
    double QProf = fallthroughQuality(*G, FP, ProfileOrder);
    SumSrc += QSrc;
    SumStatic += QStatic;
    SumProf += QProf;
    ++Rows;
    T.addRow({F->name(), std::to_string(G->size()), formatPercent(QSrc),
              formatPercent(QStatic), formatPercent(QProf)});
  }
  if (Rows) {
    T.addRow({"AVERAGE", "", formatPercent(SumSrc / Rows),
              formatPercent(SumStatic / Rows),
              formatPercent(SumProf / Rows)});
  }
  print(T.str());
  print("\nA static layout close to the profile-driven one means the "
        "estimates suffice for cache packing without profiling.\n");
  return 0;
}

//===- examples/inline_advisor.cpp - Inlining from static estimates --------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's motivating inter-procedural client (§5.3): "In function
/// inlining, the crucial information derived from a profile is the
/// frequency of execution of specific call sites." This example ranks a
/// program's direct call sites by their statically-estimated global
/// frequency and prints inlining advice, then checks the advice against
/// a real profile.
///
/// Usage: inline_advisor [suite-program-name]   (default: gcc)
///
//===----------------------------------------------------------------------===//

#include "estimators/Pipeline.h"
#include "metrics/WeightMatching.h"
#include "suite/SuiteRunner.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <algorithm>
#include <cstdio>

using namespace sest;

namespace {

void print(const std::string &S) { std::fputs(S.c_str(), stdout); }

} // namespace

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "gcc";
  const SuiteProgram *Spec = findSuiteProgram(Name);
  if (!Spec) {
    print("unknown suite program '" + Name + "'\n");
    return 1;
  }

  CompiledSuiteProgram P = compileAndProfileProgram(*Spec);
  if (!P.Ok) {
    print(P.Error + "\n");
    return 1;
  }

  // Static estimate: smart intra + Markov inter, as the paper recommends.
  EstimatorOptions Options;
  ProgramEstimate E = estimateProgram(P.unit(), *P.Cfgs, *P.CG, Options);

  // Rank direct call sites by estimated global frequency.
  std::vector<const CallSiteInfo *> Sites;
  for (const CallSiteInfo &S : P.CG->sites())
    if (!S.isIndirect())
      Sites.push_back(&S);
  std::stable_sort(Sites.begin(), Sites.end(),
                   [&E](const CallSiteInfo *A, const CallSiteInfo *B) {
                     return E.CallSiteEstimates[A->CallSiteId] >
                            E.CallSiteEstimates[B->CallSiteId];
                   });

  Profile Agg = aggregateProfiles(P.Profiles);

  print("Inlining advice for '" + Name + "' (top 10 direct call sites "
        "by static estimate):\n\n");
  TextTable T;
  T.setHeader({"#", "Call site", "Line", "Estimated", "Actual (avg)"});
  for (size_t I = 0; I < Sites.size() && I < 10; ++I) {
    const CallSiteInfo *S = Sites[I];
    T.addRow({std::to_string(I + 1),
              S->Caller->name() + " -> " + S->Callee->name(),
              std::to_string(S->Site->loc().Line),
              formatDouble(E.CallSiteEstimates[S->CallSiteId], 1),
              formatDouble(Agg.CallSiteCounts[S->CallSiteId] /
                               static_cast<double>(P.Profiles.size()),
                           1)});
  }
  print(T.str());

  double Score = weightMatchingScore(E.CallSiteEstimates,
                                     Agg.CallSiteCounts, 0.25);
  print("\nWeight-matching of the advice vs. the aggregate profile at "
        "the 25% cutoff: " + formatPercent(Score) + "\n");
  print("(Indirect call sites are omitted: \"it is difficult or "
        "impossible to inline calls through pointers\", paper §5.3.)\n");
  return 0;
}

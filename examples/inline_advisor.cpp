//===- examples/inline_advisor.cpp - Inlining from static estimates --------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's motivating inter-procedural client (§5.3): "In function
/// inlining, the crucial information derived from a profile is the
/// frequency of execution of specific call sites." This example ranks a
/// program's direct call sites with the src/opt/ WeightSource under the
/// static estimate, checks the advice against a real profile, then
/// actually inlines the top sites and differentially verifies that the
/// transformed program behaves identically.
///
/// Usage: inline_advisor [suite-program-name]   (default: gcc)
///
//===----------------------------------------------------------------------===//

#include "estimators/Pipeline.h"
#include "metrics/WeightMatching.h"
#include "opt/Inline.h"
#include "opt/WeightSource.h"
#include "suite/SuiteRunner.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace sest;

namespace {

void print(const std::string &S) { std::fputs(S.c_str(), stdout); }

} // namespace

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "gcc";
  const SuiteProgram *Spec = findSuiteProgram(Name);
  if (!Spec) {
    print("unknown suite program '" + Name + "'\n");
    return 1;
  }

  CompiledSuiteProgram P = compileAndProfileProgram(*Spec);
  if (!P.Ok) {
    print(P.Error + "\n");
    return 1;
  }

  // Static estimate: smart intra + Markov inter, as the paper recommends.
  EstimatorOptions Options;
  ProgramEstimate E = estimateProgram(P.unit(), *P.Cfgs, *P.CG, Options);
  opt::WeightSource W =
      opt::weightsFromEstimate(P.unit(), *P.Cfgs, E, Options);

  Profile Agg = aggregateProfiles(P.Profiles);

  print("Inlining advice for '" + Name + "' (top 10 direct call sites "
        "by static estimate):\n\n");
  TextTable T;
  T.setHeader({"#", "Call site", "Line", "Estimated", "Actual (avg)"});
  std::vector<opt::RankedCallSite> Ranked = opt::rankCallSites(*P.CG, W);
  for (size_t I = 0; I < Ranked.size() && I < 10; ++I) {
    const CallSiteInfo *S = Ranked[I].Site;
    T.addRow({std::to_string(I + 1),
              S->Caller->name() + " -> " + S->Callee->name(),
              std::to_string(S->Site->loc().Line),
              formatDouble(Ranked[I].Weight, 1),
              formatDouble(Agg.CallSiteCounts[S->CallSiteId] /
                               static_cast<double>(P.Profiles.size()),
                           1)});
  }
  print(T.str());

  double Score = weightMatchingScore(E.CallSiteEstimates,
                                     Agg.CallSiteCounts, 0.25);
  print("\nWeight-matching of the advice vs. the aggregate profile at "
        "the 25% cutoff: " + formatPercent(Score) + "\n");
  print("(Indirect call sites are omitted: \"it is difficult or "
        "impossible to inline calls through pointers\", paper §5.3.)\n");

  // Act on the advice: clone the hottest callees into their callers and
  // prove by differential interpretation that nothing changed.
  opt::InlinePlan Plan = opt::planInlining(P.unit(), *P.Cfgs, *P.CG, W);
  if (Plan.Sites.empty()) {
    print("\nNo call site is inlinable under the default budget.\n");
    return 0;
  }
  RunResult Base = runProgram(P.unit(), *P.Cfgs, Spec->Inputs.back(), {});
  opt::InlineMap Map = opt::applyInlining(*P.Ctx, *P.Cfgs, Plan);
  RunResult Inl = runProgram(P.unit(), *P.Cfgs, Spec->Inputs.back(), {});
  opt::InlineVerifyResult V = opt::compareInlinedRun(Base, Inl, Map);
  print("\nInlined " + std::to_string(Map.Applied.size()) +
        " sites; dynamic calls on input '" + Spec->Inputs.back().Name +
        "' dropped " + std::to_string(Base.LayoutCost.Calls) + " -> " +
        std::to_string(Inl.LayoutCost.Calls) + "; verification " +
        (V.Match ? "ok" : ("FAILED: " + V.Detail)) + "\n");
  return V.Match ? 0 : 1;
}

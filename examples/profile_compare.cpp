//===- examples/profile_compare.cpp - Cross-input profile stability --------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// How stable are profiles across inputs, and *where* does the static
/// estimator diverge from reality? The premise behind both profiling
/// and static estimation (after Fisher & Freudenberger) is that
/// programs behave consistently across inputs. This example drives the
/// accuracy-attribution API (obs/Accuracy.h) three ways: it attributes
/// the static estimate against the aggregate profile (per-family scores
/// plus WORST-n divergence tables naming the blocks, functions, call
/// sites and branches that cost the score), cross-scores every pair of
/// input profiles, and runs the paper's §3 leave-one-out protocol with
/// each held-out input scored through the same attribution path.
///
/// Usage: profile_compare [suite-program-name]   (default: eqntott)
///
//===----------------------------------------------------------------------===//

#include "estimators/Pipeline.h"
#include "metrics/Evaluation.h"
#include "obs/Accuracy.h"
#include "suite/SuiteRunner.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace sest;

namespace {

void print(const std::string &S) { std::fputs(S.c_str(), stdout); }

} // namespace

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "eqntott";
  const SuiteProgram *Spec = findSuiteProgram(Name);
  if (!Spec) {
    print("unknown suite program '" + Name + "'\n");
    return 1;
  }
  CompiledSuiteProgram P = compileAndProfileProgram(*Spec);
  if (!P.Ok) {
    print(P.Error + "\n");
    return 1;
  }
  auto Ids = scoredFunctionIds(P.unit());
  EstimatorOptions Opts;

  // Attribute the static estimate against the aggregate of every input
  // profile: not just "what is the score" but which entities lost it.
  Profile Agg = aggregateProfiles(P.Profiles);
  Agg.ProgramName = Spec->Name;
  Agg.InputName = "aggregate(" + std::to_string(P.Profiles.size()) + ")";
  ProgramEstimate Static = estimateProgram(P.unit(), *P.Cfgs, *P.CG, Opts);
  obs::AccuracyReport Rep = obs::computeAccuracy(
      P.unit(), *P.Cfgs, *P.CG, Static, Agg, Opts);
  print(obs::renderAccuracySummary(Rep));
  print("\n" + obs::renderWorstTables(Rep, 5) + "\n");

  // Cross-input stability: every input profile replayed as an estimator
  // and scored against every other input.
  print("Pairwise intra-procedural weight matching (5% cutoff) between "
        "input profiles of '" + Name + "':\n\n");
  TextTable T;
  std::vector<std::string> Header = {"train\\test"};
  for (const Profile &Q : P.Profiles)
    Header.push_back(Q.InputName);
  T.setHeader(Header);
  for (const Profile &Train : P.Profiles) {
    std::vector<std::string> Row = {Train.InputName};
    ProgramEstimate E = estimateFromProfile(Train, *P.CG);
    for (const Profile &Test : P.Profiles)
      Row.push_back(
          formatPercent(intraProceduralScore(E, Test, Ids, 0.05)));
    T.addRow(Row);
  }
  print(T.str());

  // Leave-one-out aggregate, the paper's §3 protocol — each held-out
  // input scored through the same attribution path, so the per-family
  // scores of "profiling with alternate inputs" line up with the static
  // estimator's summary above.
  print("\nLeave-one-out (profiling with alternate inputs):\n");
  TextTable L;
  L.setHeader({"Held out", "Blocks", "Functions", "Call sites", "Intra"});
  double Sum = 0;
  for (size_t I = 0; I < P.Profiles.size(); ++I) {
    Profile Rest = aggregateExcept(P.Profiles, I);
    ProgramEstimate E = estimateFromProfile(Rest, *P.CG);
    obs::AccuracyOptions AOpts;
    AOpts.Cutoff = 0.05;
    AOpts.SweepCutoffs = {};
    obs::AccuracyReport R = obs::computeAccuracy(
        P.unit(), *P.Cfgs, *P.CG, E, P.Profiles[I], Opts, AOpts);
    L.addRow({P.Profiles[I].InputName, formatPercent(R.Blocks.Score),
              formatPercent(R.Functions.Score),
              formatPercent(R.CallSites.Score),
              formatPercent(R.IntraScore)});
    Sum += R.IntraScore;
  }
  print(L.str());
  print("Leave-one-out aggregate score: " +
        formatPercent(Sum / P.Profiles.size()) + "\n");

  // Serialization round trip.
  std::string Text = writeProfileText(P.Profiles[0]);
  Profile Back;
  bool Ok = readProfileText(Text, Back);
  print("\nText serialization round trip of profile '" +
        P.Profiles[0].InputName + "': " +
        (Ok && Back.shapeMatches(P.Profiles[0]) ? "ok" : "FAILED") + " (" +
        std::to_string(Text.size()) + " bytes)\n");
  return 0;
}

//===- examples/profile_compare.cpp - Cross-input profile stability --------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// How stable are profiles across inputs? The premise behind both
/// profiling *and* static estimation (after Fisher & Freudenberger) is
/// that programs behave consistently across inputs. This example
/// cross-scores every pair of a program's input profiles with the
/// weight-matching metric, round-trips one profile through the text
/// serialization, and prints the leave-one-out aggregate score — the
/// "profiling" column of the paper's figures.
///
/// Usage: profile_compare [suite-program-name]   (default: eqntott)
///
//===----------------------------------------------------------------------===//

#include "estimators/Pipeline.h"
#include "metrics/Evaluation.h"
#include "suite/SuiteRunner.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace sest;

namespace {

void print(const std::string &S) { std::fputs(S.c_str(), stdout); }

} // namespace

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "eqntott";
  const SuiteProgram *Spec = findSuiteProgram(Name);
  if (!Spec) {
    print("unknown suite program '" + Name + "'\n");
    return 1;
  }
  CompiledSuiteProgram P = compileAndProfileProgram(*Spec);
  if (!P.Ok) {
    print(P.Error + "\n");
    return 1;
  }
  auto Ids = scoredFunctionIds(P.unit());

  print("Pairwise intra-procedural weight matching (5% cutoff) between "
        "input profiles of '" + Name + "':\n\n");
  TextTable T;
  std::vector<std::string> Header = {"train\\test"};
  for (const Profile &Q : P.Profiles)
    Header.push_back(Q.InputName);
  T.setHeader(Header);
  for (const Profile &Train : P.Profiles) {
    std::vector<std::string> Row = {Train.InputName};
    ProgramEstimate E = estimateFromProfile(Train, *P.CG);
    for (const Profile &Test : P.Profiles)
      Row.push_back(
          formatPercent(intraProceduralScore(E, Test, Ids, 0.05)));
    T.addRow(Row);
  }
  print(T.str());

  // Leave-one-out aggregate, the paper's §3 protocol.
  double Sum = 0;
  for (size_t I = 0; I < P.Profiles.size(); ++I) {
    Profile Agg = aggregateExcept(P.Profiles, I);
    ProgramEstimate E = estimateFromProfile(Agg, *P.CG);
    Sum += intraProceduralScore(E, P.Profiles[I], Ids, 0.05);
  }
  print("\nLeave-one-out aggregate score: " +
        formatPercent(Sum / P.Profiles.size()) + "\n");

  // Serialization round trip.
  std::string Text = writeProfileText(P.Profiles[0]);
  Profile Back;
  bool Ok = readProfileText(Text, Back);
  print("\nText serialization round trip of profile '" +
        P.Profiles[0].InputName + "': " +
        (Ok && Back.shapeMatches(P.Profiles[0]) ? "ok" : "FAILED") + " (" +
        std::to_string(Text.size()) + " bytes)\n");
  return 0;
}

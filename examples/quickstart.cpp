//===- examples/quickstart.cpp - API tour ----------------------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: compile a mini-C program, run every static estimator on
/// it, execute it to collect a real profile, and compare the two with
/// the weight-matching metric — the whole public API in ~100 lines.
///
//===----------------------------------------------------------------------===//

#include "callgraph/CallGraph.h"
#include "estimators/Pipeline.h"
#include "interp/Interp.h"
#include "lang/Parser.h"
#include "metrics/Evaluation.h"
#include "metrics/WeightMatching.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace sest;

namespace {

// The paper's running example, plus a caller.
const char *Program = R"(
char *strchr(char *str, int c) {
  while (*str) {
    if (*str == c)
      return str;
    str++;
  }
  return NULL;
}

int count_hits(char *text, char *chars) {
  int hits = 0;
  while (*chars) {
    if (strchr(text, *chars) != NULL)
      hits++;
    chars++;
  }
  return hits;
}

int main() {
  char text[16] = "hello world";
  char probe[8] = "aeiou";
  return count_hits(text, probe);
}
)";

void print(const std::string &S) { std::fputs(S.c_str(), stdout); }

} // namespace

int main() {
  // 1. Compile: lex + parse + semantic analysis.
  AstContext Ctx;
  DiagnosticEngine Diags;
  if (!parseAndAnalyze(Program, Ctx, Diags)) {
    print("compile error:\n" + Diags.str() + "\n");
    return 1;
  }

  // 2. Build control-flow graphs and the call graph.
  CfgModule Cfgs = CfgModule::build(Ctx.unit(), Diags);
  CallGraph CG = CallGraph::build(Ctx.unit(), Cfgs);

  // 3. Static estimation: smart intra heuristics + Markov call graph.
  EstimatorOptions Options;
  Options.Intra = IntraEstimatorKind::Smart;
  Options.Inter = InterEstimatorKind::Markov;
  ProgramEstimate Estimate = estimateProgram(Ctx.unit(), Cfgs, CG, Options);

  // 4. Run the program to collect the *actual* profile.
  ProgramInput Input;
  RunResult R = runProgram(Ctx.unit(), Cfgs, Input);
  if (!R.Ok) {
    print("runtime error: " + R.Error + "\n");
    return 1;
  }

  // 5. Compare: estimated vs. actual function invocation counts.
  print("Function invocation counts (estimated vs. actual):\n");
  TextTable T;
  T.setHeader({"Function", "Estimated", "Actual"});
  for (const FunctionDecl *F : Ctx.unit().Functions) {
    if (!F->isDefined())
      continue;
    T.addRow({F->name(),
              formatDouble(Estimate.FunctionEstimates[F->functionId()], 2),
              formatDouble(
                  R.TheProfile.Functions[F->functionId()].EntryCount, 0)});
  }
  print(T.str());

  // 6. Score with the paper's weight-matching metric.
  auto Ids = scoredFunctionIds(Ctx.unit());
  print("\nWeight-matching scores against this run:\n");
  for (double Cutoff : {0.25, 0.50}) {
    print("  functions @" + formatPercent(Cutoff, 0) + ": " +
          formatPercent(
              functionInvocationScore(Estimate, R.TheProfile, Ids, Cutoff)) +
          "   blocks @" + formatPercent(Cutoff, 0) + ": " +
          formatPercent(
              intraProceduralScore(Estimate, R.TheProfile, Ids, Cutoff)) +
          "\n");
  }
  print("\nProgram output was: exit code " + std::to_string(R.ExitCode) +
        " (vowels found in \"hello world\": 2 -> e, o)\n");
  return 0;
}

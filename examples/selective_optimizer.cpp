//===- examples/selective_optimizer.cpp - §6 on any program ----------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §6 experiment generalized: pick any suite program, rank
/// its functions by the static Markov invocation estimate, optimize the
/// top k (halving their simulated per-operation cost), and report the
/// speedup curve on a held-out input.
///
/// Usage: selective_optimizer [suite-program-name]   (default: compress)
///
//===----------------------------------------------------------------------===//

#include "estimators/Pipeline.h"
#include "opt/WeightSource.h"
#include "suite/SuiteRunner.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <cstdio>

using namespace sest;

namespace {

void print(const std::string &S) { std::fputs(S.c_str(), stdout); }

} // namespace

int main(int argc, char **argv) {
  std::string Name = argc > 1 ? argv[1] : "compress";
  const SuiteProgram *Spec = findSuiteProgram(Name);
  if (!Spec) {
    print("unknown suite program '" + Name + "'\n");
    return 1;
  }
  CompiledSuiteProgram P = compileProgramOnly(*Spec);
  if (!P.Ok) {
    print(P.Error + "\n");
    return 1;
  }

  EstimatorOptions Options;
  ProgramEstimate E = estimateProgram(P.unit(), *P.Cfgs, *P.CG, Options);

  opt::WeightSource W =
      opt::weightsFromEstimate(P.unit(), *P.Cfgs, E, Options);
  std::vector<const FunctionDecl *> Ranking;
  for (const opt::RankedFunction &R : opt::rankFunctions(P.unit(), W))
    Ranking.push_back(R.F);

  const ProgramInput &Input = Spec->Inputs.back();
  auto CyclesWith = [&](size_t K) {
    InterpOptions Opts;
    for (size_t I = 0; I < K && I < Ranking.size(); ++I)
      Opts.OptimizedFunctions.insert(Ranking[I]);
    RunResult R = runProgram(P.unit(), *P.Cfgs, Input, Opts);
    if (!R.Ok) {
      print("runtime error: " + R.Error + "\n");
      std::exit(1);
    }
    return R.TheProfile.TotalCycles;
  };

  double Base = CyclesWith(0);
  print("Selective optimization of '" + Name + "' on input '" +
        Input.Name + "' (" + std::to_string(Ranking.size()) +
        " functions, ranked by static Markov estimate):\n\n");
  TextTable T;
  T.setHeader({"k", "Function added", "Cycles", "Speedup"});
  T.addRow({"0", "-", formatDouble(Base, 0), "1.000x"});
  size_t MaxK = std::min<size_t>(Ranking.size(), 8);
  for (size_t K = 1; K <= MaxK; ++K) {
    double C = CyclesWith(K);
    T.addRow({std::to_string(K), Ranking[K - 1]->name(),
              formatDouble(C, 0), formatDouble(Base / C, 3) + "x"});
  }
  double All = CyclesWith(Ranking.size());
  T.addRow({std::to_string(Ranking.size()), "(all)", formatDouble(All, 0),
            formatDouble(Base / All, 3) + "x"});
  print(T.str());
  print("\nFlattening of the curve before k reaches the function count "
        "means the estimate found the hot functions early (paper Fig. "
        "10).\n");
  return 0;
}

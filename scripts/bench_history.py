#!/usr/bin/env python3
"""Append the current headline benchmark numbers to bench/history.jsonl.

Reads the same reports check_perf.py validates — service_throughput.json
(cold/warm service rps + warm speedup), analysis_time.json (the sparse
vs dense solver speedup at n=1000), pipeline_latency.json (per-stage
p99), interp_tiers.json (the native-over-bytecode execution-tier
speedup with its compile break-even), and tune_report.json (the
autotuner's static-search recovery, winning-config agreement, and mean
regret) — condenses them into one history
entry, appends it to
``bench/history.jsonl``, and prints the deltas against the previous
entry so a regression is visible the moment the history grows.

The history is line-delimited JSON (one entry per line, schema
``sest-bench-history/1``) so it diffs cleanly, appends atomically, and
feeds straight into sestc --validate-json or any JSONL tooling.

Usage:
    scripts/bench_history.py [--bench-dir bench] [--history FILE]
                             [--label TEXT] [--dry-run]

Typically run right after scripts/regenerate.sh, which refreshes the
source reports from a Release build.
"""

import argparse
import json
import os
import subprocess
import sys

SCHEMA = "sest-bench-history/1"

HEADLINES = [
    # (key, source description, higher_is_better)
    ("service_cold_rps", "service_throughput.json cold.rps", True),
    ("service_warm_rps", "service_throughput.json warm.rps", True),
    ("service_warm_speedup", "service_throughput.json warm_speedup", True),
    ("solver_sparse_speedup_1000", "analysis_time.json dense/sparse @1000", True),
    ("stage_parse_p99_us", "pipeline_latency.json parse p99", False),
    ("stage_cfg_p99_us", "pipeline_latency.json cfg p99", False),
    ("stage_callgraph_p99_us", "pipeline_latency.json callgraph p99", False),
    ("stage_estimate_p99_us", "pipeline_latency.json estimate p99", False),
    ("native_over_bytecode", "interp_tiers.json suite bytecode/native", True),
    ("native_suite_ms", "interp_tiers.json suite native_ms", False),
    ("native_compile_ms", "interp_tiers.json suite native_compile_ms", False),
    ("native_breakeven_runs", "interp_tiers.json suite breakeven_runs", False),
    ("tune_static_recovery", "tune_report.json static_search_recovery", True),
    ("tune_config_overlap", "tune_report.json mean_config_overlap", True),
    ("tune_mean_regret", "tune_report.json mean_regret", False),
]


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_history: cannot read {path}: {e}", file=sys.stderr)
        return None


def git_revision(repo_root):
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_root, capture_output=True, text=True, timeout=10,
        )
        if rev.returncode == 0:
            return rev.stdout.strip()
    except OSError:
        pass
    return "unknown"


def collect_entry(bench_dir):
    """One history entry from the current bench/*.json reports."""
    entry = {"schema": SCHEMA}

    svc = load_json(os.path.join(bench_dir, "service_throughput.json"))
    if svc:
        entry["service_cold_rps"] = float(svc.get("cold", {}).get("rps", 0.0))
        entry["service_warm_rps"] = float(svc.get("warm", {}).get("rps", 0.0))
        entry["service_warm_speedup"] = float(svc.get("warm_speedup", 0.0))

    at = load_json(os.path.join(bench_dir, "analysis_time.json"))
    if at:
        times = {
            b.get("name"): float(b.get("real_time", 0.0))
            for b in at.get("benchmarks", [])
        }
        sparse = times.get("solver/sparse/1000", 0.0)
        dense = times.get("solver/dense/1000", 0.0)
        if sparse > 0.0 and dense > 0.0:
            entry["solver_sparse_speedup_1000"] = dense / sparse

    tiers = load_json(os.path.join(bench_dir, "interp_tiers.json"))
    if tiers and tiers.get("native_available", False):
        suite = tiers.get("suite", {})
        entry["native_over_bytecode"] = float(
            suite.get("bytecode_over_native", 0.0))
        entry["native_suite_ms"] = float(suite.get("native_ms", 0.0))
        entry["native_compile_ms"] = float(
            suite.get("native_compile_ms", 0.0))
        entry["native_breakeven_runs"] = float(
            suite.get("breakeven_runs", 0.0))

    tune = load_json(os.path.join(bench_dir, "tune_report.json"))
    if tune:
        suite = tune.get("suite", {})
        entry["tune_static_recovery"] = float(
            suite.get("static_search_recovery", 0.0))
        entry["tune_config_overlap"] = float(
            suite.get("mean_config_overlap", 0.0))
        entry["tune_mean_regret"] = float(suite.get("mean_regret", 0.0))

    lat = load_json(os.path.join(bench_dir, "pipeline_latency.json"))
    if lat:
        for stage, stats in sorted(lat.get("stages", {}).items()):
            entry[f"stage_{stage}_p99_us"] = float(stats.get("p99_us", 0.0))

    return entry


def read_history(path):
    entries = []
    if not os.path.exists(path):
        return entries
    with open(path, "r", encoding="utf-8") as f:
        for n, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except ValueError as e:
                print(f"bench_history: {path}:{n}: bad entry: {e}",
                      file=sys.stderr)
    return entries


def print_deltas(prev, cur):
    print(f"{'metric':<28} {'previous':>14} {'current':>14} {'delta':>10}")
    for key, _, higher_better in HEADLINES:
        if key not in cur:
            continue
        new = cur[key]
        old = prev.get(key) if prev else None
        if old is None or old == 0:
            print(f"{key:<28} {'-':>14} {new:>14.3f} {'-':>10}")
            continue
        pct = 100.0 * (new - old) / old
        marker = ""
        if abs(pct) >= 2.0:
            improved = (pct > 0) == higher_better
            marker = "  (improved)" if improved else "  (REGRESSED)"
        print(f"{key:<28} {old:>14.3f} {new:>14.3f} {pct:>+9.1f}%{marker}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bench-dir", default=None,
                    help="directory with the source reports (default: "
                         "<repo>/bench)")
    ap.add_argument("--history", default=None,
                    help="history file (default: <bench-dir>/history.jsonl)")
    ap.add_argument("--label", default="",
                    help="free-form label stored with the entry")
    ap.add_argument("--dry-run", action="store_true",
                    help="print the entry and deltas without appending")
    args = ap.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    bench_dir = args.bench_dir or os.path.join(repo_root, "bench")
    history_path = args.history or os.path.join(bench_dir, "history.jsonl")

    entry = collect_entry(bench_dir)
    if len(entry) <= 1:
        print("bench_history: no benchmark reports found; nothing to record",
              file=sys.stderr)
        return 1
    entry["git"] = git_revision(repo_root)
    if args.label:
        entry["label"] = args.label

    history = read_history(history_path)
    prev = history[-1] if history else None

    print_deltas(prev, entry)

    if args.dry_run:
        print("bench_history: dry run, history not updated")
        return 0

    with open(history_path, "a", encoding="utf-8") as f:
        f.write(json.dumps(entry, sort_keys=True) + "\n")
    print(f"bench_history: appended entry #{len(history) + 1} "
          f"to {os.path.relpath(history_path, repo_root)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

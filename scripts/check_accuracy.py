#!/usr/bin/env python3
"""Compare a fresh suite accuracy report against the checked-in baseline.

Runs ``sestc --suite --accuracy-report`` and compares per-program family
scores (block / function / call-site weight matching at the attribution
cutoff), the intra-procedural protocol score and the static branch miss
rate with ``bench/accuracy_report.json``. Accuracy is a pure function of
the estimates and the deterministic profiles, so fresh values should
match the baseline exactly on any machine; the tolerance only absorbs
floating-point differences across toolchains, and only *regressions*
(scores down, miss rate up, beyond tolerance) are flagged — genuine
improvements are reported but pass, with a hint to re-run
scripts/regenerate.sh.

Exit status: 0 = no regression, 1 = regression flagged, 2 = could not
run. Intended as a non-blocking CI signal (continue-on-error).

Usage: scripts/check_accuracy.py [--build BUILD_DIR] [--baseline FILE]
                                 [--tolerance ABS]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# (label, extractor, higher_is_better)
METRICS = [
    ("block", lambda p: p["families"]["block"]["score"], True),
    ("function", lambda p: p["families"]["function"]["score"], True),
    ("call_site", lambda p: p["families"]["call_site"]["score"], True),
    ("intra", lambda p: p["intra_weighted"]["score"], True),
    ("miss_rate", lambda p: p["branches"]["miss_rate"], False),
]


def load_programs(report):
    return {p["program"]: p for p in report.get("programs", [])}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build", default="build", help="build directory")
    ap.add_argument(
        "--baseline",
        default=os.path.join(ROOT, "bench", "accuracy_report.json"),
        help="checked-in baseline accuracy report",
    )
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.005,
        help="absolute score drift tolerated before flagging",
    )
    args = ap.parse_args()

    sestc = os.path.join(args.build, "tools", "sestc")
    if not os.path.exists(sestc):
        print(f"check_accuracy: {sestc} not built", file=sys.stderr)
        return 2
    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except OSError as e:
        print(f"check_accuracy: cannot read baseline: {e}", file=sys.stderr)
        return 2
    if baseline.get("schema") != "sest-accuracy-report/1":
        print(
            f"check_accuracy: unexpected baseline schema "
            f"{baseline.get('schema')!r}",
            file=sys.stderr,
        )
        return 2

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        fresh_path = tmp.name
    try:
        subprocess.run(
            [sestc, "--suite", "--accuracy-report", fresh_path],
            check=True,
            stdout=subprocess.DEVNULL,
        )
        with open(fresh_path) as f:
            fresh = json.load(f)
    except (subprocess.CalledProcessError, OSError, ValueError) as e:
        print(f"check_accuracy: suite run failed: {e}", file=sys.stderr)
        return 2
    finally:
        os.unlink(fresh_path)

    base_progs = load_programs(baseline)
    fresh_progs = load_programs(fresh)

    failed = False
    improved = False
    header = f"{'program':<10} " + " ".join(
        f"{label:>10}" for label, _, _ in METRICS
    )
    print(header)
    for name, base in sorted(base_progs.items()):
        freshp = fresh_progs.get(name)
        if freshp is None:
            print(f"{name:<10} missing from fresh report")
            failed = True
            continue
        cells = []
        for label, extract, higher_better in METRICS:
            try:
                b, f = extract(base), extract(freshp)
            except (KeyError, TypeError):
                cells.append(f"{'?':>10}")
                failed = True
                continue
            delta = f - b
            regression = -delta if higher_better else delta
            mark = ""
            if regression > args.tolerance:
                mark = "!"
                failed = True
            elif -regression > args.tolerance:
                mark = "+"
                improved = True
            cells.append(f"{f:>9.4f}{mark or ' '}")
        print(f"{name:<10} " + " ".join(cells))

    for name in sorted(set(fresh_progs) - set(base_progs)):
        print(f"{name:<10} new program (not in baseline)")
        improved = True

    if failed:
        print(
            "check_accuracy: accuracy regression flagged "
            "(non-blocking signal); '!' marks the regressed metric"
        )
        return 1
    if improved:
        print(
            "check_accuracy: accuracy improved ('+'); consider "
            "re-running scripts/regenerate.sh to refresh the baseline"
        )
    else:
        print("check_accuracy: matches baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())

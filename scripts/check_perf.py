#!/usr/bin/env python3
"""Compare a fresh --suite run against the checked-in baseline report.

Runs ``sestc --suite --report`` and compares per-program wall times with
``bench/suite_report.json``. Wall times are machine- and load-dependent,
so the tolerance is deliberately generous (default: flag a program only
when it is 3x slower than baseline); step counts are deterministic and
must match exactly when both reports used the same engine.

Exit status: 0 = within tolerance, 1 = regression flagged, 2 = could not
run. Intended as a non-blocking CI signal (continue-on-error).

Usage: scripts/check_perf.py [--build BUILD_DIR] [--baseline FILE]
                             [--tolerance RATIO]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def load_programs(report):
    return {p["name"]: p for p in report.get("programs", [])}


def total_wall_ms(program):
    return sum(r.get("wall_ms", 0.0) for r in program.get("runs", []))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build", default="build", help="build directory")
    ap.add_argument(
        "--baseline",
        default=os.path.join(ROOT, "bench", "suite_report.json"),
        help="checked-in baseline report",
    )
    ap.add_argument(
        "--tolerance",
        type=float,
        default=3.0,
        help="flag a program when fresh/baseline wall time exceeds this",
    )
    args = ap.parse_args()

    sestc = os.path.join(args.build, "tools", "sestc")
    if not os.path.exists(sestc):
        print(f"check_perf: {sestc} not built", file=sys.stderr)
        return 2
    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except OSError as e:
        print(f"check_perf: cannot read baseline: {e}", file=sys.stderr)
        return 2

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        fresh_path = tmp.name
    try:
        subprocess.run(
            [sestc, "--suite", "--report", fresh_path],
            check=True,
            stdout=subprocess.DEVNULL,
        )
        with open(fresh_path) as f:
            fresh = json.load(f)
    except (subprocess.CalledProcessError, OSError, ValueError) as e:
        print(f"check_perf: suite run failed: {e}", file=sys.stderr)
        return 2
    finally:
        os.unlink(fresh_path)

    base_progs = load_programs(baseline)
    fresh_progs = load_programs(fresh)
    same_engine = baseline.get("engine") == fresh.get("engine")

    failed = False
    print(f"{'program':<10} {'base ms':>9} {'fresh ms':>9} {'ratio':>6}")
    for name, base in sorted(base_progs.items()):
        freshp = fresh_progs.get(name)
        if freshp is None:
            print(f"{name:<10} missing from fresh report")
            failed = True
            continue
        if not freshp.get("ok", False):
            print(f"{name:<10} FAILED: {freshp.get('error', '?')}")
            failed = True
            continue
        base_ms = total_wall_ms(base)
        fresh_ms = total_wall_ms(freshp)
        ratio = fresh_ms / base_ms if base_ms > 0 else float("inf")
        flag = ""
        if ratio > args.tolerance:
            flag = f"  <-- slower than {args.tolerance:.1f}x baseline"
            failed = True
        if same_engine:
            base_steps = sum(r.get("steps", 0) for r in base.get("runs", []))
            fresh_steps = sum(
                r.get("steps", 0) for r in freshp.get("runs", [])
            )
            if base_steps != fresh_steps:
                flag += (
                    f"  <-- steps drifted: {base_steps} -> {fresh_steps}"
                )
                failed = True
        print(f"{name:<10} {base_ms:>9.1f} {fresh_ms:>9.1f} {ratio:>6.2f}{flag}")

    if failed:
        print("check_perf: regression flagged (non-blocking signal)")
        return 1
    print("check_perf: within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())

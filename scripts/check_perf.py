#!/usr/bin/env python3
"""Compare fresh performance runs against the checked-in baselines.

Two checks, both with deliberately generous machine-variance tolerance:

1. Suite wall times: runs ``sestc --suite --report`` and compares
   per-program wall times with ``bench/suite_report.json`` (flag only at
   3x slower); step counts are deterministic and must match exactly when
   both reports used the same engine.

2. Solver / pipeline timings: runs ``bench_analysis_time`` on the
   solver-scaling and parallel-pipeline benchmarks and compares
   per-benchmark real time with ``bench/analysis_time.json``. Also
   enforces the structural invariant that the sparse SCC solver beats
   the dense oracle by at least 5x at 1000 blocks — that ratio is
   machine-independent, so it is checked at full strength.

3. Pipeline stage latency: runs ``bench_pipeline_latency`` and compares
   per-stage p90 latency with ``bench/pipeline_latency.json`` (flag only
   at ``--tolerance`` times slower — advisory, wall-clock dependent).

4. Service throughput: runs ``bench_service`` (the million-request
   zipfian mix against the sestd service core) and enforces the
   machine-independent invariant that warm (memoized) throughput beats
   cold (cache-disabled) throughput by at least 5x; warm requests/s
   against ``bench/service_throughput.json`` is advisory wall-clock.

5. Execution tiers: runs ``bench_interp --tiers-json`` (the three-tier
   suite comparison) and enforces the machine-independent invariant
   that the native tier beats the bytecode VM by at least 3x across the
   suite — the ratio both tiers measure on the same machine in the same
   process; absolute native wall time against
   ``bench/interp_tiers.json`` is advisory. When the host has no C
   compiler the native tier is a capability skip, not a failure.

6. Optimizer outcomes: runs ``sestc --suite --optimize all --opt-report``
   and checks ``bench/opt_report.json`` invariants. Differential
   verification of every inlined program and the layout-cost VM
   cross-checks are deterministic and checked at full strength; the
   static recovery ratio must meet the report's own advisory floor and
   the static-vs-profile decision overlaps (layout pair overlap, inline
   Jaccard) must not regress below the checked-in baseline by more than
   ``OVERLAP_SLACK``.

7. Autotuner outcomes: runs ``bench_tune --json`` and checks
   ``bench/tune_report.json`` invariants. Differential verification of
   every tuned winner is deterministic and checked at full strength;
   the static-search recovery must meet the report's own advisory floor
   (0.70) and the winning-config agreement must not regress below the
   baseline by more than ``OVERLAP_SLACK``.

When anything fails, the log ends with one line per failed gate naming
the gate with its baseline-vs-current numbers, so the verdict needs no
scrolling: ``check_perf: FAILED <gate>: baseline X vs current Y (...)``.

Exit status: 0 = within tolerance, 1 = regression flagged, 2 = could not
run. Intended as a non-blocking CI signal (continue-on-error).

Usage: scripts/check_perf.py [--build BUILD_DIR] [--baseline FILE]
                             [--bench-baseline FILE] [--tolerance RATIO]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Every flagged floor/tolerance lands here as one self-contained line
# ("<gate>: baseline X vs current Y (bound Z)"), so the tail of the log
# names exactly which gates failed with the numbers that failed them —
# no scrolling back through per-program tables.
FAILED_GATES = []


def flag_gate(gate, baseline, current, bound):
    """Record one failed gate as a single baseline-vs-current line."""
    FAILED_GATES.append(
        f"{gate}: baseline {baseline} vs current {current} ({bound})"
    )


def load_programs(report):
    return {p["name"]: p for p in report.get("programs", [])}


def total_wall_ms(program):
    return sum(r.get("wall_ms", 0.0) for r in program.get("runs", []))


BENCH_FILTER = "solver|pipeline"
MIN_SPARSE_SPEEDUP = 5.0


def bench_times(report):
    """name -> real_time (ns) for a google-benchmark JSON document."""
    times = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        times[b["name"]] = float(b.get("real_time", 0.0))
    return times


def check_bench(build, baseline_path, tolerance):
    """Solver / pipeline timing check. Returns 0/1/2 like main."""
    bench = os.path.join(build, "bench", "bench_analysis_time")
    if not os.path.exists(bench):
        print(f"check_perf: {bench} not built", file=sys.stderr)
        return 2
    try:
        with open(baseline_path) as f:
            baseline = bench_times(json.load(f))
    except OSError as e:
        print(f"check_perf: cannot read bench baseline: {e}", file=sys.stderr)
        return 2

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        fresh_path = tmp.name
    try:
        subprocess.run(
            [
                bench,
                f"--benchmark_filter={BENCH_FILTER}",
                f"--benchmark_out={fresh_path}",
                "--benchmark_out_format=json",
            ],
            check=True,
            stdout=subprocess.DEVNULL,
        )
        with open(fresh_path) as f:
            fresh = bench_times(json.load(f))
    except (subprocess.CalledProcessError, OSError, ValueError) as e:
        print(f"check_perf: bench run failed: {e}", file=sys.stderr)
        return 2
    finally:
        os.unlink(fresh_path)

    failed = False
    print(f"\n{'benchmark':<28} {'base ms':>9} {'fresh ms':>9} {'ratio':>6}")
    for name, base_ns in sorted(baseline.items()):
        fresh_ns = fresh.get(name)
        if fresh_ns is None:
            print(f"{name:<28} missing from fresh run")
            failed = True
            continue
        ratio = fresh_ns / base_ns if base_ns > 0 else float("inf")
        flag = ""
        if ratio > tolerance:
            flag = f"  <-- slower than {tolerance:.1f}x baseline"
            failed = True
            flag_gate(
                f"bench {name}",
                f"{base_ns / 1e6:.3f} ms",
                f"{fresh_ns / 1e6:.3f} ms",
                f"tolerance {tolerance:.1f}x",
            )
        print(
            f"{name:<28} {base_ns / 1e6:>9.3f} {fresh_ns / 1e6:>9.3f}"
            f" {ratio:>6.2f}{flag}"
        )

    # Machine-independent invariant: sparse must stay well ahead of the
    # dense oracle at 1000 blocks.
    sparse = fresh.get("solver/sparse/1000")
    dense = fresh.get("solver/dense/1000")
    if sparse and dense:
        speedup = dense / sparse
        ok = speedup >= MIN_SPARSE_SPEEDUP
        print(
            f"sparse-vs-dense speedup at 1000 blocks: {speedup:.1f}x"
            + ("" if ok else f"  <-- below {MIN_SPARSE_SPEEDUP:.0f}x floor")
        )
        if not ok:
            flag_gate(
                "solver sparse-vs-dense speedup",
                f"{MIN_SPARSE_SPEEDUP:.0f}x floor",
                f"{speedup:.1f}x",
                "machine-independent floor",
            )
        failed = failed or not ok
    else:
        print("check_perf: solver benchmarks missing from fresh run")
        failed = True

    return 1 if failed else 0


def check_latency(build, baseline_path, tolerance):
    """Per-stage pipeline latency percentile check. Returns 0/1/2.

    Percentiles are wall-clock, so this is the same advisory contract as
    the suite wall-time check: flag only when a stage's p90 exceeds the
    baseline by ``tolerance``x.
    """
    bench = os.path.join(build, "bench", "bench_pipeline_latency")
    if not os.path.exists(bench):
        print(f"check_perf: {bench} not built", file=sys.stderr)
        return 2
    try:
        with open(baseline_path) as f:
            baseline = json.load(f).get("stages", {})
    except OSError as e:
        print(f"check_perf: cannot read latency baseline: {e}",
              file=sys.stderr)
        return 2

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        fresh_path = tmp.name
    try:
        subprocess.run(
            [bench, "--json", fresh_path],
            check=True,
            stdout=subprocess.DEVNULL,
        )
        with open(fresh_path) as f:
            fresh = json.load(f).get("stages", {})
    except (subprocess.CalledProcessError, OSError, ValueError) as e:
        print(f"check_perf: latency bench run failed: {e}", file=sys.stderr)
        return 2
    finally:
        os.unlink(fresh_path)

    failed = False
    print(f"\n{'stage':<12} {'base p90':>9} {'fresh p90':>9} {'ratio':>6}")
    for name, base in sorted(baseline.items()):
        freshs = fresh.get(name)
        if freshs is None:
            print(f"{name:<12} missing from fresh run")
            failed = True
            continue
        base_p90 = float(base.get("p90_us", 0.0))
        fresh_p90 = float(freshs.get("p90_us", 0.0))
        ratio = fresh_p90 / base_p90 if base_p90 > 0 else float("inf")
        flag = ""
        if ratio > tolerance:
            flag = f"  <-- slower than {tolerance:.1f}x baseline"
            failed = True
            flag_gate(
                f"latency {name} p90",
                f"{base_p90:.1f} us",
                f"{fresh_p90:.1f} us",
                f"tolerance {tolerance:.1f}x",
            )
        print(
            f"{name:<12} {base_p90:>9.1f} {fresh_p90:>9.1f} {ratio:>6.2f}{flag}"
        )
    return 1 if failed else 0


MIN_SERVICE_WARM_SPEEDUP = 5.0


def check_service(build, baseline_path, tolerance):
    """Service memoization throughput check. Returns 0/1/2 like main.

    The warm-over-cold speedup ratio is machine-independent (both
    phases run on the same machine in the same process), so the 5x
    floor is checked at full strength; absolute warm throughput is
    wall-clock and compared advisorily against the baseline.
    """
    bench = os.path.join(build, "bench", "bench_service")
    if not os.path.exists(bench):
        print(f"check_perf: {bench} not built", file=sys.stderr)
        return 2
    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
    except OSError as e:
        print(f"check_perf: cannot read service baseline: {e}",
              file=sys.stderr)
        return 2

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        fresh_path = tmp.name
    try:
        subprocess.run(
            [bench, "--json", fresh_path],
            check=True,
            stdout=subprocess.DEVNULL,
        )
        with open(fresh_path) as f:
            fresh = json.load(f)
    except (subprocess.CalledProcessError, OSError, ValueError) as e:
        print(f"check_perf: service bench run failed: {e}", file=sys.stderr)
        return 2
    finally:
        os.unlink(fresh_path)

    failed = False

    speedup = float(fresh.get("warm_speedup", 0.0))
    flag = ""
    if speedup < MIN_SERVICE_WARM_SPEEDUP:
        flag = f"  <-- below {MIN_SERVICE_WARM_SPEEDUP:.0f}x floor"
        failed = True
        flag_gate(
            "service warm-over-cold speedup",
            f"{MIN_SERVICE_WARM_SPEEDUP:.0f}x floor",
            f"{speedup:.1f}x",
            "machine-independent floor",
        )
    print(f"\nservice: warm-over-cold speedup {speedup:.1f}x{flag}")

    bad = int(fresh.get("cold", {}).get("bad_responses", 0)) + int(
        fresh.get("warm", {}).get("bad_responses", 0)
    )
    if bad:
        print(f"service: {bad} ok:false responses in the mix  <-- FAILED")
        failed = True
        flag_gate("service ok:false responses", "0", str(bad),
                  "deterministic invariant")

    base_rps = float(baseline.get("warm", {}).get("rps", 0.0))
    fresh_rps = float(fresh.get("warm", {}).get("rps", 0.0))
    ratio = base_rps / fresh_rps if fresh_rps > 0 else float("inf")
    flag = ""
    if ratio > tolerance:
        flag = f"  <-- slower than {tolerance:.1f}x baseline"
        failed = True
        flag_gate(
            "service warm throughput",
            f"{base_rps:,.0f} req/s",
            f"{fresh_rps:,.0f} req/s",
            f"tolerance {tolerance:.1f}x",
        )
    print(
        f"service: warm throughput {fresh_rps:,.0f} req/s"
        f" (baseline {base_rps:,.0f}){flag}"
    )
    return 1 if failed else 0


MIN_NATIVE_OVER_BYTECODE = 3.0


def check_tiers(build, baseline_path, tolerance):
    """Three-tier execution comparison check. Returns 0/1/2 like main.

    The bytecode-over-native speedup is machine-independent (both tiers
    run the same steps on the same machine in the same process), so the
    3x floor is checked at full strength; absolute suite native wall
    time is advisory against the checked-in baseline. A host with no C
    compiler skips the native checks cleanly (the report says why).
    """
    bench = os.path.join(build, "bench", "bench_interp")
    if not os.path.exists(bench):
        print(f"check_perf: {bench} not built", file=sys.stderr)
        return 2

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        fresh_path = tmp.name
    try:
        subprocess.run(
            [bench, "--tiers-json", fresh_path],
            check=True,
            stdout=subprocess.DEVNULL,
        )
        with open(fresh_path) as f:
            fresh = json.load(f)
    except (subprocess.CalledProcessError, OSError, ValueError) as e:
        print(f"check_perf: tier bench run failed: {e}", file=sys.stderr)
        return 2
    finally:
        os.unlink(fresh_path)

    if not fresh.get("native_available", False):
        print(
            "\ntiers: native engine unavailable"
            f" ({fresh.get('native_unavailable_reason', '?')}); skipped"
        )
        return 0

    failed = False
    suite = fresh.get("suite", {})
    speedup = float(suite.get("bytecode_over_native", 0.0))
    flag = ""
    if speedup < MIN_NATIVE_OVER_BYTECODE:
        flag = f"  <-- below {MIN_NATIVE_OVER_BYTECODE:.0f}x floor"
        failed = True
        flag_gate(
            "tiers native-over-bytecode speedup",
            f"{MIN_NATIVE_OVER_BYTECODE:.0f}x floor",
            f"{speedup:.2f}x",
            "machine-independent floor",
        )
    print(f"\ntiers: native-over-bytecode speedup {speedup:.2f}x{flag}")
    print(
        f"tiers: native break-even {suite.get('breakeven_runs', 0.0):.0f}"
        " suite runs (compile cost / per-run gain)"
    )

    baseline = None
    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
    except OSError as e:
        print(f"check_perf: cannot read tiers baseline: {e}", file=sys.stderr)
    if baseline and baseline.get("native_available", False):
        base_ms = float(baseline.get("suite", {}).get("native_ms", 0.0))
        fresh_ms = float(suite.get("native_ms", 0.0))
        ratio = fresh_ms / base_ms if base_ms > 0 else float("inf")
        flag = ""
        if ratio > tolerance:
            flag = f"  <-- slower than {tolerance:.1f}x baseline"
            failed = True
            flag_gate(
                "tiers suite native wall",
                f"{base_ms:.1f} ms",
                f"{fresh_ms:.1f} ms",
                f"tolerance {tolerance:.1f}x",
            )
        print(
            f"tiers: suite native wall {fresh_ms:.1f} ms"
            f" (baseline {base_ms:.1f}, ratio {ratio:.2f}){flag}"
        )
    return 1 if failed else 0


OVERLAP_SLACK = 0.05


def mean_pair_overlap(report):
    overlaps = [
        p["layout"]["static_vs_profile_pair_overlap"]
        for p in report.get("programs", [])
        if p.get("ok") and "layout" in p
    ]
    return sum(overlaps) / len(overlaps) if overlaps else 0.0


def check_opt(build, baseline_path):
    """Optimizer invariants and decision-overlap no-regression check.

    Returns 0/1/2 like main. Inline verification and the VM cross-checks
    are deterministic, so they are hard failures; the recovery ratio and
    overlap floors are the advisory trajectory guard.
    """
    sestc = os.path.join(build, "tools", "sestc")
    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
    except OSError as e:
        print(f"check_perf: cannot read opt baseline: {e}", file=sys.stderr)
        return 2

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        fresh_path = tmp.name
    try:
        # Exit status reflects verification failures; the JSON says which,
        # so don't bail on a non-zero exit here.
        subprocess.run(
            [sestc, "--suite", "--optimize", "all", "--opt-report",
             fresh_path],
            stdout=subprocess.DEVNULL,
        )
        with open(fresh_path) as f:
            fresh = json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_perf: opt report run failed: {e}", file=sys.stderr)
        return 2
    finally:
        os.unlink(fresh_path)

    failed = False
    suite = fresh.get("suite", {})
    layout = suite.get("layout", {})
    inline = suite.get("inline", {})

    # Deterministic invariants: full strength.
    if not inline.get("all_verified", False):
        bad = [
            f"{p['name']}/{s['source']}"
            for p in fresh.get("programs", [])
            for s in p.get("inline", {}).get("sources", [])
            if not s.get("verified", True)
        ]
        print(f"opt: inliner differential verification FAILED: {bad}")
        failed = True
        flag_gate("opt inline verification", "all verified",
                  f"failing: {bad}", "deterministic invariant")
    if not layout.get("all_crosschecks_ok", False):
        print("opt: layout-cost VM cross-check FAILED")
        failed = True
        flag_gate("opt layout VM cross-check", "all ok", "mismatch",
                  "deterministic invariant")

    # Advisory trajectory: recovery floor and overlap no-regression.
    ratio = layout.get("static_recovery_ratio", 0.0)
    floor = layout.get("recovery_floor", 0.0)
    flag = "" if ratio >= floor else f"  <-- below {floor:.2f} floor"
    print(f"opt: static recovery ratio {ratio:.3f}{flag}")
    if ratio < floor:
        flag_gate("opt static recovery ratio", f"{floor:.2f} floor",
                  f"{ratio:.3f}", "advisory floor")
    failed = failed or ratio < floor

    base_suite = baseline.get("suite", {})
    for label, base_val, fresh_val in [
        (
            "layout pair overlap",
            mean_pair_overlap(baseline),
            mean_pair_overlap(fresh),
        ),
        (
            "inline site jaccard",
            base_suite.get("inline", {}).get("mean_jaccard", 0.0),
            inline.get("mean_jaccard", 0.0),
        ),
    ]:
        flag = ""
        if fresh_val < base_val - OVERLAP_SLACK:
            flag = f"  <-- regressed from baseline {base_val:.3f}"
            failed = True
            flag_gate(f"opt {label}", f"{base_val:.3f}",
                      f"{fresh_val:.3f}", f"slack {OVERLAP_SLACK:.2f}")
        print(f"opt: static-vs-profile {label} {fresh_val:.3f}{flag}")

    return 1 if failed else 0


def check_tune(build, baseline_path):
    """Autotuner invariants and recovery-floor check. Returns 0/1/2.

    Differential verification of every tuned winner is deterministic and
    checked at full strength. The static-search recovery (how much of
    the profile-oracle search's held-out cost reduction the static-
    oracle search finds) must meet the report's own advisory floor, and
    the winning-config agreement must not regress below the checked-in
    baseline by more than ``OVERLAP_SLACK``.
    """
    bench = os.path.join(build, "bench", "bench_tune")
    if not os.path.exists(bench):
        print(f"check_perf: {bench} not built", file=sys.stderr)
        return 2
    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
    except OSError as e:
        print(f"check_perf: cannot read tune baseline: {e}", file=sys.stderr)
        return 2

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        fresh_path = tmp.name
    try:
        # Exit status reflects verification failures; the JSON says
        # which, so don't bail on a non-zero exit here.
        subprocess.run(
            [bench, "--json", fresh_path],
            stdout=subprocess.DEVNULL,
        )
        with open(fresh_path) as f:
            fresh = json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_perf: tune report run failed: {e}", file=sys.stderr)
        return 2
    finally:
        os.unlink(fresh_path)

    failed = False
    suite = fresh.get("suite", {})

    if not suite.get("all_verified", False):
        bad = [
            f"{p['name']}/{o['oracle']}"
            for p in fresh.get("programs", [])
            for o in p.get("oracles", [])
            if not o.get("verified", True)
        ]
        print(f"\ntune: winner differential verification FAILED: {bad}")
        failed = True
        flag_gate("tune winner verification", "all verified",
                  f"failing: {bad}", "deterministic invariant")

    recovery = suite.get("static_search_recovery", 0.0)
    floor = suite.get("recovery_floor", 0.0)
    flag = "" if recovery >= floor else f"  <-- below {floor:.2f} floor"
    print(f"\ntune: static search recovery {recovery:.3f}{flag}")
    if recovery < floor:
        flag_gate("tune static search recovery", f"{floor:.2f} floor",
                  f"{recovery:.3f}", "advisory floor")
        failed = True

    base_overlap = baseline.get("suite", {}).get("mean_config_overlap", 0.0)
    fresh_overlap = suite.get("mean_config_overlap", 0.0)
    flag = ""
    if fresh_overlap < base_overlap - OVERLAP_SLACK:
        flag = f"  <-- regressed from baseline {base_overlap:.3f}"
        failed = True
        flag_gate("tune config overlap", f"{base_overlap:.3f}",
                  f"{fresh_overlap:.3f}", f"slack {OVERLAP_SLACK:.2f}")
    print(f"tune: static-vs-profile config overlap {fresh_overlap:.3f}{flag}")
    print(f"tune: mean regret {suite.get('mean_regret', 0.0):.4f}")

    return 1 if failed else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build", default="build", help="build directory")
    ap.add_argument(
        "--baseline",
        default=os.path.join(ROOT, "bench", "suite_report.json"),
        help="checked-in baseline report",
    )
    ap.add_argument(
        "--bench-baseline",
        default=os.path.join(ROOT, "bench", "analysis_time.json"),
        help="checked-in bench_analysis_time baseline",
    )
    ap.add_argument(
        "--latency-baseline",
        default=os.path.join(ROOT, "bench", "pipeline_latency.json"),
        help="checked-in bench_pipeline_latency baseline",
    )
    ap.add_argument(
        "--service-baseline",
        default=os.path.join(ROOT, "bench", "service_throughput.json"),
        help="checked-in bench_service baseline",
    )
    ap.add_argument(
        "--tiers-baseline",
        default=os.path.join(ROOT, "bench", "interp_tiers.json"),
        help="checked-in bench_interp --tiers-json baseline",
    )
    ap.add_argument(
        "--opt-baseline",
        default=os.path.join(ROOT, "bench", "opt_report.json"),
        help="checked-in optimizer report baseline",
    )
    ap.add_argument(
        "--tune-baseline",
        default=os.path.join(ROOT, "bench", "tune_report.json"),
        help="checked-in autotuner report baseline",
    )
    ap.add_argument(
        "--tolerance",
        type=float,
        default=3.0,
        help="flag a program when fresh/baseline wall time exceeds this",
    )
    args = ap.parse_args()

    sestc = os.path.join(args.build, "tools", "sestc")
    if not os.path.exists(sestc):
        print(f"check_perf: {sestc} not built", file=sys.stderr)
        return 2
    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except OSError as e:
        print(f"check_perf: cannot read baseline: {e}", file=sys.stderr)
        return 2

    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        fresh_path = tmp.name
    try:
        subprocess.run(
            [sestc, "--suite", "--report", fresh_path],
            check=True,
            stdout=subprocess.DEVNULL,
        )
        with open(fresh_path) as f:
            fresh = json.load(f)
    except (subprocess.CalledProcessError, OSError, ValueError) as e:
        print(f"check_perf: suite run failed: {e}", file=sys.stderr)
        return 2
    finally:
        os.unlink(fresh_path)

    base_progs = load_programs(baseline)
    fresh_progs = load_programs(fresh)
    same_engine = baseline.get("engine") == fresh.get("engine")

    failed = False
    print(f"{'program':<10} {'base ms':>9} {'fresh ms':>9} {'ratio':>6}")
    for name, base in sorted(base_progs.items()):
        freshp = fresh_progs.get(name)
        if freshp is None:
            print(f"{name:<10} missing from fresh report")
            failed = True
            continue
        if not freshp.get("ok", False):
            print(f"{name:<10} FAILED: {freshp.get('error', '?')}")
            failed = True
            continue
        base_ms = total_wall_ms(base)
        fresh_ms = total_wall_ms(freshp)
        ratio = fresh_ms / base_ms if base_ms > 0 else float("inf")
        flag = ""
        if ratio > args.tolerance:
            flag = f"  <-- slower than {args.tolerance:.1f}x baseline"
            failed = True
            flag_gate(f"suite {name} wall time", f"{base_ms:.1f} ms",
                      f"{fresh_ms:.1f} ms",
                      f"tolerance {args.tolerance:.1f}x")
        if same_engine:
            base_steps = sum(r.get("steps", 0) for r in base.get("runs", []))
            fresh_steps = sum(
                r.get("steps", 0) for r in freshp.get("runs", [])
            )
            if base_steps != fresh_steps:
                flag += (
                    f"  <-- steps drifted: {base_steps} -> {fresh_steps}"
                )
                failed = True
                flag_gate(f"suite {name} steps", str(base_steps),
                          str(fresh_steps), "deterministic invariant")
        print(f"{name:<10} {base_ms:>9.1f} {fresh_ms:>9.1f} {ratio:>6.2f}{flag}")

    bench_rc = check_bench(args.build, args.bench_baseline, args.tolerance)
    latency_rc = check_latency(
        args.build, args.latency_baseline, args.tolerance
    )
    service_rc = check_service(
        args.build, args.service_baseline, args.tolerance
    )
    tiers_rc = check_tiers(args.build, args.tiers_baseline, args.tolerance)
    opt_rc = check_opt(args.build, args.opt_baseline)
    tune_rc = check_tune(args.build, args.tune_baseline)
    if failed or bench_rc != 0 or latency_rc != 0 or service_rc != 0 \
            or tiers_rc != 0 or opt_rc != 0 or tune_rc != 0:
        print("\ncheck_perf: regression flagged (non-blocking signal)")
        for line in FAILED_GATES:
            print(f"check_perf: FAILED {line}")
        return 1 if failed else max(
            1, bench_rc, latency_rc, service_rc, tiers_rc, opt_rc, tune_rc
        )
    print("check_perf: within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Regenerates every reproduced table and figure plus the test evidence,
# and refreshes both checked-in baselines (bench/suite_report.json and
# bench/accuracy_report.json). Baselines must come from a Release build:
# wall times from an unoptimized build are misleading, and mixing build
# types makes the perf baseline incomparable — so this script configures
# Release and fails loudly if the build directory disagrees.
# Usage: scripts/regenerate.sh [build-dir]
set -euo pipefail

BUILD="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

cmake -B "$BUILD" -G Ninja -DCMAKE_BUILD_TYPE=Release

BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD/CMakeCache.txt")"
if [ "$BUILD_TYPE" != "Release" ]; then
  echo "regenerate.sh: FATAL: '$BUILD' is configured as" \
    "'${BUILD_TYPE:-<unset>}', not Release." >&2
  echo "regenerate.sh: baselines must be regenerated from a Release" \
    "build; delete '$BUILD' (or pass a fresh build dir) and re-run." >&2
  exit 1
fi

cmake --build "$BUILD"

ctest --test-dir "$BUILD" -j"$(nproc)" 2>&1 | tee test_output.txt

for b in "$BUILD"/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "===== $(basename "$b") ====="
  "$b"
  echo
done 2>&1 | tee bench_output.txt

# Refresh the checked-in suite run report (per-program compile time,
# per-input wall time and resource usage) — the trajectory baseline —
# and the accuracy baseline (per-entity divergence attribution; see
# docs/OBSERVABILITY.md and scripts/check_accuracy.py).
"$BUILD"/tools/sestc --suite \
  --report bench/suite_report.json \
  --accuracy-report bench/accuracy_report.json

# Refresh the optimizer baseline (static vs profile vs oracle layout /
# inlining outcomes; see docs/OPTIMIZATION.md and scripts/check_perf.py).
# The document has no wall-clock fields, so this is diff-clean on any
# machine unless optimizer decisions actually changed.
"$BUILD"/bench/bench_opt --json bench/opt_report.json

# Refresh the autotuner baseline (static- vs profile-oracle search over
# the pass-pipeline configuration space; see docs/TUNING.md and
# scripts/check_perf.py). Also byte-deterministic: diff-clean on any
# machine unless search outcomes actually changed.
"$BUILD"/bench/bench_tune --json bench/tune_report.json

# Refresh the pipeline stage latency baseline (per-stage p50/p90/p99;
# advisory guard in scripts/check_perf.py). Wall-clock, so expect the
# numbers to move between machines — the guard has 3x slack.
"$BUILD"/bench/bench_pipeline_latency --json bench/pipeline_latency.json

# Refresh the service throughput baseline (cold vs warm over the
# million-request zipfian mix; see docs/SERVICE.md). The warm-over-cold
# speedup floor in scripts/check_perf.py is machine-independent; the
# absolute req/s numbers are wall-clock.
"$BUILD"/bench/bench_service --json bench/service_throughput.json

# Record the refreshed headline numbers (service rps, solver speedup,
# stage p99s) in the bench history, with deltas vs the previous entry
# (see scripts/bench_history.py; history is bench/history.jsonl).
python3 "$ROOT"/scripts/bench_history.py

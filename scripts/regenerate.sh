#!/usr/bin/env bash
# Regenerates every reproduced table and figure plus the test evidence.
# Usage: scripts/regenerate.sh [build-dir]
set -euo pipefail

BUILD="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

ctest --test-dir "$BUILD" -j"$(nproc)" 2>&1 | tee test_output.txt

for b in "$BUILD"/bench/bench_*; do
  [ -x "$b" ] || continue
  echo "===== $(basename "$b") ====="
  "$b"
  echo
done 2>&1 | tee bench_output.txt

# Refresh the checked-in suite run report (per-program compile time,
# per-input wall time and resource usage) — the trajectory baseline.
"$BUILD"/tools/sestc --suite --report bench/suite_report.json

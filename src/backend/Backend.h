//===- backend/Backend.h - Native-code backend abstraction ------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The third execution tier: backends lower a program's compiled bytecode
/// to host-native code and run it under the exact RunResult contract both
/// interpreters honor — bit-identical block/arc/entry/call-site profiles,
/// diagnostics, and limit semantics (see docs/PERFORMANCE.md).
///
/// The abstraction is modeled on bistra's Backend/CBackend split: a
/// Backend turns (TranslationUnit, CfgModule, BcModule, layout plan) into
/// a loaded NativeArtifact; the one concrete backend here (CBackend.h)
/// emits a standalone C translation unit and drives the host C compiler.
///
/// Layout is *baked into the artifact*: blocks are emitted in the plan's
/// order (cold chains outlined into separate C functions), and every arc
/// instruction's fall-through/taken classification is resolved at
/// emission time against that same plan — so an artifact realizes the
/// exact layout the optimizer scored, as real instruction-stream effects.
///
//===----------------------------------------------------------------------===//

#ifndef BACKEND_BACKEND_H
#define BACKEND_BACKEND_H

#include "interp/Interp.h"
#include "interp/bytecode/Bytecode.h"

#include <memory>
#include <string>
#include <vector>

namespace sest::backend {

class NativeArtifact;

/// The block layout an artifact is compiled for. Empty rows (or an empty
/// Order) mean identity — block-id order, the CFG builder's layout.
/// FirstColdPos[fid] is the position of the first outlined cold block in
/// that function's order (== row size when nothing is cold); an empty
/// vector outlines nothing. Mirrors opt::FunctionLayout without a
/// dependency on src/opt (the optimizer converts its ProgramLayout into
/// this shape; see tools/sestc.cpp).
struct NativeLayoutPlan {
  ProgramBlockOrder Order;
  std::vector<uint32_t> FirstColdPos;
};

/// A native-code backend: lowers bytecode to a runnable artifact.
class Backend {
public:
  virtual ~Backend() = default;

  /// Short identifier ("c").
  virtual std::string name() const = 0;

  /// True when this backend can produce artifacts on this host; when it
  /// cannot, \p Why (if non-null) receives the capability diagnostic
  /// (e.g. "no host C compiler found (tried $CC, cc, gcc, clang)").
  virtual bool available(std::string *Why) const = 0;

  /// Emits the standalone source for \p Unit under \p Plan. Returns the
  /// empty string and sets \p Error when the program cannot be lowered.
  virtual std::string emitSource(const TranslationUnit &Unit,
                                 const CfgModule &Cfgs,
                                 const bc::BcModule &Bc,
                                 const NativeLayoutPlan &Plan,
                                 std::string *Error) const = 0;

  /// Lowers, compiles, and loads. Null + \p Error on failure. Artifacts
  /// are memoized process-wide by generated-source content hash, so
  /// repeated compiles of the same program + plan are free.
  virtual std::shared_ptr<const NativeArtifact>
  compile(const TranslationUnit &Unit, const CfgModule &Cfgs,
          const bc::BcModule &Bc, const NativeLayoutPlan &Plan,
          std::string *Error) const = 0;
};

/// The process-wide C backend instance.
const Backend &cBackend();

} // namespace sest::backend

#endif // BACKEND_BACKEND_H

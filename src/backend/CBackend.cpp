//===- backend/CBackend.cpp - Bytecode -> standalone C emission ------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
//
// Lowers a compiled BcModule to one self-contained C translation unit.
// The emitted runtime (the kRuntime string below) is a transplant of
// BytecodeVM.cpp's runtime into C: same value representation, same
// diagnostics byte for byte, same tick placement, same limit checks in
// the same order. Every instruction of every chunk becomes straight-line
// C with operands, offsets, strides, conversions, counter addresses and
// fall-through classification resolved at emission time; the dispatch
// loop disappears into labels and gotos.
//
// Layout truth: block segments are emitted in the layout plan's order,
// so the host C compiler materializes the plan's fall-throughs as real
// instruction-stream adjacency; cold chains are outlined into a
// separate `..._cold` continuation function per the plan's
// FirstColdPos. Transfers between the two regions go through a small
// trampoline (hot side) / a resume protocol (cold side); profile
// counters are bumped on the arc instruction exactly as in the VM, so
// profiles stay bit-identical no matter how blocks are placed.
//
//===----------------------------------------------------------------------===//

#include "backend/CBackend.h"

#include "backend/Native.h"
#include "cfg/Cfg.h"
#include "lang/Ast.h"
#include "lang/Type.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <sstream>

using namespace sest;
using namespace sest::backend;
using namespace sest::bc;

//===----------------------------------------------------------------------===//
// Profile shape (shared with the host-side decoder in Native.cpp)
//===----------------------------------------------------------------------===//

ProfileShape sest::backend::computeProfileShape(const TranslationUnit &Unit,
                                                const CfgModule &Cfgs) {
  ProfileShape S;
  S.BlockBase.assign(Unit.Functions.size(), -1);
  S.ArcBase.resize(Unit.Functions.size());
  S.Succs.resize(Unit.Functions.size());
  for (const auto &[F, G] : Cfgs.all()) {
    uint32_t Fid = F->functionId();
    S.BlockBase[Fid] = S.TotalBlocks;
    S.TotalBlocks += static_cast<int64_t>(G->size());
    S.ArcBase[Fid].assign(G->size(), -1);
    S.Succs[Fid].resize(G->size());
    for (const auto &B : G->blocks()) {
      S.ArcBase[Fid][B->id()] = S.TotalArcs;
      S.TotalArcs += static_cast<int64_t>(B->successors().size());
      auto &Row = S.Succs[Fid][B->id()];
      Row.reserve(B->successors().size());
      for (const BasicBlock *Succ : B->successors())
        Row.push_back(Succ->id());
    }
  }
  return S;
}

namespace {

//===----------------------------------------------------------------------===//
// Literal formatting
//===----------------------------------------------------------------------===//

/// C string literal with conservative escaping ('?' escaped against
/// trigraph warnings, non-printables as fixed-width octal so a following
/// digit cannot extend the escape).
std::string cstr(const std::string &S) {
  std::string Out = "\"";
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '?':
      Out += "\\?";
      break;
    default:
      if (C >= 32 && C < 127) {
        Out += static_cast<char>(C);
      } else {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\%03o", C);
        Out += Buf;
      }
    }
  }
  Out += "\"";
  return Out;
}

/// int64 literal; INT64_MIN has no direct C spelling.
std::string i64Lit(int64_t V) {
  if (V == INT64_MIN)
    return "(-9223372036854775807LL - 1)";
  return std::to_string(V) + "LL";
}

/// Bit-exact double literal (hex float; NaN/Inf via math.h macros).
std::string dblLit(double D) {
  if (std::isnan(D))
    return "((double)NAN)";
  if (std::isinf(D))
    return D < 0 ? "(-(double)INFINITY)" : "((double)INFINITY)";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%a", D);
  return Buf;
}

//===----------------------------------------------------------------------===//
// The emitted runtime
//===----------------------------------------------------------------------===//
//
// Everything below kRuntime mirrors BytecodeVM.cpp. Value kinds: 0=int,
// 1=double, 2=ptr, 3=fnptr; fn ids stand in for FunctionDecl pointers
// (-1 = null). Address spaces: 0=null, 1=global, 2=stack, 3+K=heap
// block K. All message text must stay byte-identical to the VM's.

const char *kAbiText = R"__C__(
typedef struct sest_native_params {
  const char *input;
  unsigned long long input_len;
  unsigned long long rand_seed;
  unsigned long long max_steps;
  unsigned max_call_depth;
  unsigned long long max_host_stack_bytes;
  long long max_heap_cells;
  const double *cost_factor;
} sest_native_params;

typedef struct sest_native_result {
  int ok;
  int limit;
  long long exit_code;
  unsigned long long steps;
  long long heap_hw;
  unsigned call_depth_hw;
  unsigned long long lc_fall;
  unsigned long long lc_taken;
  unsigned long long lc_calls;
  unsigned long long lc_rets;
  double cycles;
  const char *output;
  unsigned long long output_len;
  const char *error;
  unsigned long long error_len;
  const double *blocks;
  const double *arcs;
  const double *entries;
  const double *callsites;
  const unsigned long long *self_steps;
  void *impl;
} sest_native_result;
)__C__";

const char *kRuntime = R"__C__(
/* Inlining control: the per-instruction helpers (tick, load/store,
 * arithmetic) must inline into the generated bodies or the native tier
 * pays interpreter-grade call overhead per step; the limit / failure
 * paths must NOT inline or they bloat every such site. Plain `inline`
 * is only a hint gcc -O2 declines for the bigger helpers. */
#if defined(__GNUC__)
#define sn_hot static inline __attribute__((always_inline))
#define sn_cold static __attribute__((noinline, cold))
#else
#define sn_hot static inline
#define sn_cold static
#endif

/* -- value cells (Value.h transplant) -- */
/* 16 bytes/cell. Every read of i/d/po/fn — here and in the emitted
 * bodies — is gated on k, so the union members never alias into
 * behavior (memset-zeroed cells read as int 0, exactly like the VM's
 * default-constructed Values). */
typedef struct sv {
  unsigned char k; /* 0 int, 1 double, 2 ptr, 3 fnptr */
  unsigned ps;     /* k==2 ptr space: 0 null, 1 global, 2 stack, 3+K heap */
  union {
    long long i;   /* k==0 */
    double d;      /* k==1 */
    long long po;  /* k==2 cell offset within ps */
    int fn;        /* k==3 function id; -1 = null function pointer */
  };
} sv;

sn_hot sv sv_int(long long v) {
  sv r; r.k = 0u; r.ps = 0u; r.i = v;
  return r;
}
sn_hot sv sv_dbl(double v) {
  sv r; r.k = 1u; r.ps = 0u; r.d = v;
  return r;
}
sn_hot sv sv_ptr(unsigned s, long long o) {
  sv r; r.k = 2u; r.ps = s; r.po = o;
  return r;
}
sn_hot sv sv_fn(int f) {
  sv r; r.k = 3u; r.ps = 0u; r.i = 0; r.fn = f;
  return r;
}

sn_hot long long sv_as_int(sv v) {
  if (v.k == 1u) return (long long)v.d;
  if (v.k == 2u) return v.po;
  if (v.k == 3u) return v.fn >= 0 ? 1 : 0;
  return v.i;
}
sn_hot double sv_as_double(sv v) {
  if (v.k == 1u) return v.d;
  return (double)sv_as_int(v);
}
sn_hot int sv_truthy(sv v) {
  switch (v.k) {
  case 0u: return v.i != 0;
  case 1u: return v.d != 0.0;
  case 2u: return v.ps != 0u;
  default: return v.fn >= 0;
  }
}

/* -- the per-run state (BytecodeVM's fields, C-shaped) -- */
typedef struct sheap {
  sv *cells;
  long long n;
  int freed;
} sheap;

typedef struct rt {
  sest_native_params prm;
  sv *globals;
  long long nglobals;
  sv *stack;
  long long nstack, capstack;
  sv *regs;
  long long nregs, capregs;
  sheap *heap;
  long long nheap, capheap;
  long long heap_used, heap_hw;
  long long frame_base;
  unsigned call_depth, call_depth_hw;
  int limit; /* RunLimit integer: 0 none .. 5 host-frame */
  int failed, exited;
  long long exit_val;
  unsigned long long steps;
  double cycles, cost_factor;
  unsigned long long *cur_self; /* never null; dummy outside mini-C fns */
  unsigned long long self_dummy;
  unsigned long long lc_fall, lc_taken, lc_calls, lc_rets;
  char *out;
  unsigned long long out_len, out_cap;
  unsigned long long in_pos;
  unsigned long long rng[4];
  char *host_base;
  char err[4096];
  unsigned long long self[SN_NFUNCS1];
  double blk[SN_NBLK1];
  double arc[SN_NARC1];
  double entry[SN_NFUNCS1];
  double cs[SN_NCS1];
} rt;

sn_hot int rt_halted(const rt *T) { return T->failed || T->exited; }

/* -- bounded string building (no snprintf: keeps -Werror clean) -- */
static inline void sb_cat(char *buf, unsigned long long cap,
                          unsigned long long *len, const char *s) {
  while (*s && *len + 1u < cap) {
    buf[*len] = *s++;
    *len += 1u;
  }
  buf[*len] = 0;
}
static inline void sb_u64(char *buf, unsigned long long cap,
                          unsigned long long *len, unsigned long long v) {
  char tmp[24];
  int n = 0;
  do {
    tmp[n++] = (char)('0' + (int)(v % 10u));
    v /= 10u;
  } while (v);
  while (n > 0 && *len + 1u < cap) {
    buf[*len] = tmp[--n];
    *len += 1u;
  }
  buf[*len] = 0;
}
static inline void sb_i64(char *buf, unsigned long long cap,
                          unsigned long long *len, long long v) {
  if (v < 0) {
    sb_cat(buf, cap, len, "-");
    sb_u64(buf, cap, len, (unsigned long long)(-(v + 1)) + 1u);
  } else {
    sb_u64(buf, cap, len, (unsigned long long)v);
  }
}

/* -- failure handling: sticky flag, VM-identical messages -- */
sn_cold void rt_fail(rt *T, const char *msg) {
  if (!T->failed && !T->exited) {
    unsigned long long n = 0;
    T->failed = 1;
    T->err[0] = 0;
    sb_cat(T->err, sizeof T->err, &n, msg);
  }
}
sn_cold void rt_fail2(rt *T, const char *a, const char *b,
                            const char *c) {
  char m[512];
  unsigned long long n = 0;
  m[0] = 0;
  sb_cat(m, sizeof m, &n, a);
  sb_cat(m, sizeof m, &n, b);
  if (c) sb_cat(m, sizeof m, &n, c);
  rt_fail(T, m);
}
/* failLimit: message + " (" + usageSummary() + ")" */
sn_cold void rt_fail_usage(rt *T, const char *msg) {
  unsigned long long n = 0;
  T->failed = 1;
  T->err[0] = 0;
  sb_cat(T->err, sizeof T->err, &n, msg);
  sb_cat(T->err, sizeof T->err, &n, " (steps ");
  sb_u64(T->err, sizeof T->err, &n, T->steps);
  sb_cat(T->err, sizeof T->err, &n, ", call-depth high-water ");
  sb_u64(T->err, sizeof T->err, &n, (unsigned long long)T->call_depth_hw);
  sb_cat(T->err, sizeof T->err, &n, ", heap high-water ");
  sb_i64(T->err, sizeof T->err, &n, T->heap_hw);
  sb_cat(T->err, sizeof T->err, &n, " cells)");
}
sn_cold void rt_limit_steps(rt *T) {
  char b[256];
  unsigned long long n = 0;
  if (T->failed || T->exited) return;
  T->limit = 1;
  b[0] = 0;
  sb_cat(b, sizeof b, &n, "execution step limit exceeded (MaxSteps=");
  sb_u64(b, sizeof b, &n, T->prm.max_steps);
  sb_cat(b, sizeof b, &n, ")");
  rt_fail_usage(T, b);
}
sn_cold void rt_limit_call_depth(rt *T, const char *name) {
  char b[512];
  unsigned long long n = 0;
  if (T->failed || T->exited) return;
  T->limit = 2;
  b[0] = 0;
  sb_cat(b, sizeof b, &n, "call depth limit exceeded in '");
  sb_cat(b, sizeof b, &n, name);
  sb_cat(b, sizeof b, &n, "' (MaxCallDepth=");
  sb_u64(b, sizeof b, &n, (unsigned long long)T->prm.max_call_depth);
  sb_cat(b, sizeof b, &n, ")");
  rt_fail_usage(T, b);
}
sn_cold void rt_limit_host_stack(rt *T, const char *name) {
  char b[512];
  unsigned long long n = 0;
  if (T->failed || T->exited) return;
  T->limit = 3;
  b[0] = 0;
  sb_cat(b, sizeof b, &n, "call depth limit exceeded in '");
  sb_cat(b, sizeof b, &n, name);
  sb_cat(b, sizeof b, &n, "' (host stack budget, MaxHostStackBytes=");
  sb_u64(b, sizeof b, &n, T->prm.max_host_stack_bytes);
  sb_cat(b, sizeof b, &n, ")");
  rt_fail_usage(T, b);
}
sn_cold void rt_limit_heap(rt *T) {
  char b[256];
  unsigned long long n = 0;
  if (T->failed || T->exited) return;
  T->limit = 4;
  b[0] = 0;
  sb_cat(b, sizeof b, &n, "heap limit exceeded (MaxHeapCells=");
  sb_i64(b, sizeof b, &n, T->prm.max_heap_cells);
  sb_cat(b, sizeof b, &n, ")");
  rt_fail_usage(T, b);
}
sn_cold void rt_limit_host_frame(rt *T, const char *name) {
  char b[512];
  unsigned long long n = 0;
  if (T->failed || T->exited) return;
  T->limit = 5;
  b[0] = 0;
  sb_cat(b, sizeof b, &n, "stack overflow in '");
  sb_cat(b, sizeof b, &n, name);
  sb_cat(b, sizeof b, &n, "'");
  rt_fail_usage(T, b);
}

/* -- step accounting -- */
sn_hot void rt_tick(rt *T) {
  T->steps += 1u;
  *T->cur_self += 1u;
  T->cycles += T->cost_factor;
  if (T->steps > T->prm.max_steps) rt_limit_steps(T);
}

/* One Tick instruction charging n steps. The fast path must reproduce
 * the per-step double accumulation bit-for-bit: with an integral cost
 * factor the batched add is exact (all partials are representable), so
 * it equals n single adds; otherwise fall back to the serial loop. Near
 * the step limit, run strictly per step so a limit trip reports the
 * same step count the VM would. */
sn_hot void rt_tick_n(rt *T, unsigned long long n) {
  unsigned long long i;
  if (T->steps + n > T->prm.max_steps) {
    for (i = 0; i < n; ++i) {
      rt_tick(T);
      if (T->failed) return;
    }
    return;
  }
  T->steps += n;
  *T->cur_self += n;
  if (T->cost_factor == 1.0)
    T->cycles += (double)n;
  else
    for (i = 0; i < n; ++i) T->cycles += T->cost_factor;
}

/* -- memory -- */
sn_hot sv *rt_resolve(rt *T, unsigned sp, long long off, int wr) {
  const char *what = wr ? "write" : "read";
  if (sp == 0u) {
    rt_fail2(T, "null pointer ", what, 0);
    return 0;
  }
  if (sp == 1u) {
    if (off < 0 || off >= T->nglobals) {
      rt_fail2(T, "global ", what, " out of bounds");
      return 0;
    }
    return T->globals + off;
  }
  if (sp == 2u) {
    if (off < 0 || off >= T->nstack) {
      rt_fail2(T, "stack ", what, " out of bounds");
      return 0;
    }
    return T->stack + off;
  }
  {
    unsigned long long idx = (unsigned long long)(sp - 3u);
    if (idx >= (unsigned long long)T->nheap) {
      rt_fail2(T, "wild pointer ", what, 0);
      return 0;
    }
    if (T->heap[idx].freed) {
      rt_fail2(T, "use-after-free ", what, 0);
      return 0;
    }
    if (off < 0 || off >= T->heap[idx].n) {
      rt_fail2(T, "heap ", what, " out of bounds");
      return 0;
    }
    return T->heap[idx].cells + off;
  }
}
sn_hot sv rt_load(rt *T, unsigned sp, long long off) {
  sv *p = rt_resolve(T, sp, off, 0);
  return p ? *p : sv_int(0);
}
sn_hot void rt_store(rt *T, unsigned sp, long long off, sv v) {
  sv *p = rt_resolve(T, sp, off, 1);
  if (p) *p = v;
}
static inline void rt_copy(rt *T, unsigned dsp, long long doff, unsigned ssp,
                           long long soff, long long n) {
  long long i;
  for (i = 0; i < n && !rt_halted(T); ++i) {
    sv v = rt_load(T, ssp, soff + i);
    rt_store(T, dsp, doff + i, v);
  }
}
static inline void rt_zero(rt *T, unsigned sp, long long off, long long n) {
  long long i;
  for (i = 0; i < n; ++i) rt_store(T, sp, off + i, sv_int(0));
}

/* -- stack / register file growth (zero-filled like the VM's vectors) -- */
static inline void rt_stack_grow(rt *T, long long n) {
  if (n > T->capstack) {
    long long nc = T->capstack ? T->capstack : 64;
    while (nc < n) nc *= 2;
    T->stack = (sv *)realloc(T->stack, (size_t)nc * sizeof(sv));
    T->capstack = nc;
  }
  if (n > T->nstack)
    memset(T->stack + T->nstack, 0, (size_t)(n - T->nstack) * sizeof(sv));
  T->nstack = n;
}
static inline void rt_regs_grow(rt *T, long long n) {
  if (n <= T->nregs) return;
  if (n > T->capregs) {
    long long nc = T->capregs ? T->capregs : 64;
    while (nc < n) nc *= 2;
    T->regs = (sv *)realloc(T->regs, (size_t)nc * sizeof(sv));
    T->capregs = nc;
  }
  memset(T->regs + T->nregs, 0, (size_t)(n - T->nregs) * sizeof(sv));
  T->nregs = n;
}
static inline unsigned long long rt_stack_used(rt *T) {
  char probe;
  char *here = &probe;
  return (unsigned long long)(T->host_base > here ? T->host_base - here
                                                  : here - T->host_base);
}

/* -- output buffer -- */
static inline void rt_out_raw(rt *T, const char *s, unsigned long long n) {
  if (T->out_len + n + 1u > T->out_cap) {
    unsigned long long nc = T->out_cap ? T->out_cap : 64u;
    while (nc < T->out_len + n + 1u) nc *= 2u;
    T->out = (char *)realloc(T->out, (size_t)nc);
    T->out_cap = nc;
  }
  memcpy(T->out + T->out_len, s, (size_t)n);
  T->out_len += n;
  T->out[T->out_len] = 0;
}
static inline void rt_out_ch(rt *T, char c) { rt_out_raw(T, &c, 1u); }
static inline void rt_out_str(rt *T, const char *s) {
  rt_out_raw(T, s, (unsigned long long)strlen(s));
}

/* -- deterministic PRNG (support/Prng.h: splitmix64 + xoshiro256**) -- */
static inline unsigned long long rt_rotl(unsigned long long x, int k) {
  return (x << k) | (x >> (64 - k));
}
static inline void rt_seed(rt *T, unsigned long long seed) {
  unsigned long long x = seed;
  int i;
  for (i = 0; i < 4; ++i) {
    unsigned long long z;
    x += 0x9e3779b97f4a7c15ULL;
    z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    T->rng[i] = z ^ (z >> 31);
  }
}
static inline unsigned long long rt_rng_next(rt *T) {
  unsigned long long *s = T->rng;
  unsigned long long result = rt_rotl(s[1] * 5u, 7) * 9u;
  unsigned long long t = s[1] << 17;
  s[2] ^= s[0];
  s[3] ^= s[1];
  s[1] ^= s[2];
  s[0] ^= s[3];
  s[2] ^= t;
  s[3] = rt_rotl(s[3], 45);
  return result;
}

/* -- program input -- */
static inline int rt_read_char(rt *T) {
  if (T->in_pos >= T->prm.input_len) return -1;
  return (int)(unsigned char)T->prm.input[T->in_pos++];
}
static inline int rt_isspace(int c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' ||
         c == '\r';
}
static inline long long rt_read_int(rt *T) {
  int neg = 0, any = 0;
  long long v = 0;
  while (T->in_pos < T->prm.input_len &&
         rt_isspace((int)(unsigned char)T->prm.input[T->in_pos]))
    T->in_pos++;
  if (T->in_pos >= T->prm.input_len) return -1;
  if (T->prm.input[T->in_pos] == '-') {
    neg = 1;
    T->in_pos++;
  }
  while (T->in_pos < T->prm.input_len) {
    int c = (int)(unsigned char)T->prm.input[T->in_pos];
    if (c < '0' || c > '9') break;
    v = v * 10 + (long long)(c - '0');
    T->in_pos++;
    any = 1;
  }
  if (!any) return -1;
  return neg ? -v : v;
}

/* -- conversions (BytecodeVM::convert, one function per target shape) -- */
static inline sv cv_int(sv v) { return sv_int(sv_as_int(v)); }
static inline sv cv_dbl(sv v) { return sv_dbl(sv_as_double(v)); }
static inline sv cv_pfn(sv v) {
  if (v.k == 3u) return v;
  if (v.k == 0u && v.i == 0) return sv_fn(-1);
  if (v.k == 2u && v.ps == 0u) return sv_fn(-1);
  return v; /* tolerated; call-through will diagnose */
}
static inline sv cv_pdata(sv v) {
  if (v.k == 2u) return v;
  if (v.k == 0u) return sv_ptr(0u, v.i);
  return v;
}

/* -- binary operators (BytecodeVM::applyBinary; op = BinaryOp int) -- */
sn_hot sv rt_bin(rt *T, int op, sv l, sv r, long long rs,
                        long long ls) {
  switch (op) {
  case 0: /* Add */
    if (l.k == 2u || r.k == 2u) {
      sv p = l.k == 2u ? l : r;
      sv n = l.k == 2u ? r : l;
      return sv_ptr(p.ps, p.po + sv_as_int(n) * rs);
    }
    if (l.k == 1u || r.k == 1u)
      return sv_dbl(sv_as_double(l) + sv_as_double(r));
    return sv_int(sv_as_int(l) + sv_as_int(r));
  case 1: /* Sub */
    if (l.k == 2u && r.k == 2u) {
      if (l.ps != r.ps) {
        rt_fail(T, "subtracting pointers into different objects");
        return sv_int(0);
      }
      return sv_int((l.po - r.po) / ls);
    }
    if (l.k == 2u) return sv_ptr(l.ps, l.po - sv_as_int(r) * rs);
    if (l.k == 1u || r.k == 1u)
      return sv_dbl(sv_as_double(l) - sv_as_double(r));
    return sv_int(sv_as_int(l) - sv_as_int(r));
  case 2: /* Mul */
    if (l.k == 1u || r.k == 1u)
      return sv_dbl(sv_as_double(l) * sv_as_double(r));
    return sv_int(sv_as_int(l) * sv_as_int(r));
  case 3: /* Div */
    if (l.k == 1u || r.k == 1u) {
      double d = sv_as_double(r);
      if (d == 0.0) {
        rt_fail(T, "floating division by zero");
        return sv_int(0);
      }
      return sv_dbl(sv_as_double(l) / d);
    }
    if (sv_as_int(r) == 0) {
      rt_fail(T, "integer division by zero");
      return sv_int(0);
    }
    return sv_int(sv_as_int(l) / sv_as_int(r));
  case 4: /* Rem */
    if (sv_as_int(r) == 0) {
      rt_fail(T, "integer remainder by zero");
      return sv_int(0);
    }
    return sv_int(sv_as_int(l) % sv_as_int(r));
  case 5: { /* Shl */
    long long sh = sv_as_int(r);
    if (sh < 0 || sh > 63) {
      rt_fail(T, "shift amount out of range");
      return sv_int(0);
    }
    return sv_int((long long)((unsigned long long)sv_as_int(l) << sh));
  }
  case 6: { /* Shr */
    long long sh = sv_as_int(r);
    if (sh < 0 || sh > 63) {
      rt_fail(T, "shift amount out of range");
      return sv_int(0);
    }
    return sv_int(sv_as_int(l) >> sh);
  }
  case 7: return sv_int(sv_as_int(l) & sv_as_int(r));
  case 8: return sv_int(sv_as_int(l) | sv_as_int(r));
  case 9: return sv_int(sv_as_int(l) ^ sv_as_int(r));
  case 10: case 11: case 12: case 13: { /* Lt Gt Le Ge */
    double cmp;
    int res;
    if (l.k == 2u && r.k == 2u) {
      if (l.ps != r.ps)
        cmp = l.ps < r.ps ? -1.0 : 1.0;
      else
        cmp = l.po < r.po ? -1.0 : (l.po > r.po ? 1.0 : 0.0);
    } else if (l.k == 1u || r.k == 1u) {
      double a = sv_as_double(l), b = sv_as_double(r);
      cmp = a < b ? -1.0 : (a > b ? 1.0 : 0.0);
    } else {
      long long a = sv_as_int(l), b = sv_as_int(r);
      cmp = a < b ? -1.0 : (a > b ? 1.0 : 0.0);
    }
    if (op == 10) res = cmp < 0.0;
    else if (op == 11) res = cmp > 0.0;
    else if (op == 12) res = cmp <= 0.0;
    else res = cmp >= 0.0;
    return sv_int(res ? 1 : 0);
  }
  case 14: case 15: { /* Eq Ne */
    int eq;
    if (l.k == 2u && r.k == 2u)
      eq = l.ps == r.ps && l.po == r.po;
    else if (l.k == 3u || r.k == 3u)
      eq = (l.k == 3u && r.k == 3u)
               ? l.fn == r.fn
               : (l.k == 3u ? (l.fn < 0 && !sv_truthy(r))
                            : (r.fn < 0 && !sv_truthy(l)));
    else if (l.k == 2u || r.k == 2u) {
      sv p = l.k == 2u ? l : r;
      sv n = l.k == 2u ? r : l;
      eq = p.ps == 0u && sv_as_int(n) == 0;
    } else if (l.k == 1u || r.k == 1u)
      eq = sv_as_double(l) == sv_as_double(r);
    else
      eq = sv_as_int(l) == sv_as_int(r);
    return sv_int(((op == 14) == (eq != 0)) ? 1 : 0);
  }
  default:
    break; /* LogicalAnd/LogicalOr are lowered to branches */
  }
  return sv_int(0);
}

/* -- builtins (BytecodeVM::doBuiltin; kind = BuiltinKind int) -- */
static inline sv rt_builtin(rt *T, int kind, const char *name,
                            long long argbase, long long nargs) {
  sv a0 = nargs > 0 ? T->regs[argbase] : sv_int(0);
  switch (kind) {
  case 1: { /* print_int */
    char b[32];
    unsigned long long n = 0;
    b[0] = 0;
    sb_i64(b, sizeof b, &n, sv_as_int(a0));
    rt_out_raw(T, b, n);
    return sv_int(0);
  }
  case 2: /* print_char */
    rt_out_ch(T, (char)sv_as_int(a0));
    return sv_int(0);
  case 3: { /* print_str */
    long long i;
    if (a0.k != 2u) {
      rt_fail(T, "print_str expects a string pointer");
      return sv_int(0);
    }
    for (i = 0; i < (1 << 20); ++i) {
      sv c = rt_load(T, a0.ps, a0.po + i);
      long long ch;
      if (rt_halted(T)) return sv_int(0);
      ch = sv_as_int(c);
      if (ch == 0) return sv_int(0);
      rt_out_ch(T, (char)ch);
    }
    rt_fail(T, "unterminated string passed to print_str");
    return sv_int(0);
  }
  case 4: { /* print_double */
    char b[64];
    snprintf(b, sizeof b, "%.6g", sv_as_double(a0));
    rt_out_str(T, b);
    return sv_int(0);
  }
  case 5: return sv_int(rt_read_int(T));
  case 6: return sv_int((long long)rt_read_char(T));
  case 7: { /* malloc */
    long long ncells = sv_as_int(a0);
    if (ncells <= 0) return sv_ptr(0u, 0);
    if (T->heap_used + ncells > T->prm.max_heap_cells) {
      rt_limit_heap(T);
      return sv_int(0);
    }
    T->heap_used += ncells;
    if (T->heap_used > T->heap_hw) T->heap_hw = T->heap_used;
    if (T->nheap == T->capheap) {
      long long nc = T->capheap ? T->capheap * 2 : 16;
      T->heap = (sheap *)realloc(T->heap, (size_t)nc * sizeof(sheap));
      T->capheap = nc;
    }
    T->heap[T->nheap].cells = (sv *)calloc((size_t)ncells, sizeof(sv));
    T->heap[T->nheap].n = ncells;
    T->heap[T->nheap].freed = 0;
    T->nheap += 1;
    return sv_ptr(3u + (unsigned)(T->nheap - 1), 0);
  }
  case 8: { /* free */
    unsigned long long idx;
    if (a0.k != 2u) {
      rt_fail(T, "free of a non-pointer value");
      return sv_int(0);
    }
    if (a0.ps == 0u) return sv_int(0);
    idx = (unsigned long long)(unsigned)(a0.ps - 3u);
    if (a0.ps < 3u || idx >= (unsigned long long)T->nheap || a0.po != 0) {
      rt_fail(T, "free of a non-heap pointer");
      return sv_int(0);
    }
    if (T->heap[idx].freed) {
      rt_fail(T, "double free");
      return sv_int(0);
    }
    T->heap_used -= T->heap[idx].n;
    T->heap[idx].freed = 1;
    free(T->heap[idx].cells);
    T->heap[idx].cells = 0;
    T->heap[idx].n = 0;
    return sv_int(0);
  }
  case 9: /* abort */
    rt_fail(T, "abort() called");
    return sv_int(0);
  case 10: /* exit */
    T->exited = 1;
    T->exit_val = sv_as_int(a0);
    return sv_int(0);
  case 11: /* rand */
    return sv_int((long long)(rt_rng_next(T) >> 33));
  case 12: /* srand */
    rt_seed(T, (unsigned long long)sv_as_int(a0));
    return sv_int(0);
  case 13: { /* sqrt */
    double d = sv_as_double(a0);
    if (d < 0) {
      rt_fail(T, "sqrt of a negative number");
      return sv_int(0);
    }
    return sv_dbl(sqrt(d));
  }
  case 14: return sv_dbl(fabs(sv_as_double(a0)));
  case 15: return sv_dbl(floor(sv_as_double(a0)));
  default:
    break;
  }
  rt_fail2(T, "unknown builtin '", name, "'");
  return sv_int(0);
}
)__C__";

} // namespace

namespace {

//===----------------------------------------------------------------------===//
// The emitter
//===----------------------------------------------------------------------===//

class CEmitter {
public:
  CEmitter(const TranslationUnit &Unit, const CfgModule &Cfgs,
           const BcModule &Bc, const NativeLayoutPlan &Plan)
      : Unit(Unit), Cfgs(Cfgs), Bc(Bc), Plan(Plan) {}

  bool emit(std::string &Out);
  const std::string &error() const { return Err; }

private:
  /// Which C function an instruction's text lands in.
  enum class Region { Hot, Cold, Init };

  /// Per-chunk emission state. A chunk is split into *segments* at every
  /// BlockEnter; segments are the reorderable unit (each one is closed
  /// with an explicit transfer, so emission order is semantics-free).
  struct FnState {
    uint32_t Fid = 0;
    const BcChunk *Ch = nullptr;
    std::string Name;
    bool IsInit = false;
    std::vector<size_t> SegStart;   ///< Ascending; SegStart[0] == 0.
    std::vector<int> SegBlock;      ///< Block id; -1 for a preamble.
    std::vector<uint8_t> SegCold;
    std::set<size_t> HotLabels, ColdLabels;
    std::set<int> ColdEntries;           ///< Block ids entered from hot.
    std::map<int, size_t> ResumeTargets; ///< Block id -> hot offset.
    bool UsesTrampoline = false;
    bool HasCold = false;
    std::vector<std::string> InstrText; ///< One slot per instruction.
    std::vector<std::string> SegTail;   ///< Fall-through fixups.

    size_t segOf(size_t Off) const {
      size_t Lo = 0, Hi = SegStart.size();
      while (Lo + 1 < Hi) {
        size_t Mid = (Lo + Hi) / 2;
        if (SegStart[Mid] <= Off)
          Lo = Mid;
        else
          Hi = Mid;
      }
      return Lo;
    }
    Region regionAt(size_t Off) const {
      if (IsInit)
        return Region::Init;
      return SegCold[segOf(Off)] ? Region::Cold : Region::Hot;
    }
    bool isSegStart(size_t Off) const {
      size_t S = segOf(Off);
      return SegStart[S] == Off;
    }
    void needLabel(size_t Off, Region R) {
      if (R == Region::Cold)
        ColdLabels.insert(Off);
      else
        HotLabels.insert(Off); // Init shares the hot label set
    }
  };

  bool fail(const std::string &M) {
    if (Err.empty())
      Err = M;
    return false;
  }

  static std::string hltText(Region R) {
    switch (R) {
    case Region::Hot:
      return "return sv_int(0);";
    case Region::Cold:
      return "*resume = -2; return;";
    case Region::Init:
      return "return;";
    }
    return "";
  }

  /// convert(V, Ty) as an emission-time-specialized expression.
  static std::string convExpr(const Type *Ty, const std::string &E) {
    if (!Ty)
      return E;
    switch (Ty->kind()) {
    case TypeKind::Int:
    case TypeKind::Char:
      return "cv_int(" + E + ")";
    case TypeKind::Double:
      return "cv_dbl(" + E + ")";
    case TypeKind::Pointer:
      return typeCast<PointerType>(Ty)->pointee()->isFunction()
                 ? "cv_pfn(" + E + ")"
                 : "cv_pdata(" + E + ")";
    default:
      return E;
    }
  }

  std::string arcBump(const FnState &St, uint16_t Block, unsigned Slot) {
    int64_t Base = Shape.ArcBase[St.Fid][Block];
    uint32_t Succ = Shape.Succs[St.Fid][Block][Slot];
    bool Fall = Pos[St.Fid][Succ] == Pos[St.Fid][Block] + 1;
    return "T->arc[" + std::to_string(Base + Slot) + "] += 1.0; T->" +
           (Fall ? "lc_fall" : "lc_taken") + " += 1u; ";
  }

  std::string transferText(FnState &St, size_t FromOff, int64_t Target);
  std::string poolName(const StringLitExpr *S);
  bool prepareFn(FnState &St);
  bool emitInstr(FnState &St, size_t Off);
  bool generateChunk(FnState &St);
  void assembleRegion(FnState &St, Region R, std::string &Out);
  void emitFnBodies(FnState &St, std::string &Out);
  void emitWrapper(const FunctionDecl *F, std::string &Out);

  const TranslationUnit &Unit;
  const CfgModule &Cfgs;
  const BcModule &Bc;
  const NativeLayoutPlan &Plan;

  ProfileShape Shape;
  std::vector<std::vector<uint32_t>> Pos;
  std::vector<int64_t> StringBase;
  int64_t NGlobals = 0;
  bool HasIndirect = false;
  std::map<const StringLitExpr *, unsigned> Pools;
  std::vector<const StringLitExpr *> PoolOrder;
  std::string Err;
};

std::string CEmitter::transferText(FnState &St, size_t FromOff,
                                   int64_t Target) {
  Region FR = St.regionAt(FromOff);
  Region TR = St.regionAt(static_cast<size_t>(Target));
  if (FR == TR) {
    St.needLabel(static_cast<size_t>(Target), TR);
    return "goto L" + std::to_string(Target) + ";";
  }
  size_t TSeg = St.segOf(static_cast<size_t>(Target));
  int Tb = St.SegBlock[TSeg];
  if (FR == Region::Hot) {
    St.ColdEntries.insert(Tb);
    St.UsesTrampoline = true;
    St.needLabel(static_cast<size_t>(Target), Region::Cold);
    return "cold_entry = " + std::to_string(Tb) + "; goto SN_COLDCALL;";
  }
  St.ResumeTargets[Tb] = static_cast<size_t>(Target);
  St.needLabel(static_cast<size_t>(Target), Region::Hot);
  return "*resume = " + std::to_string(Tb) + "; return;";
}

std::string CEmitter::poolName(const StringLitExpr *S) {
  auto It = Pools.find(S);
  if (It == Pools.end()) {
    It = Pools.emplace(S, static_cast<unsigned>(Pools.size())).first;
    PoolOrder.push_back(S);
  }
  return "ss_" + std::to_string(It->second);
}

/// Splits the chunk into segments, applies the layout plan's coldness,
/// then downgrades to all-hot when outlining would be unsound (plain
/// branches across the region boundary) or pointless (no hot->cold arc).
bool CEmitter::prepareFn(FnState &St) {
  const std::vector<BcInstr> &Code = St.Ch->Code;
  St.SegStart.clear();
  St.SegBlock.clear();
  St.SegStart.push_back(0);
  St.SegBlock.push_back(!Code.empty() && Code[0].K == BcOp::BlockEnter
                            ? Code[0].X
                            : -1);
  for (size_t I = 1; I < Code.size(); ++I)
    if (Code[I].K == BcOp::BlockEnter) {
      St.SegStart.push_back(I);
      St.SegBlock.push_back(Code[I].X);
    }
  St.SegCold.assign(St.SegStart.size(), 0);

  // Plan coldness: only when this function has a valid plan row.
  uint32_t Fid = St.Fid;
  bool ValidRow = Fid < Plan.Order.size() &&
                  Fid < Pos.size() &&
                  !Plan.Order[Fid].empty() &&
                  Plan.Order[Fid].size() == Pos[Fid].size();
  if (ValidRow && Fid < Plan.FirstColdPos.size() &&
      Plan.FirstColdPos[Fid] < Pos[Fid].size()) {
    uint32_t FCP = Plan.FirstColdPos[Fid];
    for (size_t S = 0; S < St.SegStart.size(); ++S) {
      int B = St.SegBlock[S];
      if (B >= 0 && static_cast<size_t>(B) < Pos[Fid].size() &&
          Pos[Fid][B] >= FCP)
        St.SegCold[S] = 1;
    }
  }
  // The function entry (offset 0) must stay hot.
  if (St.SegCold[0])
    St.SegCold.assign(St.SegStart.size(), 0);

  auto ClearCold = [&] { St.SegCold.assign(St.SegStart.size(), 0); };

  // Soundness: plain (non-arc) branches cannot cross regions, and arc
  // transfers across regions must target a segment start.
  bool Sound = true;
  for (size_t I = 0; I < Code.size() && Sound; ++I) {
    const BcInstr &Ins = Code[I];
    Region FR = St.SegCold[St.segOf(I)] ? Region::Cold : Region::Hot;
    auto SameRegion = [&](int64_t T) {
      return (St.SegCold[St.segOf(static_cast<size_t>(T))] != 0) ==
             (FR == Region::Cold);
    };
    auto ArcOk = [&](int64_t T) {
      return SameRegion(T) || St.isSegStart(static_cast<size_t>(T));
    };
    switch (Ins.K) {
    case BcOp::Jmp:
    case BcOp::BrFalse:
    case BcOp::BrTrue:
      Sound = SameRegion(Ins.X);
      break;
    case BcOp::ArcJmp:
      Sound = ArcOk(Ins.X);
      break;
    case BcOp::ArcCondBr:
      Sound = ArcOk(Ins.X) && ArcOk(Ins.Imm);
      break;
    case BcOp::ArcSwitch: {
      const auto *Tbl = static_cast<const BcSwitchTable *>(Ins.Ptr);
      Sound = ArcOk(Tbl->DefaultTarget);
      for (const BcSwitchCase &C : Tbl->Cases)
        Sound = Sound && ArcOk(C.Target);
      break;
    }
    default:
      break;
    }
  }
  if (!Sound)
    ClearCold();

  // Pointlessness: outline only when some hot transfer actually reaches
  // a cold segment (otherwise the cold function would be dead code).
  bool AnyCold = false, Entered = false;
  for (uint8_t C : St.SegCold)
    AnyCold = AnyCold || C;
  if (AnyCold) {
    auto ToCold = [&](size_t FromOff, int64_t T) {
      return !St.SegCold[St.segOf(FromOff)] &&
             St.SegCold[St.segOf(static_cast<size_t>(T))];
    };
    for (size_t S = 0; S < St.SegStart.size() && !Entered; ++S) {
      size_t End = S + 1 < St.SegStart.size() ? St.SegStart[S + 1]
                                              : Code.size();
      if (End == St.SegStart[S])
        continue;
      const BcInstr &Last = Code[End - 1];
      switch (Last.K) {
      case BcOp::ArcJmp:
        Entered = ToCold(End - 1, Last.X);
        break;
      case BcOp::ArcCondBr:
        Entered = ToCold(End - 1, Last.X) || ToCold(End - 1, Last.Imm);
        break;
      case BcOp::ArcSwitch: {
        const auto *Tbl = static_cast<const BcSwitchTable *>(Last.Ptr);
        Entered = ToCold(End - 1, Tbl->DefaultTarget);
        for (const BcSwitchCase &C : Tbl->Cases)
          Entered = Entered || ToCold(End - 1, C.Target);
        break;
      }
      case BcOp::Jmp:
      case BcOp::RetVal:
      case BcOp::RetVoid:
      case BcOp::FailMsg:
      case BcOp::Halt:
        break;
      default:
        // Implicit fall-through into the next segment.
        if (S + 1 < St.SegStart.size())
          Entered = ToCold(End - 1, static_cast<int64_t>(St.SegStart[S + 1]));
        break;
      }
    }
    if (!Entered)
      ClearCold();
  }
  for (uint8_t C : St.SegCold)
    St.HasCold = St.HasCold || C;
  return true;
}

/// One instruction -> C statement(s). Everything the VM resolves per
/// dispatch (operands, strides, offsets, conversions, counter slots,
/// fall-through classification) is resolved here, once.
bool CEmitter::emitInstr(FnState &St, size_t Off) {
  const BcInstr &I = St.Ch->Code[Off];
  Region Rg = St.regionAt(Off);
  std::string &O = St.InstrText[Off];
  auto RS = [](uint16_t N) { return "R[" + std::to_string(N) + "]"; };
  std::string Hlt = hltText(Rg);
  std::string HltIf = "if (rt_halted(T)) { " + Hlt + " }";
  std::string Refresh = St.IsInit ? "R = T->regs;" : "R = T->regs + rb;";
  auto ArgBase = [&](uint16_t B) {
    return St.IsInit ? std::to_string(B) : "rb + " + std::to_string(B);
  };
  std::string NewRb = St.IsInit ? std::to_string(St.Ch->NumRegs)
                                : "rb + " + std::to_string(St.Ch->NumRegs);
  auto Ret = [&](const std::string &V) -> std::string {
    switch (Rg) {
    case Region::Hot:
      return "return " + V + ";";
    case Region::Cold:
      return "*retv = " + V + "; *resume = -1; return;";
    case Region::Init:
      return "return;";
    }
    return "";
  };

  switch (I.K) {
  case BcOp::ConstInt:
    O = "  " + RS(I.A) + " = sv_int(" + i64Lit(I.Imm) + ");\n";
    return true;
  case BcOp::ConstDouble:
    O = "  " + RS(I.A) + " = sv_dbl(" + dblLit(I.Dbl) + ");\n";
    return true;
  case BcOp::ConstStr: {
    if (static_cast<size_t>(I.X) >= StringBase.size())
      return fail("internal error: string id out of range");
    O = "  " + RS(I.A) + " = sv_ptr(1u, " + i64Lit(StringBase[I.X]) + ");\n";
    return true;
  }
  case BcOp::ConstFn: {
    const auto *F = static_cast<const FunctionDecl *>(I.Ptr);
    O = "  " + RS(I.A) + " = sv_fn(" + std::to_string(F->functionId()) +
        ");\n";
    return true;
  }
  case BcOp::Move:
    O = "  " + RS(I.A) + " = " + RS(I.B) + ";\n";
    return true;
  case BcOp::Truthy:
    O = "  " + RS(I.A) + " = sv_int(sv_truthy(" + RS(I.B) + ") ? 1 : 0);\n";
    return true;
  case BcOp::LoadGlobal:
    if (static_cast<uint64_t>(static_cast<int64_t>(I.X)) >=
        static_cast<uint64_t>(NGlobals))
      O = "  rt_fail(T, \"global read out of bounds\"); " + Hlt + "\n";
    else
      O = "  " + RS(I.A) + " = T->globals[" + std::to_string(I.X) + "];\n";
    return true;
  case BcOp::LoadLocal:
    O = "  { long long off = T->frame_base + " + i64Lit(I.X) +
        "; if (off < 0 || off >= T->nstack) { rt_fail(T, \"stack read out "
        "of bounds\"); " +
        Hlt + " } " + RS(I.A) + " = T->stack[off]; }\n";
    return true;
  case BcOp::LeaGlobal:
    O = "  " + RS(I.A) + " = sv_ptr(1u, " + i64Lit(I.X) + ");\n";
    return true;
  case BcOp::LeaLocal:
    O = "  " + RS(I.A) + " = sv_ptr(2u, T->frame_base + " + i64Lit(I.X) +
        ");\n";
    return true;
  case BcOp::LvalFromPtr: {
    const auto *Msg = static_cast<const std::string *>(I.Ptr);
    O = "  if (" + RS(I.B) + ".k != 2u) { rt_fail(T, " + cstr(*Msg) + "); " +
        Hlt + " }\n  " + RS(I.A) + " = " + RS(I.B) + ";\n";
    return true;
  }
  case BcOp::ArrowLoc:
    O = "  if (" + RS(I.B) +
        ".k != 2u) { rt_fail(T, \"'->' applied to non-pointer value\"); " +
        Hlt + " }\n  " + RS(I.A) + " = sv_ptr(" + RS(I.B) + ".ps, " + RS(I.B) +
        ".po + " + i64Lit(I.X) + ");\n";
    return true;
  case BcOp::IndexLoc:
    O = "  if (" + RS(I.B) +
        ".k != 2u) { rt_fail(T, \"indexing a non-pointer value\"); " + Hlt +
        " }\n  " + RS(I.A) + " = sv_ptr(" + RS(I.B) + ".ps, " + RS(I.B) +
        ".po + sv_as_int(" + RS(I.C) + ") * " + i64Lit(I.X) + ");\n";
    return true;
  case BcOp::AddOffs:
    O = "  " + RS(I.A) + " = sv_ptr(" + RS(I.B) + ".ps, " + RS(I.B) +
        ".po + " + i64Lit(I.X) + ");\n";
    return true;
  case BcOp::LoadCellD:
    O = "  { sv v = rt_load(T, " + RS(I.B) + ".ps, " + RS(I.B) + ".po); " +
        HltIf + " " + RS(I.A) + " = v; }\n";
    return true;
  case BcOp::ConvStore: {
    const auto *Ty = static_cast<const Type *>(I.Ptr);
    O = "  { sv v = " + convExpr(Ty, RS(I.C)) + "; rt_store(T, " + RS(I.B) +
        ".ps, " + RS(I.B) + ".po, v); " + HltIf + " " + RS(I.A) +
        " = v; }\n";
    return true;
  }
  case BcOp::StructAssign:
    O = "  if (" + RS(I.C) +
        ".k != 2u) { rt_fail(T, \"struct assignment from non-aggregate "
        "value\"); " +
        Hlt + " }\n  { unsigned ds = " + RS(I.B) + ".ps; long long dofs = " +
        RS(I.B) + ".po; rt_copy(T, ds, dofs, " + RS(I.C) + ".ps, " + RS(I.C) +
        ".po, " + i64Lit(I.X) + "); " + HltIf + " " + RS(I.A) +
        " = sv_ptr(ds, dofs); }\n";
    return true;
  case BcOp::ZeroLoc:
    O = "  rt_zero(T, " + RS(I.A) + ".ps, " + RS(I.A) + ".po, " +
        i64Lit(I.Imm) + "); " + HltIf + "\n";
    return true;
  case BcOp::StrCopyLoc: {
    const auto *S = static_cast<const StringLitExpr *>(I.Ptr);
    const std::string &V = S->value();
    O = "  { unsigned bs = " + RS(I.A) + ".ps; long long bo = " + RS(I.A) +
        ".po; rt_zero(T, bs, bo, " + i64Lit(I.X) + "); " + HltIf + "\n";
    if (!V.empty()) {
      O += "    { long long j; for (j = 0; j < " +
           std::to_string(V.size()) + "; ++j) rt_store(T, bs, bo + j, "
           "sv_int((long long)" +
           poolName(S) + "[j])); }\n";
    }
    O += "    " + HltIf + " }\n";
    return true;
  }
  case BcOp::Neg:
    O = "  " + RS(I.A) + " = " + RS(I.B) + ".k == 1u ? sv_dbl(-" + RS(I.B) +
        ".d) : sv_int(-sv_as_int(" + RS(I.B) + "));\n";
    return true;
  case BcOp::LogNot:
    O = "  " + RS(I.A) + " = sv_int(sv_truthy(" + RS(I.B) + ") ? 0 : 1);\n";
    return true;
  case BcOp::BitNot:
    O = "  " + RS(I.A) + " = sv_int(~sv_as_int(" + RS(I.B) + "));\n";
    return true;
  case BcOp::DerefRV:
    if (I.Sub) {
      O = "  if (" + RS(I.B) + ".k == 3u) { " + RS(I.A) + " = " + RS(I.B) +
          "; } else if (" + RS(I.B) +
          ".k != 2u) { rt_fail(T, \"dereference of non-pointer value\"); " +
          Hlt + " } else { " + RS(I.A) + " = " + RS(I.B) + "; }\n";
    } else {
      O = "  if (" + RS(I.B) + ".k == 3u) { " + RS(I.A) + " = " + RS(I.B) +
          "; } else if (" + RS(I.B) +
          ".k != 2u) { rt_fail(T, \"dereference of non-pointer value\"); " +
          Hlt + " } else { sv v = rt_load(T, " + RS(I.B) + ".ps, " + RS(I.B) +
          ".po); " + HltIf + " " + RS(I.A) + " = v; }\n";
    }
    return true;
  case BcOp::IncDec: {
    bool Inc = (I.Sub & bc::IncDecIsInc) != 0;
    bool Pre = (I.Sub & bc::IncDecIsPre) != 0;
    std::string Sign = Inc ? "+" : "-";
    O = "  { unsigned ls = " + RS(I.B) + ".ps; long long lo = " + RS(I.B) +
        ".po; sv oldv; sv newv; oldv = rt_load(T, ls, lo); " + HltIf +
        "\n    if (oldv.k == 2u) newv = sv_ptr(oldv.ps, oldv.po " + Sign +
        " " + i64Lit(I.X) + "); else if (oldv.k == 1u) newv = sv_dbl(oldv.d " +
        Sign + " 1.0); else newv = sv_int(sv_as_int(oldv) " + Sign +
        " 1);\n    rt_store(T, ls, lo, newv); " + HltIf + " " + RS(I.A) +
        " = " + (Pre ? "newv" : "oldv") + "; }\n";
    return true;
  }
  case BcOp::BinOp:
    O = "  { sv v = rt_bin(T, " + std::to_string(I.Sub) + ", " + RS(I.B) +
        ", " + RS(I.C) + ", " + i64Lit(I.X) + ", " + i64Lit(I.Imm) + "); " +
        HltIf + " " + RS(I.A) + " = v; }\n";
    return true;
  case BcOp::Conv: {
    const auto *Ty = static_cast<const Type *>(I.Ptr);
    O = "  " + RS(I.A) + " = " + convExpr(Ty, RS(I.B)) + ";\n";
    return true;
  }
  case BcOp::Tick:
    if (I.X == 1)
      O = "  rt_tick(T); " + HltIf + "\n";
    else if (I.X > 1)
      O = "  rt_tick_n(T, " + std::to_string(I.X) + "u); " + HltIf + "\n";
    return true;
  case BcOp::TickCall: {
    const auto *F = static_cast<const FunctionDecl *>(I.Ptr);
    O = "  rt_tick(T);\n";
    if (I.X >= 0)
      O += "  T->cs[" + std::to_string(I.X) + "] += 1.0;\n";
    // On a halt at the call tick, the VM still charges the about-to-run
    // callee's entry/call counters when the call would have been
    // admitted (profile parity for step-limited runs).
    std::string Leak;
    if (!I.Sub && F && !F->isBuiltin() && Bc.chunkFor(F)) {
      std::string Fid = std::to_string(F->functionId());
      std::string Frame = i64Lit(F->frameSizeCells());
      Leak = " if (T->call_depth < T->prm.max_call_depth) { if "
             "(rt_stack_used(T) <= T->prm.max_host_stack_bytes) { T->entry[" +
             Fid + "] += 1.0; T->lc_calls += 1u; if (T->nstack + " + Frame +
             " <= (long long)(1u << 24)) { if (T->call_depth + 1u > "
             "T->call_depth_hw) T->call_depth_hw = T->call_depth + 1u; } } }";
    }
    O += "  if (rt_halted(T)) {" + Leak + " " + Hlt + " }\n";
    return true;
  }
  case BcOp::BlockEnter: {
    if (St.IsInit)
      return fail("internal error: BlockEnter in global initializer");
    int64_t Base = Shape.BlockBase[St.Fid];
    if (Base < 0)
      return fail("internal error: no block base for function");
    O = "  rt_tick(T); T->blk[" + std::to_string(Base + I.X) +
        "] += 1.0; " + HltIf + "\n";
    return true;
  }
  case BcOp::Jmp:
    O = "  " + transferText(St, Off, I.X) + "\n";
    return true;
  case BcOp::BrFalse:
    St.needLabel(static_cast<size_t>(I.X), Rg);
    O = "  if (!sv_truthy(" + RS(I.A) + ")) goto L" + std::to_string(I.X) +
        ";\n";
    return true;
  case BcOp::BrTrue:
    St.needLabel(static_cast<size_t>(I.X), Rg);
    O = "  if (sv_truthy(" + RS(I.A) + ")) goto L" + std::to_string(I.X) +
        ";\n";
    return true;
  case BcOp::ArcJmp: {
    if (St.IsInit)
      return fail("internal error: ArcJmp in global initializer");
    O = "  " + arcBump(St, I.B, I.C) + transferText(St, Off, I.X) + "\n";
    return true;
  }
  case BcOp::ArcCondBr: {
    if (St.IsInit)
      return fail("internal error: ArcCondBr in global initializer");
    O = "  if (sv_truthy(" + RS(I.A) + ")) { " + arcBump(St, I.B, 0) +
        transferText(St, Off, I.X) + " } else { " + arcBump(St, I.B, 1) +
        transferText(St, Off, I.Imm) + " }\n";
    return true;
  }
  case BcOp::ArcSwitch: {
    if (St.IsInit)
      return fail("internal error: ArcSwitch in global initializer");
    const auto *Tbl = static_cast<const BcSwitchTable *>(I.Ptr);
    O = "  { long long swv = sv_as_int(" + RS(I.A) + ");\n";
    bool First = true;
    for (const BcSwitchCase &C : Tbl->Cases) {
      O += std::string("    ") + (First ? "if" : "else if") + " (swv == " +
           i64Lit(C.Value) + ") { " + arcBump(St, I.B, C.Slot) +
           transferText(St, Off, C.Target) + " }\n";
      First = false;
    }
    O += std::string("    ") + (First ? "{ (void)swv; " : "else { ") +
         arcBump(St, I.B, Tbl->DefaultSlot) +
         transferText(St, Off, Tbl->DefaultTarget) + " } }\n";
    return true;
  }
  case BcOp::RetVal: {
    const auto *Ty = static_cast<const Type *>(I.Ptr);
    if (Rg == Region::Init)
      O = "  T->lc_rets += 1u;\n  return;\n";
    else
      O = "  { sv v = " + convExpr(Ty, RS(I.A)) + "; T->lc_rets += 1u; " +
          Ret("v") + " }\n";
    return true;
  }
  case BcOp::RetVoid:
    // The VM charges lc_rets only when a function profile is current
    // (never during global init).
    if (Rg == Region::Init)
      O = "  return;\n";
    else
      O = "  T->lc_rets += 1u;\n  " + Ret("sv_int(0)") + "\n";
    return true;
  case BcOp::FailMsg: {
    const auto *Msg = static_cast<const std::string *>(I.Ptr);
    O = "  rt_fail(T, " + cstr(*Msg) + "); " + Hlt + "\n";
    return true;
  }
  case BcOp::CheckFn:
    O = "  if (" + RS(I.A) + ".k != 3u || " + RS(I.A) +
        ".fn < 0) { rt_fail(T, \"indirect call through a non-function "
        "value\"); " +
        Hlt + " }\n";
    return true;
  case BcOp::SiteBump:
    O = "  T->cs[" + std::to_string(I.X) + "] += 1.0;\n";
    return true;
  case BcOp::CheckStructArg:
    O = "  if (" + RS(I.A) +
        ".k != 2u) { rt_fail(T, \"struct argument is not an aggregate\"); " +
        Hlt + " }\n";
    return true;
  case BcOp::CallDirect: {
    const auto *F = static_cast<const FunctionDecl *>(I.Ptr);
    O = "  { sv v = call_" + std::to_string(F->functionId()) + "(T, " +
        ArgBase(I.B) + ", " + std::to_string(I.C) + ", " + NewRb + "); " +
        Refresh + " " + HltIf + " " + RS(I.A) + " = v; }\n";
    return true;
  }
  case BcOp::CallIndirect:
    O = "  { sv v = rt_call_indirect(T, " + RS(static_cast<uint16_t>(I.X)) +
        ".fn, " + ArgBase(I.B) + ", " + std::to_string(I.C) + ", " + NewRb +
        "); " + Refresh + " " + HltIf + " " + RS(I.A) + " = v; }\n";
    return true;
  case BcOp::CallBuiltin: {
    const auto *F = static_cast<const FunctionDecl *>(I.Ptr);
    O = "  { sv v = rt_builtin(T, " +
        std::to_string(static_cast<int>(F->builtin())) + ", " +
        cstr(F->name()) + ", " + ArgBase(I.B) + ", " + std::to_string(I.C) +
        "); " + HltIf + " " + RS(I.A) + " = v; }\n";
    return true;
  }
  case BcOp::Halt:
    O = "  rt_fail(T, \"internal error: bytecode fell off chunk end\"); " +
        Hlt + "\n";
    return true;
  }
  return fail("internal error: unknown opcode");
}

bool CEmitter::generateChunk(FnState &St) {
  const std::vector<BcInstr> &Code = St.Ch->Code;
  St.InstrText.assign(Code.size(), std::string());
  St.SegTail.assign(St.SegStart.size(), std::string());
  for (size_t I = 0; I < Code.size(); ++I)
    if (!emitInstr(St, I))
      return false;
  if (St.IsInit)
    return true;
  // Segments are emitted out of original order, so every one that can
  // run off its end gets an explicit transfer to its original successor.
  for (size_t S = 0; S < St.SegStart.size(); ++S) {
    size_t End = S + 1 < St.SegStart.size() ? St.SegStart[S + 1]
                                            : Code.size();
    if (End == St.SegStart[S])
      continue;
    switch (Code[End - 1].K) {
    case BcOp::Jmp:
    case BcOp::ArcJmp:
    case BcOp::ArcCondBr:
    case BcOp::ArcSwitch:
    case BcOp::RetVal:
    case BcOp::RetVoid:
    case BcOp::FailMsg:
    case BcOp::Halt:
      break;
    default:
      if (S + 1 < St.SegStart.size())
        St.SegTail[S] =
            "  " +
            transferText(St, End - 1,
                         static_cast<int64_t>(St.SegStart[S + 1])) +
            "\n";
      else
        St.SegTail[S] =
            "  rt_fail(T, \"internal error: bytecode fell off chunk "
            "end\"); " +
            hltText(St.regionAt(End - 1)) + "\n";
      break;
    }
  }
  return true;
}

void CEmitter::assembleRegion(FnState &St, Region R, std::string &Out) {
  std::vector<size_t> Ordered;
  for (size_t S = 0; S < St.SegStart.size(); ++S)
    if ((St.SegCold[S] != 0) == (R == Region::Cold))
      Ordered.push_back(S);
  std::stable_sort(Ordered.begin(), Ordered.end(),
                   [&](size_t A, size_t B) {
                     auto Key = [&](size_t S) -> int64_t {
                       int Blk = St.SegBlock[S];
                       if (Blk < 0)
                         return -1; // preamble leads
                       if (static_cast<size_t>(Blk) < Pos[St.Fid].size())
                         return static_cast<int64_t>(Pos[St.Fid][Blk]);
                       return Blk;
                     };
                     return Key(A) < Key(B);
                   });
  const std::set<size_t> &Labels =
      R == Region::Cold ? St.ColdLabels : St.HotLabels;
  for (size_t S : Ordered) {
    size_t End = S + 1 < St.SegStart.size() ? St.SegStart[S + 1]
                                            : St.Ch->Code.size();
    for (size_t I = St.SegStart[S]; I < End; ++I) {
      if (Labels.count(I)) {
        Out += "L";
        Out += std::to_string(I);
        Out += ": ;\n";
      }
      Out += St.InstrText[I];
    }
    Out += St.SegTail[S];
  }
}

void CEmitter::emitFnBodies(FnState &St, std::string &Out) {
  std::string N = std::to_string(St.Fid);
  if (St.HasCold) {
    // The outlined cold continuation: entered at a cold block id, runs
    // until it returns (resume = -1, value in *retv), halts (-2), or
    // transfers back to a hot block (resume = block id).
    Out += "static void fn_" + N +
           "_cold(rt *T, long long rb, int entry, sv *retv, int *resume) "
           "{\n";
    Out += "  sv *R = T->regs + rb;\n  (void)R;\n  (void)retv;\n";
    std::map<int, size_t> ColdStart;
    for (size_t S = 0; S < St.SegStart.size(); ++S)
      if (St.SegCold[S] && St.SegBlock[S] >= 0)
        ColdStart[St.SegBlock[S]] = St.SegStart[S];
    Out += "  switch (entry) {\n";
    for (int Bid : St.ColdEntries)
      Out += "  case " + std::to_string(Bid) + ": goto L" +
             std::to_string(ColdStart[Bid]) + ";\n";
    Out += "  default: rt_fail(T, \"internal error: bad cold entry\"); "
           "*resume = -2; return;\n  }\n";
    assembleRegion(St, Region::Cold, Out);
    Out += "}\n\n";
  }
  Out += "static sv fn_" + N + "(rt *T, long long rb) {\n";
  Out += "  sv *R = T->regs + rb;\n  (void)R;\n";
  if (St.Ch->Code.empty()) {
    Out += "  return sv_int(0);\n}\n\n";
    return;
  }
  if (St.UsesTrampoline)
    Out += "  int cold_entry = 0;\n  int resume = 0;\n  sv coldret;\n";
  // Execution starts at offset 0 regardless of where layout placed the
  // entry segment in the emitted order.
  St.HotLabels.insert(0);
  Out += "  goto L0;\n";
  assembleRegion(St, Region::Hot, Out);
  if (St.UsesTrampoline) {
    Out += "SN_COLDCALL:\n";
    Out += "  coldret = sv_int(0);\n  resume = -2;\n";
    Out += "  fn_" + N + "_cold(T, rb, cold_entry, &coldret, &resume);\n";
    Out += "  R = T->regs + rb;\n";
    Out += "  if (resume == -1) return coldret;\n";
    Out += "  if (resume < 0) return sv_int(0);\n";
    Out += "  switch (resume) {\n";
    for (const auto &[Bid, HotOff] : St.ResumeTargets)
      Out += "  case " + std::to_string(Bid) + ": goto L" +
             std::to_string(HotOff) + ";\n";
    Out += "  default: return sv_int(0);\n  }\n";
  }
  Out += "}\n\n";
}

/// The call protocol, one wrapper per function id (defined or not):
/// callFunction's limit checks, profile charges, frame setup, parameter
/// binding and teardown, with everything per-function resolved at
/// emission time.
void CEmitter::emitWrapper(const FunctionDecl *F, std::string &Out) {
  uint32_t Fid = F->functionId();
  std::string N = std::to_string(Fid);
  const BcChunk *Ch =
      Fid < Bc.Chunks.size() ? Bc.Chunks[Fid].get() : nullptr;
  std::string Name = cstr(F->name());
  Out += "static sv call_" + N +
         "(rt *T, long long argbase, long long nargs, long long newrb) {\n";
  if (!Ch) {
    Out += "  (void)argbase; (void)nargs; (void)newrb;\n";
    Out += "  if (T->call_depth >= T->prm.max_call_depth) { "
           "rt_limit_call_depth(T, " +
           Name + "); return sv_int(0); }\n";
    Out += "  if (rt_stack_used(T) > T->prm.max_host_stack_bytes) { "
           "rt_limit_host_stack(T, " +
           Name + "); return sv_int(0); }\n";
    Out += "  rt_fail2(T, \"call to undefined function '\", " + Name +
           ", \"'\");\n  return sv_int(0);\n}\n\n";
    return;
  }
  bool HasParams = !F->params().empty();
  Out += "  long long saved_base;\n  double saved_factor;\n"
         "  unsigned long long *saved_self;\n  sv ret;\n";
  if (HasParams)
    Out += "  sv arg;\n";
  else
    Out += "  (void)argbase; (void)nargs;\n";
  Out += "  if (T->call_depth >= T->prm.max_call_depth) { "
         "rt_limit_call_depth(T, " +
         Name + "); return sv_int(0); }\n";
  Out += "  if (rt_stack_used(T) > T->prm.max_host_stack_bytes) { "
         "rt_limit_host_stack(T, " +
         Name + "); return sv_int(0); }\n";
  Out += "  T->entry[" + N + "] += 1.0;\n  T->lc_calls += 1u;\n";
  Out += "  saved_base = T->frame_base;\n  saved_factor = T->cost_factor;\n"
         "  saved_self = T->cur_self;\n";
  Out += "  T->frame_base = T->nstack;\n";
  std::string Frame = i64Lit(F->frameSizeCells());
  Out += "  if (T->nstack + " + Frame +
         " > (long long)(1u << 24)) { rt_limit_host_frame(T, " + Name +
         "); return sv_int(0); }\n";
  Out += "  rt_stack_grow(T, T->nstack + " + Frame + ");\n";
  Out += "  T->cost_factor = T->prm.cost_factor[" + N + "];\n";
  Out += "  T->cur_self = &T->self[" + N + "];\n";
  Out += "  T->call_depth += 1u;\n";
  Out += "  if (T->call_depth > T->call_depth_hw) T->call_depth_hw = "
         "T->call_depth;\n";
  const std::vector<const Type *> &ParamTypes = F->type()->params();
  for (size_t P = 0; P < F->params().size(); ++P) {
    const VarDecl *V = F->params()[P];
    const Type *PTy = P < ParamTypes.size() ? ParamTypes[P] : nullptr;
    std::string Sp, Loc;
    if (V->storage() == StorageKind::Global) {
      Sp = "1u";
      Loc = i64Lit(V->cellOffset());
    } else {
      Sp = "2u";
      Loc = "T->frame_base + " + i64Lit(V->cellOffset());
    }
    Out += "  arg = " + std::to_string(P) + " < nargs ? T->regs[argbase + " +
           std::to_string(P) + "] : sv_int(0);\n";
    if (PTy && PTy->isStruct())
      Out += "  if (arg.k == 2u) rt_copy(T, " + Sp + ", " + Loc +
             ", arg.ps, arg.po, " + i64Lit(PTy->sizeInCells()) + ");\n";
    else
      Out += "  rt_store(T, " + Sp + ", " + Loc + ", " +
             convExpr(V->type(), "arg") + ");\n";
  }
  Out += "  rt_regs_grow(T, newrb + " + std::to_string(Ch->NumRegs) +
         ");\n";
  Out += "  ret = sv_int(0);\n  if (!rt_halted(T)) ret = fn_" + N +
         "(T, newrb);\n";
  Out += "  T->call_depth -= 1u;\n  T->cost_factor = saved_factor;\n"
         "  T->cur_self = saved_self;\n  T->nstack = T->frame_base;\n"
         "  T->frame_base = saved_base;\n  return ret;\n}\n\n";
}

bool CEmitter::emit(std::string &Out) {
  // Mirror BytecodeVM::run's main checks up front; the host driver turns
  // these into the VM's canned RunResults (fresh result, Error only).
  const FunctionDecl *Main = Unit.findFunction("main");
  if (!Main || !Main->isDefined())
    return fail("program has no main function");
  if (!Main->params().empty())
    return fail("main must take no parameters");

  Shape = computeProfileShape(Unit, Cfgs);
  Pos = layoutPositions(Unit, Cfgs,
                        Plan.Order.empty() ? nullptr : &Plan.Order);

  NGlobals = Unit.GlobalSizeCells;
  StringBase.clear();
  for (const std::string &S : Unit.StringTable) {
    StringBase.push_back(NGlobals);
    NGlobals += static_cast<int64_t>(S.size()) + 1;
  }

  for (const auto &Ch : Bc.Chunks)
    if (Ch)
      for (const BcInstr &I : Ch->Code)
        if (I.K == BcOp::CallIndirect)
          HasIndirect = true;
  for (const BcInstr &I : Bc.GlobalInit.Code)
    if (I.K == BcOp::CallIndirect)
      HasIndirect = true;

  size_t NFuncs = Unit.Functions.size();
  std::vector<const FunctionDecl *> ByFid(NFuncs, nullptr);
  for (const FunctionDecl *F : Unit.Functions)
    ByFid[F->functionId()] = F;

  std::vector<FnState> States(NFuncs);
  for (size_t Fid = 0; Fid < NFuncs; ++Fid) {
    const BcChunk *Ch =
        Fid < Bc.Chunks.size() ? Bc.Chunks[Fid].get() : nullptr;
    if (!Ch || !ByFid[Fid])
      continue;
    FnState &St = States[Fid];
    St.Fid = static_cast<uint32_t>(Fid);
    St.Ch = Ch;
    St.Name = ByFid[Fid]->name();
    if (!prepareFn(St) || !generateChunk(St))
      return false;
  }
  FnState InitSt;
  InitSt.IsInit = true;
  InitSt.Ch = &Bc.GlobalInit;
  if (!generateChunk(InitSt))
    return false;

  // ---- assemble the translation unit ----
  Out += "/* Generated by the sest C backend; do not edit.\n"
         "   Standalone lowering of one program + layout plan; ABI in\n"
         "   src/backend/NativeAbi.h (version 1). */\n";
  Out += "#include <stdlib.h>\n#include <string.h>\n#include <stdio.h>\n"
         "#include <math.h>\n\n";
  auto Max1 = [](int64_t N) { return std::to_string(N > 0 ? N : 1); };
  Out += "#define SN_NFUNCS1 " + Max1(static_cast<int64_t>(NFuncs)) + "\n";
  Out += "#define SN_NBLK1 " + Max1(Shape.TotalBlocks) + "\n";
  Out += "#define SN_NARC1 " + Max1(Shape.TotalArcs) + "\n";
  Out += "#define SN_NCS1 " + Max1(static_cast<int64_t>(Unit.NumCallSites)) +
         "\n";
  Out += kAbiText;
  Out += kRuntime;

  // String pools: sl_<i> back the string-table's startup global fill,
  // ss_<k> back StrCopyLoc initializers. Empty strings need no bytes.
  auto EmitBytes = [](std::string &O, const std::string &Name,
                      const std::string &S) {
    O += "static const unsigned char " + Name + "[] = {";
    for (size_t I = 0; I < S.size(); ++I) {
      if (I % 16 == 0)
        O += "\n  ";
      O += std::to_string(static_cast<unsigned char>(S[I])) + ",";
    }
    O += "\n};\n";
  };
  for (size_t I = 0; I < Unit.StringTable.size(); ++I)
    if (!Unit.StringTable[I].empty())
      EmitBytes(Out, "sl_" + std::to_string(I), Unit.StringTable[I]);
  for (size_t I = 0; I < PoolOrder.size(); ++I)
    if (!PoolOrder[I]->value().empty())
      EmitBytes(Out, "ss_" + std::to_string(I), PoolOrder[I]->value());
  Out += "\n";

  for (size_t Fid = 0; Fid < NFuncs; ++Fid) {
    std::string N = std::to_string(Fid);
    if (Fid < Bc.Chunks.size() && Bc.Chunks[Fid]) {
      Out += "static sv fn_" + N + "(rt *T, long long rb);\n";
      if (States[Fid].HasCold)
        Out += "static void fn_" + N +
               "_cold(rt *T, long long rb, int entry, sv *retv, int "
               "*resume);\n";
    }
    Out += "static sv call_" + N +
           "(rt *T, long long argbase, long long nargs, long long "
           "newrb);\n";
  }
  if (HasIndirect)
    Out += "static sv rt_call_indirect(rt *T, int fid, long long argbase, "
           "long long nargs, long long newrb);\n";
  Out += "\n";

  // Referenced from sest_native_run so every wrapper counts as used
  // under -Wall -Werror even when nothing calls it.
  Out += "typedef sv (*sn_callfn)(rt *, long long, long long, long "
         "long);\n";
  Out += "static const sn_callfn SN_CALLS[] = {";
  for (size_t Fid = 0; Fid < NFuncs; ++Fid) {
    if (Fid % 8 == 0)
      Out += "\n  ";
    Out += "call_" + std::to_string(Fid) + ",";
  }
  Out += "\n};\n\n";

  if (HasIndirect) {
    for (size_t Fid = 0; Fid < NFuncs; ++Fid) {
      const FunctionDecl *F = ByFid[Fid];
      if (!F)
        continue;
      const auto &PT = F->type()->params();
      bool AnyStruct = false;
      for (const Type *Ty : PT)
        AnyStruct = AnyStruct || (Ty && Ty->isStruct());
      if (!AnyStruct)
        continue;
      Out += "static const unsigned char sn_ps_" + std::to_string(Fid) +
             "[] = {";
      for (const Type *Ty : PT)
        Out += (Ty && Ty->isStruct()) ? "1," : "0,";
      Out += "};\n";
    }
    Out += "typedef struct sn_fninfo { const char *name; int builtin; "
           "long long nparams; const unsigned char *pstruct; } "
           "sn_fninfo;\n";
    Out += "static const sn_fninfo SN_FNS[] = {";
    for (size_t Fid = 0; Fid < NFuncs; ++Fid) {
      const FunctionDecl *F = ByFid[Fid];
      std::string Name = F ? cstr(F->name()) : "\"\"";
      int BK = F ? static_cast<int>(F->builtin()) : 0;
      size_t NP = F ? F->type()->params().size() : 0;
      bool AnyStruct = false;
      if (F)
        for (const Type *Ty : F->type()->params())
          AnyStruct = AnyStruct || (Ty && Ty->isStruct());
      Out += "\n  { " + Name + ", " + std::to_string(BK) + ", " +
             std::to_string(NP) + ", " +
             (AnyStruct ? "sn_ps_" + std::to_string(Fid) : std::string("0")) +
             " },";
    }
    Out += "\n};\n";
    // Mirrors the VM's CallIndirect handler: struct-parameter guard
    // against the resolved callee, builtins routed to rt_builtin.
    Out += "static sv rt_call_indirect(rt *T, int fid, long long argbase, "
           "long long nargs, long long newrb) {\n"
           "  const sn_fninfo *f = &SN_FNS[fid];\n"
           "  long long a;\n"
           "  for (a = 0; a < nargs && a < f->nparams; ++a)\n"
           "    if (f->pstruct && f->pstruct[a] && T->regs[argbase + a].k "
           "!= 2u) {\n"
           "      rt_fail(T, \"struct argument is not an aggregate\");\n"
           "      return sv_int(0);\n"
           "    }\n"
           "  if (f->builtin) return rt_builtin(T, f->builtin, f->name, "
           "argbase, nargs);\n"
           "  return SN_CALLS[fid](T, argbase, nargs, newrb);\n"
           "}\n\n";
  }

  // Global initializer: straight-line, original order (no profiling).
  Out += "static void sn_global_init(rt *T) {\n  sv *R = T->regs;\n  "
         "(void)R;\n";
  for (size_t I = 0; I < InitSt.Ch->Code.size(); ++I) {
    if (InitSt.HotLabels.count(I))
      Out += "L" + std::to_string(I) + ": ;\n";
    Out += InitSt.InstrText[I];
  }
  Out += "}\n\n";

  for (size_t Fid = 0; Fid < NFuncs; ++Fid) {
    if (!ByFid[Fid])
      continue;
    if (Fid < Bc.Chunks.size() && Bc.Chunks[Fid])
      emitFnBodies(States[Fid], Out);
    emitWrapper(ByFid[Fid], Out);
  }

  std::string MainFid = std::to_string(Main->functionId());
  Out += "int sest_native_run(const sest_native_params *prm, "
         "sest_native_result *res) {\n"
         "  char anchor;\n"
         "  sv ret;\n"
         "  rt *T = (rt *)calloc(1, sizeof(rt));\n"
         "  if (!T) return 1;\n"
         "  (void)SN_CALLS;\n"
         "  T->prm = *prm;\n"
         "  T->cost_factor = 1.0;\n"
         "  T->cur_self = &T->self_dummy;\n"
         "  T->host_base = &anchor;\n"
         "  rt_seed(T, prm->rand_seed);\n";
  Out += "  T->nglobals = " + std::to_string(NGlobals) + ";\n";
  Out += "  T->globals = (sv *)calloc(" + Max1(NGlobals) +
         ", sizeof(sv));\n"
         "  if (!T->globals) { free(T); return 1; }\n";
  for (size_t I = 0; I < Unit.StringTable.size(); ++I) {
    const std::string &S = Unit.StringTable[I];
    if (S.empty())
      continue;
    Out += "  { long long j; for (j = 0; j < " + std::to_string(S.size()) +
           "; ++j) T->globals[" + i64Lit(StringBase[I]) +
           " + j] = sv_int((long long)sl_" + std::to_string(I) + "[j]); }\n";
  }
  Out += "  rt_regs_grow(T, " + std::to_string(Bc.GlobalInit.NumRegs) +
         ");\n"
         "  sn_global_init(T);\n"
         "  ret = sv_int(0);\n"
         "  if (!rt_halted(T)) ret = call_" +
         MainFid +
         "(T, 0, 0, 0);\n"
         "  res->ok = T->failed ? 0 : 1;\n"
         "  res->limit = T->limit;\n"
         "  res->exit_code = T->exited ? T->exit_val : sv_as_int(ret);\n"
         "  res->steps = T->steps;\n"
         "  res->heap_hw = T->heap_hw;\n"
         "  res->call_depth_hw = T->call_depth_hw;\n"
         "  res->lc_fall = T->lc_fall;\n"
         "  res->lc_taken = T->lc_taken;\n"
         "  res->lc_calls = T->lc_calls;\n"
         "  res->lc_rets = T->lc_rets;\n"
         "  res->cycles = T->cycles;\n"
         "  res->output = T->out ? T->out : \"\";\n"
         "  res->output_len = T->out_len;\n"
         "  res->error = T->err;\n"
         "  res->error_len = strlen(T->err);\n"
         "  res->blocks = T->blk;\n"
         "  res->arcs = T->arc;\n"
         "  res->entries = T->entry;\n"
         "  res->callsites = T->cs;\n"
         "  res->self_steps = T->self;\n"
         "  res->impl = T;\n"
         "  return 0;\n"
         "}\n\n";
  Out += "void sest_native_free(sest_native_result *res) {\n"
         "  rt *T = (rt *)res->impl;\n"
         "  long long i;\n"
         "  if (!T) return;\n"
         "  for (i = 0; i < T->nheap; ++i) free(T->heap[i].cells);\n"
         "  free(T->heap);\n"
         "  free(T->globals);\n"
         "  free(T->stack);\n"
         "  free(T->regs);\n"
         "  free(T->out);\n"
         "  free(T);\n"
         "  res->impl = 0;\n"
         "}\n\n";
  Out += "const unsigned long long sest_native_shape[5] = { 1u, " +
         std::to_string(NFuncs) + "u, " + std::to_string(Shape.TotalBlocks) +
         "u, " + std::to_string(Shape.TotalArcs) + "u, " +
         std::to_string(Unit.NumCallSites) + "u };\n";
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// CBackend entry points (compile/available live in Native.cpp)
//===----------------------------------------------------------------------===//

std::string CBackend::emitSource(const TranslationUnit &Unit,
                                 const CfgModule &Cfgs,
                                 const bc::BcModule &Bc,
                                 const NativeLayoutPlan &Plan,
                                 std::string *Error) const {
  CEmitter E(Unit, Cfgs, Bc, Plan);
  std::string Out;
  if (!E.emit(Out)) {
    if (Error)
      *Error = E.error();
    return "";
  }
  return Out;
}

const Backend &sest::backend::cBackend() {
  static CBackend B;
  return B;
}

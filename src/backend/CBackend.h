//===- backend/CBackend.h - Compile-to-C backend ----------------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a program's compiled bytecode to one standalone C translation
/// unit: one C function per mini-C function, with the VM's dispatch loop
/// replaced by direct control flow (labels + gotos resolved at emission
/// time) and every profile counter compiled to a plain `+= 1` on a flat
/// static-offset array. Semantics are a transplant of BytecodeVM.cpp —
/// same diagnostics, same tick placement, same limit checks in the same
/// order — so profiles and RunResults are bit-identical to both
/// interpreters (tests/test_bytecode_diff.cpp pins this three ways).
///
/// Block segments are emitted in the layout plan's order, with cold
/// chains outlined into `..._cold` continuation functions; arc
/// fall-through/taken classification is baked in per arc slot against
/// the same plan. The host C compiler then turns the chosen order into
/// real fall-throughs — layout decisions become instruction-stream
/// effects, not just classified costs.
///
//===----------------------------------------------------------------------===//

#ifndef BACKEND_CBACKEND_H
#define BACKEND_CBACKEND_H

#include "backend/Backend.h"

namespace sest::backend {

class CBackend : public Backend {
public:
  std::string name() const override { return "c"; }
  bool available(std::string *Why) const override;
  std::string emitSource(const TranslationUnit &Unit, const CfgModule &Cfgs,
                         const bc::BcModule &Bc, const NativeLayoutPlan &Plan,
                         std::string *Error) const override;
  std::shared_ptr<const NativeArtifact>
  compile(const TranslationUnit &Unit, const CfgModule &Cfgs,
          const bc::BcModule &Bc, const NativeLayoutPlan &Plan,
          std::string *Error) const override;
};

} // namespace sest::backend

#endif // BACKEND_CBACKEND_H

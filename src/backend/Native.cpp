//===- backend/Native.cpp - Host cc driver, dlopen, native runs -----------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
//
// The host side of the native tier: probe for a C compiler, drive it over
// the CBackend's generated translation unit, dlopen the shared object,
// verify the ABI handshake, and decode sest_native_result back into the
// RunResult contract. Loaded artifacts are memoized process-wide by
// generated-source content hash; the hook registration at the bottom
// routes runProgram(Engine=Native) here without making src/interp depend
// on this library.
//
//===----------------------------------------------------------------------===//

#include "backend/Native.h"

#include "backend/CBackend.h"
#include "backend/NativeAbi.h"
#include "cfg/Cfg.h"
#include "interp/bytecode/BytecodeCompiler.h"
#include "lang/Ast.h"
#include "lang/Type.h"
#include "obs/Telemetry.h"
#include "support/Hash.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include <dlfcn.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace sest;
using namespace sest::backend;

//===----------------------------------------------------------------------===//
// Compiler probe
//===----------------------------------------------------------------------===//

namespace {

bool isExecutable(const std::string &P) {
  return !P.empty() && ::access(P.c_str(), X_OK) == 0;
}

std::string findOnPath(const std::string &Name) {
  if (Name.find('/') != std::string::npos)
    return isExecutable(Name) ? Name : "";
  const char *Path = std::getenv("PATH");
  if (!Path)
    return "";
  std::string S(Path);
  size_t Start = 0;
  while (Start <= S.size()) {
    size_t End = S.find(':', Start);
    if (End == std::string::npos)
      End = S.size();
    std::string Dir = S.substr(Start, End - Start);
    if (!Dir.empty()) {
      std::string Cand = Dir + "/" + Name;
      if (isExecutable(Cand))
        return Cand;
    }
    if (End == S.size())
      break;
    Start = End + 1;
  }
  return "";
}

std::string probeCompiler() {
  if (const char *CC = std::getenv("CC"); CC && *CC) {
    std::string Found = findOnPath(CC);
    if (!Found.empty())
      return Found;
  }
  for (const char *Name : {"cc", "gcc", "clang"}) {
    std::string Found = findOnPath(Name);
    if (!Found.empty())
      return Found;
  }
  return "";
}

/// Runs Argv[0] with stderr redirected to \p StderrPath. Returns true on
/// exit status 0; otherwise fills \p Error with the captured stderr.
bool runCommand(const std::vector<std::string> &Argv,
                const std::string &StderrPath, std::string *Error) {
  pid_t Pid = ::fork();
  if (Pid < 0) {
    if (Error)
      *Error = "fork failed: " + std::string(std::strerror(errno));
    return false;
  }
  if (Pid == 0) {
    int Fd = ::open(StderrPath.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (Fd >= 0) {
      ::dup2(Fd, 2);
      ::close(Fd);
    }
    std::vector<char *> Args;
    Args.reserve(Argv.size() + 1);
    for (const std::string &A : Argv)
      Args.push_back(const_cast<char *>(A.c_str()));
    Args.push_back(nullptr);
    ::execv(Args[0], Args.data());
    _exit(127);
  }
  int Status = 0;
  while (::waitpid(Pid, &Status, 0) < 0 && errno == EINTR) {
  }
  if (WIFEXITED(Status) && WEXITSTATUS(Status) == 0)
    return true;
  if (Error) {
    std::ifstream In(StderrPath);
    std::stringstream SS;
    SS << In.rdbuf();
    std::string Diag = SS.str();
    if (Diag.size() > 4000)
      Diag.resize(4000);
    *Error = Argv[0] + " failed";
    if (WIFEXITED(Status))
      *Error += " (exit " + std::to_string(WEXITSTATUS(Status)) + ")";
    if (!Diag.empty())
      *Error += ":\n" + Diag;
  }
  return false;
}

} // namespace

const std::string &sest::backend::hostCompilerPath() {
  static const std::string Path = probeCompiler();
  return Path;
}

bool sest::backend::nativeEngineAvailable(std::string *Why) {
  if (!hostCompilerPath().empty())
    return true;
  if (Why)
    *Why = "no host C compiler found (tried $CC, cc, gcc, clang)";
  return false;
}

bool CBackend::available(std::string *Why) const {
  return nativeEngineAvailable(Why);
}

//===----------------------------------------------------------------------===//
// Artifact lifecycle
//===----------------------------------------------------------------------===//

NativeArtifact::~NativeArtifact() {
  if (Handle)
    ::dlclose(Handle);
  for (const std::string &F : TempFiles)
    ::unlink(F.c_str());
  if (!TempDir.empty())
    ::rmdir(TempDir.c_str());
}

std::shared_ptr<const NativeArtifact>
CBackend::compile(const TranslationUnit &Unit, const CfgModule &Cfgs,
                  const bc::BcModule &Bc, const NativeLayoutPlan &Plan,
                  std::string *Error) const {
  auto T0 = std::chrono::steady_clock::now();
  std::string Err;
  std::string Source = emitSource(Unit, Cfgs, Bc, Plan, &Err);
  if (Source.empty()) {
    if (Error)
      *Error = Err;
    return nullptr;
  }
  std::string Hash = hashHex(contentHash64(Source));

  static std::mutex CacheMu;
  static std::map<std::string, std::shared_ptr<const NativeArtifact>> Cache;
  {
    std::lock_guard<std::mutex> L(CacheMu);
    auto It = Cache.find(Hash);
    if (It != Cache.end())
      return It->second;
  }

  std::string Why;
  if (!nativeEngineAvailable(&Why)) {
    if (Error)
      *Error = Why;
    return nullptr;
  }

  obs::ScopedPhase Phase("native.compile", Hash);
  char Tmpl[] = "/tmp/sest-native-XXXXXX";
  if (!::mkdtemp(Tmpl)) {
    if (Error)
      *Error = "cannot create temp dir under /tmp: " +
               std::string(std::strerror(errno));
    return nullptr;
  }
  std::string Dir = Tmpl;
  std::string CPath = Dir + "/gen.c";
  std::string SoPath = Dir + "/lib.so";
  std::string DiagPath = Dir + "/cc.stderr";
  auto Cleanup = [&] {
    ::unlink(CPath.c_str());
    ::unlink(SoPath.c_str());
    ::unlink(DiagPath.c_str());
    ::rmdir(Dir.c_str());
  };
  {
    std::ofstream OutF(CPath, std::ios::binary);
    OutF << Source;
    if (!OutF) {
      if (Error)
        *Error = "cannot write " + CPath;
      Cleanup();
      return nullptr;
    }
  }

  // -fwrapv: the VM's int64 arithmetic wraps; make the C side match.
  // -lm: the sqrt builtin — don't rely on the host process having libm.
  // -O1: measured identical run time to -O2 on the whole suite (the
  // hot helpers carry always_inline themselves) at ~60% of the compile
  // latency, which is what the break-even curve actually pays.
  std::vector<std::string> Argv = {hostCompilerPath(), "-O1",  "-fPIC",
                                   "-fwrapv",          "-shared", "-o",
                                   SoPath,             CPath,  "-lm"};
  if (!runCommand(Argv, DiagPath, Error)) {
    Cleanup();
    return nullptr;
  }

  void *H = ::dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!H) {
    if (Error) {
      const char *D = ::dlerror();
      *Error = std::string("dlopen failed: ") + (D ? D : "unknown error");
    }
    Cleanup();
    return nullptr;
  }
  void *RunSym = ::dlsym(H, "sest_native_run");
  void *FreeSym = ::dlsym(H, "sest_native_free");
  void *ShapeSym = ::dlsym(H, "sest_native_shape");
  ProfileShape Shape = computeProfileShape(Unit, Cfgs);
  bool ShapeOk = false;
  if (ShapeSym) {
    const auto *S = static_cast<const unsigned long long *>(ShapeSym);
    ShapeOk = S[0] == kSestNativeAbiVersion &&
              S[1] == Unit.Functions.size() &&
              S[2] == static_cast<unsigned long long>(Shape.TotalBlocks) &&
              S[3] == static_cast<unsigned long long>(Shape.TotalArcs) &&
              S[4] == Unit.NumCallSites;
  }
  if (!RunSym || !FreeSym || !ShapeOk) {
    if (Error)
      *Error = "artifact rejected: ABI/shape handshake mismatch";
    ::dlclose(H);
    Cleanup();
    return nullptr;
  }

  std::shared_ptr<NativeArtifact> A(new NativeArtifact());
  A->Handle = H;
  A->RunFn = RunSym;
  A->FreeFn = FreeSym;
  A->TempDir = Dir;
  A->TempFiles = {CPath, SoPath, DiagPath};
  A->SourceHash = Hash;
  A->SourceBytes = Source.size();
  A->CompileMs = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - T0)
                     .count();
  A->Shape = std::move(Shape);

  if (obs::telemetryActive()) {
    obs::counterAdd("native.compiles");
    obs::counterAdd("native.compile_ms", A->CompileMs);
    obs::counterAdd("native.source_bytes",
                    static_cast<double>(A->SourceBytes));
  }

  std::lock_guard<std::mutex> L(CacheMu);
  auto [It, Inserted] = Cache.emplace(Hash, A);
  return Inserted ? A : It->second;
}

//===----------------------------------------------------------------------===//
// Execution + RunResult decode
//===----------------------------------------------------------------------===//

RunResult NativeArtifact::run(const TranslationUnit &Unit,
                              const CfgModule &Cfgs,
                              const ProgramInput &Input,
                              const InterpOptions &Options) const {
  obs::ScopedPhase Phase("native.run", Input.Name);

  std::vector<double> Factors(Unit.Functions.size(), 1.0);
  for (const FunctionDecl *F : Unit.Functions)
    if (Options.OptimizedFunctions.count(F))
      Factors[F->functionId()] = Options.OptimizedCostFactor;
  if (Factors.empty())
    Factors.push_back(1.0);

  sest_native_params P{};
  P.input = Input.Text.c_str();
  P.input_len = Input.Text.size();
  P.rand_seed = Input.RandSeed;
  P.max_steps = Options.MaxSteps;
  P.max_call_depth = Options.MaxCallDepth;
  P.max_host_stack_bytes = Options.MaxHostStackBytes;
  P.max_heap_cells = Options.MaxHeapCells;
  P.cost_factor = Factors.data();

  sest_native_result Res{};
  auto RunF = reinterpret_cast<sest_native_run_fn>(RunFn);
  auto FreeF = reinterpret_cast<sest_native_free_fn>(FreeFn);

  RunResult R;
  if (RunF(&P, &Res) != 0) {
    R.Error = "native run failed to start (out of memory)";
    return R;
  }

  R.Ok = Res.ok != 0;
  R.Error.assign(Res.error, Res.error_len);
  R.LimitHit = static_cast<RunLimit>(Res.limit);
  R.ExitCode = Res.exit_code;
  R.Output.assign(Res.output, Res.output_len);
  R.StepsExecuted = Res.steps;
  R.HeapCellsHighWater = Res.heap_hw;
  R.CallDepthHighWater = Res.call_depth_hw;
  R.LayoutCost.FallThrough = Res.lc_fall;
  R.LayoutCost.Taken = Res.lc_taken;
  R.LayoutCost.Calls = Res.lc_calls;
  R.LayoutCost.Returns = Res.lc_rets;

  Profile &Prof = R.TheProfile;
  Prof.ProgramName = Unit.Functions.empty() ? "" : "program";
  Prof.InputName = Input.Name;
  Prof.TotalCycles = Res.cycles;
  Prof.Functions.resize(Unit.Functions.size());
  for (size_t Fid = 0; Fid < Unit.Functions.size(); ++Fid)
    Prof.Functions[Fid].EntryCount = Res.entries[Fid];
  for (const auto &[F, G] : Cfgs.all()) {
    uint32_t Fid = F->functionId();
    FunctionProfile &FP = Prof.Functions[Fid];
    int64_t BBase = Shape.BlockBase[Fid];
    FP.BlockCounts.assign(G->size(), 0.0);
    FP.ArcCounts.resize(G->size());
    for (const auto &B : G->blocks()) {
      FP.BlockCounts[B->id()] = Res.blocks[BBase + B->id()];
      auto &Row = FP.ArcCounts[B->id()];
      Row.assign(B->successors().size(), 0.0);
      int64_t ABase = Shape.ArcBase[Fid][B->id()];
      for (size_t S = 0; S < Row.size(); ++S)
        Row[S] = Res.arcs[ABase + static_cast<int64_t>(S)];
    }
  }
  Prof.CallSiteCounts.assign(Unit.NumCallSites, 0.0);
  for (uint32_t CS = 0; CS < Unit.NumCallSites; ++CS)
    Prof.CallSiteCounts[CS] = Res.callsites[CS];

  // Mirror BytecodeVM::flushTelemetry (minus the VM-only instr counter).
  if (obs::telemetryActive()) {
    obs::counterAdd("interp.runs");
    obs::counterAdd("interp.steps.executed",
                    static_cast<double>(Res.steps));
    obs::gaugeMax("interp.heap_cells.high_water",
                  static_cast<double>(Res.heap_hw));
    obs::gaugeMax("interp.call_depth.high_water",
                  static_cast<double>(Res.call_depth_hw));
    if (R.LimitHit != RunLimit::None)
      obs::counterAdd(std::string("interp.limit_hit.") +
                      runLimitName(R.LimitHit));
    obs::counterAdd("interp.layout.fall_through",
                    static_cast<double>(Res.lc_fall));
    obs::counterAdd("interp.layout.taken",
                    static_cast<double>(Res.lc_taken));
    obs::counterAdd("interp.layout.calls",
                    static_cast<double>(Res.lc_calls));
    obs::counterAdd("interp.layout.returns",
                    static_cast<double>(Res.lc_rets));
    for (size_t Fid = 0; Fid < Unit.Functions.size(); ++Fid)
      if (Res.self_steps[Fid])
        obs::counterAdd("interp.fn_self_steps." +
                            Unit.Functions[Fid]->name(),
                        static_cast<double>(Res.self_steps[Fid]));
  }

  FreeF(&Res);
  return R;
}

//===----------------------------------------------------------------------===//
// One-shot entry points + engine hook
//===----------------------------------------------------------------------===//

NativeLayoutPlan sest::backend::planFromOptions(const InterpOptions &Options) {
  NativeLayoutPlan Plan;
  if (Options.Layout)
    Plan.Order = *Options.Layout;
  return Plan;
}

RunResult sest::backend::runProgramNative(const TranslationUnit &Unit,
                                          const CfgModule &Cfgs,
                                          const bc::BcModule &Bc,
                                          const ProgramInput &Input,
                                          const InterpOptions &Options) {
  std::string Why;
  if (!nativeEngineAvailable(&Why)) {
    RunResult R;
    R.Error = "native backend unavailable: " + Why;
    return R;
  }
  // The VM's canned main-check results (fresh RunResult, Error only).
  const FunctionDecl *Main = Unit.findFunction("main");
  if (!Main || !Main->isDefined()) {
    RunResult R;
    R.Error = "program has no main function";
    return R;
  }
  if (!Main->params().empty()) {
    RunResult R;
    R.Error = "main must take no parameters";
    return R;
  }
  std::string Err;
  auto Artifact =
      cBackend().compile(Unit, Cfgs, Bc, planFromOptions(Options), &Err);
  if (!Artifact) {
    RunResult R;
    R.Error = "native compile failed: " + Err;
    return R;
  }
  return Artifact->run(Unit, Cfgs, Input, Options);
}

RunResult sest::backend::runProgramNative(const TranslationUnit &Unit,
                                          const CfgModule &Cfgs,
                                          const ProgramInput &Input,
                                          const InterpOptions &Options) {
  bc::BcModule Module = bc::compileBytecode(Unit, Cfgs);
  return runProgramNative(Unit, Cfgs, Module, Input, Options);
}

namespace {

/// Routes runProgram(Engine=Native) to this library without a link-time
/// dependency from src/interp on src/backend. Registered when any
/// backend symbol is linked in (every native-capable binary references
/// at least nativeEngineAvailable).
struct NativeHookRegistrar {
  NativeHookRegistrar() {
    setNativeRunHook(+[](const TranslationUnit &Unit, const CfgModule &Cfgs,
                         const ProgramInput &Input,
                         const InterpOptions &Options) {
      return runProgramNative(Unit, Cfgs, Input, Options);
    });
  }
} RegisterNativeHook;

} // namespace

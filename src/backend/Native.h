//===- backend/Native.h - Native artifacts & execution ----------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The host side of the native tier: probe the host C compiler, drive it
/// over the CBackend's emitted translation unit, dlopen the shared
/// object, and run it under the RunResult contract. Loaded artifacts are
/// memoized process-wide by generated-source content hash (the hash
/// covers program + layout plan, since both are compiled in), so the
/// suite pool and the sestd cache tier share one compile per
/// (program, plan).
///
//===----------------------------------------------------------------------===//

#ifndef BACKEND_NATIVE_H
#define BACKEND_NATIVE_H

#include "backend/Backend.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sest::backend {

/// Flat-array addressing for the counters the emitted code increments:
/// one dense double array for block counts and one for arc counts,
/// offsets resolved at emission time and re-used by the host decoder.
/// Must be computed identically on both sides (same Cfgs traversal).
struct ProfileShape {
  /// Per function id: base offset into the flat block array (-1 when the
  /// function has no CFG).
  std::vector<int64_t> BlockBase;
  /// Per function id, per block id: base offset into the flat arc array.
  std::vector<std::vector<int64_t>> ArcBase;
  /// Per function id, per block id: successor block ids (arc slots).
  std::vector<std::vector<std::vector<uint32_t>>> Succs;
  int64_t TotalBlocks = 0;
  int64_t TotalArcs = 0;
};

ProfileShape computeProfileShape(const TranslationUnit &Unit,
                                 const CfgModule &Cfgs);

/// A compiled-and-loaded native program: the shared object plus its
/// on-disk artifacts. Destruction dlcloses and removes the temp tree.
/// Runs are thread-safe (all run state lives in the callee).
class NativeArtifact {
public:
  ~NativeArtifact();
  NativeArtifact(const NativeArtifact &) = delete;
  NativeArtifact &operator=(const NativeArtifact &) = delete;

  /// Content hash (hex) of the generated source this artifact was built
  /// from — the memoization key.
  const std::string &sourceHash() const { return SourceHash; }
  /// Size of the generated C source in bytes (observability).
  size_t sourceBytes() const { return SourceBytes; }
  /// Wall time spent in emission + host cc + dlopen.
  double compileMs() const { return CompileMs; }

  /// Executes one input. \p Unit / \p Cfgs must be the program the
  /// artifact was compiled from (the caller's contract; the decoder
  /// shapes the profile from them).
  RunResult run(const TranslationUnit &Unit, const CfgModule &Cfgs,
                const ProgramInput &Input, const InterpOptions &Options) const;

private:
  friend class CBackend;
  NativeArtifact() = default;

  void *Handle = nullptr;
  void *RunFn = nullptr;
  void *FreeFn = nullptr;
  std::string TempDir;
  std::vector<std::string> TempFiles;
  std::string SourceHash;
  size_t SourceBytes = 0;
  double CompileMs = 0.0;
  ProfileShape Shape;
};

/// True when the native tier can run on this host; \p Why (optional)
/// receives the capability diagnostic otherwise.
bool nativeEngineAvailable(std::string *Why = nullptr);

/// Absolute path of the probed host C compiler, or "" when none was
/// found ($CC, then cc / gcc / clang on PATH; probed once per process).
const std::string &hostCompilerPath();

/// Builds the layout plan runProgramNative bakes into an artifact for a
/// run with the given InterpOptions::Layout (classification must match
/// layoutPositions; no cold outlining, since a bare ProgramBlockOrder
/// carries no coldness information).
NativeLayoutPlan planFromOptions(const InterpOptions &Options);

/// One-shot native execution: lower bytecode, emit C, compile (memoized),
/// run. Returns a clean capability-error RunResult when no host compiler
/// exists or the program cannot be lowered.
RunResult runProgramNative(const TranslationUnit &Unit, const CfgModule &Cfgs,
                           const ProgramInput &Input,
                           const InterpOptions &Options);

/// Same, reusing an already-lowered bytecode module (the suite runner's
/// compile-once path).
RunResult runProgramNative(const TranslationUnit &Unit, const CfgModule &Cfgs,
                           const bc::BcModule &Bc, const ProgramInput &Input,
                           const InterpOptions &Options);

} // namespace sest::backend

#endif // BACKEND_NATIVE_H

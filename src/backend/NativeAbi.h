//===- backend/NativeAbi.h - Host <-> emitted-code ABI ----------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The C ABI between the host driver (Native.cpp) and the shared objects
/// the CBackend compiles. The emitted translation unit carries its own
/// textual copy of these structs (CBackend.cpp, kAbiText) — the two must
/// stay field-for-field identical, and kSestNativeAbiVersion is bumped on
/// any change so a stale artifact is rejected at load time instead of
/// misreading memory.
///
/// Everything an artifact needs at run time that does NOT change code
/// shape travels through sest_native_params (input bytes, PRNG seed,
/// resource limits, the per-function cost factors of the selective-
/// optimization experiment); everything layout- or program-shaped is
/// compiled in. All run state lives behind the opaque impl pointer, so
/// one loaded artifact supports concurrent runs from the suite pool.
///
//===----------------------------------------------------------------------===//

#ifndef BACKEND_NATIVEABI_H
#define BACKEND_NATIVEABI_H

#ifdef __cplusplus
extern "C" {
#endif

enum { kSestNativeAbiVersion = 1 };

/// Per-run inputs. cost_factor has one entry per function id.
typedef struct sest_native_params {
  const char *input;
  unsigned long long input_len;
  unsigned long long rand_seed;
  unsigned long long max_steps;
  unsigned max_call_depth;
  unsigned long long max_host_stack_bytes;
  long long max_heap_cells;
  const double *cost_factor;
} sest_native_params;

/// Per-run outputs. The pointers alias storage owned by impl; release
/// with sest_native_free. limit uses the RunLimit enum's integer values.
typedef struct sest_native_result {
  int ok;
  int limit;
  long long exit_code;
  unsigned long long steps;
  long long heap_hw;
  unsigned call_depth_hw;
  unsigned long long lc_fall;
  unsigned long long lc_taken;
  unsigned long long lc_calls;
  unsigned long long lc_rets;
  double cycles;
  const char *output;
  unsigned long long output_len;
  const char *error;
  unsigned long long error_len;
  const double *blocks;    /* flattened per-function block counts */
  const double *arcs;      /* flattened per-function arc counts */
  const double *entries;   /* per function id */
  const double *callsites; /* per call-site id */
  const unsigned long long *self_steps; /* per function id */
  void *impl;
} sest_native_result;

/// Exported by every artifact:
///   int  sest_native_run(const sest_native_params *, sest_native_result *);
///   void sest_native_free(sest_native_result *);
///   const unsigned long long sest_native_shape[5];
///     = { abi version, nfuncs, total blocks, total arcs, ncallsites }
typedef int (*sest_native_run_fn)(const sest_native_params *,
                                  sest_native_result *);
typedef void (*sest_native_free_fn)(sest_native_result *);

#ifdef __cplusplus
} // extern "C"
#endif

#endif // BACKEND_NATIVEABI_H

//===- callgraph/CallGraph.cpp - Call graphs -------------------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "callgraph/CallGraph.h"

#include "obs/Telemetry.h"
#include "support/Scc.h"

#include <algorithm>
#include <cassert>

using namespace sest;

void sest::collectCallExprs(const Expr *E,
                            std::vector<const CallExpr *> &Out) {
  if (!E)
    return;
  switch (E->kind()) {
  case ExprKind::Call: {
    const auto *C = exprCast<CallExpr>(E);
    Out.push_back(C);
    if (!C->directCallee())
      collectCallExprs(C->callee(), Out);
    for (const Expr *A : C->args())
      collectCallExprs(A, Out);
    return;
  }
  case ExprKind::Unary:
    collectCallExprs(exprCast<UnaryExpr>(E)->operand(), Out);
    return;
  case ExprKind::Binary: {
    const auto *B = exprCast<BinaryExpr>(E);
    collectCallExprs(B->lhs(), Out);
    collectCallExprs(B->rhs(), Out);
    return;
  }
  case ExprKind::Assign: {
    const auto *A = exprCast<AssignExpr>(E);
    collectCallExprs(A->lhs(), Out);
    collectCallExprs(A->rhs(), Out);
    return;
  }
  case ExprKind::Conditional: {
    const auto *C = exprCast<ConditionalExpr>(E);
    collectCallExprs(C->cond(), Out);
    collectCallExprs(C->trueExpr(), Out);
    collectCallExprs(C->falseExpr(), Out);
    return;
  }
  case ExprKind::Index: {
    const auto *I = exprCast<IndexExpr>(E);
    collectCallExprs(I->base(), Out);
    collectCallExprs(I->index(), Out);
    return;
  }
  case ExprKind::Member:
    collectCallExprs(exprCast<MemberExpr>(E)->base(), Out);
    return;
  case ExprKind::Cast:
    collectCallExprs(exprCast<CastExpr>(E)->operand(), Out);
    return;
  case ExprKind::InitList:
    for (const Expr *El : exprCast<InitListExpr>(E)->elements())
      collectCallExprs(El, Out);
    return;
  default:
    return;
  }
}

CallGraph CallGraph::build(const TranslationUnit &Unit,
                           const CfgModule &Cfgs) {
  obs::ScopedPhase Phase("callgraph.build");
  CallGraph CG;

  // Discover call sites block by block so each site knows the block whose
  // execution triggers it (needed to weight call-graph arcs with
  // intra-procedural block frequencies, §5.2).
  for (const auto &[F, G] : Cfgs.all()) {
    for (const auto &B : G->blocks()) {
      std::vector<const CallExpr *> Calls;
      for (const CfgAction &A : B->actions()) {
        if (A.ActionKind == CfgAction::Kind::Eval)
          collectCallExprs(A.E, Calls);
        else if (A.Var && A.Var->init())
          collectCallExprs(A.Var->init(), Calls);
      }
      if (B->condOrValue())
        collectCallExprs(B->condOrValue(), Calls);
      for (const CallExpr *C : Calls) {
        CallSiteInfo Info;
        Info.Site = C;
        Info.Caller = F;
        Info.Callee = C->directCallee();
        Info.Block = B.get();
        Info.CallSiteId = C->callSiteId();
        CG.Sites.push_back(Info);
      }
    }
  }
  std::sort(CG.Sites.begin(), CG.Sites.end(),
            [](const CallSiteInfo &A, const CallSiteInfo &B) {
              return A.CallSiteId < B.CallSiteId;
            });

  for (const CallSiteInfo &S : CG.Sites) {
    CG.ByCaller[S.Caller].push_back(&S);
    if (S.Callee)
      CG.ByCallee[S.Callee].push_back(&S);
    else
      CG.Indirect.push_back(&S);
  }

  for (const FunctionDecl *F : Unit.Functions) {
    if (F->addressTakenCount() > 0) {
      CG.AddressTaken.emplace_back(F, F->addressTakenCount());
      CG.TotalAddrWeight += F->addressTakenCount();
    }
  }

  CG.DirectAdj.assign(Unit.Functions.size(), {});
  for (const CallSiteInfo &S : CG.Sites) {
    if (!S.Callee)
      continue;
    size_t From = S.Caller->functionId();
    size_t To = S.Callee->functionId();
    auto &Row = CG.DirectAdj[From];
    if (std::find(Row.begin(), Row.end(), To) == Row.end())
      Row.push_back(To);
  }

  obs::counterAdd("callgraph.sites.direct",
                  static_cast<double>(CG.Sites.size() -
                                      CG.Indirect.size()));
  obs::counterAdd("callgraph.sites.indirect",
                  static_cast<double>(CG.Indirect.size()));
  obs::counterAdd("callgraph.functions.address_taken",
                  static_cast<double>(CG.AddressTaken.size()));
  if (obs::telemetryActive()) {
    // SCC shape of the direct-call graph (recursion structure).
    SccResult Scc = computeScc(Unit.Functions.size(), CG.DirectAdj);
    for (const auto &Component : Scc.Components) {
      obs::histRecord("callgraph.scc.size",
                      static_cast<double>(Component.size()));
      obs::gaugeMax("callgraph.scc.max_size",
                    static_cast<double>(Component.size()));
      if (Component.size() > 1)
        obs::counterAdd("callgraph.scc.nontrivial");
    }
  }
  return CG;
}

const std::vector<const CallSiteInfo *> &
CallGraph::sitesInFunction(const FunctionDecl *F) const {
  auto It = ByCaller.find(F);
  return It == ByCaller.end() ? EmptyList : It->second;
}

const std::vector<const CallSiteInfo *> &
CallGraph::sitesTargeting(const FunctionDecl *F) const {
  auto It = ByCallee.find(F);
  return It == ByCallee.end() ? EmptyList : It->second;
}

//===- callgraph/CallGraph.h - Call graphs ----------------------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static call graph: call sites discovered by walking every CFG's
/// expressions, direct arcs between functions, indirect call sites, and
/// the set of address-taken functions — the targets of the paper's
/// "pointer node" (§5.2.1), whose outgoing arcs are weighted by the
/// static number of address-of operations on each function.
///
//===----------------------------------------------------------------------===//

#ifndef CALLGRAPH_CALLGRAPH_H
#define CALLGRAPH_CALLGRAPH_H

#include "cfg/Cfg.h"
#include "lang/Ast.h"

#include <cstdint>
#include <map>
#include <vector>

namespace sest {

/// One static call site.
struct CallSiteInfo {
  const CallExpr *Site = nullptr;
  const FunctionDecl *Caller = nullptr;
  /// Null for indirect calls (through a function pointer).
  const FunctionDecl *Callee = nullptr;
  /// The basic block whose execution triggers this call.
  const BasicBlock *Block = nullptr;
  uint32_t CallSiteId = UINT32_MAX;

  bool isIndirect() const { return Callee == nullptr; }
};

/// The call graph of one translation unit.
class CallGraph {
public:
  /// Builds the graph from the CFGs (so every call site is attributed to
  /// its basic block).
  static CallGraph build(const TranslationUnit &Unit,
                         const CfgModule &Cfgs);

  /// All call sites, ordered by call-site id (gaps filled with empty
  /// entries never occur: ids are dense).
  const std::vector<CallSiteInfo> &sites() const { return Sites; }

  /// Call sites located in \p F.
  const std::vector<const CallSiteInfo *> &
  sitesInFunction(const FunctionDecl *F) const;

  /// Direct call sites targeting \p F.
  const std::vector<const CallSiteInfo *> &
  sitesTargeting(const FunctionDecl *F) const;

  /// All indirect call sites.
  const std::vector<const CallSiteInfo *> &indirectSites() const {
    return Indirect;
  }

  /// Functions whose address is taken, with their static address-of
  /// counts — the pointer node's arc weights.
  const std::vector<std::pair<const FunctionDecl *, uint32_t>> &
  addressTakenFunctions() const {
    return AddressTaken;
  }

  /// Sum of all address-of counts (the pointer node's total out-weight).
  uint32_t totalAddressTakenWeight() const { return TotalAddrWeight; }

  /// Direct-call adjacency for SCC analyses: Succ[f] lists function ids
  /// directly called from function id f. Indirect arcs are *not*
  /// included; the Markov model adds the pointer node itself.
  const std::vector<std::vector<size_t>> &directAdjacency() const {
    return DirectAdj;
  }

private:
  std::vector<CallSiteInfo> Sites;
  std::map<const FunctionDecl *, std::vector<const CallSiteInfo *>>
      ByCaller;
  std::map<const FunctionDecl *, std::vector<const CallSiteInfo *>>
      ByCallee;
  std::vector<const CallSiteInfo *> Indirect;
  std::vector<std::pair<const FunctionDecl *, uint32_t>> AddressTaken;
  uint32_t TotalAddrWeight = 0;
  std::vector<std::vector<size_t>> DirectAdj;
  std::vector<const CallSiteInfo *> EmptyList;
};

/// Collects every CallExpr reachable from \p E, outermost first.
void collectCallExprs(const Expr *E, std::vector<const CallExpr *> &Out);

/// Renders the call graph as a Graphviz digraph: defined functions,
/// merged direct arcs (annotated with site counts), and the pointer node
/// with its address-weighted dashed arcs (§5.2.1). When
/// \p FunctionFreqs is non-null, nodes show their estimated invocation
/// counts.
std::string
printCallGraphDot(const TranslationUnit &Unit, const CallGraph &CG,
                  const std::vector<double> *FunctionFreqs = nullptr);

} // namespace sest

#endif // CALLGRAPH_CALLGRAPH_H

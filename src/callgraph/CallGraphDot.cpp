//===- callgraph/CallGraphDot.cpp - Graphviz export -------------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "callgraph/CallGraph.h"

#include "support/StringUtils.h"

using namespace sest;

std::string
sest::printCallGraphDot(const TranslationUnit &Unit, const CallGraph &CG,
                        const std::vector<double> *FunctionFreqs) {
  std::string Out = "digraph callgraph {\n"
                    "  node [shape=ellipse, fontname=\"monospace\"];\n";
  for (const FunctionDecl *F : Unit.Functions) {
    if (!F->isDefined())
      continue;
    std::string Label = F->name();
    if (FunctionFreqs && F->functionId() < FunctionFreqs->size())
      Label += "\\n" +
               formatDouble((*FunctionFreqs)[F->functionId()], 2);
    Out += "  f" + std::to_string(F->functionId()) + " [label=\"" + Label +
           "\"];\n";
  }

  // The pointer node, when any call goes through a function pointer.
  if (!CG.indirectSites().empty()) {
    Out += "  ptr [label=\"(pointer node)\", shape=diamond];\n";
    for (const auto &[F, Weight] : CG.addressTakenFunctions())
      Out += "  ptr -> f" + std::to_string(F->functionId()) +
             " [style=dashed, label=\"" + std::to_string(Weight) + "\"];\n";
  }

  // Direct arcs, merged per pair with site counts.
  std::map<std::pair<uint32_t, uint32_t>, unsigned> Arcs;
  std::map<uint32_t, unsigned> IndirectFrom;
  for (const CallSiteInfo &S : CG.sites()) {
    if (S.Callee) {
      if (S.Callee->isDefined())
        ++Arcs[{S.Caller->functionId(), S.Callee->functionId()}];
    } else {
      ++IndirectFrom[S.Caller->functionId()];
    }
  }
  for (const auto &[Arc, Count] : Arcs) {
    Out += "  f" + std::to_string(Arc.first) + " -> f" +
           std::to_string(Arc.second);
    if (Count > 1)
      Out += " [label=\"x" + std::to_string(Count) + "\"]";
    Out += ";\n";
  }
  for (const auto &[From, Count] : IndirectFrom) {
    Out += "  f" + std::to_string(From) + " -> ptr";
    if (Count > 1)
      Out += " [label=\"x" + std::to_string(Count) + "\"]";
    Out += ";\n";
  }
  Out += "}\n";
  return Out;
}

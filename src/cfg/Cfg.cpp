//===- cfg/Cfg.cpp - Control-flow graphs -----------------------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"

#include "obs/Telemetry.h"

#include <algorithm>
#include <set>

using namespace sest;

//===----------------------------------------------------------------------===//
// BasicBlock
//===----------------------------------------------------------------------===//

void BasicBlock::replaceSuccessor(BasicBlock *From, BasicBlock *To) {
  for (BasicBlock *&S : Succs)
    if (S == From)
      S = To;
  for (SwitchCase &C : Cases)
    if (C.Target == From)
      C.Target = To;
}

//===----------------------------------------------------------------------===//
// Cfg
//===----------------------------------------------------------------------===//

BasicBlock *Cfg::createBlock(const std::string &LabelBase) {
  unsigned N = LabelCounters[LabelBase]++;
  std::string Label = N == 0 ? LabelBase : LabelBase + std::to_string(N);
  Blocks.push_back(std::make_unique<BasicBlock>(
      static_cast<uint32_t>(Blocks.size()), Label));
  return Blocks.back().get();
}

void Cfg::recomputePreds() {
  for (auto &B : Blocks)
    B->Preds.clear();
  for (auto &B : Blocks)
    for (BasicBlock *S : B->successors())
      S->Preds.push_back(B.get());
}

size_t Cfg::countArcSlots() const {
  size_t N = 0;
  for (const auto &B : Blocks)
    N += B->successors().size();
  return N;
}

void Cfg::simplify() {
  // 1. Thread empty Goto blocks out of existence. Chains are followed
  //    with a visited set: a cycle of empty forwarders is a genuine
  //    infinite loop (e.g. "for(;;){}"), and resolves to the block where
  //    the cycle closes, which then simply jumps to itself.
  auto IsTrivialForwarder = [](const BasicBlock *B) {
    return B->actions().empty() &&
           B->terminator() == TerminatorKind::Goto;
  };
  auto ResolveForward = [&IsTrivialForwarder](BasicBlock *B) {
    std::set<BasicBlock *> Visited;
    while (IsTrivialForwarder(B) && Visited.insert(B).second)
      B = B->successors()[0];
    return B;
  };
  Entry = ResolveForward(Entry);
  for (auto &B : Blocks)
    for (BasicBlock *S : B->successors())
      if (BasicBlock *T = ResolveForward(S); T != S)
        B->replaceSuccessor(S, T);

  // 2. Merge straight-line chains: A --goto--> B where B has exactly one
  //    predecessor. Requires up-to-date preds and reachability.
  auto ComputeReachable = [this]() {
    std::set<BasicBlock *> Reachable;
    std::vector<BasicBlock *> Work{Entry};
    while (!Work.empty()) {
      BasicBlock *B = Work.back();
      Work.pop_back();
      if (!Reachable.insert(B).second)
        continue;
      for (BasicBlock *S : B->successors())
        Work.push_back(S);
    }
    return Reachable;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::set<BasicBlock *> Reachable = ComputeReachable();
    recomputePreds();
    for (auto &APtr : Blocks) {
      BasicBlock *A = APtr.get();
      if (!Reachable.count(A) ||
          A->terminator() != TerminatorKind::Goto)
        continue;
      BasicBlock *B = A->successors()[0];
      if (B == A || B == Entry)
        continue;
      // Count only reachable predecessors.
      unsigned LivePreds = 0;
      for (BasicBlock *P : B->predecessors())
        if (Reachable.count(P))
          ++LivePreds;
      if (LivePreds != 1)
        continue;
      // Merge B into A.
      for (const CfgAction &Act : B->actions())
        A->Actions.push_back(Act);
      A->TermKind = B->TermKind;
      A->CondOrValue = B->CondOrValue;
      A->TermOrigin = B->TermOrigin;
      A->Cases = B->Cases;
      A->Succs = B->Succs;
      if (!A->Anchor && B->Anchor) {
        A->Anchor = B->Anchor;
        A->AnchorK = B->AnchorK;
      }
      B->Succs.clear();
      B->TermKind = TerminatorKind::Unreachable;
      Changed = true;
      break; // Restart: preds are stale.
    }
  }

  // 3. Drop unreachable blocks, renumber, and put the entry first.
  std::set<BasicBlock *> Reachable = ComputeReachable();
  std::vector<std::unique_ptr<BasicBlock>> Kept;
  for (auto &B : Blocks) {
    if (B.get() == Entry)
      Kept.insert(Kept.begin(), std::move(B));
    else if (Reachable.count(B.get()))
      Kept.push_back(std::move(B));
  }
  Blocks = std::move(Kept);
  for (size_t I = 0; I < Blocks.size(); ++I)
    Blocks[I]->setId(static_cast<uint32_t>(I));
  recomputePreds();
}

//===----------------------------------------------------------------------===//
// Builder
//===----------------------------------------------------------------------===//

namespace {

/// Builds a Cfg from a function body.
class CfgBuilder {
public:
  CfgBuilder(Cfg &G, DiagnosticEngine &Diags) : G(G), Diags(Diags) {}

  void run() {
    Cur = G.createBlock("entry");
    G.setEntry(Cur);
    buildStmt(G.function()->body());
    if (!Cur->isTerminated()) {
      // Falling off the end: implicit "return;" (non-void functions get a
      // default zero from the interpreter, as a diagnostic aid).
      Cur->setReturn(nullptr);
      Cur->markTerminated();
    }
  }

private:
  struct LoopContext {
    BasicBlock *BreakTarget;
    BasicBlock *ContinueTarget; ///< Null for switch contexts.
  };

  /// Anchors \p S on the current block if it has no anchor yet.
  void noteStmt(const Stmt *S, AnchorKind K = AnchorKind::Exec) {
    if (!Cur->anchor())
      Cur->setAnchor(S, K);
  }

  /// Ends the current block (if still open) with a jump to \p Target.
  void finishWithGoto(BasicBlock *Target) {
    if (Cur->isTerminated())
      return;
    Cur->setGoto(Target);
    Cur->markTerminated();
  }

  /// Starts a fresh block for code after a terminator (dead unless a
  /// label re-enters it).
  void startDeadBlock() { Cur = G.createBlock("dead"); }

  BasicBlock *labelBlock(const std::string &Name) {
    auto [It, Inserted] = LabelBlocks.emplace(Name, nullptr);
    if (Inserted)
      It->second = G.createBlock("label." + Name);
    return It->second;
  }

  BasicBlock *continueTarget() {
    for (auto It = Loops.rbegin(); It != Loops.rend(); ++It)
      if (It->ContinueTarget)
        return It->ContinueTarget;
    return nullptr;
  }

  void buildStmt(const Stmt *S);
  void buildIf(const IfStmt *S);
  void buildWhile(const WhileStmt *S);
  void buildDoWhile(const DoWhileStmt *S);
  void buildFor(const ForStmt *S);
  void buildSwitch(const SwitchStmt *S);

  Cfg &G;
  DiagnosticEngine &Diags;
  BasicBlock *Cur = nullptr;
  std::vector<LoopContext> Loops;
  std::map<std::string, BasicBlock *> LabelBlocks;
};

void CfgBuilder::buildStmt(const Stmt *S) {
  if (!S)
    return;
  switch (S->kind()) {
  case StmtKind::Expr: {
    const auto *E = stmtCast<ExprStmt>(S);
    noteStmt(S);
    Cur->actions().push_back(
        {CfgAction::Kind::Eval, S, E->expr(), nullptr});
    return;
  }
  case StmtKind::Decl: {
    const auto *D = stmtCast<DeclStmt>(S);
    noteStmt(S);
    Cur->actions().push_back(
        {CfgAction::Kind::DeclInit, S, nullptr, D->var()});
    return;
  }
  case StmtKind::Compound:
    for (const Stmt *Child : stmtCast<CompoundStmt>(S)->body())
      buildStmt(Child);
    return;
  case StmtKind::If:
    buildIf(stmtCast<IfStmt>(S));
    return;
  case StmtKind::While:
    buildWhile(stmtCast<WhileStmt>(S));
    return;
  case StmtKind::DoWhile:
    buildDoWhile(stmtCast<DoWhileStmt>(S));
    return;
  case StmtKind::For:
    buildFor(stmtCast<ForStmt>(S));
    return;
  case StmtKind::Switch:
    buildSwitch(stmtCast<SwitchStmt>(S));
    return;
  case StmtKind::CaseLabel:
  case StmtKind::DefaultLabel:
    // Reached only when a case label is nested below the immediate switch
    // body (e.g. inside a loop inside the switch); that is valid C
    // (Duff's device) but outside our subset.
    Diags.error(S->loc(),
                "case/default labels nested inside other statements are "
                "not supported");
    return;
  case StmtKind::Break: {
    noteStmt(S);
    if (Loops.empty())
      return; // sema already diagnosed
    finishWithGoto(Loops.back().BreakTarget);
    startDeadBlock();
    return;
  }
  case StmtKind::Continue: {
    noteStmt(S);
    BasicBlock *Target = continueTarget();
    if (!Target)
      return; // sema already diagnosed
    finishWithGoto(Target);
    startDeadBlock();
    return;
  }
  case StmtKind::Return: {
    const auto *R = stmtCast<ReturnStmt>(S);
    noteStmt(S);
    if (!Cur->isTerminated()) {
      Cur->setReturn(R->value());
      Cur->markTerminated();
    }
    startDeadBlock();
    return;
  }
  case StmtKind::Goto: {
    const auto *Go = stmtCast<GotoStmt>(S);
    noteStmt(S);
    finishWithGoto(labelBlock(Go->target()));
    startDeadBlock();
    return;
  }
  case StmtKind::Label: {
    const auto *L = stmtCast<LabelStmt>(S);
    BasicBlock *B = labelBlock(L->name());
    finishWithGoto(B);
    Cur = B;
    noteStmt(S);
    return;
  }
  case StmtKind::Null:
    return;
  }
}

void CfgBuilder::buildIf(const IfStmt *S) {
  noteStmt(S, AnchorKind::Test);
  BasicBlock *ThenB = G.createBlock("if.then");
  ThenB->setAnchor(S->thenStmt(), AnchorKind::Exec);
  BasicBlock *ElseB = nullptr;
  if (S->elseStmt()) {
    ElseB = G.createBlock("if.else");
    ElseB->setAnchor(S->elseStmt(), AnchorKind::Exec);
  }
  BasicBlock *JoinB = G.createBlock("if.end");
  JoinB->setAnchor(S, AnchorKind::Exec);

  if (!Cur->isTerminated()) {
    Cur->setCondBranch(S->cond(), ThenB, ElseB ? ElseB : JoinB);
    Cur->setTerminatorOrigin(S);
    Cur->markTerminated();
  }

  Cur = ThenB;
  buildStmt(S->thenStmt());
  finishWithGoto(JoinB);

  if (ElseB) {
    Cur = ElseB;
    buildStmt(S->elseStmt());
    finishWithGoto(JoinB);
  }
  Cur = JoinB;
}

void CfgBuilder::buildWhile(const WhileStmt *S) {
  BasicBlock *CondB = G.createBlock("while.cond");
  CondB->setAnchor(S, AnchorKind::Test);
  BasicBlock *BodyB = G.createBlock("while.body");
  BodyB->setAnchor(S->body(), AnchorKind::Exec);
  BasicBlock *ExitB = G.createBlock("while.end");
  ExitB->setAnchor(S, AnchorKind::Exec);

  finishWithGoto(CondB);
  CondB->setCondBranch(S->cond(), BodyB, ExitB);
  CondB->setTerminatorOrigin(S);
  CondB->markTerminated();

  Cur = BodyB;
  Loops.push_back({ExitB, CondB});
  buildStmt(S->body());
  Loops.pop_back();
  finishWithGoto(CondB);
  Cur = ExitB;
}

void CfgBuilder::buildDoWhile(const DoWhileStmt *S) {
  BasicBlock *BodyB = G.createBlock("do.body");
  BodyB->setAnchor(S->body(), AnchorKind::Exec);
  BasicBlock *CondB = G.createBlock("do.cond");
  CondB->setAnchor(S, AnchorKind::Test);
  BasicBlock *ExitB = G.createBlock("do.end");
  ExitB->setAnchor(S, AnchorKind::Exec);

  finishWithGoto(BodyB);
  Cur = BodyB;
  Loops.push_back({ExitB, CondB});
  buildStmt(S->body());
  Loops.pop_back();
  finishWithGoto(CondB);

  CondB->setCondBranch(S->cond(), BodyB, ExitB);
  CondB->setTerminatorOrigin(S);
  CondB->markTerminated();
  Cur = ExitB;
}

void CfgBuilder::buildFor(const ForStmt *S) {
  if (S->init())
    buildStmt(S->init());

  BasicBlock *CondB = G.createBlock("for.cond");
  CondB->setAnchor(S, AnchorKind::Test);
  BasicBlock *BodyB = G.createBlock("for.body");
  BodyB->setAnchor(S->body(), AnchorKind::Exec);
  BasicBlock *ExitB = G.createBlock("for.end");
  ExitB->setAnchor(S, AnchorKind::Exec);
  BasicBlock *StepB = nullptr;
  if (S->step()) {
    StepB = G.createBlock("for.step");
    StepB->setAnchor(S, AnchorKind::Step);
    StepB->actions().push_back(
        {CfgAction::Kind::Eval, S, S->step(), nullptr});
    StepB->setGoto(CondB);
    StepB->markTerminated();
  }

  finishWithGoto(CondB);
  if (S->cond())
    CondB->setCondBranch(S->cond(), BodyB, ExitB);
  else
    CondB->setGoto(BodyB);
  CondB->setTerminatorOrigin(S);
  CondB->markTerminated();

  Cur = BodyB;
  Loops.push_back({ExitB, StepB ? StepB : CondB});
  buildStmt(S->body());
  Loops.pop_back();
  finishWithGoto(StepB ? StepB : CondB);
  Cur = ExitB;
}

void CfgBuilder::buildSwitch(const SwitchStmt *S) {
  noteStmt(S, AnchorKind::Test);
  BasicBlock *SwitchB = Cur;
  BasicBlock *ExitB = G.createBlock("switch.end");
  ExitB->setAnchor(S, AnchorKind::Exec);

  std::vector<SwitchCase> Cases;
  BasicBlock *DefaultB = nullptr;

  // Statements before the first label are dead code in C.
  Cur = G.createBlock("switch.deadhead");
  Loops.push_back({ExitB, nullptr});

  const auto *Body = stmtDynCast<CompoundStmt>(S->body());
  std::vector<const Stmt *> Children;
  if (Body)
    Children.assign(Body->body().begin(), Body->body().end());
  else if (S->body())
    Children.push_back(S->body());

  for (const Stmt *Child : Children) {
    if (const auto *Case = stmtDynCast<CaseLabelStmt>(Child)) {
      BasicBlock *B = G.createBlock("case");
      B->setAnchor(Case, AnchorKind::Exec);
      finishWithGoto(B); // fallthrough from the previous arm
      Cur = B;
      Cases.push_back({Case->value(), B, 1});
      continue;
    }
    if (stmtDynCast<DefaultLabelStmt>(Child)) {
      BasicBlock *B = G.createBlock("default");
      B->setAnchor(Child, AnchorKind::Exec);
      finishWithGoto(B);
      Cur = B;
      DefaultB = B;
      continue;
    }
    buildStmt(Child);
  }
  finishWithGoto(ExitB);
  Loops.pop_back();

  if (!SwitchB->isTerminated()) {
    SwitchB->setSwitch(S->cond(), std::move(Cases),
                       DefaultB ? DefaultB : ExitB);
    SwitchB->setTerminatorOrigin(S);
    SwitchB->markTerminated();
  }
  Cur = ExitB;
}

} // namespace

std::unique_ptr<Cfg> sest::buildCfg(const FunctionDecl *F,
                                    DiagnosticEngine &Diags) {
  assert(F->isDefined() && "cannot build CFG for undefined function");
  auto G = std::make_unique<Cfg>(F);
  CfgBuilder B(*G, Diags);
  B.run();
  G->simplify();
  return G;
}

CfgModule CfgModule::build(const TranslationUnit &Unit,
                           DiagnosticEngine &Diags) {
  obs::ScopedPhase Phase("cfg.build");
  CfgModule M;
  for (const FunctionDecl *F : Unit.Functions) {
    if (!F->isDefined())
      continue;
    auto G = buildCfg(F, Diags);
    obs::counterAdd("cfg.functions.built");
    obs::counterAdd("cfg.blocks.built", static_cast<double>(G->size()));
    obs::counterAdd("cfg.arcs.built",
                    static_cast<double>(G->countArcSlots()));
    M.Ordered.emplace_back(F, G.get());
    M.ByFunction.emplace(F, std::move(G));
  }
  return M;
}

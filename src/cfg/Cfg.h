//===- cfg/Cfg.h - Control-flow graphs ---------------------------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executable control-flow graphs for mini-C functions. Unlike a purely
/// analytical CFG, these blocks carry the statement-level actions needed
/// to *run* the function: the profiling interpreter executes the CFG
/// directly, which makes basic-block, arc, and branch-outcome counts exact
/// by construction (the paper instrumented gcc's CFG for the same reason).
///
/// A block holds a sequence of actions (expression evaluations and local
/// declarations) and ends in exactly one terminator: an unconditional
/// jump, a two-way conditional branch, a switch, or a return. Arcs are
/// identified by (block, successor-slot) so parallel edges to the same
/// target (e.g. two switch cases) stay distinct.
///
/// Each block records an *anchor* — the AST statement whose execution it
/// represents, and whether it represents the statement body or its test —
/// which is how AST-level frequency estimates are "mapped to blocks in the
/// CFG" (paper §4.2, Figure 3).
///
//===----------------------------------------------------------------------===//

#ifndef CFG_CFG_H
#define CFG_CFG_H

#include "lang/Ast.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace sest {

class BasicBlock;

/// One executable step inside a basic block.
struct CfgAction {
  enum class Kind {
    Eval,     ///< Evaluate Expr for its side effects.
    DeclInit, ///< Bring Var into scope and run its initializer.
    /// Zero CellCount frame cells starting at frame offset FrameOffset.
    /// Synthesized by the inliner (src/opt/Inline.cpp) at the entry of an
    /// inlined region so the callee's scratch locals start zeroed on
    /// every traversal, exactly as a fresh frame would. Costs no
    /// evaluation steps in either engine.
    ZeroFrameRange,
  };
  Kind ActionKind;
  /// The source statement this action came from (never null).
  const Stmt *Origin;
  const Expr *E = nullptr;       ///< For Eval.
  const VarDecl *Var = nullptr;  ///< For DeclInit.
  int64_t FrameOffset = 0;       ///< For ZeroFrameRange.
  int64_t CellCount = 0;         ///< For ZeroFrameRange.
};

/// How a basic block ends.
enum class TerminatorKind {
  Goto,       ///< Unconditional jump to succ(0).
  CondBranch, ///< Cond true → succ(0), false → succ(1).
  Switch,     ///< Dispatch on Cond over Cases, else DefaultTarget.
  Return,     ///< Function return (optional value).
  Unreachable,///< Fell off the end of a non-void function, or dead code.
};

/// One switch arm.
struct SwitchCase {
  int64_t Value;
  BasicBlock *Target;
  /// Number of case labels merged into this arm (always 1 after
  /// construction; kept for symmetry with the paper's case-label
  /// weighting, which counts labels per *target block*).
  unsigned NumLabels = 1;
};

/// What aspect of its anchor statement a block represents: the statement
/// body (Exec), the evaluation of its controlling test (Test), or a loop's
/// step expression (Step). Loops are the only statements where the three
/// frequencies differ under the paper's loop model.
enum class AnchorKind { Exec, Test, Step };

/// A basic block.
class BasicBlock {
public:
  BasicBlock(uint32_t Id, std::string Label)
      : Id(Id), Label(std::move(Label)) {}

  uint32_t id() const { return Id; }
  void setId(uint32_t NewId) { Id = NewId; }
  const std::string &label() const { return Label; }

  std::vector<CfgAction> &actions() { return Actions; }
  const std::vector<CfgAction> &actions() const { return Actions; }

  TerminatorKind terminator() const { return TermKind; }
  /// The branch/switch condition or return value (may be null for plain
  /// "return;").
  const Expr *condOrValue() const { return CondOrValue; }

  /// The statement whose condition this block's terminator evaluates (the
  /// IfStmt / WhileStmt / DoWhileStmt / ForStmt / SwitchStmt), or null for
  /// unconditional terminators. Survives block merging.
  const Stmt *terminatorOrigin() const { return TermOrigin; }
  void setTerminatorOrigin(const Stmt *S) { TermOrigin = S; }

  /// The statement this block's frequency corresponds to (may be null for
  /// synthetic blocks such as the entry or a join).
  const Stmt *anchor() const { return Anchor; }
  AnchorKind anchorKind() const { return AnchorK; }
  void setAnchor(const Stmt *S, AnchorKind K) {
    Anchor = S;
    AnchorK = K;
  }

  // Terminator setters (used by the builder).
  void setGoto(BasicBlock *Target) {
    TermKind = TerminatorKind::Goto;
    Succs = {Target};
  }
  void setCondBranch(const Expr *Cond, BasicBlock *TrueB,
                     BasicBlock *FalseB) {
    TermKind = TerminatorKind::CondBranch;
    CondOrValue = Cond;
    Succs = {TrueB, FalseB};
  }
  void setSwitch(const Expr *Cond, std::vector<SwitchCase> TheCases,
                 BasicBlock *DefaultTarget) {
    TermKind = TerminatorKind::Switch;
    CondOrValue = Cond;
    Cases = std::move(TheCases);
    Succs.clear();
    for (const SwitchCase &C : Cases)
      Succs.push_back(C.Target);
    Succs.push_back(DefaultTarget);
  }
  void setReturn(const Expr *Value) {
    TermKind = TerminatorKind::Return;
    CondOrValue = Value;
    Succs.clear();
  }
  void setUnreachable() {
    TermKind = TerminatorKind::Unreachable;
    Succs.clear();
  }

  /// Successor blocks in slot order: CondBranch = [true, false]; Switch =
  /// [case0..caseN-1, default]; Goto = [target].
  const std::vector<BasicBlock *> &successors() const { return Succs; }
  /// Replaces every successor equal to \p From with \p To.
  void replaceSuccessor(BasicBlock *From, BasicBlock *To);

  /// Switch arms; valid only for Switch terminators.
  const std::vector<SwitchCase> &switchCases() const { return Cases; }
  /// The default target of a switch (the last successor slot).
  BasicBlock *switchDefault() const {
    assert(TermKind == TerminatorKind::Switch && !Succs.empty());
    return Succs.back();
  }

  /// Predecessors (recomputed by Cfg::recomputePreds).
  const std::vector<BasicBlock *> &predecessors() const { return Preds; }

  bool isTerminated() const { return Terminated; }
  void markTerminated() { Terminated = true; }

private:
  friend class Cfg;
  uint32_t Id;
  std::string Label;
  std::vector<CfgAction> Actions;
  TerminatorKind TermKind = TerminatorKind::Unreachable;
  const Expr *CondOrValue = nullptr;
  const Stmt *TermOrigin = nullptr;
  std::vector<SwitchCase> Cases;
  std::vector<BasicBlock *> Succs;
  std::vector<BasicBlock *> Preds;
  const Stmt *Anchor = nullptr;
  AnchorKind AnchorK = AnchorKind::Exec;
  bool Terminated = false;
};

/// The control-flow graph of one function.
class Cfg {
public:
  explicit Cfg(const FunctionDecl *F) : Function(F) {}
  Cfg(const Cfg &) = delete;
  Cfg &operator=(const Cfg &) = delete;

  const FunctionDecl *function() const { return Function; }
  BasicBlock *entry() const { return Entry; }
  void setEntry(BasicBlock *B) { Entry = B; }

  /// All blocks, entry first; ids are dense indices into this vector.
  const std::vector<std::unique_ptr<BasicBlock>> &blocks() const {
    return Blocks;
  }
  size_t size() const { return Blocks.size(); }
  BasicBlock *block(uint32_t Id) const { return Blocks[Id].get(); }

  /// Creates a new block with a function-unique label derived from
  /// \p LabelBase.
  BasicBlock *createBlock(const std::string &LabelBase);

  /// Recomputes predecessor lists from successor lists.
  void recomputePreds();

  /// Removes unreachable blocks and merges straight-line chains; renumbers
  /// ids and recomputes predecessors. Entry stays first.
  void simplify();

  /// Total number of arc slots (sum of successor counts), for profile
  /// sizing.
  size_t countArcSlots() const;

private:
  const FunctionDecl *Function;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;
  BasicBlock *Entry = nullptr;
  std::map<std::string, unsigned> LabelCounters;
};

/// Builds the CFG of \p F (which must be defined). Problems — e.g. a goto
/// to a label that sema already rejected — are reported to \p Diags.
std::unique_ptr<Cfg> buildCfg(const FunctionDecl *F,
                              DiagnosticEngine &Diags);

/// CFGs for every defined function of a translation unit, indexed by
/// function id.
class CfgModule {
public:
  /// Builds CFGs for all defined functions in \p Unit.
  static CfgModule build(const TranslationUnit &Unit,
                         DiagnosticEngine &Diags);

  /// The CFG for \p F, or null for builtins/undefined functions.
  const Cfg *cfg(const FunctionDecl *F) const {
    auto It = ByFunction.find(F);
    return It == ByFunction.end() ? nullptr : It->second.get();
  }
  Cfg *cfg(const FunctionDecl *F) {
    auto It = ByFunction.find(F);
    return It == ByFunction.end() ? nullptr : It->second.get();
  }

  /// Iteration over (function, cfg) pairs in function-id order.
  const std::vector<std::pair<const FunctionDecl *, Cfg *>> &all() const {
    return Ordered;
  }

private:
  std::map<const FunctionDecl *, std::unique_ptr<Cfg>> ByFunction;
  std::vector<std::pair<const FunctionDecl *, Cfg *>> Ordered;
};

/// Renders \p G as readable text (one section per block with actions,
/// terminator, successors and anchor).
std::string printCfg(const Cfg &G);

/// Renders \p G as a Graphviz digraph (the paper's Figure 6). When
/// \p BlockWeights is non-null, each block's frequency is shown.
std::string printCfgDot(const Cfg &G,
                        const std::vector<double> *BlockWeights = nullptr);

} // namespace sest

#endif // CFG_CFG_H

//===- cfg/CfgDot.cpp - Graphviz export ------------------------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"

#include "lang/AstPrinter.h"
#include "support/StringUtils.h"

using namespace sest;

namespace {

/// Escapes a string for a DOT label.
std::string dotEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out += C;
  }
  return Out;
}

} // namespace

std::string sest::printCfgDot(const Cfg &G,
                              const std::vector<double> *BlockWeights) {
  std::string Out = "digraph \"" + dotEscape(G.function()->name()) +
                    "\" {\n  node [shape=box, fontname=\"monospace\"];\n";
  for (const auto &B : G.blocks()) {
    std::string Label = B->label();
    if (BlockWeights && B->id() < BlockWeights->size())
      Label += "\\nfreq " + formatDouble((*BlockWeights)[B->id()], 2);
    for (const CfgAction &A : B->actions()) {
      Label += "\\n";
      if (A.ActionKind == CfgAction::Kind::Eval)
        Label += dotEscape(printExpr(A.E));
      else if (A.ActionKind == CfgAction::Kind::DeclInit)
        Label += dotEscape(A.Var->name() + " = ...");
      else
        Label += "zero-frame " + std::to_string(A.CellCount);
    }
    if (B->terminator() == TerminatorKind::CondBranch)
      Label += "\\nbranch " + dotEscape(printExpr(B->condOrValue()));
    else if (B->terminator() == TerminatorKind::Switch)
      Label += "\\nswitch " + dotEscape(printExpr(B->condOrValue()));
    else if (B->terminator() == TerminatorKind::Return)
      Label += "\\nreturn";

    Out += "  n" + std::to_string(B->id()) + " [label=\"" + Label + "\"";
    if (B.get() == G.entry())
      Out += ", penwidth=2";
    Out += "];\n";
  }
  for (const auto &B : G.blocks()) {
    const auto &Succs = B->successors();
    for (size_t S = 0; S < Succs.size(); ++S) {
      Out += "  n" + std::to_string(B->id()) + " -> n" +
             std::to_string(Succs[S]->id());
      if (B->terminator() == TerminatorKind::CondBranch)
        Out += S == 0 ? " [label=\"T\"]" : " [label=\"F\"]";
      else if (B->terminator() == TerminatorKind::Switch) {
        if (S + 1 == Succs.size())
          Out += " [label=\"default\"]";
        else
          Out += " [label=\"" +
                 std::to_string(B->switchCases()[S].Value) + "\"]";
      }
      Out += ";\n";
    }
  }
  Out += "}\n";
  return Out;
}

//===- cfg/CfgPrinter.cpp - CFG text rendering -----------------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"

#include "lang/AstPrinter.h"

using namespace sest;

std::string sest::printCfg(const Cfg &G) {
  std::string Out = "cfg " + G.function()->name() + " (" +
                    std::to_string(G.size()) + " blocks)\n";
  for (const auto &B : G.blocks()) {
    Out += "  " + std::to_string(B->id()) + ": " + B->label();
    if (B.get() == G.entry())
      Out += " [entry]";
    Out += "\n";
    for (const CfgAction &A : B->actions()) {
      if (A.ActionKind == CfgAction::Kind::Eval)
        Out += "      eval " + printExpr(A.E) + "\n";
      else if (A.ActionKind == CfgAction::Kind::DeclInit)
        Out += "      decl " + A.Var->name() +
               (A.Var->init() ? " = " + printExpr(A.Var->init()) : "") +
               "\n";
      else
        Out += "      zero-frame [" + std::to_string(A.FrameOffset) +
               ", +" + std::to_string(A.CellCount) + ")\n";
    }
    switch (B->terminator()) {
    case TerminatorKind::Goto:
      Out += "      goto -> " + B->successors()[0]->label() + "\n";
      break;
    case TerminatorKind::CondBranch:
      Out += "      branch " + printExpr(B->condOrValue()) + " ? " +
             B->successors()[0]->label() + " : " +
             B->successors()[1]->label() + "\n";
      break;
    case TerminatorKind::Switch: {
      Out += "      switch " + printExpr(B->condOrValue()) + "\n";
      for (const SwitchCase &C : B->switchCases())
        Out += "        case " + std::to_string(C.Value) + " -> " +
               C.Target->label() + "\n";
      Out += "        default -> " + B->switchDefault()->label() + "\n";
      break;
    }
    case TerminatorKind::Return:
      Out += "      return";
      if (B->condOrValue())
        Out += " " + printExpr(B->condOrValue());
      Out += "\n";
      break;
    case TerminatorKind::Unreachable:
      Out += "      unreachable\n";
      break;
    }
  }
  return Out;
}

//===- cfg/Dominators.cpp - Dominator tree and natural loops ---------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "cfg/Dominators.h"

#include <algorithm>

using namespace sest;

DominatorTree::DominatorTree(const Cfg &TheCfg) : G(TheCfg) {
  const size_t N = G.size();
  Idom.assign(N, UINT32_MAX);
  RpoIndex.assign(N, UINT32_MAX);

  // Postorder DFS from the entry (iterative).
  std::vector<uint32_t> Post;
  std::vector<uint8_t> State(N, 0); // 0 unseen, 1 on stack, 2 done
  struct Frame {
    uint32_t Block;
    size_t NextSucc;
  };
  std::vector<Frame> Stack{{G.entry()->id(), 0}};
  State[G.entry()->id()] = 1;
  while (!Stack.empty()) {
    Frame &F = Stack.back();
    const BasicBlock *B = G.block(F.Block);
    if (F.NextSucc < B->successors().size()) {
      uint32_t S = B->successors()[F.NextSucc++]->id();
      if (State[S] == 0) {
        State[S] = 1;
        Stack.push_back({S, 0});
      }
      continue;
    }
    State[F.Block] = 2;
    Post.push_back(F.Block);
    Stack.pop_back();
  }

  Rpo.assign(Post.rbegin(), Post.rend());
  for (uint32_t I = 0; I < Rpo.size(); ++I)
    RpoIndex[Rpo[I]] = I;

  // Cooper-Harvey-Kennedy: iterate to fixpoint over RPO.
  uint32_t Entry = G.entry()->id();
  Idom[Entry] = Entry;

  auto Intersect = [this](uint32_t A, uint32_t B) {
    while (A != B) {
      while (RpoIndex[A] > RpoIndex[B])
        A = Idom[A];
      while (RpoIndex[B] > RpoIndex[A])
        B = Idom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (uint32_t B : Rpo) {
      if (B == Entry)
        continue;
      uint32_t NewIdom = UINT32_MAX;
      for (const BasicBlock *P : G.block(B)->predecessors()) {
        uint32_t Pid = P->id();
        if (Idom[Pid] == UINT32_MAX)
          continue; // unprocessed or unreachable
        NewIdom = NewIdom == UINT32_MAX ? Pid : Intersect(NewIdom, Pid);
      }
      if (NewIdom != UINT32_MAX && Idom[B] != NewIdom) {
        Idom[B] = NewIdom;
        Changed = true;
      }
    }
  }
}

bool DominatorTree::dominates(uint32_t A, uint32_t B) const {
  if (Idom[B] == UINT32_MAX)
    return false; // unreachable
  uint32_t Entry = G.entry()->id();
  uint32_t Cur = B;
  for (;;) {
    if (Cur == A)
      return true;
    if (Cur == Entry)
      return false;
    Cur = Idom[Cur];
  }
}

bool sest::isBackEdge(const DominatorTree &DT, uint32_t From, uint32_t To) {
  return DT.dominates(To, From);
}

std::vector<NaturalLoop> sest::findNaturalLoops(const Cfg &G,
                                                const DominatorTree &DT) {
  std::vector<NaturalLoop> Loops;
  for (const auto &B : G.blocks()) {
    for (const BasicBlock *S : B->successors()) {
      if (!isBackEdge(DT, B->id(), S->id()))
        continue;
      NaturalLoop L;
      L.Header = S->id();
      L.Latch = B->id();

      // The natural loop: header + all blocks that reach the latch
      // without passing through the header (backwards DFS).
      std::vector<uint32_t> Work{L.Latch};
      std::vector<uint8_t> In(G.size(), 0);
      In[L.Header] = 1;
      while (!Work.empty()) {
        uint32_t X = Work.back();
        Work.pop_back();
        if (In[X])
          continue;
        In[X] = 1;
        for (const BasicBlock *P : G.block(X)->predecessors())
          Work.push_back(P->id());
      }
      for (uint32_t I = 0; I < G.size(); ++I)
        if (In[I])
          L.Blocks.push_back(I);
      Loops.push_back(std::move(L));
    }
  }
  return Loops;
}

//===- cfg/Dominators.h - Dominator tree and natural loops ------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator analysis (Cooper-Harvey-Kennedy iterative algorithm) and
/// natural-loop detection over a Cfg. The branch predictor uses back
/// edges to apply the loop heuristic to loops the AST cannot see —
/// loops formed by goto, the case the paper flags at the intra level
/// ("In principle, a loop created by a goto could cause a similar
/// problem...", §5.2.2) and the heart of Ball-Larus's loop-branch
/// heuristic.
///
//===----------------------------------------------------------------------===//

#ifndef CFG_DOMINATORS_H
#define CFG_DOMINATORS_H

#include "cfg/Cfg.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace sest {

/// Immediate-dominator tree for one Cfg.
class DominatorTree {
public:
  /// Computes dominators for \p G (entry dominates everything reachable).
  explicit DominatorTree(const Cfg &G);

  /// The immediate dominator of block id \p B; the entry's idom is
  /// itself. UINT32_MAX for unreachable blocks.
  uint32_t idom(uint32_t B) const { return Idom[B]; }

  /// True when block \p A dominates block \p B (reflexive).
  bool dominates(uint32_t A, uint32_t B) const;

  /// Reverse postorder of the reachable blocks.
  const std::vector<uint32_t> &reversePostOrder() const { return Rpo; }

private:
  const Cfg &G;
  std::vector<uint32_t> Idom;     ///< by block id
  std::vector<uint32_t> RpoIndex; ///< block id -> RPO position
  std::vector<uint32_t> Rpo;
};

/// One natural loop: the back edge that defines it and its block set.
struct NaturalLoop {
  uint32_t Header = 0;
  uint32_t Latch = 0; ///< Source of the back edge.
  /// Ids of all blocks in the loop (header included), sorted.
  std::vector<uint32_t> Blocks;

  bool contains(uint32_t B) const {
    return std::binary_search(Blocks.begin(), Blocks.end(), B);
  }
};

/// Finds all natural loops of \p G: one per back edge (B -> H with H
/// dominating B); loops sharing a header are kept separate.
std::vector<NaturalLoop> findNaturalLoops(const Cfg &G,
                                          const DominatorTree &DT);

/// True when the edge (From, To) is a back edge under \p DT.
bool isBackEdge(const DominatorTree &DT, uint32_t From, uint32_t To);

} // namespace sest

#endif // CFG_DOMINATORS_H

//===- estimators/AstEstimator.cpp - AST frequency estimation --------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "estimators/AstEstimator.h"

#include "estimators/LoopBounds.h"

using namespace sest;

const char *sest::intraEstimatorName(IntraEstimatorKind K) {
  switch (K) {
  case IntraEstimatorKind::Loop:
    return "loop";
  case IntraEstimatorKind::Smart:
    return "smart";
  case IntraEstimatorKind::Markov:
    return "markov";
  }
  return "?";
}

double AstFrequencies::lookup(const Stmt *S, AnchorKind K) const {
  if (!S)
    return 0.0;
  const std::map<uint32_t, double> *M = nullptr;
  switch (K) {
  case AnchorKind::Exec:
    M = &Exec;
    break;
  case AnchorKind::Test:
    M = &Test;
    break;
  case AnchorKind::Step:
    M = &Step;
    break;
  }
  auto It = M->find(S->nodeId());
  return It == M->end() ? 0.0 : It->second;
}

namespace {

/// The single top-down tree walk of Figure 3.
class AstWalker {
public:
  AstWalker(const AstEstimatorConfig &Config, const FunctionDecl *F)
      : Config(Config), Predictor(Config.Branch) {
    if (Config.Kind == IntraEstimatorKind::Smart &&
        Config.Branch.UseStoreHeuristic)
      ReadVars = collectReadVariables(F);
  }

  AstFrequencies run(const FunctionDecl *F) {
    walk(F->body(), 1.0);
    return std::move(Freqs);
  }

private:
  double probTrue(const IfStmt *S) const {
    if (Config.Kind == IntraEstimatorKind::Loop)
      return 0.5;
    return Predictor.predictIf(S, ReadVars).ProbTrue;
  }

  void walk(const Stmt *S, double F) {
    if (!S)
      return;
    Freqs.Exec[S->nodeId()] = F;
    const double L = Config.LoopIterations;

    switch (S->kind()) {
    case StmtKind::Compound:
      for (const Stmt *Child : stmtCast<CompoundStmt>(S)->body())
        walk(Child, F);
      return;
    case StmtKind::If: {
      const auto *I = stmtCast<IfStmt>(S);
      Freqs.Test[S->nodeId()] = F;
      double P = probTrue(I);
      walk(I->thenStmt(), F * P);
      walk(I->elseStmt(), F * (1.0 - P));
      return;
    }
    case StmtKind::While: {
      const auto *W = stmtCast<WhileStmt>(S);
      // "the while loop is assumed to execute five times, so items in
      // its body execute four times" (Figure 3).
      Freqs.Test[S->nodeId()] = F * L;
      walk(W->body(), F * (L - 1.0));
      return;
    }
    case StmtKind::DoWhile: {
      const auto *D = stmtCast<DoWhileStmt>(S);
      Freqs.Test[S->nodeId()] = F * (L - 1.0);
      walk(D->body(), F * (L - 1.0));
      return;
    }
    case StmtKind::For: {
      const auto *Fs = stmtCast<ForStmt>(S);
      double Body = L - 1.0;
      if (Config.Branch.UseConstantLoopBounds)
        if (auto Trips =
                constantTripCount(Fs, Config.Branch.MaxConstantTrips))
          Body = *Trips;
      Freqs.Test[S->nodeId()] = F * (Body + 1.0);
      Freqs.Step[S->nodeId()] = F * Body;
      walk(Fs->init(), F);
      walk(Fs->body(), F * Body);
      return;
    }
    case StmtKind::Switch:
      walkSwitch(stmtCast<SwitchStmt>(S), F);
      return;
    default:
      // Leaves (expr/decl/break/continue/return/goto/label/null). The
      // AST model deliberately ignores the control effects of
      // break/continue/goto/return (§4.2).
      return;
    }
  }

  void walkSwitch(const SwitchStmt *S, double F) {
    Freqs.Test[S->nodeId()] = F;

    // Partition the switch body into arms headed by case/default labels.
    std::vector<const Stmt *> Children;
    if (const auto *Body = stmtDynCast<CompoundStmt>(S->body()))
      Children.assign(Body->body().begin(), Body->body().end());
    else if (S->body())
      Children.push_back(S->body());

    unsigned NumLabels = 0;
    bool HasDefault = false;
    for (const Stmt *C : Children) {
      if (C->kind() == StmtKind::CaseLabel)
        ++NumLabels;
      else if (C->kind() == StmtKind::DefaultLabel) {
        ++NumLabels;
        HasDefault = true;
      }
    }
    // Without an explicit default, the "fall past the switch" outcome is
    // one more (invisible) arm.
    double TotalWeight = NumLabels + (HasDefault ? 0 : 1);
    if (TotalWeight == 0)
      return;

    // Statements before the first label are dead; arm frequency applies
    // from each label onward. Consecutive labels each carry weight; the
    // statements after them run at the frequency of their own label only
    // (the AST model ignores fallthrough, like break).
    double ArmFreq = 0.0;
    for (const Stmt *C : Children) {
      if (C->kind() == StmtKind::CaseLabel ||
          C->kind() == StmtKind::DefaultLabel) {
        ArmFreq = F / TotalWeight;
        Freqs.Exec[C->nodeId()] = ArmFreq;
        continue;
      }
      walk(C, ArmFreq);
    }
  }

  const AstEstimatorConfig &Config;
  BranchPredictor Predictor;
  std::set<const VarDecl *> ReadVars;
  AstFrequencies Freqs;
};

} // namespace

AstFrequencies sest::estimateAstFrequencies(const FunctionDecl *F,
                                            const AstEstimatorConfig &C) {
  assert(F->isDefined() && "AST estimation needs a body");
  AstWalker W(C, F);
  return W.run(F);
}

std::vector<double> sest::blockEstimatesFromAst(const Cfg &G,
                                                const AstFrequencies &Freqs) {
  std::vector<double> Out(G.size(), 0.0);
  for (const auto &B : G.blocks()) {
    double V = Freqs.lookup(B->anchor(), B->anchorKind());
    // Synthetic blocks without a frequency (e.g. an empty entry that
    // survived simplification) execute once per call.
    if (B->anchor() == nullptr && B.get() == G.entry())
      V = 1.0;
    Out[B->id()] = V;
  }
  return Out;
}

std::vector<double>
sest::estimateBlockFrequencies(const Cfg &G, const AstEstimatorConfig &C) {
  AstFrequencies F = estimateAstFrequencies(G.function(), C);
  return blockEstimatesFromAst(G, F);
}

//===- estimators/AstEstimator.h - AST frequency estimation ----*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's AST-based intra-procedural frequency estimators (§4.2):
///
///  - *loop*: locate loops, assume each iterates five times, treat every
///    branch direction as equally likely (50/50);
///  - *smart*: loop plus the branch-prediction heuristics, converting each
///    prediction into a probability (0.8 for the predicted arm).
///
/// Frequencies are normalized to a single entry of the function and are
/// computed by one top-down walk of the AST (Figure 3). Following the
/// paper, the AST model deliberately ignores break / continue / goto /
/// return: those explicit transfers are exactly what the Markov CFG model
/// (§5.1) adds.
///
/// Per the paper's convention (Figure 3: "the while loop is assumed to
/// execute five times, so items in its body execute four times"), a loop
/// whose statement executes F times has test frequency F·L and body
/// frequency F·(L-1).
///
//===----------------------------------------------------------------------===//

#ifndef ESTIMATORS_ASTESTIMATOR_H
#define ESTIMATORS_ASTESTIMATOR_H

#include "cfg/Cfg.h"
#include "estimators/BranchPrediction.h"
#include "lang/Ast.h"

#include <cstdint>
#include <map>
#include <vector>

namespace sest {

/// Which intra-procedural estimator to run.
enum class IntraEstimatorKind {
  Loop,   ///< loops ×5, branches 50/50
  Smart,  ///< loop + branch heuristics at 0.8/0.2
  Markov, ///< CFG linear system (see MarkovIntra.h)
};

/// Name for table/report output ("loop", "smart", "markov").
const char *intraEstimatorName(IntraEstimatorKind K);

/// Per-statement frequencies from the AST walk (keyed by statement node
/// id).
struct AstFrequencies {
  /// Times the statement executes.
  std::map<uint32_t, double> Exec;
  /// Times a loop/if/switch test evaluates.
  std::map<uint32_t, double> Test;
  /// Times a for-loop's step expression runs.
  std::map<uint32_t, double> Step;

  double lookup(const Stmt *S, AnchorKind K) const;
};

/// Configuration for the AST estimators.
struct AstEstimatorConfig {
  /// Loop vs Smart (Markov is a different code path).
  IntraEstimatorKind Kind = IntraEstimatorKind::Smart;
  /// Assumed loop iteration count.
  double LoopIterations = 5.0;
  /// Heuristics used when Kind == Smart.
  BranchPredictorConfig Branch;
};

/// Runs the top-down AST walk over \p F (which must be defined),
/// producing per-statement frequencies normalized to one function entry.
AstFrequencies estimateAstFrequencies(const FunctionDecl *F,
                                      const AstEstimatorConfig &Config);

/// Maps AST frequencies onto the blocks of \p G via each block's anchor
/// ("the frequencies from the AST are mapped to blocks in the CFG").
/// Returns one estimate per block id.
std::vector<double> blockEstimatesFromAst(const Cfg &G,
                                          const AstFrequencies &Freqs);

/// Convenience: AST walk + CFG mapping in one call.
std::vector<double> estimateBlockFrequencies(const Cfg &G,
                                             const AstEstimatorConfig &C);

} // namespace sest

#endif // ESTIMATORS_ASTESTIMATOR_H

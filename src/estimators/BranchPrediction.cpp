//===- estimators/BranchPrediction.cpp - Static branch prediction ----------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "estimators/BranchPrediction.h"

#include "callgraph/CallGraph.h"
#include "cfg/Dominators.h"
#include "estimators/LoopBounds.h"
#include "lang/ConstFold.h"

#include <functional>
#include <optional>

using namespace sest;

//===----------------------------------------------------------------------===//
// AST walkers
//===----------------------------------------------------------------------===//

namespace {

/// Generic expression walker calling \p OnRef for each DeclRef with a flag
/// telling whether the reference is a pure store target.
template <typename Fn> void walkExprRefs(const Expr *E, bool IsStore, Fn OnRef) {
  if (!E)
    return;
  switch (E->kind()) {
  case ExprKind::DeclRef:
    OnRef(exprCast<DeclRefExpr>(E), IsStore);
    return;
  case ExprKind::Unary: {
    const auto *U = exprCast<UnaryExpr>(E);
    // Increment/decrement both read and write; AddrOf is treated as a
    // read (the address may be used for anything).
    walkExprRefs(U->operand(), /*IsStore=*/false, OnRef);
    return;
  }
  case ExprKind::Binary: {
    const auto *B = exprCast<BinaryExpr>(E);
    walkExprRefs(B->lhs(), false, OnRef);
    walkExprRefs(B->rhs(), false, OnRef);
    return;
  }
  case ExprKind::Assign: {
    const auto *A = exprCast<AssignExpr>(E);
    // Only a direct "x = ..." is a pure store of x; compound assignments
    // read the old value. Stores through indices/members read their base.
    bool PureStore = !A->compoundOp() &&
                     A->lhs()->kind() == ExprKind::DeclRef;
    walkExprRefs(A->lhs(), PureStore, OnRef);
    walkExprRefs(A->rhs(), false, OnRef);
    return;
  }
  case ExprKind::Conditional: {
    const auto *C = exprCast<ConditionalExpr>(E);
    walkExprRefs(C->cond(), false, OnRef);
    walkExprRefs(C->trueExpr(), false, OnRef);
    walkExprRefs(C->falseExpr(), false, OnRef);
    return;
  }
  case ExprKind::Call: {
    const auto *C = exprCast<CallExpr>(E);
    if (!C->directCallee())
      walkExprRefs(C->callee(), false, OnRef);
    for (const Expr *A : C->args())
      walkExprRefs(A, false, OnRef);
    return;
  }
  case ExprKind::Index: {
    const auto *I = exprCast<IndexExpr>(E);
    walkExprRefs(I->base(), false, OnRef);
    walkExprRefs(I->index(), false, OnRef);
    return;
  }
  case ExprKind::Member:
    walkExprRefs(exprCast<MemberExpr>(E)->base(), false, OnRef);
    return;
  case ExprKind::Cast:
    walkExprRefs(exprCast<CastExpr>(E)->operand(), false, OnRef);
    return;
  case ExprKind::InitList:
    for (const Expr *El : exprCast<InitListExpr>(E)->elements())
      walkExprRefs(El, false, OnRef);
    return;
  default:
    return;
  }
}

/// Walks all statements below \p S (inclusive), applying \p OnStmt.
template <typename Fn> void walkStmts(const Stmt *S, Fn OnStmt) {
  if (!S)
    return;
  OnStmt(S);
  switch (S->kind()) {
  case StmtKind::Compound:
    for (const Stmt *C : stmtCast<CompoundStmt>(S)->body())
      walkStmts(C, OnStmt);
    return;
  case StmtKind::If: {
    const auto *I = stmtCast<IfStmt>(S);
    walkStmts(I->thenStmt(), OnStmt);
    walkStmts(I->elseStmt(), OnStmt);
    return;
  }
  case StmtKind::While:
    walkStmts(stmtCast<WhileStmt>(S)->body(), OnStmt);
    return;
  case StmtKind::DoWhile:
    walkStmts(stmtCast<DoWhileStmt>(S)->body(), OnStmt);
    return;
  case StmtKind::For: {
    const auto *F = stmtCast<ForStmt>(S);
    walkStmts(F->init(), OnStmt);
    walkStmts(F->body(), OnStmt);
    return;
  }
  case StmtKind::Switch:
    walkStmts(stmtCast<SwitchStmt>(S)->body(), OnStmt);
    return;
  default:
    return;
  }
}

/// Applies \p OnExpr to every expression directly attached to \p S (not
/// descending into nested statements; use with walkStmts).
template <typename Fn> void forEachStmtExpr(const Stmt *S, Fn OnExpr) {
  switch (S->kind()) {
  case StmtKind::Expr:
    OnExpr(stmtCast<ExprStmt>(S)->expr());
    return;
  case StmtKind::Decl:
    if (const Expr *Init = stmtCast<DeclStmt>(S)->var()->init())
      OnExpr(Init);
    return;
  case StmtKind::If:
    OnExpr(stmtCast<IfStmt>(S)->cond());
    return;
  case StmtKind::While:
    OnExpr(stmtCast<WhileStmt>(S)->cond());
    return;
  case StmtKind::DoWhile:
    OnExpr(stmtCast<DoWhileStmt>(S)->cond());
    return;
  case StmtKind::For: {
    const auto *F = stmtCast<ForStmt>(S);
    if (F->cond())
      OnExpr(F->cond());
    if (F->step())
      OnExpr(F->step());
    return;
  }
  case StmtKind::Switch:
    OnExpr(stmtCast<SwitchStmt>(S)->cond());
    return;
  case StmtKind::Return:
    if (const Expr *V = stmtCast<ReturnStmt>(S)->value())
      OnExpr(V);
    return;
  default:
    return;
  }
}

} // namespace

std::set<const VarDecl *> sest::collectReadVariables(const FunctionDecl *F) {
  std::set<const VarDecl *> Reads;
  if (!F->isDefined())
    return Reads;
  walkStmts(F->body(), [&Reads](const Stmt *S) {
    forEachStmtExpr(S, [&Reads](const Expr *E) {
      walkExprRefs(E, false,
                   [&Reads](const DeclRefExpr *Ref, bool IsStore) {
                     if (IsStore)
                       return;
                     if (const auto *V = declDynCast<VarDecl>(Ref->decl()))
                       Reads.insert(V);
                   });
    });
  });
  return Reads;
}

bool sest::armCallsError(const Stmt *Arm) {
  if (!Arm)
    return false;
  bool Found = false;
  walkStmts(Arm, [&Found](const Stmt *S) {
    forEachStmtExpr(S, [&Found](const Expr *E) {
      std::vector<const CallExpr *> Calls;
      collectCallExprs(E, Calls);
      for (const CallExpr *C : Calls)
        if (C->directCallee() && C->directCallee()->isNoReturn())
          Found = true;
    });
  });
  return Found;
}

bool sest::armWritesReadVariable(
    const Stmt *Arm, const std::set<const VarDecl *> &ReadVars) {
  if (!Arm)
    return false;
  bool Found = false;
  walkStmts(Arm, [&](const Stmt *S) {
    forEachStmtExpr(S, [&](const Expr *E) {
      // Look for assignments and increments whose target is a plain
      // variable in the read set.
      std::function<void(const Expr *)> Scan = [&](const Expr *X) {
        if (!X)
          return;
        if (const auto *A = exprDynCast<AssignExpr>(X)) {
          if (const auto *Ref = exprDynCast<DeclRefExpr>(A->lhs()))
            if (const auto *V = declDynCast<VarDecl>(Ref->decl()))
              if (ReadVars.count(V))
                Found = true;
          Scan(A->lhs());
          Scan(A->rhs());
          return;
        }
        if (const auto *U = exprDynCast<UnaryExpr>(X)) {
          if (U->op() == UnaryOp::PreInc || U->op() == UnaryOp::PreDec ||
              U->op() == UnaryOp::PostInc || U->op() == UnaryOp::PostDec)
            if (const auto *Ref = exprDynCast<DeclRefExpr>(U->operand()))
              if (const auto *V = declDynCast<VarDecl>(Ref->decl()))
                if (ReadVars.count(V))
                  Found = true;
          Scan(U->operand());
          return;
        }
        if (const auto *B = exprDynCast<BinaryExpr>(X)) {
          Scan(B->lhs());
          Scan(B->rhs());
          return;
        }
        if (const auto *C = exprDynCast<ConditionalExpr>(X)) {
          Scan(C->cond());
          Scan(C->trueExpr());
          Scan(C->falseExpr());
          return;
        }
        if (const auto *C = exprDynCast<CallExpr>(X)) {
          for (const Expr *Arg : C->args())
            Scan(Arg);
          return;
        }
        if (const auto *I = exprDynCast<IndexExpr>(X)) {
          Scan(I->base());
          Scan(I->index());
          return;
        }
        if (const auto *M = exprDynCast<MemberExpr>(X)) {
          Scan(M->base());
          return;
        }
        if (const auto *C = exprDynCast<CastExpr>(X)) {
          Scan(C->operand());
          return;
        }
      };
      Scan(E);
    });
  });
  return Found;
}

unsigned sest::countConjuncts(const Expr *Cond) {
  if (const auto *B = exprDynCast<BinaryExpr>(Cond))
    if (B->op() == BinaryOp::LogicalAnd)
      return countConjuncts(B->lhs()) + countConjuncts(B->rhs());
  return 1;
}

//===----------------------------------------------------------------------===//
// Condition classification
//===----------------------------------------------------------------------===//

namespace {

bool isPointerish(const Expr *E) {
  const Type *T = E->type();
  if (!T)
    return false;
  if (T->isPointer() || T->isArray() || T->isFunction())
    return true;
  return false;
}

/// Prediction with the configured confidence.
BranchPrediction decide(bool PredictTrue, double TakenProb,
                        const char *Heuristic) {
  BranchPrediction P;
  P.PredictTrue = PredictTrue;
  P.ProbTrue = PredictTrue ? TakenProb : 1.0 - TakenProb;
  P.Heuristic = Heuristic;
  return P;
}

/// Records the single rule that produced \p P as its attribution — used
/// by every path where exactly one heuristic speaks (constant folds,
/// loop models, the default rule).
void recordSoloOpinion(BranchPrediction &P) {
  P.Fired = {{P.Heuristic, P.PredictTrue,
              P.PredictTrue ? P.ProbTrue : 1.0 - P.ProbTrue}};
}

} // namespace

BranchPrediction BranchPredictor::predictCondition(
    const Expr *Cond, const Stmt *ThenArm, const Stmt *ElseArm,
    const std::set<const VarDecl *> &ReadVars) const {
  // Constant conditions: predicted exactly, excluded from miss scoring.
  if (auto CV = foldConstant(Cond)) {
    BranchPrediction P;
    P.PredictTrue = CV->isTruthy();
    P.ProbTrue = P.PredictTrue ? 1.0 : 0.0;
    P.ConstantCondition = true;
    P.Heuristic = "constant";
    recordSoloOpinion(P);
    return P;
  }

  // "!x": predict the inner condition with swapped arms and invert.
  if (const auto *U = exprDynCast<UnaryExpr>(Cond);
      U && U->op() == UnaryOp::LogicalNot) {
    BranchPrediction Inner =
        predictCondition(U->operand(), ElseArm, ThenArm, ReadVars);
    BranchPrediction P = Inner;
    P.PredictTrue = !Inner.PredictTrue;
    P.ProbTrue = 1.0 - Inner.ProbTrue;
    // The attribution speaks about the outer (negated) condition.
    for (HeuristicOpinion &O : P.Fired)
      O.PredictTrue = !O.PredictTrue;
    return P;
  }

  // Collect the opinion of every firing heuristic, in priority order.
  struct Evidence {
    const char *Name;
    bool PredictTrue;
    double Confidence; ///< In the predicted direction.
  };
  std::vector<Evidence> Firing;

  // Error heuristic: an arm that reaches abort/exit is unlikely.
  if (Config.UseErrorHeuristic) {
    bool ThenErr = armCallsError(ThenArm);
    bool ElseErr = armCallsError(ElseArm);
    if (ThenErr != ElseErr)
      Firing.push_back({"error", !ThenErr, Config.ErrorConfidence});
  }

  // Pointer heuristic.
  if (Config.UsePointerHeuristic) {
    bool Fired = false;
    if (const auto *B = exprDynCast<BinaryExpr>(Cond)) {
      bool LhsPtr = isPointerish(B->lhs());
      bool RhsPtr = isPointerish(B->rhs());
      if ((LhsPtr || RhsPtr) &&
          (B->op() == BinaryOp::Eq || B->op() == BinaryOp::Ne)) {
        // "p == NULL" / "p == q": unlikely; "p != ...": likely.
        Firing.push_back({"pointer", B->op() == BinaryOp::Ne,
                          Config.PointerConfidence});
        Fired = true;
      }
    }
    if (!Fired && isPointerish(Cond))
      Firing.push_back({"pointer", true, Config.PointerConfidence});
  }

  // Opcode heuristic (Ball-Larus style).
  if (Config.UseOpcodeHeuristic) {
    if (const auto *B = exprDynCast<BinaryExpr>(Cond)) {
      bool PtrCmp = isPointerish(B->lhs()) || isPointerish(B->rhs());
      auto Fire = [&](bool PredictTrue) {
        Firing.push_back(
            {"opcode", PredictTrue, Config.OpcodeConfidence});
      };
      if (!PtrCmp && B->op() == BinaryOp::Eq)
        Fire(false);
      else if (!PtrCmp && B->op() == BinaryOp::Ne)
        Fire(true);
      else {
        auto RhsC = foldConstant(B->rhs());
        auto LhsC = foldConstant(B->lhs());
        if (RhsC && !RhsC->IsDouble) {
          int64_t C = RhsC->IntVal;
          // "x < 0", "x <= 0" unlikely; "x > 0", "x >= 0" likely.
          if ((B->op() == BinaryOp::Lt || B->op() == BinaryOp::Le) &&
              C <= 0)
            Fire(false);
          else if ((B->op() == BinaryOp::Gt || B->op() == BinaryOp::Ge) &&
                   C <= 0)
            Fire(true);
        } else if (LhsC && !LhsC->IsDouble) {
          int64_t C = LhsC->IntVal;
          // Mirrored forms: "0 > x" unlikely, "0 < x" likely.
          if ((B->op() == BinaryOp::Gt || B->op() == BinaryOp::Ge) &&
              C <= 0)
            Fire(false);
          else if ((B->op() == BinaryOp::Lt || B->op() == BinaryOp::Le) &&
                   C <= 0)
            Fire(true);
        }
      }
    }
  }

  // Multiple logical ANDs make a condition less likely.
  if (Config.UseAndHeuristic && countConjuncts(Cond) >= 2)
    Firing.push_back({"and", false, Config.AndConfidence});

  // Store heuristic.
  if (Config.UseStoreHeuristic && !ReadVars.empty()) {
    bool ThenWrites = armWritesReadVariable(ThenArm, ReadVars);
    bool ElseWrites = armWritesReadVariable(ElseArm, ReadVars);
    if (ThenWrites != ElseWrites)
      Firing.push_back({"store", ThenWrites, Config.StoreConfidence});
  }

  if (Firing.empty()) {
    BranchPrediction P = decide(true, Config.TakenProbability, "default");
    recordSoloOpinion(P);
    return P;
  }

  std::vector<HeuristicOpinion> Opinions;
  Opinions.reserve(Firing.size());
  for (const Evidence &E : Firing)
    Opinions.push_back({E.Name, E.PredictTrue, E.Confidence});

  switch (Config.ProbMode) {
  case ProbabilityMode::Fixed: {
    // The paper's scheme: direction from the first heuristic, the fixed
    // 0.8 as its probability.
    BranchPrediction P = decide(Firing.front().PredictTrue,
                                Config.TakenProbability,
                                Firing.front().Name);
    P.Fired = std::move(Opinions);
    return P;
  }
  case ProbabilityMode::PerHeuristic: {
    BranchPrediction P = decide(Firing.front().PredictTrue,
                                Firing.front().Confidence,
                                Firing.front().Name);
    P.Fired = std::move(Opinions);
    return P;
  }
  case ProbabilityMode::DempsterShafer: {
    // Combine all opinions: with per-heuristic probabilities p_i that
    // the condition is *true*, the combined belief is
    //   Π p_i / (Π p_i + Π (1 - p_i)).
    double True = 1.0, False = 1.0;
    for (const Evidence &E : Firing) {
      double P = E.PredictTrue ? E.Confidence : 1.0 - E.Confidence;
      True *= P;
      False *= 1.0 - P;
    }
    double ProbTrue = True / (True + False);
    BranchPrediction P;
    P.PredictTrue = ProbTrue >= 0.5;
    P.ProbTrue = ProbTrue;
    P.Heuristic = Firing.front().Name;
    P.Fired = std::move(Opinions);
    return P;
  }
  }
  BranchPrediction P = decide(true, Config.TakenProbability, "default");
  recordSoloOpinion(P);
  return P;
}

BranchPrediction
BranchPredictor::predictIf(const IfStmt *S,
                           const std::set<const VarDecl *> &ReadVars) const {
  return predictCondition(S->cond(), S->thenStmt(), S->elseStmt(),
                          ReadVars);
}

std::vector<double>
BranchPredictor::switchArmProbabilities(const BasicBlock *B) const {
  assert(B->terminator() == TerminatorKind::Switch && "not a switch block");
  size_t NumSlots = B->successors().size(); // cases + default
  std::vector<double> Probs(NumSlots, 0.0);
  if (NumSlots == 0)
    return Probs;

  if (Config.SwitchMode == SwitchWeighting::CaseLabelWeighted) {
    // Every case label (and the default) is one unit of weight. Two case
    // labels that fall into the same block contribute two slots, so the
    // block's total weight is its label count, as in the paper.
    double Unit = 1.0 / static_cast<double>(NumSlots);
    for (double &P : Probs)
      P = Unit;
    return Probs;
  }

  // Uniform: each *distinct target block* equally likely, split across
  // the slots that reach it.
  std::map<const BasicBlock *, unsigned> SlotsPerTarget;
  for (const BasicBlock *S : B->successors())
    ++SlotsPerTarget[S];
  double PerTarget = 1.0 / static_cast<double>(SlotsPerTarget.size());
  for (size_t I = 0; I < NumSlots; ++I)
    Probs[I] = PerTarget / SlotsPerTarget[B->successors()[I]];
  return Probs;
}

FunctionBranchPredictions
BranchPredictor::predictFunction(const Cfg &G) const {
  FunctionBranchPredictions Out;
  std::set<const VarDecl *> ReadVars =
      Config.UseStoreHeuristic ? collectReadVariables(G.function())
                               : std::set<const VarDecl *>{};

  // Natural loops for the CFG-level loop heuristic (goto loops). For
  // each block, remember its innermost containing loop.
  std::vector<const NaturalLoop *> InnermostLoop;
  std::vector<NaturalLoop> Loops;
  if (Config.UseLoopHeuristic && Config.UseCfgLoopHeuristic) {
    DominatorTree DT(G);
    Loops = findNaturalLoops(G, DT);
    InnermostLoop.assign(G.size(), nullptr);
    for (const NaturalLoop &L : Loops)
      for (uint32_t B : L.Blocks)
        if (!InnermostLoop[B] ||
            L.Blocks.size() < InnermostLoop[B]->Blocks.size())
          InnermostLoop[B] = &L;
  }

  for (const auto &B : G.blocks()) {
    if (B->terminator() == TerminatorKind::Switch) {
      Out.SwitchProbs[B->id()] = switchArmProbabilities(B.get());
      continue;
    }
    if (B->terminator() != TerminatorKind::CondBranch)
      continue;

    const Stmt *Origin = B->terminatorOrigin();
    const Expr *Cond = B->condOrValue();

    // Loop conditions get the loop model's probability.
    bool IsLoopCond =
        Origin && (Origin->kind() == StmtKind::While ||
                   Origin->kind() == StmtKind::DoWhile ||
                   Origin->kind() == StmtKind::For);
    if (IsLoopCond && Config.UseLoopHeuristic) {
      if (auto CV = foldConstant(Cond)) {
        BranchPrediction P;
        P.PredictTrue = CV->isTruthy();
        P.ProbTrue = P.PredictTrue ? 1.0 : 0.0;
        P.ConstantCondition = true;
        P.Heuristic = "constant";
        recordSoloOpinion(P);
        Out.ByBlock[B->id()] = P;
        continue;
      }
      BranchPrediction P;
      P.PredictTrue = true;
      P.ProbTrue = loopContinueProbability();
      P.Heuristic = "loop";
      if (Config.UseConstantLoopBounds) {
        if (const auto *For = stmtDynCast<ForStmt>(Origin)) {
          if (auto Trips =
                  constantTripCount(For, Config.MaxConstantTrips)) {
            // T body executions per T+1 tests.
            P.ProbTrue = *Trips / (*Trips + 1.0);
            P.PredictTrue = *Trips >= 1.0;
            P.Heuristic = "counted-loop";
          }
        }
      }
      recordSoloOpinion(P);
      Out.ByBlock[B->id()] = P;
      continue;
    }

    // CFG-level loop heuristic (Ball-Larus's LBH, restricted to latch
    // tests): when one edge returns to the innermost loop's header and
    // the other leaves the loop, predict the back edge — this is how
    // goto-formed loops get the loop model. Continue tests (back edge,
    // but the other edge stays inside) and break tests (no back edge)
    // keep their AST heuristics, matching the paper's AST-level
    // predictor on structured code.
    if (!InnermostLoop.empty() && InnermostLoop[B->id()]) {
      const NaturalLoop *L = InnermostLoop[B->id()];
      bool TrueToHeader = B->successors()[0]->id() == L->Header;
      bool FalseToHeader = B->successors()[1]->id() == L->Header;
      bool TrueInside = L->contains(B->successors()[0]->id());
      bool FalseInside = L->contains(B->successors()[1]->id());
      bool LatchTest = (TrueToHeader && !FalseInside) ||
                       (FalseToHeader && !TrueInside);
      if (LatchTest) {
        if (auto CV = foldConstant(Cond)) {
          BranchPrediction P;
          P.PredictTrue = CV->isTruthy();
          P.ProbTrue = P.PredictTrue ? 1.0 : 0.0;
          P.ConstantCondition = true;
          P.Heuristic = "constant";
          recordSoloOpinion(P);
          Out.ByBlock[B->id()] = P;
          continue;
        }
        BranchPrediction P;
        P.PredictTrue = TrueInside;
        double Stay = loopContinueProbability();
        P.ProbTrue = TrueInside ? Stay : 1.0 - Stay;
        P.Heuristic = "cfg-loop";
        recordSoloOpinion(P);
        Out.ByBlock[B->id()] = P;
        continue;
      }
    }

    const Stmt *ThenArm = nullptr;
    const Stmt *ElseArm = nullptr;
    if (const auto *If = stmtDynCast<IfStmt>(Origin)) {
      ThenArm = If->thenStmt();
      ElseArm = If->elseStmt();
    }
    Out.ByBlock[B->id()] =
        predictCondition(Cond, ThenArm, ElseArm, ReadVars);
  }
  return Out;
}

//===- estimators/BranchPrediction.h - Static branch prediction -*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's "smart" branch predictor (§4.1): programming-idiom
/// heuristics over the AST and the C type system, in the spirit of Ball &
/// Larus but applied before code generation. The heuristics implemented:
///
///  - Loop: loop conditions are predicted true with probability
///    (L-1)/L for the configured loop count L (the paper's 0.8 for L=5).
///  - Pointer: pointers are unlikely to be NULL; pointer equality
///    comparisons are unlikely to hold.
///  - Opcode: integer equality, and comparisons against negative
///    constants or zero lower bounds, are unlikely to hold.
///  - Error: an arm that (transitively in its statements) calls abort()
///    or exit() is unlikely.
///  - Store: "when one arm of a conditional construct writes to variables
///    read elsewhere, that arm is more likely".
///  - And: "multiple logical ANDs make a condition less likely".
///
/// Each heuristic can be toggled for the ablation benches; the first
/// enabled heuristic that fires decides, in the order above (after the
/// error heuristic, which dominates idiom heuristics). Branches whose
/// condition folds to a compile-time constant are predicted but flagged
/// so the miss-rate metric can exclude them (§2).
///
//===----------------------------------------------------------------------===//

#ifndef ESTIMATORS_BRANCHPREDICTION_H
#define ESTIMATORS_BRANCHPREDICTION_H

#include "cfg/Cfg.h"
#include "lang/Ast.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace sest {

/// How switch arms are weighted (§4.1 footnote 3).
enum class SwitchWeighting {
  Uniform,           ///< Every distinct target equally likely.
  CaseLabelWeighted, ///< Arms weighted by their number of case labels.
};

/// How branch probabilities are produced. The paper leaves open "whether
/// static branch prediction can be accurate enough to make good use of
/// the intra-procedural Markov model (for example, by using a static
/// predictor that generates probabilities directly, rather than a
/// true/false guess)" (§5.1); the last two modes implement that idea in
/// the style of Wu & Larus.
enum class ProbabilityMode {
  /// The paper's scheme: every predicted arm gets TakenProbability.
  Fixed,
  /// The deciding heuristic supplies its own confidence.
  PerHeuristic,
  /// All firing heuristics combine their confidences by Dempster-Shafer
  /// evidence combination.
  DempsterShafer,
};

/// Tuning knobs for the smart predictor.
struct BranchPredictorConfig {
  bool UseLoopHeuristic = true;
  /// Apply the loop heuristic to CFG back edges too (Ball-Larus's LBH):
  /// catches loops the AST cannot see, e.g. goto-formed loops.
  bool UseCfgLoopHeuristic = true;
  bool UseErrorHeuristic = true;
  bool UsePointerHeuristic = true;
  bool UseOpcodeHeuristic = true;
  bool UseAndHeuristic = true;
  bool UseStoreHeuristic = true;
  /// Probability given to the predicted arm of a non-loop branch (the
  /// paper chose 0.8 and found the exact value insignificant).
  double TakenProbability = 0.8;
  /// Assumed loop iteration count (paper: 5); loop conditions get
  /// probability (L-1)/L of staying in the loop.
  double LoopIterations = 5.0;
  /// Refinement: use the exact trip count of counted for-loops with
  /// constant bounds (see LoopBounds.h) instead of the fixed count.
  bool UseConstantLoopBounds = false;
  /// Cap on detected constant trip counts.
  double MaxConstantTrips = 4096.0;
  SwitchWeighting SwitchMode = SwitchWeighting::CaseLabelWeighted;

  /// Probability generation (see ProbabilityMode).
  ProbabilityMode ProbMode = ProbabilityMode::Fixed;
  /// Per-heuristic confidences in the predicted direction, used by the
  /// PerHeuristic and DempsterShafer modes. Defaults follow the
  /// empirical hit rates reported by Ball-Larus / Wu-Larus.
  double ErrorConfidence = 0.96;
  double PointerConfidence = 0.90;
  double OpcodeConfidence = 0.84;
  double AndConfidence = 0.75;
  double StoreConfidence = 0.55;
};

/// One heuristic's opinion about a branch — the attribution record that
/// explains *why* a direction was predicted. Every heuristic that fired
/// is recorded, not just the one that decided, so mispredictions can be
/// traced back to the responsible rule (and future tuning can reweight
/// heuristics against measured outcomes).
struct HeuristicOpinion {
  /// Short heuristic name ("loop", "pointer", "opcode", ...).
  const char *Name = "default";
  /// The direction this heuristic votes for.
  bool PredictTrue = true;
  /// Its confidence in that direction (the configured per-heuristic
  /// confidence; TakenProbability for the default/fixed rules).
  double Confidence = 0.5;
};

/// Prediction for one two-way conditional branch.
struct BranchPrediction {
  /// True when the condition is predicted to evaluate true.
  bool PredictTrue = true;
  /// Probability that the condition is true.
  double ProbTrue = 0.5;
  /// The condition folds to a compile-time constant: predicted, but not
  /// scored in miss rates.
  bool ConstantCondition = false;
  /// Short name of the heuristic that decided ("loop", "pointer", ...).
  const char *Heuristic = "default";
  /// Every heuristic that fired on this condition, in priority order;
  /// the first entry is the decider (under Dempster-Shafer all entries
  /// contribute to ProbTrue). Never empty: fallback paths record a
  /// single "default" / "constant" / "loop" opinion.
  std::vector<HeuristicOpinion> Fired;
};

/// Per-function branch predictions keyed by basic-block id (blocks with
/// CondBranch terminators only).
struct FunctionBranchPredictions {
  std::map<uint32_t, BranchPrediction> ByBlock;
  /// Switch arm probabilities per block id (one per successor slot,
  /// summing to 1).
  std::map<uint32_t, std::vector<double>> SwitchProbs;
};

/// The smart static branch predictor.
class BranchPredictor {
public:
  explicit BranchPredictor(const BranchPredictorConfig &Config = {})
      : Config(Config) {}

  const BranchPredictorConfig &config() const { return Config; }

  /// Predicts every conditional branch and switch in \p G.
  FunctionBranchPredictions predictFunction(const Cfg &G) const;

  /// Predicts one `if` statement: the probability that the condition is
  /// true. \p ReadVars is the function's read-variable set (store
  /// heuristic); pass empty to disable.
  BranchPrediction
  predictIf(const IfStmt *S,
            const std::set<const VarDecl *> &ReadVars) const;

  /// Probability that a loop condition evaluates true ((L-1)/L).
  double loopContinueProbability() const {
    double L = Config.LoopIterations;
    return L > 1 ? (L - 1.0) / L : 0.5;
  }

  /// Arm probabilities for a switch terminator block (per successor
  /// slot).
  std::vector<double> switchArmProbabilities(const BasicBlock *B) const;

private:
  /// Heuristic pipeline over a condition expression; \p ThenArm /
  /// \p ElseArm may be null (loop or expression contexts).
  BranchPrediction
  predictCondition(const Expr *Cond, const Stmt *ThenArm,
                   const Stmt *ElseArm,
                   const std::set<const VarDecl *> &ReadVars) const;

  BranchPredictorConfig Config;
};

/// Collects every variable read in \p F (operand positions other than
/// pure stores). Used by the store heuristic.
std::set<const VarDecl *> collectReadVariables(const FunctionDecl *F);

/// True when \p Arm contains a direct call to a noreturn builtin
/// (abort/exit).
bool armCallsError(const Stmt *Arm);

/// True when \p Arm writes any variable in \p ReadVars.
bool armWritesReadVariable(const Stmt *Arm,
                           const std::set<const VarDecl *> &ReadVars);

/// Number of top-level conjuncts in \p Cond (1 for no "&&").
unsigned countConjuncts(const Expr *Cond);

} // namespace sest

#endif // ESTIMATORS_BRANCHPREDICTION_H

//===- estimators/InterEstimators.cpp - Inter-procedural estimates ---------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "estimators/InterEstimators.h"

#include "obs/EventLog.h"
#include "obs/Telemetry.h"
#include "support/LinearSystem.h"
#include "support/Scc.h"
#include "support/SparseMarkov.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

using namespace sest;

const char *sest::interEstimatorName(InterEstimatorKind K) {
  switch (K) {
  case InterEstimatorKind::CallSite:
    return "call-site";
  case InterEstimatorKind::Direct:
    return "direct";
  case InterEstimatorKind::AllRec:
    return "all_rec";
  case InterEstimatorKind::AllRec2:
    return "all_rec2";
  case InterEstimatorKind::Markov:
    return "markov";
  }
  return "?";
}

namespace {

/// Functions that directly call themselves.
std::set<size_t> directlyRecursive(const CallGraph &CG) {
  std::set<size_t> Out;
  for (const CallSiteInfo &S : CG.sites())
    if (S.Callee && S.Callee == S.Caller)
      Out.insert(S.Caller->functionId());
  return Out;
}

/// Functions in any direct-call cycle (SCC of size > 1, or self-arc).
std::set<size_t> anyRecursive(const TranslationUnit &Unit,
                              const CallGraph &CG) {
  std::set<size_t> Out = directlyRecursive(CG);
  SccResult Scc = computeScc(Unit.Functions.size(), CG.directAdjacency());
  for (size_t F = 0; F < Unit.Functions.size(); ++F)
    if (Scc.inNontrivialComponent(F))
      Out.insert(F);
  return Out;
}

/// The §4.3 simple algorithm: per-function counts as the sum of the
/// (optionally rescaled) local block counts of their call sites, with
/// indirect-site totals split across address-taken functions.
std::vector<double>
simpleCounts(const TranslationUnit &Unit, const CallGraph &CG,
             const IntraEstimates &Intra,
             const std::vector<double> *BlockScale) {
  std::vector<double> Est(Unit.Functions.size(), 0.0);
  if (const FunctionDecl *Main = Unit.findFunction("main"))
    Est[Main->functionId()] += 1.0; // the program invokes main once

  double IndirectTotal = 0.0;
  for (const CallSiteInfo &S : CG.sites()) {
    double Local = Intra.localSiteFrequency(S);
    if (BlockScale)
      Local *= (*BlockScale)[S.Caller->functionId()];
    if (S.Callee)
      Est[S.Callee->functionId()] += Local;
    else
      IndirectTotal += Local;
  }

  // "indirect call site counts are summed and divided among the
  // functions whose address is taken, weighted by the (static) number of
  // address-of operations" (§4.3).
  if (IndirectTotal > 0 && CG.totalAddressTakenWeight() > 0) {
    for (const auto &[F, W] : CG.addressTakenFunctions())
      Est[F->functionId()] +=
          IndirectTotal * W / CG.totalAddressTakenWeight();
  }
  return Est;
}

void applyRecursionFactor(std::vector<double> &Est,
                          const std::set<size_t> &Recursive,
                          double Factor) {
  for (size_t F : Recursive)
    Est[F] *= Factor;
}

//===----------------------------------------------------------------------===//
// Markov call-graph model (§5.2)
//===----------------------------------------------------------------------===//

/// A weighted directed graph over function nodes + optional pointer node.
struct WeightedCallGraph {
  size_t NumNodes = 0;
  size_t PointerNode = SIZE_MAX; ///< SIZE_MAX when absent.
  /// Arc weights, merged per (from, to).
  std::map<std::pair<size_t, size_t>, double> W;
  size_t EntryNode = SIZE_MAX;

  std::vector<std::vector<size_t>> adjacency() const {
    std::vector<std::vector<size_t>> Adj(NumNodes);
    for (const auto &[Arc, Weight] : W)
      if (Weight > 0)
        Adj[Arc.first].push_back(Arc.second);
    return Adj;
  }
};

WeightedCallGraph buildWeightedGraph(const TranslationUnit &Unit,
                                     const CallGraph &CG,
                                     const IntraEstimates &Intra) {
  WeightedCallGraph G;
  G.NumNodes = Unit.Functions.size();
  bool NeedPointerNode = !CG.indirectSites().empty();
  if (NeedPointerNode) {
    G.PointerNode = G.NumNodes;
    ++G.NumNodes;
  }

  for (const CallSiteInfo &S : CG.sites()) {
    double Local = Intra.localSiteFrequency(S);
    if (Local <= 0)
      continue;
    size_t From = S.Caller->functionId();
    size_t To = S.Callee ? S.Callee->functionId() : G.PointerNode;
    G.W[{From, To}] += Local;
  }

  if (NeedPointerNode && CG.totalAddressTakenWeight() > 0) {
    for (const auto &[F, Weight] : CG.addressTakenFunctions())
      G.W[{G.PointerNode, F->functionId()}] =
          static_cast<double>(Weight) / CG.totalAddressTakenWeight();
  }

  if (const FunctionDecl *Main = Unit.findFunction("main"))
    G.EntryNode = Main->functionId();
  return G;
}

/// The graph's arcs as a dense-indexed sparse arc list (map order, so
/// deterministic).
std::vector<SparseArc> sparseArcs(const WeightedCallGraph &G) {
  std::vector<SparseArc> Arcs;
  Arcs.reserve(G.W.size());
  for (const auto &[Arc, Weight] : G.W)
    Arcs.push_back({static_cast<uint32_t>(Arc.first),
                    static_cast<uint32_t>(Arc.second), Weight});
  return Arcs;
}

/// Solves f = e + Wᵀ f over the whole graph. Returns empty on a singular
/// system. The repair ladder below owns all singular handling, so the
/// sparse tier runs with its internal per-SCC repair disabled — both
/// tiers fail identically and the ladder's behavior is solver-invariant.
std::optional<std::vector<double>>
solveWhole(const WeightedCallGraph &G, const InterEstimatorConfig &Config) {
  std::vector<double> Entry(G.NumNodes, 0.0);
  if (G.EntryNode != SIZE_MAX)
    Entry[G.EntryNode] = 1.0;

  if (Config.Solver == MarkovSolverKind::Sparse) {
    std::vector<SparseArc> Arcs = sparseArcs(G);
    SparseMarkovResult R =
        solveSparseMarkov(G.NumNodes, Arcs, Entry, SparseMarkovConfig());
    obs::counterAdd("support.sparse.solves");
    obs::histRecord("support.sparse.dim",
                    static_cast<double>(G.NumNodes));
    obs::histRecord("support.sparse.scc_count",
                    static_cast<double>(R.Stats.SccCount));
    obs::histRecord("support.sparse.max_scc_size",
                    static_cast<double>(R.Stats.MaxSccSize));
    if (R.Stats.CyclicSccCount) {
      obs::counterAdd("support.sparse.dense_subsolves",
                      static_cast<double>(R.Stats.CyclicSccCount));
      obs::histRecord("support.sparse.dense_dim",
                      static_cast<double>(R.Stats.DenseDim));
    }
    if (!R.Frequencies) {
      obs::counterAdd("support.sparse.singular");
      return std::nullopt;
    }
    if (obs::telemetryActive()) {
      // Residual of f = e + Wᵀf over the whole call graph.
      std::vector<double> Flow = Entry;
      for (const SparseArc &A : Arcs)
        Flow[A.To] += A.Prob * (*R.Frequencies)[A.From];
      double Worst = 0.0;
      for (size_t I = 0; I < Flow.size(); ++I)
        Worst =
            std::max(Worst, std::fabs((*R.Frequencies)[I] - Flow[I]));
      obs::histRecord("estimators.markov_inter.residual", Worst);
    }
    return std::move(R.Frequencies);
  }

  Matrix P(G.NumNodes, G.NumNodes);
  for (const auto &[Arc, Weight] : G.W)
    P.at(Arc.first, Arc.second) += Weight;
  auto F = solveMarkovFrequencies(P, Entry);
  obs::counterAdd("support.linsys.solves");
  obs::histRecord("support.linsys.dim", static_cast<double>(G.NumNodes));
  if (!F) {
    obs::counterAdd("support.linsys.singular");
  } else if (obs::telemetryActive()) {
    // Residual of f = e + Wᵀf over the whole call graph.
    double Worst = 0.0;
    for (size_t I = 0; I < F->size(); ++I) {
      double Flow = Entry[I];
      for (size_t J = 0; J < F->size(); ++J)
        Flow += P.at(J, I) * (*F)[J];
      Worst = std::max(Worst, std::fabs((*F)[I] - Flow));
    }
    obs::histRecord("estimators.markov_inter.residual", Worst);
  }
  return F;
}

/// Solves one dense-indexed arc system on the configured tier (used by
/// the §5.2.2 subproblems; the repair acceptance logic stays in the
/// caller, so the sparse tier runs with internal repair off).
std::optional<std::vector<double>>
solveArcSystem(size_t N, const std::vector<SparseArc> &Arcs,
               const std::vector<double> &Entry, MarkovSolverKind Kind) {
  if (Kind == MarkovSolverKind::Sparse)
    return solveSparseMarkov(N, Arcs, Entry, SparseMarkovConfig())
        .Frequencies;
  Matrix P(N, N);
  for (const SparseArc &A : Arcs)
    P.at(A.From, A.To) += A.Prob;
  return solveMarkovFrequencies(P, Entry);
}

bool solutionIsValid(const std::vector<double> &F) {
  for (double V : F)
    if (!(V >= -1e-9) || !std::isfinite(V) || V > 1e15)
      return false;
  return true;
}

/// Repairs one strongly connected component per §5.2.2: build a
/// subproblem with an artificial main whose arcs carry the component's
/// external inflow proportions, then scale the component's internal arc
/// probabilities until the subproblem solves with no negative values and
/// nothing above the ceiling. Returns the number of scalings applied
/// (0 = the component needed none).
unsigned repairScc(WeightedCallGraph &G, const std::vector<size_t> &Component,
                   const InterEstimatorConfig &Config) {
  if (Component.size() < 2)
    return 0;
  std::set<size_t> InScc(Component.begin(), Component.end());

  // External inflow per member: "the arc from the artificial main node of
  // the subproblem to each of the nodes in the SCC received a flow of
  // m/n, where m is the number of calls to the target from outside the
  // SCC, and n the total number of calls into the SCC from outside".
  std::map<size_t, double> Inflow;
  double TotalInflow = 0.0;
  for (const auto &[Arc, Weight] : G.W) {
    if (!InScc.count(Arc.first) && InScc.count(Arc.second)) {
      Inflow[Arc.second] += Weight;
      TotalInflow += Weight;
    }
  }

  // Dense renumbering: member i -> index i, artificial main -> last.
  std::map<size_t, size_t> Index;
  for (size_t I = 0; I < Component.size(); ++I)
    Index[Component[I]] = I;
  const size_t N = Component.size() + 1;
  const size_t MainIdx = Component.size();

  obs::counterAdd("estimators.markov_inter.scc_repairs");
  obs::histRecord("estimators.markov_inter.scc_size",
                  static_cast<double>(Component.size()));
  for (unsigned Iter = 0; Iter < Config.MaxSccRepairIterations; ++Iter) {
    obs::counterAdd("estimators.markov_inter.scc_repair_iterations");
    std::vector<SparseArc> Arcs;
    for (const auto &[Arc, Weight] : G.W)
      if (InScc.count(Arc.first) && InScc.count(Arc.second))
        Arcs.push_back({static_cast<uint32_t>(Index[Arc.first]),
                        static_cast<uint32_t>(Index[Arc.second]), Weight});
    for (size_t I = 0; I < Component.size(); ++I) {
      double Flow = TotalInflow > 0
                        ? (Inflow.count(Component[I])
                               ? Inflow[Component[I]] / TotalInflow
                               : 0.0)
                        : 1.0 / Component.size();
      Arcs.push_back({static_cast<uint32_t>(MainIdx),
                      static_cast<uint32_t>(I), Flow});
    }
    std::vector<double> Entry(N, 0.0);
    Entry[MainIdx] = 1.0;

    auto F = solveArcSystem(N, Arcs, Entry, Config.Solver);
    bool Ok = F.has_value();
    if (Ok) {
      for (size_t I = 0; I < Component.size(); ++I)
        if ((*F)[I] < -1e-9 || (*F)[I] > Config.SccCeiling)
          Ok = false;
    }
    if (Ok)
      return Iter;

    // "we scale down all the arc probabilities in the SCC by a constant,
    // repeating until the solution succeeds."
    for (auto &[Arc, Weight] : G.W)
      if (InScc.count(Arc.first) && InScc.count(Arc.second))
        Weight *= Config.SccScale;
  }
  return Config.MaxSccRepairIterations;
}

std::vector<double> markovFunctionCounts(const TranslationUnit &Unit,
                                         const CallGraph &CG,
                                         const IntraEstimates &Intra,
                                         const InterEstimatorConfig &Config) {
  obs::counterAdd("estimators.markov_inter.solves");
  WeightedCallGraph G = buildWeightedGraph(Unit, CG, Intra);
  size_t NumFns = Unit.Functions.size();

  // Step 1: direct recursive arcs with probability >= 1 become 0.8. (A
  // weight of exactly 1 is just as impossible as the paper's 1.6 — "for
  // every time the function is called, it calls itself again", i.e. it
  // never returns — and leaves the system singular.)
  for (auto &[Arc, Weight] : G.W)
    if (Arc.first == Arc.second && Weight >= 1.0)
      Weight = Config.RecursiveArcProbability;

  // Step 2: attempt the whole program.
  auto F = solveWhole(G, Config);
  if (!F || !solutionIsValid(*F)) {
    // Step 3: repair each SCC in isolation, then re-solve.
    SccResult Scc = computeScc(G.NumNodes, G.adjacency());
    for (const auto &Component : Scc.Components) {
      unsigned Scalings = repairScc(G, Component, Config);
      if (Scalings && obs::eventLogActive()) {
        // Name the repaired cycle by its smallest *function* node — the
        // pointer node (index NumFns) stands for all indirect targets
        // and has no accuracy-report entity; a multi-node SCC always
        // contains defined functions, so a representative exists.
        size_t Rep = SIZE_MAX;
        for (size_t Node : Component)
          if (Node < NumFns && Node < Rep)
            Rep = Node;
        if (Rep != SIZE_MAX)
          obs::logEvent(
              "solver.scc.repair",
              obs::provFunction(Unit.Functions[Rep]->name()),
              {obs::attr("scope", "inter"),
               obs::attr("size", static_cast<double>(Component.size())),
               obs::attr("iterations", static_cast<double>(Scalings))});
      }
    }
    F = solveWhole(G, Config);
  }

  // Step 4: last resort — scale everything until the system solves.
  unsigned Guard = 0;
  while ((!F || !solutionIsValid(*F)) &&
         Guard++ < Config.MaxSccRepairIterations) {
    obs::counterAdd("estimators.markov_inter.rescale_iterations");
    for (auto &[Arc, Weight] : G.W)
      Weight *= Config.SccScale;
    F = solveWhole(G, Config);
  }
  obs::counterAdd("estimators.markov_inter.iterations", Guard + 1);
  if (!F || !solutionIsValid(*F))
    obs::counterAdd("estimators.markov_inter.fallback_uniform");

  std::vector<double> Out(NumFns, 0.0);
  if (F && solutionIsValid(*F)) {
    for (size_t I = 0; I < NumFns; ++I)
      Out[I] = std::max(0.0, (*F)[I]);
  } else {
    // Degenerate graph: every function once.
    Out.assign(NumFns, 1.0);
  }
  return Out;
}

} // namespace

std::vector<double> sest::estimateFunctionFrequencies(
    InterEstimatorKind Kind, const TranslationUnit &Unit,
    const CallGraph &CG, const IntraEstimates &Intra,
    const InterEstimatorConfig &Config) {
  switch (Kind) {
  case InterEstimatorKind::CallSite:
    return simpleCounts(Unit, CG, Intra, nullptr);
  case InterEstimatorKind::Direct: {
    std::vector<double> Est = simpleCounts(Unit, CG, Intra, nullptr);
    applyRecursionFactor(Est, directlyRecursive(CG),
                         Config.RecursionFactor);
    return Est;
  }
  case InterEstimatorKind::AllRec: {
    std::vector<double> Est = simpleCounts(Unit, CG, Intra, nullptr);
    applyRecursionFactor(Est, anyRecursive(Unit, CG),
                         Config.RecursionFactor);
    return Est;
  }
  case InterEstimatorKind::AllRec2: {
    // "all_rec2 uses the function invocation counts of all_rec to scale
    // up the execution counts of basic blocks, then reapplies the
    // algorithm to compute new function counts" (§4.3).
    std::vector<double> First = simpleCounts(Unit, CG, Intra, nullptr);
    applyRecursionFactor(First, anyRecursive(Unit, CG),
                         Config.RecursionFactor);
    std::vector<double> Est = simpleCounts(Unit, CG, Intra, &First);
    applyRecursionFactor(Est, anyRecursive(Unit, CG),
                         Config.RecursionFactor);
    return Est;
  }
  case InterEstimatorKind::Markov:
    return markovFunctionCounts(Unit, CG, Intra, Config);
  }
  return std::vector<double>(Unit.Functions.size(), 0.0);
}

std::vector<CallArcEstimate> sest::estimateCallArcFrequencies(
    const TranslationUnit &Unit, const CallGraph &CG,
    const IntraEstimates &Intra, const std::vector<double> &FunctionFreqs) {
  (void)Unit;
  std::map<std::pair<const FunctionDecl *, const FunctionDecl *>,
           CallArcEstimate>
      Arcs;
  for (const CallSiteInfo &S : CG.sites()) {
    if (S.isIndirect())
      continue;
    CallArcEstimate &A = Arcs[{S.Caller, S.Callee}];
    A.Caller = S.Caller;
    A.Callee = S.Callee;
    A.Frequency += Intra.localSiteFrequency(S) *
                   FunctionFreqs[S.Caller->functionId()];
    A.NumSites += 1;
  }
  std::vector<CallArcEstimate> Out;
  Out.reserve(Arcs.size());
  for (auto &[Key, A] : Arcs)
    Out.push_back(A);
  std::sort(Out.begin(), Out.end(),
            [](const CallArcEstimate &A, const CallArcEstimate &B) {
              if (A.Frequency != B.Frequency)
                return A.Frequency > B.Frequency;
              // Deterministic tie-break by ids.
              if (A.Caller->functionId() != B.Caller->functionId())
                return A.Caller->functionId() < B.Caller->functionId();
              return A.Callee->functionId() < B.Callee->functionId();
            });
  return Out;
}

std::vector<double> sest::estimateCallSiteFrequencies(
    const TranslationUnit &Unit, const CallGraph &CG,
    const IntraEstimates &Intra, const std::vector<double> &FunctionFreqs) {
  std::vector<double> Out(Unit.NumCallSites, -1.0);
  for (const CallSiteInfo &S : CG.sites()) {
    if (S.isIndirect())
      continue; // omitted, §5.3
    double Local = Intra.localSiteFrequency(S);
    Out[S.CallSiteId] = Local * FunctionFreqs[S.Caller->functionId()];
  }
  return Out;
}

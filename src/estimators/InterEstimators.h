//===- estimators/InterEstimators.h - Inter-procedural estimates -*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Inter-procedural frequency estimation (paper §4.3 and §5.2): given
/// per-function basic-block estimates (normalized to one entry), combine
/// them with the call graph to estimate how often each function is
/// invoked, and from that, how often each call site executes.
///
/// The simple predictors of §4.3:
///  - *call_site*: a function's count is the sum of the (local) block
///    counts of its call sites;
///  - *direct*: call_site, with directly-recursive functions multiplied
///    by 5;
///  - *all_rec*: every function in a recursive SCC multiplied by 5;
///  - *all_rec2*: all_rec's counts rescale the block counts, then the
///    algorithm is reapplied.
///
/// The Markov model of §5.2: functions are states, arcs carry the local
/// frequency of their call sites (arcs between the same pair merged),
/// main has entry frequency 1, and the system f = e + Wᵀf is solved.
/// Function pointers go through a synthetic *pointer node* whose outgoing
/// arcs are weighted by static address-of counts (§5.2.1). Recursion can
/// make the system "numerically ill-formed" (§5.2.2); the repair ladder
/// is exactly the paper's: direct self-arcs > 1 reset to 0.8, then
/// per-SCC subproblems with an artificial main (inflow m/n per entry), a
/// solution ceiling, and iterative scaling of SCC arc probabilities.
///
//===----------------------------------------------------------------------===//

#ifndef ESTIMATORS_INTERESTIMATORS_H
#define ESTIMATORS_INTERESTIMATORS_H

#include "callgraph/CallGraph.h"
#include "cfg/Cfg.h"
#include "estimators/BranchPrediction.h"
#include "lang/Ast.h"
#include "support/SparseMarkov.h"

#include <vector>

namespace sest {

/// Per-program intra-procedural block estimates, normalized so each
/// function's entry executes once. Indexed [function id][block id];
/// builtins/undefined functions have empty rows.
struct IntraEstimates {
  std::vector<std::vector<double>> Blocks;
  /// CFG-level branch predictions computed alongside the block
  /// estimates (indexed by function id; default-constructed entries for
  /// builtins). Prediction runs once per function per configuration;
  /// later passes (arc estimates, accuracy attribution) reuse these
  /// instead of re-predicting.
  std::vector<FunctionBranchPredictions> Predictions;

  /// The local (per-entry) frequency of the block containing \p Site.
  double localSiteFrequency(const CallSiteInfo &Site) const {
    const auto &Row = Blocks[Site.Caller->functionId()];
    if (Site.Block->id() >= Row.size())
      return 0.0;
    return Row[Site.Block->id()];
  }
};

/// The simple inter-procedural predictors of §4.3.
enum class InterEstimatorKind {
  CallSite,
  Direct,
  AllRec,
  AllRec2,
  Markov,
};

/// Name for table output ("call-site", "direct", ...).
const char *interEstimatorName(InterEstimatorKind K);

/// Tuning for the inter-procedural estimators.
struct InterEstimatorConfig {
  /// Multiplier applied to recursive functions by direct/all_rec (the
  /// paper's 5).
  double RecursionFactor = 5.0;
  /// Self-arc probability used when a recursive arc exceeds 1 (§5.2.2).
  double RecursiveArcProbability = 0.8;
  /// Ceiling on SCC subproblem solutions ("after some experimentation,
  /// we chose a ceiling of 5").
  double SccCeiling = 5.0;
  /// Factor for the iterative scale-down of SCC arc probabilities.
  double SccScale = 0.9;
  unsigned MaxSccRepairIterations = 200;
  /// Which linear-solver tier runs the call-graph flow equation (whole
  /// graph and §5.2.2 subproblems). Sparse condenses into SCCs and
  /// solves near-linearly; Dense is the original whole-matrix Gaussian
  /// elimination, kept as the differential oracle. The repair ladder is
  /// identical on both tiers.
  MarkovSolverKind Solver = MarkovSolverKind::Sparse;
};

/// Estimates the invocation frequency of every function (indexed by
/// function id; main = 1 for Markov, call-site-sum otherwise). Builtins
/// participate as callees of direct arcs but have no outgoing arcs.
std::vector<double> estimateFunctionFrequencies(
    InterEstimatorKind Kind, const TranslationUnit &Unit,
    const CallGraph &CG, const IntraEstimates &Intra,
    const InterEstimatorConfig &Config = {});

/// Global call-site frequency estimates: local site frequency times the
/// caller's estimated invocation count (§5.3). Returns one entry per
/// call-site id; indirect sites get -1 ("it is difficult or impossible
/// to inline calls through pointers, so we omit them").
std::vector<double>
estimateCallSiteFrequencies(const TranslationUnit &Unit, const CallGraph &CG,
                            const IntraEstimates &Intra,
                            const std::vector<double> &FunctionFreqs);

/// One estimated call-graph arc (direct arcs only; sites between the
/// same pair merged, as in the Markov model).
struct CallArcEstimate {
  const FunctionDecl *Caller = nullptr;
  const FunctionDecl *Callee = nullptr;
  /// Estimated global traversal frequency of the arc.
  double Frequency = 0;
  /// Number of call sites merged into this arc.
  unsigned NumSites = 0;
};

/// Whole-program call-graph arc estimates (the abstract's "arc ...
/// frequency estimates for the entire program" at the call-graph level):
/// per (caller, callee) pair, the summed global frequencies of its
/// direct call sites. Sorted by descending frequency.
std::vector<CallArcEstimate>
estimateCallArcFrequencies(const TranslationUnit &Unit, const CallGraph &CG,
                           const IntraEstimates &Intra,
                           const std::vector<double> &FunctionFreqs);

} // namespace sest

#endif // ESTIMATORS_INTERESTIMATORS_H

//===- estimators/LoopBounds.cpp - Constant trip-count detection -----------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "estimators/LoopBounds.h"

#include "lang/ConstFold.h"

#include <algorithm>
#include <cmath>

using namespace sest;

namespace {

/// The variable declared/assigned by the for-initializer, with its
/// constant initial value.
struct Induction {
  const VarDecl *Var = nullptr;
  int64_t Start = 0;
};

std::optional<Induction> initInfo(const Stmt *Init) {
  if (!Init)
    return std::nullopt;
  if (const auto *D = stmtDynCast<DeclStmt>(Init)) {
    const VarDecl *V = D->var();
    if (!V->init() || !V->type()->isIntegral())
      return std::nullopt;
    auto C = foldIntConstant(V->init());
    if (!C)
      return std::nullopt;
    return Induction{V, *C};
  }
  if (const auto *E = stmtDynCast<ExprStmt>(Init)) {
    const auto *A = exprDynCast<AssignExpr>(E->expr());
    if (!A || A->compoundOp())
      return std::nullopt;
    const auto *Ref = exprDynCast<DeclRefExpr>(A->lhs());
    if (!Ref)
      return std::nullopt;
    const auto *V = declDynCast<VarDecl>(Ref->decl());
    if (!V || !V->type()->isIntegral())
      return std::nullopt;
    auto C = foldIntConstant(A->rhs());
    if (!C)
      return std::nullopt;
    return Induction{V, *C};
  }
  return std::nullopt;
}

/// Matches "V op Const" or "Const op V"; normalizes so V is on the left.
struct Bound {
  BinaryOp Op;
  int64_t Limit;
};

std::optional<Bound> boundInfo(const Expr *Cond, const VarDecl *V) {
  const auto *B = exprDynCast<BinaryExpr>(Cond);
  if (!B || !isComparisonOp(B->op()))
    return std::nullopt;

  auto IsVar = [V](const Expr *E) {
    const auto *Ref = exprDynCast<DeclRefExpr>(E);
    return Ref && Ref->decl() == static_cast<const Decl *>(V);
  };

  if (IsVar(B->lhs())) {
    auto C = foldIntConstant(B->rhs());
    if (!C)
      return std::nullopt;
    return Bound{B->op(), *C};
  }
  if (IsVar(B->rhs())) {
    auto C = foldIntConstant(B->lhs());
    if (!C)
      return std::nullopt;
    // "C op V"  ≡  "V mirrored-op C".
    BinaryOp Mirrored;
    switch (B->op()) {
    case BinaryOp::Lt:
      Mirrored = BinaryOp::Gt;
      break;
    case BinaryOp::Le:
      Mirrored = BinaryOp::Ge;
      break;
    case BinaryOp::Gt:
      Mirrored = BinaryOp::Lt;
      break;
    case BinaryOp::Ge:
      Mirrored = BinaryOp::Le;
      break;
    default:
      return std::nullopt;
    }
    return Bound{Mirrored, *C};
  }
  return std::nullopt;
}

/// The constant signed step applied to V by the for-step expression.
std::optional<int64_t> stepInfo(const Expr *Step, const VarDecl *V) {
  auto IsVar = [V](const Expr *E) {
    const auto *Ref = exprDynCast<DeclRefExpr>(E);
    return Ref && Ref->decl() == static_cast<const Decl *>(V);
  };
  if (const auto *U = exprDynCast<UnaryExpr>(Step)) {
    if (!IsVar(U->operand()))
      return std::nullopt;
    switch (U->op()) {
    case UnaryOp::PreInc:
    case UnaryOp::PostInc:
      return 1;
    case UnaryOp::PreDec:
    case UnaryOp::PostDec:
      return -1;
    default:
      return std::nullopt;
    }
  }
  if (const auto *A = exprDynCast<AssignExpr>(Step)) {
    if (!IsVar(A->lhs()) || !A->compoundOp())
      return std::nullopt;
    auto C = foldIntConstant(A->rhs());
    if (!C)
      return std::nullopt;
    if (*A->compoundOp() == BinaryOp::Add)
      return *C;
    if (*A->compoundOp() == BinaryOp::Sub)
      return -*C;
  }
  return std::nullopt;
}

/// True when any statement below \p S writes \p V.
bool bodyWritesVar(const Stmt *S, const VarDecl *V) {
  if (!S)
    return false;

  auto ExprWrites = [V](const Expr *E, auto &&Self) -> bool {
    if (!E)
      return false;
    auto IsVar = [V](const Expr *X) {
      const auto *Ref = exprDynCast<DeclRefExpr>(X);
      return Ref && Ref->decl() == static_cast<const Decl *>(V);
    };
    switch (E->kind()) {
    case ExprKind::Assign: {
      const auto *A = exprCast<AssignExpr>(E);
      if (IsVar(A->lhs()))
        return true;
      return Self(A->lhs(), Self) || Self(A->rhs(), Self);
    }
    case ExprKind::Unary: {
      const auto *U = exprCast<UnaryExpr>(E);
      bool Mutating = U->op() == UnaryOp::PreInc ||
                      U->op() == UnaryOp::PreDec ||
                      U->op() == UnaryOp::PostInc ||
                      U->op() == UnaryOp::PostDec;
      // Taking the address of the induction variable may alias it.
      bool Escapes = U->op() == UnaryOp::AddrOf && IsVar(U->operand());
      if ((Mutating && IsVar(U->operand())) || Escapes)
        return true;
      return Self(U->operand(), Self);
    }
    case ExprKind::Binary: {
      const auto *B = exprCast<BinaryExpr>(E);
      return Self(B->lhs(), Self) || Self(B->rhs(), Self);
    }
    case ExprKind::Conditional: {
      const auto *C = exprCast<ConditionalExpr>(E);
      return Self(C->cond(), Self) || Self(C->trueExpr(), Self) ||
             Self(C->falseExpr(), Self);
    }
    case ExprKind::Call: {
      const auto *C = exprCast<CallExpr>(E);
      for (const Expr *A : C->args())
        if (Self(A, Self))
          return true;
      return !C->directCallee() && Self(C->callee(), Self);
    }
    case ExprKind::Index: {
      const auto *I = exprCast<IndexExpr>(E);
      return Self(I->base(), Self) || Self(I->index(), Self);
    }
    case ExprKind::Member:
      return Self(exprCast<MemberExpr>(E)->base(), Self);
    case ExprKind::Cast:
      return Self(exprCast<CastExpr>(E)->operand(), Self);
    default:
      return false;
    }
  };

  switch (S->kind()) {
  case StmtKind::Expr:
    return ExprWrites(stmtCast<ExprStmt>(S)->expr(), ExprWrites);
  case StmtKind::Decl: {
    const VarDecl *D = stmtCast<DeclStmt>(S)->var();
    return D->init() && ExprWrites(D->init(), ExprWrites);
  }
  case StmtKind::Compound:
    for (const Stmt *C : stmtCast<CompoundStmt>(S)->body())
      if (bodyWritesVar(C, V))
        return true;
    return false;
  case StmtKind::If: {
    const auto *I = stmtCast<IfStmt>(S);
    return ExprWrites(I->cond(), ExprWrites) ||
           bodyWritesVar(I->thenStmt(), V) ||
           bodyWritesVar(I->elseStmt(), V);
  }
  case StmtKind::While: {
    const auto *W = stmtCast<WhileStmt>(S);
    return ExprWrites(W->cond(), ExprWrites) || bodyWritesVar(W->body(), V);
  }
  case StmtKind::DoWhile: {
    const auto *D = stmtCast<DoWhileStmt>(S);
    return ExprWrites(D->cond(), ExprWrites) || bodyWritesVar(D->body(), V);
  }
  case StmtKind::For: {
    const auto *F = stmtCast<ForStmt>(S);
    return bodyWritesVar(F->init(), V) ||
           (F->cond() && ExprWrites(F->cond(), ExprWrites)) ||
           (F->step() && ExprWrites(F->step(), ExprWrites)) ||
           bodyWritesVar(F->body(), V);
  }
  case StmtKind::Switch: {
    const auto *Sw = stmtCast<SwitchStmt>(S);
    return ExprWrites(Sw->cond(), ExprWrites) ||
           bodyWritesVar(Sw->body(), V);
  }
  case StmtKind::Return: {
    const auto *R = stmtCast<ReturnStmt>(S);
    return R->value() && ExprWrites(R->value(), ExprWrites);
  }
  default:
    return false;
  }
}

} // namespace

std::optional<double> sest::constantTripCount(const ForStmt *S,
                                              double MaxTrips) {
  if (!S->cond() || !S->step())
    return std::nullopt;
  auto Init = initInfo(S->init());
  if (!Init)
    return std::nullopt;
  auto B = boundInfo(S->cond(), Init->Var);
  if (!B)
    return std::nullopt;
  auto Step = stepInfo(S->step(), Init->Var);
  if (!Step || *Step == 0)
    return std::nullopt;
  if (bodyWritesVar(S->body(), Init->Var))
    return std::nullopt;

  // Normalize everything to an upward count.
  int64_t Start = Init->Start;
  int64_t Limit = B->Limit;
  int64_t Stride = *Step;
  BinaryOp Op = B->Op;
  if (Stride < 0) {
    // "for (i = hi; i > lo; i -= s)"  ≡  count from -hi up to -lo.
    Start = -Start;
    Limit = -Limit;
    Stride = -Stride;
    if (Op == BinaryOp::Gt)
      Op = BinaryOp::Lt;
    else if (Op == BinaryOp::Ge)
      Op = BinaryOp::Le;
    else
      return std::nullopt; // "i < lo" with a negative step: not counted
  } else if (Op != BinaryOp::Lt && Op != BinaryOp::Le) {
    return std::nullopt; // "i > hi" with a positive step: not counted
  }

  int64_t Span = Limit - Start + (Op == BinaryOp::Le ? 1 : 0);
  if (Span <= 0)
    return 0.0;
  double Trips = std::ceil(static_cast<double>(Span) /
                           static_cast<double>(Stride));
  return std::min(Trips, MaxTrips);
}

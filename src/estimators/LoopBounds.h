//===- estimators/LoopBounds.h - Constant trip-count detection --*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constant loop-bound detection. The paper observes that its benchmark
/// programs "fall roughly into two categories: numerical programs with
/// simple control flow, and others with complex loop behavior. In the
/// numerical category, it is often possible to estimate the iteration
/// counts of loops accurately" (§4.1) — but still used the fixed count
/// of 5 throughout. This optional refinement recovers the exact trip
/// count of counted for-loops of the form
///
///   for (i = C0; i < C1; i += S) ...     (also <=, >, >=, ++, --)
///
/// when C0, C1 and S are compile-time constants and the body never
/// writes the induction variable. Enabled via
/// AstEstimatorConfig::UseConstantLoopBounds and
/// BranchPredictorConfig::UseConstantLoopBounds; the ablation bench
/// measures its effect.
///
//===----------------------------------------------------------------------===//

#ifndef ESTIMATORS_LOOPBOUNDS_H
#define ESTIMATORS_LOOPBOUNDS_H

#include "lang/Ast.h"

#include <optional>

namespace sest {

/// The number of body executions of \p S per loop entry, when it is a
/// counted for-loop with constant bounds whose induction variable is not
/// modified by the body. Returns nullopt otherwise. The result is capped
/// at \p MaxTrips.
std::optional<double> constantTripCount(const ForStmt *S,
                                        double MaxTrips = 4096.0);

} // namespace sest

#endif // ESTIMATORS_LOOPBOUNDS_H

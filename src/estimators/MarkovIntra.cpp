//===- estimators/MarkovIntra.cpp - Markov CFG frequencies -----------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "estimators/MarkovIntra.h"

#include "obs/EventLog.h"
#include "obs/Telemetry.h"
#include "support/LinearSystem.h"
#include "support/SparseMarkov.h"

#include <cmath>

using namespace sest;

namespace {

/// Largest absolute defect of f = e + Pᵀf — how exactly the linear solve
/// satisfies the Markov flow equation (0 for an exact solve; grows with
/// conditioning). Recorded as a telemetry histogram.
double markovResidual(const Matrix &P, const std::vector<double> &Entry,
                      const std::vector<double> &F) {
  double Worst = 0.0;
  for (size_t I = 0; I < F.size(); ++I) {
    double Flow = Entry[I];
    for (size_t J = 0; J < F.size(); ++J)
      Flow += P.at(J, I) * F[J];
    Worst = std::max(Worst, std::fabs(F[I] - Flow));
  }
  return Worst;
}

/// The same defect computed from the arc list in O(E).
double sparseResidual(const std::vector<SparseArc> &Arcs,
                      const std::vector<double> &Eff,
                      const std::vector<double> &Entry,
                      const std::vector<double> &F) {
  std::vector<double> Flow = Entry;
  for (size_t I = 0; I < Arcs.size(); ++I)
    Flow[Arcs[I].To] += Eff[I] * F[Arcs[I].From];
  double Worst = 0.0;
  for (size_t I = 0; I < F.size(); ++I)
    Worst = std::max(Worst, std::fabs(F[I] - Flow[I]));
  return Worst;
}

void fillUniformFallback(const Cfg &G, MarkovIntraResult &Result) {
  obs::counterAdd("estimators.markov_intra.fallback_uniform");
  Result.BlockFrequencies.assign(G.size(), 1.0);
  Result.ArcFrequencies.assign(G.size(), {});
  for (const auto &B : G.blocks())
    Result.ArcFrequencies[B->id()].assign(B->successors().size(), 1.0);
}

/// The original dense path: whole-matrix Gaussian elimination with the
/// global repair loop (every transition probability rescaled, full
/// re-factorization per attempt). Kept as the differential oracle for
/// the sparse tier.
MarkovIntraResult solveDense(const Cfg &G, const MarkovIntraConfig &Config,
                             std::vector<std::vector<double>> Slot) {
  const size_t N = G.size();
  MarkovIntraResult Result;
  Result.BlockFrequencies.assign(N, 1.0);

  std::vector<double> Entry(N, 0.0);
  Entry[G.entry()->id()] = 1.0;

  for (unsigned Attempt = 0; Attempt <= Config.MaxRepairIterations;
       ++Attempt) {
    // Aggregate per-slot probabilities into a dense state matrix.
    Matrix P(N, N);
    for (const auto &B : G.blocks()) {
      const auto &Succs = B->successors();
      for (size_t S = 0; S < Succs.size(); ++S)
        P.at(B->id(), Succs[S]->id()) += Slot[B->id()][S];
    }
    auto F = solveMarkovFrequencies(P, Entry);
    obs::counterAdd("support.linsys.solves");
    obs::histRecord("support.linsys.dim", static_cast<double>(N));
    if (!F)
      obs::counterAdd("support.linsys.singular");
    if (F) {
      bool Sane = true;
      for (double V : *F)
        if (!(V > -1e-9) || V > 1e15)
          Sane = false;
      if (Sane) {
        for (double &V : *F)
          if (V < 0)
            V = 0;
        obs::counterAdd("estimators.markov_intra.solves");
        obs::counterAdd("estimators.markov_intra.iterations", Attempt + 1);
        if (obs::telemetryActive())
          obs::histRecord("estimators.markov_intra.residual",
                          markovResidual(P, Entry, *F));
        if (Attempt > 0)
          obs::counterAdd("estimators.markov_intra.repaired");
        Result.BlockFrequencies = std::move(*F);
        Result.ArcFrequencies.resize(N);
        for (const auto &B : G.blocks()) {
          auto &Arcs = Result.ArcFrequencies[B->id()];
          Arcs.resize(B->successors().size());
          for (size_t S = 0; S < Arcs.size(); ++S)
            Arcs[S] =
                Result.BlockFrequencies[B->id()] * Slot[B->id()][S];
        }
        return Result;
      }
    }
    // Singular (or insane): a probability-1 cycle. Scale every
    // transition probability down so flow leaks and the system becomes
    // solvable — the same trick the paper applies to stubborn call-graph
    // SCCs (§5.2.2).
    Result.Repaired = true;
    for (auto &Row : Slot)
      for (double &V : Row)
        V *= Config.SingularScale;
  }

  // Fall back to uniform frequencies.
  fillUniformFallback(G, Result);
  return Result;
}

/// The default tier: SCC condensation, O(E) propagation through acyclic
/// components, small dense blocks for cyclic ones, repair per SCC.
MarkovIntraResult solveSparse(const Cfg &G, const MarkovIntraConfig &Config,
                              const std::vector<std::vector<double>> &Slot) {
  const size_t N = G.size();
  MarkovIntraResult Result;

  // Arcs in (block id, successor slot) order — the same order the arc
  // frequency table is laid out in, so EffectiveProb maps back directly.
  std::vector<SparseArc> Arcs;
  Arcs.reserve(G.countArcSlots());
  for (const auto &B : G.blocks()) {
    const auto &Succs = B->successors();
    for (size_t S = 0; S < Succs.size(); ++S)
      Arcs.push_back({B->id(), Succs[S]->id(), Slot[B->id()][S]});
  }
  std::vector<double> Entry(N, 0.0);
  Entry[G.entry()->id()] = 1.0;

  SparseMarkovConfig SC;
  SC.SingularScale = Config.SingularScale;
  SC.MaxRepairIterations = Config.MaxRepairIterations;
  SparseMarkovResult R = solveSparseMarkov(N, Arcs, Entry, SC);

  obs::counterAdd("support.sparse.solves");
  obs::histRecord("support.sparse.dim", static_cast<double>(N));
  obs::histRecord("support.sparse.scc_count",
                  static_cast<double>(R.Stats.SccCount));
  obs::histRecord("support.sparse.max_scc_size",
                  static_cast<double>(R.Stats.MaxSccSize));
  if (R.Stats.CyclicSccCount) {
    obs::counterAdd("support.sparse.dense_subsolves",
                    static_cast<double>(R.Stats.CyclicSccCount));
    obs::histRecord("support.sparse.dense_dim",
                    static_cast<double>(R.Stats.DenseDim));
  }
  if (R.Stats.RepairIterations)
    obs::counterAdd("support.sparse.repairs",
                    static_cast<double>(R.Stats.RepairIterations));
  obs::gaugeMax("support.sparse.dim.high_water", static_cast<double>(N));
  if (R.Stats.DenseDim)
    obs::gaugeMax("support.sparse.dense_dim.high_water",
                  static_cast<double>(R.Stats.DenseDim));
  if (R.Stats.MaxSccSize)
    obs::gaugeMax("support.sparse.max_scc.high_water",
                  static_cast<double>(R.Stats.MaxSccSize));

  // Provenance: which block cycles needed singular-repair scaling. The
  // repaired component is named by its smallest block id, which is a
  // real block of this function's CFG.
  if (!R.Stats.Repairs.empty() && obs::eventLogActive()) {
    std::string Fn =
        G.function() ? std::string(G.function()->name()) : "<cfg>";
    for (const SparseSccRepair &Rep : R.Stats.Repairs)
      obs::logEvent("solver.scc.repair", obs::provBlock(Fn, Rep.Node),
                    {obs::attr("scope", "intra"), obs::attr("function", Fn),
                     obs::attr("size", static_cast<double>(Rep.Size)),
                     obs::attr("iterations",
                               static_cast<double>(Rep.Iterations))});
  }

  Result.Repaired = R.Stats.Repaired;
  if (!R.Frequencies) {
    // The system was singular and stayed that way past the repair
    // budget (dense reports the same flag on this path).
    Result.Repaired = true;
    obs::counterAdd("support.sparse.singular");
    fillUniformFallback(G, Result);
    return Result;
  }

  obs::counterAdd("estimators.markov_intra.solves");
  obs::counterAdd("estimators.markov_intra.iterations",
                  R.Stats.RepairIterations + 1);
  if (R.Stats.Repaired)
    obs::counterAdd("estimators.markov_intra.repaired");
  if (obs::telemetryActive())
    obs::histRecord(
        "estimators.markov_intra.residual",
        sparseResidual(Arcs, R.EffectiveProb, Entry, *R.Frequencies));

  Result.BlockFrequencies = std::move(*R.Frequencies);
  for (double &V : Result.BlockFrequencies)
    if (V < 0)
      V = 0;
  Result.ArcFrequencies.resize(N);
  size_t ArcIdx = 0;
  for (const auto &B : G.blocks()) {
    auto &Out = Result.ArcFrequencies[B->id()];
    Out.resize(B->successors().size());
    for (size_t S = 0; S < Out.size(); ++S, ++ArcIdx)
      Out[S] =
          Result.BlockFrequencies[B->id()] * R.EffectiveProb[ArcIdx];
  }
  return Result;
}

} // namespace

std::vector<std::vector<double>>
sest::transitionProbabilities(const Cfg &G,
                              const FunctionBranchPredictions &P) {
  std::vector<std::vector<double>> Probs(G.size());
  for (const auto &B : G.blocks()) {
    auto &Row = Probs[B->id()];
    switch (B->terminator()) {
    case TerminatorKind::Goto:
      Row = {1.0};
      break;
    case TerminatorKind::CondBranch: {
      auto It = P.ByBlock.find(B->id());
      double ProbTrue = It != P.ByBlock.end() ? It->second.ProbTrue : 0.5;
      Row = {ProbTrue, 1.0 - ProbTrue};
      break;
    }
    case TerminatorKind::Switch: {
      auto It = P.SwitchProbs.find(B->id());
      if (It != P.SwitchProbs.end())
        Row = It->second;
      else
        Row.assign(B->successors().size(),
                   1.0 / static_cast<double>(B->successors().size()));
      break;
    }
    case TerminatorKind::Return:
    case TerminatorKind::Unreachable:
      break; // no successors
    }
  }
  return Probs;
}

MarkovIntraResult
sest::markovBlockFrequencies(const Cfg &G, const MarkovIntraConfig &Config,
                             const FunctionBranchPredictions *Predictions) {
  FunctionBranchPredictions Local;
  if (!Predictions) {
    BranchPredictor Predictor(Config.Branch);
    Local = Predictor.predictFunction(G);
    Predictions = &Local;
  }
  std::vector<std::vector<double>> Slot =
      transitionProbabilities(G, *Predictions);
  return Config.Solver == MarkovSolverKind::Dense
             ? solveDense(G, Config, std::move(Slot))
             : solveSparse(G, Config, Slot);
}

//===- estimators/MarkovIntra.cpp - Markov CFG frequencies -----------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "estimators/MarkovIntra.h"

#include "obs/Telemetry.h"
#include "support/LinearSystem.h"

#include <cmath>

using namespace sest;

namespace {

/// Largest absolute defect of f = e + Pᵀf — how exactly the linear solve
/// satisfies the Markov flow equation (0 for an exact solve; grows with
/// conditioning). Recorded as a telemetry histogram.
double markovResidual(const Matrix &P, const std::vector<double> &Entry,
                      const std::vector<double> &F) {
  double Worst = 0.0;
  for (size_t I = 0; I < F.size(); ++I) {
    double Flow = Entry[I];
    for (size_t J = 0; J < F.size(); ++J)
      Flow += P.at(J, I) * F[J];
    Worst = std::max(Worst, std::fabs(F[I] - Flow));
  }
  return Worst;
}

} // namespace

std::vector<std::vector<double>>
sest::transitionProbabilities(const Cfg &G,
                              const FunctionBranchPredictions &P) {
  std::vector<std::vector<double>> Probs(G.size());
  for (const auto &B : G.blocks()) {
    auto &Row = Probs[B->id()];
    switch (B->terminator()) {
    case TerminatorKind::Goto:
      Row = {1.0};
      break;
    case TerminatorKind::CondBranch: {
      auto It = P.ByBlock.find(B->id());
      double ProbTrue = It != P.ByBlock.end() ? It->second.ProbTrue : 0.5;
      Row = {ProbTrue, 1.0 - ProbTrue};
      break;
    }
    case TerminatorKind::Switch: {
      auto It = P.SwitchProbs.find(B->id());
      if (It != P.SwitchProbs.end())
        Row = It->second;
      else
        Row.assign(B->successors().size(),
                   1.0 / static_cast<double>(B->successors().size()));
      break;
    }
    case TerminatorKind::Return:
    case TerminatorKind::Unreachable:
      break; // no successors
    }
  }
  return Probs;
}

MarkovIntraResult
sest::markovBlockFrequencies(const Cfg &G, const MarkovIntraConfig &Config) {
  BranchPredictor Predictor(Config.Branch);
  FunctionBranchPredictions Pred = Predictor.predictFunction(G);
  std::vector<std::vector<double>> Slot = transitionProbabilities(G, Pred);

  const size_t N = G.size();
  MarkovIntraResult Result;
  Result.BlockFrequencies.assign(N, 1.0);

  std::vector<double> Entry(N, 0.0);
  Entry[G.entry()->id()] = 1.0;

  for (unsigned Attempt = 0; Attempt <= Config.MaxRepairIterations;
       ++Attempt) {
    // Aggregate per-slot probabilities into a dense state matrix.
    Matrix P(N, N);
    for (const auto &B : G.blocks()) {
      const auto &Succs = B->successors();
      for (size_t S = 0; S < Succs.size(); ++S)
        P.at(B->id(), Succs[S]->id()) += Slot[B->id()][S];
    }
    auto F = solveMarkovFrequencies(P, Entry);
    obs::counterAdd("support.linsys.solves");
    obs::histRecord("support.linsys.dim", static_cast<double>(N));
    if (!F)
      obs::counterAdd("support.linsys.singular");
    if (F) {
      bool Sane = true;
      for (double V : *F)
        if (!(V > -1e-9) || V > 1e15)
          Sane = false;
      if (Sane) {
        for (double &V : *F)
          if (V < 0)
            V = 0;
        obs::counterAdd("estimators.markov_intra.solves");
        obs::counterAdd("estimators.markov_intra.iterations", Attempt + 1);
        if (obs::telemetryActive())
          obs::histRecord("estimators.markov_intra.residual",
                          markovResidual(P, Entry, *F));
        if (Attempt > 0)
          obs::counterAdd("estimators.markov_intra.repaired");
        Result.BlockFrequencies = std::move(*F);
        Result.ArcFrequencies.resize(N);
        for (const auto &B : G.blocks()) {
          auto &Arcs = Result.ArcFrequencies[B->id()];
          Arcs.resize(B->successors().size());
          for (size_t S = 0; S < Arcs.size(); ++S)
            Arcs[S] =
                Result.BlockFrequencies[B->id()] * Slot[B->id()][S];
        }
        return Result;
      }
    }
    // Singular (or insane): a probability-1 cycle. Scale every
    // transition probability down so flow leaks and the system becomes
    // solvable — the same trick the paper applies to stubborn call-graph
    // SCCs (§5.2.2).
    Result.Repaired = true;
    for (auto &Row : Slot)
      for (double &V : Row)
        V *= Config.SingularScale;
  }

  // Fall back to uniform frequencies.
  obs::counterAdd("estimators.markov_intra.fallback_uniform");
  Result.BlockFrequencies.assign(N, 1.0);
  Result.ArcFrequencies.assign(N, {});
  for (const auto &B : G.blocks())
    Result.ArcFrequencies[B->id()].assign(B->successors().size(), 1.0);
  return Result;
}

//===- estimators/MarkovIntra.h - Markov CFG frequencies --------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The intra-procedural Markov model (paper §5.1, Figures 6-7): control
/// flow within a function is a Markov process whose states are basic
/// blocks and whose transition probabilities come from branch prediction.
/// With the entry frequency fixed at 1, block frequencies are the
/// solution of the linear system f = e + Pᵀf.
///
/// Unlike the AST estimators, this model reflects break / continue /
/// goto / return exactly: "The solution to the equations yields a test
/// count of only 2.78, because the return within the loop reduces the
/// flow back to the top."
///
//===----------------------------------------------------------------------===//

#ifndef ESTIMATORS_MARKOVINTRA_H
#define ESTIMATORS_MARKOVINTRA_H

#include "cfg/Cfg.h"
#include "estimators/BranchPrediction.h"
#include "support/SparseMarkov.h"

#include <vector>

namespace sest {

/// Configuration for the intra-procedural Markov solver.
struct MarkovIntraConfig {
  BranchPredictorConfig Branch;
  /// Which linear-solver tier runs the flow equation. Sparse condenses
  /// the CFG into SCCs and solves near-linearly; Dense is the original
  /// whole-matrix Gaussian elimination, kept as the differential oracle.
  MarkovSolverKind Solver = MarkovSolverKind::Sparse;
  /// When the system is singular (a probability-1 cycle, e.g. "for(;;)"
  /// with no break), cycle probabilities are repeatedly scaled by this
  /// factor until it solves. The sparse solver scales only the offending
  /// SCC's internal arcs; the dense solver scales every transition.
  double SingularScale = 0.9;
  unsigned MaxRepairIterations = 60;
};

/// Result of the Markov intra-procedural estimate.
struct MarkovIntraResult {
  /// Frequency per block id, normalized to entry = 1.
  std::vector<double> BlockFrequencies;
  /// Probability-weighted flow per (block, successor slot).
  std::vector<std::vector<double>> ArcFrequencies;
  /// True when the original system was singular and required scaling.
  bool Repaired = false;
};

/// Solves the Markov system for \p G. Never fails: a persistently
/// singular system falls back to uniform frequencies.
///
/// \p Predictions, when non-null, supplies precomputed branch
/// predictions for \p G (must match Config.Branch); otherwise the
/// predictor runs internally. The pipeline predicts each function once
/// per configuration and shares the result across every pass.
MarkovIntraResult
markovBlockFrequencies(const Cfg &G, const MarkovIntraConfig &Config,
                       const FunctionBranchPredictions *Predictions = nullptr);

/// The per-slot transition probabilities for \p G under \p Predictions
/// (CondBranch uses ProbTrue; Switch uses SwitchProbs; Goto is 1).
std::vector<std::vector<double>>
transitionProbabilities(const Cfg &G,
                        const FunctionBranchPredictions &Predictions);

} // namespace sest

#endif // ESTIMATORS_MARKOVINTRA_H

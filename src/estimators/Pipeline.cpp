//===- estimators/Pipeline.cpp - End-to-end estimation ---------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "estimators/Pipeline.h"

#include "obs/EventLog.h"
#include "obs/Telemetry.h"

#include <atomic>
#include <memory>
#include <thread>

using namespace sest;

IntraEstimates sest::computeIntraEstimates(
    const TranslationUnit &Unit, const CfgModule &Cfgs,
    const EstimatorOptions &Options,
    const std::vector<FunctionBranchPredictions> *CachedPredictions) {
  obs::ScopedPhase Phase("estimate.intra");
  IntraEstimates Out;
  Out.Blocks.resize(Unit.Functions.size());
  Out.Predictions.resize(Unit.Functions.size());

  BranchPredictorConfig BC = Options.Branch;
  BC.LoopIterations = Options.LoopIterations;
  BranchPredictor Predictor(BC);

  // A cached prediction table is only usable when it covers every
  // function — a partial table would silently mix configurations.
  if (CachedPredictions &&
      CachedPredictions->size() != Unit.Functions.size())
    CachedPredictions = nullptr;

  const auto &All = Cfgs.all();
  // One function's estimate: predict its branches once (or reuse the
  // caller's cached tables), then run the configured intra estimator
  // against the predictions.
  auto EstimateOne = [&](size_t I) {
    const auto &[F, G] = All[I];
    obs::ScopedPhase FnPhase("estimate.intra.function", F->name());
    size_t Fid = F->functionId();
    Out.Predictions[Fid] = CachedPredictions
                               ? (*CachedPredictions)[Fid]
                               : Predictor.predictFunction(*G);
    switch (Options.Intra) {
    case IntraEstimatorKind::Loop:
    case IntraEstimatorKind::Smart: {
      AstEstimatorConfig C;
      C.Kind = Options.Intra;
      C.LoopIterations = Options.LoopIterations;
      C.Branch = BC;
      Out.Blocks[Fid] = estimateBlockFrequencies(*G, C);
      break;
    }
    case IntraEstimatorKind::Markov: {
      MarkovIntraConfig C = Options.MarkovIntra_;
      C.Branch = BC;
      Out.Blocks[Fid] =
          markovBlockFrequencies(*G, C, &Out.Predictions[Fid])
              .BlockFrequencies;
      break;
    }
    }
  };

  unsigned Jobs = Options.Jobs == 0
                      ? std::max(1u, std::thread::hardware_concurrency())
                      : Options.Jobs;
  if (Jobs <= 1 || All.size() <= 1) {
    for (size_t I = 0; I < All.size(); ++I)
      EstimateOne(I);
    return Out;
  }

  // Functions are independent: fan them over a worker pool. Each task
  // collects into private contexts (telemetry on a per-worker trace
  // track, plus the decision log); contexts are merged into the ambient
  // ones in function order, so counters, histograms, logged events, and
  // the phase tree are identical to a serial run whatever the job
  // count. With no ambient context TaskCapture skips the private
  // contexts so parallelism stays free.
  obs::TaskCapture Cap;
  std::vector<obs::TaskCapture::Slot> Slots(All.size());
  std::atomic<size_t> Next{0};
  auto Worker = [&](uint32_t Track) {
    std::string Name = "worker-" + std::to_string(Track);
    for (size_t I; (I = Next.fetch_add(1)) < All.size();)
      Cap.run(Slots[I], Track, Name, [&] { EstimateOne(I); });
  };
  std::vector<std::thread> Pool;
  unsigned N = static_cast<unsigned>(
      std::min<size_t>(Jobs, All.size()));
  Pool.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Pool.emplace_back(Worker, I + 1);
  for (std::thread &T : Pool)
    T.join();
  for (obs::TaskCapture::Slot &S : Slots)
    Cap.merge(S);
  return Out;
}

ProgramEstimate sest::estimateProgram(
    const TranslationUnit &Unit, const CfgModule &Cfgs, const CallGraph &CG,
    const EstimatorOptions &Options,
    const std::vector<FunctionBranchPredictions> *CachedPredictions) {
  obs::ScopedPhase Phase("estimate");
  ProgramEstimate Out;
  IntraEstimates Intra =
      computeIntraEstimates(Unit, Cfgs, Options, CachedPredictions);
  {
    obs::ScopedPhase InterPhase("estimate.inter",
                                interEstimatorName(Options.Inter));
    Out.FunctionEstimates = estimateFunctionFrequencies(
        Options.Inter, Unit, CG, Intra, Options.Inter_);
  }
  {
    obs::ScopedPhase SitesPhase("estimate.callsites");
    Out.CallSiteEstimates = estimateCallSiteFrequencies(
        Unit, CG, Intra, Out.FunctionEstimates);
  }
  Out.BlockEstimates = std::move(Intra.Blocks);
  Out.Predictions = std::move(Intra.Predictions);
  return Out;
}

std::vector<std::vector<double>>
sest::globalBlockEstimates(const ProgramEstimate &E) {
  std::vector<std::vector<double>> Out = E.BlockEstimates;
  for (size_t F = 0; F < Out.size(); ++F) {
    double Scale =
        F < E.FunctionEstimates.size() ? E.FunctionEstimates[F] : 0.0;
    for (double &B : Out[F])
      B *= Scale;
  }
  return Out;
}

std::vector<std::vector<std::vector<double>>>
sest::globalArcEstimates(const TranslationUnit &Unit, const CfgModule &Cfgs,
                         const ProgramEstimate &E,
                         const EstimatorOptions &Options) {
  std::vector<std::vector<std::vector<double>>> Out(
      Unit.Functions.size());
  BranchPredictorConfig BC = Options.Branch;
  BC.LoopIterations = Options.LoopIterations;
  BranchPredictor Predictor(BC);
  // Estimates from the static pipeline carry their predictions; only
  // profile-derived estimates need a fresh prediction pass.
  bool HavePred = E.Predictions.size() == Unit.Functions.size();
  for (const auto &[F, G] : Cfgs.all()) {
    size_t Fid = F->functionId();
    FunctionBranchPredictions Pred =
        HavePred ? E.Predictions[Fid] : Predictor.predictFunction(*G);
    std::vector<std::vector<double>> Probs =
        transitionProbabilities(*G, Pred);
    double Scale = E.FunctionEstimates[Fid];
    auto &Rows = Out[Fid];
    Rows.resize(G->size());
    for (const auto &B : G->blocks()) {
      double BlockFreq = E.BlockEstimates[Fid][B->id()] * Scale;
      auto &Arcs = Rows[B->id()];
      Arcs.resize(B->successors().size());
      for (size_t S = 0; S < Arcs.size(); ++S)
        Arcs[S] = BlockFreq * Probs[B->id()][S];
    }
  }
  return Out;
}

ProgramEstimate sest::estimateFromProfile(const Profile &P,
                                          const CallGraph &CG) {
  ProgramEstimate Out;
  Out.BlockEstimates.resize(P.Functions.size());
  Out.FunctionEstimates.assign(P.Functions.size(), 0.0);
  for (size_t F = 0; F < P.Functions.size(); ++F) {
    const FunctionProfile &FP = P.Functions[F];
    Out.FunctionEstimates[F] = FP.EntryCount;
    Out.BlockEstimates[F] = FP.BlockCounts;
    if (FP.EntryCount > 0)
      for (double &B : Out.BlockEstimates[F])
        B /= FP.EntryCount; // normalize per entry, like static estimates
  }
  Out.CallSiteEstimates = P.CallSiteCounts;
  for (const CallSiteInfo *S : CG.indirectSites())
    if (S->CallSiteId < Out.CallSiteEstimates.size())
      Out.CallSiteEstimates[S->CallSiteId] = -1.0;
  return Out;
}

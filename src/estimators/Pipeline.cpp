//===- estimators/Pipeline.cpp - End-to-end estimation ---------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "estimators/Pipeline.h"

#include "obs/Telemetry.h"

using namespace sest;

IntraEstimates sest::computeIntraEstimates(const TranslationUnit &Unit,
                                           const CfgModule &Cfgs,
                                           const EstimatorOptions &Options) {
  obs::ScopedPhase Phase("estimate.intra");
  IntraEstimates Out;
  Out.Blocks.resize(Unit.Functions.size());

  for (const auto &[F, G] : Cfgs.all()) {
    obs::ScopedPhase FnPhase("estimate.intra.function", F->name());
    switch (Options.Intra) {
    case IntraEstimatorKind::Loop:
    case IntraEstimatorKind::Smart: {
      AstEstimatorConfig C;
      C.Kind = Options.Intra;
      C.LoopIterations = Options.LoopIterations;
      C.Branch = Options.Branch;
      C.Branch.LoopIterations = Options.LoopIterations;
      Out.Blocks[F->functionId()] = estimateBlockFrequencies(*G, C);
      break;
    }
    case IntraEstimatorKind::Markov: {
      MarkovIntraConfig C = Options.MarkovIntra_;
      C.Branch = Options.Branch;
      C.Branch.LoopIterations = Options.LoopIterations;
      Out.Blocks[F->functionId()] =
          markovBlockFrequencies(*G, C).BlockFrequencies;
      break;
    }
    }
  }
  return Out;
}

ProgramEstimate sest::estimateProgram(const TranslationUnit &Unit,
                                      const CfgModule &Cfgs,
                                      const CallGraph &CG,
                                      const EstimatorOptions &Options) {
  obs::ScopedPhase Phase("estimate");
  ProgramEstimate Out;
  IntraEstimates Intra = computeIntraEstimates(Unit, Cfgs, Options);
  {
    obs::ScopedPhase InterPhase("estimate.inter",
                                interEstimatorName(Options.Inter));
    Out.FunctionEstimates = estimateFunctionFrequencies(
        Options.Inter, Unit, CG, Intra, Options.Inter_);
  }
  {
    obs::ScopedPhase SitesPhase("estimate.callsites");
    Out.CallSiteEstimates = estimateCallSiteFrequencies(
        Unit, CG, Intra, Out.FunctionEstimates);
  }
  Out.BlockEstimates = std::move(Intra.Blocks);
  return Out;
}

std::vector<std::vector<double>>
sest::globalBlockEstimates(const ProgramEstimate &E) {
  std::vector<std::vector<double>> Out = E.BlockEstimates;
  for (size_t F = 0; F < Out.size(); ++F) {
    double Scale =
        F < E.FunctionEstimates.size() ? E.FunctionEstimates[F] : 0.0;
    for (double &B : Out[F])
      B *= Scale;
  }
  return Out;
}

std::vector<std::vector<std::vector<double>>>
sest::globalArcEstimates(const TranslationUnit &Unit, const CfgModule &Cfgs,
                         const ProgramEstimate &E,
                         const EstimatorOptions &Options) {
  std::vector<std::vector<std::vector<double>>> Out(
      Unit.Functions.size());
  BranchPredictorConfig BC = Options.Branch;
  BC.LoopIterations = Options.LoopIterations;
  BranchPredictor Predictor(BC);
  for (const auto &[F, G] : Cfgs.all()) {
    size_t Fid = F->functionId();
    FunctionBranchPredictions Pred = Predictor.predictFunction(*G);
    std::vector<std::vector<double>> Probs =
        transitionProbabilities(*G, Pred);
    double Scale = E.FunctionEstimates[Fid];
    auto &Rows = Out[Fid];
    Rows.resize(G->size());
    for (const auto &B : G->blocks()) {
      double BlockFreq = E.BlockEstimates[Fid][B->id()] * Scale;
      auto &Arcs = Rows[B->id()];
      Arcs.resize(B->successors().size());
      for (size_t S = 0; S < Arcs.size(); ++S)
        Arcs[S] = BlockFreq * Probs[B->id()][S];
    }
  }
  return Out;
}

ProgramEstimate sest::estimateFromProfile(const Profile &P,
                                          const CallGraph &CG) {
  ProgramEstimate Out;
  Out.BlockEstimates.resize(P.Functions.size());
  Out.FunctionEstimates.assign(P.Functions.size(), 0.0);
  for (size_t F = 0; F < P.Functions.size(); ++F) {
    const FunctionProfile &FP = P.Functions[F];
    Out.FunctionEstimates[F] = FP.EntryCount;
    Out.BlockEstimates[F] = FP.BlockCounts;
    if (FP.EntryCount > 0)
      for (double &B : Out.BlockEstimates[F])
        B /= FP.EntryCount; // normalize per entry, like static estimates
  }
  Out.CallSiteEstimates = P.CallSiteCounts;
  for (const CallSiteInfo *S : CG.indirectSites())
    if (S->CallSiteId < Out.CallSiteEstimates.size())
      Out.CallSiteEstimates[S->CallSiteId] = -1.0;
  return Out;
}

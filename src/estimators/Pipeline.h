//===- estimators/Pipeline.h - End-to-end estimation ------------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public one-stop API: compile-time estimation of block, function
/// and call-site frequencies for a whole program, combining a chosen
/// intra-procedural estimator (loop / smart / Markov) with a chosen
/// inter-procedural estimator (call_site / direct / all_rec / all_rec2 /
/// Markov). This is the pipeline an optimizing compiler would run
/// ("analysis time similar to that of gcc's standard optimization
/// option", §2).
///
//===----------------------------------------------------------------------===//

#ifndef ESTIMATORS_PIPELINE_H
#define ESTIMATORS_PIPELINE_H

#include "callgraph/CallGraph.h"
#include "cfg/Cfg.h"
#include "estimators/AstEstimator.h"
#include "estimators/InterEstimators.h"
#include "estimators/MarkovIntra.h"
#include "profile/Profile.h"

namespace sest {

/// Full estimator configuration.
struct EstimatorOptions {
  IntraEstimatorKind Intra = IntraEstimatorKind::Smart;
  InterEstimatorKind Inter = InterEstimatorKind::Markov;
  /// Assumed loop iteration count (paper: 5).
  double LoopIterations = 5.0;
  /// Branch heuristics (probability, toggles, switch weighting).
  BranchPredictorConfig Branch;
  /// Inter-procedural knobs (recursion factor, SCC ceiling...).
  InterEstimatorConfig Inter_;
  /// Markov-intra repair knobs.
  MarkovIntraConfig MarkovIntra_;
  /// Worker threads for per-function estimation (branch prediction +
  /// intra solves are independent across functions). 1 = serial,
  /// 0 = hardware_concurrency. Results are identical for every value.
  unsigned Jobs = 1;

  /// Keeps the shared loop count consistent across sub-configs.
  void setLoopIterations(double L) {
    LoopIterations = L;
    Branch.LoopIterations = L;
    MarkovIntra_.Branch.LoopIterations = L;
  }

  /// Selects the linear-solver tier for both Markov models (sparse is
  /// the default; dense is the differential oracle).
  void setSolver(MarkovSolverKind K) {
    MarkovIntra_.Solver = K;
    Inter_.Solver = K;
  }
};

/// A complete static estimate of one program.
struct ProgramEstimate {
  /// Per-function block frequencies normalized to one entry
  /// ([function id][block id]; empty rows for builtins).
  std::vector<std::vector<double>> BlockEstimates;
  /// Estimated invocation counts per function id.
  std::vector<double> FunctionEstimates;
  /// Estimated global call-site frequencies per call-site id; -1 for
  /// omitted (indirect) sites.
  std::vector<double> CallSiteEstimates;
  /// The CFG-level branch predictions the estimate was computed with
  /// (indexed by function id; empty when the estimate did not come from
  /// the static pipeline, e.g. estimateFromProfile). Passes that need
  /// predictions (arc estimates, accuracy attribution) reuse these so
  /// prediction runs once per function per configuration.
  std::vector<FunctionBranchPredictions> Predictions;
};

/// Runs the intra-procedural estimator over every defined function.
///
/// When \p CachedPredictions is non-null (one FunctionBranchPredictions
/// per function id, as produced by a previous run with the same source
/// and branch configuration) the branch-prediction pass is skipped and
/// the cached tables are used verbatim — the analysis service's
/// branch-table cache tier feeds this. Results are bit-identical to a
/// fresh prediction pass because prediction is a pure function of the
/// CFG and the branch configuration.
IntraEstimates
computeIntraEstimates(const TranslationUnit &Unit, const CfgModule &Cfgs,
                      const EstimatorOptions &Options,
                      const std::vector<FunctionBranchPredictions>
                          *CachedPredictions = nullptr);

/// Runs the full pipeline (intra → inter → call sites).
/// \p CachedPredictions as in computeIntraEstimates.
ProgramEstimate estimateProgram(const TranslationUnit &Unit,
                                const CfgModule &Cfgs, const CallGraph &CG,
                                const EstimatorOptions &Options,
                                const std::vector<FunctionBranchPredictions>
                                    *CachedPredictions = nullptr);

/// Converts a measured (or aggregated) profile into the same shape, so
/// profiles can be scored as estimators ("profiling with alternate
/// inputs"). Block counts are renormalized per entry; indirect call
/// sites in \p CG are marked omitted for like-for-like comparison.
ProgramEstimate estimateFromProfile(const Profile &P, const CallGraph &CG);

/// Whole-program ("global") block frequencies — the abstract's "arc and
/// basic block frequency estimates for the entire program": each
/// function's per-entry block estimates scaled by its estimated
/// invocation count. Indexed like BlockEstimates.
std::vector<std::vector<double>>
globalBlockEstimates(const ProgramEstimate &E);

/// Whole-program arc frequency estimates: the probability-weighted flow
/// of every (block, successor-slot), scaled by the function's estimated
/// invocation count. Probabilities come from the branch predictor in
/// \p Options. Indexed [function id][block id][slot].
std::vector<std::vector<std::vector<double>>>
globalArcEstimates(const TranslationUnit &Unit, const CfgModule &Cfgs,
                   const ProgramEstimate &E,
                   const EstimatorOptions &Options);

} // namespace sest

#endif // ESTIMATORS_PIPELINE_H

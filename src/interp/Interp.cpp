//===- interp/Interp.cpp - Profiling interpreter ---------------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"

#include "interp/bytecode/BytecodeCompiler.h"
#include "interp/bytecode/BytecodeVM.h"
#include "obs/Telemetry.h"
#include "support/Prng.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cmath>

using namespace sest;

namespace {

/// A resolved memory location (one cell).
struct Loc {
  uint32_t Space = 0;
  int64_t Offset = 0;
};

class Interpreter {
public:
  Interpreter(const TranslationUnit &Unit, const CfgModule &Cfgs,
              const ProgramInput &Input, const InterpOptions &Options)
      : Unit(Unit), Cfgs(Cfgs), Input(Input), Options(Options),
        Rng(Input.RandSeed) {}

  RunResult run();

private:
  void flushTelemetry() const;

  //===--------------------------------------------------------------------===//
  // Failure handling (no exceptions: a sticky flag short-circuits).
  //===--------------------------------------------------------------------===//

  Value fail(const std::string &Message) {
    if (!Failed && !Exited) {
      Failed = true;
      ErrorMsg = Message;
    }
    return Value::makeInt(0);
  }

  /// A resource-limit abort: records which limit was hit and appends the
  /// run's high-water marks to the diagnostic.
  Value failLimit(RunLimit Limit, const std::string &Message) {
    if (!Failed && !Exited) {
      LimitHit = Limit;
      fail(Message + " (" + usageSummary() + ")");
    }
    return Value::makeInt(0);
  }

  std::string usageSummary() const {
    return "steps " + std::to_string(Steps) + ", call-depth high-water " +
           std::to_string(CallDepthHighWater) + ", heap high-water " +
           std::to_string(HeapHighWater) + " cells";
  }

  bool halted() const { return Failed || Exited; }

  //===--------------------------------------------------------------------===//
  // Memory
  //===--------------------------------------------------------------------===//

  struct HeapBlock {
    std::vector<Value> Cells;
    bool Freed = false;
  };

  Value *resolve(Loc L, const char *What) {
    switch (L.Space) {
    case static_cast<uint32_t>(MemSpace::Null):
      fail(std::string("null pointer ") + What);
      return nullptr;
    case static_cast<uint32_t>(MemSpace::Global):
      if (L.Offset < 0 || L.Offset >= static_cast<int64_t>(Globals.size())) {
        fail(std::string("global ") + What + " out of bounds");
        return nullptr;
      }
      return &Globals[L.Offset];
    case static_cast<uint32_t>(MemSpace::Stack):
      if (L.Offset < 0 || L.Offset >= static_cast<int64_t>(Stack.size())) {
        fail(std::string("stack ") + What + " out of bounds");
        return nullptr;
      }
      return &Stack[L.Offset];
    default: {
      size_t Idx = L.Space - static_cast<uint32_t>(MemSpace::HeapBase);
      if (Idx >= Heap.size()) {
        fail(std::string("wild pointer ") + What);
        return nullptr;
      }
      HeapBlock &B = Heap[Idx];
      if (B.Freed) {
        fail(std::string("use-after-free ") + What);
        return nullptr;
      }
      if (L.Offset < 0 || L.Offset >= static_cast<int64_t>(B.Cells.size())) {
        fail(std::string("heap ") + What + " out of bounds");
        return nullptr;
      }
      return &B.Cells[L.Offset];
    }
    }
  }

  Value loadCell(Loc L) {
    Value *P = resolve(L, "read");
    return P ? *P : Value::makeInt(0);
  }
  void storeCell(Loc L, Value V) {
    if (Value *P = resolve(L, "write"))
      *P = V;
  }
  /// Copies \p N cells from \p Src to \p Dst (struct assignment / struct
  /// arguments).
  void copyCells(Loc Dst, Loc Src, int64_t N) {
    for (int64_t I = 0; I < N && !halted(); ++I) {
      Value V = loadCell({Src.Space, Src.Offset + I});
      storeCell({Dst.Space, Dst.Offset + I}, V);
    }
  }

  Loc varLoc(const VarDecl *V) const {
    if (V->storage() == StorageKind::Global)
      return {static_cast<uint32_t>(MemSpace::Global), V->cellOffset()};
    return {static_cast<uint32_t>(MemSpace::Stack),
            FrameBase + V->cellOffset()};
  }

  //===--------------------------------------------------------------------===//
  // Conversions
  //===--------------------------------------------------------------------===//

  /// Converts \p V to the representation of static type \p Ty (assignment,
  /// argument passing, return, cast).
  Value convert(Value V, const Type *Ty) {
    if (!Ty)
      return V;
    switch (Ty->kind()) {
    case TypeKind::Int:
    case TypeKind::Char:
      return Value::makeInt(V.asInt());
    case TypeKind::Double:
      return Value::makeDouble(V.asDouble());
    case TypeKind::Pointer: {
      const Type *Pointee = typeCast<PointerType>(Ty)->pointee();
      if (Pointee->isFunction()) {
        if (V.isFnPtr())
          return V;
        if (V.isInt() && V.IntVal == 0)
          return Value::makeFn(nullptr);
        if (V.isPtr() && V.PtrVal.isNull())
          return Value::makeFn(nullptr);
        return V; // tolerated; call-through will diagnose
      }
      if (V.isPtr())
        return V;
      if (V.isInt())
        return V.IntVal == 0
                   ? Value::makeNull()
                   : Value::makePtr(
                         {static_cast<uint32_t>(MemSpace::Null), V.IntVal});
      return V;
    }
    default:
      return V;
    }
  }

  //===--------------------------------------------------------------------===//
  // Cost / step accounting
  //===--------------------------------------------------------------------===//

  void tick() {
    ++Steps;
    if (CurSelfSteps)
      ++*CurSelfSteps;
    Cycles += CostFactor;
    if (Steps > Options.MaxSteps)
      failLimit(RunLimit::Steps,
                "execution step limit exceeded (MaxSteps=" +
                    std::to_string(Options.MaxSteps) + ")");
  }

  double factorFor(const FunctionDecl *F) const {
    return Options.OptimizedFunctions.count(F) ? Options.OptimizedCostFactor
                                               : 1.0;
  }

  //===--------------------------------------------------------------------===//
  // Expression evaluation
  //===--------------------------------------------------------------------===//

  Value evalExpr(const Expr *E);
  Loc evalLValue(const Expr *E);
  Value evalUnary(const UnaryExpr *E);
  Value evalBinary(const BinaryExpr *E);
  Value applyBinary(BinaryOp Op, Value L, Value R, const Expr *E,
                    const Type *LhsTy);
  Value evalAssign(const AssignExpr *E);
  Value evalCall(const CallExpr *E);
  Value evalBuiltin(const FunctionDecl *F, const std::vector<Value> &Args);

  /// Pointer step size for arithmetic on \p PtrTy (cells per element).
  int64_t strideOf(const Type *PtrTy) {
    const auto *PT = typeDynCast<PointerType>(PtrTy);
    if (!PT)
      return 1;
    int64_t S = PT->pointee()->sizeInCells();
    return S > 0 ? S : 1;
  }

  //===--------------------------------------------------------------------===//
  // Statements / functions
  //===--------------------------------------------------------------------===//

  void initVariable(const VarDecl *V);
  void fillInitializer(Loc Base, const Type *Ty, const Expr *Init);
  void zeroCells(Loc Base, int64_t N) {
    for (int64_t I = 0; I < N; ++I)
      storeCell({Base.Space, Base.Offset + I}, Value::makeInt(0));
  }

  Value callFunction(const FunctionDecl *F, const std::vector<Value> &Args,
                     const std::vector<std::pair<Loc, int64_t>> &StructArgs,
                     const std::vector<bool> &IsStructArg);
  Value executeBody(const FunctionDecl *F);

  void setupGlobals();
  Loc stringLoc(uint32_t StringId) const {
    return {static_cast<uint32_t>(MemSpace::Global), StringBase[StringId]};
  }

  //===--------------------------------------------------------------------===//
  // Builtin helpers
  //===--------------------------------------------------------------------===//

  int readCharFromInput() {
    if (InPos >= Input.Text.size())
      return -1;
    return static_cast<unsigned char>(Input.Text[InPos++]);
  }
  int64_t readIntFromInput() {
    while (InPos < Input.Text.size() &&
           std::isspace(static_cast<unsigned char>(Input.Text[InPos])))
      ++InPos;
    if (InPos >= Input.Text.size())
      return -1;
    bool Neg = false;
    if (Input.Text[InPos] == '-') {
      Neg = true;
      ++InPos;
    }
    bool Any = false;
    int64_t V = 0;
    while (InPos < Input.Text.size() &&
           std::isdigit(static_cast<unsigned char>(Input.Text[InPos]))) {
      V = V * 10 + (Input.Text[InPos] - '0');
      ++InPos;
      Any = true;
    }
    if (!Any)
      return -1;
    return Neg ? -V : V;
  }

  //===--------------------------------------------------------------------===//
  // State
  //===--------------------------------------------------------------------===//

  const TranslationUnit &Unit;
  const CfgModule &Cfgs;
  const ProgramInput &Input;
  const InterpOptions &Options;

  std::vector<Value> Globals;
  std::vector<Value> Stack;
  std::vector<HeapBlock> Heap;
  int64_t HeapCellsUsed = 0;
  int64_t HeapHighWater = 0;
  std::vector<int64_t> StringBase;
  int64_t FrameBase = 0;
  unsigned CallDepth = 0;
  unsigned CallDepthHighWater = 0;
  RunLimit LimitHit = RunLimit::None;
  /// Per-function self step counts (steps taken while the function's own
  /// frame is active, excluding callees), indexed by function id.
  std::vector<uint64_t> SelfSteps;
  uint64_t *CurSelfSteps = nullptr;

  /// Block positions under the run's layout (see layoutPositions).
  std::vector<std::vector<uint32_t>> LayoutPos;
  LayoutCostCounters LayoutCost;

  Profile Prof;
  std::string Output;

  bool Failed = false;
  bool Exited = false;
  std::string ErrorMsg;
  int64_t ExitVal = 0;

  uint64_t Steps = 0;
  double Cycles = 0;
  double CostFactor = 1.0;

  size_t InPos = 0;
  Prng Rng;
  /// Host-stack anchor captured at run() entry; see
  /// InterpOptions::MaxHostStackBytes.
  uintptr_t HostStackBase = 0;
};

//===----------------------------------------------------------------------===//
// Globals and program startup
//===----------------------------------------------------------------------===//

void Interpreter::setupGlobals() {
  // Layout: [globals][string literals...], each string NUL-terminated.
  int64_t Total = Unit.GlobalSizeCells;
  StringBase.resize(Unit.StringTable.size());
  for (size_t I = 0; I < Unit.StringTable.size(); ++I) {
    StringBase[I] = Total;
    Total += static_cast<int64_t>(Unit.StringTable[I].size()) + 1;
  }
  Globals.assign(Total, Value::makeInt(0));
  for (size_t I = 0; I < Unit.StringTable.size(); ++I) {
    const std::string &S = Unit.StringTable[I];
    for (size_t J = 0; J < S.size(); ++J)
      Globals[StringBase[I] + J] =
          Value::makeInt(static_cast<unsigned char>(S[J]));
    // Trailing cell is already zero (NUL).
  }

  // Initializers run in declaration order (sema rejected calls in them).
  for (const VarDecl *G : Unit.Globals) {
    if (halted())
      return;
    if (G->cellOffset() < 0)
      continue; // declaration had errors
    if (G->init())
      fillInitializer(varLoc(G), G->type(), G->init());
  }
}

RunResult Interpreter::run() {
  obs::ScopedPhase Phase("interp.run", Input.Name);
  // Size the profile.
  Prof.ProgramName = Unit.Functions.empty() ? "" : "program";
  Prof.InputName = Input.Name;
  Prof.Functions.resize(Unit.Functions.size());
  SelfSteps.assign(Unit.Functions.size(), 0);
  for (const auto &[F, G] : Cfgs.all()) {
    FunctionProfile &FP = Prof.Functions[F->functionId()];
    FP.BlockCounts.assign(G->size(), 0.0);
    FP.ArcCounts.resize(G->size());
    for (const auto &B : G->blocks())
      FP.ArcCounts[B->id()].assign(B->successors().size(), 0.0);
  }
  Prof.CallSiteCounts.assign(Unit.NumCallSites, 0.0);
  LayoutPos = layoutPositions(Unit, Cfgs, Options.Layout);

  char HostStackAnchor;
  HostStackBase = reinterpret_cast<uintptr_t>(&HostStackAnchor);

  setupGlobals();

  RunResult R;
  const FunctionDecl *Main = Unit.findFunction("main");
  if (!Main || !Main->isDefined()) {
    R.Error = "program has no main function";
    return R;
  }
  if (!Main->params().empty()) {
    R.Error = "main must take no parameters";
    return R;
  }

  Value Ret;
  if (!halted())
    Ret = callFunction(Main, {}, {}, std::vector<bool>(0));

  R.Ok = !Failed;
  R.Error = ErrorMsg;
  R.ExitCode = Exited ? ExitVal : Ret.asInt();
  R.Output = std::move(Output);
  Prof.TotalCycles = Cycles;
  R.TheProfile = std::move(Prof);
  R.LimitHit = LimitHit;
  R.StepsExecuted = Steps;
  R.HeapCellsHighWater = HeapHighWater;
  R.CallDepthHighWater = CallDepthHighWater;
  R.LayoutCost = LayoutCost;
  flushTelemetry();
  return R;
}

/// One-shot flush of the run's accumulated resource usage into the
/// ambient telemetry context. The hot loop only touches plain members;
/// all counter traffic happens here.
void Interpreter::flushTelemetry() const {
  if (!obs::telemetryActive())
    return;
  obs::counterAdd("interp.runs");
  obs::counterAdd("interp.steps.executed", static_cast<double>(Steps));
  obs::gaugeMax("interp.heap_cells.high_water",
                static_cast<double>(HeapHighWater));
  obs::gaugeMax("interp.call_depth.high_water",
                static_cast<double>(CallDepthHighWater));
  if (LimitHit != RunLimit::None)
    obs::counterAdd(std::string("interp.limit_hit.") +
                    runLimitName(LimitHit));
  obs::counterAdd("interp.layout.fall_through",
                  static_cast<double>(LayoutCost.FallThrough));
  obs::counterAdd("interp.layout.taken",
                  static_cast<double>(LayoutCost.Taken));
  obs::counterAdd("interp.layout.calls",
                  static_cast<double>(LayoutCost.Calls));
  obs::counterAdd("interp.layout.returns",
                  static_cast<double>(LayoutCost.Returns));
  for (size_t F = 0; F < SelfSteps.size(); ++F)
    if (SelfSteps[F])
      obs::counterAdd("interp.fn_self_steps." + Unit.Functions[F]->name(),
                      static_cast<double>(SelfSteps[F]));
}

//===----------------------------------------------------------------------===//
// Variable initialization
//===----------------------------------------------------------------------===//

void Interpreter::fillInitializer(Loc Base, const Type *Ty,
                                  const Expr *Init) {
  if (halted())
    return;
  if (const auto *List = exprDynCast<InitListExpr>(Init)) {
    zeroCells(Base, Ty->sizeInCells());
    if (const auto *AT = typeDynCast<ArrayType>(Ty)) {
      int64_t Stride = AT->element()->sizeInCells();
      for (size_t I = 0; I < List->elements().size(); ++I)
        fillInitializer(
            {Base.Space, Base.Offset + static_cast<int64_t>(I) * Stride},
            AT->element(), List->elements()[I]);
      return;
    }
    if (const auto *ST = typeDynCast<StructType>(Ty)) {
      for (size_t I = 0; I < List->elements().size() &&
                         I < ST->fields().size();
           ++I)
        fillInitializer(
            {Base.Space, Base.Offset + ST->fields()[I].OffsetCells},
            ST->fields()[I].Ty, List->elements()[I]);
      return;
    }
    fail("braced initializer for scalar");
    return;
  }

  // "char buf[N] = "...";"
  if (const auto *Str = exprDynCast<StringLitExpr>(Init)) {
    if (const auto *AT = typeDynCast<ArrayType>(Ty);
        AT && AT->element()->isChar()) {
      zeroCells(Base, Ty->sizeInCells());
      const std::string &S = Str->value();
      for (size_t I = 0; I < S.size(); ++I)
        storeCell({Base.Space, Base.Offset + static_cast<int64_t>(I)},
                  Value::makeInt(static_cast<unsigned char>(S[I])));
      return;
    }
  }

  Value V = convert(evalExpr(Init), Ty);
  storeCell(Base, V);
}

void Interpreter::initVariable(const VarDecl *V) {
  Loc Base = varLoc(V);
  if (!V->init()) {
    zeroCells(Base, V->type()->sizeInCells());
    return;
  }
  fillInitializer(Base, V->type(), V->init());
}

//===----------------------------------------------------------------------===//
// Function execution
//===----------------------------------------------------------------------===//

Value Interpreter::callFunction(
    const FunctionDecl *F, const std::vector<Value> &Args,
    const std::vector<std::pair<Loc, int64_t>> &StructArgs,
    const std::vector<bool> &IsStructArg) {
  if (CallDepth >= Options.MaxCallDepth)
    return failLimit(RunLimit::CallDepth,
                     "call depth limit exceeded in '" + F->name() +
                         "' (MaxCallDepth=" +
                         std::to_string(Options.MaxCallDepth) + ")");
  // The interpreter recurses on the host stack (callFunction ->
  // executeBody -> evalExpr -> callFunction); on large-frame builds the
  // host stack can overflow long before MaxCallDepth, so budget it
  // directly.
  char HostStackProbe;
  uintptr_t Here = reinterpret_cast<uintptr_t>(&HostStackProbe);
  size_t Used = HostStackBase > Here ? HostStackBase - Here
                                     : Here - HostStackBase;
  if (Used > Options.MaxHostStackBytes)
    return failLimit(RunLimit::HostStack,
                     "call depth limit exceeded in '" + F->name() +
                         "' (host stack budget, MaxHostStackBytes=" +
                         std::to_string(Options.MaxHostStackBytes) + ")");
  const Cfg *G = Cfgs.cfg(F);
  if (!G)
    return fail("call to undefined function '" + F->name() + "'");

  Prof.Functions[F->functionId()].EntryCount += 1;
  ++LayoutCost.Calls;

  int64_t SavedBase = FrameBase;
  double SavedFactor = CostFactor;
  uint64_t *SavedSelf = CurSelfSteps;
  FrameBase = static_cast<int64_t>(Stack.size());
  if (Stack.size() + F->frameSizeCells() > (1u << 24))
    return failLimit(RunLimit::HostFrame,
                     "stack overflow in '" + F->name() + "'");
  Stack.resize(Stack.size() + F->frameSizeCells(), Value::makeInt(0));
  CostFactor = factorFor(F);
  if (F->functionId() < SelfSteps.size())
    CurSelfSteps = &SelfSteps[F->functionId()];
  ++CallDepth;
  CallDepthHighWater = std::max(CallDepthHighWater, CallDepth);

  // Bind parameters.
  size_t ScalarIdx = 0, StructIdx = 0;
  for (size_t I = 0; I < F->params().size(); ++I) {
    const VarDecl *P = F->params()[I];
    Loc PL = varLoc(P);
    if (I < IsStructArg.size() && IsStructArg[I]) {
      const auto &[Src, N] = StructArgs[StructIdx++];
      copyCells(PL, Src, N);
    } else {
      storeCell(PL, convert(Args[ScalarIdx++], P->type()));
    }
  }

  Value Ret = executeBody(F);

  --CallDepth;
  CostFactor = SavedFactor;
  CurSelfSteps = SavedSelf;
  Stack.resize(FrameBase);
  FrameBase = SavedBase;
  return Ret;
}

Value Interpreter::executeBody(const FunctionDecl *F) {
  const Cfg *G = Cfgs.cfg(F);
  FunctionProfile &FP = Prof.Functions[F->functionId()];
  const std::vector<uint32_t> &Pos = LayoutPos[F->functionId()];
  const BasicBlock *B = G->entry();

  while (!halted()) {
    tick();
    FP.BlockCounts[B->id()] += 1;

    for (const CfgAction &A : B->actions()) {
      if (halted())
        return Value::makeInt(0);
      if (A.ActionKind == CfgAction::Kind::Eval)
        evalExpr(A.E);
      else if (A.ActionKind == CfgAction::Kind::DeclInit)
        initVariable(A.Var);
      else
        zeroCells({static_cast<uint32_t>(MemSpace::Stack),
                   FrameBase + A.FrameOffset},
                  A.CellCount);
    }
    if (halted())
      return Value::makeInt(0);

    size_t Slot = 0;
    switch (B->terminator()) {
    case TerminatorKind::Goto:
      Slot = 0;
      break;
    case TerminatorKind::CondBranch: {
      Value C = evalExpr(B->condOrValue());
      Slot = C.isTruthy() ? 0 : 1;
      break;
    }
    case TerminatorKind::Switch: {
      int64_t V = evalExpr(B->condOrValue()).asInt();
      const auto &Cases = B->switchCases();
      Slot = Cases.size(); // default slot
      for (size_t I = 0; I < Cases.size(); ++I)
        if (Cases[I].Value == V) {
          Slot = I;
          break;
        }
      break;
    }
    case TerminatorKind::Return: {
      if (!B->condOrValue()) {
        ++LayoutCost.Returns;
        return Value::makeInt(0);
      }
      Value V = evalExpr(B->condOrValue());
      // The VM halts before reaching its Ret instruction when the value
      // expression trips a limit; count only completed returns so both
      // engines agree.
      if (!halted())
        ++LayoutCost.Returns;
      return convert(V, F->type()->returnType());
    }
    case TerminatorKind::Unreachable:
      return fail("control fell into an unreachable block in '" +
                  F->name() + "'");
    }
    if (halted())
      return Value::makeInt(0);
    FP.ArcCounts[B->id()][Slot] += 1;
    const BasicBlock *Next = B->successors()[Slot];
    if (Pos[Next->id()] == Pos[B->id()] + 1)
      ++LayoutCost.FallThrough;
    else
      ++LayoutCost.Taken;
    B = Next;
  }
  return Value::makeInt(0);
}

//===----------------------------------------------------------------------===//
// Expression evaluation
//===----------------------------------------------------------------------===//

Value Interpreter::evalExpr(const Expr *E) {
  if (halted())
    return Value::makeInt(0);
  tick();

  switch (E->kind()) {
  case ExprKind::IntLit:
    return Value::makeInt(exprCast<IntLitExpr>(E)->value());
  case ExprKind::DoubleLit:
    return Value::makeDouble(exprCast<DoubleLitExpr>(E)->value());
  case ExprKind::StringLit: {
    Loc L = stringLoc(exprCast<StringLitExpr>(E)->stringId());
    return Value::makePtr({L.Space, L.Offset});
  }
  case ExprKind::DeclRef: {
    const auto *Ref = exprCast<DeclRefExpr>(E);
    if (const auto *F = declDynCast<FunctionDecl>(Ref->decl()))
      return Value::makeFn(F);
    const auto *V = declDynCast<VarDecl>(Ref->decl());
    if (!V)
      return fail("unresolved reference '" + Ref->name() + "'");
    Loc L = varLoc(V);
    // Arrays and structs evaluate to their address (decay / aggregate
    // reference).
    if (V->type()->isArray() || V->type()->isStruct())
      return Value::makePtr({L.Space, L.Offset});
    return loadCell(L);
  }
  case ExprKind::Unary:
    return evalUnary(exprCast<UnaryExpr>(E));
  case ExprKind::Binary:
    return evalBinary(exprCast<BinaryExpr>(E));
  case ExprKind::Assign:
    return evalAssign(exprCast<AssignExpr>(E));
  case ExprKind::Conditional: {
    const auto *C = exprCast<ConditionalExpr>(E);
    Value Cond = evalExpr(C->cond());
    if (halted())
      return Value::makeInt(0);
    return evalExpr(Cond.isTruthy() ? C->trueExpr() : C->falseExpr());
  }
  case ExprKind::Call:
    return evalCall(exprCast<CallExpr>(E));
  case ExprKind::Index:
  case ExprKind::Member: {
    Loc L = evalLValue(E);
    if (halted())
      return Value::makeInt(0);
    if (E->type() && (E->type()->isArray() || E->type()->isStruct()))
      return Value::makePtr({L.Space, L.Offset});
    return loadCell(L);
  }
  case ExprKind::Cast: {
    const auto *C = exprCast<CastExpr>(E);
    Value V = evalExpr(C->operand());
    if (C->targetType()->isVoid())
      return Value::makeInt(0);
    return convert(V, C->targetType());
  }
  case ExprKind::InitList:
    return fail("initializer list in expression context");
  }
  return Value::makeInt(0);
}

Loc Interpreter::evalLValue(const Expr *E) {
  if (halted())
    return {};
  switch (E->kind()) {
  case ExprKind::DeclRef: {
    const auto *Ref = exprCast<DeclRefExpr>(E);
    const auto *V = declDynCast<VarDecl>(Ref->decl());
    if (!V) {
      fail("cannot use '" + Ref->name() + "' as a location");
      return {};
    }
    return varLoc(V);
  }
  case ExprKind::Unary: {
    const auto *U = exprCast<UnaryExpr>(E);
    if (U->op() != UnaryOp::Deref) {
      fail("expression is not assignable");
      return {};
    }
    Value P = evalExpr(U->operand());
    if (!P.isPtr()) {
      fail("dereference of non-pointer value");
      return {};
    }
    return {P.PtrVal.Space, P.PtrVal.Offset};
  }
  case ExprKind::Index: {
    const auto *I = exprCast<IndexExpr>(E);
    Value Base = evalExpr(I->base());
    Value Idx = evalExpr(I->index());
    if (halted())
      return {};
    if (!Base.isPtr()) {
      fail("indexing a non-pointer value");
      return {};
    }
    int64_t Stride = E->type() ? E->type()->sizeInCells() : 1;
    if (Stride <= 0)
      Stride = 1;
    return {Base.PtrVal.Space,
            Base.PtrVal.Offset + Idx.asInt() * Stride};
  }
  case ExprKind::Member: {
    const auto *M = exprCast<MemberExpr>(E);
    if (M->isArrow()) {
      Value Base = evalExpr(M->base());
      if (halted())
        return {};
      if (!Base.isPtr()) {
        fail("'->' applied to non-pointer value");
        return {};
      }
      return {Base.PtrVal.Space, Base.PtrVal.Offset + M->fieldOffset()};
    }
    Loc Base = evalLValue(M->base());
    if (halted())
      return {};
    return {Base.Space, Base.Offset + M->fieldOffset()};
  }
  default:
    fail("expression is not assignable");
    return {};
  }
}

Value Interpreter::evalUnary(const UnaryExpr *E) {
  switch (E->op()) {
  case UnaryOp::Deref: {
    Value P = evalExpr(E->operand());
    if (halted())
      return Value::makeInt(0);
    // Dereferencing a function pointer yields the function again.
    if (P.isFnPtr())
      return P;
    if (!P.isPtr())
      return fail("dereference of non-pointer value");
    if (E->type() && (E->type()->isArray() || E->type()->isStruct() ||
                      E->type()->isFunction()))
      return P;
    return loadCell({P.PtrVal.Space, P.PtrVal.Offset});
  }
  case UnaryOp::AddrOf: {
    // &function
    if (const auto *Ref = exprDynCast<DeclRefExpr>(E->operand()))
      if (const auto *F = declDynCast<FunctionDecl>(Ref->decl()))
        return Value::makeFn(F);
    Loc L = evalLValue(E->operand());
    if (halted())
      return Value::makeInt(0);
    return Value::makePtr({L.Space, L.Offset});
  }
  case UnaryOp::Neg: {
    Value V = evalExpr(E->operand());
    if (V.isDouble())
      return Value::makeDouble(-V.DoubleVal);
    return Value::makeInt(-V.asInt());
  }
  case UnaryOp::LogicalNot: {
    Value V = evalExpr(E->operand());
    return Value::makeInt(V.isTruthy() ? 0 : 1);
  }
  case UnaryOp::BitNot: {
    Value V = evalExpr(E->operand());
    return Value::makeInt(~V.asInt());
  }
  case UnaryOp::PreInc:
  case UnaryOp::PreDec:
  case UnaryOp::PostInc:
  case UnaryOp::PostDec: {
    bool IsInc = E->op() == UnaryOp::PreInc || E->op() == UnaryOp::PostInc;
    bool IsPre = E->op() == UnaryOp::PreInc || E->op() == UnaryOp::PreDec;
    Loc L = evalLValue(E->operand());
    if (halted())
      return Value::makeInt(0);
    Value Old = loadCell(L);
    Value New;
    if (Old.isPtr()) {
      int64_t Stride = strideOf(E->operand()->type());
      RuntimePtr P = Old.PtrVal;
      P.Offset += IsInc ? Stride : -Stride;
      New = Value::makePtr(P);
    } else if (Old.isDouble()) {
      New = Value::makeDouble(Old.DoubleVal + (IsInc ? 1.0 : -1.0));
    } else {
      New = Value::makeInt(Old.asInt() + (IsInc ? 1 : -1));
    }
    storeCell(L, New);
    return IsPre ? New : Old;
  }
  }
  return Value::makeInt(0);
}

Value Interpreter::applyBinary(BinaryOp Op, Value L, Value R, const Expr *E,
                               const Type *LhsTy) {
  switch (Op) {
  case BinaryOp::Add: {
    if (L.isPtr() || R.isPtr()) {
      Value P = L.isPtr() ? L : R;
      Value N = L.isPtr() ? R : L;
      int64_t Stride = strideOf(E->type());
      RuntimePtr Out = P.PtrVal;
      Out.Offset += N.asInt() * Stride;
      return Value::makePtr(Out);
    }
    if (L.isDouble() || R.isDouble())
      return Value::makeDouble(L.asDouble() + R.asDouble());
    return Value::makeInt(L.asInt() + R.asInt());
  }
  case BinaryOp::Sub: {
    if (L.isPtr() && R.isPtr()) {
      if (L.PtrVal.Space != R.PtrVal.Space)
        return fail("subtracting pointers into different objects");
      int64_t Stride = strideOf(LhsTy);
      return Value::makeInt((L.PtrVal.Offset - R.PtrVal.Offset) / Stride);
    }
    if (L.isPtr()) {
      int64_t Stride = strideOf(E->type());
      RuntimePtr Out = L.PtrVal;
      Out.Offset -= R.asInt() * Stride;
      return Value::makePtr(Out);
    }
    if (L.isDouble() || R.isDouble())
      return Value::makeDouble(L.asDouble() - R.asDouble());
    return Value::makeInt(L.asInt() - R.asInt());
  }
  case BinaryOp::Mul:
    if (L.isDouble() || R.isDouble())
      return Value::makeDouble(L.asDouble() * R.asDouble());
    return Value::makeInt(L.asInt() * R.asInt());
  case BinaryOp::Div:
    if (L.isDouble() || R.isDouble()) {
      double D = R.asDouble();
      if (D == 0.0)
        return fail("floating division by zero");
      return Value::makeDouble(L.asDouble() / D);
    }
    if (R.asInt() == 0)
      return fail("integer division by zero");
    return Value::makeInt(L.asInt() / R.asInt());
  case BinaryOp::Rem:
    if (R.asInt() == 0)
      return fail("integer remainder by zero");
    return Value::makeInt(L.asInt() % R.asInt());
  case BinaryOp::Shl: {
    int64_t Sh = R.asInt();
    if (Sh < 0 || Sh > 63)
      return fail("shift amount out of range");
    return Value::makeInt(static_cast<int64_t>(
        static_cast<uint64_t>(L.asInt()) << Sh));
  }
  case BinaryOp::Shr: {
    int64_t Sh = R.asInt();
    if (Sh < 0 || Sh > 63)
      return fail("shift amount out of range");
    return Value::makeInt(L.asInt() >> Sh);
  }
  case BinaryOp::BitAnd:
    return Value::makeInt(L.asInt() & R.asInt());
  case BinaryOp::BitOr:
    return Value::makeInt(L.asInt() | R.asInt());
  case BinaryOp::BitXor:
    return Value::makeInt(L.asInt() ^ R.asInt());
  case BinaryOp::Lt:
  case BinaryOp::Gt:
  case BinaryOp::Le:
  case BinaryOp::Ge: {
    double Cmp;
    if (L.isPtr() && R.isPtr()) {
      if (L.PtrVal.Space != R.PtrVal.Space)
        Cmp = L.PtrVal.Space < R.PtrVal.Space ? -1 : 1;
      else
        Cmp = L.PtrVal.Offset < R.PtrVal.Offset
                  ? -1
                  : (L.PtrVal.Offset > R.PtrVal.Offset ? 1 : 0);
    } else if (L.isDouble() || R.isDouble()) {
      double A = L.asDouble(), B = R.asDouble();
      Cmp = A < B ? -1 : (A > B ? 1 : 0);
    } else {
      int64_t A = L.asInt(), B = R.asInt();
      Cmp = A < B ? -1 : (A > B ? 1 : 0);
    }
    bool Result = false;
    switch (Op) {
    case BinaryOp::Lt:
      Result = Cmp < 0;
      break;
    case BinaryOp::Gt:
      Result = Cmp > 0;
      break;
    case BinaryOp::Le:
      Result = Cmp <= 0;
      break;
    case BinaryOp::Ge:
      Result = Cmp >= 0;
      break;
    default:
      break;
    }
    return Value::makeInt(Result ? 1 : 0);
  }
  case BinaryOp::Eq:
  case BinaryOp::Ne: {
    bool Equal;
    if (L.isPtr() && R.isPtr())
      Equal = L.PtrVal == R.PtrVal;
    else if (L.isFnPtr() || R.isFnPtr())
      Equal = L.isFnPtr() && R.isFnPtr() ? L.FnVal == R.FnVal
              : (L.isFnPtr() ? L.FnVal == nullptr && !R.isTruthy()
                             : R.FnVal == nullptr && !L.isTruthy());
    else if (L.isPtr() || R.isPtr()) {
      // Pointer vs integer: equal iff both are "null-ish zero".
      const Value &P = L.isPtr() ? L : R;
      const Value &N = L.isPtr() ? R : L;
      Equal = P.PtrVal.isNull() && N.asInt() == 0;
    } else if (L.isDouble() || R.isDouble())
      Equal = L.asDouble() == R.asDouble();
    else
      Equal = L.asInt() == R.asInt();
    return Value::makeInt((Op == BinaryOp::Eq) == Equal ? 1 : 0);
  }
  case BinaryOp::LogicalAnd:
  case BinaryOp::LogicalOr:
    break; // handled by evalBinary
  }
  return Value::makeInt(0);
}

Value Interpreter::evalBinary(const BinaryExpr *E) {
  if (E->op() == BinaryOp::LogicalAnd) {
    Value L = evalExpr(E->lhs());
    if (halted() || !L.isTruthy())
      return Value::makeInt(0);
    return Value::makeInt(evalExpr(E->rhs()).isTruthy() ? 1 : 0);
  }
  if (E->op() == BinaryOp::LogicalOr) {
    Value L = evalExpr(E->lhs());
    if (halted())
      return Value::makeInt(0);
    if (L.isTruthy())
      return Value::makeInt(1);
    return Value::makeInt(evalExpr(E->rhs()).isTruthy() ? 1 : 0);
  }
  Value L = evalExpr(E->lhs());
  Value R = evalExpr(E->rhs());
  if (halted())
    return Value::makeInt(0);
  return applyBinary(E->op(), L, R, E, E->lhs()->type());
}

Value Interpreter::evalAssign(const AssignExpr *E) {
  const Type *LhsTy = E->lhs()->type();

  // Struct assignment copies cells.
  if (LhsTy && LhsTy->isStruct()) {
    Loc Dst = evalLValue(E->lhs());
    Value Src = evalExpr(E->rhs());
    if (halted())
      return Value::makeInt(0);
    if (!Src.isPtr())
      return fail("struct assignment from non-aggregate value");
    copyCells(Dst, {Src.PtrVal.Space, Src.PtrVal.Offset},
              LhsTy->sizeInCells());
    return Value::makePtr({Dst.Space, Dst.Offset});
  }

  Loc Dst = evalLValue(E->lhs());
  if (halted())
    return Value::makeInt(0);

  Value V;
  if (E->compoundOp()) {
    Value Old = loadCell(Dst);
    Value R = evalExpr(E->rhs());
    if (halted())
      return Value::makeInt(0);
    // For "p += n", pointer stride comes from the LHS type.
    V = applyBinary(*E->compoundOp(), Old, R, E, LhsTy);
    // applyBinary uses E->type() for pointer strides; E->type() here is the
    // assignment's type == LHS type, so strides are correct.
  } else {
    V = evalExpr(E->rhs());
  }
  if (halted())
    return Value::makeInt(0);
  V = convert(V, LhsTy);
  storeCell(Dst, V);
  return V;
}

//===----------------------------------------------------------------------===//
// Calls and builtins
//===----------------------------------------------------------------------===//

Value Interpreter::evalCall(const CallExpr *E) {
  const FunctionDecl *Callee = E->directCallee();
  if (!Callee) {
    Value F = evalExpr(E->callee());
    if (halted())
      return Value::makeInt(0);
    if (!F.isFnPtr() || F.FnVal == nullptr)
      return fail("indirect call through a non-function value");
    Callee = F.FnVal;
  }

  if (E->callSiteId() != UINT32_MAX &&
      E->callSiteId() < Prof.CallSiteCounts.size())
    Prof.CallSiteCounts[E->callSiteId()] += 1;

  // Evaluate arguments left to right.
  const auto &ParamTypes = Callee->type()->params();
  std::vector<Value> Args;
  std::vector<std::pair<Loc, int64_t>> StructArgs;
  std::vector<bool> IsStructArg(E->args().size(), false);
  for (size_t I = 0; I < E->args().size(); ++I) {
    const Type *PTy = I < ParamTypes.size() ? ParamTypes[I] : nullptr;
    if (PTy && PTy->isStruct()) {
      Value Src = evalExpr(E->args()[I]);
      if (halted())
        return Value::makeInt(0);
      if (!Src.isPtr())
        return fail("struct argument is not an aggregate");
      StructArgs.push_back(
          {{Src.PtrVal.Space, Src.PtrVal.Offset}, PTy->sizeInCells()});
      IsStructArg[I] = true;
    } else {
      Args.push_back(evalExpr(E->args()[I]));
      if (halted())
        return Value::makeInt(0);
    }
  }

  if (Callee->isBuiltin())
    return evalBuiltin(Callee, Args);
  return callFunction(Callee, Args, StructArgs, IsStructArg);
}

Value Interpreter::evalBuiltin(const FunctionDecl *F,
                               const std::vector<Value> &Args) {
  switch (F->builtin()) {
  case BuiltinKind::PrintInt:
    Output += std::to_string(Args[0].asInt());
    return Value::makeInt(0);
  case BuiltinKind::PrintChar:
    Output += static_cast<char>(Args[0].asInt());
    return Value::makeInt(0);
  case BuiltinKind::PrintStr: {
    if (!Args[0].isPtr())
      return fail("print_str expects a string pointer");
    RuntimePtr P = Args[0].PtrVal;
    for (int64_t I = 0; I < (1 << 20); ++I) {
      Value C = loadCell({P.Space, P.Offset + I});
      if (halted())
        return Value::makeInt(0);
      int64_t Ch = C.asInt();
      if (Ch == 0)
        return Value::makeInt(0);
      Output += static_cast<char>(Ch);
    }
    return fail("unterminated string passed to print_str");
  }
  case BuiltinKind::PrintDouble: {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6g", Args[0].asDouble());
    Output += Buf;
    return Value::makeInt(0);
  }
  case BuiltinKind::ReadInt:
    return Value::makeInt(readIntFromInput());
  case BuiltinKind::ReadChar:
    return Value::makeInt(readCharFromInput());
  case BuiltinKind::Malloc: {
    int64_t N = Args[0].asInt();
    if (N <= 0)
      return Value::makeNull();
    if (HeapCellsUsed + N > Options.MaxHeapCells)
      return failLimit(RunLimit::HeapCells,
                       "heap limit exceeded (MaxHeapCells=" +
                           std::to_string(Options.MaxHeapCells) + ")");
    HeapCellsUsed += N;
    HeapHighWater = std::max(HeapHighWater, HeapCellsUsed);
    Heap.push_back(HeapBlock{std::vector<Value>(N, Value::makeInt(0)),
                             false});
    return Value::makePtr(
        {static_cast<uint32_t>(MemSpace::HeapBase) +
             static_cast<uint32_t>(Heap.size() - 1),
         0});
  }
  case BuiltinKind::Free: {
    if (!Args[0].isPtr())
      return fail("free of a non-pointer value");
    RuntimePtr P = Args[0].PtrVal;
    if (P.isNull())
      return Value::makeInt(0);
    size_t Idx = P.Space - static_cast<uint32_t>(MemSpace::HeapBase);
    if (P.Space < static_cast<uint32_t>(MemSpace::HeapBase) ||
        Idx >= Heap.size() || P.Offset != 0)
      return fail("free of a non-heap pointer");
    if (Heap[Idx].Freed)
      return fail("double free");
    HeapCellsUsed -= static_cast<int64_t>(Heap[Idx].Cells.size());
    Heap[Idx].Freed = true;
    Heap[Idx].Cells.clear();
    Heap[Idx].Cells.shrink_to_fit();
    return Value::makeInt(0);
  }
  case BuiltinKind::Abort:
    return fail("abort() called");
  case BuiltinKind::Exit:
    Exited = true;
    ExitVal = Args[0].asInt();
    return Value::makeInt(0);
  case BuiltinKind::Rand:
    return Value::makeInt(static_cast<int64_t>(Rng.next() >> 33));
  case BuiltinKind::Srand:
    Rng = Prng(static_cast<uint64_t>(Args[0].asInt()));
    return Value::makeInt(0);
  case BuiltinKind::Sqrt: {
    double D = Args[0].asDouble();
    if (D < 0)
      return fail("sqrt of a negative number");
    return Value::makeDouble(std::sqrt(D));
  }
  case BuiltinKind::Fabs:
    return Value::makeDouble(std::fabs(Args[0].asDouble()));
  case BuiltinKind::Floor:
    return Value::makeDouble(std::floor(Args[0].asDouble()));
  case BuiltinKind::None:
    break;
  }
  return fail("unknown builtin '" + F->name() + "'");
}

} // namespace

std::vector<std::vector<uint32_t>>
sest::layoutPositions(const TranslationUnit &Unit, const CfgModule &Cfgs,
                      const ProgramBlockOrder *Layout) {
  std::vector<std::vector<uint32_t>> Pos(Unit.Functions.size());
  for (const auto &[F, G] : Cfgs.all()) {
    std::vector<uint32_t> &Row = Pos[F->functionId()];
    Row.resize(G->size());
    const std::vector<uint32_t> *Order = nullptr;
    if (Layout && F->functionId() < Layout->size() &&
        (*Layout)[F->functionId()].size() == G->size())
      Order = &(*Layout)[F->functionId()];
    if (!Order) {
      for (uint32_t I = 0; I < Row.size(); ++I)
        Row[I] = I;
      continue;
    }
    for (uint32_t I = 0; I < Order->size(); ++I)
      Row[(*Order)[I] < Row.size() ? (*Order)[I] : 0] = I;
  }
  return Pos;
}

const char *sest::runLimitName(RunLimit L) {
  switch (L) {
  case RunLimit::None:
    return "none";
  case RunLimit::Steps:
    return "steps";
  case RunLimit::CallDepth:
    return "call-depth";
  case RunLimit::HostStack:
    return "host-stack";
  case RunLimit::HeapCells:
    return "heap-cells";
  case RunLimit::HostFrame:
    return "host-frame";
  }
  return "none";
}

const char *sest::interpEngineName(InterpEngine Engine) {
  switch (Engine) {
  case InterpEngine::Ast:
    return "ast";
  case InterpEngine::Bytecode:
    return "bytecode";
  case InterpEngine::Native:
    return "native";
  }
  return "unknown";
}

static sest::NativeRunHook NativeHook = nullptr;

void sest::setNativeRunHook(NativeRunHook Hook) { NativeHook = Hook; }

RunResult sest::runProgram(const TranslationUnit &Unit,
                           const CfgModule &Cfgs, const ProgramInput &Input,
                           const InterpOptions &Options) {
  if (Options.Engine == InterpEngine::Ast) {
    Interpreter I(Unit, Cfgs, Input, Options);
    return I.run();
  }
  if (Options.Engine == InterpEngine::Native) {
    if (NativeHook)
      return NativeHook(Unit, Cfgs, Input, Options);
    RunResult R;
    R.Error = "native backend unavailable: not linked into this binary";
    return R;
  }
  // One-shot bytecode run: lower, execute, discard. Callers that run
  // many inputs against one program (the suite runner) compile once and
  // use bc::runProgramBytecode directly.
  bc::BcModule Module = bc::compileBytecode(Unit, Cfgs);
  return bc::runProgramBytecode(Unit, Cfgs, Module, Input, Options);
}

//===- interp/Interp.h - Profiling interpreter ------------------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A CFG-level interpreter for mini-C that doubles as the profiling
/// substrate: it executes the program on a given input and records exact
/// basic-block, arc, function-entry and call-site counts (the role played
/// by gcc-based instrumentation in the paper, §2).
///
/// It also implements the cost model used by the selective-optimization
/// experiment (paper §6 / Fig. 10): every expression-node evaluation costs
/// one cycle, scaled by a per-function factor when the function is in the
/// "optimized" set.
///
//===----------------------------------------------------------------------===//

#ifndef INTERP_INTERP_H
#define INTERP_INTERP_H

#include "cfg/Cfg.h"
#include "interp/Value.h"
#include "lang/Ast.h"
#include "profile/Profile.h"

#include <cstdint>
#include <set>
#include <string>

namespace sest {

/// One program input: the byte stream read_char/read_int consume, plus
/// the PRNG seed for rand().
struct ProgramInput {
  std::string Name = "input";
  std::string Text;
  uint64_t RandSeed = 1;
};

/// Which execution engine runs the program. Both produce bit-identical
/// RunResults (profiles, diagnostics, limit semantics); the tree-walker
/// is the reference oracle, the bytecode VM is the fast default.
enum class InterpEngine {
  Ast,      ///< Recursive tree-walker (interp/Interp.cpp).
  Bytecode, ///< Compile-once bytecode VM (interp/bytecode/).
};

/// Knobs for one execution.
struct InterpOptions {
  /// Abort the run after this many evaluation steps (runaway guard).
  uint64_t MaxSteps = 200'000'000;
  /// Maximum call depth.
  unsigned MaxCallDepth = 4096;
  /// Maximum host (C++) stack the interpreter's own recursion may
  /// consume before a run is aborted; guards against host stack
  /// overflow on builds with large frames (debug, sanitizers), where
  /// MaxCallDepth alone would be reached too late.
  size_t MaxHostStackBytes = 6u << 20;
  /// Maximum total heap cells.
  int64_t MaxHeapCells = 1 << 26;
  /// Functions whose per-cycle cost is multiplied by OptimizedCostFactor
  /// (the Fig. 10 experiment).
  std::set<const FunctionDecl *> OptimizedFunctions;
  double OptimizedCostFactor = 0.5;
  /// Execution engine (see InterpEngine).
  InterpEngine Engine = InterpEngine::Bytecode;
};

/// Which resource limit (if any) aborted a run.
enum class RunLimit {
  None,
  Steps,     ///< InterpOptions::MaxSteps.
  CallDepth, ///< InterpOptions::MaxCallDepth.
  HostStack, ///< InterpOptions::MaxHostStackBytes.
  HeapCells, ///< InterpOptions::MaxHeapCells.
  HostFrame, ///< The fixed interpreter value-stack ceiling.
};

/// Short identifier for a limit ("steps", "call-depth", ...).
const char *runLimitName(RunLimit L);

/// Outcome of one execution.
struct RunResult {
  /// True when the program ran to completion (normal return from main or
  /// an exit() call).
  bool Ok = false;
  /// Diagnostic for aborted runs (runtime error, abort(), step limit).
  /// Resource-limit aborts include the configured limit and the run's
  /// high-water marks.
  std::string Error;
  /// The resource limit that aborted the run, when one did.
  RunLimit LimitHit = RunLimit::None;
  /// Exit code (main's return value or exit()'s argument).
  int64_t ExitCode = 0;
  /// Everything the program printed.
  std::string Output;
  /// The collected profile.
  Profile TheProfile;

  // Resource usage, filled for every run (successful or not).
  uint64_t StepsExecuted = 0;         ///< Evaluation steps taken.
  int64_t HeapCellsHighWater = 0;     ///< Peak live heap cells.
  unsigned CallDepthHighWater = 0;    ///< Peak mini-C call depth.
};

/// Executes \p Unit (starting at "main", which must take no parameters)
/// with CFGs from \p Cfgs on \p Input.
RunResult runProgram(const TranslationUnit &Unit, const CfgModule &Cfgs,
                     const ProgramInput &Input,
                     const InterpOptions &Options = {});

} // namespace sest

#endif // INTERP_INTERP_H

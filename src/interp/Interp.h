//===- interp/Interp.h - Profiling interpreter ------------------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A CFG-level interpreter for mini-C that doubles as the profiling
/// substrate: it executes the program on a given input and records exact
/// basic-block, arc, function-entry and call-site counts (the role played
/// by gcc-based instrumentation in the paper, §2).
///
/// It also implements the cost model used by the selective-optimization
/// experiment (paper §6 / Fig. 10): every expression-node evaluation costs
/// one cycle, scaled by a per-function factor when the function is in the
/// "optimized" set.
///
//===----------------------------------------------------------------------===//

#ifndef INTERP_INTERP_H
#define INTERP_INTERP_H

#include "cfg/Cfg.h"
#include "interp/Value.h"
#include "lang/Ast.h"
#include "profile/Profile.h"

#include <cstdint>
#include <set>
#include <string>

namespace sest {

/// One program input: the byte stream read_char/read_int consume, plus
/// the PRNG seed for rand().
struct ProgramInput {
  std::string Name = "input";
  std::string Text;
  uint64_t RandSeed = 1;
};

/// Which execution engine runs the program. Both produce bit-identical
/// RunResults (profiles, diagnostics, limit semantics); the tree-walker
/// is the reference oracle, the bytecode VM is the fast default.
enum class InterpEngine {
  Ast,      ///< Recursive tree-walker (interp/Interp.cpp).
  Bytecode, ///< Compile-once bytecode VM (interp/bytecode/).
  Native,   ///< Compile-to-C backend (src/backend/), host-native code.
};

/// Short identifier for an engine ("ast", "bytecode", "native").
const char *interpEngineName(InterpEngine Engine);

/// A whole-program basic-block layout: one block order per function id.
/// An empty row (or a null layout pointer) means identity — blocks in
/// block-id order, which is exactly how the CFG builder laid them out.
/// Produced by the optimizer (src/opt/Layout.h) and consumed by the
/// layout-sensitive dynamic cost model in both interpreter engines.
using ProgramBlockOrder = std::vector<std::vector<uint32_t>>;

/// Dynamic layout-cost counters: how control actually flowed relative to
/// a chosen basic-block layout. Both engines count every arc transfer as
/// either a fall-through (the successor is the next block in layout
/// order) or a taken branch/jump, plus every mini-C call and completed
/// return (call overhead). Counts are exact and bit-identical across
/// engines and job counts; the weighted cost() is the scalar the
/// optimizer minimizes (see docs/OPTIMIZATION.md).
struct LayoutCostCounters {
  uint64_t FallThrough = 0; ///< Transfers to the layout-adjacent block.
  uint64_t Taken = 0;       ///< Every other arc transfer.
  uint64_t Calls = 0;       ///< Mini-C (non-builtin) invocations.
  uint64_t Returns = 0;     ///< Completed mini-C returns.

  // Cost weights, in model cycles per event. A fall-through is the
  // baseline; a taken transfer pays a redirect penalty; calls and
  // returns pay the linkage overhead the inliner removes.
  static constexpr double CostFallThrough = 1.0;
  static constexpr double CostTaken = 4.0;
  static constexpr double CostCall = 6.0;
  static constexpr double CostReturn = 3.0;

  double cost() const {
    return static_cast<double>(FallThrough) * CostFallThrough +
           static_cast<double>(Taken) * CostTaken +
           static_cast<double>(Calls) * CostCall +
           static_cast<double>(Returns) * CostReturn;
  }
  bool operator==(const LayoutCostCounters &) const = default;
};

/// Expands \p Layout (null, or per-function rows where empty = identity)
/// into dense per-function block-position tables Pos[fid][block id].
/// Rows whose size does not match the function's CFG fall back to
/// identity. Shared by both engines so classification is identical.
std::vector<std::vector<uint32_t>>
layoutPositions(const TranslationUnit &Unit, const CfgModule &Cfgs,
                const ProgramBlockOrder *Layout);

/// Knobs for one execution.
struct InterpOptions {
  /// Abort the run after this many evaluation steps (runaway guard).
  uint64_t MaxSteps = 200'000'000;
  /// Maximum call depth.
  unsigned MaxCallDepth = 4096;
  /// Maximum host (C++) stack the interpreter's own recursion may
  /// consume before a run is aborted; guards against host stack
  /// overflow on builds with large frames (debug, sanitizers), where
  /// MaxCallDepth alone would be reached too late.
  size_t MaxHostStackBytes = 6u << 20;
  /// Maximum total heap cells.
  int64_t MaxHeapCells = 1 << 26;
  /// Functions whose per-cycle cost is multiplied by OptimizedCostFactor
  /// (the Fig. 10 experiment).
  std::set<const FunctionDecl *> OptimizedFunctions;
  double OptimizedCostFactor = 0.5;
  /// Execution engine (see InterpEngine).
  InterpEngine Engine = InterpEngine::Bytecode;
  /// Basic-block layout the run's LayoutCostCounters are keyed to (null
  /// = identity). Classification only: the layout never changes what
  /// executes, so profiles and outputs are layout-independent.
  const ProgramBlockOrder *Layout = nullptr;
};

/// Which resource limit (if any) aborted a run.
enum class RunLimit {
  None,
  Steps,     ///< InterpOptions::MaxSteps.
  CallDepth, ///< InterpOptions::MaxCallDepth.
  HostStack, ///< InterpOptions::MaxHostStackBytes.
  HeapCells, ///< InterpOptions::MaxHeapCells.
  HostFrame, ///< The fixed interpreter value-stack ceiling.
};

/// Short identifier for a limit ("steps", "call-depth", ...).
const char *runLimitName(RunLimit L);

/// Outcome of one execution.
struct RunResult {
  /// True when the program ran to completion (normal return from main or
  /// an exit() call).
  bool Ok = false;
  /// Diagnostic for aborted runs (runtime error, abort(), step limit).
  /// Resource-limit aborts include the configured limit and the run's
  /// high-water marks.
  std::string Error;
  /// The resource limit that aborted the run, when one did.
  RunLimit LimitHit = RunLimit::None;
  /// Exit code (main's return value or exit()'s argument).
  int64_t ExitCode = 0;
  /// Everything the program printed.
  std::string Output;
  /// The collected profile.
  Profile TheProfile;

  // Resource usage, filled for every run (successful or not).
  uint64_t StepsExecuted = 0;         ///< Evaluation steps taken.
  int64_t HeapCellsHighWater = 0;     ///< Peak live heap cells.
  unsigned CallDepthHighWater = 0;    ///< Peak mini-C call depth.
  /// Layout-sensitive control-transfer counters for the layout in
  /// InterpOptions::Layout (identity when none was given).
  LayoutCostCounters LayoutCost;
};

/// Executes \p Unit (starting at "main", which must take no parameters)
/// with CFGs from \p Cfgs on \p Input.
RunResult runProgram(const TranslationUnit &Unit, const CfgModule &Cfgs,
                     const ProgramInput &Input,
                     const InterpOptions &Options = {});

/// How runProgram reaches the native tier without src/interp linking
/// against src/backend: the backend library registers its entry point
/// here at static-init time (Native.cpp). When no backend is linked in,
/// Engine=Native runs fail with a clean capability error.
using NativeRunHook = RunResult (*)(const TranslationUnit &,
                                    const CfgModule &, const ProgramInput &,
                                    const InterpOptions &);
void setNativeRunHook(NativeRunHook Hook);

} // namespace sest

#endif // INTERP_INTERP_H

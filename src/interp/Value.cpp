//===- interp/Value.cpp - Runtime values -----------------------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "interp/Value.h"

#include "lang/Ast.h"
#include "support/StringUtils.h"

using namespace sest;

std::string Value::str() const {
  switch (ValueKind) {
  case Kind::Int:
    return std::to_string(IntVal);
  case Kind::Double:
    return formatDouble(DoubleVal, 6);
  case Kind::Ptr:
    if (PtrVal.isNull())
      return "null";
    return "ptr(" + std::to_string(PtrVal.Space) + ":" +
           std::to_string(PtrVal.Offset) + ")";
  case Kind::FnPtr:
    return FnVal ? "&" + FnVal->name() : "fn(null)";
  }
  return "<value>";
}

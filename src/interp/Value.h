//===- interp/Value.h - Runtime values ---------------------------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime values for the profiling interpreter. Memory is organized in
/// *cells*; every scalar value occupies one cell (see lang/Type.h). A
/// pointer addresses (space, cell-offset), where a space is the global
/// segment, the contiguous evaluation stack, or one heap allocation.
///
//===----------------------------------------------------------------------===//

#ifndef INTERP_VALUE_H
#define INTERP_VALUE_H

#include <cstdint>
#include <string>

namespace sest {

class FunctionDecl;

/// Address spaces for runtime pointers.
enum class MemSpace : uint32_t {
  Null = 0,   ///< The null pointer.
  Global = 1, ///< Globals + string literals.
  Stack = 2,  ///< The contiguous call-frame stack.
  HeapBase = 3, ///< Heap block K lives in space HeapBase + K.
};

/// A runtime pointer: address space + cell offset within it.
struct RuntimePtr {
  uint32_t Space = 0; ///< 0 = null; see MemSpace.
  int64_t Offset = 0;

  bool isNull() const { return Space == 0; }
  bool operator==(const RuntimePtr &Rhs) const {
    return Space == Rhs.Space && Offset == Rhs.Offset;
  }
};

/// One runtime value (the contents of one cell).
struct Value {
  enum class Kind : uint8_t { Int, Double, Ptr, FnPtr };

  Kind ValueKind = Kind::Int;
  union {
    int64_t IntVal;
    double DoubleVal;
  };
  RuntimePtr PtrVal;                  ///< For Kind::Ptr.
  const FunctionDecl *FnVal = nullptr; ///< For Kind::FnPtr.

  Value() : IntVal(0) {}

  static Value makeInt(int64_t V) {
    Value R;
    R.ValueKind = Kind::Int;
    R.IntVal = V;
    return R;
  }
  static Value makeDouble(double V) {
    Value R;
    R.ValueKind = Kind::Double;
    R.DoubleVal = V;
    return R;
  }
  static Value makePtr(RuntimePtr P) {
    Value R;
    R.ValueKind = Kind::Ptr;
    R.IntVal = 0;
    R.PtrVal = P;
    return R;
  }
  static Value makeNull() { return makePtr(RuntimePtr{0, 0}); }
  static Value makeFn(const FunctionDecl *F) {
    Value R;
    R.ValueKind = Kind::FnPtr;
    R.IntVal = 0;
    R.FnVal = F;
    return R;
  }

  bool isInt() const { return ValueKind == Kind::Int; }
  bool isDouble() const { return ValueKind == Kind::Double; }
  bool isPtr() const { return ValueKind == Kind::Ptr; }
  bool isFnPtr() const { return ValueKind == Kind::FnPtr; }

  /// Numeric coercions (asserted kinds are the caller's responsibility;
  /// these are lenient to keep the interpreter robust).
  int64_t asInt() const {
    if (isDouble())
      return static_cast<int64_t>(DoubleVal);
    if (isPtr())
      return PtrVal.Offset; // Pointer-to-int cast; space is dropped.
    if (isFnPtr())
      return FnVal != nullptr;
    return IntVal;
  }
  double asDouble() const {
    if (isDouble())
      return DoubleVal;
    return static_cast<double>(asInt());
  }

  /// Truthiness in a branch condition.
  bool isTruthy() const {
    switch (ValueKind) {
    case Kind::Int:
      return IntVal != 0;
    case Kind::Double:
      return DoubleVal != 0.0;
    case Kind::Ptr:
      return !PtrVal.isNull();
    case Kind::FnPtr:
      return FnVal != nullptr;
    }
    return false;
  }

  /// Debug rendering.
  std::string str() const;
};

} // namespace sest

#endif // INTERP_VALUE_H

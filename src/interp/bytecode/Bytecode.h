//===- interp/bytecode/Bytecode.h - Bytecode ISA ----------------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The register-based bytecode the fast profiling tier executes. Each
/// function's CFG is lowered once (see BytecodeCompiler.h) into a flat
/// instruction stream over a per-frame register window; the VM (see
/// BytecodeVM.h) runs it with a threaded dispatch loop.
///
/// The design constraint that shapes everything here is *bit-identical
/// profiles*: the tree-walker in interp/Interp.cpp ticks the step/cycle
/// accounting once per AST node in preorder (parent before operands), and
/// bumps block / arc / entry / call-site counters at specific points
/// relative to those ticks, including on runs aborted by a resource
/// limit. The bytecode therefore keeps ticks as explicit instructions
/// (Tick / TickCall / BlockEnter) placed exactly where the walker ticks,
/// merging only ticks that are adjacent in the walker's execution order
/// with nothing observable between them.
///
//===----------------------------------------------------------------------===//

#ifndef INTERP_BYTECODE_BYTECODE_H
#define INTERP_BYTECODE_BYTECODE_H

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace sest {
class FunctionDecl;
class StringLitExpr;
class Type;
} // namespace sest

namespace sest::bc {

/// Every opcode, as an X-macro so the enum, the name table, and the
/// computed-goto jump table cannot drift apart.
///
/// Operand conventions (fields of BcInstr): A/B/C are register indices
/// into the current frame window unless noted; X is a 32-bit immediate
/// (cell offset, block id, instruction offset, stride); Imm/Dbl/Ptr is
/// the 64-bit payload.
#define SEST_BC_OPS(X)                                                       \
  /* -- constants and moves (pure, tickless) -- */                           \
  X(ConstInt)    /* A=dst, Imm=value */                                      \
  X(ConstDouble) /* A=dst, Dbl=value */                                      \
  X(ConstStr)    /* A=dst, X=string id (resolved via StringBase) */          \
  X(ConstFn)     /* A=dst, Ptr=FunctionDecl */                               \
  X(Move)        /* A=dst, B=src */                                          \
  X(Truthy)      /* A=dst, B=src; dst = src.isTruthy() ? 1 : 0 */            \
  /* -- variables -- */                                                      \
  X(LoadGlobal)  /* A=dst, X=cell offset */                                  \
  X(LoadLocal)   /* A=dst, X=frame cell offset */                            \
  X(LeaGlobal)   /* A=dst, X=cell offset; dst = Ptr{Global, X} */            \
  X(LeaLocal)    /* A=dst, X=offset; dst = Ptr{Stack, FrameBase+X} */        \
  /* -- lvalue computation (locs are Ptr values in registers) -- */          \
  X(LvalFromPtr) /* A=dst, B=src, Ptr=msg; fail msg unless src is Ptr */     \
  X(ArrowLoc)    /* A=dst, B=base, X=field offset */                         \
  X(IndexLoc)    /* A=dst, B=base, C=index, X=stride */                      \
  X(AddOffs)     /* A=dst, B=base, X=offset delta */                         \
  /* -- memory -- */                                                         \
  X(LoadCellD)   /* A=dst, B=loc */                                          \
  X(ConvStore)   /* A=dst, B=loc, C=val, Ptr=Type; dst = converted val */    \
  X(StructAssign)/* A=dst, B=dst loc, C=src val, X=size in cells */          \
  X(ZeroLoc)     /* A=loc, Imm=cell count */                                 \
  X(StrCopyLoc)  /* A=loc, X=cells to zero, Ptr=StringLitExpr */             \
  /* -- unary -- */                                                          \
  X(Neg)         /* A=dst, B=src */                                          \
  X(LogNot)      /* A=dst, B=src */                                          \
  X(BitNot)      /* A=dst, B=src */                                          \
  X(DerefRV)     /* A=dst, B=src, Sub=1 when aggregate/function typed */     \
  X(IncDec)      /* A=dst, B=loc, Sub=(inc|pre flags), X=stride */           \
  /* -- binary / conversion -- */                                            \
  X(BinOp)       /* A=dst, B=lhs, C=rhs, Sub=BinaryOp, X=stride(result),     \
                    Imm=stride(lhs type) */                                  \
  X(Conv)        /* A=dst, B=src, Ptr=Type */                                \
  /* -- step accounting -- */                                                \
  X(Tick)        /* X=count; one walker tick per count, stop on limit */     \
  X(TickCall)    /* one tick for a direct CallExpr node; X=call-site id or   \
                    -1, Ptr=callee FunctionDecl, Sub=1 when the call has     \
                    arguments. On tick failure replicates the walker's       \
                    counter leaks (see BytecodeVM.cpp). */                   \
  X(BlockEnter)  /* X=block id; tick, then BlockCounts[X] += 1 */            \
  /* -- control flow -- */                                                   \
  X(Jmp)         /* X=target */                                              \
  X(BrFalse)     /* A=cond, X=target */                                      \
  X(BrTrue)      /* A=cond, X=target */                                      \
  X(ArcJmp)      /* B=block id, C=slot, X=target */                          \
  X(ArcCondBr)   /* A=cond, B=block id, X=true target, Imm=false target */   \
  X(ArcSwitch)   /* A=value, B=block id, Ptr=BcSwitchTable */                \
  X(RetVal)      /* A=src, Ptr=return Type (convert before returning) */     \
  X(RetVoid)     /* plain "return;": int 0, no conversion */                 \
  X(FailMsg)     /* Ptr=pooled std::string message */                        \
  /* -- calls -- */                                                          \
  X(CheckFn)     /* A=src; fail unless src is a non-null function ptr */     \
  X(SiteBump)    /* X=call-site id */                                        \
  X(CheckStructArg) /* A=src; fail unless src is a Ptr */                    \
  X(CallDirect)  /* A=dst, B=arg base, C=arg count, Ptr=FunctionDecl */      \
  X(CallIndirect)/* A=dst, B=arg base, C=arg count, X=callee reg */          \
  X(CallBuiltin) /* A=dst, B=arg base, C=arg count, Ptr=FunctionDecl */      \
  X(Halt)        /* compiler bug backstop; never emitted on a valid path */

enum class BcOp : uint8_t {
#define SEST_BC_OP_ENUM(Name) Name,
  SEST_BC_OPS(SEST_BC_OP_ENUM)
#undef SEST_BC_OP_ENUM
};

/// Number of opcodes (jump-table size).
inline constexpr unsigned NumBcOps = 0
#define SEST_BC_OP_COUNT(Name) +1
    SEST_BC_OPS(SEST_BC_OP_COUNT)
#undef SEST_BC_OP_COUNT
    ;

/// Opcode mnemonic ("ConstInt", ...).
const char *bcOpName(BcOp Op);

/// One instruction; 24 bytes, trivially copyable.
struct BcInstr {
  BcOp K = BcOp::Halt;
  uint8_t Sub = 0;        ///< Secondary selector (BinaryOp, flags).
  uint16_t A = 0;         ///< Usually the destination register.
  uint16_t B = 0;
  uint16_t C = 0;
  int32_t X = 0;          ///< Offset / id / stride / jump target.
  union {
    int64_t Imm;
    double Dbl;
    const void *Ptr;
  };

  BcInstr() : Imm(0) {}
};

static_assert(sizeof(BcInstr) == 24, "BcInstr layout regressed");

/// IncDec Sub flags.
enum : uint8_t { IncDecIsInc = 1, IncDecIsPre = 2 };

/// One arm of a lowered switch terminator.
struct BcSwitchCase {
  int64_t Value = 0;
  int32_t Target = 0; ///< Instruction offset.
  uint16_t Slot = 0;  ///< Arc slot (case index).
};

/// A lowered switch: cases in source order (first match wins, like the
/// walker's linear scan) plus the default arm.
struct BcSwitchTable {
  std::vector<BcSwitchCase> Cases;
  int32_t DefaultTarget = 0;
  uint16_t DefaultSlot = 0;
};

/// One function lowered to bytecode.
struct BcChunk {
  const FunctionDecl *Function = nullptr;
  std::vector<BcInstr> Code;
  /// Register window size needed by any single action/terminator.
  uint16_t NumRegs = 0;
};

/// A whole program lowered to bytecode.
struct BcModule {
  /// Indexed by function id; null for builtins and undefined functions.
  std::vector<std::unique_ptr<BcChunk>> Chunks;
  /// Runs the global-variable initializers (no profile counters).
  BcChunk GlobalInit;

  // Pools referenced by instruction Ptr operands. Deques: pointers must
  // stay stable while the module grows.
  std::deque<std::string> Messages;
  std::deque<BcSwitchTable> SwitchTables;

  /// Total instructions across all chunks (telemetry).
  uint64_t NumInstrs = 0;
  /// Wall time spent lowering (telemetry).
  double CompileMs = 0.0;

  const BcChunk *chunkFor(const FunctionDecl *F) const;
};

/// Human-readable disassembly of one chunk (tests, docs, debugging).
std::string disassemble(const BcChunk &C);

} // namespace sest::bc

#endif // INTERP_BYTECODE_BYTECODE_H

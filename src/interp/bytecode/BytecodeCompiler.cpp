//===- interp/bytecode/BytecodeCompiler.cpp - CFG -> bytecode --------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
//
// Lowering rules mirror interp/Interp.cpp exactly; every deviation would
// show up as a profile or diagnostic difference in the differential test.
// The critical invariants:
//
//  * The tree-walker ticks once per AST expression node in preorder
//    (evalExpr entry, before operands). Ticks are lowered as explicit
//    Tick instructions placed before the node's operand code; adjacent
//    ticks (parent immediately followed by its first operand, with no
//    observable effect between) merge into one Tick with a count.
//
//  * Direct calls tick through TickCall, never a merged Tick: when the
//    step limit hits exactly at a call node, the walker still bumps the
//    call-site counter (and for zero-argument calls to defined functions
//    also the entry count and call-depth high-water); the VM replicates
//    that leak in the TickCall handler.
//
//  * evalLValue does not tick, but expressions nested inside an lvalue
//    do; compileLValue therefore emits no tick of its own.
//
//===----------------------------------------------------------------------===//

#include "interp/bytecode/BytecodeCompiler.h"

#include "cfg/Cfg.h"
#include "lang/Ast.h"
#include "obs/Telemetry.h"

#include <cassert>
#include <chrono>

using namespace sest;
using namespace sest::bc;

namespace {

class ChunkCompiler {
public:
  ChunkCompiler(BcModule &M, const TranslationUnit &Unit, BcChunk &C)
      : M(M), Unit(Unit), C(C) {}

  void compileFunction(const Cfg &G);
  void compileGlobalInit();

private:
  //===--------------------------------------------------------------------===//
  // Emission
  //===--------------------------------------------------------------------===//

  size_t emit(BcInstr I) {
    C.Code.push_back(I);
    LastTick = -1;
    return C.Code.size() - 1;
  }

  /// One walker tick; merges into an immediately preceding Tick.
  void tick() {
    if (LastTick == static_cast<ptrdiff_t>(C.Code.size()) - 1 &&
        LastTick >= 0) {
      ++C.Code[LastTick].X;
      return;
    }
    BcInstr I;
    I.K = BcOp::Tick;
    I.X = 1;
    C.Code.push_back(I);
    LastTick = static_cast<ptrdiff_t>(C.Code.size()) - 1;
  }

  /// Marks the current position as a jump target, so a preceding Tick is
  /// no longer mergeable (control may join here mid-run).
  void pin() { LastTick = -1; }

  const std::string *msg(std::string S) {
    M.Messages.push_back(std::move(S));
    return &M.Messages.back();
  }

  uint16_t allocReg() {
    assert(RegTop < UINT16_MAX && "register window overflow");
    uint16_t R = RegTop++;
    if (RegTop > C.NumRegs)
      C.NumRegs = RegTop;
    return R;
  }

  // Small builders.
  BcInstr ins(BcOp K) {
    BcInstr I;
    I.K = K;
    return I;
  }
  void emitABX(BcOp K, uint16_t A, uint16_t B, int32_t X) {
    BcInstr I = ins(K);
    I.A = A;
    I.B = B;
    I.X = X;
    emit(I);
  }
  void emitFail(std::string S) {
    BcInstr I = ins(BcOp::FailMsg);
    I.Ptr = msg(std::move(S));
    emit(I);
  }

  /// Emits a forward branch with an unresolved target; returns the
  /// instruction index for patchTo().
  size_t emitBranch(BcOp K, uint16_t CondReg) {
    BcInstr I = ins(K);
    I.A = CondReg;
    I.X = -1;
    return emit(I);
  }
  void patchTo(size_t InstrIdx) {
    C.Code[InstrIdx].X = static_cast<int32_t>(C.Code.size());
    pin();
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  uint16_t compileExpr(const Expr *E);
  uint16_t compileLValue(const Expr *E);
  uint16_t compileUnary(const UnaryExpr *E);
  uint16_t compileBinary(const BinaryExpr *E);
  uint16_t compileAssign(const AssignExpr *E);
  uint16_t compileCall(const CallExpr *E);
  void compileDeclInit(const VarDecl *V);
  void fillInit(uint16_t BaseLoc, int64_t Off, const Type *Ty,
                const Expr *Init);
  uint16_t locAt(uint16_t BaseLoc, int64_t Off);

  /// Mirrors Interpreter::strideOf.
  static int64_t strideOf(const Type *PtrTy) {
    const auto *PT = typeDynCast<PointerType>(PtrTy);
    if (!PT)
      return 1;
    int64_t S = PT->pointee()->sizeInCells();
    return S > 0 ? S : 1;
  }

  /// Emits the address of \p V into a fresh register (walker varLoc).
  uint16_t emitLea(const VarDecl *V) {
    uint16_t Dst = allocReg();
    BcInstr I = ins(V->storage() == StorageKind::Global ? BcOp::LeaGlobal
                                                        : BcOp::LeaLocal);
    I.A = Dst;
    I.X = static_cast<int32_t>(V->cellOffset());
    emit(I);
    return Dst;
  }

  //===--------------------------------------------------------------------===//
  // Blocks
  //===--------------------------------------------------------------------===//

  void compileBlock(const BasicBlock *B, const FunctionDecl *F);

  struct BlockRef {
    size_t InstrIdx;
    bool InImm; ///< Patch Imm instead of X.
    uint32_t BlockId;
  };
  struct SwitchRef {
    BcSwitchTable *Table;
    std::vector<uint32_t> CaseBlocks; ///< Parallel to Table->Cases.
    uint32_t DefaultBlock;
  };

  int32_t blockTargetPlaceholder(const BasicBlock *B, size_t InstrIdx,
                                 bool InImm) {
    BlockRefs.push_back({InstrIdx, InImm, B->id()});
    return -1;
  }

  BcModule &M;
  const TranslationUnit &Unit;
  BcChunk &C;
  uint16_t RegTop = 0;
  ptrdiff_t LastTick = -1;
  std::vector<int32_t> BlockStart;
  std::vector<BlockRef> BlockRefs;
  std::vector<SwitchRef> SwitchRefs;
};

//===----------------------------------------------------------------------===//
// Expression lowering
//===----------------------------------------------------------------------===//

uint16_t ChunkCompiler::compileExpr(const Expr *E) {
  switch (E->kind()) {
  case ExprKind::IntLit: {
    tick();
    uint16_t Dst = allocReg();
    BcInstr I = ins(BcOp::ConstInt);
    I.A = Dst;
    I.Imm = exprCast<IntLitExpr>(E)->value();
    emit(I);
    return Dst;
  }
  case ExprKind::DoubleLit: {
    tick();
    uint16_t Dst = allocReg();
    BcInstr I = ins(BcOp::ConstDouble);
    I.A = Dst;
    I.Dbl = exprCast<DoubleLitExpr>(E)->value();
    emit(I);
    return Dst;
  }
  case ExprKind::StringLit: {
    tick();
    uint16_t Dst = allocReg();
    BcInstr I = ins(BcOp::ConstStr);
    I.A = Dst;
    I.X = static_cast<int32_t>(exprCast<StringLitExpr>(E)->stringId());
    emit(I);
    return Dst;
  }
  case ExprKind::DeclRef: {
    tick();
    const auto *Ref = exprCast<DeclRefExpr>(E);
    if (const auto *F = declDynCast<FunctionDecl>(Ref->decl())) {
      uint16_t Dst = allocReg();
      BcInstr I = ins(BcOp::ConstFn);
      I.A = Dst;
      I.Ptr = F;
      emit(I);
      return Dst;
    }
    const auto *V = declDynCast<VarDecl>(Ref->decl());
    if (!V) {
      uint16_t Dst = allocReg();
      emitFail("unresolved reference '" + Ref->name() + "'");
      return Dst;
    }
    uint16_t Dst = allocReg();
    bool IsGlobal = V->storage() == StorageKind::Global;
    if (V->type()->isArray() || V->type()->isStruct()) {
      BcInstr I = ins(IsGlobal ? BcOp::LeaGlobal : BcOp::LeaLocal);
      I.A = Dst;
      I.X = static_cast<int32_t>(V->cellOffset());
      emit(I);
      return Dst;
    }
    if (V->cellOffset() < 0) {
      // Error decl: route through the generic load so the walker's
      // out-of-bounds diagnostic is reproduced.
      BcInstr L = ins(IsGlobal ? BcOp::LeaGlobal : BcOp::LeaLocal);
      L.A = Dst;
      L.X = static_cast<int32_t>(V->cellOffset());
      emit(L);
      uint16_t Loc = Dst;
      Dst = allocReg();
      emitABX(BcOp::LoadCellD, Dst, Loc, 0);
      return Dst;
    }
    BcInstr I = ins(IsGlobal ? BcOp::LoadGlobal : BcOp::LoadLocal);
    I.A = Dst;
    I.X = static_cast<int32_t>(V->cellOffset());
    emit(I);
    return Dst;
  }
  case ExprKind::Unary:
    return compileUnary(exprCast<UnaryExpr>(E));
  case ExprKind::Binary:
    return compileBinary(exprCast<BinaryExpr>(E));
  case ExprKind::Assign:
    return compileAssign(exprCast<AssignExpr>(E));
  case ExprKind::Conditional: {
    const auto *Cx = exprCast<ConditionalExpr>(E);
    tick();
    uint16_t Dst = allocReg();
    uint16_t Cond = compileExpr(Cx->cond());
    size_t Br = emitBranch(BcOp::BrFalse, Cond);
    RegTop = Dst + 1;
    uint16_t T = compileExpr(Cx->trueExpr());
    emitABX(BcOp::Move, Dst, T, 0);
    size_t J = emitBranch(BcOp::Jmp, 0);
    patchTo(Br);
    RegTop = Dst + 1;
    uint16_t F = compileExpr(Cx->falseExpr());
    emitABX(BcOp::Move, Dst, F, 0);
    patchTo(J);
    RegTop = Dst + 1;
    return Dst;
  }
  case ExprKind::Call:
    return compileCall(exprCast<CallExpr>(E));
  case ExprKind::Index:
  case ExprKind::Member: {
    tick();
    uint16_t Dst = allocReg();
    uint16_t Loc = compileLValue(E);
    if (E->type() && (E->type()->isArray() || E->type()->isStruct()))
      emitABX(BcOp::Move, Dst, Loc, 0);
    else
      emitABX(BcOp::LoadCellD, Dst, Loc, 0);
    RegTop = Dst + 1;
    return Dst;
  }
  case ExprKind::Cast: {
    const auto *Cx = exprCast<CastExpr>(E);
    tick();
    uint16_t Dst = allocReg();
    uint16_t Src = compileExpr(Cx->operand());
    if (Cx->targetType()->isVoid()) {
      BcInstr I = ins(BcOp::ConstInt);
      I.A = Dst;
      I.Imm = 0;
      emit(I);
    } else {
      BcInstr I = ins(BcOp::Conv);
      I.A = Dst;
      I.B = Src;
      I.Ptr = Cx->targetType();
      emit(I);
    }
    RegTop = Dst + 1;
    return Dst;
  }
  case ExprKind::InitList: {
    tick();
    uint16_t Dst = allocReg();
    emitFail("initializer list in expression context");
    return Dst;
  }
  }
  return allocReg();
}

uint16_t ChunkCompiler::compileLValue(const Expr *E) {
  switch (E->kind()) {
  case ExprKind::DeclRef: {
    const auto *Ref = exprCast<DeclRefExpr>(E);
    const auto *V = declDynCast<VarDecl>(Ref->decl());
    if (!V) {
      uint16_t Dst = allocReg();
      emitFail("cannot use '" + Ref->name() + "' as a location");
      return Dst;
    }
    return emitLea(V);
  }
  case ExprKind::Unary: {
    const auto *U = exprCast<UnaryExpr>(E);
    if (U->op() != UnaryOp::Deref) {
      uint16_t Dst = allocReg();
      emitFail("expression is not assignable");
      return Dst;
    }
    uint16_t Dst = allocReg();
    uint16_t P = compileExpr(U->operand());
    BcInstr I = ins(BcOp::LvalFromPtr);
    I.A = Dst;
    I.B = P;
    I.Ptr = msg("dereference of non-pointer value");
    emit(I);
    RegTop = Dst + 1;
    return Dst;
  }
  case ExprKind::Index: {
    const auto *Ix = exprCast<IndexExpr>(E);
    uint16_t Dst = allocReg();
    uint16_t Base = compileExpr(Ix->base());
    uint16_t Idx = compileExpr(Ix->index());
    int64_t Stride = E->type() ? E->type()->sizeInCells() : 1;
    if (Stride <= 0)
      Stride = 1;
    BcInstr I = ins(BcOp::IndexLoc);
    I.A = Dst;
    I.B = Base;
    I.C = Idx;
    I.X = static_cast<int32_t>(Stride);
    emit(I);
    RegTop = Dst + 1;
    return Dst;
  }
  case ExprKind::Member: {
    const auto *Mx = exprCast<MemberExpr>(E);
    uint16_t Dst = allocReg();
    if (Mx->isArrow()) {
      uint16_t Base = compileExpr(Mx->base());
      emitABX(BcOp::ArrowLoc, Dst, Base,
              static_cast<int32_t>(Mx->fieldOffset()));
    } else {
      uint16_t Base = compileLValue(Mx->base());
      emitABX(BcOp::AddOffs, Dst, Base,
              static_cast<int32_t>(Mx->fieldOffset()));
    }
    RegTop = Dst + 1;
    return Dst;
  }
  default: {
    uint16_t Dst = allocReg();
    emitFail("expression is not assignable");
    return Dst;
  }
  }
}

uint16_t ChunkCompiler::compileUnary(const UnaryExpr *E) {
  switch (E->op()) {
  case UnaryOp::Deref: {
    tick();
    uint16_t Dst = allocReg();
    uint16_t Src = compileExpr(E->operand());
    BcInstr I = ins(BcOp::DerefRV);
    I.A = Dst;
    I.B = Src;
    I.Sub = (E->type() && (E->type()->isArray() || E->type()->isStruct() ||
                           E->type()->isFunction()))
                ? 1
                : 0;
    emit(I);
    RegTop = Dst + 1;
    return Dst;
  }
  case UnaryOp::AddrOf: {
    tick();
    if (const auto *Ref = exprDynCast<DeclRefExpr>(E->operand()))
      if (const auto *F = declDynCast<FunctionDecl>(Ref->decl())) {
        uint16_t Dst = allocReg();
        BcInstr I = ins(BcOp::ConstFn);
        I.A = Dst;
        I.Ptr = F;
        emit(I);
        return Dst;
      }
    // A location register already holds the Ptr value &lvalue produces.
    return compileLValue(E->operand());
  }
  case UnaryOp::Neg:
  case UnaryOp::LogicalNot:
  case UnaryOp::BitNot: {
    tick();
    uint16_t Dst = allocReg();
    uint16_t Src = compileExpr(E->operand());
    BcOp K = E->op() == UnaryOp::Neg
                 ? BcOp::Neg
                 : (E->op() == UnaryOp::LogicalNot ? BcOp::LogNot
                                                   : BcOp::BitNot);
    emitABX(K, Dst, Src, 0);
    RegTop = Dst + 1;
    return Dst;
  }
  case UnaryOp::PreInc:
  case UnaryOp::PreDec:
  case UnaryOp::PostInc:
  case UnaryOp::PostDec: {
    tick();
    bool IsInc =
        E->op() == UnaryOp::PreInc || E->op() == UnaryOp::PostInc;
    bool IsPre = E->op() == UnaryOp::PreInc || E->op() == UnaryOp::PreDec;
    uint16_t Dst = allocReg();
    uint16_t Loc = compileLValue(E->operand());
    BcInstr I = ins(BcOp::IncDec);
    I.A = Dst;
    I.B = Loc;
    I.Sub = (IsInc ? IncDecIsInc : 0) | (IsPre ? IncDecIsPre : 0);
    I.X = static_cast<int32_t>(strideOf(E->operand()->type()));
    emit(I);
    RegTop = Dst + 1;
    return Dst;
  }
  }
  return allocReg();
}

uint16_t ChunkCompiler::compileBinary(const BinaryExpr *E) {
  if (E->op() == BinaryOp::LogicalAnd) {
    tick();
    uint16_t Dst = allocReg();
    uint16_t L = compileExpr(E->lhs());
    BcInstr Zero = ins(BcOp::ConstInt);
    Zero.A = Dst;
    Zero.Imm = 0;
    emit(Zero);
    size_t Br = emitBranch(BcOp::BrFalse, L);
    RegTop = Dst + 1;
    uint16_t R = compileExpr(E->rhs());
    emitABX(BcOp::Truthy, Dst, R, 0);
    patchTo(Br);
    RegTop = Dst + 1;
    return Dst;
  }
  if (E->op() == BinaryOp::LogicalOr) {
    tick();
    uint16_t Dst = allocReg();
    uint16_t L = compileExpr(E->lhs());
    BcInstr One = ins(BcOp::ConstInt);
    One.A = Dst;
    One.Imm = 1;
    emit(One);
    size_t Br = emitBranch(BcOp::BrTrue, L);
    RegTop = Dst + 1;
    uint16_t R = compileExpr(E->rhs());
    emitABX(BcOp::Truthy, Dst, R, 0);
    patchTo(Br);
    RegTop = Dst + 1;
    return Dst;
  }
  tick();
  uint16_t Dst = allocReg();
  uint16_t L = compileExpr(E->lhs());
  uint16_t R = compileExpr(E->rhs());
  BcInstr I = ins(BcOp::BinOp);
  I.A = Dst;
  I.B = L;
  I.C = R;
  I.Sub = static_cast<uint8_t>(E->op());
  I.X = static_cast<int32_t>(strideOf(E->type()));
  I.Imm = strideOf(E->lhs()->type());
  emit(I);
  RegTop = Dst + 1;
  return Dst;
}

uint16_t ChunkCompiler::compileAssign(const AssignExpr *E) {
  const Type *LhsTy = E->lhs()->type();
  tick();
  uint16_t Dst = allocReg();

  if (LhsTy && LhsTy->isStruct()) {
    uint16_t Loc = compileLValue(E->lhs());
    uint16_t Src = compileExpr(E->rhs());
    BcInstr I = ins(BcOp::StructAssign);
    I.A = Dst;
    I.B = Loc;
    I.C = Src;
    I.X = static_cast<int32_t>(LhsTy->sizeInCells());
    emit(I);
    RegTop = Dst + 1;
    return Dst;
  }

  uint16_t Loc = compileLValue(E->lhs());
  uint16_t Val;
  if (E->compoundOp()) {
    uint16_t Old = allocReg();
    emitABX(BcOp::LoadCellD, Old, Loc, 0);
    uint16_t R = compileExpr(E->rhs());
    Val = allocReg();
    BcInstr B = ins(BcOp::BinOp);
    B.A = Val;
    B.B = Old;
    B.C = R;
    B.Sub = static_cast<uint8_t>(*E->compoundOp());
    B.X = static_cast<int32_t>(strideOf(E->type()));
    B.Imm = strideOf(LhsTy);
    emit(B);
  } else {
    Val = compileExpr(E->rhs());
  }
  BcInstr S = ins(BcOp::ConvStore);
  S.A = Dst;
  S.B = Loc;
  S.C = Val;
  S.Ptr = LhsTy;
  emit(S);
  RegTop = Dst + 1;
  return Dst;
}

uint16_t ChunkCompiler::compileCall(const CallExpr *E) {
  int32_t Site = (E->callSiteId() != UINT32_MAX &&
                  E->callSiteId() < Unit.NumCallSites)
                     ? static_cast<int32_t>(E->callSiteId())
                     : -1;

  if (const FunctionDecl *Direct = E->directCallee()) {
    // The call node's own tick: TickCall replicates the walker's counter
    // leaks when the step limit hits exactly here, so it must stay a
    // distinct instruction (never merged into a neighboring Tick).
    BcInstr T = ins(BcOp::TickCall);
    T.X = Site;
    T.Sub = E->args().empty() ? 0 : 1;
    T.Ptr = Direct;
    emit(T);

    uint16_t Dst = allocReg();
    uint16_t ArgBase = RegTop;
    const auto &ParamTypes = Direct->type()->params();
    for (size_t I = 0; I < E->args().size(); ++I) {
      uint16_t R = compileExpr(E->args()[I]);
      (void)R;
      assert(R == ArgBase + I && "argument registers not contiguous");
      if (I < ParamTypes.size() && ParamTypes[I]->isStruct()) {
        BcInstr Ck = ins(BcOp::CheckStructArg);
        Ck.A = static_cast<uint16_t>(ArgBase + I);
        emit(Ck);
      }
    }
    BcInstr I =
        ins(Direct->isBuiltin() ? BcOp::CallBuiltin : BcOp::CallDirect);
    I.A = Dst;
    I.B = ArgBase;
    I.C = static_cast<uint16_t>(E->args().size());
    I.Ptr = Direct;
    emit(I);
    RegTop = Dst + 1;
    return Dst;
  }

  // Indirect call: the walker bails before any counter bump if the tick
  // fails (the callee evaluation is halted-checked), so a plain Tick is
  // correct here.
  tick();
  uint16_t Dst = allocReg();
  uint16_t Fn = compileExpr(E->callee());
  BcInstr Ck = ins(BcOp::CheckFn);
  Ck.A = Fn;
  emit(Ck);
  if (Site >= 0) {
    BcInstr Bp = ins(BcOp::SiteBump);
    Bp.X = Site;
    emit(Bp);
  }
  // Struct-argument checks use the callee expression's static function
  // type; at run time the walker consults the resolved callee, which
  // matches for well-typed programs (the VM re-checks at bind time).
  const FunctionType *FTy = nullptr;
  if (const auto *PT = typeDynCast<PointerType>(E->callee()->type()))
    FTy = typeDynCast<FunctionType>(PT->pointee());
  uint16_t ArgBase = RegTop;
  for (size_t I = 0; I < E->args().size(); ++I) {
    uint16_t R = compileExpr(E->args()[I]);
    (void)R;
    assert(R == ArgBase + I && "argument registers not contiguous");
    if (FTy && I < FTy->params().size() && FTy->params()[I]->isStruct()) {
      BcInstr C2 = ins(BcOp::CheckStructArg);
      C2.A = static_cast<uint16_t>(ArgBase + I);
      emit(C2);
    }
  }
  BcInstr I = ins(BcOp::CallIndirect);
  I.A = Dst;
  I.B = ArgBase;
  I.C = static_cast<uint16_t>(E->args().size());
  I.X = Fn;
  emit(I);
  RegTop = Dst + 1;
  return Dst;
}

//===----------------------------------------------------------------------===//
// Variable initialization
//===----------------------------------------------------------------------===//

uint16_t ChunkCompiler::locAt(uint16_t BaseLoc, int64_t Off) {
  if (Off == 0)
    return BaseLoc;
  uint16_t Dst = allocReg();
  emitABX(BcOp::AddOffs, Dst, BaseLoc, static_cast<int32_t>(Off));
  return Dst;
}

void ChunkCompiler::fillInit(uint16_t BaseLoc, int64_t Off, const Type *Ty,
                             const Expr *Init) {
  if (const auto *List = exprDynCast<InitListExpr>(Init)) {
    uint16_t Save = RegTop;
    uint16_t Loc = locAt(BaseLoc, Off);
    BcInstr Z = ins(BcOp::ZeroLoc);
    Z.A = Loc;
    Z.Imm = Ty->sizeInCells();
    emit(Z);
    RegTop = Save;
    if (const auto *AT = typeDynCast<ArrayType>(Ty)) {
      int64_t Stride = AT->element()->sizeInCells();
      for (size_t I = 0; I < List->elements().size(); ++I) {
        uint16_t S2 = RegTop;
        fillInit(BaseLoc, Off + static_cast<int64_t>(I) * Stride,
                 AT->element(), List->elements()[I]);
        RegTop = S2;
      }
      return;
    }
    if (const auto *ST = typeDynCast<StructType>(Ty)) {
      for (size_t I = 0;
           I < List->elements().size() && I < ST->fields().size(); ++I) {
        uint16_t S2 = RegTop;
        fillInit(BaseLoc, Off + ST->fields()[I].OffsetCells,
                 ST->fields()[I].Ty, List->elements()[I]);
        RegTop = S2;
      }
      return;
    }
    emitFail("braced initializer for scalar");
    return;
  }

  if (const auto *Str = exprDynCast<StringLitExpr>(Init)) {
    if (const auto *AT = typeDynCast<ArrayType>(Ty);
        AT && AT->element()->isChar()) {
      uint16_t Save = RegTop;
      uint16_t Loc = locAt(BaseLoc, Off);
      BcInstr I = ins(BcOp::StrCopyLoc);
      I.A = Loc;
      I.X = static_cast<int32_t>(Ty->sizeInCells());
      I.Ptr = Str;
      emit(I);
      RegTop = Save;
      return;
    }
  }

  uint16_t Save = RegTop;
  uint16_t Val = compileExpr(Init);
  uint16_t Loc = locAt(BaseLoc, Off);
  uint16_t Dead = allocReg();
  BcInstr S = ins(BcOp::ConvStore);
  S.A = Dead;
  S.B = Loc;
  S.C = Val;
  S.Ptr = Ty;
  emit(S);
  RegTop = Save;
}

void ChunkCompiler::compileDeclInit(const VarDecl *V) {
  uint16_t Base = emitLea(V);
  if (!V->init()) {
    BcInstr Z = ins(BcOp::ZeroLoc);
    Z.A = Base;
    Z.Imm = V->type()->sizeInCells();
    emit(Z);
    return;
  }
  fillInit(Base, 0, V->type(), V->init());
}

//===----------------------------------------------------------------------===//
// Blocks and chunks
//===----------------------------------------------------------------------===//

void ChunkCompiler::compileBlock(const BasicBlock *B,
                                 const FunctionDecl *F) {
  BlockStart[B->id()] = static_cast<int32_t>(C.Code.size());
  pin();

  BcInstr Enter = ins(BcOp::BlockEnter);
  Enter.X = static_cast<int32_t>(B->id());
  emit(Enter);

  for (const CfgAction &A : B->actions()) {
    RegTop = 0;
    if (A.ActionKind == CfgAction::Kind::Eval)
      compileExpr(A.E);
    else if (A.ActionKind == CfgAction::Kind::DeclInit)
      compileDeclInit(A.Var);
    else {
      // ZeroFrameRange: like a no-init DeclInit, but addressed by raw
      // frame offset (tickless in both engines).
      uint16_t Dst = allocReg();
      BcInstr Lea = ins(BcOp::LeaLocal);
      Lea.A = Dst;
      Lea.X = static_cast<int32_t>(A.FrameOffset);
      emit(Lea);
      BcInstr Z = ins(BcOp::ZeroLoc);
      Z.A = Dst;
      Z.Imm = A.CellCount;
      emit(Z);
    }
  }
  RegTop = 0;

  switch (B->terminator()) {
  case TerminatorKind::Goto: {
    BcInstr I = ins(BcOp::ArcJmp);
    I.B = static_cast<uint16_t>(B->id());
    I.C = 0;
    size_t Idx = emit(I);
    blockTargetPlaceholder(B->successors()[0], Idx, false);
    break;
  }
  case TerminatorKind::CondBranch: {
    uint16_t Cond = compileExpr(B->condOrValue());
    BcInstr I = ins(BcOp::ArcCondBr);
    I.A = Cond;
    I.B = static_cast<uint16_t>(B->id());
    size_t Idx = emit(I);
    blockTargetPlaceholder(B->successors()[0], Idx, false);
    blockTargetPlaceholder(B->successors()[1], Idx, true);
    break;
  }
  case TerminatorKind::Switch: {
    uint16_t Cond = compileExpr(B->condOrValue());
    M.SwitchTables.emplace_back();
    BcSwitchTable &Table = M.SwitchTables.back();
    SwitchRef SR;
    SR.Table = &Table;
    const auto &Cases = B->switchCases();
    for (size_t I = 0; I < Cases.size(); ++I) {
      BcSwitchCase SC;
      SC.Value = Cases[I].Value;
      SC.Slot = static_cast<uint16_t>(I);
      Table.Cases.push_back(SC);
      SR.CaseBlocks.push_back(Cases[I].Target->id());
    }
    Table.DefaultSlot = static_cast<uint16_t>(Cases.size());
    SR.DefaultBlock = B->successors().back()->id();
    SwitchRefs.push_back(std::move(SR));
    BcInstr I = ins(BcOp::ArcSwitch);
    I.A = Cond;
    I.B = static_cast<uint16_t>(B->id());
    I.Ptr = &Table;
    emit(I);
    break;
  }
  case TerminatorKind::Return: {
    if (!B->condOrValue()) {
      emit(ins(BcOp::RetVoid));
      break;
    }
    uint16_t Val = compileExpr(B->condOrValue());
    BcInstr I = ins(BcOp::RetVal);
    I.A = Val;
    I.Ptr = F->type()->returnType();
    emit(I);
    break;
  }
  case TerminatorKind::Unreachable:
    emitFail("control fell into an unreachable block in '" + F->name() +
             "'");
    break;
  }
}

void ChunkCompiler::compileFunction(const Cfg &G) {
  const FunctionDecl *F = G.function();
  C.Function = F;
  BlockStart.assign(G.size(), -1);

  // The entry block executes first; it is first in the block list after
  // simplify(), so emitting in list order needs no entry trampoline.
  assert(G.entry() == G.blocks().front().get() && "entry not first");
  for (const auto &B : G.blocks())
    compileBlock(B.get(), F);
  emit(ins(BcOp::Halt));

  for (const BlockRef &R : BlockRefs) {
    int32_t Target = BlockStart[R.BlockId];
    assert(Target >= 0 && "branch to unemitted block");
    if (R.InImm)
      C.Code[R.InstrIdx].Imm = Target;
    else
      C.Code[R.InstrIdx].X = Target;
  }
  for (const SwitchRef &SR : SwitchRefs) {
    for (size_t I = 0; I < SR.CaseBlocks.size(); ++I)
      SR.Table->Cases[I].Target = BlockStart[SR.CaseBlocks[I]];
    SR.Table->DefaultTarget = BlockStart[SR.DefaultBlock];
  }
}

void ChunkCompiler::compileGlobalInit() {
  // setupGlobals zeroes the segment and copies string literals natively;
  // this chunk runs only the declaration-order initializers (which tick,
  // exactly like the walker's fillInitializer).
  for (const VarDecl *G : Unit.Globals) {
    if (G->cellOffset() < 0)
      continue;
    if (!G->init())
      continue;
    RegTop = 0;
    uint16_t Base = emitLea(G);
    fillInit(Base, 0, G->type(), G->init());
  }
  emit(ins(BcOp::RetVoid));
}

} // namespace

//===----------------------------------------------------------------------===//
// Entry points
//===----------------------------------------------------------------------===//

const BcChunk *BcModule::chunkFor(const FunctionDecl *F) const {
  uint32_t Id = F->functionId();
  if (Id >= Chunks.size())
    return nullptr;
  return Chunks[Id].get();
}

BcModule sest::bc::compileBytecode(const TranslationUnit &Unit,
                                   const CfgModule &Cfgs) {
  obs::ScopedPhase Phase("interp.bc_compile");
  auto Start = std::chrono::steady_clock::now();

  BcModule M;
  M.Chunks.resize(Unit.Functions.size());
  for (const auto &[F, G] : Cfgs.all()) {
    auto Chunk = std::make_unique<BcChunk>();
    ChunkCompiler CC(M, Unit, *Chunk);
    CC.compileFunction(*G);
    M.NumInstrs += Chunk->Code.size();
    M.Chunks[F->functionId()] = std::move(Chunk);
  }
  {
    ChunkCompiler CC(M, Unit, M.GlobalInit);
    CC.compileGlobalInit();
    M.NumInstrs += M.GlobalInit.Code.size();
  }

  M.CompileMs = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  obs::counterAdd("interp.bytecode.compiles");
  obs::counterAdd("interp.bytecode.compile_ms", M.CompileMs);
  obs::counterAdd("interp.bytecode.compiled_instrs",
                  static_cast<double>(M.NumInstrs));
  return M;
}

const char *sest::bc::bcOpName(BcOp Op) {
  switch (Op) {
#define SEST_BC_OP_NAME(Name)                                                \
  case BcOp::Name:                                                           \
    return #Name;
    SEST_BC_OPS(SEST_BC_OP_NAME)
#undef SEST_BC_OP_NAME
  }
  return "?";
}

std::string sest::bc::disassemble(const BcChunk &C) {
  std::string Out;
  for (size_t I = 0; I < C.Code.size(); ++I) {
    const BcInstr &Ins = C.Code[I];
    Out += std::to_string(I) + "\t" + bcOpName(Ins.K) + " A=" +
           std::to_string(Ins.A) + " B=" + std::to_string(Ins.B) + " C=" +
           std::to_string(Ins.C) + " X=" + std::to_string(Ins.X) + "\n";
  }
  return Out;
}

//===- interp/bytecode/BytecodeCompiler.h - CFG -> bytecode -----*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers every defined function's CFG into a BcModule: block labels are
/// resolved to instruction offsets, locals become frame cell offsets,
/// expression trees are flattened onto a register window in the walker's
/// exact evaluation order, and profile-counter bumps are fused into the
/// branch / call instructions. Lowering happens once per program; runs
/// share the module read-only, so the suite runner can execute inputs
/// concurrently against one compiled module.
///
//===----------------------------------------------------------------------===//

#ifndef INTERP_BYTECODE_BYTECODECOMPILER_H
#define INTERP_BYTECODE_BYTECODECOMPILER_H

#include "interp/bytecode/Bytecode.h"

namespace sest {
class CfgModule;
struct TranslationUnit;
} // namespace sest

namespace sest::bc {

/// Lowers \p Unit (with CFGs from \p Cfgs) into bytecode. Never fails:
/// constructs that cannot execute (unresolved references, non-assignable
/// lvalues) lower to FailMsg instructions carrying the tree-walker's
/// exact diagnostic.
BcModule compileBytecode(const TranslationUnit &Unit, const CfgModule &Cfgs);

} // namespace sest::bc

#endif // INTERP_BYTECODE_BYTECODECOMPILER_H

//===- interp/bytecode/BytecodeVM.cpp - Bytecode executor ------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
//
// The runtime (memory model, conversions, builtins, failure handling,
// step accounting) is a line-for-line transplant of interp/Interp.cpp;
// any behavioral drift between the two engines is a bug, and
// tests/test_bytecode_diff.cpp exists to catch it. Only the execution
// core differs: instead of recursing over the AST, dispatch() runs a
// flat instruction stream with all static decisions (offsets, strides,
// jump targets, diagnostics) resolved at lowering time.
//
//===----------------------------------------------------------------------===//

#include "interp/bytecode/BytecodeVM.h"

#include "obs/Telemetry.h"
#include "support/Prng.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>

using namespace sest;
using namespace sest::bc;

// Computed-goto dispatch needs the GNU labels-as-values extension.
#if defined(__GNUC__) || defined(__clang__)
#define SEST_BC_THREADED 1
#else
#define SEST_BC_THREADED 0
#endif

namespace {

/// A resolved memory location (one cell). Identical to the walker's.
struct Loc {
  uint32_t Space = 0;
  int64_t Offset = 0;
};

class BytecodeVM {
public:
  BytecodeVM(const TranslationUnit &Unit, const CfgModule &Cfgs,
             const BcModule &M, const ProgramInput &Input,
             const InterpOptions &Options)
      : Unit(Unit), Cfgs(Cfgs), M(M), Input(Input), Options(Options),
        Rng(Input.RandSeed) {}

  RunResult run();

private:
  void flushTelemetry() const;

  //===--------------------------------------------------------------------===//
  // Failure handling (no exceptions: a sticky flag short-circuits).
  //===--------------------------------------------------------------------===//

  Value fail(const std::string &Message) {
    if (!Failed && !Exited) {
      Failed = true;
      ErrorMsg = Message;
    }
    return Value::makeInt(0);
  }

  Value failLimit(RunLimit Limit, const std::string &Message) {
    if (!Failed && !Exited) {
      LimitHit = Limit;
      fail(Message + " (" + usageSummary() + ")");
    }
    return Value::makeInt(0);
  }

  std::string usageSummary() const {
    return "steps " + std::to_string(Steps) + ", call-depth high-water " +
           std::to_string(CallDepthHighWater) + ", heap high-water " +
           std::to_string(HeapHighWater) + " cells";
  }

  bool halted() const { return Failed || Exited; }

  //===--------------------------------------------------------------------===//
  // Memory
  //===--------------------------------------------------------------------===//

  struct HeapBlock {
    std::vector<Value> Cells;
    bool Freed = false;
  };

  Value *resolve(Loc L, const char *What) {
    switch (L.Space) {
    case static_cast<uint32_t>(MemSpace::Null):
      fail(std::string("null pointer ") + What);
      return nullptr;
    case static_cast<uint32_t>(MemSpace::Global):
      if (L.Offset < 0 || L.Offset >= static_cast<int64_t>(Globals.size())) {
        fail(std::string("global ") + What + " out of bounds");
        return nullptr;
      }
      return &Globals[L.Offset];
    case static_cast<uint32_t>(MemSpace::Stack):
      if (L.Offset < 0 || L.Offset >= static_cast<int64_t>(Stack.size())) {
        fail(std::string("stack ") + What + " out of bounds");
        return nullptr;
      }
      return &Stack[L.Offset];
    default: {
      size_t Idx = L.Space - static_cast<uint32_t>(MemSpace::HeapBase);
      if (Idx >= Heap.size()) {
        fail(std::string("wild pointer ") + What);
        return nullptr;
      }
      HeapBlock &B = Heap[Idx];
      if (B.Freed) {
        fail(std::string("use-after-free ") + What);
        return nullptr;
      }
      if (L.Offset < 0 || L.Offset >= static_cast<int64_t>(B.Cells.size())) {
        fail(std::string("heap ") + What + " out of bounds");
        return nullptr;
      }
      return &B.Cells[L.Offset];
    }
    }
  }

  Value loadCell(Loc L) {
    Value *P = resolve(L, "read");
    return P ? *P : Value::makeInt(0);
  }
  void storeCell(Loc L, Value V) {
    if (Value *P = resolve(L, "write"))
      *P = V;
  }
  void copyCells(Loc Dst, Loc Src, int64_t N) {
    for (int64_t I = 0; I < N && !halted(); ++I) {
      Value V = loadCell({Src.Space, Src.Offset + I});
      storeCell({Dst.Space, Dst.Offset + I}, V);
    }
  }
  void zeroCells(Loc Base, int64_t N) {
    for (int64_t I = 0; I < N; ++I)
      storeCell({Base.Space, Base.Offset + I}, Value::makeInt(0));
  }

  static Loc locOf(const Value &V) { return {V.PtrVal.Space, V.PtrVal.Offset}; }

  Loc varLoc(const VarDecl *V) const {
    if (V->storage() == StorageKind::Global)
      return {static_cast<uint32_t>(MemSpace::Global), V->cellOffset()};
    return {static_cast<uint32_t>(MemSpace::Stack),
            FrameBase + V->cellOffset()};
  }

  //===--------------------------------------------------------------------===//
  // Conversions
  //===--------------------------------------------------------------------===//

  Value convert(Value V, const Type *Ty) {
    if (!Ty)
      return V;
    switch (Ty->kind()) {
    case TypeKind::Int:
    case TypeKind::Char:
      return Value::makeInt(V.asInt());
    case TypeKind::Double:
      return Value::makeDouble(V.asDouble());
    case TypeKind::Pointer: {
      const Type *Pointee = typeCast<PointerType>(Ty)->pointee();
      if (Pointee->isFunction()) {
        if (V.isFnPtr())
          return V;
        if (V.isInt() && V.IntVal == 0)
          return Value::makeFn(nullptr);
        if (V.isPtr() && V.PtrVal.isNull())
          return Value::makeFn(nullptr);
        return V; // tolerated; call-through will diagnose
      }
      if (V.isPtr())
        return V;
      if (V.isInt())
        return V.IntVal == 0
                   ? Value::makeNull()
                   : Value::makePtr(
                         {static_cast<uint32_t>(MemSpace::Null), V.IntVal});
      return V;
    }
    default:
      return V;
    }
  }

  //===--------------------------------------------------------------------===//
  // Cost / step accounting
  //===--------------------------------------------------------------------===//

  void tick() {
    ++Steps;
    if (CurSelfSteps)
      ++*CurSelfSteps;
    Cycles += CostFactor;
    if (Steps > Options.MaxSteps)
      failLimit(RunLimit::Steps,
                "execution step limit exceeded (MaxSteps=" +
                    std::to_string(Options.MaxSteps) + ")");
  }

  double factorFor(const FunctionDecl *F) const {
    return Options.OptimizedFunctions.count(F) ? Options.OptimizedCostFactor
                                               : 1.0;
  }

  //===--------------------------------------------------------------------===//
  // Binary operators (walker's applyBinary with compile-time strides)
  //===--------------------------------------------------------------------===//

  Value applyBinary(BinaryOp Op, Value L, Value R, int64_t ResultStride,
                    int64_t LhsStride);

  //===--------------------------------------------------------------------===//
  // Calls / builtins / execution
  //===--------------------------------------------------------------------===//

  Value callFunction(const FunctionDecl *F, size_t ArgBase, size_t NArgs,
                     size_t NewRegBase);
  Value dispatch(const BcChunk &Ch);
  Value doBuiltin(const FunctionDecl *F, size_t ArgBase, size_t NArgs);

  void setupGlobals();
  Loc stringLoc(uint32_t StringId) const {
    return {static_cast<uint32_t>(MemSpace::Global), StringBase[StringId]};
  }

  int readCharFromInput() {
    if (InPos >= Input.Text.size())
      return -1;
    return static_cast<unsigned char>(Input.Text[InPos++]);
  }
  int64_t readIntFromInput() {
    while (InPos < Input.Text.size() &&
           std::isspace(static_cast<unsigned char>(Input.Text[InPos])))
      ++InPos;
    if (InPos >= Input.Text.size())
      return -1;
    bool Neg = false;
    if (Input.Text[InPos] == '-') {
      Neg = true;
      ++InPos;
    }
    bool Any = false;
    int64_t V = 0;
    while (InPos < Input.Text.size() &&
           std::isdigit(static_cast<unsigned char>(Input.Text[InPos]))) {
      V = V * 10 + (Input.Text[InPos] - '0');
      ++InPos;
      Any = true;
    }
    if (!Any)
      return -1;
    return Neg ? -V : V;
  }

  //===--------------------------------------------------------------------===//
  // State
  //===--------------------------------------------------------------------===//

  const TranslationUnit &Unit;
  const CfgModule &Cfgs;
  const BcModule &M;
  const ProgramInput &Input;
  const InterpOptions &Options;

  std::vector<Value> Globals;
  std::vector<Value> Stack;
  std::vector<HeapBlock> Heap;
  int64_t HeapCellsUsed = 0;
  int64_t HeapHighWater = 0;
  std::vector<int64_t> StringBase;
  int64_t FrameBase = 0;
  unsigned CallDepth = 0;
  unsigned CallDepthHighWater = 0;
  RunLimit LimitHit = RunLimit::None;
  std::vector<uint64_t> SelfSteps;
  uint64_t *CurSelfSteps = nullptr;

  /// The register file: one grow-only vector, windowed per frame.
  std::vector<Value> Regs;
  size_t RegBase = 0;
  /// Profile row of the function currently executing (null while the
  /// global-initializer chunk runs, which has no profiled blocks).
  FunctionProfile *CurFP = nullptr;
  /// Per-function arc classification under the run's layout, shaped like
  /// ArcCounts: FallTbl[fid][block][slot] is 1 when that arc lands on
  /// the layout-adjacent block. Precomputed once per run so the arc
  /// handlers pay one indexed load, not a position comparison.
  std::vector<std::vector<std::vector<uint8_t>>> FallTbl;
  /// FallTbl row of the function currently executing (null during the
  /// global-initializer chunk, which has no arc instructions).
  const std::vector<std::vector<uint8_t>> *CurFall = nullptr;
  LayoutCostCounters LayoutCost;
  /// Instructions dispatched (telemetry: interp.bytecode.instrs).
  uint64_t InstrCount = 0;

  Profile Prof;
  std::string Output;

  bool Failed = false;
  bool Exited = false;
  std::string ErrorMsg;
  int64_t ExitVal = 0;

  uint64_t Steps = 0;
  double Cycles = 0;
  double CostFactor = 1.0;

  size_t InPos = 0;
  Prng Rng;
  uintptr_t HostStackBase = 0;
};

//===----------------------------------------------------------------------===//
// Globals and program startup
//===----------------------------------------------------------------------===//

void BytecodeVM::setupGlobals() {
  // Layout: [globals][string literals...], each string NUL-terminated.
  // Identical to the walker; the declaration-order initializers run in
  // the module's GlobalInit chunk instead (they tick, so they must go
  // through the dispatch loop).
  int64_t Total = Unit.GlobalSizeCells;
  StringBase.resize(Unit.StringTable.size());
  for (size_t I = 0; I < Unit.StringTable.size(); ++I) {
    StringBase[I] = Total;
    Total += static_cast<int64_t>(Unit.StringTable[I].size()) + 1;
  }
  Globals.assign(Total, Value::makeInt(0));
  for (size_t I = 0; I < Unit.StringTable.size(); ++I) {
    const std::string &S = Unit.StringTable[I];
    for (size_t J = 0; J < S.size(); ++J)
      Globals[StringBase[I] + J] =
          Value::makeInt(static_cast<unsigned char>(S[J]));
  }
}

RunResult BytecodeVM::run() {
  obs::ScopedPhase Phase("interp.run", Input.Name);
  Prof.ProgramName = Unit.Functions.empty() ? "" : "program";
  Prof.InputName = Input.Name;
  Prof.Functions.resize(Unit.Functions.size());
  SelfSteps.assign(Unit.Functions.size(), 0);
  for (const auto &[F, G] : Cfgs.all()) {
    FunctionProfile &FP = Prof.Functions[F->functionId()];
    FP.BlockCounts.assign(G->size(), 0.0);
    FP.ArcCounts.resize(G->size());
    for (const auto &B : G->blocks())
      FP.ArcCounts[B->id()].assign(B->successors().size(), 0.0);
  }
  Prof.CallSiteCounts.assign(Unit.NumCallSites, 0.0);

  std::vector<std::vector<uint32_t>> Pos =
      layoutPositions(Unit, Cfgs, Options.Layout);
  FallTbl.resize(Unit.Functions.size());
  for (const auto &[F, G] : Cfgs.all()) {
    auto &T = FallTbl[F->functionId()];
    const std::vector<uint32_t> &P = Pos[F->functionId()];
    T.resize(G->size());
    for (const auto &B : G->blocks()) {
      std::vector<uint8_t> &Row = T[B->id()];
      Row.resize(B->successors().size());
      for (size_t S = 0; S < Row.size(); ++S)
        Row[S] =
            P[B->successors()[S]->id()] == P[B->id()] + 1 ? 1 : 0;
    }
  }

  char HostStackAnchor;
  HostStackBase = reinterpret_cast<uintptr_t>(&HostStackAnchor);

  setupGlobals();
  if (Regs.size() < M.GlobalInit.NumRegs)
    Regs.resize(M.GlobalInit.NumRegs);
  RegBase = 0;
  dispatch(M.GlobalInit);

  RunResult R;
  const FunctionDecl *Main = Unit.findFunction("main");
  if (!Main || !Main->isDefined()) {
    R.Error = "program has no main function";
    return R;
  }
  if (!Main->params().empty()) {
    R.Error = "main must take no parameters";
    return R;
  }

  Value Ret;
  if (!halted())
    Ret = callFunction(Main, 0, 0, 0);

  R.Ok = !Failed;
  R.Error = ErrorMsg;
  R.ExitCode = Exited ? ExitVal : Ret.asInt();
  R.Output = std::move(Output);
  Prof.TotalCycles = Cycles;
  R.TheProfile = std::move(Prof);
  R.LimitHit = LimitHit;
  R.StepsExecuted = Steps;
  R.HeapCellsHighWater = HeapHighWater;
  R.CallDepthHighWater = CallDepthHighWater;
  R.LayoutCost = LayoutCost;
  flushTelemetry();
  return R;
}

void BytecodeVM::flushTelemetry() const {
  if (!obs::telemetryActive())
    return;
  obs::counterAdd("interp.runs");
  obs::counterAdd("interp.steps.executed", static_cast<double>(Steps));
  obs::counterAdd("interp.bytecode.instrs",
                  static_cast<double>(InstrCount));
  obs::gaugeMax("interp.heap_cells.high_water",
                static_cast<double>(HeapHighWater));
  obs::gaugeMax("interp.call_depth.high_water",
                static_cast<double>(CallDepthHighWater));
  if (LimitHit != RunLimit::None)
    obs::counterAdd(std::string("interp.limit_hit.") +
                    runLimitName(LimitHit));
  obs::counterAdd("interp.layout.fall_through",
                  static_cast<double>(LayoutCost.FallThrough));
  obs::counterAdd("interp.layout.taken",
                  static_cast<double>(LayoutCost.Taken));
  obs::counterAdd("interp.layout.calls",
                  static_cast<double>(LayoutCost.Calls));
  obs::counterAdd("interp.layout.returns",
                  static_cast<double>(LayoutCost.Returns));
  for (size_t F = 0; F < SelfSteps.size(); ++F)
    if (SelfSteps[F])
      obs::counterAdd("interp.fn_self_steps." + Unit.Functions[F]->name(),
                      static_cast<double>(SelfSteps[F]));
}

//===----------------------------------------------------------------------===//
// Binary operators
//===----------------------------------------------------------------------===//

Value BytecodeVM::applyBinary(BinaryOp Op, Value L, Value R,
                              int64_t ResultStride, int64_t LhsStride) {
  switch (Op) {
  case BinaryOp::Add: {
    if (L.isPtr() || R.isPtr()) {
      Value P = L.isPtr() ? L : R;
      Value N = L.isPtr() ? R : L;
      RuntimePtr Out = P.PtrVal;
      Out.Offset += N.asInt() * ResultStride;
      return Value::makePtr(Out);
    }
    if (L.isDouble() || R.isDouble())
      return Value::makeDouble(L.asDouble() + R.asDouble());
    return Value::makeInt(L.asInt() + R.asInt());
  }
  case BinaryOp::Sub: {
    if (L.isPtr() && R.isPtr()) {
      if (L.PtrVal.Space != R.PtrVal.Space)
        return fail("subtracting pointers into different objects");
      return Value::makeInt((L.PtrVal.Offset - R.PtrVal.Offset) / LhsStride);
    }
    if (L.isPtr()) {
      RuntimePtr Out = L.PtrVal;
      Out.Offset -= R.asInt() * ResultStride;
      return Value::makePtr(Out);
    }
    if (L.isDouble() || R.isDouble())
      return Value::makeDouble(L.asDouble() - R.asDouble());
    return Value::makeInt(L.asInt() - R.asInt());
  }
  case BinaryOp::Mul:
    if (L.isDouble() || R.isDouble())
      return Value::makeDouble(L.asDouble() * R.asDouble());
    return Value::makeInt(L.asInt() * R.asInt());
  case BinaryOp::Div:
    if (L.isDouble() || R.isDouble()) {
      double D = R.asDouble();
      if (D == 0.0)
        return fail("floating division by zero");
      return Value::makeDouble(L.asDouble() / D);
    }
    if (R.asInt() == 0)
      return fail("integer division by zero");
    return Value::makeInt(L.asInt() / R.asInt());
  case BinaryOp::Rem:
    if (R.asInt() == 0)
      return fail("integer remainder by zero");
    return Value::makeInt(L.asInt() % R.asInt());
  case BinaryOp::Shl: {
    int64_t Sh = R.asInt();
    if (Sh < 0 || Sh > 63)
      return fail("shift amount out of range");
    return Value::makeInt(static_cast<int64_t>(
        static_cast<uint64_t>(L.asInt()) << Sh));
  }
  case BinaryOp::Shr: {
    int64_t Sh = R.asInt();
    if (Sh < 0 || Sh > 63)
      return fail("shift amount out of range");
    return Value::makeInt(L.asInt() >> Sh);
  }
  case BinaryOp::BitAnd:
    return Value::makeInt(L.asInt() & R.asInt());
  case BinaryOp::BitOr:
    return Value::makeInt(L.asInt() | R.asInt());
  case BinaryOp::BitXor:
    return Value::makeInt(L.asInt() ^ R.asInt());
  case BinaryOp::Lt:
  case BinaryOp::Gt:
  case BinaryOp::Le:
  case BinaryOp::Ge: {
    double Cmp;
    if (L.isPtr() && R.isPtr()) {
      if (L.PtrVal.Space != R.PtrVal.Space)
        Cmp = L.PtrVal.Space < R.PtrVal.Space ? -1 : 1;
      else
        Cmp = L.PtrVal.Offset < R.PtrVal.Offset
                  ? -1
                  : (L.PtrVal.Offset > R.PtrVal.Offset ? 1 : 0);
    } else if (L.isDouble() || R.isDouble()) {
      double A = L.asDouble(), B = R.asDouble();
      Cmp = A < B ? -1 : (A > B ? 1 : 0);
    } else {
      int64_t A = L.asInt(), B = R.asInt();
      Cmp = A < B ? -1 : (A > B ? 1 : 0);
    }
    bool Result = false;
    switch (Op) {
    case BinaryOp::Lt:
      Result = Cmp < 0;
      break;
    case BinaryOp::Gt:
      Result = Cmp > 0;
      break;
    case BinaryOp::Le:
      Result = Cmp <= 0;
      break;
    case BinaryOp::Ge:
      Result = Cmp >= 0;
      break;
    default:
      break;
    }
    return Value::makeInt(Result ? 1 : 0);
  }
  case BinaryOp::Eq:
  case BinaryOp::Ne: {
    bool Equal;
    if (L.isPtr() && R.isPtr())
      Equal = L.PtrVal == R.PtrVal;
    else if (L.isFnPtr() || R.isFnPtr())
      Equal = L.isFnPtr() && R.isFnPtr() ? L.FnVal == R.FnVal
              : (L.isFnPtr() ? L.FnVal == nullptr && !R.isTruthy()
                             : R.FnVal == nullptr && !L.isTruthy());
    else if (L.isPtr() || R.isPtr()) {
      const Value &P = L.isPtr() ? L : R;
      const Value &N = L.isPtr() ? R : L;
      Equal = P.PtrVal.isNull() && N.asInt() == 0;
    } else if (L.isDouble() || R.isDouble())
      Equal = L.asDouble() == R.asDouble();
    else
      Equal = L.asInt() == R.asInt();
    return Value::makeInt((Op == BinaryOp::Eq) == Equal ? 1 : 0);
  }
  case BinaryOp::LogicalAnd:
  case BinaryOp::LogicalOr:
    break; // lowered to branches by the compiler
  }
  return Value::makeInt(0);
}

//===----------------------------------------------------------------------===//
// Function calls
//===----------------------------------------------------------------------===//

Value BytecodeVM::callFunction(const FunctionDecl *F, size_t ArgBase,
                               size_t NArgs, size_t NewRegBase) {
  if (CallDepth >= Options.MaxCallDepth)
    return failLimit(RunLimit::CallDepth,
                     "call depth limit exceeded in '" + F->name() +
                         "' (MaxCallDepth=" +
                         std::to_string(Options.MaxCallDepth) + ")");
  // The VM still recurses on the host stack (one dispatch() frame per
  // mini-C call), so keep the walker's host-stack budget; VM frames are
  // much smaller, so the limit only gets *harder* to hit.
  char HostStackProbe;
  uintptr_t Here = reinterpret_cast<uintptr_t>(&HostStackProbe);
  size_t Used = HostStackBase > Here ? HostStackBase - Here
                                     : Here - HostStackBase;
  if (Used > Options.MaxHostStackBytes)
    return failLimit(RunLimit::HostStack,
                     "call depth limit exceeded in '" + F->name() +
                         "' (host stack budget, MaxHostStackBytes=" +
                         std::to_string(Options.MaxHostStackBytes) + ")");
  const BcChunk *Ch = M.chunkFor(F);
  if (!Ch)
    return fail("call to undefined function '" + F->name() + "'");

  Prof.Functions[F->functionId()].EntryCount += 1;
  ++LayoutCost.Calls;

  int64_t SavedBase = FrameBase;
  double SavedFactor = CostFactor;
  uint64_t *SavedSelf = CurSelfSteps;
  FunctionProfile *SavedFP = CurFP;
  const std::vector<std::vector<uint8_t>> *SavedFall = CurFall;
  size_t SavedRegBase = RegBase;
  FrameBase = static_cast<int64_t>(Stack.size());
  // Like the walker, this early return leaves FrameBase clobbered; the
  // run is halted, so outer teardowns make it unobservable.
  if (Stack.size() + F->frameSizeCells() > (1u << 24))
    return failLimit(RunLimit::HostFrame,
                     "stack overflow in '" + F->name() + "'");
  Stack.resize(Stack.size() + F->frameSizeCells(), Value::makeInt(0));
  CostFactor = factorFor(F);
  if (F->functionId() < SelfSteps.size())
    CurSelfSteps = &SelfSteps[F->functionId()];
  ++CallDepth;
  CallDepthHighWater = std::max(CallDepthHighWater, CallDepth);
  CurFP = &Prof.Functions[F->functionId()];
  CurFall = &FallTbl[F->functionId()];

  // Bind parameters; struct params copy cells from the argument's
  // aggregate (the call site verified it is a Ptr).
  const auto &ParamTypes = F->type()->params();
  for (size_t I = 0; I < F->params().size(); ++I) {
    const VarDecl *P = F->params()[I];
    Loc PL = varLoc(P);
    const Type *PTy = I < ParamTypes.size() ? ParamTypes[I] : nullptr;
    Value Arg = I < NArgs ? Regs[ArgBase + I] : Value::makeInt(0);
    if (PTy && PTy->isStruct()) {
      if (Arg.isPtr())
        copyCells(PL, locOf(Arg), PTy->sizeInCells());
    } else {
      storeCell(PL, convert(Arg, P->type()));
    }
  }

  RegBase = NewRegBase;
  if (Regs.size() < RegBase + Ch->NumRegs)
    Regs.resize(RegBase + Ch->NumRegs);

  Value Ret = Value::makeInt(0);
  if (!halted())
    Ret = dispatch(*Ch);

  --CallDepth;
  CostFactor = SavedFactor;
  CurSelfSteps = SavedSelf;
  CurFP = SavedFP;
  CurFall = SavedFall;
  RegBase = SavedRegBase;
  Stack.resize(FrameBase);
  FrameBase = SavedBase;
  return Ret;
}

//===----------------------------------------------------------------------===//
// The dispatch loop
//===----------------------------------------------------------------------===//

Value BytecodeVM::dispatch(const BcChunk &Ch) {
  const BcInstr *Code = Ch.Code.data();
  const BcInstr *IP = Code;
  Value *R = Regs.data() + RegBase;
  uint64_t NDisp = 0;
  Value Ret = Value::makeInt(0);

#if SEST_BC_THREADED
  static const void *const JumpTable[NumBcOps] = {
#define SEST_BC_LABEL_ADDR(Name) &&Lbl_##Name,
      SEST_BC_OPS(SEST_BC_LABEL_ADDR)
#undef SEST_BC_LABEL_ADDR
  };
#define SEST_CASE(Name) Lbl_##Name
#define SEST_NEXT()                                                          \
  do {                                                                       \
    ++NDisp;                                                                 \
    goto *JumpTable[static_cast<uint8_t>(IP->K)];                            \
  } while (0)
  SEST_NEXT();
#else
#define SEST_CASE(Name) case BcOp::Name
#define SEST_NEXT() break
  for (;;) {
    ++NDisp;
    switch (IP->K) {
#endif

  SEST_CASE(ConstInt) : {
    const BcInstr &I = *IP++;
    R[I.A] = Value::makeInt(I.Imm);
  }
  SEST_NEXT();

  SEST_CASE(ConstDouble) : {
    const BcInstr &I = *IP++;
    R[I.A] = Value::makeDouble(I.Dbl);
  }
  SEST_NEXT();

  SEST_CASE(ConstStr) : {
    const BcInstr &I = *IP++;
    Loc L = stringLoc(static_cast<uint32_t>(I.X));
    R[I.A] = Value::makePtr({L.Space, L.Offset});
  }
  SEST_NEXT();

  SEST_CASE(ConstFn) : {
    const BcInstr &I = *IP++;
    R[I.A] = Value::makeFn(static_cast<const FunctionDecl *>(I.Ptr));
  }
  SEST_NEXT();

  SEST_CASE(Move) : {
    const BcInstr &I = *IP++;
    R[I.A] = R[I.B];
  }
  SEST_NEXT();

  SEST_CASE(Truthy) : {
    const BcInstr &I = *IP++;
    R[I.A] = Value::makeInt(R[I.B].isTruthy() ? 1 : 0);
  }
  SEST_NEXT();

  SEST_CASE(LoadGlobal) : {
    const BcInstr &I = *IP++;
    if (static_cast<uint64_t>(I.X) >= Globals.size()) {
      fail("global read out of bounds");
      goto VmHalt;
    }
    R[I.A] = Globals[I.X];
  }
  SEST_NEXT();

  SEST_CASE(LoadLocal) : {
    const BcInstr &I = *IP++;
    int64_t Off = FrameBase + I.X;
    if (Off < 0 || Off >= static_cast<int64_t>(Stack.size())) {
      fail("stack read out of bounds");
      goto VmHalt;
    }
    R[I.A] = Stack[Off];
  }
  SEST_NEXT();

  SEST_CASE(LeaGlobal) : {
    const BcInstr &I = *IP++;
    R[I.A] =
        Value::makePtr({static_cast<uint32_t>(MemSpace::Global), I.X});
  }
  SEST_NEXT();

  SEST_CASE(LeaLocal) : {
    const BcInstr &I = *IP++;
    R[I.A] = Value::makePtr(
        {static_cast<uint32_t>(MemSpace::Stack), FrameBase + I.X});
  }
  SEST_NEXT();

  SEST_CASE(LvalFromPtr) : {
    const BcInstr &I = *IP++;
    const Value &V = R[I.B];
    if (!V.isPtr()) {
      fail(*static_cast<const std::string *>(I.Ptr));
      goto VmHalt;
    }
    R[I.A] = V;
  }
  SEST_NEXT();

  SEST_CASE(ArrowLoc) : {
    const BcInstr &I = *IP++;
    const Value &V = R[I.B];
    if (!V.isPtr()) {
      fail("'->' applied to non-pointer value");
      goto VmHalt;
    }
    R[I.A] = Value::makePtr({V.PtrVal.Space, V.PtrVal.Offset + I.X});
  }
  SEST_NEXT();

  SEST_CASE(IndexLoc) : {
    const BcInstr &I = *IP++;
    const Value &Base = R[I.B];
    if (!Base.isPtr()) {
      fail("indexing a non-pointer value");
      goto VmHalt;
    }
    R[I.A] = Value::makePtr(
        {Base.PtrVal.Space, Base.PtrVal.Offset + R[I.C].asInt() * I.X});
  }
  SEST_NEXT();

  SEST_CASE(AddOffs) : {
    const BcInstr &I = *IP++;
    const Value &V = R[I.B];
    R[I.A] = Value::makePtr({V.PtrVal.Space, V.PtrVal.Offset + I.X});
  }
  SEST_NEXT();

  SEST_CASE(LoadCellD) : {
    const BcInstr &I = *IP++;
    Value V = loadCell(locOf(R[I.B]));
    if (halted())
      goto VmHalt;
    R[I.A] = V;
  }
  SEST_NEXT();

  SEST_CASE(ConvStore) : {
    const BcInstr &I = *IP++;
    Value V = convert(R[I.C], static_cast<const Type *>(I.Ptr));
    storeCell(locOf(R[I.B]), V);
    if (halted())
      goto VmHalt;
    R[I.A] = V;
  }
  SEST_NEXT();

  SEST_CASE(StructAssign) : {
    const BcInstr &I = *IP++;
    const Value &Src = R[I.C];
    if (!Src.isPtr()) {
      fail("struct assignment from non-aggregate value");
      goto VmHalt;
    }
    Loc Dst = locOf(R[I.B]);
    copyCells(Dst, locOf(Src), I.X);
    if (halted())
      goto VmHalt;
    R[I.A] = Value::makePtr({Dst.Space, Dst.Offset});
  }
  SEST_NEXT();

  SEST_CASE(ZeroLoc) : {
    const BcInstr &I = *IP++;
    zeroCells(locOf(R[I.A]), I.Imm);
    if (halted())
      goto VmHalt;
  }
  SEST_NEXT();

  SEST_CASE(StrCopyLoc) : {
    const BcInstr &I = *IP++;
    Loc Base = locOf(R[I.A]);
    zeroCells(Base, I.X);
    if (halted())
      goto VmHalt;
    const std::string &S =
        static_cast<const StringLitExpr *>(I.Ptr)->value();
    for (size_t J = 0; J < S.size(); ++J)
      storeCell({Base.Space, Base.Offset + static_cast<int64_t>(J)},
                Value::makeInt(static_cast<unsigned char>(S[J])));
    if (halted())
      goto VmHalt;
  }
  SEST_NEXT();

  SEST_CASE(Neg) : {
    const BcInstr &I = *IP++;
    const Value &V = R[I.B];
    R[I.A] = V.isDouble() ? Value::makeDouble(-V.DoubleVal)
                          : Value::makeInt(-V.asInt());
  }
  SEST_NEXT();

  SEST_CASE(LogNot) : {
    const BcInstr &I = *IP++;
    R[I.A] = Value::makeInt(R[I.B].isTruthy() ? 0 : 1);
  }
  SEST_NEXT();

  SEST_CASE(BitNot) : {
    const BcInstr &I = *IP++;
    R[I.A] = Value::makeInt(~R[I.B].asInt());
  }
  SEST_NEXT();

  SEST_CASE(DerefRV) : {
    const BcInstr &I = *IP++;
    const Value &P = R[I.B];
    if (P.isFnPtr()) {
      R[I.A] = P;
    } else if (!P.isPtr()) {
      fail("dereference of non-pointer value");
      goto VmHalt;
    } else if (I.Sub) {
      R[I.A] = P;
    } else {
      Value V = loadCell(locOf(P));
      if (halted())
        goto VmHalt;
      R[I.A] = V;
    }
  }
  SEST_NEXT();

  SEST_CASE(IncDec) : {
    const BcInstr &I = *IP++;
    Loc L = locOf(R[I.B]);
    Value Old = loadCell(L);
    if (halted())
      goto VmHalt;
    bool IsInc = I.Sub & IncDecIsInc;
    Value New;
    if (Old.isPtr()) {
      RuntimePtr P = Old.PtrVal;
      P.Offset += IsInc ? I.X : -I.X;
      New = Value::makePtr(P);
    } else if (Old.isDouble()) {
      New = Value::makeDouble(Old.DoubleVal + (IsInc ? 1.0 : -1.0));
    } else {
      New = Value::makeInt(Old.asInt() + (IsInc ? 1 : -1));
    }
    storeCell(L, New);
    if (halted())
      goto VmHalt;
    R[I.A] = (I.Sub & IncDecIsPre) ? New : Old;
  }
  SEST_NEXT();

  SEST_CASE(BinOp) : {
    const BcInstr &I = *IP++;
    Value V = applyBinary(static_cast<BinaryOp>(I.Sub), R[I.B], R[I.C],
                          I.X, I.Imm);
    if (halted())
      goto VmHalt;
    R[I.A] = V;
  }
  SEST_NEXT();

  SEST_CASE(Conv) : {
    const BcInstr &I = *IP++;
    R[I.A] = convert(R[I.B], static_cast<const Type *>(I.Ptr));
  }
  SEST_NEXT();

  SEST_CASE(Tick) : {
    const BcInstr &I = *IP++;
    for (int32_t K = 0; K < I.X; ++K) {
      tick();
      if (halted())
        goto VmHalt;
    }
  }
  SEST_NEXT();

  SEST_CASE(TickCall) : {
    const BcInstr &I = *IP++;
    tick();
    // The walker bumps the call-site counter in evalCall with no halted
    // check, so the bump survives a step-limit abort at the call node.
    if (I.X >= 0)
      Prof.CallSiteCounts[I.X] += 1;
    if (halted()) {
      // Zero-argument calls to defined functions additionally run the
      // walker's callFunction prologue before the body's halted check
      // stops them: entry count and call-depth high-water leak through.
      const auto *F = static_cast<const FunctionDecl *>(I.Ptr);
      if (!I.Sub && !F->isBuiltin() && CallDepth < Options.MaxCallDepth) {
        char HostStackProbe;
        uintptr_t Here = reinterpret_cast<uintptr_t>(&HostStackProbe);
        size_t Used = HostStackBase > Here ? HostStackBase - Here
                                           : Here - HostStackBase;
        if (Used <= Options.MaxHostStackBytes && M.chunkFor(F)) {
          Prof.Functions[F->functionId()].EntryCount += 1;
          ++LayoutCost.Calls;
          if (Stack.size() + F->frameSizeCells() <= (1u << 24))
            CallDepthHighWater =
                std::max(CallDepthHighWater, CallDepth + 1);
        }
      }
      goto VmHalt;
    }
  }
  SEST_NEXT();

  SEST_CASE(BlockEnter) : {
    const BcInstr &I = *IP++;
    tick();
    // Walker order: the block count bumps even when this tick tripped
    // the step limit.
    CurFP->BlockCounts[I.X] += 1;
    if (halted())
      goto VmHalt;
  }
  SEST_NEXT();

  SEST_CASE(Jmp) : {
    const BcInstr &I = *IP++;
    IP = Code + I.X;
  }
  SEST_NEXT();

  SEST_CASE(BrFalse) : {
    const BcInstr &I = *IP++;
    if (!R[I.A].isTruthy())
      IP = Code + I.X;
  }
  SEST_NEXT();

  SEST_CASE(BrTrue) : {
    const BcInstr &I = *IP++;
    if (R[I.A].isTruthy())
      IP = Code + I.X;
  }
  SEST_NEXT();

  SEST_CASE(ArcJmp) : {
    const BcInstr &I = *IP++;
    CurFP->ArcCounts[I.B][I.C] += 1;
    if ((*CurFall)[I.B][I.C])
      ++LayoutCost.FallThrough;
    else
      ++LayoutCost.Taken;
    IP = Code + I.X;
  }
  SEST_NEXT();

  SEST_CASE(ArcCondBr) : {
    const BcInstr &I = *IP++;
    bool Taken = R[I.A].isTruthy();
    unsigned Slot = Taken ? 0 : 1;
    CurFP->ArcCounts[I.B][Slot] += 1;
    if ((*CurFall)[I.B][Slot])
      ++LayoutCost.FallThrough;
    else
      ++LayoutCost.Taken;
    IP = Code + (Taken ? I.X : static_cast<int32_t>(I.Imm));
  }
  SEST_NEXT();

  SEST_CASE(ArcSwitch) : {
    const BcInstr &I = *IP++;
    const auto *Table = static_cast<const BcSwitchTable *>(I.Ptr);
    int64_t V = R[I.A].asInt();
    uint16_t Slot = Table->DefaultSlot;
    int32_t Target = Table->DefaultTarget;
    for (const BcSwitchCase &C : Table->Cases)
      if (C.Value == V) {
        Slot = C.Slot;
        Target = C.Target;
        break;
      }
    CurFP->ArcCounts[I.B][Slot] += 1;
    if ((*CurFall)[I.B][Slot])
      ++LayoutCost.FallThrough;
    else
      ++LayoutCost.Taken;
    IP = Code + Target;
  }
  SEST_NEXT();

  SEST_CASE(RetVal) : {
    const BcInstr &I = *IP++;
    Ret = convert(R[I.A], static_cast<const Type *>(I.Ptr));
    ++LayoutCost.Returns;
    goto VmRet;
  }

  SEST_CASE(RetVoid) : {
    ++IP;
    Ret = Value::makeInt(0);
    // The global-initializer chunk (CurFP null) ends in RetVoid too,
    // but is not a mini-C return; the walker never counts it.
    if (CurFP)
      ++LayoutCost.Returns;
    goto VmRet;
  }

  SEST_CASE(FailMsg) : {
    const BcInstr &I = *IP++;
    fail(*static_cast<const std::string *>(I.Ptr));
    goto VmHalt;
  }

  SEST_CASE(CheckFn) : {
    const BcInstr &I = *IP++;
    const Value &V = R[I.A];
    if (!V.isFnPtr() || V.FnVal == nullptr) {
      fail("indirect call through a non-function value");
      goto VmHalt;
    }
  }
  SEST_NEXT();

  SEST_CASE(SiteBump) : {
    const BcInstr &I = *IP++;
    Prof.CallSiteCounts[I.X] += 1;
  }
  SEST_NEXT();

  SEST_CASE(CheckStructArg) : {
    const BcInstr &I = *IP++;
    if (!R[I.A].isPtr()) {
      fail("struct argument is not an aggregate");
      goto VmHalt;
    }
  }
  SEST_NEXT();

  SEST_CASE(CallDirect) : {
    const BcInstr &I = *IP++;
    const auto *F = static_cast<const FunctionDecl *>(I.Ptr);
    Value V = callFunction(F, RegBase + I.B, I.C, RegBase + Ch.NumRegs);
    R = Regs.data() + RegBase; // Regs may have grown
    if (halted())
      goto VmHalt;
    R[I.A] = V;
  }
  SEST_NEXT();

  SEST_CASE(CallIndirect) : {
    const BcInstr &I = *IP++;
    const FunctionDecl *F = R[I.X].FnVal; // CheckFn ensured non-null
    // Struct-parameter guard against the *resolved* callee, mirroring
    // the walker's argument-evaluation check (the statically emitted
    // CheckStructArg covers well-typed programs; this covers callee
    // expressions whose static type is unknown).
    const auto &ParamTypes = F->type()->params();
    for (size_t A = 0; A < I.C && A < ParamTypes.size(); ++A)
      if (ParamTypes[A]->isStruct() && !R[I.B + A].isPtr()) {
        fail("struct argument is not an aggregate");
        goto VmHalt;
      }
    Value V;
    if (F->isBuiltin())
      V = doBuiltin(F, RegBase + I.B, I.C);
    else
      V = callFunction(F, RegBase + I.B, I.C, RegBase + Ch.NumRegs);
    R = Regs.data() + RegBase;
    if (halted())
      goto VmHalt;
    R[I.A] = V;
  }
  SEST_NEXT();

  SEST_CASE(CallBuiltin) : {
    const BcInstr &I = *IP++;
    Value V = doBuiltin(static_cast<const FunctionDecl *>(I.Ptr),
                        RegBase + I.B, I.C);
    if (halted())
      goto VmHalt;
    R[I.A] = V;
  }
  SEST_NEXT();

  SEST_CASE(Halt) : {
    fail("internal error: bytecode fell off chunk end");
    goto VmHalt;
  }

#if !SEST_BC_THREADED
    }
  }
#endif
#undef SEST_CASE
#undef SEST_NEXT

VmHalt:
  InstrCount += NDisp;
  return Value::makeInt(0);
VmRet:
  InstrCount += NDisp;
  return Ret;
}

//===----------------------------------------------------------------------===//
// Builtins
//===----------------------------------------------------------------------===//

Value BytecodeVM::doBuiltin(const FunctionDecl *F, size_t ArgBase,
                            size_t NArgs) {
  // Arity is checked by sema; the guard keeps a malformed unit from
  // reading past the register file (the walker would assert instead).
  auto Arg = [&](size_t I) {
    return I < NArgs ? Regs[ArgBase + I] : Value::makeInt(0);
  };
  switch (F->builtin()) {
  case BuiltinKind::PrintInt:
    Output += std::to_string(Arg(0).asInt());
    return Value::makeInt(0);
  case BuiltinKind::PrintChar:
    Output += static_cast<char>(Arg(0).asInt());
    return Value::makeInt(0);
  case BuiltinKind::PrintStr: {
    Value A0 = Arg(0);
    if (!A0.isPtr())
      return fail("print_str expects a string pointer");
    RuntimePtr P = A0.PtrVal;
    for (int64_t I = 0; I < (1 << 20); ++I) {
      Value C = loadCell({P.Space, P.Offset + I});
      if (halted())
        return Value::makeInt(0);
      int64_t Ch = C.asInt();
      if (Ch == 0)
        return Value::makeInt(0);
      Output += static_cast<char>(Ch);
    }
    return fail("unterminated string passed to print_str");
  }
  case BuiltinKind::PrintDouble: {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6g", Arg(0).asDouble());
    Output += Buf;
    return Value::makeInt(0);
  }
  case BuiltinKind::ReadInt:
    return Value::makeInt(readIntFromInput());
  case BuiltinKind::ReadChar:
    return Value::makeInt(readCharFromInput());
  case BuiltinKind::Malloc: {
    int64_t N = Arg(0).asInt();
    if (N <= 0)
      return Value::makeNull();
    if (HeapCellsUsed + N > Options.MaxHeapCells)
      return failLimit(RunLimit::HeapCells,
                       "heap limit exceeded (MaxHeapCells=" +
                           std::to_string(Options.MaxHeapCells) + ")");
    HeapCellsUsed += N;
    HeapHighWater = std::max(HeapHighWater, HeapCellsUsed);
    Heap.push_back(HeapBlock{std::vector<Value>(N, Value::makeInt(0)),
                             false});
    return Value::makePtr(
        {static_cast<uint32_t>(MemSpace::HeapBase) +
             static_cast<uint32_t>(Heap.size() - 1),
         0});
  }
  case BuiltinKind::Free: {
    Value A0 = Arg(0);
    if (!A0.isPtr())
      return fail("free of a non-pointer value");
    RuntimePtr P = A0.PtrVal;
    if (P.isNull())
      return Value::makeInt(0);
    size_t Idx = P.Space - static_cast<uint32_t>(MemSpace::HeapBase);
    if (P.Space < static_cast<uint32_t>(MemSpace::HeapBase) ||
        Idx >= Heap.size() || P.Offset != 0)
      return fail("free of a non-heap pointer");
    if (Heap[Idx].Freed)
      return fail("double free");
    HeapCellsUsed -= static_cast<int64_t>(Heap[Idx].Cells.size());
    Heap[Idx].Freed = true;
    Heap[Idx].Cells.clear();
    Heap[Idx].Cells.shrink_to_fit();
    return Value::makeInt(0);
  }
  case BuiltinKind::Abort:
    return fail("abort() called");
  case BuiltinKind::Exit:
    Exited = true;
    ExitVal = Arg(0).asInt();
    return Value::makeInt(0);
  case BuiltinKind::Rand:
    return Value::makeInt(static_cast<int64_t>(Rng.next() >> 33));
  case BuiltinKind::Srand:
    Rng = Prng(static_cast<uint64_t>(Arg(0).asInt()));
    return Value::makeInt(0);
  case BuiltinKind::Sqrt: {
    double D = Arg(0).asDouble();
    if (D < 0)
      return fail("sqrt of a negative number");
    return Value::makeDouble(std::sqrt(D));
  }
  case BuiltinKind::Fabs:
    return Value::makeDouble(std::fabs(Arg(0).asDouble()));
  case BuiltinKind::Floor:
    return Value::makeDouble(std::floor(Arg(0).asDouble()));
  case BuiltinKind::None:
    break;
  }
  return fail("unknown builtin '" + F->name() + "'");
}

} // namespace

RunResult sest::bc::runProgramBytecode(const TranslationUnit &Unit,
                                       const CfgModule &Cfgs,
                                       const BcModule &Module,
                                       const ProgramInput &Input,
                                       const InterpOptions &Options) {
  BytecodeVM VM(Unit, Cfgs, Module, Input, Options);
  return VM.run();
}

//===- interp/bytecode/BytecodeVM.h - Bytecode executor ---------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a BcModule with a tight dispatch loop (computed goto on
/// GCC/Clang, dense switch elsewhere). Produces bit-identical RunResults
/// — profiles, diagnostics, limit/high-water semantics — to the
/// tree-walking Interpreter in interp/Interp.cpp, which remains the
/// reference oracle (InterpEngine::Ast).
///
//===----------------------------------------------------------------------===//

#ifndef INTERP_BYTECODE_BYTECODEVM_H
#define INTERP_BYTECODE_BYTECODEVM_H

#include "interp/Interp.h"
#include "interp/bytecode/Bytecode.h"

namespace sest::bc {

/// Runs a precompiled \p Module. The module is read-only here, so
/// callers may execute many inputs concurrently against one module
/// (each run on its own thread with its own VM state).
RunResult runProgramBytecode(const TranslationUnit &Unit,
                             const CfgModule &Cfgs, const BcModule &Module,
                             const ProgramInput &Input,
                             const InterpOptions &Options);

} // namespace sest::bc

#endif // INTERP_BYTECODE_BYTECODEVM_H

//===- lang/Ast.cpp - Mini-C abstract syntax trees -------------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "lang/Ast.h"

using namespace sest;

const char *sest::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Rem:
    return "%";
  case BinaryOp::Shl:
    return "<<";
  case BinaryOp::Shr:
    return ">>";
  case BinaryOp::BitAnd:
    return "&";
  case BinaryOp::BitOr:
    return "|";
  case BinaryOp::BitXor:
    return "^";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::LogicalAnd:
    return "&&";
  case BinaryOp::LogicalOr:
    return "||";
  }
  return "?";
}

const char *sest::unaryOpSpelling(UnaryOp Op) {
  switch (Op) {
  case UnaryOp::Neg:
    return "-";
  case UnaryOp::LogicalNot:
    return "!";
  case UnaryOp::BitNot:
    return "~";
  case UnaryOp::Deref:
    return "*";
  case UnaryOp::AddrOf:
    return "&";
  case UnaryOp::PreInc:
  case UnaryOp::PostInc:
    return "++";
  case UnaryOp::PreDec:
  case UnaryOp::PostDec:
    return "--";
  }
  return "?";
}

bool sest::isComparisonOp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Lt:
  case BinaryOp::Gt:
  case BinaryOp::Le:
  case BinaryOp::Ge:
  case BinaryOp::Eq:
  case BinaryOp::Ne:
    return true;
  default:
    return false;
  }
}

//===- lang/Ast.h - Mini-C abstract syntax trees ----------------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mini-C AST. The paper's "smart" estimators operate directly on this
/// representation ("We have employed a similar technique within the
/// compiler, operating at the level of the abstract syntax and the C type
/// system", §1), so the AST keeps full structural and type information.
///
/// Nodes are arena-allocated and owned by an AstContext; raw pointers in
/// the tree are non-owning. Hand-rolled LLVM-style RTTI (kind enums +
/// classof) is used throughout; there are no virtual functions on nodes.
///
//===----------------------------------------------------------------------===//

#ifndef LANG_AST_H
#define LANG_AST_H

#include "lang/Type.h"
#include "support/Arena.h"
#include "support/SourceLoc.h"

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace sest {

class Decl;
class Expr;
class FunctionDecl;
class Stmt;
class VarDecl;

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Discriminator for Expr.
enum class ExprKind {
  IntLit,
  DoubleLit,
  StringLit,
  DeclRef,
  Unary,
  Binary,
  Assign,
  Conditional,
  Call,
  Index,
  Member,
  Cast,
  InitList,
};

/// Unary operators.
enum class UnaryOp {
  Neg,     ///< -x
  LogicalNot, ///< !x
  BitNot,  ///< ~x
  Deref,   ///< *p
  AddrOf,  ///< &x
  PreInc,  ///< ++x
  PreDec,  ///< --x
  PostInc, ///< x++
  PostDec, ///< x--
};

/// Binary operators (including short-circuiting logical forms).
enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Shl,
  Shr,
  BitAnd,
  BitOr,
  BitXor,
  Lt,
  Gt,
  Le,
  Ge,
  Eq,
  Ne,
  LogicalAnd,
  LogicalOr,
};

/// Spelling of a binary operator ("+", "==", ...).
const char *binaryOpSpelling(BinaryOp Op);
/// Spelling of a unary operator ("-", "!", ...).
const char *unaryOpSpelling(UnaryOp Op);
/// True for <, >, <=, >=, ==, !=.
bool isComparisonOp(BinaryOp Op);

/// Base class of all expressions.
class Expr {
public:
  ExprKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

  /// The expression's type; set by semantic analysis, null before.
  const Type *type() const { return Ty; }
  void setType(const Type *T) { Ty = T; }

  /// Unique id within the translation unit (set at construction).
  uint32_t nodeId() const { return NodeId; }

protected:
  Expr(ExprKind Kind, SourceLoc Loc, uint32_t NodeId)
      : Kind(Kind), Loc(Loc), NodeId(NodeId) {}
  ~Expr() = default;

private:
  ExprKind Kind;
  SourceLoc Loc;
  const Type *Ty = nullptr;
  uint32_t NodeId;
};

/// An integer or character literal.
class IntLitExpr : public Expr {
public:
  IntLitExpr(SourceLoc Loc, uint32_t Id, int64_t Value)
      : Expr(ExprKind::IntLit, Loc, Id), Value(Value) {}
  int64_t value() const { return Value; }
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::IntLit;
  }

private:
  int64_t Value;
};

/// A floating-point literal.
class DoubleLitExpr : public Expr {
public:
  DoubleLitExpr(SourceLoc Loc, uint32_t Id, double Value)
      : Expr(ExprKind::DoubleLit, Loc, Id), Value(Value) {}
  double value() const { return Value; }
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::DoubleLit;
  }

private:
  double Value;
};

/// A string literal; lowered to a char array in static storage.
class StringLitExpr : public Expr {
public:
  StringLitExpr(SourceLoc Loc, uint32_t Id, std::string Value)
      : Expr(ExprKind::StringLit, Loc, Id), Value(std::move(Value)) {}
  const std::string &value() const { return Value; }

  /// Index into the translation unit's string table (set by sema).
  uint32_t stringId() const { return StringId; }
  void setStringId(uint32_t Id) { StringId = Id; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::StringLit;
  }

private:
  std::string Value;
  uint32_t StringId = UINT32_MAX;
};

/// A reference to a variable, parameter, or function by name.
class DeclRefExpr : public Expr {
public:
  DeclRefExpr(SourceLoc Loc, uint32_t Id, std::string Name)
      : Expr(ExprKind::DeclRef, Loc, Id), Name(std::move(Name)) {}
  const std::string &name() const { return Name; }

  /// The resolved declaration (VarDecl or FunctionDecl); set by sema.
  Decl *decl() const { return Target; }
  void setDecl(Decl *D) { Target = D; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::DeclRef;
  }

private:
  std::string Name;
  Decl *Target = nullptr;
};

/// A unary operation.
class UnaryExpr : public Expr {
public:
  UnaryExpr(SourceLoc Loc, uint32_t Id, UnaryOp Op, Expr *Operand)
      : Expr(ExprKind::Unary, Loc, Id), Op(Op), Operand(Operand) {}
  UnaryOp op() const { return Op; }
  Expr *operand() const { return Operand; }
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::Unary;
  }

private:
  UnaryOp Op;
  Expr *Operand;
};

/// A binary operation, including short-circuit && and ||.
class BinaryExpr : public Expr {
public:
  BinaryExpr(SourceLoc Loc, uint32_t Id, BinaryOp Op, Expr *Lhs, Expr *Rhs)
      : Expr(ExprKind::Binary, Loc, Id), Op(Op), Lhs(Lhs), Rhs(Rhs) {}
  BinaryOp op() const { return Op; }
  Expr *lhs() const { return Lhs; }
  Expr *rhs() const { return Rhs; }
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::Binary;
  }

private:
  BinaryOp Op;
  Expr *Lhs;
  Expr *Rhs;
};

/// An assignment "lhs = rhs" or compound assignment "lhs op= rhs".
class AssignExpr : public Expr {
public:
  AssignExpr(SourceLoc Loc, uint32_t Id, Expr *Lhs, Expr *Rhs,
             std::optional<BinaryOp> CompoundOp)
      : Expr(ExprKind::Assign, Loc, Id), Lhs(Lhs), Rhs(Rhs),
        CompoundOp(CompoundOp) {}
  Expr *lhs() const { return Lhs; }
  Expr *rhs() const { return Rhs; }
  /// The arithmetic op of a compound assignment, or nullopt for plain "=".
  std::optional<BinaryOp> compoundOp() const { return CompoundOp; }
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::Assign;
  }

private:
  Expr *Lhs;
  Expr *Rhs;
  std::optional<BinaryOp> CompoundOp;
};

/// The ternary conditional "cond ? t : f".
class ConditionalExpr : public Expr {
public:
  ConditionalExpr(SourceLoc Loc, uint32_t Id, Expr *Cond, Expr *TrueE,
                  Expr *FalseE)
      : Expr(ExprKind::Conditional, Loc, Id), Cond(Cond), TrueE(TrueE),
        FalseE(FalseE) {}
  Expr *cond() const { return Cond; }
  Expr *trueExpr() const { return TrueE; }
  Expr *falseExpr() const { return FalseE; }
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::Conditional;
  }

private:
  Expr *Cond;
  Expr *TrueE;
  Expr *FalseE;
};

/// A function call, direct (callee resolves to a FunctionDecl) or indirect
/// (callee is a function-pointer expression).
class CallExpr : public Expr {
public:
  CallExpr(SourceLoc Loc, uint32_t Id, Expr *Callee,
           std::vector<Expr *> Args)
      : Expr(ExprKind::Call, Loc, Id), Callee(Callee),
        Args(std::move(Args)) {}
  Expr *callee() const { return Callee; }
  const std::vector<Expr *> &args() const { return Args; }

  /// The statically-known callee, or null for an indirect call (set by
  /// sema).
  FunctionDecl *directCallee() const { return Direct; }
  void setDirectCallee(FunctionDecl *F) { Direct = F; }
  bool isIndirect() const { return Direct == nullptr; }

  /// Dense call-site index within the translation unit (set by sema).
  uint32_t callSiteId() const { return CallSiteId; }
  void setCallSiteId(uint32_t Id) { CallSiteId = Id; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Call; }

private:
  Expr *Callee;
  std::vector<Expr *> Args;
  FunctionDecl *Direct = nullptr;
  uint32_t CallSiteId = UINT32_MAX;
};

/// Array subscript "base[index]".
class IndexExpr : public Expr {
public:
  IndexExpr(SourceLoc Loc, uint32_t Id, Expr *Base, Expr *Index)
      : Expr(ExprKind::Index, Loc, Id), Base(Base), Index(Index) {}
  Expr *base() const { return Base; }
  Expr *index() const { return Index; }
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::Index;
  }

private:
  Expr *Base;
  Expr *Index;
};

/// Member access "base.field" or "base->field".
class MemberExpr : public Expr {
public:
  MemberExpr(SourceLoc Loc, uint32_t Id, Expr *Base, std::string Field,
             bool IsArrow)
      : Expr(ExprKind::Member, Loc, Id), Base(Base),
        Field(std::move(Field)), IsArrow(IsArrow) {}
  Expr *base() const { return Base; }
  const std::string &fieldName() const { return Field; }
  bool isArrow() const { return IsArrow; }

  /// Cell offset of the field inside the struct (set by sema).
  int64_t fieldOffset() const { return FieldOffset; }
  void setFieldOffset(int64_t Offset) { FieldOffset = Offset; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::Member;
  }

private:
  Expr *Base;
  std::string Field;
  bool IsArrow;
  int64_t FieldOffset = 0;
};

/// An explicit cast "(type) expr".
class CastExpr : public Expr {
public:
  CastExpr(SourceLoc Loc, uint32_t Id, const Type *Target, Expr *Operand)
      : Expr(ExprKind::Cast, Loc, Id), Target(Target), Operand(Operand) {}
  const Type *targetType() const { return Target; }
  Expr *operand() const { return Operand; }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Cast; }

private:
  const Type *Target;
  Expr *Operand;
};

/// A brace initializer list "{ a, b, c }" for array/struct initialization.
class InitListExpr : public Expr {
public:
  InitListExpr(SourceLoc Loc, uint32_t Id, std::vector<Expr *> Elements)
      : Expr(ExprKind::InitList, Loc, Id), Elements(std::move(Elements)) {}
  const std::vector<Expr *> &elements() const { return Elements; }
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::InitList;
  }

private:
  std::vector<Expr *> Elements;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Discriminator for Stmt.
enum class StmtKind {
  Expr,
  Decl,
  Compound,
  If,
  While,
  DoWhile,
  For,
  Switch,
  CaseLabel,
  DefaultLabel,
  Break,
  Continue,
  Return,
  Goto,
  Label,
  Null,
};

/// Base class of all statements.
class Stmt {
public:
  StmtKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }
  uint32_t nodeId() const { return NodeId; }

protected:
  Stmt(StmtKind Kind, SourceLoc Loc, uint32_t NodeId)
      : Kind(Kind), Loc(Loc), NodeId(NodeId) {}
  ~Stmt() = default;

private:
  StmtKind Kind;
  SourceLoc Loc;
  uint32_t NodeId;
};

/// An expression evaluated for its side effects.
class ExprStmt : public Stmt {
public:
  ExprStmt(SourceLoc Loc, uint32_t Id, Expr *E)
      : Stmt(StmtKind::Expr, Loc, Id), E(E) {}
  Expr *expr() const { return E; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Expr; }

private:
  Expr *E;
};

/// A local variable declaration (possibly with initializer).
class DeclStmt : public Stmt {
public:
  DeclStmt(SourceLoc Loc, uint32_t Id, VarDecl *Var)
      : Stmt(StmtKind::Decl, Loc, Id), Var(Var) {}
  VarDecl *var() const { return Var; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Decl; }

private:
  VarDecl *Var;
};

/// A brace-enclosed statement sequence.
class CompoundStmt : public Stmt {
public:
  CompoundStmt(SourceLoc Loc, uint32_t Id, std::vector<Stmt *> Body)
      : Stmt(StmtKind::Compound, Loc, Id), Body(std::move(Body)) {}
  const std::vector<Stmt *> &body() const { return Body; }
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::Compound;
  }

private:
  std::vector<Stmt *> Body;
};

/// if (cond) then [else els].
class IfStmt : public Stmt {
public:
  IfStmt(SourceLoc Loc, uint32_t Id, Expr *Cond, Stmt *Then, Stmt *Else)
      : Stmt(StmtKind::If, Loc, Id), Cond(Cond), Then(Then), Else(Else) {}
  Expr *cond() const { return Cond; }
  Stmt *thenStmt() const { return Then; }
  Stmt *elseStmt() const { return Else; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::If; }

private:
  Expr *Cond;
  Stmt *Then;
  Stmt *Else;
};

/// while (cond) body.
class WhileStmt : public Stmt {
public:
  WhileStmt(SourceLoc Loc, uint32_t Id, Expr *Cond, Stmt *Body)
      : Stmt(StmtKind::While, Loc, Id), Cond(Cond), Body(Body) {}
  Expr *cond() const { return Cond; }
  Stmt *body() const { return Body; }
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::While;
  }

private:
  Expr *Cond;
  Stmt *Body;
};

/// do body while (cond);.
class DoWhileStmt : public Stmt {
public:
  DoWhileStmt(SourceLoc Loc, uint32_t Id, Stmt *Body, Expr *Cond)
      : Stmt(StmtKind::DoWhile, Loc, Id), Body(Body), Cond(Cond) {}
  Stmt *body() const { return Body; }
  Expr *cond() const { return Cond; }
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::DoWhile;
  }

private:
  Stmt *Body;
  Expr *Cond;
};

/// for (init; cond; step) body. Init may be a DeclStmt or ExprStmt or
/// null; cond and step may be null.
class ForStmt : public Stmt {
public:
  ForStmt(SourceLoc Loc, uint32_t Id, Stmt *Init, Expr *Cond, Expr *Step,
          Stmt *Body)
      : Stmt(StmtKind::For, Loc, Id), Init(Init), Cond(Cond), Step(Step),
        Body(Body) {}
  Stmt *init() const { return Init; }
  Expr *cond() const { return Cond; }
  Expr *step() const { return Step; }
  Stmt *body() const { return Body; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::For; }

private:
  Stmt *Init;
  Expr *Cond;
  Expr *Step;
  Stmt *Body;
};

/// switch (cond) body; case/default labels appear inside body.
class SwitchStmt : public Stmt {
public:
  SwitchStmt(SourceLoc Loc, uint32_t Id, Expr *Cond, Stmt *Body)
      : Stmt(StmtKind::Switch, Loc, Id), Cond(Cond), Body(Body) {}
  Expr *cond() const { return Cond; }
  Stmt *body() const { return Body; }
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::Switch;
  }

private:
  Expr *Cond;
  Stmt *Body;
};

/// "case V:" — a label marker; the labeled code is the statement sequence
/// that follows it (C-style fallthrough is fully supported).
class CaseLabelStmt : public Stmt {
public:
  CaseLabelStmt(SourceLoc Loc, uint32_t Id, Expr *Value)
      : Stmt(StmtKind::CaseLabel, Loc, Id), Value(Value) {}
  Expr *valueExpr() const { return Value; }

  /// The folded constant case value (set by sema).
  int64_t value() const { return FoldedValue; }
  void setValue(int64_t V) { FoldedValue = V; }

  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::CaseLabel;
  }

private:
  Expr *Value;
  int64_t FoldedValue = 0;
};

/// "default:" label marker.
class DefaultLabelStmt : public Stmt {
public:
  DefaultLabelStmt(SourceLoc Loc, uint32_t Id)
      : Stmt(StmtKind::DefaultLabel, Loc, Id) {}
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::DefaultLabel;
  }
};

/// break;
class BreakStmt : public Stmt {
public:
  BreakStmt(SourceLoc Loc, uint32_t Id) : Stmt(StmtKind::Break, Loc, Id) {}
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::Break;
  }
};

/// continue;
class ContinueStmt : public Stmt {
public:
  ContinueStmt(SourceLoc Loc, uint32_t Id)
      : Stmt(StmtKind::Continue, Loc, Id) {}
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::Continue;
  }
};

/// return [expr];
class ReturnStmt : public Stmt {
public:
  ReturnStmt(SourceLoc Loc, uint32_t Id, Expr *Value)
      : Stmt(StmtKind::Return, Loc, Id), Value(Value) {}
  Expr *value() const { return Value; }
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::Return;
  }

private:
  Expr *Value;
};

/// goto label;
class GotoStmt : public Stmt {
public:
  GotoStmt(SourceLoc Loc, uint32_t Id, std::string Target)
      : Stmt(StmtKind::Goto, Loc, Id), Target(std::move(Target)) {}
  const std::string &target() const { return Target; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Goto; }

private:
  std::string Target;
};

/// "name:" — a goto label marker (labels the following statements).
class LabelStmt : public Stmt {
public:
  LabelStmt(SourceLoc Loc, uint32_t Id, std::string Name)
      : Stmt(StmtKind::Label, Loc, Id), Name(std::move(Name)) {}
  const std::string &name() const { return Name; }
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::Label;
  }

private:
  std::string Name;
};

/// ";" — the empty statement.
class NullStmt : public Stmt {
public:
  NullStmt(SourceLoc Loc, uint32_t Id) : Stmt(StmtKind::Null, Loc, Id) {}
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Null; }
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// Discriminator for Decl.
enum class DeclKind { Var, Function };

/// Where a variable's cells live at run time.
enum class StorageKind { Global, Frame };

/// Base class for variable and function declarations.
class Decl {
public:
  DeclKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }
  const std::string &name() const { return Name; }

protected:
  Decl(DeclKind Kind, SourceLoc Loc, std::string Name)
      : Kind(Kind), Loc(Loc), Name(std::move(Name)) {}
  ~Decl() = default;

private:
  DeclKind Kind;
  SourceLoc Loc;
  std::string Name;
};

/// A variable: global, local, or parameter.
class VarDecl : public Decl {
public:
  VarDecl(SourceLoc Loc, std::string Name, const Type *Ty, Expr *Init,
          bool IsParam)
      : Decl(DeclKind::Var, Loc, std::move(Name)), Ty(Ty), Init(Init),
        IsParam(IsParam) {}

  const Type *type() const { return Ty; }
  Expr *init() const { return Init; }
  bool isParam() const { return IsParam; }

  StorageKind storage() const { return Storage; }
  /// Cell offset within the global segment or the stack frame.
  int64_t cellOffset() const { return CellOffset; }
  void setStorage(StorageKind K, int64_t Offset) {
    Storage = K;
    CellOffset = Offset;
  }

  static bool classof(const Decl *D) { return D->kind() == DeclKind::Var; }

private:
  const Type *Ty;
  Expr *Init;
  bool IsParam;
  StorageKind Storage = StorageKind::Frame;
  int64_t CellOffset = -1;
};

/// Identifies the runtime builtins the interpreter provides.
enum class BuiltinKind {
  None,
  PrintInt,
  PrintChar,
  PrintStr,
  PrintDouble,
  ReadInt,    ///< Next integer from the input stream; -1 at EOF.
  ReadChar,   ///< Next character from the input stream; -1 at EOF.
  Malloc,
  Free,
  Abort,
  Exit,
  Rand,       ///< Deterministic PRNG, seeded per run.
  Srand,
  Sqrt,
  Fabs,
  Floor,
};

/// A function: user-defined (with a body) or builtin (interpreted
/// natively).
class FunctionDecl : public Decl {
public:
  FunctionDecl(SourceLoc Loc, std::string Name, const FunctionType *Ty,
               std::vector<VarDecl *> Params)
      : Decl(DeclKind::Function, Loc, std::move(Name)), Ty(Ty),
        Params(std::move(Params)) {}

  const FunctionType *type() const { return Ty; }
  const std::vector<VarDecl *> &params() const { return Params; }

  CompoundStmt *body() const { return Body; }
  void setBody(CompoundStmt *B) { Body = B; }
  bool isDefined() const { return Body != nullptr; }

  BuiltinKind builtin() const { return Builtin; }
  void setBuiltin(BuiltinKind K) { Builtin = K; }
  bool isBuiltin() const { return Builtin != BuiltinKind::None; }

  /// True for abort/exit — the paper's error heuristic treats paths that
  /// reach these as unlikely.
  bool isNoReturn() const {
    return Builtin == BuiltinKind::Abort || Builtin == BuiltinKind::Exit;
  }

  /// Dense function index within the translation unit (set by sema).
  uint32_t functionId() const { return FunctionId; }
  void setFunctionId(uint32_t Id) { FunctionId = Id; }

  /// Number of static address-of operations on this function (paper
  /// §5.2.1: arcs from the pointer node are weighted by this count).
  uint32_t addressTakenCount() const { return AddressTaken; }
  void noteAddressTaken() { ++AddressTaken; }

  /// Total frame size in cells (params + locals; set by sema).
  int64_t frameSizeCells() const { return FrameSize; }
  void setFrameSizeCells(int64_t Size) { FrameSize = Size; }

  static bool classof(const Decl *D) {
    return D->kind() == DeclKind::Function;
  }

private:
  const FunctionType *Ty;
  std::vector<VarDecl *> Params;
  CompoundStmt *Body = nullptr;
  BuiltinKind Builtin = BuiltinKind::None;
  uint32_t FunctionId = UINT32_MAX;
  uint32_t AddressTaken = 0;
  int64_t FrameSize = 0;
};

//===----------------------------------------------------------------------===//
// Translation unit and context
//===----------------------------------------------------------------------===//

/// One parsed program.
struct TranslationUnit {
  /// All functions in declaration order (builtins included, first).
  std::vector<FunctionDecl *> Functions;
  /// Global variables in declaration order.
  std::vector<VarDecl *> Globals;
  /// Interned string literals; StringLitExpr::stringId indexes here.
  std::vector<std::string> StringTable;
  /// Total number of global cells (set by sema).
  int64_t GlobalSizeCells = 0;
  /// Total number of call sites (set by sema).
  uint32_t NumCallSites = 0;

  /// Finds a function by name, or null.
  FunctionDecl *findFunction(const std::string &Name) const {
    for (FunctionDecl *F : Functions)
      if (F->name() == Name)
        return F;
    return nullptr;
  }
};

/// Owns everything produced by parsing one program: the node arena, the
/// type context, and the translation unit.
class AstContext {
public:
  AstContext() = default;
  AstContext(const AstContext &) = delete;
  AstContext &operator=(const AstContext &) = delete;

  TypeContext &types() { return Types; }
  const TypeContext &types() const { return Types; }
  TranslationUnit &unit() { return Unit; }
  const TranslationUnit &unit() const { return Unit; }

  /// Allocates an AST node of type \p T with a fresh node id prepended to
  /// the constructor arguments (after the location).
  template <typename T, typename... Args>
  T *create(SourceLoc Loc, Args &&...As) {
    return NodeArena.create<T>(Loc, NextNodeId++,
                               std::forward<Args>(As)...);
  }

  /// Allocates a declaration (declarations carry no node id).
  template <typename T, typename... Args> T *createDecl(Args &&...As) {
    return NodeArena.create<T>(std::forward<Args>(As)...);
  }

  uint32_t nodeCount() const { return NextNodeId; }

  /// Bytes held by the node arena — the frontend's resident footprint,
  /// surfaced as the frontend.arena.bytes.high_water gauge.
  size_t arenaBytes() const { return NodeArena.bytesAllocated(); }

private:
  Arena NodeArena;
  TypeContext Types;
  TranslationUnit Unit;
  uint32_t NextNodeId = 0;
};

/// dyn_cast-style helpers for Expr.
template <typename T> T *exprDynCast(Expr *E) {
  if (E && T::classof(E))
    return static_cast<T *>(E);
  return nullptr;
}
template <typename T> const T *exprDynCast(const Expr *E) {
  if (E && T::classof(E))
    return static_cast<const T *>(E);
  return nullptr;
}
template <typename T> T *exprCast(Expr *E) {
  assert(E && T::classof(E) && "exprCast to wrong kind");
  return static_cast<T *>(E);
}
template <typename T> const T *exprCast(const Expr *E) {
  assert(E && T::classof(E) && "exprCast to wrong kind");
  return static_cast<const T *>(E);
}

/// dyn_cast-style helpers for Stmt.
template <typename T> T *stmtDynCast(Stmt *S) {
  if (S && T::classof(S))
    return static_cast<T *>(S);
  return nullptr;
}
template <typename T> const T *stmtDynCast(const Stmt *S) {
  if (S && T::classof(S))
    return static_cast<const T *>(S);
  return nullptr;
}
template <typename T> T *stmtCast(Stmt *S) {
  assert(S && T::classof(S) && "stmtCast to wrong kind");
  return static_cast<T *>(S);
}
template <typename T> const T *stmtCast(const Stmt *S) {
  assert(S && T::classof(S) && "stmtCast to wrong kind");
  return static_cast<const T *>(S);
}

/// dyn_cast-style helpers for Decl.
template <typename T> T *declDynCast(Decl *D) {
  if (D && T::classof(D))
    return static_cast<T *>(D);
  return nullptr;
}
template <typename T> const T *declDynCast(const Decl *D) {
  if (D && T::classof(D))
    return static_cast<const T *>(D);
  return nullptr;
}

} // namespace sest

#endif // LANG_AST_H

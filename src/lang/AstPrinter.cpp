//===- lang/AstPrinter.cpp - AST pretty printer ----------------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "lang/AstPrinter.h"

#include "support/StringUtils.h"

using namespace sest;

std::string sest::printExpr(const Expr *E) {
  if (!E)
    return "<null>";
  switch (E->kind()) {
  case ExprKind::IntLit:
    return std::to_string(exprCast<IntLitExpr>(E)->value());
  case ExprKind::DoubleLit:
    return formatDouble(exprCast<DoubleLitExpr>(E)->value(), 6);
  case ExprKind::StringLit:
    return "\"" + exprCast<StringLitExpr>(E)->value() + "\"";
  case ExprKind::DeclRef:
    return exprCast<DeclRefExpr>(E)->name();
  case ExprKind::Unary: {
    const auto *U = exprCast<UnaryExpr>(E);
    if (U->op() == UnaryOp::PostInc || U->op() == UnaryOp::PostDec)
      return "(" + printExpr(U->operand()) + unaryOpSpelling(U->op()) + ")";
    return std::string("(") + unaryOpSpelling(U->op()) +
           printExpr(U->operand()) + ")";
  }
  case ExprKind::Binary: {
    const auto *B = exprCast<BinaryExpr>(E);
    return "(" + printExpr(B->lhs()) + " " + binaryOpSpelling(B->op()) +
           " " + printExpr(B->rhs()) + ")";
  }
  case ExprKind::Assign: {
    const auto *A = exprCast<AssignExpr>(E);
    std::string Op =
        A->compoundOp() ? std::string(binaryOpSpelling(*A->compoundOp())) +
                              "="
                        : "=";
    return "(" + printExpr(A->lhs()) + " " + Op + " " +
           printExpr(A->rhs()) + ")";
  }
  case ExprKind::Conditional: {
    const auto *C = exprCast<ConditionalExpr>(E);
    return "(" + printExpr(C->cond()) + " ? " + printExpr(C->trueExpr()) +
           " : " + printExpr(C->falseExpr()) + ")";
  }
  case ExprKind::Call: {
    const auto *C = exprCast<CallExpr>(E);
    std::string S = printExpr(C->callee()) + "(";
    for (size_t I = 0; I < C->args().size(); ++I) {
      if (I != 0)
        S += ", ";
      S += printExpr(C->args()[I]);
    }
    return S + ")";
  }
  case ExprKind::Index: {
    const auto *I = exprCast<IndexExpr>(E);
    return printExpr(I->base()) + "[" + printExpr(I->index()) + "]";
  }
  case ExprKind::Member: {
    const auto *M = exprCast<MemberExpr>(E);
    return printExpr(M->base()) + (M->isArrow() ? "->" : ".") +
           M->fieldName();
  }
  case ExprKind::Cast: {
    const auto *C = exprCast<CastExpr>(E);
    return "(" + C->targetType()->str() + ")" + printExpr(C->operand());
  }
  case ExprKind::InitList: {
    const auto *L = exprCast<InitListExpr>(E);
    std::string S = "{";
    for (size_t I = 0; I < L->elements().size(); ++I) {
      if (I != 0)
        S += ", ";
      S += printExpr(L->elements()[I]);
    }
    return S + "}";
  }
  }
  return "<expr>";
}

namespace {

class AstTreePrinter {
public:
  AstTreePrinter(const AstPrintOptions &Options) : Options(Options) {}

  std::string run(const FunctionDecl *F) {
    Out += "function " + F->name() + " : " + F->type()->str() + "\n";
    printStmt(F->body(), 1);
    return std::move(Out);
  }

private:
  void line(unsigned Depth, const Stmt *S, const std::string &Text) {
    if (Options.StmtFrequencies) {
      auto It = Options.StmtFrequencies->find(S->nodeId());
      std::string Freq =
          It != Options.StmtFrequencies->end()
              ? formatDouble(It->second, 2)
              : std::string("-");
      Out += padLeft(Freq, 8) + "  ";
    }
    Out.append(Depth * 2, ' ');
    Out += Text;
    Out += '\n';
  }

  void printStmt(const Stmt *S, unsigned Depth) {
    if (!S)
      return;
    switch (S->kind()) {
    case StmtKind::Expr:
      line(Depth, S, printExpr(stmtCast<ExprStmt>(S)->expr()) + ";");
      return;
    case StmtKind::Decl: {
      const VarDecl *V = stmtCast<DeclStmt>(S)->var();
      std::string Text = V->type()->str() + " " + V->name();
      if (V->init())
        Text += " = " + printExpr(V->init());
      line(Depth, S, Text + ";");
      return;
    }
    case StmtKind::Compound:
      line(Depth, S, "{");
      for (const Stmt *Child : stmtCast<CompoundStmt>(S)->body())
        printStmt(Child, Depth + 1);
      line(Depth, S, "}");
      return;
    case StmtKind::If: {
      const auto *I = stmtCast<IfStmt>(S);
      line(Depth, S, "if (" + printExpr(I->cond()) + ")");
      printStmt(I->thenStmt(), Depth + 1);
      if (I->elseStmt()) {
        line(Depth, S, "else");
        printStmt(I->elseStmt(), Depth + 1);
      }
      return;
    }
    case StmtKind::While: {
      const auto *W = stmtCast<WhileStmt>(S);
      line(Depth, S, "while (" + printExpr(W->cond()) + ")");
      printStmt(W->body(), Depth + 1);
      return;
    }
    case StmtKind::DoWhile: {
      const auto *D = stmtCast<DoWhileStmt>(S);
      line(Depth, S, "do");
      printStmt(D->body(), Depth + 1);
      line(Depth, S, "while (" + printExpr(D->cond()) + ");");
      return;
    }
    case StmtKind::For: {
      const auto *F = stmtCast<ForStmt>(S);
      line(Depth, S, "for (...)");
      printStmt(F->init(), Depth + 1);
      if (F->cond())
        line(Depth + 1, S, "cond: " + printExpr(F->cond()));
      if (F->step())
        line(Depth + 1, S, "step: " + printExpr(F->step()));
      printStmt(F->body(), Depth + 1);
      return;
    }
    case StmtKind::Switch: {
      const auto *Sw = stmtCast<SwitchStmt>(S);
      line(Depth, S, "switch (" + printExpr(Sw->cond()) + ")");
      printStmt(Sw->body(), Depth + 1);
      return;
    }
    case StmtKind::CaseLabel:
      line(Depth, S,
           "case " +
               std::to_string(stmtCast<CaseLabelStmt>(S)->value()) + ":");
      return;
    case StmtKind::DefaultLabel:
      line(Depth, S, "default:");
      return;
    case StmtKind::Break:
      line(Depth, S, "break;");
      return;
    case StmtKind::Continue:
      line(Depth, S, "continue;");
      return;
    case StmtKind::Return: {
      const auto *R = stmtCast<ReturnStmt>(S);
      line(Depth, S,
           R->value() ? "return " + printExpr(R->value()) + ";"
                      : "return;");
      return;
    }
    case StmtKind::Goto:
      line(Depth, S, "goto " + stmtCast<GotoStmt>(S)->target() + ";");
      return;
    case StmtKind::Label:
      line(Depth, S, stmtCast<LabelStmt>(S)->name() + ":");
      return;
    case StmtKind::Null:
      line(Depth, S, ";");
      return;
    }
  }

  const AstPrintOptions &Options;
  std::string Out;
};

} // namespace

std::string sest::printFunctionAst(const FunctionDecl *F,
                                   const AstPrintOptions &Options) {
  if (!F->isDefined())
    return "function " + F->name() + " (no body)\n";
  AstTreePrinter P(Options);
  return P.run(F);
}

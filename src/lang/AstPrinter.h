//===- lang/AstPrinter.h - AST pretty printer -------------------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders an AST as an indented tree, optionally annotated with a
/// per-statement frequency map — the format of the paper's Figure 3
/// ("A single top-down tree walk computes an estimated count (shown to
/// the left of each node) for each basic block").
///
//===----------------------------------------------------------------------===//

#ifndef LANG_ASTPRINTER_H
#define LANG_ASTPRINTER_H

#include "lang/Ast.h"

#include <map>
#include <string>

namespace sest {

/// Options controlling AST printing.
struct AstPrintOptions {
  /// When non-null, each statement line is prefixed with its estimated
  /// frequency from this map (statement node id → frequency).
  const std::map<uint32_t, double> *StmtFrequencies = nullptr;
  /// Print expression node details (kinds and operators).
  bool PrintExprs = true;
};

/// Renders \p F as an indented tree.
std::string printFunctionAst(const FunctionDecl *F,
                             const AstPrintOptions &Options = {});

/// Renders a single expression as (approximate) source text.
std::string printExpr(const Expr *E);

} // namespace sest

#endif // LANG_ASTPRINTER_H

//===- lang/ConstFold.cpp - Constant expression folding --------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "lang/ConstFold.h"

#include <cmath>

using namespace sest;

static std::optional<ConstValue> foldUnary(const UnaryExpr *U) {
  auto Operand = foldConstant(U->operand());
  if (!Operand)
    return std::nullopt;
  switch (U->op()) {
  case UnaryOp::Neg:
    if (Operand->IsDouble)
      return ConstValue::makeDouble(-Operand->DoubleVal);
    return ConstValue::makeInt(-Operand->IntVal);
  case UnaryOp::LogicalNot:
    return ConstValue::makeInt(Operand->isTruthy() ? 0 : 1);
  case UnaryOp::BitNot:
    if (Operand->IsDouble)
      return std::nullopt;
    return ConstValue::makeInt(~Operand->IntVal);
  default:
    return std::nullopt; // Deref/AddrOf/inc/dec touch memory.
  }
}

static std::optional<ConstValue> foldBinary(const BinaryExpr *B) {
  // Short-circuit forms first: the RHS need not be constant when the LHS
  // decides.
  if (B->op() == BinaryOp::LogicalAnd || B->op() == BinaryOp::LogicalOr) {
    auto L = foldConstant(B->lhs());
    if (!L)
      return std::nullopt;
    bool LTruthy = L->isTruthy();
    if (B->op() == BinaryOp::LogicalAnd && !LTruthy)
      return ConstValue::makeInt(0);
    if (B->op() == BinaryOp::LogicalOr && LTruthy)
      return ConstValue::makeInt(1);
    auto R = foldConstant(B->rhs());
    if (!R)
      return std::nullopt;
    return ConstValue::makeInt(R->isTruthy() ? 1 : 0);
  }

  auto L = foldConstant(B->lhs());
  auto R = foldConstant(B->rhs());
  if (!L || !R)
    return std::nullopt;

  bool AnyDouble = L->IsDouble || R->IsDouble;
  switch (B->op()) {
  case BinaryOp::Add:
    if (AnyDouble)
      return ConstValue::makeDouble(L->asDouble() + R->asDouble());
    return ConstValue::makeInt(L->IntVal + R->IntVal);
  case BinaryOp::Sub:
    if (AnyDouble)
      return ConstValue::makeDouble(L->asDouble() - R->asDouble());
    return ConstValue::makeInt(L->IntVal - R->IntVal);
  case BinaryOp::Mul:
    if (AnyDouble)
      return ConstValue::makeDouble(L->asDouble() * R->asDouble());
    return ConstValue::makeInt(L->IntVal * R->IntVal);
  case BinaryOp::Div:
    if (AnyDouble)
      return ConstValue::makeDouble(L->asDouble() / R->asDouble());
    if (R->IntVal == 0)
      return std::nullopt;
    return ConstValue::makeInt(L->IntVal / R->IntVal);
  case BinaryOp::Rem:
    if (AnyDouble || R->IntVal == 0)
      return std::nullopt;
    return ConstValue::makeInt(L->IntVal % R->IntVal);
  case BinaryOp::Shl:
    if (AnyDouble || R->IntVal < 0 || R->IntVal >= 63)
      return std::nullopt;
    return ConstValue::makeInt(L->IntVal << R->IntVal);
  case BinaryOp::Shr:
    if (AnyDouble || R->IntVal < 0 || R->IntVal >= 63)
      return std::nullopt;
    return ConstValue::makeInt(L->IntVal >> R->IntVal);
  case BinaryOp::BitAnd:
    if (AnyDouble)
      return std::nullopt;
    return ConstValue::makeInt(L->IntVal & R->IntVal);
  case BinaryOp::BitOr:
    if (AnyDouble)
      return std::nullopt;
    return ConstValue::makeInt(L->IntVal | R->IntVal);
  case BinaryOp::BitXor:
    if (AnyDouble)
      return std::nullopt;
    return ConstValue::makeInt(L->IntVal ^ R->IntVal);
  case BinaryOp::Lt:
    return ConstValue::makeInt(AnyDouble ? L->asDouble() < R->asDouble()
                                         : L->IntVal < R->IntVal);
  case BinaryOp::Gt:
    return ConstValue::makeInt(AnyDouble ? L->asDouble() > R->asDouble()
                                         : L->IntVal > R->IntVal);
  case BinaryOp::Le:
    return ConstValue::makeInt(AnyDouble ? L->asDouble() <= R->asDouble()
                                         : L->IntVal <= R->IntVal);
  case BinaryOp::Ge:
    return ConstValue::makeInt(AnyDouble ? L->asDouble() >= R->asDouble()
                                         : L->IntVal >= R->IntVal);
  case BinaryOp::Eq:
    return ConstValue::makeInt(AnyDouble ? L->asDouble() == R->asDouble()
                                         : L->IntVal == R->IntVal);
  case BinaryOp::Ne:
    return ConstValue::makeInt(AnyDouble ? L->asDouble() != R->asDouble()
                                         : L->IntVal != R->IntVal);
  case BinaryOp::LogicalAnd:
  case BinaryOp::LogicalOr:
    break; // handled above
  }
  return std::nullopt;
}

std::optional<ConstValue> sest::foldConstant(const Expr *E) {
  if (!E)
    return std::nullopt;
  switch (E->kind()) {
  case ExprKind::IntLit:
    return ConstValue::makeInt(exprCast<IntLitExpr>(E)->value());
  case ExprKind::DoubleLit:
    return ConstValue::makeDouble(exprCast<DoubleLitExpr>(E)->value());
  case ExprKind::Unary:
    return foldUnary(exprCast<UnaryExpr>(E));
  case ExprKind::Binary:
    return foldBinary(exprCast<BinaryExpr>(E));
  case ExprKind::Conditional: {
    const auto *C = exprCast<ConditionalExpr>(E);
    auto Cond = foldConstant(C->cond());
    if (!Cond)
      return std::nullopt;
    return foldConstant(Cond->isTruthy() ? C->trueExpr() : C->falseExpr());
  }
  case ExprKind::Cast: {
    const auto *C = exprCast<CastExpr>(E);
    auto V = foldConstant(C->operand());
    if (!V)
      return std::nullopt;
    const Type *T = C->targetType();
    if (T->isDouble())
      return ConstValue::makeDouble(V->asDouble());
    if (T->isIntegral())
      return ConstValue::makeInt(V->IsDouble
                                     ? static_cast<int64_t>(V->DoubleVal)
                                     : V->IntVal);
    return std::nullopt;
  }
  default:
    return std::nullopt;
  }
}

std::optional<int64_t> sest::foldIntConstant(const Expr *E) {
  auto V = foldConstant(E);
  if (!V || V->IsDouble)
    return std::nullopt;
  return V->IntVal;
}

//===- lang/ConstFold.h - Constant expression folding -----------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compile-time evaluation of constant expressions. Used by sema to fold
/// case labels, and by the evaluation pipeline to detect branches whose
/// condition is a compile-time constant: the paper predicts such branches
/// "but [does] not count [them] towards the score" (§2), since constant
/// propagation would eliminate them and counting them would make miss
/// rates look artificially low.
///
//===----------------------------------------------------------------------===//

#ifndef LANG_CONSTFOLD_H
#define LANG_CONSTFOLD_H

#include "lang/Ast.h"

#include <optional>

namespace sest {

/// A folded constant: integer or floating.
struct ConstValue {
  bool IsDouble = false;
  int64_t IntVal = 0;
  double DoubleVal = 0.0;

  static ConstValue makeInt(int64_t V) { return {false, V, 0.0}; }
  static ConstValue makeDouble(double V) { return {true, 0, V}; }

  /// Truthiness, as a branch condition would see it.
  bool isTruthy() const { return IsDouble ? DoubleVal != 0.0 : IntVal != 0; }
  /// Value coerced to double.
  double asDouble() const {
    return IsDouble ? DoubleVal : static_cast<double>(IntVal);
  }
};

/// Attempts to evaluate \p E at compile time. Handles literals, unary and
/// binary arithmetic/logic/comparison, conditional expressions and scalar
/// casts over constants. Returns nullopt for anything involving memory,
/// calls, or division by a zero constant.
std::optional<ConstValue> foldConstant(const Expr *E);

/// Folds \p E to an integer; fails also when the result is floating.
std::optional<int64_t> foldIntConstant(const Expr *E);

} // namespace sest

#endif // LANG_CONSTFOLD_H

//===- lang/Lexer.cpp - Mini-C lexer ---------------------------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <cctype>
#include <cstdlib>
#include <map>

using namespace sest;

const char *sest::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::EndOfFile:
    return "end of file";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::DoubleLiteral:
    return "floating literal";
  case TokenKind::CharLiteral:
    return "character literal";
  case TokenKind::StringLiteral:
    return "string literal";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwChar:
    return "'char'";
  case TokenKind::KwDouble:
    return "'double'";
  case TokenKind::KwVoid:
    return "'void'";
  case TokenKind::KwStruct:
    return "'struct'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwDo:
    return "'do'";
  case TokenKind::KwSwitch:
    return "'switch'";
  case TokenKind::KwCase:
    return "'case'";
  case TokenKind::KwDefault:
    return "'default'";
  case TokenKind::KwBreak:
    return "'break'";
  case TokenKind::KwContinue:
    return "'continue'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwGoto:
    return "'goto'";
  case TokenKind::KwSizeof:
    return "'sizeof'";
  case TokenKind::KwNull:
    return "'NULL'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Question:
    return "'?'";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Arrow:
    return "'->'";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Amp:
    return "'&'";
  case TokenKind::Pipe:
    return "'|'";
  case TokenKind::Caret:
    return "'^'";
  case TokenKind::Tilde:
    return "'~'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::LessLess:
    return "'<<'";
  case TokenKind::GreaterGreater:
    return "'>>'";
  case TokenKind::LessEqual:
    return "'<='";
  case TokenKind::GreaterEqual:
    return "'>='";
  case TokenKind::EqualEqual:
    return "'=='";
  case TokenKind::BangEqual:
    return "'!='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::PlusPlus:
    return "'++'";
  case TokenKind::MinusMinus:
    return "'--'";
  case TokenKind::Equal:
    return "'='";
  case TokenKind::PlusEqual:
    return "'+='";
  case TokenKind::MinusEqual:
    return "'-='";
  case TokenKind::StarEqual:
    return "'*='";
  case TokenKind::SlashEqual:
    return "'/='";
  case TokenKind::PercentEqual:
    return "'%='";
  case TokenKind::AmpEqual:
    return "'&='";
  case TokenKind::PipeEqual:
    return "'|='";
  case TokenKind::CaretEqual:
    return "'^='";
  case TokenKind::LessLessEqual:
    return "'<<='";
  case TokenKind::GreaterGreaterEqual:
    return "'>>='";
  }
  return "<unknown token>";
}

Lexer::Lexer(std::string_view Source, DiagnosticEngine &Diags)
    : Source(Source), Diags(Diags) {}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

void Lexer::skipWhitespaceAndComments() {
  for (;;) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (peek() != '\n' && peek() != '\0')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = here();
      advance();
      advance();
      bool Closed = false;
      while (peek() != '\0') {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          Closed = true;
          break;
        }
        advance();
      }
      if (!Closed)
        Diags.error(Start, "unterminated block comment");
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind, SourceLoc Loc) const {
  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  return T;
}

Token Lexer::lexIdentifierOrKeyword(SourceLoc Loc) {
  size_t Start = Pos;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    advance();
  std::string Text(Source.substr(Start, Pos - Start));

  static const std::map<std::string, TokenKind> Keywords = {
      {"int", TokenKind::KwInt},         {"char", TokenKind::KwChar},
      {"double", TokenKind::KwDouble},   {"void", TokenKind::KwVoid},
      {"struct", TokenKind::KwStruct},   {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},       {"while", TokenKind::KwWhile},
      {"for", TokenKind::KwFor},         {"do", TokenKind::KwDo},
      {"switch", TokenKind::KwSwitch},   {"case", TokenKind::KwCase},
      {"default", TokenKind::KwDefault}, {"break", TokenKind::KwBreak},
      {"continue", TokenKind::KwContinue},
      {"return", TokenKind::KwReturn},   {"goto", TokenKind::KwGoto},
      {"sizeof", TokenKind::KwSizeof},   {"NULL", TokenKind::KwNull},
  };
  auto It = Keywords.find(Text);
  Token T = makeToken(It != Keywords.end() ? It->second
                                           : TokenKind::Identifier,
                      Loc);
  T.Text = std::move(Text);
  return T;
}

Token Lexer::lexNumber(SourceLoc Loc) {
  size_t Start = Pos;
  bool IsHex = false;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    IsHex = true;
    advance();
    advance();
    while (std::isxdigit(static_cast<unsigned char>(peek())))
      advance();
  } else {
    while (std::isdigit(static_cast<unsigned char>(peek())))
      advance();
  }

  bool IsDouble = false;
  if (!IsHex && peek() == '.' &&
      std::isdigit(static_cast<unsigned char>(peek(1)))) {
    IsDouble = true;
    advance();
    while (std::isdigit(static_cast<unsigned char>(peek())))
      advance();
  }
  if (!IsHex && (peek() == 'e' || peek() == 'E')) {
    char Sign = peek(1);
    size_t DigitAt = (Sign == '+' || Sign == '-') ? 2 : 1;
    if (std::isdigit(static_cast<unsigned char>(peek(DigitAt)))) {
      IsDouble = true;
      advance();
      if (Sign == '+' || Sign == '-')
        advance();
      while (std::isdigit(static_cast<unsigned char>(peek())))
        advance();
    }
  }

  std::string Text(Source.substr(Start, Pos - Start));
  if (IsDouble) {
    Token T = makeToken(TokenKind::DoubleLiteral, Loc);
    T.DoubleValue = std::strtod(Text.c_str(), nullptr);
    T.Text = std::move(Text);
    return T;
  }
  Token T = makeToken(TokenKind::IntLiteral, Loc);
  T.IntValue =
      static_cast<int64_t>(std::strtoll(Text.c_str(), nullptr, 0));
  T.Text = std::move(Text);
  return T;
}

int Lexer::decodeEscape() {
  char C = advance();
  if (C != '\\')
    return static_cast<unsigned char>(C);
  char E = advance();
  switch (E) {
  case 'n':
    return '\n';
  case 't':
    return '\t';
  case 'r':
    return '\r';
  case '0':
    return '\0';
  case '\\':
    return '\\';
  case '\'':
    return '\'';
  case '"':
    return '"';
  default:
    Diags.error(here(), std::string("unknown escape sequence '\\") + E +
                            "'");
    return E;
  }
}

Token Lexer::lexCharLiteral(SourceLoc Loc) {
  advance(); // opening quote
  int Value = 0;
  if (peek() == '\'' || peek() == '\0')
    Diags.error(Loc, "empty character literal");
  else
    Value = decodeEscape();
  if (!match('\''))
    Diags.error(Loc, "unterminated character literal");
  Token T = makeToken(TokenKind::CharLiteral, Loc);
  T.IntValue = Value;
  return T;
}

Token Lexer::lexStringLiteral(SourceLoc Loc) {
  advance(); // opening quote
  std::string Value;
  while (peek() != '"' && peek() != '\0' && peek() != '\n')
    Value += static_cast<char>(decodeEscape());
  if (!match('"'))
    Diags.error(Loc, "unterminated string literal");
  Token T = makeToken(TokenKind::StringLiteral, Loc);
  T.Text = std::move(Value);
  return T;
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  SourceLoc Loc = here();
  char C = peek();
  if (C == '\0')
    return makeToken(TokenKind::EndOfFile, Loc);

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifierOrKeyword(Loc);
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber(Loc);
  if (C == '\'')
    return lexCharLiteral(Loc);
  if (C == '"')
    return lexStringLiteral(Loc);

  advance();
  switch (C) {
  case '(':
    return makeToken(TokenKind::LParen, Loc);
  case ')':
    return makeToken(TokenKind::RParen, Loc);
  case '{':
    return makeToken(TokenKind::LBrace, Loc);
  case '}':
    return makeToken(TokenKind::RBrace, Loc);
  case '[':
    return makeToken(TokenKind::LBracket, Loc);
  case ']':
    return makeToken(TokenKind::RBracket, Loc);
  case ';':
    return makeToken(TokenKind::Semicolon, Loc);
  case ',':
    return makeToken(TokenKind::Comma, Loc);
  case ':':
    return makeToken(TokenKind::Colon, Loc);
  case '?':
    return makeToken(TokenKind::Question, Loc);
  case '.':
    return makeToken(TokenKind::Dot, Loc);
  case '+':
    if (match('+'))
      return makeToken(TokenKind::PlusPlus, Loc);
    if (match('='))
      return makeToken(TokenKind::PlusEqual, Loc);
    return makeToken(TokenKind::Plus, Loc);
  case '-':
    if (match('-'))
      return makeToken(TokenKind::MinusMinus, Loc);
    if (match('='))
      return makeToken(TokenKind::MinusEqual, Loc);
    if (match('>'))
      return makeToken(TokenKind::Arrow, Loc);
    return makeToken(TokenKind::Minus, Loc);
  case '*':
    if (match('='))
      return makeToken(TokenKind::StarEqual, Loc);
    return makeToken(TokenKind::Star, Loc);
  case '/':
    if (match('='))
      return makeToken(TokenKind::SlashEqual, Loc);
    return makeToken(TokenKind::Slash, Loc);
  case '%':
    if (match('='))
      return makeToken(TokenKind::PercentEqual, Loc);
    return makeToken(TokenKind::Percent, Loc);
  case '&':
    if (match('&'))
      return makeToken(TokenKind::AmpAmp, Loc);
    if (match('='))
      return makeToken(TokenKind::AmpEqual, Loc);
    return makeToken(TokenKind::Amp, Loc);
  case '|':
    if (match('|'))
      return makeToken(TokenKind::PipePipe, Loc);
    if (match('='))
      return makeToken(TokenKind::PipeEqual, Loc);
    return makeToken(TokenKind::Pipe, Loc);
  case '^':
    if (match('='))
      return makeToken(TokenKind::CaretEqual, Loc);
    return makeToken(TokenKind::Caret, Loc);
  case '~':
    return makeToken(TokenKind::Tilde, Loc);
  case '!':
    if (match('='))
      return makeToken(TokenKind::BangEqual, Loc);
    return makeToken(TokenKind::Bang, Loc);
  case '<':
    if (match('<')) {
      if (match('='))
        return makeToken(TokenKind::LessLessEqual, Loc);
      return makeToken(TokenKind::LessLess, Loc);
    }
    if (match('='))
      return makeToken(TokenKind::LessEqual, Loc);
    return makeToken(TokenKind::Less, Loc);
  case '>':
    if (match('>')) {
      if (match('='))
        return makeToken(TokenKind::GreaterGreaterEqual, Loc);
      return makeToken(TokenKind::GreaterGreater, Loc);
    }
    if (match('='))
      return makeToken(TokenKind::GreaterEqual, Loc);
    return makeToken(TokenKind::Greater, Loc);
  case '=':
    if (match('='))
      return makeToken(TokenKind::EqualEqual, Loc);
    return makeToken(TokenKind::Equal, Loc);
  default:
    Diags.error(Loc, std::string("unexpected character '") + C + "'");
    return next();
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  for (;;) {
    Tokens.push_back(next());
    if (Tokens.back().is(TokenKind::EndOfFile))
      return Tokens;
  }
}

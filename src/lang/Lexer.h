//===- lang/Lexer.h - Mini-C lexer -------------------------------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for mini-C. Supports //- and /*-style comments,
/// decimal and hexadecimal integers, floating literals with exponents,
/// character and string literals with the usual escapes.
///
//===----------------------------------------------------------------------===//

#ifndef LANG_LEXER_H
#define LANG_LEXER_H

#include "lang/Token.h"
#include "support/Diagnostics.h"

#include <string_view>
#include <vector>

namespace sest {

/// Lexes one source buffer into a token stream.
class Lexer {
public:
  /// \p Source must outlive the lexer. Diagnostics go to \p Diags.
  Lexer(std::string_view Source, DiagnosticEngine &Diags);

  /// Lexes and returns the next token (EndOfFile at the end, repeatedly).
  Token next();

  /// Lexes the whole buffer; the last token is EndOfFile.
  std::vector<Token> lexAll();

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  char advance();
  bool match(char Expected);
  void skipWhitespaceAndComments();
  SourceLoc here() const { return SourceLoc(Line, Column); }

  Token makeToken(TokenKind Kind, SourceLoc Loc) const;
  Token lexNumber(SourceLoc Loc);
  Token lexIdentifierOrKeyword(SourceLoc Loc);
  Token lexCharLiteral(SourceLoc Loc);
  Token lexStringLiteral(SourceLoc Loc);
  /// Decodes one (possibly escaped) character of a char/string literal.
  int decodeEscape();

  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
};

} // namespace sest

#endif // LANG_LEXER_H

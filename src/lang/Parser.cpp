//===- lang/Parser.cpp - Mini-C parser -------------------------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include "lang/Lexer.h"
#include "lang/Sema.h"
#include "obs/Telemetry.h"

#include <cassert>

using namespace sest;

Parser::Parser(AstContext &Ctx, std::vector<Token> Tokens,
               DiagnosticEngine &Diags)
    : Ctx(Ctx), Tokens(std::move(Tokens)), Diags(Diags) {
  assert(!this->Tokens.empty() &&
         this->Tokens.back().is(TokenKind::EndOfFile) &&
         "token stream must end with EOF");
}

const Token &Parser::peek(size_t Ahead) const {
  size_t I = Pos + Ahead;
  if (I >= Tokens.size())
    I = Tokens.size() - 1;
  return Tokens[I];
}

Token Parser::consume() {
  Token T = Tokens[Pos];
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::accept(TokenKind Kind) {
  if (!check(Kind))
    return false;
  consume();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (accept(Kind))
    return true;
  Diags.error(current().Loc, std::string("expected ") +
                                 tokenKindName(Kind) + " " + Context +
                                 ", found " + tokenKindName(current().Kind));
  return false;
}

/// Error recovery: skip forward to the next ';' or '}' boundary.
void Parser::skipToSync() {
  unsigned Depth = 0;
  while (!check(TokenKind::EndOfFile)) {
    TokenKind K = current().Kind;
    if (Depth == 0 && (K == TokenKind::Semicolon || K == TokenKind::RBrace)) {
      consume();
      return;
    }
    if (K == TokenKind::LBrace)
      ++Depth;
    else if (K == TokenKind::RBrace && Depth > 0)
      --Depth;
    consume();
  }
}

//===----------------------------------------------------------------------===//
// Types and declarators
//===----------------------------------------------------------------------===//

bool Parser::atTypeSpecifier() const {
  switch (current().Kind) {
  case TokenKind::KwInt:
  case TokenKind::KwChar:
  case TokenKind::KwDouble:
  case TokenKind::KwVoid:
  case TokenKind::KwStruct:
    return true;
  default:
    return false;
  }
}

const Type *Parser::parseTypeSpecifier() {
  TypeContext &Types = Ctx.types();
  switch (current().Kind) {
  case TokenKind::KwInt:
    consume();
    return Types.intType();
  case TokenKind::KwChar:
    consume();
    return Types.charType();
  case TokenKind::KwDouble:
    consume();
    return Types.doubleType();
  case TokenKind::KwVoid:
    consume();
    return Types.voidType();
  case TokenKind::KwStruct: {
    consume();
    if (!check(TokenKind::Identifier)) {
      Diags.error(current().Loc, "expected struct name");
      return Types.intType();
    }
    Token Name = consume();
    auto It = StructTypes.find(Name.Text);
    if (It != StructTypes.end())
      return It->second;
    // Forward reference: create an incomplete struct (usable behind a
    // pointer).
    StructType *S = Types.createStruct(Name.Text);
    StructTypes.emplace(Name.Text, S);
    return S;
  }
  default:
    Diags.error(current().Loc, "expected type specifier");
    return Types.intType();
  }
}

Parser::Declarator Parser::parseDeclarator(bool RequireName) {
  Declarator D;
  D.Loc = current().Loc;
  unsigned Pointers = 0;
  while (accept(TokenKind::Star))
    ++Pointers;
  parseDirectDeclarator(D, RequireName);
  for (unsigned I = 0; I < Pointers; ++I) {
    DeclaratorOp Op;
    Op.OpKind = DeclaratorOp::Kind::Pointer;
    D.Ops.push_back(std::move(Op));
  }
  return D;
}

void Parser::parseDirectDeclarator(Declarator &D, bool RequireName) {
  // A '(' here is a grouping paren (e.g. "(*fp)(int)") when followed by
  // '*' or another '('; otherwise it would be a parameter list, which is
  // handled as a suffix.
  if (check(TokenKind::LParen) &&
      (peek(1).is(TokenKind::Star) || peek(1).is(TokenKind::LParen))) {
    consume();
    Declarator Inner = parseDeclarator(RequireName);
    expect(TokenKind::RParen, "after grouped declarator");
    D.Name = std::move(Inner.Name);
    if (Inner.Loc.isValid())
      D.Loc = Inner.Loc;
    D.Ops = std::move(Inner.Ops);
  } else if (check(TokenKind::Identifier)) {
    Token T = consume();
    D.Name = T.Text;
    D.Loc = T.Loc;
  } else if (RequireName) {
    Diags.error(current().Loc, "expected declarator name");
  }
  parseDeclaratorSuffixes(D);
}

void Parser::parseDeclaratorSuffixes(Declarator &D) {
  for (;;) {
    if (accept(TokenKind::LBracket)) {
      DeclaratorOp Op;
      Op.OpKind = DeclaratorOp::Kind::Array;
      if (check(TokenKind::IntLiteral)) {
        Op.ArrayLen = consume().IntValue;
        if (Op.ArrayLen <= 0)
          Diags.error(current().Loc, "array length must be positive");
      } else {
        Diags.error(current().Loc,
                    "expected integer constant array length");
      }
      expect(TokenKind::RBracket, "after array length");
      D.Ops.push_back(std::move(Op));
      continue;
    }
    if (check(TokenKind::LParen)) {
      consume();
      DeclaratorOp Op;
      Op.OpKind = DeclaratorOp::Kind::Function;
      if (accept(TokenKind::KwVoid) && check(TokenKind::RParen)) {
        // "(void)" — explicit empty parameter list.
      } else if (!check(TokenKind::RParen)) {
        // We consumed 'void' above only when it stood alone; if it was a
        // 'void *' parameter, back up by reparsing from the 'void'.
        if (Tokens[Pos - 1].is(TokenKind::KwVoid) &&
            !check(TokenKind::RParen))
          --Pos;
        for (;;) {
          const Type *ParamBase = parseTypeSpecifier();
          Declarator PD = parseDeclarator(/*RequireName=*/false);
          const Type *ParamTy = applyDeclarator(ParamBase, PD);
          // Arrays and functions decay to pointers in parameter position.
          if (const auto *AT = typeDynCast<ArrayType>(ParamTy))
            ParamTy = Ctx.types().pointerTo(AT->element());
          else if (ParamTy->isFunction())
            ParamTy = Ctx.types().pointerTo(ParamTy);
          Op.ParamTypes.push_back(ParamTy);
          Op.ParamNames.push_back(PD.Name);
          Op.ParamLocs.push_back(PD.Loc.isValid() ? PD.Loc : current().Loc);
          if (!accept(TokenKind::Comma))
            break;
        }
      }
      expect(TokenKind::RParen, "after parameter list");
      D.Ops.push_back(std::move(Op));
      continue;
    }
    return;
  }
}

const Type *Parser::applyDeclarator(const Type *Base, const Declarator &D) {
  // Ops are stored innermost-first; build the type from the outside in by
  // walking them in reverse.
  const Type *Cur = Base;
  for (auto It = D.Ops.rbegin(), E = D.Ops.rend(); It != E; ++It) {
    switch (It->OpKind) {
    case DeclaratorOp::Kind::Pointer:
      Cur = Ctx.types().pointerTo(Cur);
      break;
    case DeclaratorOp::Kind::Array:
      Cur = Ctx.types().arrayOf(Cur, It->ArrayLen);
      break;
    case DeclaratorOp::Kind::Function:
      Cur = Ctx.types().functionType(Cur, It->ParamTypes);
      break;
    }
  }
  return Cur;
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

bool Parser::parseTranslationUnit() {
  while (!check(TokenKind::EndOfFile))
    parseTopLevel();
  return !Diags.hasErrors();
}

void Parser::parseTopLevel() {
  if (check(TokenKind::KwStruct) && peek(1).is(TokenKind::Identifier) &&
      peek(2).is(TokenKind::LBrace)) {
    parseStructDecl();
    return;
  }
  if (!atTypeSpecifier()) {
    Diags.error(current().Loc,
                std::string("expected declaration, found ") +
                    tokenKindName(current().Kind));
    skipToSync();
    return;
  }
  const Type *Base = parseTypeSpecifier();
  parseGlobalAfterType(Base);
}

void Parser::parseStructDecl() {
  consume(); // 'struct'
  Token Name = consume();
  StructType *S;
  auto It = StructTypes.find(Name.Text);
  if (It != StructTypes.end()) {
    S = It->second;
    if (S->isComplete()) {
      Diags.error(Name.Loc, "redefinition of struct " + Name.Text);
      skipToSync();
      return;
    }
  } else {
    S = Ctx.types().createStruct(Name.Text);
    StructTypes.emplace(Name.Text, S);
  }
  expect(TokenKind::LBrace, "in struct definition");
  std::vector<StructField> Fields;
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
    const Type *Base = parseTypeSpecifier();
    for (;;) {
      Declarator D = parseDeclarator(/*RequireName=*/true);
      const Type *FieldTy = applyDeclarator(Base, D);
      if (FieldTy->isVoid() || FieldTy->isFunction()) {
        Diags.error(D.Loc, "invalid field type " + FieldTy->str());
        FieldTy = Ctx.types().intType();
      }
      if (const auto *FS = typeDynCast<StructType>(FieldTy);
          FS && !FS->isComplete()) {
        Diags.error(D.Loc, "field has incomplete type " + FieldTy->str());
        FieldTy = Ctx.types().intType();
      }
      Fields.push_back({D.Name, FieldTy, 0});
      if (!accept(TokenKind::Comma))
        break;
    }
    expect(TokenKind::Semicolon, "after struct field");
  }
  expect(TokenKind::RBrace, "at end of struct definition");
  expect(TokenKind::Semicolon, "after struct definition");
  Ctx.types().completeStruct(S, std::move(Fields));
}

void Parser::parseGlobalAfterType(const Type *Base) {
  // "struct foo;" alone is a forward declaration, already handled by the
  // type specifier.
  if (accept(TokenKind::Semicolon))
    return;

  Declarator First = parseDeclarator(/*RequireName=*/true);
  // A function definition/prototype: outermost op is Function and next
  // token is '{' or ';'.
  if (First.functionOp() &&
      (check(TokenKind::LBrace) || check(TokenKind::Semicolon))) {
    parseFunctionRest(Base, First);
    return;
  }

  // Global variable(s).
  Declarator D = std::move(First);
  for (;;) {
    const Type *Ty = applyDeclarator(Base, D);
    Expr *Init = nullptr;
    if (accept(TokenKind::Equal))
      Init = parseInitializer();
    auto *Var = Ctx.createDecl<VarDecl>(D.Loc, D.Name, Ty, Init,
                                        /*IsParam=*/false);
    Ctx.unit().Globals.push_back(Var);
    if (!accept(TokenKind::Comma))
      break;
    D = parseDeclarator(/*RequireName=*/true);
  }
  expect(TokenKind::Semicolon, "after global declaration");
}

FunctionDecl *Parser::parseFunctionRest(const Type *Base,
                                        const Declarator &D) {
  const DeclaratorOp *FnOp = D.functionOp();
  assert(FnOp && "not a function declarator");

  // The ops outside the innermost Function op describe the return type.
  Declarator RetD;
  RetD.Ops.assign(D.Ops.begin() + 1, D.Ops.end());
  const Type *RetTy = applyDeclarator(Base, RetD);

  const FunctionType *FnTy =
      Ctx.types().functionType(RetTy, FnOp->ParamTypes);

  std::vector<VarDecl *> Params;
  for (size_t I = 0; I < FnOp->ParamTypes.size(); ++I) {
    std::string PName = FnOp->ParamNames[I];
    Params.push_back(Ctx.createDecl<VarDecl>(FnOp->ParamLocs[I], PName,
                                             FnOp->ParamTypes[I],
                                             /*Init=*/nullptr,
                                             /*IsParam=*/true));
  }

  auto *Fn = Ctx.createDecl<FunctionDecl>(D.Loc, D.Name, FnTy,
                                          std::move(Params));
  Ctx.unit().Functions.push_back(Fn);

  if (accept(TokenKind::Semicolon))
    return Fn; // prototype

  if (check(TokenKind::LBrace)) {
    for (size_t I = 0; I < FnOp->ParamNames.size(); ++I)
      if (FnOp->ParamNames[I].empty())
        Diags.error(D.Loc, "parameter " + std::to_string(I + 1) +
                               " of function '" + D.Name +
                               "' needs a name");
    Stmt *Body = parseCompound();
    Fn->setBody(stmtCast<CompoundStmt>(Body));
  } else {
    Diags.error(current().Loc, "expected function body or ';'");
    skipToSync();
  }
  return Fn;
}

Expr *Parser::parseInitializer() {
  if (check(TokenKind::LBrace)) {
    SourceLoc Loc = consume().Loc;
    std::vector<Expr *> Elements;
    if (!check(TokenKind::RBrace)) {
      for (;;) {
        Elements.push_back(parseInitializer());
        if (!accept(TokenKind::Comma))
          break;
        if (check(TokenKind::RBrace))
          break; // trailing comma
      }
    }
    expect(TokenKind::RBrace, "at end of initializer list");
    return Ctx.create<InitListExpr>(Loc, std::move(Elements));
  }
  return parseAssignment();
}

std::vector<Stmt *> Parser::parseLocalDecl() {
  const Type *Base = parseTypeSpecifier();
  std::vector<Stmt *> Out;
  for (;;) {
    Declarator D = parseDeclarator(/*RequireName=*/true);
    const Type *Ty = applyDeclarator(Base, D);
    Expr *Init = nullptr;
    if (accept(TokenKind::Equal))
      Init = parseInitializer();
    auto *Var =
        Ctx.createDecl<VarDecl>(D.Loc, D.Name, Ty, Init, /*IsParam=*/false);
    Out.push_back(Ctx.create<DeclStmt>(D.Loc, Var));
    if (!accept(TokenKind::Comma))
      break;
  }
  expect(TokenKind::Semicolon, "after declaration");
  return Out;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

Stmt *Parser::parseCompound() {
  SourceLoc Loc = current().Loc;
  expect(TokenKind::LBrace, "to open block");
  std::vector<Stmt *> Body;
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile)) {
    if (atTypeSpecifier()) {
      std::vector<Stmt *> Decls = parseLocalDecl();
      Body.insert(Body.end(), Decls.begin(), Decls.end());
      continue;
    }
    Body.push_back(parseStmt());
  }
  expect(TokenKind::RBrace, "to close block");
  return Ctx.create<CompoundStmt>(Loc, std::move(Body));
}

Stmt *Parser::parseStmt() {
  SourceLoc Loc = current().Loc;
  switch (current().Kind) {
  case TokenKind::LBrace:
    return parseCompound();
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwDo:
    return parseDoWhile();
  case TokenKind::KwFor:
    return parseFor();
  case TokenKind::KwSwitch:
    return parseSwitch();
  case TokenKind::KwReturn:
    return parseReturn();
  case TokenKind::KwBreak:
    consume();
    expect(TokenKind::Semicolon, "after 'break'");
    return Ctx.create<BreakStmt>(Loc);
  case TokenKind::KwContinue:
    consume();
    expect(TokenKind::Semicolon, "after 'continue'");
    return Ctx.create<ContinueStmt>(Loc);
  case TokenKind::KwGoto: {
    consume();
    std::string Target;
    if (check(TokenKind::Identifier))
      Target = consume().Text;
    else
      Diags.error(current().Loc, "expected label after 'goto'");
    expect(TokenKind::Semicolon, "after goto target");
    return Ctx.create<GotoStmt>(Loc, std::move(Target));
  }
  case TokenKind::KwCase: {
    consume();
    Expr *Value = parseConditional();
    expect(TokenKind::Colon, "after case value");
    return Ctx.create<CaseLabelStmt>(Loc, Value);
  }
  case TokenKind::KwDefault:
    consume();
    expect(TokenKind::Colon, "after 'default'");
    return Ctx.create<DefaultLabelStmt>(Loc);
  case TokenKind::Semicolon:
    consume();
    return Ctx.create<NullStmt>(Loc);
  case TokenKind::Identifier:
    // "name:" is a goto label.
    if (peek(1).is(TokenKind::Colon)) {
      std::string Name = consume().Text;
      consume(); // ':'
      return Ctx.create<LabelStmt>(Loc, std::move(Name));
    }
    break;
  default:
    break;
  }

  Expr *E = parseExpr();
  expect(TokenKind::Semicolon, "after expression statement");
  return Ctx.create<ExprStmt>(Loc, E);
}

Stmt *Parser::parseIf() {
  SourceLoc Loc = consume().Loc; // 'if'
  expect(TokenKind::LParen, "after 'if'");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "after if condition");
  Stmt *Then = parseStmt();
  Stmt *Else = nullptr;
  if (accept(TokenKind::KwElse))
    Else = parseStmt();
  return Ctx.create<IfStmt>(Loc, Cond, Then, Else);
}

Stmt *Parser::parseWhile() {
  SourceLoc Loc = consume().Loc; // 'while'
  expect(TokenKind::LParen, "after 'while'");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "after while condition");
  Stmt *Body = parseStmt();
  return Ctx.create<WhileStmt>(Loc, Cond, Body);
}

Stmt *Parser::parseDoWhile() {
  SourceLoc Loc = consume().Loc; // 'do'
  Stmt *Body = parseStmt();
  expect(TokenKind::KwWhile, "after do body");
  expect(TokenKind::LParen, "after 'while'");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "after do-while condition");
  expect(TokenKind::Semicolon, "after do-while");
  return Ctx.create<DoWhileStmt>(Loc, Body, Cond);
}

Stmt *Parser::parseFor() {
  SourceLoc Loc = consume().Loc; // 'for'
  expect(TokenKind::LParen, "after 'for'");
  Stmt *Init = nullptr;
  if (atTypeSpecifier()) {
    // "for (int i = 0; ...)": a single declaration (no comma lists here).
    const Type *Base = parseTypeSpecifier();
    Declarator D = parseDeclarator(/*RequireName=*/true);
    const Type *Ty = applyDeclarator(Base, D);
    Expr *InitE = nullptr;
    if (accept(TokenKind::Equal))
      InitE = parseInitializer();
    auto *Var = Ctx.createDecl<VarDecl>(D.Loc, D.Name, Ty, InitE,
                                        /*IsParam=*/false);
    Init = Ctx.create<DeclStmt>(D.Loc, Var);
    expect(TokenKind::Semicolon, "after for initializer");
  } else if (!accept(TokenKind::Semicolon)) {
    Expr *E = parseExpr();
    Init = Ctx.create<ExprStmt>(E->loc(), E);
    expect(TokenKind::Semicolon, "after for initializer");
  }
  Expr *Cond = nullptr;
  if (!check(TokenKind::Semicolon))
    Cond = parseExpr();
  expect(TokenKind::Semicolon, "after for condition");
  Expr *Step = nullptr;
  if (!check(TokenKind::RParen))
    Step = parseExpr();
  expect(TokenKind::RParen, "after for clauses");
  Stmt *Body = parseStmt();
  return Ctx.create<ForStmt>(Loc, Init, Cond, Step, Body);
}

Stmt *Parser::parseSwitch() {
  SourceLoc Loc = consume().Loc; // 'switch'
  expect(TokenKind::LParen, "after 'switch'");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "after switch condition");
  Stmt *Body = parseStmt();
  return Ctx.create<SwitchStmt>(Loc, Cond, Body);
}

Stmt *Parser::parseReturn() {
  SourceLoc Loc = consume().Loc; // 'return'
  Expr *Value = nullptr;
  if (!check(TokenKind::Semicolon))
    Value = parseExpr();
  expect(TokenKind::Semicolon, "after return");
  return Ctx.create<ReturnStmt>(Loc, Value);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Expr *Parser::parseExpr() { return parseAssignment(); }

namespace {
/// RAII nesting guard used by parseUnary.
struct DepthGuard {
  unsigned &Depth;
  explicit DepthGuard(unsigned &Depth) : Depth(Depth) { ++Depth; }
  ~DepthGuard() { --Depth; }
};
} // namespace

Expr *Parser::parseAssignment() {
  Expr *Lhs = parseConditional();
  std::optional<BinaryOp> Compound;
  switch (current().Kind) {
  case TokenKind::Equal:
    break;
  case TokenKind::PlusEqual:
    Compound = BinaryOp::Add;
    break;
  case TokenKind::MinusEqual:
    Compound = BinaryOp::Sub;
    break;
  case TokenKind::StarEqual:
    Compound = BinaryOp::Mul;
    break;
  case TokenKind::SlashEqual:
    Compound = BinaryOp::Div;
    break;
  case TokenKind::PercentEqual:
    Compound = BinaryOp::Rem;
    break;
  case TokenKind::AmpEqual:
    Compound = BinaryOp::BitAnd;
    break;
  case TokenKind::PipeEqual:
    Compound = BinaryOp::BitOr;
    break;
  case TokenKind::CaretEqual:
    Compound = BinaryOp::BitXor;
    break;
  case TokenKind::LessLessEqual:
    Compound = BinaryOp::Shl;
    break;
  case TokenKind::GreaterGreaterEqual:
    Compound = BinaryOp::Shr;
    break;
  default:
    return Lhs;
  }
  SourceLoc Loc = consume().Loc;
  Expr *Rhs = parseAssignment();
  return Ctx.create<AssignExpr>(Loc, Lhs, Rhs, Compound);
}

Expr *Parser::parseConditional() {
  Expr *Cond = parseBinary(0);
  if (!check(TokenKind::Question))
    return Cond;
  SourceLoc Loc = consume().Loc;
  Expr *TrueE = parseExpr();
  expect(TokenKind::Colon, "in conditional expression");
  Expr *FalseE = parseConditional();
  return Ctx.create<ConditionalExpr>(Loc, Cond, TrueE, FalseE);
}

namespace {
/// Binary operator precedence; higher binds tighter. -1 means "not a
/// binary operator".
int binaryPrecedence(TokenKind Kind, BinaryOp &Op) {
  switch (Kind) {
  case TokenKind::PipePipe:
    Op = BinaryOp::LogicalOr;
    return 1;
  case TokenKind::AmpAmp:
    Op = BinaryOp::LogicalAnd;
    return 2;
  case TokenKind::Pipe:
    Op = BinaryOp::BitOr;
    return 3;
  case TokenKind::Caret:
    Op = BinaryOp::BitXor;
    return 4;
  case TokenKind::Amp:
    Op = BinaryOp::BitAnd;
    return 5;
  case TokenKind::EqualEqual:
    Op = BinaryOp::Eq;
    return 6;
  case TokenKind::BangEqual:
    Op = BinaryOp::Ne;
    return 6;
  case TokenKind::Less:
    Op = BinaryOp::Lt;
    return 7;
  case TokenKind::Greater:
    Op = BinaryOp::Gt;
    return 7;
  case TokenKind::LessEqual:
    Op = BinaryOp::Le;
    return 7;
  case TokenKind::GreaterEqual:
    Op = BinaryOp::Ge;
    return 7;
  case TokenKind::LessLess:
    Op = BinaryOp::Shl;
    return 8;
  case TokenKind::GreaterGreater:
    Op = BinaryOp::Shr;
    return 8;
  case TokenKind::Plus:
    Op = BinaryOp::Add;
    return 9;
  case TokenKind::Minus:
    Op = BinaryOp::Sub;
    return 9;
  case TokenKind::Star:
    Op = BinaryOp::Mul;
    return 10;
  case TokenKind::Slash:
    Op = BinaryOp::Div;
    return 10;
  case TokenKind::Percent:
    Op = BinaryOp::Rem;
    return 10;
  default:
    return -1;
  }
}
} // namespace

Expr *Parser::parseBinary(int MinPrec) {
  Expr *Lhs = parseUnary();
  for (;;) {
    BinaryOp Op;
    int Prec = binaryPrecedence(current().Kind, Op);
    if (Prec < 0 || Prec < MinPrec)
      return Lhs;
    SourceLoc Loc = consume().Loc;
    Expr *Rhs = parseBinary(Prec + 1);
    Lhs = Ctx.create<BinaryExpr>(Loc, Op, Lhs, Rhs);
  }
}

Expr *Parser::parseUnary() {
  SourceLoc Loc = current().Loc;
  DepthGuard Guard(ExprDepth);
  if (ExprDepth > MaxExprDepth) {
    Diags.error(Loc, "expression nesting too deep");
    // Swallow the rest of the expression to avoid error cascades.
    skipToSync();
    return Ctx.create<IntLitExpr>(Loc, int64_t{0});
  }
  switch (current().Kind) {
  case TokenKind::Minus:
    consume();
    return Ctx.create<UnaryExpr>(Loc, UnaryOp::Neg, parseUnary());
  case TokenKind::Bang:
    consume();
    return Ctx.create<UnaryExpr>(Loc, UnaryOp::LogicalNot, parseUnary());
  case TokenKind::Tilde:
    consume();
    return Ctx.create<UnaryExpr>(Loc, UnaryOp::BitNot, parseUnary());
  case TokenKind::Star:
    consume();
    return Ctx.create<UnaryExpr>(Loc, UnaryOp::Deref, parseUnary());
  case TokenKind::Amp:
    consume();
    return Ctx.create<UnaryExpr>(Loc, UnaryOp::AddrOf, parseUnary());
  case TokenKind::PlusPlus:
    consume();
    return Ctx.create<UnaryExpr>(Loc, UnaryOp::PreInc, parseUnary());
  case TokenKind::MinusMinus:
    consume();
    return Ctx.create<UnaryExpr>(Loc, UnaryOp::PreDec, parseUnary());
  case TokenKind::KwSizeof: {
    consume();
    expect(TokenKind::LParen, "after 'sizeof'");
    const Type *Base = parseTypeSpecifier();
    Declarator D = parseDeclarator(/*RequireName=*/false);
    const Type *Ty = applyDeclarator(Base, D);
    expect(TokenKind::RParen, "after sizeof type");
    // Folded immediately: sizes are known at parse time in our cell model.
    if (const auto *S = typeDynCast<StructType>(Ty); S && !S->isComplete()) {
      Diags.error(Loc, "sizeof incomplete struct " + Ty->str());
      return Ctx.create<IntLitExpr>(Loc, int64_t{1});
    }
    return Ctx.create<IntLitExpr>(Loc, Ty->sizeInCells());
  }
  case TokenKind::LParen:
    // Cast: '(' type-specifier ... ')'.
    if (peek(1).is(TokenKind::KwInt) || peek(1).is(TokenKind::KwChar) ||
        peek(1).is(TokenKind::KwDouble) || peek(1).is(TokenKind::KwVoid) ||
        peek(1).is(TokenKind::KwStruct)) {
      consume();
      const Type *Base = parseTypeSpecifier();
      Declarator D = parseDeclarator(/*RequireName=*/false);
      const Type *Ty = applyDeclarator(Base, D);
      expect(TokenKind::RParen, "after cast type");
      Expr *Operand = parseUnary();
      return Ctx.create<CastExpr>(Loc, Ty, Operand);
    }
    break;
  default:
    break;
  }
  return parsePostfix();
}

Expr *Parser::parsePostfix() {
  Expr *E = parsePrimary();
  for (;;) {
    SourceLoc Loc = current().Loc;
    if (accept(TokenKind::LBracket)) {
      Expr *Index = parseExpr();
      expect(TokenKind::RBracket, "after array index");
      E = Ctx.create<IndexExpr>(Loc, E, Index);
      continue;
    }
    if (check(TokenKind::LParen)) {
      std::vector<Expr *> Args = parseCallArgs();
      E = Ctx.create<CallExpr>(Loc, E, std::move(Args));
      continue;
    }
    if (accept(TokenKind::Dot)) {
      std::string Field;
      if (check(TokenKind::Identifier))
        Field = consume().Text;
      else
        Diags.error(current().Loc, "expected field name after '.'");
      E = Ctx.create<MemberExpr>(Loc, E, std::move(Field),
                                 /*IsArrow=*/false);
      continue;
    }
    if (accept(TokenKind::Arrow)) {
      std::string Field;
      if (check(TokenKind::Identifier))
        Field = consume().Text;
      else
        Diags.error(current().Loc, "expected field name after '->'");
      E = Ctx.create<MemberExpr>(Loc, E, std::move(Field),
                                 /*IsArrow=*/true);
      continue;
    }
    if (accept(TokenKind::PlusPlus)) {
      E = Ctx.create<UnaryExpr>(Loc, UnaryOp::PostInc, E);
      continue;
    }
    if (accept(TokenKind::MinusMinus)) {
      E = Ctx.create<UnaryExpr>(Loc, UnaryOp::PostDec, E);
      continue;
    }
    return E;
  }
}

std::vector<Expr *> Parser::parseCallArgs() {
  expect(TokenKind::LParen, "in call");
  std::vector<Expr *> Args;
  if (!check(TokenKind::RParen)) {
    for (;;) {
      Args.push_back(parseAssignment());
      if (!accept(TokenKind::Comma))
        break;
    }
  }
  expect(TokenKind::RParen, "after call arguments");
  return Args;
}

Expr *Parser::parsePrimary() {
  SourceLoc Loc = current().Loc;
  switch (current().Kind) {
  case TokenKind::IntLiteral: {
    Token T = consume();
    return Ctx.create<IntLitExpr>(Loc, T.IntValue);
  }
  case TokenKind::CharLiteral: {
    Token T = consume();
    return Ctx.create<IntLitExpr>(Loc, T.IntValue);
  }
  case TokenKind::DoubleLiteral: {
    Token T = consume();
    return Ctx.create<DoubleLitExpr>(Loc, T.DoubleValue);
  }
  case TokenKind::StringLiteral: {
    Token T = consume();
    return Ctx.create<StringLitExpr>(Loc, T.Text);
  }
  case TokenKind::KwNull:
    consume();
    return Ctx.create<IntLitExpr>(Loc, int64_t{0});
  case TokenKind::Identifier: {
    Token T = consume();
    return Ctx.create<DeclRefExpr>(Loc, T.Text);
  }
  case TokenKind::LParen: {
    consume();
    Expr *E = parseExpr();
    expect(TokenKind::RParen, "after parenthesized expression");
    return E;
  }
  default:
    Diags.error(Loc, std::string("expected expression, found ") +
                         tokenKindName(current().Kind));
    consume();
    return Ctx.create<IntLitExpr>(Loc, int64_t{0});
  }
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

bool sest::parseAndAnalyze(std::string_view Source, AstContext &Ctx,
                           DiagnosticEngine &Diags) {
  obs::ScopedPhase Phase("frontend");
  bool Ok = [&] {
    std::vector<Token> Tokens;
    {
      obs::ScopedPhase LexPhase("lex");
      Lexer Lex(Source, Diags);
      Tokens = Lex.lexAll();
    }
    obs::counterAdd("frontend.tokens.lexed",
                    static_cast<double>(Tokens.size()));
    if (Diags.hasErrors())
      return false;
    {
      obs::ScopedPhase ParsePhase("parse");
      Parser P(Ctx, std::move(Tokens), Diags);
      if (!P.parseTranslationUnit())
        return false;
    }
    obs::ScopedPhase SemaPhase("sema");
    Sema S(Ctx, Diags);
    return S.run();
  }();
  obs::counterAdd("frontend.ast.nodes",
                  static_cast<double>(Ctx.nodeCount()));
  obs::counterAdd("frontend.sema.diagnostics",
                  static_cast<double>(Diags.diagnostics().size()));
  return Ok;
}

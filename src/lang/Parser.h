//===- lang/Parser.h - Mini-C parser -----------------------------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for mini-C. Produces an AST owned by an
/// AstContext; errors are collected in a DiagnosticEngine and the parser
/// recovers at statement/declaration boundaries.
///
/// The accepted language is the C subset described in DESIGN.md: int /
/// char / double / void, pointers, fixed arrays, structs, function
/// pointers (full C declarator syntax), all C control flow including
/// switch fallthrough and goto, and brace initializer lists.
///
//===----------------------------------------------------------------------===//

#ifndef LANG_PARSER_H
#define LANG_PARSER_H

#include "lang/Ast.h"
#include "lang/Token.h"
#include "support/Diagnostics.h"

#include <map>
#include <string>
#include <vector>

namespace sest {

/// Parses one token stream into a TranslationUnit.
class Parser {
public:
  /// \p Ctx receives the AST; \p Tokens must end with EndOfFile.
  Parser(AstContext &Ctx, std::vector<Token> Tokens,
         DiagnosticEngine &Diags);

  /// Parses the whole buffer. Returns true on success (no errors).
  /// Builtin function declarations are injected before user code.
  bool parseTranslationUnit();

private:
  // Token helpers.
  const Token &peek(size_t Ahead = 0) const;
  const Token &current() const { return peek(0); }
  Token consume();
  bool check(TokenKind Kind) const { return current().is(Kind); }
  bool accept(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);
  void skipToSync();

  // Types and declarators.
  bool atTypeSpecifier() const;
  const Type *parseTypeSpecifier();
  /// One step of a C declarator: applied innermost-first.
  struct DeclaratorOp {
    enum class Kind { Pointer, Array, Function } OpKind;
    int64_t ArrayLen = 0;
    std::vector<const Type *> ParamTypes;
    std::vector<std::string> ParamNames;
    std::vector<SourceLoc> ParamLocs;
  };
  struct Declarator {
    std::string Name;
    SourceLoc Loc;
    std::vector<DeclaratorOp> Ops;
    /// When this declarator declares a function (not a function pointer),
    /// the innermost op — the one applied directly to the name — is a
    /// Function op; returns it, else null. E.g. "int f(int)" and
    /// "int *f(int)" are functions, "int (*f)(int)" is a variable.
    const DeclaratorOp *functionOp() const {
      if (!Ops.empty() &&
          Ops.front().OpKind == DeclaratorOp::Kind::Function)
        return &Ops.front();
      return nullptr;
    }
  };
  /// Parses a declarator; \p RequireName controls abstract declarators.
  Declarator parseDeclarator(bool RequireName);
  void parseDirectDeclarator(Declarator &D, bool RequireName);
  void parseDeclaratorSuffixes(Declarator &D);
  /// Applies declarator ops to \p Base, innermost binding tightest.
  const Type *applyDeclarator(const Type *Base, const Declarator &D);

  // Declarations.
  void parseTopLevel();
  void parseStructDecl();
  /// Parses declarators after a type at global scope (vars or function).
  void parseGlobalAfterType(const Type *Base);
  FunctionDecl *parseFunctionRest(const Type *Base, const Declarator &D);
  /// Parses "type d1 [= init], d2 ...;" as local declarations.
  std::vector<Stmt *> parseLocalDecl();
  Expr *parseInitializer();

  // Statements.
  Stmt *parseStmt();
  Stmt *parseCompound();
  Stmt *parseIf();
  Stmt *parseWhile();
  Stmt *parseDoWhile();
  Stmt *parseFor();
  Stmt *parseSwitch();
  Stmt *parseReturn();

  // Expressions (precedence climbing).
  Expr *parseExpr();
  Expr *parseAssignment();
  Expr *parseConditional();
  Expr *parseBinary(int MinPrec);
  Expr *parseUnary();
  Expr *parsePostfix();
  Expr *parsePrimary();
  std::vector<Expr *> parseCallArgs();

  AstContext &Ctx;
  std::vector<Token> Tokens;
  size_t Pos = 0;
  DiagnosticEngine &Diags;
  /// Current expression nesting depth; capped so pathological inputs
  /// (e.g. ten thousand open parentheses) cannot overflow the host
  /// stack of the parser or of any later recursive tree walk.
  unsigned ExprDepth = 0;
  static constexpr unsigned MaxExprDepth = 400;
  /// Named struct types seen so far.
  std::map<std::string, StructType *> StructTypes;
};

/// Convenience: lex + parse + run semantic analysis over \p Source.
/// Returns true when the program is error-free; diagnostics accumulate in
/// \p Diags either way.
bool parseAndAnalyze(std::string_view Source, AstContext &Ctx,
                     DiagnosticEngine &Diags);

} // namespace sest

#endif // LANG_PARSER_H

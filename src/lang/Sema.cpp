//===- lang/Sema.cpp - Mini-C semantic analysis ----------------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "lang/Sema.h"

#include "lang/ConstFold.h"

#include <set>

using namespace sest;

Sema::Sema(AstContext &Ctx, DiagnosticEngine &Diags)
    : Ctx(Ctx), Diags(Diags) {}

bool Sema::run() {
  injectBuiltins();
  mergePrototypes();

  // Assign dense function ids (builtins first, then user functions).
  for (FunctionDecl *F : Ctx.unit().Functions)
    F->setFunctionId(NextFunctionId++);

  checkGlobals();
  for (FunctionDecl *F : Ctx.unit().Functions)
    if (F->isDefined())
      checkFunction(F);

  Ctx.unit().GlobalSizeCells = GlobalTop;
  Ctx.unit().NumCallSites = NextCallSiteId;
  return !Diags.hasErrors();
}

//===----------------------------------------------------------------------===//
// Builtins and prototype merging
//===----------------------------------------------------------------------===//

FunctionDecl *Sema::makeBuiltin(const char *Name, BuiltinKind Kind,
                                const Type *Ret,
                                std::vector<const Type *> Params) {
  const FunctionType *Ty = Ctx.types().functionType(Ret, Params);
  std::vector<VarDecl *> ParamDecls;
  for (size_t I = 0; I < Params.size(); ++I)
    ParamDecls.push_back(Ctx.createDecl<VarDecl>(
        SourceLoc(), "arg" + std::to_string(I), Params[I],
        /*Init=*/nullptr, /*IsParam=*/true));
  auto *F = Ctx.createDecl<FunctionDecl>(SourceLoc(), Name, Ty,
                                         std::move(ParamDecls));
  F->setBuiltin(Kind);
  return F;
}

void Sema::injectBuiltins() {
  TypeContext &T = Ctx.types();
  const Type *I = T.intType();
  const Type *D = T.doubleType();
  const Type *V = T.voidType();
  const Type *CharPtr = T.pointerTo(T.charType());
  const Type *VoidPtr = T.pointerTo(V);

  std::vector<FunctionDecl *> Builtins = {
      makeBuiltin("print_int", BuiltinKind::PrintInt, V, {I}),
      makeBuiltin("print_char", BuiltinKind::PrintChar, V, {I}),
      makeBuiltin("print_str", BuiltinKind::PrintStr, V, {CharPtr}),
      makeBuiltin("print_double", BuiltinKind::PrintDouble, V, {D}),
      makeBuiltin("read_int", BuiltinKind::ReadInt, I, {}),
      makeBuiltin("read_char", BuiltinKind::ReadChar, I, {}),
      makeBuiltin("malloc", BuiltinKind::Malloc, VoidPtr, {I}),
      makeBuiltin("free", BuiltinKind::Free, V, {VoidPtr}),
      makeBuiltin("abort", BuiltinKind::Abort, V, {}),
      makeBuiltin("exit", BuiltinKind::Exit, V, {I}),
      makeBuiltin("rand", BuiltinKind::Rand, I, {}),
      makeBuiltin("srand", BuiltinKind::Srand, V, {I}),
      makeBuiltin("sqrt", BuiltinKind::Sqrt, D, {D}),
      makeBuiltin("fabs", BuiltinKind::Fabs, D, {D}),
      makeBuiltin("floor", BuiltinKind::Floor, D, {D}),
  };
  auto &Functions = Ctx.unit().Functions;
  Functions.insert(Functions.begin(), Builtins.begin(), Builtins.end());
}

void Sema::mergePrototypes() {
  std::vector<FunctionDecl *> Merged;
  std::map<std::string, size_t> IndexByName;

  for (FunctionDecl *F : Ctx.unit().Functions) {
    auto It = IndexByName.find(F->name());
    if (It == IndexByName.end()) {
      IndexByName.emplace(F->name(), Merged.size());
      Merged.push_back(F);
      FunctionsByName[F->name()] = F;
      continue;
    }
    FunctionDecl *Prev = Merged[It->second];
    if (F->type() != Prev->type()) {
      error(F->loc(), "conflicting declaration of function '" + F->name() +
                          "': " + F->type()->str() + " vs " +
                          Prev->type()->str());
      continue;
    }
    if (!F->isDefined())
      continue; // Redundant prototype.
    if (Prev->isDefined()) {
      error(F->loc(), "redefinition of function '" + F->name() + "'");
      continue;
    }
    // The definition becomes canonical, keeping the prototype's position.
    Merged[It->second] = F;
    FunctionsByName[F->name()] = F;
  }
  Ctx.unit().Functions = std::move(Merged);
}

//===----------------------------------------------------------------------===//
// Scopes
//===----------------------------------------------------------------------===//

void Sema::declareLocal(VarDecl *D) {
  assert(!Scopes.empty() && "no active scope");
  auto [It, Inserted] = Scopes.back().emplace(D->name(), D);
  (void)It;
  if (!Inserted)
    error(D->loc(), "redefinition of '" + D->name() + "'");
}

Decl *Sema::lookup(const std::string &Name) {
  for (auto ScopeIt = Scopes.rbegin(); ScopeIt != Scopes.rend(); ++ScopeIt) {
    auto It = ScopeIt->find(Name);
    if (It != ScopeIt->end())
      return It->second;
  }
  if (auto It = GlobalsByName.find(Name); It != GlobalsByName.end())
    return It->second;
  if (auto It = FunctionsByName.find(Name); It != FunctionsByName.end())
    return It->second;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Globals
//===----------------------------------------------------------------------===//

void Sema::checkGlobals() {
  for (VarDecl *G : Ctx.unit().Globals) {
    if (GlobalsByName.count(G->name()) || FunctionsByName.count(G->name())) {
      error(G->loc(), "redefinition of '" + G->name() + "'");
      continue;
    }
    const Type *Ty = G->type();
    if (Ty->isVoid() || Ty->isFunction()) {
      error(G->loc(), "variable '" + G->name() + "' has invalid type " +
                          Ty->str());
      continue;
    }
    if (const auto *S = typeDynCast<StructType>(Ty); S && !S->isComplete()) {
      error(G->loc(), "variable '" + G->name() + "' has incomplete type " +
                          Ty->str());
      continue;
    }
    GlobalsByName.emplace(G->name(), G);
    G->setStorage(StorageKind::Global, GlobalTop);
    GlobalTop += Ty->sizeInCells();
    checkVarInit(G, /*IsGlobal=*/true);
  }
}

namespace {
/// Recursively reports calls inside a global initializer.
void findCalls(const Expr *E, std::vector<const CallExpr *> &Out) {
  if (!E)
    return;
  switch (E->kind()) {
  case ExprKind::Call: {
    const auto *C = exprCast<CallExpr>(E);
    Out.push_back(C);
    findCalls(C->callee(), Out);
    for (const Expr *A : C->args())
      findCalls(A, Out);
    return;
  }
  case ExprKind::Unary:
    findCalls(exprCast<UnaryExpr>(E)->operand(), Out);
    return;
  case ExprKind::Binary: {
    const auto *B = exprCast<BinaryExpr>(E);
    findCalls(B->lhs(), Out);
    findCalls(B->rhs(), Out);
    return;
  }
  case ExprKind::Assign: {
    const auto *A = exprCast<AssignExpr>(E);
    findCalls(A->lhs(), Out);
    findCalls(A->rhs(), Out);
    return;
  }
  case ExprKind::Conditional: {
    const auto *C = exprCast<ConditionalExpr>(E);
    findCalls(C->cond(), Out);
    findCalls(C->trueExpr(), Out);
    findCalls(C->falseExpr(), Out);
    return;
  }
  case ExprKind::Index: {
    const auto *I = exprCast<IndexExpr>(E);
    findCalls(I->base(), Out);
    findCalls(I->index(), Out);
    return;
  }
  case ExprKind::Member:
    findCalls(exprCast<MemberExpr>(E)->base(), Out);
    return;
  case ExprKind::Cast:
    findCalls(exprCast<CastExpr>(E)->operand(), Out);
    return;
  case ExprKind::InitList:
    for (const Expr *El : exprCast<InitListExpr>(E)->elements())
      findCalls(El, Out);
    return;
  default:
    return;
  }
}
} // namespace

void Sema::checkVarInit(VarDecl *V, bool IsGlobal) {
  Expr *Init = V->init();
  if (!Init)
    return;

  if (IsGlobal) {
    std::vector<const CallExpr *> Calls;
    findCalls(Init, Calls);
    for (const CallExpr *C : Calls)
      error(C->loc(), "calls are not allowed in global initializers");
  }

  const Type *Ty = V->type();
  if (auto *List = exprDynCast<InitListExpr>(Init)) {
    checkInitList(Ty, List);
    return;
  }
  // "char buf[N] = "...";" — string initialization of a char array.
  if (auto *Str = exprDynCast<StringLitExpr>(Init)) {
    if (const auto *AT = typeDynCast<ArrayType>(Ty);
        AT && AT->element()->isChar()) {
      checkExpr(Str); // registers the literal
      if (static_cast<int64_t>(Str->value().size()) + 1 > AT->length())
        error(Init->loc(), "string literal does not fit in array of " +
                               std::to_string(AT->length()) + " chars");
      return;
    }
  }
  const Type *InitTy = decay(checkExpr(Init));
  if (!isConvertible(InitTy, Ty, Init))
    error(Init->loc(), "cannot initialize " + Ty->str() + " with " +
                           InitTy->str());
}

void Sema::checkInitList(const Type *Ty, Expr *Init) {
  auto *List = exprDynCast<InitListExpr>(Init);
  if (!List) {
    // Scalar element inside a braced initializer.
    if (auto *Str = exprDynCast<StringLitExpr>(Init)) {
      if (const auto *AT = typeDynCast<ArrayType>(Ty);
          AT && AT->element()->isChar()) {
        checkExpr(Str);
        if (static_cast<int64_t>(Str->value().size()) + 1 > AT->length())
          error(Init->loc(), "string literal too long for array");
        return;
      }
    }
    const Type *InitTy = decay(checkExpr(Init));
    if (!isConvertible(InitTy, Ty, Init))
      error(Init->loc(), "cannot initialize " + Ty->str() + " with " +
                             InitTy->str());
    return;
  }

  List->setType(Ty);
  if (const auto *AT = typeDynCast<ArrayType>(Ty)) {
    if (static_cast<int64_t>(List->elements().size()) > AT->length()) {
      error(List->loc(), "too many initializers for " + Ty->str());
      return;
    }
    for (Expr *El : List->elements())
      checkInitList(AT->element(), El);
    return;
  }
  if (const auto *ST = typeDynCast<StructType>(Ty)) {
    if (List->elements().size() > ST->fields().size()) {
      error(List->loc(), "too many initializers for " + Ty->str());
      return;
    }
    for (size_t I = 0; I < List->elements().size(); ++I)
      checkInitList(ST->fields()[I].Ty, List->elements()[I]);
    return;
  }
  error(List->loc(), "braced initializer for scalar type " + Ty->str());
}

//===----------------------------------------------------------------------===//
// Functions and statements
//===----------------------------------------------------------------------===//

namespace {
/// Collects every label defined in \p S (for forward gotos).
void collectLabels(const Stmt *S, std::map<std::string, bool> &Labels,
                   DiagnosticEngine &Diags) {
  if (!S)
    return;
  switch (S->kind()) {
  case StmtKind::Label: {
    const auto *L = stmtCast<LabelStmt>(S);
    if (Labels.count(L->name()))
      Diags.error(L->loc(), "duplicate label '" + L->name() + "'");
    Labels[L->name()] = true;
    return;
  }
  case StmtKind::Compound:
    for (const Stmt *Child : stmtCast<CompoundStmt>(S)->body())
      collectLabels(Child, Labels, Diags);
    return;
  case StmtKind::If: {
    const auto *I = stmtCast<IfStmt>(S);
    collectLabels(I->thenStmt(), Labels, Diags);
    collectLabels(I->elseStmt(), Labels, Diags);
    return;
  }
  case StmtKind::While:
    collectLabels(stmtCast<WhileStmt>(S)->body(), Labels, Diags);
    return;
  case StmtKind::DoWhile:
    collectLabels(stmtCast<DoWhileStmt>(S)->body(), Labels, Diags);
    return;
  case StmtKind::For: {
    const auto *F = stmtCast<ForStmt>(S);
    collectLabels(F->init(), Labels, Diags);
    collectLabels(F->body(), Labels, Diags);
    return;
  }
  case StmtKind::Switch:
    collectLabels(stmtCast<SwitchStmt>(S)->body(), Labels, Diags);
    return;
  default:
    return;
  }
}
} // namespace

void Sema::checkFunction(FunctionDecl *F) {
  if (F->type()->returnType()->isStruct())
    error(F->loc(), "function '" + F->name() +
                        "' returns a struct by value; return a pointer "
                        "instead (unsupported in the cell model)");
  CurFunction = F;
  FrameTop = 0;
  LoopDepth = 0;
  SwitchDepth = 0;
  LabelsSeen.clear();
  collectLabels(F->body(), LabelsSeen, Diags);

  pushScope();
  for (VarDecl *P : F->params()) {
    const Type *PTy = P->type();
    if (PTy->isVoid() || PTy->isFunction()) {
      error(P->loc(), "parameter '" + P->name() + "' has invalid type " +
                          PTy->str());
      continue;
    }
    if (const auto *St = typeDynCast<StructType>(PTy);
        St && !St->isComplete()) {
      error(P->loc(), "parameter '" + P->name() +
                          "' has incomplete type " + PTy->str());
      continue;
    }
    P->setStorage(StorageKind::Frame, FrameTop);
    FrameTop += PTy->sizeInCells();
    declareLocal(P);
  }
  checkStmt(F->body());
  popScope();

  F->setFrameSizeCells(FrameTop);
  CurFunction = nullptr;
}

void Sema::checkStmt(Stmt *S) {
  if (!S)
    return;
  switch (S->kind()) {
  case StmtKind::Expr:
    checkExpr(stmtCast<ExprStmt>(S)->expr());
    return;
  case StmtKind::Decl: {
    VarDecl *V = stmtCast<DeclStmt>(S)->var();
    const Type *Ty = V->type();
    if (Ty->isVoid() || Ty->isFunction()) {
      error(V->loc(), "variable '" + V->name() + "' has invalid type " +
                          Ty->str());
      return;
    }
    if (const auto *St = typeDynCast<StructType>(Ty);
        St && !St->isComplete()) {
      error(V->loc(), "variable '" + V->name() + "' has incomplete type " +
                          Ty->str());
      return;
    }
    V->setStorage(StorageKind::Frame, FrameTop);
    FrameTop += Ty->sizeInCells();
    declareLocal(V);
    checkVarInit(V, /*IsGlobal=*/false);
    return;
  }
  case StmtKind::Compound: {
    pushScope();
    for (Stmt *Child : stmtCast<CompoundStmt>(S)->body())
      checkStmt(Child);
    popScope();
    return;
  }
  case StmtKind::If: {
    auto *I = stmtCast<IfStmt>(S);
    const Type *CondTy = decay(checkExpr(I->cond()));
    if (!CondTy->isScalar())
      error(I->cond()->loc(), "if condition has non-scalar type " +
                                  CondTy->str());
    checkStmt(I->thenStmt());
    checkStmt(I->elseStmt());
    return;
  }
  case StmtKind::While: {
    auto *W = stmtCast<WhileStmt>(S);
    const Type *CondTy = decay(checkExpr(W->cond()));
    if (!CondTy->isScalar())
      error(W->cond()->loc(), "loop condition has non-scalar type " +
                                  CondTy->str());
    ++LoopDepth;
    checkStmt(W->body());
    --LoopDepth;
    return;
  }
  case StmtKind::DoWhile: {
    auto *D = stmtCast<DoWhileStmt>(S);
    ++LoopDepth;
    checkStmt(D->body());
    --LoopDepth;
    const Type *CondTy = decay(checkExpr(D->cond()));
    if (!CondTy->isScalar())
      error(D->cond()->loc(), "loop condition has non-scalar type " +
                                  CondTy->str());
    return;
  }
  case StmtKind::For: {
    auto *F = stmtCast<ForStmt>(S);
    pushScope();
    checkStmt(F->init());
    if (F->cond()) {
      const Type *CondTy = decay(checkExpr(F->cond()));
      if (!CondTy->isScalar())
        error(F->cond()->loc(), "loop condition has non-scalar type " +
                                    CondTy->str());
    }
    if (F->step())
      checkExpr(F->step());
    ++LoopDepth;
    checkStmt(F->body());
    --LoopDepth;
    popScope();
    return;
  }
  case StmtKind::Switch: {
    auto *Sw = stmtCast<SwitchStmt>(S);
    const Type *CondTy = decay(checkExpr(Sw->cond()));
    if (!CondTy->isIntegral())
      error(Sw->cond()->loc(), "switch condition has non-integer type " +
                                   CondTy->str());
    ++SwitchDepth;
    SwitchCaseValues.emplace_back();
    SwitchHasDefault.push_back(false);
    checkStmt(Sw->body());
    SwitchHasDefault.pop_back();
    SwitchCaseValues.pop_back();
    --SwitchDepth;
    return;
  }
  case StmtKind::CaseLabel: {
    auto *C = stmtCast<CaseLabelStmt>(S);
    if (SwitchDepth == 0) {
      error(C->loc(), "'case' outside of switch");
      return;
    }
    auto V = foldIntConstant(C->valueExpr());
    if (!V) {
      error(C->loc(), "case value is not an integer constant");
      return;
    }
    C->setValue(*V);
    if (!SwitchCaseValues.back().insert(*V).second)
      error(C->loc(), "duplicate case value " + std::to_string(*V));
    return;
  }
  case StmtKind::DefaultLabel:
    if (SwitchDepth == 0) {
      error(S->loc(), "'default' outside of switch");
      return;
    }
    if (SwitchHasDefault.back())
      error(S->loc(), "multiple default labels in one switch");
    SwitchHasDefault.back() = true;
    return;
  case StmtKind::Break:
    if (LoopDepth == 0 && SwitchDepth == 0)
      error(S->loc(), "'break' outside of loop or switch");
    return;
  case StmtKind::Continue:
    if (LoopDepth == 0)
      error(S->loc(), "'continue' outside of loop");
    return;
  case StmtKind::Return: {
    auto *R = stmtCast<ReturnStmt>(S);
    const Type *RetTy = CurFunction->type()->returnType();
    if (R->value()) {
      if (RetTy->isVoid()) {
        error(R->loc(), "void function '" + CurFunction->name() +
                            "' returns a value");
        checkExpr(R->value());
        return;
      }
      const Type *ValTy = decay(checkExpr(R->value()));
      if (!isConvertible(ValTy, RetTy, R->value()))
        error(R->loc(), "cannot return " + ValTy->str() + " from function "
                            "returning " + RetTy->str());
      return;
    }
    if (!RetTy->isVoid())
      error(R->loc(), "non-void function '" + CurFunction->name() +
                          "' returns no value");
    return;
  }
  case StmtKind::Goto: {
    auto *G = stmtCast<GotoStmt>(S);
    if (!LabelsSeen.count(G->target()))
      error(G->loc(), "no label '" + G->target() + "' in this function");
    return;
  }
  case StmtKind::Label:
  case StmtKind::Null:
    return;
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

const Type *Sema::decay(const Type *Ty) {
  if (const auto *AT = typeDynCast<ArrayType>(Ty))
    return Ctx.types().pointerTo(AT->element());
  if (Ty->isFunction())
    return Ctx.types().pointerTo(Ty);
  return Ty;
}

const Type *Sema::arithResult(const Type *L, const Type *R) const {
  if (L->isDouble() || R->isDouble())
    return Ctx.types().doubleType();
  return Ctx.types().intType();
}

bool Sema::isLvalue(const Expr *E) const {
  switch (E->kind()) {
  case ExprKind::DeclRef:
    return declDynCast<VarDecl>(exprCast<DeclRefExpr>(E)->decl()) != nullptr;
  case ExprKind::Index:
  case ExprKind::Member:
    return true;
  case ExprKind::Unary:
    return exprCast<UnaryExpr>(E)->op() == UnaryOp::Deref;
  default:
    return false;
  }
}

bool Sema::isConvertible(const Type *From, const Type *To,
                         const Expr *FromExpr) const {
  if (From == To)
    return true;
  if (From->isArithmetic() && To->isArithmetic())
    return true;
  if (To->isPointer()) {
    if (From->isPointer()) {
      const Type *FromP = typeCast<PointerType>(From)->pointee();
      const Type *ToP = typeCast<PointerType>(To)->pointee();
      return FromP == ToP || FromP->isVoid() || ToP->isVoid();
    }
    if (From->isIntegral()) {
      auto V = foldIntConstant(FromExpr);
      return V && *V == 0; // Null-pointer constant.
    }
    return false;
  }
  return false;
}

const Type *Sema::checkExpr(Expr *E) {
  assert(E && "null expression");
  const Type *Ty = nullptr;
  switch (E->kind()) {
  case ExprKind::IntLit:
    Ty = Ctx.types().intType();
    break;
  case ExprKind::DoubleLit:
    Ty = Ctx.types().doubleType();
    break;
  case ExprKind::StringLit: {
    auto *S = exprCast<StringLitExpr>(E);
    if (S->stringId() == UINT32_MAX) {
      S->setStringId(static_cast<uint32_t>(Ctx.unit().StringTable.size()));
      Ctx.unit().StringTable.push_back(S->value());
    }
    Ty = Ctx.types().pointerTo(Ctx.types().charType());
    break;
  }
  case ExprKind::DeclRef:
    Ty = checkDeclRef(exprCast<DeclRefExpr>(E));
    break;
  case ExprKind::Unary:
    Ty = checkUnary(exprCast<UnaryExpr>(E));
    break;
  case ExprKind::Binary:
    Ty = checkBinary(exprCast<BinaryExpr>(E));
    break;
  case ExprKind::Assign:
    Ty = checkAssign(exprCast<AssignExpr>(E));
    break;
  case ExprKind::Conditional:
    Ty = checkConditional(exprCast<ConditionalExpr>(E));
    break;
  case ExprKind::Call:
    Ty = checkCall(exprCast<CallExpr>(E));
    break;
  case ExprKind::Index:
    Ty = checkIndex(exprCast<IndexExpr>(E));
    break;
  case ExprKind::Member:
    Ty = checkMember(exprCast<MemberExpr>(E));
    break;
  case ExprKind::Cast:
    Ty = checkCast(exprCast<CastExpr>(E));
    break;
  case ExprKind::InitList:
    error(E->loc(), "initializer list used outside a declaration");
    Ty = Ctx.types().intType();
    break;
  }
  E->setType(Ty);
  return Ty;
}

const Type *Sema::checkDeclRef(DeclRefExpr *E) {
  Decl *D = lookup(E->name());
  if (!D) {
    error(E->loc(), "use of undeclared identifier '" + E->name() + "'");
    return Ctx.types().intType();
  }
  E->setDecl(D);
  if (auto *V = declDynCast<VarDecl>(D))
    return V->type();
  auto *F = declDynCast<FunctionDecl>(D);
  assert(F && "unexpected decl kind");
  // A function name used as a value (outside a direct-call callee, which
  // bypasses this path) is an address-of operation on the function — the
  // static count the Markov pointer node weights arcs with (§5.2.1).
  F->noteAddressTaken();
  return F->type();
}

const Type *Sema::checkUnary(UnaryExpr *E) {
  const Type *IntTy = Ctx.types().intType();
  switch (E->op()) {
  case UnaryOp::Deref: {
    const Type *T = decay(checkExpr(E->operand()));
    const auto *PT = typeDynCast<PointerType>(T);
    if (!PT) {
      error(E->loc(), "cannot dereference non-pointer type " + T->str());
      return IntTy;
    }
    if (PT->pointee()->isVoid()) {
      error(E->loc(), "cannot dereference void pointer");
      return IntTy;
    }
    return PT->pointee();
  }
  case UnaryOp::AddrOf: {
    const Type *T = checkExpr(E->operand());
    if (T->isFunction())
      return Ctx.types().pointerTo(T);
    if (const auto *AT = typeDynCast<ArrayType>(T))
      return Ctx.types().pointerTo(AT->element());
    if (!isLvalue(E->operand())) {
      error(E->loc(), "cannot take the address of an rvalue");
      return Ctx.types().pointerTo(IntTy);
    }
    return Ctx.types().pointerTo(T);
  }
  case UnaryOp::Neg: {
    const Type *T = decay(checkExpr(E->operand()));
    if (!T->isArithmetic()) {
      error(E->loc(), "cannot negate value of type " + T->str());
      return IntTy;
    }
    return T->isDouble() ? T : IntTy;
  }
  case UnaryOp::BitNot: {
    const Type *T = decay(checkExpr(E->operand()));
    if (!T->isIntegral())
      error(E->loc(), "operand of '~' must be an integer, got " + T->str());
    return IntTy;
  }
  case UnaryOp::LogicalNot: {
    const Type *T = decay(checkExpr(E->operand()));
    if (!T->isScalar())
      error(E->loc(), "operand of '!' must be scalar, got " + T->str());
    return IntTy;
  }
  case UnaryOp::PreInc:
  case UnaryOp::PreDec:
  case UnaryOp::PostInc:
  case UnaryOp::PostDec: {
    const Type *T = checkExpr(E->operand());
    if (!isLvalue(E->operand()))
      error(E->loc(), "operand of increment/decrement must be an lvalue");
    if (!T->isScalar()) {
      error(E->loc(), "cannot increment value of type " + T->str());
      return IntTy;
    }
    return T;
  }
  }
  return IntTy;
}

const Type *Sema::checkBinary(BinaryExpr *E) {
  const Type *IntTy = Ctx.types().intType();
  const Type *L = decay(checkExpr(E->lhs()));
  const Type *R = decay(checkExpr(E->rhs()));

  switch (E->op()) {
  case BinaryOp::LogicalAnd:
  case BinaryOp::LogicalOr:
    if (!L->isScalar())
      error(E->lhs()->loc(), "operand of '" +
                                 std::string(binaryOpSpelling(E->op())) +
                                 "' must be scalar, got " + L->str());
    if (!R->isScalar())
      error(E->rhs()->loc(), "operand of '" +
                                 std::string(binaryOpSpelling(E->op())) +
                                 "' must be scalar, got " + R->str());
    return IntTy;

  case BinaryOp::Add:
    if (L->isPointer() && R->isIntegral())
      return L;
    if (L->isIntegral() && R->isPointer())
      return R;
    if (L->isArithmetic() && R->isArithmetic())
      return arithResult(L, R);
    break;

  case BinaryOp::Sub:
    if (L->isPointer() && R->isIntegral())
      return L;
    if (L->isPointer() && R->isPointer()) {
      if (L != R)
        error(E->loc(), "subtracting incompatible pointers " + L->str() +
                            " and " + R->str());
      return IntTy;
    }
    if (L->isArithmetic() && R->isArithmetic())
      return arithResult(L, R);
    break;

  case BinaryOp::Mul:
  case BinaryOp::Div:
    if (L->isArithmetic() && R->isArithmetic())
      return arithResult(L, R);
    break;

  case BinaryOp::Rem:
  case BinaryOp::Shl:
  case BinaryOp::Shr:
  case BinaryOp::BitAnd:
  case BinaryOp::BitOr:
  case BinaryOp::BitXor:
    if (L->isIntegral() && R->isIntegral())
      return IntTy;
    break;

  case BinaryOp::Lt:
  case BinaryOp::Gt:
  case BinaryOp::Le:
  case BinaryOp::Ge:
  case BinaryOp::Eq:
  case BinaryOp::Ne:
    if (L->isArithmetic() && R->isArithmetic())
      return IntTy;
    if (L->isPointer() && R->isPointer()) {
      const Type *LP = typeCast<PointerType>(L)->pointee();
      const Type *RP = typeCast<PointerType>(R)->pointee();
      if (LP != RP && !LP->isVoid() && !RP->isVoid())
        error(E->loc(), "comparing incompatible pointers " + L->str() +
                            " and " + R->str());
      return IntTy;
    }
    // Pointer vs null-pointer constant (e.g. "p == NULL").
    if ((L->isPointer() && R->isIntegral()) ||
        (L->isIntegral() && R->isPointer()))
      return IntTy;
    break;
  }

  error(E->loc(), std::string("invalid operands to '") +
                      binaryOpSpelling(E->op()) + "': " + L->str() +
                      " and " + R->str());
  return IntTy;
}

const Type *Sema::checkAssign(AssignExpr *E) {
  const Type *LhsTy = checkExpr(E->lhs());
  if (!isLvalue(E->lhs()))
    error(E->loc(), "assignment target is not an lvalue");
  if (LhsTy->isArray() || LhsTy->isFunction()) {
    error(E->loc(), "cannot assign to value of type " + LhsTy->str());
    checkExpr(E->rhs());
    return Ctx.types().intType();
  }

  const Type *RhsTy = decay(checkExpr(E->rhs()));
  if (E->compoundOp()) {
    BinaryOp Op = *E->compoundOp();
    bool PointerStep = LhsTy->isPointer() && RhsTy->isIntegral() &&
                       (Op == BinaryOp::Add || Op == BinaryOp::Sub);
    bool Arith = LhsTy->isArithmetic() && RhsTy->isArithmetic();
    bool IntOnly = Op == BinaryOp::Rem || Op == BinaryOp::Shl ||
                   Op == BinaryOp::Shr || Op == BinaryOp::BitAnd ||
                   Op == BinaryOp::BitOr || Op == BinaryOp::BitXor;
    if (IntOnly && !(LhsTy->isIntegral() && RhsTy->isIntegral()))
      error(E->loc(), std::string("invalid compound assignment '") +
                          binaryOpSpelling(Op) + "=' on " + LhsTy->str());
    else if (!PointerStep && !Arith)
      error(E->loc(), std::string("invalid compound assignment '") +
                          binaryOpSpelling(Op) + "=' on " + LhsTy->str() +
                          " and " + RhsTy->str());
    return LhsTy;
  }

  if (LhsTy->isStruct()) {
    if (LhsTy != RhsTy)
      error(E->loc(), "cannot assign " + RhsTy->str() + " to " +
                          LhsTy->str());
    return LhsTy;
  }
  if (!isConvertible(RhsTy, LhsTy, E->rhs()))
    error(E->loc(), "cannot assign " + RhsTy->str() + " to " +
                        LhsTy->str());
  return LhsTy;
}

const Type *Sema::checkConditional(ConditionalExpr *E) {
  const Type *CondTy = decay(checkExpr(E->cond()));
  if (!CondTy->isScalar())
    error(E->cond()->loc(), "conditional-expression condition must be "
                            "scalar, got " + CondTy->str());
  const Type *T = decay(checkExpr(E->trueExpr()));
  const Type *F = decay(checkExpr(E->falseExpr()));
  if (T == F)
    return T;
  if (T->isArithmetic() && F->isArithmetic())
    return arithResult(T, F);
  if (T->isPointer() && F->isPointer()) {
    const Type *TP = typeCast<PointerType>(T)->pointee();
    const Type *FP = typeCast<PointerType>(F)->pointee();
    if (TP == FP || FP->isVoid())
      return T;
    if (TP->isVoid())
      return F;
  }
  if (T->isPointer() && isConvertible(F, T, E->falseExpr()))
    return T;
  if (F->isPointer() && isConvertible(T, F, E->trueExpr()))
    return F;
  error(E->loc(), "incompatible conditional-expression branches " +
                      T->str() + " and " + F->str());
  return T;
}

const Type *Sema::checkCall(CallExpr *E) {
  const Type *IntTy = Ctx.types().intType();
  const FunctionType *FnTy = nullptr;

  // Direct call: the callee is an identifier naming a function. Resolved
  // here (not via checkDeclRef) so it does not count as address-taken.
  if (auto *Ref = exprDynCast<DeclRefExpr>(E->callee())) {
    Decl *D = lookup(Ref->name());
    if (auto *F = declDynCast<FunctionDecl>(D)) {
      Ref->setDecl(F);
      Ref->setType(F->type());
      E->setDirectCallee(F);
      FnTy = F->type();
    }
  }

  if (!FnTy) {
    const Type *CalleeTy = checkExpr(E->callee());
    // Calling through "fp", "*fp", or any function-pointer expression.
    if (CalleeTy->isFunction())
      FnTy = typeCast<FunctionType>(CalleeTy);
    else if (const auto *PT = typeDynCast<PointerType>(decay(CalleeTy));
             PT && PT->pointee()->isFunction())
      FnTy = typeCast<FunctionType>(PT->pointee());
    else {
      error(E->loc(), "called object has non-function type " +
                          CalleeTy->str());
      for (Expr *A : E->args())
        checkExpr(A);
      return IntTy;
    }
  }

  E->setCallSiteId(NextCallSiteId++);

  const auto &Params = FnTy->params();
  if (E->args().size() != Params.size()) {
    error(E->loc(), "call expects " + std::to_string(Params.size()) +
                        " argument(s), got " +
                        std::to_string(E->args().size()));
    for (Expr *A : E->args())
      checkExpr(A);
    return FnTy->returnType();
  }
  for (size_t I = 0; I < Params.size(); ++I) {
    const Type *ArgTy = decay(checkExpr(E->args()[I]));
    if (Params[I]->isStruct()) {
      if (ArgTy != Params[I])
        error(E->args()[I]->loc(),
              "argument " + std::to_string(I + 1) + " has type " +
                  ArgTy->str() + ", expected " + Params[I]->str());
      continue;
    }
    if (!isConvertible(ArgTy, Params[I], E->args()[I]))
      error(E->args()[I]->loc(),
            "argument " + std::to_string(I + 1) + " has type " +
                ArgTy->str() + ", expected " + Params[I]->str());
  }
  return FnTy->returnType();
}

const Type *Sema::checkIndex(IndexExpr *E) {
  const Type *BaseTy = decay(checkExpr(E->base()));
  const Type *IdxTy = decay(checkExpr(E->index()));
  if (!IdxTy->isIntegral())
    error(E->index()->loc(), "array index must be an integer, got " +
                                 IdxTy->str());
  const auto *PT = typeDynCast<PointerType>(BaseTy);
  if (!PT) {
    error(E->loc(), "subscripted value of type " + BaseTy->str() +
                        " is not an array or pointer");
    return Ctx.types().intType();
  }
  if (PT->pointee()->isVoid() || PT->pointee()->isFunction()) {
    error(E->loc(), "cannot index pointer to " + PT->pointee()->str());
    return Ctx.types().intType();
  }
  return PT->pointee();
}

const Type *Sema::checkMember(MemberExpr *E) {
  const Type *BaseTy = checkExpr(E->base());
  const StructType *ST = nullptr;
  if (E->isArrow()) {
    const auto *PT = typeDynCast<PointerType>(decay(BaseTy));
    if (PT)
      ST = typeDynCast<StructType>(PT->pointee());
    if (!ST) {
      error(E->loc(), "'->' applied to non-struct-pointer type " +
                          BaseTy->str());
      return Ctx.types().intType();
    }
  } else {
    ST = typeDynCast<StructType>(BaseTy);
    if (!ST) {
      error(E->loc(), "'.' applied to non-struct type " + BaseTy->str());
      return Ctx.types().intType();
    }
  }
  if (!ST->isComplete()) {
    error(E->loc(), "member access into incomplete type " + ST->str());
    return Ctx.types().intType();
  }
  const StructField *F = ST->findField(E->fieldName());
  if (!F) {
    error(E->loc(), "no field '" + E->fieldName() + "' in " + ST->str());
    return Ctx.types().intType();
  }
  E->setFieldOffset(F->OffsetCells);
  return F->Ty;
}

const Type *Sema::checkCast(CastExpr *E) {
  const Type *SrcTy = decay(checkExpr(E->operand()));
  const Type *DstTy = E->targetType();
  if (DstTy->isVoid())
    return DstTy; // Discarding cast.
  bool SrcOk = SrcTy->isScalar();
  bool DstOk = DstTy->isScalar();
  // Pointer ↔ pointer, pointer ↔ integer, arithmetic ↔ arithmetic are all
  // permitted with an explicit cast; double ↔ pointer is not.
  if (SrcOk && DstOk) {
    bool DoublePtrMix =
        (SrcTy->isDouble() && DstTy->isPointer()) ||
        (SrcTy->isPointer() && DstTy->isDouble());
    if (!DoublePtrMix)
      return DstTy;
  }
  error(E->loc(), "invalid cast from " + SrcTy->str() + " to " +
                      DstTy->str());
  return DstTy;
}

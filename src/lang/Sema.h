//===- lang/Sema.h - Mini-C semantic analysis -------------------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis for mini-C:
///  - injects the runtime builtin declarations (print_*, read_*, malloc,
///    free, abort, exit, rand, srand, sqrt, fabs, floor);
///  - merges prototypes with definitions;
///  - resolves names, type-checks every expression, and annotates the AST
///    (expression types, resolved declarations, member offsets, direct
///    callees, call-site ids, string-literal ids);
///  - folds case labels, resolves goto labels, checks break/continue
///    placement;
///  - lays out storage (global segment offsets, stack-frame offsets) and
///    counts address-of operations on functions — the static weight the
///    paper's pointer node uses (§5.2.1).
///
//===----------------------------------------------------------------------===//

#ifndef LANG_SEMA_H
#define LANG_SEMA_H

#include "lang/Ast.h"
#include "support/Diagnostics.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace sest {

/// Runs semantic analysis over a parsed translation unit.
class Sema {
public:
  Sema(AstContext &Ctx, DiagnosticEngine &Diags);

  /// Analyzes the unit; returns true when error-free.
  bool run();

private:
  // Setup.
  void injectBuiltins();
  FunctionDecl *makeBuiltin(const char *Name, BuiltinKind Kind,
                            const Type *Ret,
                            std::vector<const Type *> Params);
  void mergePrototypes();

  // Scopes.
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  /// Declares \p D in the innermost scope; diagnoses redefinition.
  void declareLocal(VarDecl *D);
  /// Finds a name, innermost scope outward, then globals/functions.
  Decl *lookup(const std::string &Name);

  // Globals and functions.
  void checkGlobals();
  void checkFunction(FunctionDecl *F);

  // Statements. \p LoopDepth/\p SwitchDepth track break/continue legality.
  void checkStmt(Stmt *S);
  void checkVarInit(VarDecl *V, bool IsGlobal);
  void checkInitList(const Type *Ty, Expr *Init);

  // Expressions. Returns the annotated expression type (never null; int
  // on error, with a diagnostic already emitted).
  const Type *checkExpr(Expr *E);
  const Type *checkDeclRef(DeclRefExpr *E);
  const Type *checkUnary(UnaryExpr *E);
  const Type *checkBinary(BinaryExpr *E);
  const Type *checkAssign(AssignExpr *E);
  const Type *checkConditional(ConditionalExpr *E);
  const Type *checkCall(CallExpr *E);
  const Type *checkIndex(IndexExpr *E);
  const Type *checkMember(MemberExpr *E);
  const Type *checkCast(CastExpr *E);

  /// True when \p E denotes a memory location (assignable).
  bool isLvalue(const Expr *E) const;
  /// True when a value of \p From may be implicitly converted to \p To
  /// (\p FromExpr enables literal-zero → pointer).
  bool isConvertible(const Type *From, const Type *To,
                     const Expr *FromExpr) const;
  /// Array/function decay applied to a type in value position.
  const Type *decay(const Type *Ty);
  /// The usual arithmetic conversion result (double wins, else int).
  const Type *arithResult(const Type *L, const Type *R) const;

  void error(SourceLoc Loc, std::string Message) {
    Diags.error(Loc, std::move(Message));
  }

  AstContext &Ctx;
  DiagnosticEngine &Diags;

  std::map<std::string, FunctionDecl *> FunctionsByName;
  std::map<std::string, VarDecl *> GlobalsByName;
  std::vector<std::map<std::string, VarDecl *>> Scopes;

  /// State for the function currently being checked.
  FunctionDecl *CurFunction = nullptr;
  int64_t FrameTop = 0;
  unsigned LoopDepth = 0;
  unsigned SwitchDepth = 0;
  std::map<std::string, bool> LabelsSeen; // name -> defined
  /// Per active switch: case values seen (duplicate detection) and
  /// whether a default label appeared.
  std::vector<std::set<int64_t>> SwitchCaseValues;
  std::vector<bool> SwitchHasDefault;
  uint32_t NextCallSiteId = 0;
  uint32_t NextFunctionId = 0;
  int64_t GlobalTop = 0;
};

} // namespace sest

#endif // LANG_SEMA_H

//===- lang/Token.h - Mini-C tokens ------------------------------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds and the Token record produced by the lexer.
///
//===----------------------------------------------------------------------===//

#ifndef LANG_TOKEN_H
#define LANG_TOKEN_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>

namespace sest {

/// Every distinct lexeme category of mini-C.
enum class TokenKind {
  EndOfFile,
  Identifier,
  IntLiteral,
  DoubleLiteral,
  CharLiteral,
  StringLiteral,

  // Keywords.
  KwInt,
  KwChar,
  KwDouble,
  KwVoid,
  KwStruct,
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwDo,
  KwSwitch,
  KwCase,
  KwDefault,
  KwBreak,
  KwContinue,
  KwReturn,
  KwGoto,
  KwSizeof,
  KwNull,

  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semicolon,
  Comma,
  Colon,
  Question,
  Dot,
  Arrow,

  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Tilde,
  Bang,
  Less,
  Greater,
  LessLess,
  GreaterGreater,
  LessEqual,
  GreaterEqual,
  EqualEqual,
  BangEqual,
  AmpAmp,
  PipePipe,
  PlusPlus,
  MinusMinus,

  Equal,
  PlusEqual,
  MinusEqual,
  StarEqual,
  SlashEqual,
  PercentEqual,
  AmpEqual,
  PipeEqual,
  CaretEqual,
  LessLessEqual,
  GreaterGreaterEqual,
};

/// Human-readable spelling of a token kind, for diagnostics.
const char *tokenKindName(TokenKind Kind);

/// One token. Literal payloads live in the fields below; Text holds the
/// identifier or string-literal spelling.
struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  SourceLoc Loc;
  std::string Text;
  int64_t IntValue = 0;
  double DoubleValue = 0.0;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace sest

#endif // LANG_TOKEN_H

//===- lang/Type.cpp - Mini-C type system ---------------------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "lang/Type.h"

#include <map>

using namespace sest;

int64_t Type::sizeInCells() const {
  switch (Kind) {
  case TypeKind::Void:
  case TypeKind::Function:
    return 0;
  case TypeKind::Int:
  case TypeKind::Char:
  case TypeKind::Double:
  case TypeKind::Pointer:
    return 1;
  case TypeKind::Array: {
    const auto *A = static_cast<const ArrayType *>(this);
    return A->length() * A->element()->sizeInCells();
  }
  case TypeKind::Struct:
    return static_cast<const StructType *>(this)->sizeCells();
  }
  assert(false && "unknown type kind");
  return 0;
}

std::string Type::str() const {
  switch (Kind) {
  case TypeKind::Void:
    return "void";
  case TypeKind::Int:
    return "int";
  case TypeKind::Char:
    return "char";
  case TypeKind::Double:
    return "double";
  case TypeKind::Pointer:
    return static_cast<const PointerType *>(this)->pointee()->str() + " *";
  case TypeKind::Array: {
    const auto *A = static_cast<const ArrayType *>(this);
    return A->element()->str() + " [" + std::to_string(A->length()) + "]";
  }
  case TypeKind::Struct:
    return "struct " + static_cast<const StructType *>(this)->name();
  case TypeKind::Function: {
    const auto *F = static_cast<const FunctionType *>(this);
    std::string S = F->returnType()->str() + " (";
    for (size_t I = 0; I < F->params().size(); ++I) {
      if (I != 0)
        S += ", ";
      S += F->params()[I]->str();
    }
    S += ")";
    return S;
  }
  }
  assert(false && "unknown type kind");
  return "";
}

//===----------------------------------------------------------------------===//
// TypeContext
//===----------------------------------------------------------------------===//

struct TypeContext::Impl {
  Type Void{TypeKind::Void};
  Type Int{TypeKind::Int};
  Type Char{TypeKind::Char};
  Type Double{TypeKind::Double};

  std::map<const Type *, std::unique_ptr<PointerType>> Pointers;
  std::map<std::pair<const Type *, int64_t>, std::unique_ptr<ArrayType>>
      Arrays;
  std::map<std::pair<const Type *, std::vector<const Type *>>,
           std::unique_ptr<FunctionType>>
      Functions;
  std::vector<std::unique_ptr<StructType>> Structs;
};

TypeContext::TypeContext() : Pimpl(std::make_unique<Impl>()) {
  VoidTy = &Pimpl->Void;
  IntTy = &Pimpl->Int;
  CharTy = &Pimpl->Char;
  DoubleTy = &Pimpl->Double;
}

TypeContext::~TypeContext() = default;

const PointerType *TypeContext::pointerTo(const Type *Pointee) {
  auto &Slot = Pimpl->Pointers[Pointee];
  if (!Slot)
    Slot.reset(new PointerType(Pointee));
  return Slot.get();
}

const ArrayType *TypeContext::arrayOf(const Type *Element, int64_t Length) {
  assert(Length >= 0 && "negative array length");
  auto &Slot = Pimpl->Arrays[{Element, Length}];
  if (!Slot)
    Slot.reset(new ArrayType(Element, Length));
  return Slot.get();
}

const FunctionType *
TypeContext::functionType(const Type *Return,
                          std::vector<const Type *> Params) {
  auto Key = std::make_pair(Return, Params);
  auto &Slot = Pimpl->Functions[Key];
  if (!Slot)
    Slot.reset(new FunctionType(Return, std::move(Params)));
  return Slot.get();
}

StructType *TypeContext::createStruct(std::string Name) {
  Pimpl->Structs.push_back(
      std::unique_ptr<StructType>(new StructType(std::move(Name))));
  return Pimpl->Structs.back().get();
}

void TypeContext::completeStruct(StructType *S,
                                 std::vector<StructField> Fields) {
  assert(!S->Complete && "struct completed twice");
  int64_t Offset = 0;
  for (StructField &F : Fields) {
    F.OffsetCells = Offset;
    Offset += F.Ty->sizeInCells();
  }
  S->Fields = std::move(Fields);
  S->SizeCells = Offset;
  S->Complete = true;
}

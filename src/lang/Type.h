//===- lang/Type.h - Mini-C type system -------------------------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mini-C type system: void, int, char, double, pointers, fixed-size
/// arrays, structs, and function types. Types are interned in a
/// TypeContext, so pointer equality is type equality.
///
/// Memory model: sizes are measured in *cells*, not bytes. Every scalar
/// (int, char, double, pointer) occupies exactly one cell; arrays and
/// structs occupy the sum of their elements. Pointer arithmetic operates
/// in element units, exactly as in C. The frequency estimators never
/// observe object layout, so this substitution (documented in DESIGN.md)
/// does not affect any reproduced result.
///
//===----------------------------------------------------------------------===//

#ifndef LANG_TYPE_H
#define LANG_TYPE_H

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sest {

class Type;
class StructType;

/// Discriminator for the Type hierarchy (LLVM-style hand-rolled RTTI).
enum class TypeKind {
  Void,
  Int,
  Char,
  Double,
  Pointer,
  Array,
  Struct,
  Function,
};

/// Base class of all mini-C types. Instances are interned and owned by a
/// TypeContext; compare with pointer equality.
class Type {
public:
  TypeKind kind() const { return Kind; }

  bool isVoid() const { return Kind == TypeKind::Void; }
  bool isInt() const { return Kind == TypeKind::Int; }
  bool isChar() const { return Kind == TypeKind::Char; }
  bool isDouble() const { return Kind == TypeKind::Double; }
  bool isPointer() const { return Kind == TypeKind::Pointer; }
  bool isArray() const { return Kind == TypeKind::Array; }
  bool isStruct() const { return Kind == TypeKind::Struct; }
  bool isFunction() const { return Kind == TypeKind::Function; }

  /// Integer-classified scalars (int or char).
  bool isIntegral() const { return isInt() || isChar(); }
  /// Anything usable in arithmetic (integral or double).
  bool isArithmetic() const { return isIntegral() || isDouble(); }
  /// Anything truth-testable (arithmetic or pointer).
  bool isScalar() const { return isArithmetic() || isPointer(); }

  /// Size in cells (see file comment). Void and function types have size 0.
  int64_t sizeInCells() const;

  /// A human-readable rendering like "int", "char *", "struct node".
  std::string str() const;

protected:
  explicit Type(TypeKind Kind) : Kind(Kind) {}
  ~Type() = default;

private:
  friend class TypeContext;
  TypeKind Kind;
};

/// A pointer type "T *".
class PointerType : public Type {
public:
  const Type *pointee() const { return Pointee; }

  static bool classof(const Type *T) {
    return T->kind() == TypeKind::Pointer;
  }

private:
  friend class TypeContext;
  explicit PointerType(const Type *Pointee)
      : Type(TypeKind::Pointer), Pointee(Pointee) {}
  const Type *Pointee;
};

/// A fixed-size array type "T [N]".
class ArrayType : public Type {
public:
  const Type *element() const { return Element; }
  int64_t length() const { return Length; }

  static bool classof(const Type *T) { return T->kind() == TypeKind::Array; }

private:
  friend class TypeContext;
  ArrayType(const Type *Element, int64_t Length)
      : Type(TypeKind::Array), Element(Element), Length(Length) {}
  const Type *Element;
  int64_t Length;
};

/// One named member of a struct.
struct StructField {
  std::string Name;
  const Type *Ty = nullptr;
  /// Offset of the field from the struct start, in cells.
  int64_t OffsetCells = 0;
};

/// A struct type. Structs are nominal: each "struct Name {...}" definition
/// creates one StructType; the body may be filled in after creation to
/// permit self-referential pointers.
class StructType : public Type {
public:
  const std::string &name() const { return Name; }
  bool isComplete() const { return Complete; }
  const std::vector<StructField> &fields() const { return Fields; }

  /// Finds a field by name; returns nullptr when absent.
  const StructField *findField(const std::string &FieldName) const {
    for (const StructField &F : Fields)
      if (F.Name == FieldName)
        return &F;
    return nullptr;
  }

  /// Total size in cells; only valid when complete.
  int64_t sizeCells() const {
    assert(Complete && "size of incomplete struct");
    return SizeCells;
  }

  static bool classof(const Type *T) {
    return T->kind() == TypeKind::Struct;
  }

private:
  friend class TypeContext;
  explicit StructType(std::string Name)
      : Type(TypeKind::Struct), Name(std::move(Name)) {}

  std::string Name;
  std::vector<StructField> Fields;
  int64_t SizeCells = 0;
  bool Complete = false;
};

/// A function type "Ret (P0, P1, ...)".
class FunctionType : public Type {
public:
  const Type *returnType() const { return Return; }
  const std::vector<const Type *> &params() const { return Params; }

  static bool classof(const Type *T) {
    return T->kind() == TypeKind::Function;
  }

private:
  friend class TypeContext;
  FunctionType(const Type *Return, std::vector<const Type *> Params)
      : Type(TypeKind::Function), Return(Return), Params(std::move(Params)) {
  }
  const Type *Return;
  std::vector<const Type *> Params;
};

/// Owns and interns all types for one translation unit.
class TypeContext {
public:
  TypeContext();
  TypeContext(const TypeContext &) = delete;
  TypeContext &operator=(const TypeContext &) = delete;
  ~TypeContext();

  const Type *voidType() const { return VoidTy; }
  const Type *intType() const { return IntTy; }
  const Type *charType() const { return CharTy; }
  const Type *doubleType() const { return DoubleTy; }

  /// Returns the unique "Pointee *" type.
  const PointerType *pointerTo(const Type *Pointee);
  /// Returns the unique "Element[Length]" type.
  const ArrayType *arrayOf(const Type *Element, int64_t Length);
  /// Returns the unique function type with the given signature.
  const FunctionType *functionType(const Type *Return,
                                   std::vector<const Type *> Params);

  /// Creates a fresh, incomplete struct type named \p Name. Nominal: two
  /// calls with the same name yield distinct types (the parser keeps a
  /// name→type map to avoid that).
  StructType *createStruct(std::string Name);

  /// Completes \p S with \p Fields, computing offsets and size.
  void completeStruct(StructType *S, std::vector<StructField> Fields);

private:
  struct Impl;
  std::unique_ptr<Impl> Pimpl;
  const Type *VoidTy;
  const Type *IntTy;
  const Type *CharTy;
  const Type *DoubleTy;
};

/// dyn_cast-style helpers for the Type hierarchy.
template <typename T> const T *typeDynCast(const Type *Ty) {
  if (Ty && T::classof(Ty))
    return static_cast<const T *>(Ty);
  return nullptr;
}

template <typename T> const T *typeCast(const Type *Ty) {
  assert(Ty && T::classof(Ty) && "typeCast to wrong type");
  return static_cast<const T *>(Ty);
}

} // namespace sest

#endif // LANG_TYPE_H

//===- metrics/BranchMiss.cpp - Branch miss-rate metrics -------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "metrics/BranchMiss.h"

using namespace sest;

std::vector<FunctionBranchPredictions>
sest::predictAllFunctions(const TranslationUnit &Unit, const CfgModule &Cfgs,
                          const BranchPredictor &Predictor) {
  std::vector<FunctionBranchPredictions> Out(Unit.Functions.size());
  for (const auto &[F, G] : Cfgs.all())
    Out[F->functionId()] = Predictor.predictFunction(*G);
  return Out;
}

BranchMissCounts sest::branchMissRate(
    const CfgModule &Cfgs,
    const std::vector<FunctionBranchPredictions> &Predictions,
    const Profile &Actual, BranchOracle Oracle, const Profile *Training) {
  assert((Oracle != BranchOracle::Training || Training) &&
         "training oracle needs a training profile");

  BranchMissCounts Counts;
  for (const auto &[F, G] : Cfgs.all()) {
    size_t Fid = F->functionId();
    const FunctionBranchPredictions &Pred = Predictions[Fid];
    const FunctionProfile &FP = Actual.Functions[Fid];

    for (const auto &B : G->blocks()) {
      if (B->terminator() != TerminatorKind::CondBranch)
        continue; // switches are excluded from Fig. 2
      auto It = Pred.ByBlock.find(B->id());
      if (It == Pred.ByBlock.end())
        continue;
      if (It->second.ConstantCondition)
        continue; // "predicting, but not counting towards the score"

      double Taken = FP.ArcCounts[B->id()][0];    // condition true
      double NotTaken = FP.ArcCounts[B->id()][1]; // condition false
      double Executed = Taken + NotTaken;
      if (Executed <= 0)
        continue;

      bool PredictTrue = true;
      switch (Oracle) {
      case BranchOracle::Static:
        PredictTrue = It->second.PredictTrue;
        break;
      case BranchOracle::Training: {
        const FunctionProfile &TP = Training->Functions[Fid];
        double TTaken = TP.ArcCounts[B->id()][0];
        double TNot = TP.ArcCounts[B->id()][1];
        PredictTrue = TTaken >= TNot;
        break;
      }
      case BranchOracle::Perfect:
        PredictTrue = Taken >= NotTaken;
        break;
      }

      Counts.Executed += Executed;
      Counts.Misses += PredictTrue ? NotTaken : Taken;
    }
  }
  return Counts;
}

//===- metrics/BranchMiss.h - Branch miss-rate metrics ----------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Branch miss-rate measurement (Fig. 2): the percentage of dynamic
/// two-way branches mispredicted by
///
///  - the smart static predictor,
///  - profiling with alternate inputs (majority direction in a training
///    profile), and
///  - the perfect static predictor (PSP) — "this uses a single profile to
///    predict its own result; it thus represents the upper bound on the
///    performance of static branch prediction".
///
/// Following §2 and Fig. 2's caption, branches whose condition is a
/// compile-time constant are excluded, and switch dispatches are not
/// counted (they are not two-way branches).
///
//===----------------------------------------------------------------------===//

#ifndef METRICS_BRANCHMISS_H
#define METRICS_BRANCHMISS_H

#include "cfg/Cfg.h"
#include "estimators/BranchPrediction.h"
#include "profile/Profile.h"

#include <vector>

namespace sest {

/// Accumulated miss statistics.
struct BranchMissCounts {
  double Misses = 0;
  double Executed = 0;

  double rate() const { return Executed > 0 ? Misses / Executed : 0.0; }

  BranchMissCounts &operator+=(const BranchMissCounts &Rhs) {
    Misses += Rhs.Misses;
    Executed += Rhs.Executed;
    return *this;
  }
};

/// Who predicts the branch direction.
enum class BranchOracle {
  Static,   ///< The smart predictor's directions.
  Training, ///< Majority direction in a separate training profile.
  Perfect,  ///< Majority direction in the *scored* profile (PSP).
};

/// Computes the miss rate of \p Oracle over all two-way branches of the
/// program, scored against \p Actual.
///
/// \p Predictions must hold predictFunction() results for every defined
/// function (indexed by function id) — its directions drive
/// BranchOracle::Static, and its ConstantCondition flags define the
/// exclusion set for every oracle. \p Training is required (and only
/// used) for BranchOracle::Training.
BranchMissCounts
branchMissRate(const CfgModule &Cfgs,
               const std::vector<FunctionBranchPredictions> &Predictions,
               const Profile &Actual, BranchOracle Oracle,
               const Profile *Training = nullptr);

/// Convenience: predictions for every defined function, indexed by
/// function id.
std::vector<FunctionBranchPredictions>
predictAllFunctions(const TranslationUnit &Unit, const CfgModule &Cfgs,
                    const BranchPredictor &Predictor);

} // namespace sest

#endif // METRICS_BRANCHMISS_H

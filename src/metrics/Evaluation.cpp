//===- metrics/Evaluation.cpp - Paper evaluation drivers -------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "metrics/Evaluation.h"

#include "metrics/WeightMatching.h"

using namespace sest;

std::vector<size_t> sest::scoredFunctionIds(const TranslationUnit &Unit) {
  std::vector<size_t> Ids;
  for (const FunctionDecl *F : Unit.Functions)
    if (F->isDefined())
      Ids.push_back(F->functionId());
  return Ids;
}

std::vector<FunctionIntraScore>
sest::intraPerFunctionScores(const ProgramEstimate &Estimate,
                             const Profile &Actual,
                             const std::vector<size_t> &FunctionIds,
                             double Cutoff) {
  std::vector<FunctionIntraScore> Out;
  for (size_t F : FunctionIds) {
    const FunctionProfile &FP = Actual.Functions[F];
    if (FP.EntryCount <= 0)
      continue; // never invoked under this input
    if (F >= Estimate.BlockEstimates.size() ||
        Estimate.BlockEstimates[F].size() != FP.BlockCounts.size())
      continue;
    double Score = weightMatchingScore(Estimate.BlockEstimates[F],
                                       FP.BlockCounts, Cutoff);
    Out.push_back({F, Score, FP.EntryCount});
  }
  return Out;
}

double sest::intraProceduralScore(const ProgramEstimate &Estimate,
                                  const Profile &Actual,
                                  const std::vector<size_t> &FunctionIds,
                                  double Cutoff) {
  // "the resulting per-function scores were then averaged, weighted by
  // the dynamic invocation count of the function in question" (§4.2).
  double WeightedSum = 0.0;
  double WeightTotal = 0.0;
  for (const FunctionIntraScore &S :
       intraPerFunctionScores(Estimate, Actual, FunctionIds, Cutoff)) {
    WeightedSum += S.Score * S.Weight;
    WeightTotal += S.Weight;
  }
  return WeightTotal > 0 ? WeightedSum / WeightTotal : 1.0;
}

double sest::functionInvocationScore(const ProgramEstimate &Estimate,
                                     const Profile &Actual,
                                     const std::vector<size_t> &FunctionIds,
                                     double Cutoff) {
  std::vector<double> Est, Act;
  Est.reserve(FunctionIds.size());
  Act.reserve(FunctionIds.size());
  for (size_t F : FunctionIds) {
    Est.push_back(F < Estimate.FunctionEstimates.size()
                      ? Estimate.FunctionEstimates[F]
                      : 0.0);
    Act.push_back(Actual.Functions[F].EntryCount);
  }
  return weightMatchingScore(Est, Act, Cutoff);
}

double sest::callSiteScore(const ProgramEstimate &Estimate,
                           const Profile &Actual, double Cutoff) {
  // Negative estimates mark omitted (indirect) sites; the metric skips
  // them in both rankings.
  return weightMatchingScore(Estimate.CallSiteEstimates,
                             Actual.CallSiteCounts, Cutoff);
}

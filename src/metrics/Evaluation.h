//===- metrics/Evaluation.h - Paper evaluation drivers ----------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's scoring protocols (§3):
///
///  - intra-procedural: per-function weight matching of block estimates
///    against a profile, averaged weighted by each function's dynamic
///    invocation count;
///  - function invocations: weight matching of per-function counts over
///    the defined (user) functions;
///  - call sites: weight matching over direct call sites of the whole
///    program;
///  - cross-validation: an estimate is scored against each profile
///    separately and the scores averaged; a profile is scored against
///    the aggregate of all the *other* profiles.
///
/// Branch miss rates (Fig. 2) live in BranchMiss.h.
///
//===----------------------------------------------------------------------===//

#ifndef METRICS_EVALUATION_H
#define METRICS_EVALUATION_H

#include "estimators/Pipeline.h"
#include "profile/Profile.h"

#include <vector>

namespace sest {

/// Which functions participate in function-level and intra-procedural
/// scoring (the paper scores compiled user functions, not library
/// builtins). Returns the ids of all defined functions.
std::vector<size_t> scoredFunctionIds(const TranslationUnit &Unit);

/// Intra-procedural weight matching (Fig. 4): per-function scores at
/// \p Cutoff, weighted by the function's dynamic invocation count in
/// \p Actual. Functions never invoked are skipped.
double intraProceduralScore(const ProgramEstimate &Estimate,
                            const Profile &Actual,
                            const std::vector<size_t> &FunctionIds,
                            double Cutoff);

/// One term of the intra-procedural average: a function's own
/// weight-matching score and the invocation count that weights it.
struct FunctionIntraScore {
  size_t FunctionId = 0;
  double Score = 1.0;
  double Weight = 0.0; ///< Dynamic invocation count in the profile.
};

/// The per-function terms behind intraProceduralScore(), for divergence
/// attribution: which functions drag the weighted average down. Skipped
/// functions (never invoked, or shape mismatch) are absent.
std::vector<FunctionIntraScore>
intraPerFunctionScores(const ProgramEstimate &Estimate,
                       const Profile &Actual,
                       const std::vector<size_t> &FunctionIds,
                       double Cutoff);

/// Function-invocation weight matching (Fig. 5).
double functionInvocationScore(const ProgramEstimate &Estimate,
                               const Profile &Actual,
                               const std::vector<size_t> &FunctionIds,
                               double Cutoff);

/// Call-site weight matching (Fig. 9); indirect sites are omitted via
/// the estimate's -1 markers.
double callSiteScore(const ProgramEstimate &Estimate, const Profile &Actual,
                     double Cutoff);

/// Averages \p ScoreFn(profile) over all profiles — the "compare to each
/// profile, then average" protocol.
template <typename Fn>
double averageOverProfiles(const std::vector<Profile> &Profiles, Fn ScoreFn) {
  if (Profiles.empty())
    return 0.0;
  double Sum = 0.0;
  for (const Profile &P : Profiles)
    Sum += ScoreFn(P);
  return Sum / static_cast<double>(Profiles.size());
}

} // namespace sest

#endif // METRICS_EVALUATION_H

//===- metrics/WeightMatching.cpp - Wall's weight-matching metric ----------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "metrics/WeightMatching.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

using namespace sest;

namespace {

/// Indices 0..N-1 ordered by descending key; ties broken by index so the
/// ranking is deterministic.
std::vector<size_t> rankDescending(const std::vector<double> &Keys) {
  std::vector<size_t> Order(Keys.size());
  std::iota(Order.begin(), Order.end(), 0);
  std::stable_sort(Order.begin(), Order.end(),
                   [&Keys](size_t A, size_t B) { return Keys[A] > Keys[B]; });
  return Order;
}

/// Sum of Values over the top Cutoff·N items by Keys with fractional
/// rounding ("we round up, and weight the extra block fractionally").
double topWeight(const std::vector<double> &Keys,
                 const std::vector<double> &Values, double CutoffFraction) {
  const size_t N = Keys.size();
  double Count = CutoffFraction * static_cast<double>(N);
  if (Count <= 0)
    return 0.0;
  size_t Whole = static_cast<size_t>(std::floor(Count));
  double Frac = Count - static_cast<double>(Whole);
  if (Whole > N) {
    Whole = N;
    Frac = 0;
  }

  std::vector<size_t> Order = rankDescending(Keys);
  double Sum = 0.0;
  for (size_t I = 0; I < Whole; ++I)
    Sum += Values[Order[I]];
  if (Frac > 0 && Whole < N)
    Sum += Frac * Values[Order[Whole]];
  return Sum;
}

} // namespace

double sest::quantileWeight(const std::vector<double> &Keys,
                            const std::vector<double> &Values,
                            double CutoffFraction) {
  assert(Keys.size() == Values.size() && "parallel vectors required");
  return topWeight(Keys, Values, CutoffFraction);
}

double sest::weightMatchingScore(const std::vector<double> &Estimate,
                                 const std::vector<double> &Actual,
                                 double CutoffFraction) {
  assert(Estimate.size() == Actual.size() && "parallel vectors required");

  // Drop omitted items (negative estimates).
  std::vector<double> E, A;
  E.reserve(Estimate.size());
  A.reserve(Actual.size());
  for (size_t I = 0; I < Estimate.size(); ++I) {
    if (Estimate[I] < 0)
      continue;
    E.push_back(Estimate[I]);
    A.push_back(Actual[I]);
  }

  if (E.empty() || CutoffFraction <= 0)
    return 1.0;

  double Denominator = topWeight(A, A, CutoffFraction);
  if (Denominator <= 0)
    return 1.0;
  double Numerator = topWeight(E, A, CutoffFraction);
  // Ties at the actual cutoff can let the estimate capture marginally
  // more weight than the canonical actual quantile; clamp to 1.
  return std::min(1.0, Numerator / Denominator);
}

//===- metrics/WeightMatching.cpp - Wall's weight-matching metric ----------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "metrics/WeightMatching.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

using namespace sest;

namespace {

/// Indices 0..N-1 ordered by descending key; ties broken by index so the
/// ranking is deterministic.
std::vector<size_t> rankDescending(const std::vector<double> &Keys) {
  std::vector<size_t> Order(Keys.size());
  std::iota(Order.begin(), Order.end(), 0);
  std::stable_sort(Order.begin(), Order.end(),
                   [&Keys](size_t A, size_t B) { return Keys[A] > Keys[B]; });
  return Order;
}

/// Sum of Values over the top Cutoff·N items by Keys with fractional
/// rounding ("we round up, and weight the extra block fractionally").
double topWeight(const std::vector<double> &Keys,
                 const std::vector<double> &Values, double CutoffFraction) {
  const size_t N = Keys.size();
  double Count = CutoffFraction * static_cast<double>(N);
  if (Count <= 0)
    return 0.0;
  size_t Whole = static_cast<size_t>(std::floor(Count));
  double Frac = Count - static_cast<double>(Whole);
  if (Whole > N) {
    Whole = N;
    Frac = 0;
  }

  std::vector<size_t> Order = rankDescending(Keys);
  double Sum = 0.0;
  for (size_t I = 0; I < Whole; ++I)
    Sum += Values[Order[I]];
  if (Frac > 0 && Whole < N)
    Sum += Frac * Values[Order[Whole]];
  return Sum;
}

} // namespace

double sest::quantileWeight(const std::vector<double> &Keys,
                            const std::vector<double> &Values,
                            double CutoffFraction) {
  assert(Keys.size() == Values.size() && "parallel vectors required");
  return topWeight(Keys, Values, CutoffFraction);
}

namespace {

/// Per-item top-quantile membership under the \p Keys ordering: 1 for
/// the Whole leading items, the fractional remainder for the boundary
/// item, 0 elsewhere. Mirrors topWeight()'s selection exactly.
std::vector<double> topFractions(const std::vector<double> &Keys,
                                 double CutoffFraction) {
  const size_t N = Keys.size();
  std::vector<double> Frac(N, 0.0);
  double Count = CutoffFraction * static_cast<double>(N);
  if (Count <= 0)
    return Frac;
  size_t Whole = static_cast<size_t>(std::floor(Count));
  double Rem = Count - static_cast<double>(Whole);
  if (Whole > N) {
    Whole = N;
    Rem = 0;
  }
  std::vector<size_t> Order = rankDescending(Keys);
  for (size_t I = 0; I < Whole; ++I)
    Frac[Order[I]] = 1.0;
  if (Rem > 0 && Whole < N)
    Frac[Order[Whole]] = Rem;
  return Frac;
}

} // namespace

WeightMatchingAttribution
sest::weightMatchingAttribution(const std::vector<double> &Estimate,
                                const std::vector<double> &Actual,
                                double CutoffFraction) {
  assert(Estimate.size() == Actual.size() && "parallel vectors required");
  const size_t N = Estimate.size();

  WeightMatchingAttribution Out;
  Out.EstTopFraction.assign(N, 0.0);
  Out.ActTopFraction.assign(N, 0.0);
  Out.EstRank.assign(N, -1);
  Out.ActRank.assign(N, -1);
  Out.LossShare.assign(N, 0.0);

  // Filter omitted items, remembering the original indices.
  std::vector<double> E, A;
  std::vector<size_t> Origin;
  E.reserve(N);
  A.reserve(N);
  Origin.reserve(N);
  for (size_t I = 0; I < N; ++I) {
    if (Estimate[I] < 0)
      continue;
    E.push_back(Estimate[I]);
    A.push_back(Actual[I]);
    Origin.push_back(I);
  }

  // Ranks are well-defined whenever any item is scored.
  {
    std::vector<size_t> EstOrder = rankDescending(E);
    std::vector<size_t> ActOrder = rankDescending(A);
    for (size_t R = 0; R < EstOrder.size(); ++R)
      Out.EstRank[Origin[EstOrder[R]]] = static_cast<int>(R);
    for (size_t R = 0; R < ActOrder.size(); ++R)
      Out.ActRank[Origin[ActOrder[R]]] = static_cast<int>(R);
  }

  if (E.empty() || CutoffFraction <= 0)
    return Out; // degenerate: score 1, no loss

  std::vector<double> EstFrac = topFractions(E, CutoffFraction);
  std::vector<double> ActFrac = topFractions(A, CutoffFraction);
  double Denominator = 0.0, Numerator = 0.0;
  for (size_t I = 0; I < E.size(); ++I) {
    Denominator += ActFrac[I] * A[I];
    Numerator += EstFrac[I] * A[I];
  }
  for (size_t I = 0; I < E.size(); ++I) {
    Out.EstTopFraction[Origin[I]] = EstFrac[I];
    Out.ActTopFraction[Origin[I]] = ActFrac[I];
  }
  if (Denominator <= 0)
    return Out; // degenerate: score 1, no loss

  double Raw = Numerator / Denominator;
  Out.Score = std::min(1.0, Raw);
  if (Raw >= 1.0)
    return Out; // tie-clamped: loss 0, shares stay 0

  Out.Loss = 1.0 - Raw;
  for (size_t I = 0; I < E.size(); ++I)
    Out.LossShare[Origin[I]] =
        (ActFrac[I] - EstFrac[I]) * A[I] / Denominator;
  return Out;
}

double sest::weightMatchingScore(const std::vector<double> &Estimate,
                                 const std::vector<double> &Actual,
                                 double CutoffFraction) {
  assert(Estimate.size() == Actual.size() && "parallel vectors required");

  // Drop omitted items (negative estimates).
  std::vector<double> E, A;
  E.reserve(Estimate.size());
  A.reserve(Actual.size());
  for (size_t I = 0; I < Estimate.size(); ++I) {
    if (Estimate[I] < 0)
      continue;
    E.push_back(Estimate[I]);
    A.push_back(Actual[I]);
  }

  if (E.empty() || CutoffFraction <= 0)
    return 1.0;

  double Denominator = topWeight(A, A, CutoffFraction);
  if (Denominator <= 0)
    return 1.0;
  double Numerator = topWeight(E, A, CutoffFraction);
  // Ties at the actual cutoff can let the estimate capture marginally
  // more weight than the canonical actual quantile; clamp to 1.
  return std::min(1.0, Numerator / Denominator);
}

//===- metrics/WeightMatching.h - Wall's weight-matching metric -*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The weight-matching metric (paper §3, after Wall [12]): how well does
/// an estimate identify the top n% of items by actual weight? The
/// quantile is selected once by estimate and once by actual weight; the
/// score is the actual weight captured by the estimated quantile divided
/// by the actual weight of the actual quantile. When the percentage does
/// not divide the item count exactly, the count is rounded up and the
/// extra item weighted fractionally (paper footnote 2).
///
//===----------------------------------------------------------------------===//

#ifndef METRICS_WEIGHTMATCHING_H
#define METRICS_WEIGHTMATCHING_H

#include <cstddef>
#include <vector>

namespace sest {

/// Weight-matching score in [0, 1].
///
/// \p Estimate and \p Actual are parallel vectors of item weights.
/// \p CutoffFraction is the quantile (the paper uses 0.05 to 0.6).
/// Items with negative estimates are treated as "omitted" and excluded
/// from both rankings (used for indirect call sites).
///
/// Degenerate cases score 1.0: no items, zero cutoff, or an actual
/// quantile of total weight zero.
double weightMatchingScore(const std::vector<double> &Estimate,
                           const std::vector<double> &Actual,
                           double CutoffFraction);

/// The quantile weight helper: sum of the top \p Cutoff·N weights of
/// \p Values when ranked by \p Keys (descending, ties by index), with
/// the paper's fractional rounding. Exposed for tests.
double quantileWeight(const std::vector<double> &Keys,
                      const std::vector<double> &Values,
                      double CutoffFraction);

/// Per-item decomposition of a weight-matching score: which items sit in
/// the estimated / actual top quantile, their ranks under each ordering,
/// and each item's additive contribution to the score's loss. Vectors are
/// parallel to the original (unfiltered) inputs; omitted items (negative
/// estimates) hold -1 ranks, zero fractions and zero shares.
struct WeightMatchingAttribution {
  /// The clamped score, identical to weightMatchingScore().
  double Score = 1.0;
  /// 1 - Score. Zero for every degenerate case that scores 1.0.
  double Loss = 0.0;
  /// Membership of each item in the estimated / actual top quantile:
  /// 1 inside, 0 outside, fractional for the paper's rounded-up boundary
  /// item.
  std::vector<double> EstTopFraction, ActTopFraction;
  /// Dense 0-based rank among scored items under the estimate / actual
  /// ordering (descending, ties by index); -1 for omitted items.
  std::vector<int> EstRank, ActRank;
  /// Per-item contribution to Loss:
  ///   (ActTopFraction - EstTopFraction) · actual / actualQuantileWeight.
  /// Items the actual ranking puts in the top quantile but the estimate
  /// misses contribute positively; items the estimate wrongly promotes
  /// contribute negatively (their smaller actual weight *was* captured).
  /// The shares sum to Loss exactly; when ties let the estimate capture
  /// more than the canonical quantile (score clamped to 1) the shares
  /// are all zeroed so the invariant holds.
  std::vector<double> LossShare;
};

/// Computes the decomposition for the same inputs weightMatchingScore()
/// takes. Attribution invariant: sum(LossShare) == Loss == 1 - Score.
WeightMatchingAttribution
weightMatchingAttribution(const std::vector<double> &Estimate,
                          const std::vector<double> &Actual,
                          double CutoffFraction);

} // namespace sest

#endif // METRICS_WEIGHTMATCHING_H

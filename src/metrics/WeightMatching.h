//===- metrics/WeightMatching.h - Wall's weight-matching metric -*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The weight-matching metric (paper §3, after Wall [12]): how well does
/// an estimate identify the top n% of items by actual weight? The
/// quantile is selected once by estimate and once by actual weight; the
/// score is the actual weight captured by the estimated quantile divided
/// by the actual weight of the actual quantile. When the percentage does
/// not divide the item count exactly, the count is rounded up and the
/// extra item weighted fractionally (paper footnote 2).
///
//===----------------------------------------------------------------------===//

#ifndef METRICS_WEIGHTMATCHING_H
#define METRICS_WEIGHTMATCHING_H

#include <cstddef>
#include <vector>

namespace sest {

/// Weight-matching score in [0, 1].
///
/// \p Estimate and \p Actual are parallel vectors of item weights.
/// \p CutoffFraction is the quantile (the paper uses 0.05 to 0.6).
/// Items with negative estimates are treated as "omitted" and excluded
/// from both rankings (used for indirect call sites).
///
/// Degenerate cases score 1.0: no items, zero cutoff, or an actual
/// quantile of total weight zero.
double weightMatchingScore(const std::vector<double> &Estimate,
                           const std::vector<double> &Actual,
                           double CutoffFraction);

/// The quantile weight helper: sum of the top \p Cutoff·N weights of
/// \p Values when ranked by \p Keys (descending, ties by index), with
/// the paper's fractional rounding. Exposed for tests.
double quantileWeight(const std::vector<double> &Keys,
                      const std::vector<double> &Values,
                      double CutoffFraction);

} // namespace sest

#endif // METRICS_WEIGHTMATCHING_H

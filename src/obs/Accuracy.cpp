//===- obs/Accuracy.cpp - Per-entity accuracy attribution ------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "obs/Accuracy.h"

#include "metrics/Evaluation.h"
#include "metrics/WeightMatching.h"
#include "obs/Telemetry.h"
#include "support/Json.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace sest;
using namespace sest::obs;

const char *sest::obs::entityFamilyName(EntityFamily F) {
  switch (F) {
  case EntityFamily::Block:
    return "block";
  case EntityFamily::Function:
    return "function";
  case EntityFamily::CallSite:
    return "call_site";
  }
  return "?";
}

std::vector<size_t> FamilyAccuracy::worstIndices(size_t N) const {
  std::vector<size_t> Order(Entities.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(), [this](size_t A, size_t B) {
    return Entities[A].LossShare > Entities[B].LossShare;
  });
  if (N > 0 && Order.size() > N)
    Order.resize(N);
  return Order;
}

//===----------------------------------------------------------------------===//
// Attribution computation
//===----------------------------------------------------------------------===//

namespace {

/// Runs the weight-matching attribution over parallel (estimate, actual)
/// vectors and fills the ranking/share fields of \p Out.Entities, which
/// must already hold one record per item in the same order.
void scoreFamily(FamilyAccuracy &Out, const std::vector<double> &Est,
                 const std::vector<double> &Act,
                 const AccuracyOptions &Opts) {
  assert(Out.Entities.size() == Est.size() && "records must parallel items");
  Out.Cutoff = Opts.Cutoff;
  WeightMatchingAttribution A =
      weightMatchingAttribution(Est, Act, Opts.Cutoff);
  Out.Score = A.Score;
  Out.Loss = A.Loss;
  for (size_t I = 0; I < Out.Entities.size(); ++I) {
    EntityDivergence &D = Out.Entities[I];
    D.Estimate = Est[I];
    D.Actual = Act[I];
    D.EstRank = A.EstRank[I];
    D.ActRank = A.ActRank[I];
    D.LossShare = A.LossShare[I];
  }
  for (double C : Opts.SweepCutoffs)
    Out.ScoreSweep.emplace_back(C, weightMatchingScore(Est, Act, C));
}

/// Source line a block's weight is attributed to: its anchor statement,
/// falling back to the terminator's origin for test-only blocks.
uint32_t blockLine(const BasicBlock &B) {
  if (B.anchor() && B.anchor()->loc().isValid())
    return B.anchor()->loc().Line;
  if (B.terminatorOrigin() && B.terminatorOrigin()->loc().isValid())
    return B.terminatorOrigin()->loc().Line;
  return 0;
}

/// Line of a branch condition (the expression, else the statement).
uint32_t branchLine(const BasicBlock &B) {
  if (B.condOrValue() && B.condOrValue()->loc().isValid())
    return B.condOrValue()->loc().Line;
  return blockLine(B);
}

} // namespace

AccuracyReport sest::obs::computeAccuracy(const TranslationUnit &Unit,
                                          const CfgModule &Cfgs,
                                          const CallGraph &CG,
                                          const ProgramEstimate &Estimate,
                                          const Profile &Actual,
                                          const EstimatorOptions &EstOpts,
                                          const AccuracyOptions &Opts) {
  ScopedPhase Phase("accuracy.compute", Actual.ProgramName);
  AccuracyReport R;
  R.Program = Actual.ProgramName;
  R.ProfileName = Actual.InputName;
  R.IntraName = intraEstimatorName(EstOpts.Intra);
  R.InterName = interEstimatorName(EstOpts.Inter);

  std::vector<size_t> Ids = scoredFunctionIds(Unit);

  // Block family: whole-program weights (per-entry estimates scaled by
  // the estimated invocation count vs raw profile counts). Only the
  // ranking matters to the metric, so the two columns keep their native
  // scales.
  {
    R.Blocks.Family = EntityFamily::Block;
    std::vector<std::vector<double>> Global = globalBlockEstimates(Estimate);
    std::vector<double> Est, Act;
    for (size_t F : Ids) {
      const FunctionProfile &FP = Actual.Functions[F];
      if (F >= Global.size() || Global[F].size() != FP.BlockCounts.size())
        continue;
      const FunctionDecl *Fn = Unit.Functions[F];
      const Cfg *G = Cfgs.cfg(Fn);
      for (size_t B = 0; B < Global[F].size(); ++B) {
        EntityDivergence D;
        D.FunctionId = static_cast<uint32_t>(F);
        D.Function = Fn->name();
        D.EntityId = static_cast<uint32_t>(B);
        if (G && B < G->size()) {
          D.Label = G->block(static_cast<uint32_t>(B))->label();
          D.Line = blockLine(*G->block(static_cast<uint32_t>(B)));
        }
        R.Blocks.Entities.push_back(std::move(D));
        Est.push_back(Global[F][B]);
        Act.push_back(FP.BlockCounts[B]);
      }
    }
    scoreFamily(R.Blocks, Est, Act, Opts);
  }

  // Function family: estimated vs measured invocation counts.
  {
    R.Functions.Family = EntityFamily::Function;
    std::vector<double> Est, Act;
    for (size_t F : Ids) {
      const FunctionDecl *Fn = Unit.Functions[F];
      EntityDivergence D;
      D.FunctionId = static_cast<uint32_t>(F);
      D.Function = Fn->name();
      D.EntityId = static_cast<uint32_t>(F);
      D.Label = Fn->name();
      D.Line = Fn->loc().isValid() ? Fn->loc().Line : 0;
      R.Functions.Entities.push_back(std::move(D));
      Est.push_back(F < Estimate.FunctionEstimates.size()
                        ? Estimate.FunctionEstimates[F]
                        : 0.0);
      Act.push_back(Actual.Functions[F].EntryCount);
    }
    scoreFamily(R.Functions, Est, Act, Opts);
  }

  // Call-site family: indirect sites ride along as omitted records (the
  // -1 estimate markers exclude them from both rankings).
  {
    R.CallSites.Family = EntityFamily::CallSite;
    std::vector<double> Est, Act;
    for (const CallSiteInfo &Site : CG.sites()) {
      EntityDivergence D;
      D.FunctionId = Site.Caller->functionId();
      D.Function = Site.Caller->name();
      D.EntityId = Site.CallSiteId;
      D.Label = Site.isIndirect() ? "(indirect)" : Site.Callee->name();
      D.Line = Site.Site->loc().isValid() ? Site.Site->loc().Line : 0;
      R.CallSites.Entities.push_back(std::move(D));
      Est.push_back(Site.CallSiteId < Estimate.CallSiteEstimates.size()
                        ? Estimate.CallSiteEstimates[Site.CallSiteId]
                        : 0.0);
      Act.push_back(Site.CallSiteId < Actual.CallSiteCounts.size()
                        ? Actual.CallSiteCounts[Site.CallSiteId]
                        : 0.0);
    }
    scoreFamily(R.CallSites, Est, Act, Opts);
  }

  // The paper's invocation-weighted intra protocol, with its terms.
  R.IntraPerFunction =
      intraPerFunctionScores(Estimate, Actual, Ids, Opts.Cutoff);
  R.IntraScore = intraProceduralScore(Estimate, Actual, Ids, Opts.Cutoff);

  // Branch attribution: one record per conditional branch, carrying the
  // full heuristic evidence next to the measured outcome. The miss
  // totals follow Fig. 2's rules (constants excluded, switches are not
  // two-way branches).
  {
    BranchPredictorConfig BC = EstOpts.Branch;
    BC.LoopIterations = EstOpts.LoopIterations;
    BranchPredictor Predictor(BC);
    // Pipeline-produced estimates carry their predictions; reuse them so
    // prediction runs once per function per configuration.
    bool HavePred = Estimate.Predictions.size() == Unit.Functions.size();
    for (const auto &[F, G] : Cfgs.all()) {
      size_t Fid = F->functionId();
      FunctionBranchPredictions Pred = HavePred
                                           ? Estimate.Predictions[Fid]
                                           : Predictor.predictFunction(*G);
      const FunctionProfile *FP =
          Fid < Actual.Functions.size() ? &Actual.Functions[Fid] : nullptr;
      bool HaveArcs = FP && FP->ArcCounts.size() == G->size();
      for (const auto &B : G->blocks()) {
        if (B->terminator() != TerminatorKind::CondBranch)
          continue;
        auto It = Pred.ByBlock.find(B->id());
        if (It == Pred.ByBlock.end())
          continue;
        const BranchPrediction &P = It->second;
        BranchDivergence D;
        D.FunctionId = static_cast<uint32_t>(Fid);
        D.Function = F->name();
        D.BlockId = B->id();
        D.Line = branchLine(*B);
        D.Heuristic = P.Heuristic;
        D.PredictTrue = P.PredictTrue;
        D.ProbTrue = P.ProbTrue;
        D.ConstantCondition = P.ConstantCondition;
        D.Fired = P.Fired;
        if (HaveArcs && B->id() < FP->ArcCounts.size() &&
            FP->ArcCounts[B->id()].size() >= 2) {
          D.TakenCount = FP->ArcCounts[B->id()][0];
          D.NotTakenCount = FP->ArcCounts[B->id()][1];
        }
        if (!D.ConstantCondition && D.executed() > 0) {
          R.Miss.Executed += D.executed();
          R.Miss.Misses += D.missCount();
        }
        R.Branches.push_back(std::move(D));
      }
    }
  }

  counterAdd("accuracy.reports.computed");
  counterAdd("accuracy.entities.scored",
             static_cast<double>(R.Blocks.Entities.size() +
                                 R.Functions.Entities.size() +
                                 R.CallSites.Entities.size()));
  counterAdd("accuracy.branches.recorded",
             static_cast<double>(R.Branches.size()));
  return R;
}

//===----------------------------------------------------------------------===//
// JSON (schema sest-accuracy-report/1)
//===----------------------------------------------------------------------===//

namespace {

void writeFamily(JsonWriter &W, const FamilyAccuracy &F,
                 size_t MaxEntities) {
  W.beginObject();
  W.member("cutoff", F.Cutoff);
  W.member("score", F.Score);
  W.member("loss", F.Loss);
  W.key("sweep");
  W.beginArray();
  for (const auto &[C, S] : F.ScoreSweep) {
    W.beginObject();
    W.member("cutoff", C);
    W.member("score", S);
    W.endObject();
  }
  W.endArray();
  W.member("entities_total", static_cast<uint64_t>(F.Entities.size()));
  W.key("entities");
  W.beginArray();
  for (size_t I : F.worstIndices(MaxEntities)) {
    const EntityDivergence &D = F.Entities[I];
    W.beginObject();
    W.member("function", D.Function);
    W.member("id", static_cast<uint64_t>(D.EntityId));
    W.member("line", static_cast<uint64_t>(D.Line));
    W.member("label", D.Label);
    W.member("estimate", D.Estimate);
    W.member("actual", D.Actual);
    W.member("est_rank", static_cast<int64_t>(D.EstRank));
    W.member("act_rank", static_cast<int64_t>(D.ActRank));
    W.member("rank_delta", static_cast<int64_t>(D.rankDelta()));
    W.member("loss_share", D.LossShare);
    W.endObject();
  }
  W.endArray();
  W.endObject();
}

void writeBranch(JsonWriter &W, const BranchDivergence &D) {
  W.beginObject();
  W.member("function", D.Function);
  W.member("block", static_cast<uint64_t>(D.BlockId));
  W.member("line", static_cast<uint64_t>(D.Line));
  W.member("heuristic", D.Heuristic);
  W.member("predict_true", D.PredictTrue);
  W.member("prob_true", D.ProbTrue);
  W.member("constant", D.ConstantCondition);
  W.member("taken", D.TakenCount);
  W.member("not_taken", D.NotTakenCount);
  W.member("taken_ratio", D.actualTakenRatio());
  W.member("misses", D.missCount());
  W.key("fired");
  W.beginArray();
  for (const HeuristicOpinion &O : D.Fired) {
    W.beginObject();
    W.member("name", O.Name);
    W.member("predict_true", O.PredictTrue);
    W.member("confidence", O.Confidence);
    W.endObject();
  }
  W.endArray();
  W.endObject();
}

} // namespace

void sest::obs::writeAccuracyReport(JsonWriter &W, const AccuracyReport &R,
                                    size_t MaxEntities) {
  W.beginObject();
  W.member("program", R.Program);
  W.member("program_hash", R.ProgramHash);
  W.member("profile", R.ProfileName);
  W.member("intra", R.IntraName);
  W.member("inter", R.InterName);
  W.key("families");
  W.beginObject();
  W.key("block");
  writeFamily(W, R.Blocks, MaxEntities);
  W.key("function");
  writeFamily(W, R.Functions, MaxEntities);
  W.key("call_site");
  writeFamily(W, R.CallSites, MaxEntities);
  W.endObject();
  W.key("intra_weighted");
  W.beginObject();
  W.member("score", R.IntraScore);
  W.key("per_function");
  W.beginArray();
  for (const FunctionIntraScore &S : R.IntraPerFunction) {
    W.beginObject();
    W.member("function_id", static_cast<uint64_t>(S.FunctionId));
    W.member("score", S.Score);
    W.member("weight", S.Weight);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  W.key("branches");
  W.beginObject();
  W.member("executed", R.Miss.Executed);
  W.member("misses", R.Miss.Misses);
  W.member("miss_rate", R.Miss.rate());
  W.member("records_total", static_cast<uint64_t>(R.Branches.size()));
  W.key("records");
  W.beginArray();
  if (MaxEntities == 0 || R.Branches.size() <= MaxEntities) {
    for (const BranchDivergence &D : R.Branches)
      writeBranch(W, D);
  } else {
    // Cap like the entity families: worst first, deterministic ties.
    std::vector<size_t> Order(R.Branches.size());
    for (size_t I = 0; I < Order.size(); ++I)
      Order[I] = I;
    std::stable_sort(Order.begin(), Order.end(),
                     [&R](size_t A, size_t B) {
                       return R.Branches[A].missCount() >
                              R.Branches[B].missCount();
                     });
    Order.resize(MaxEntities);
    for (size_t I : Order)
      writeBranch(W, R.Branches[I]);
  }
  W.endArray();
  W.endObject();
  W.endObject();
}

std::string
sest::obs::accuracyReportJson(const std::vector<AccuracyReport> &Reports,
                              size_t MaxEntities) {
  JsonWriter W;
  W.beginObject();
  W.member("schema", "sest-accuracy-report/1");
  W.key("programs");
  W.beginArray();
  for (const AccuracyReport &R : Reports)
    writeAccuracyReport(W, R, MaxEntities);
  W.endArray();
  W.endObject();
  assert(W.complete() && "unbalanced accuracy report document");
  return W.take();
}

//===----------------------------------------------------------------------===//
// Text renderings
//===----------------------------------------------------------------------===//

namespace {

std::string familyTitle(EntityFamily F) {
  switch (F) {
  case EntityFamily::Block:
    return "blocks";
  case EntityFamily::Function:
    return "functions";
  case EntityFamily::CallSite:
    return "call sites";
  }
  return "?";
}

std::string direction(bool PredictTrue) {
  return PredictTrue ? "true" : "false";
}

/// "loop:true@0.80,and:false@0.75" — the full evidence list.
std::string firedSummary(const std::vector<HeuristicOpinion> &Fired) {
  std::vector<std::string> Parts;
  Parts.reserve(Fired.size());
  for (const HeuristicOpinion &O : Fired)
    Parts.push_back(std::string(O.Name) + ":" + direction(O.PredictTrue) +
                    "@" + formatDouble(O.Confidence, 2));
  return joinStrings(Parts, ",");
}

} // namespace

std::string sest::obs::renderAccuracySummary(const AccuracyReport &R) {
  std::string Out = "Accuracy of " + R.IntraName + "+" + R.InterName +
                    " estimate against profile '" + R.ProfileName + "':\n";
  TextTable T;
  std::vector<std::string> Header = {
      "Family", "Score@" + formatPercent(R.Blocks.Cutoff, 0), "Loss"};
  for (const auto &[C, S] : R.Blocks.ScoreSweep) {
    (void)S;
    Header.push_back("@" + formatPercent(C, 0));
  }
  T.setHeader(Header);
  for (const FamilyAccuracy *F : {&R.Blocks, &R.Functions, &R.CallSites}) {
    std::vector<std::string> Row = {familyTitle(F->Family),
                                    formatPercent(F->Score),
                                    formatPercent(F->Loss)};
    for (const auto &[C, S] : F->ScoreSweep) {
      (void)C;
      Row.push_back(formatPercent(S));
    }
    T.addRow(Row);
  }
  Out += T.str();
  Out += "Intra-procedural (invocation-weighted): " +
         formatPercent(R.IntraScore) + "\n";
  Out += "Branch miss rate (static predictor): " +
         formatPercent(R.Miss.rate()) + "  (" +
         formatDouble(R.Miss.Misses, 0) + " misses / " +
         formatDouble(R.Miss.Executed, 0) + " executed)\n";
  return Out;
}

std::string sest::obs::renderWorstTables(const AccuracyReport &R,
                                         size_t N) {
  std::string Out;
  for (const FamilyAccuracy *F : {&R.Blocks, &R.Functions, &R.CallSites}) {
    Out += "WORST " + std::to_string(N) + " " + familyTitle(F->Family) +
           " by loss share (score " + formatPercent(F->Score) + "):\n";
    if (F->Loss <= 0) {
      Out += "  (no weight-matching loss at this cutoff)\n\n";
      continue;
    }
    TextTable T;
    T.setHeader({"Function", "Entity", "Line", "Estimate", "Actual",
                 "Rank est->act", "Loss share"});
    for (size_t I : F->worstIndices(N)) {
      const EntityDivergence &D = F->Entities[I];
      if (D.LossShare <= 0)
        break; // only genuine contributors
      T.addRow({D.Function, D.Label,
                D.Line ? std::to_string(D.Line) : "-",
                formatDouble(D.Estimate, 2), formatDouble(D.Actual, 0),
                std::to_string(D.EstRank) + "->" +
                    std::to_string(D.ActRank),
                formatPercent(D.LossShare)});
    }
    Out += T.str() + "\n";
  }

  Out += "WORST " + std::to_string(N) + " branches by dynamic misses:\n";
  std::vector<size_t> Order(R.Branches.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(), [&R](size_t A, size_t B) {
    return R.Branches[A].missCount() > R.Branches[B].missCount();
  });
  TextTable T;
  T.setHeader({"Function", "Line", "Heuristic", "Predicted", "P(true)",
               "Taken ratio", "Executed", "Misses"});
  size_t Shown = 0;
  for (size_t I : Order) {
    const BranchDivergence &D = R.Branches[I];
    if (D.missCount() <= 0 || Shown >= N)
      break;
    T.addRow({D.Function, D.Line ? std::to_string(D.Line) : "-",
              D.Heuristic, direction(D.PredictTrue),
              formatDouble(D.ProbTrue, 2),
              formatDouble(D.actualTakenRatio(), 2),
              formatDouble(D.executed(), 0),
              formatDouble(D.missCount(), 0)});
    ++Shown;
  }
  if (Shown == 0)
    Out += "  (no dynamic mispredictions)\n";
  else
    Out += T.str();
  return Out;
}

std::string sest::obs::renderAnnotatedListing(const std::string &Source,
                                              const AccuracyReport &R) {
  std::vector<std::string> Lines = splitString(Source, '\n');
  if (!Lines.empty() && Lines.back().empty())
    Lines.pop_back();

  // Per-line estimated and actual block weight (summed over the blocks
  // anchored at the line), and the branches the line hosts.
  std::map<uint32_t, std::pair<double, double>> LineWeights;
  for (const EntityDivergence &D : R.Blocks.Entities) {
    if (!D.Line)
      continue;
    auto &[E, A] = LineWeights[D.Line];
    E += D.Estimate;
    A += D.Actual;
  }
  std::map<uint32_t, std::vector<const BranchDivergence *>> LineBranches;
  for (const BranchDivergence &D : R.Branches)
    if (D.Line)
      LineBranches[D.Line].push_back(&D);

  const size_t Col = 12;
  std::string Out;
  Out += padLeft("est", Col) + padLeft("actual", Col) + padLeft("line", 6) +
         "  source\n";
  for (size_t I = 0; I < Lines.size(); ++I) {
    uint32_t LineNo = static_cast<uint32_t>(I + 1);
    auto It = LineWeights.find(LineNo);
    if (It != LineWeights.end())
      Out += padLeft(formatDouble(It->second.first, 2), Col) +
             padLeft(formatDouble(It->second.second, 0), Col);
    else
      Out += padLeft(".", Col) + padLeft(".", Col);
    Out += padLeft(std::to_string(LineNo), 6) + "  " + Lines[I] + "\n";

    auto BIt = LineBranches.find(LineNo);
    if (BIt == LineBranches.end())
      continue;
    for (const BranchDivergence *D : BIt->second) {
      Out += std::string(2 * Col + 8, ' ') + "^ branch in " + D->Function +
             ": heuristic=" + D->Heuristic +
             " predicted=" + direction(D->PredictTrue) +
             " p(true)=" + formatDouble(D->ProbTrue, 2) +
             " taken-ratio=" + formatDouble(D->actualTakenRatio(), 2) +
             " (" + formatDouble(D->TakenCount, 0) + "/" +
             formatDouble(D->executed(), 0) + ")";
      if (D->ConstantCondition)
        Out += " [constant]";
      else if (D->executed() <= 0)
        Out += " [never executed]";
      else
        Out += D->mispredicted() ? " [MISPREDICT]" : " [ok]";
      if (D->Fired.size() > 1)
        Out += " fired=" + firedSummary(D->Fired);
      Out += "\n";
    }
  }
  return Out;
}

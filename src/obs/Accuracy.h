//===- obs/Accuracy.h - Per-entity accuracy attribution ---------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Accuracy observability: where the time/volume telemetry (Telemetry.h)
/// answers "what did the pipeline do and how long did it take", this
/// subsystem answers "where does the estimator lose its score". For one
/// (program, profile, estimator-config) run it records per-entity
/// divergence — for every basic block, function and call site the static
/// weight, the measured weight, the rank delta between the two orderings
/// and the entity's additive contribution to the weight-matching score
/// loss (metrics/WeightMatching.h) — and for every conditional branch the
/// heuristic that fired (with its confidence, via the attribution hook in
/// estimators/BranchPrediction.h), the predicted direction and the actual
/// taken ratio, so mispredictions are explainable rather than merely
/// countable.
///
/// Three renderings are provided: an annotated source listing in the
/// style of gprof / `perf annotate` with estimated-vs-actual frequency
/// columns and inline branch annotations, "WORST n" divergence tables,
/// and a machine-readable JSON document (schema `sest-accuracy-report/1`)
/// whose suite-wide instance is the checked-in CI baseline
/// (`bench/accuracy_report.json`, guarded by `scripts/check_accuracy.py`).
///
//===----------------------------------------------------------------------===//

#ifndef OBS_ACCURACY_H
#define OBS_ACCURACY_H

#include "estimators/BranchPrediction.h"
#include "estimators/Pipeline.h"
#include "metrics/BranchMiss.h"
#include "metrics/Evaluation.h"
#include "profile/Profile.h"

#include <string>
#include <vector>

namespace sest {
class JsonWriter;
}

namespace sest::obs {

/// The entity families the weight-matching metric ranks.
enum class EntityFamily { Block, Function, CallSite };

/// Stable identifier used in reports ("block", "function", "call_site").
const char *entityFamilyName(EntityFamily F);

/// Divergence record of one scored entity.
struct EntityDivergence {
  /// Owning function (the caller, for call sites).
  uint32_t FunctionId = 0;
  std::string Function;
  /// Family-local id: block id, function id, or call-site id.
  uint32_t EntityId = 0;
  /// Source line of the entity's anchor (0 = synthetic / unknown).
  uint32_t Line = 0;
  /// Block label, function name, or callee name.
  std::string Label;
  double Estimate = 0.0; ///< Static weight.
  double Actual = 0.0;   ///< Measured profile weight.
  /// Dense 0-based descending ranks within the family; -1 = omitted
  /// (indirect call sites).
  int EstRank = -1;
  int ActRank = -1;
  /// This entity's additive share of the family's weight-matching score
  /// loss at the attribution cutoff (positive = hot entity the estimate
  /// missed; negative = cold entity the estimate wrongly promoted).
  double LossShare = 0.0;

  /// How far the estimate misplaces the entity (positive = estimated
  /// colder than it really is).
  int rankDelta() const {
    return EstRank < 0 || ActRank < 0 ? 0 : EstRank - ActRank;
  }
};

/// Weight matching of one entity family, with its loss decomposed over
/// the family's entities.
struct FamilyAccuracy {
  EntityFamily Family = EntityFamily::Block;
  /// The attribution cutoff (quantile) the decomposition uses.
  double Cutoff = 0.25;
  double Score = 1.0; ///< Weight-matching score at Cutoff.
  double Loss = 0.0;  ///< 1 - Score; equals the sum of entity LossShares.
  /// (cutoff, score) at each sweep cutoff, for trend baselines.
  std::vector<std::pair<double, double>> ScoreSweep;
  /// Every scored entity, in family order (blocks grouped by function).
  std::vector<EntityDivergence> Entities;

  /// Indices of Entities ordered by descending LossShare (worst first,
  /// ties by index); at most \p N entries (0 = all).
  std::vector<size_t> worstIndices(size_t N) const;
};

/// Divergence record of one two-way conditional branch: the full
/// heuristic attribution next to the measured outcome.
struct BranchDivergence {
  uint32_t FunctionId = 0;
  std::string Function;
  uint32_t BlockId = 0;
  uint32_t Line = 0; ///< Line of the branch condition (0 = unknown).
  /// The deciding heuristic and the combined prediction.
  std::string Heuristic;
  bool PredictTrue = true;
  double ProbTrue = 0.5;
  bool ConstantCondition = false;
  /// Every heuristic that fired, priority order (see HeuristicOpinion).
  std::vector<HeuristicOpinion> Fired;
  /// Measured outcome counts.
  double TakenCount = 0.0;
  double NotTakenCount = 0.0;

  double executed() const { return TakenCount + NotTakenCount; }
  /// Fraction of executions where the condition was true.
  double actualTakenRatio() const {
    double E = executed();
    return E > 0 ? TakenCount / E : 0.0;
  }
  /// Dynamic executions this branch mispredicts under the static oracle.
  double missCount() const {
    return PredictTrue ? NotTakenCount : TakenCount;
  }
  /// True when the predicted majority direction was wrong.
  bool mispredicted() const {
    return executed() > 0 && missCount() > executed() - missCount();
  }
};

/// The full accuracy-attribution record of one run.
struct AccuracyReport {
  std::string Program;     ///< File or suite-program name.
  /// support::contentHash64 of the program source, as 16 hex digits —
  /// the same identity the analysis service keys its cache by, so a
  /// report can be joined against service responses and across runs
  /// even when program names collide. Filled by the producer (the
  /// scorer never sees the source text).
  std::string ProgramHash;
  std::string ProfileName; ///< Input name, or "aggregate(N)".
  std::string IntraName;   ///< Intra estimator ("smart", "markov", ...).
  std::string InterName;   ///< Inter estimator ("markov", "direct", ...).

  /// Block family over whole-program (globally scaled) block weights,
  /// function family over invocation counts, call-site family over
  /// direct call-site counts.
  FamilyAccuracy Blocks, Functions, CallSites;

  /// The paper's intra-procedural protocol at the attribution cutoff:
  /// per-function weight matching averaged weighted by invocation count,
  /// with the per-function terms kept for attribution.
  double IntraScore = 1.0;
  std::vector<FunctionIntraScore> IntraPerFunction;

  /// Static-predictor branch miss statistics (constant conditions
  /// excluded, as in Fig. 2) and the per-branch records behind them.
  BranchMissCounts Miss;
  std::vector<BranchDivergence> Branches;
};

/// Knobs for the attribution computation.
struct AccuracyOptions {
  /// The quantile at which loss is decomposed per entity.
  double Cutoff = 0.25;
  /// Cutoffs for the score sweep recorded next to the attribution.
  std::vector<double> SweepCutoffs = {0.10, 0.25, 0.50};
};

/// Computes the full attribution of \p Estimate scored against
/// \p Actual. \p EstOpts must be the options that produced the estimate
/// (its branch config drives the heuristic attribution).
AccuracyReport computeAccuracy(const TranslationUnit &Unit,
                               const CfgModule &Cfgs, const CallGraph &CG,
                               const ProgramEstimate &Estimate,
                               const Profile &Actual,
                               const EstimatorOptions &EstOpts,
                               const AccuracyOptions &Opts = {});

/// Writes \p R as one JSON object value (schema sest-accuracy-report/1
/// program record). Entities are emitted worst-first; \p MaxEntities
/// caps each family (0 = all).
void writeAccuracyReport(JsonWriter &W, const AccuracyReport &R,
                         size_t MaxEntities = 0);

/// A complete sest-accuracy-report/1 document over \p Reports.
std::string accuracyReportJson(const std::vector<AccuracyReport> &Reports,
                               size_t MaxEntities = 0);

/// Family scores, the intra protocol score, and branch miss rate as an
/// aligned text table.
std::string renderAccuracySummary(const AccuracyReport &R);

/// "WORST n" divergence tables: the top \p N loss-share entities of each
/// family and the top \p N branches by dynamic miss count.
std::string renderWorstTables(const AccuracyReport &R, size_t N = 5);

/// The annotated source listing (gprof / `perf annotate` style):
/// \p Source with estimated-vs-actual frequency columns per line, and an
/// annotation line under every conditional branch showing the heuristic
/// that fired, its confidence, the predicted direction and the actual
/// taken ratio.
std::string renderAnnotatedListing(const std::string &Source,
                                   const AccuracyReport &R);

} // namespace sest::obs

#endif // OBS_ACCURACY_H

//===- obs/EventLog.cpp - Decision-provenance event log --------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "obs/EventLog.h"

#include "support/Json.h"

#include <cassert>

using namespace sest;
using namespace sest::obs;

thread_local EventLog *sest::obs::detail::ActiveLog = nullptr;

EventLog::~EventLog() {
  if (Installed)
    uninstall();
}

void EventLog::install() {
  assert(!Installed && "event log installed twice");
  Previous = detail::ActiveLog;
  detail::ActiveLog = this;
  Installed = true;
}

void EventLog::uninstall() {
  assert(Installed && "uninstall() without install()");
  if (detail::ActiveLog == this)
    detail::ActiveLog = Previous;
  Installed = false;
}

std::string EventLog::jsonl() const {
  std::string Out;
  {
    JsonWriter W;
    W.beginObject()
        .member("schema", "sest-events/1")
        .member("events", static_cast<uint64_t>(Events_.size()))
        .endObject();
    Out += W.take();
  }
  Out += '\n';
  for (const Event &E : Events_) {
    JsonWriter W;
    W.beginObject().member("kind", E.Kind).member("prov", E.Prov);
    if (!E.Attrs.empty()) {
      W.key("attrs").beginObject();
      for (const EventAttr &A : E.Attrs) {
        if (A.IsNum)
          W.member(A.Key, A.Num);
        else
          W.member(A.Key, A.Str);
      }
      W.endObject();
    }
    W.endObject();
    Out += W.take();
    Out += '\n';
  }
  return Out;
}

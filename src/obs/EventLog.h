//===- obs/EventLog.h - Decision-provenance event log -----------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The structured decision log of the flight recorder: a flat stream of
/// `{kind, prov, attrs}` events recording *which optimizer decision was
/// made about which entity and why* — inline sites chosen or rejected
/// (with the budget reason), layout chain merges, cold-outline
/// boundaries, never-taken hints, and sparse-solver SCC repairs.
///
/// Two contracts distinguish this log from the trace:
///
///  1. *Determinism.* Events carry no wall-clock data (timestamps live
///     only in the trace), and merges happen in task order, so the
///     rendered JSONL (`sest-events/1`) is byte-identical across
///     `--jobs` values and interpreter engines.
///
///  2. *Provenance.* Every event names its subject with a stable ID
///     (`fn:<name>`, `blk:<function>#<block>`, `cs:<site>`) that
///     resolves to the same entities `obs/Accuracy` scores, so a
///     decision can be joined against the accuracy report that judged
///     the estimate it was based on.
///
/// Like Telemetry, the log is an ambient per-thread context installed
/// RAII-style; recording sites pay one thread-local load when no log is
/// installed.
///
//===----------------------------------------------------------------------===//

#ifndef OBS_EVENTLOG_H
#define OBS_EVENTLOG_H

#include "obs/Telemetry.h"

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace sest::obs {

class EventLog;

namespace detail {
/// The log installed on this thread; null when decision logging is off.
extern thread_local EventLog *ActiveLog;
} // namespace detail

/// One key/value attribute of an event (string- or number-valued).
struct EventAttr {
  std::string Key;
  std::string Str;
  double Num = 0.0;
  bool IsNum = false;
};

inline EventAttr attr(std::string_view Key, std::string_view Value) {
  EventAttr A;
  A.Key = std::string(Key);
  A.Str = std::string(Value);
  return A;
}

inline EventAttr attr(std::string_view Key, double Value) {
  EventAttr A;
  A.Key = std::string(Key);
  A.Num = Value;
  A.IsNum = true;
  return A;
}

/// One recorded decision event.
struct Event {
  std::string Kind; ///< Taxonomy name, e.g. "inline.site.selected".
  std::string Prov; ///< Provenance ID ("fn:...", "blk:...", "cs:...").
  std::vector<EventAttr> Attrs;
};

/// A decision-log collection context. Install one, run the pipeline,
/// then render jsonl(). Nested installs stack like Telemetry contexts,
/// and per-task logs merge (append, in task order) into the ambient one.
class EventLog {
public:
  EventLog() = default;
  ~EventLog();
  EventLog(const EventLog &) = delete;
  EventLog &operator=(const EventLog &) = delete;

  void install();
  void uninstall();
  bool installed() const { return Installed; }

  /// The log currently collecting on this thread (null = off).
  static EventLog *active() { return detail::ActiveLog; }

  void emit(Event E) { Events_.push_back(std::move(E)); }

  /// Appends everything \p Other recorded. Call in deterministic task
  /// order so the stream stays byte-stable across --jobs values.
  void mergeFrom(const EventLog &Other) {
    Events_.insert(Events_.end(), Other.Events_.begin(),
                   Other.Events_.end());
  }

  const std::vector<Event> &events() const { return Events_; }

  /// The `sest-events/1` document: a schema header line followed by one
  /// JSON object per event. Contains no wall-clock data by design.
  std::string jsonl() const;

private:
  std::vector<Event> Events_;
  EventLog *Previous = nullptr;
  bool Installed = false;
};

/// True when a log is collecting on this thread — use to guard sites
/// whose attribute setup is costly.
inline bool eventLogActive() {
#ifndef SEST_OBS_DISABLED
  return detail::ActiveLog != nullptr;
#else
  return false;
#endif
}

/// Records one event into the ambient log, if any.
inline void logEvent(std::string_view Kind, std::string Prov,
                     std::vector<EventAttr> Attrs = {}) {
#ifndef SEST_OBS_DISABLED
  if (EventLog *L = detail::ActiveLog) {
    Event E;
    E.Kind = std::string(Kind);
    E.Prov = std::move(Prov);
    E.Attrs = std::move(Attrs);
    L->emit(std::move(E));
  }
#else
  (void)Kind;
  (void)Prov;
  (void)Attrs;
#endif
}

//===----------------------------------------------------------------------===//
// Provenance IDs — must stay in sync with the entity naming used by
// obs/Accuracy (EntityDivergence Function/EntityId/Label fields).
//===----------------------------------------------------------------------===//

inline std::string provFunction(std::string_view Function) {
  return "fn:" + std::string(Function);
}

inline std::string provBlock(std::string_view Function, uint32_t Block) {
  return "blk:" + std::string(Function) + "#" + std::to_string(Block);
}

inline std::string provCallSite(uint32_t SiteId) {
  return "cs:" + std::to_string(SiteId);
}

inline std::string provProgram(std::string_view Program) {
  return "prog:" + std::string(Program);
}

/// A service request, by intake ordinal. Ordinals are assigned in
/// request order on the intake thread, so the ID is stable across
/// --jobs values and batch splits within one session.
inline std::string provRequest(uint64_t Ordinal) {
  return "req:" + std::to_string(Ordinal);
}

//===----------------------------------------------------------------------===//
// TaskCapture — shared worker-context plumbing for the parallel pools.
//===----------------------------------------------------------------------===//

/// Captures the ambient Telemetry and EventLog once on the spawning
/// thread, runs each task under private per-task contexts (telemetry
/// tagged with a per-worker track), and merges results back in task
/// order. One helper so the suite runner, estimation pipeline, and
/// optimizer report pools all observe identically.
class TaskCapture {
public:
  TaskCapture()
      : AmbientT(Telemetry::active()), AmbientE(EventLog::active()) {}

  /// Whether any ambient context wants task-level capture at all.
  bool wanted() const { return AmbientT || AmbientE; }

  /// The private contexts of one task, merged later via merge().
  struct Slot {
    std::unique_ptr<Telemetry> T;
    std::unique_ptr<EventLog> E;
  };

  /// Runs \p F under fresh contexts stored into \p S. \p Track tags the
  /// telemetry with a worker timeline (0 keeps the main track, so the
  /// serial path stays on a single stable track).
  template <typename Fn>
  void run(Slot &S, uint32_t Track, std::string_view TrackName,
           Fn &&F) const {
    if (!wanted()) {
      F();
      return;
    }
    if (AmbientT) {
      S.T = std::make_unique<Telemetry>();
      if (Track)
        S.T->setTrack(Track, TrackName);
      S.T->install();
    }
    if (AmbientE) {
      S.E = std::make_unique<EventLog>();
      S.E->install();
    }
    F();
    if (S.E)
      S.E->uninstall();
    if (S.T)
      S.T->uninstall();
  }

  /// Folds one task's contexts into the ambient ones. Call from the
  /// spawning thread, in task order.
  void merge(Slot &S) const {
    if (AmbientT && S.T)
      AmbientT->mergeFrom(*S.T);
    if (AmbientE && S.E)
      AmbientE->mergeFrom(*S.E);
  }

private:
  Telemetry *AmbientT;
  EventLog *AmbientE;
};

} // namespace sest::obs

#endif // OBS_EVENTLOG_H

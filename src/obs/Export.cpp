//===- obs/Export.cpp - Prometheus text exposition of telemetry ------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "obs/Export.h"

#include "support/Json.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>

using namespace sest;
using namespace sest::obs;

//===----------------------------------------------------------------------===//
// Names, labels, numbers
//===----------------------------------------------------------------------===//

static bool promNameChar(char C) {
  return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
         (C >= '0' && C <= '9') || C == '_';
}

std::string sest::obs::promMetricName(std::string_view Name,
                                      std::string_view Prefix) {
  std::string Out(Prefix);
  for (char C : Name)
    Out += promNameChar(C) ? C : '_';
  if (Out.empty() || (Out[0] >= '0' && Out[0] <= '9'))
    Out.insert(Out.begin(), '_');
  return Out;
}

std::string sest::obs::promEscapeLabel(std::string_view Value) {
  std::string Out;
  Out.reserve(Value.size());
  for (char C : Value) {
    if (C == '\\')
      Out += "\\\\";
    else if (C == '"')
      Out += "\\\"";
    else if (C == '\n')
      Out += "\\n";
    else
      Out += C;
  }
  return Out;
}

std::string sest::obs::promNumber(double Value) {
  // jsonNumber already guarantees shortest-round-trip, locale-free
  // output; the exposition format shares JSON's number syntax for
  // every finite value.
  return jsonNumber(Value);
}

bool sest::obs::deterministicSeriesName(std::string_view Name) {
  return Name == "service.requests" ||
         startsWith(Name, "service.requests.");
}

//===----------------------------------------------------------------------===//
// Histogram bucket bounds
//===----------------------------------------------------------------------===//

// Mirrors the bucketing in Telemetry.cpp: 8 sub-buckets per
// power-of-two octave, bucket index = Exp * 8 + Sub.
static constexpr int SubBucketsPerOctave = 8;

double sest::obs::histBucketLowerBound(int32_t Index) {
  if (Index == INT32_MIN)
    return 0.0;
  int32_t Exp = Index >= 0 ? Index / SubBucketsPerOctave
                           : -((-Index + SubBucketsPerOctave - 1) /
                               SubBucketsPerOctave);
  int32_t Sub = Index - Exp * SubBucketsPerOctave;
  return std::ldexp(
      0.5 + static_cast<double>(Sub) / (2 * SubBucketsPerOctave), Exp);
}

double sest::obs::histBucketUpperBound(int32_t Index) {
  if (Index == INT32_MIN)
    return 0.0;
  int32_t Exp = Index >= 0 ? Index / SubBucketsPerOctave
                           : -((-Index + SubBucketsPerOctave - 1) /
                               SubBucketsPerOctave);
  int32_t Sub = Index - Exp * SubBucketsPerOctave;
  return std::ldexp(
      0.5 + static_cast<double>(Sub + 1) / (2 * SubBucketsPerOctave), Exp);
}

//===----------------------------------------------------------------------===//
// Renderer
//===----------------------------------------------------------------------===//

namespace {

void renderScalarSection(
    std::string &Out, const ExportOptions &O,
    const std::map<std::string, double, std::less<>> &Series,
    const char *Type) {
  for (const auto &[Name, Value] : Series) {
    std::string M = promMetricName(Name, O.Prefix);
    Out += "# TYPE " + M + " " + Type + "\n";
    Out += M + " " + promNumber(Value) + "\n";
  }
}

} // namespace

void sest::obs::renderHistogramFamily(std::string &Out,
                                      const ExportOptions &O,
                                      std::string_view Name,
                                      const HistogramStats &H) {
  std::string M = promMetricName(Name, O.Prefix);
  Out += "# TYPE " + M + " histogram\n";
  uint64_t Cum = 0;
  for (const auto &[Index, N] : H.Buckets) {
    Cum += N;
    std::string Le = Index == INT32_MIN
                         ? std::string("0")
                         : promNumber(histBucketUpperBound(Index));
    Out += M + "_bucket{le=\"" + Le + "\"} " + std::to_string(Cum) + "\n";
  }
  Out += M + "_bucket{le=\"+Inf\"} " + std::to_string(H.Count) + "\n";
  Out += M + "_sum " + promNumber(H.Sum) + "\n";
  Out += M + "_count " + std::to_string(H.Count) + "\n";
  for (auto [Suffix, Q] :
       {std::pair<const char *, double>{"_p50", 0.50},
        {"_p90", 0.90},
        {"_p99", 0.99}}) {
    Out += "# TYPE " + M + Suffix + " gauge\n";
    Out += M + Suffix + " " + promNumber(H.percentile(Q)) + "\n";
  }
}

std::string sest::obs::renderPrometheus(const Telemetry &T,
                                        const ExportOptions &O,
                                        const std::vector<ExtraSeries> &Extra) {
  std::map<std::string, double, std::less<>> Counters, Gauges;
  for (const auto &[Name, V] : T.counters())
    if (!O.DeterministicOnly || deterministicSeriesName(Name))
      Counters[Name] = V;
  if (!O.DeterministicOnly)
    for (const auto &[Name, V] : T.gauges())
      Gauges[Name] = V;
  for (const ExtraSeries &E : Extra) {
    if (O.DeterministicOnly && !deterministicSeriesName(E.Name))
      continue;
    (E.Counter ? Counters : Gauges)[E.Name] = E.Value;
  }

  std::string Out;
  renderScalarSection(Out, O, Counters, "counter");
  renderScalarSection(Out, O, Gauges, "gauge");
  if (!O.DeterministicOnly)
    for (const auto &[Name, H] : T.histograms())
      renderHistogramFamily(Out, O, Name, H);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

const std::string *PromSample::label(std::string_view Key) const {
  for (const auto &[K, V] : Labels)
    if (K == Key)
      return &V;
  return nullptr;
}

const PromSample *PromDocument::find(std::string_view Name) const {
  for (const PromSample &S : Samples)
    if (S.Name == Name)
      return &S;
  return nullptr;
}

double PromDocument::valueOr(std::string_view Name, double Default) const {
  const PromSample *S = find(Name);
  return S ? S->Value : Default;
}

namespace {

struct LineParser {
  std::string_view Line;
  size_t Pos = 0;

  bool done() const { return Pos >= Line.size(); }
  char peek() const { return done() ? '\0' : Line[Pos]; }
  void skipSpaces() {
    while (!done() && (Line[Pos] == ' ' || Line[Pos] == '\t'))
      ++Pos;
  }

  /// [a-zA-Z_:][a-zA-Z0-9_:]* (metric names; colons legal in the format).
  bool metricName(std::string &Out) {
    size_t Start = Pos;
    auto First = [](char C) {
      return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
             C == '_' || C == ':';
    };
    if (done() || !First(peek()))
      return false;
    ++Pos;
    while (!done() &&
           (First(peek()) || (peek() >= '0' && peek() <= '9')))
      ++Pos;
    Out = std::string(Line.substr(Start, Pos - Start));
    return true;
  }

  /// [a-zA-Z_][a-zA-Z0-9_]* (label names; no colons).
  bool labelName(std::string &Out) {
    size_t Start = Pos;
    auto First = [](char C) {
      return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') || C == '_';
    };
    if (done() || !First(peek()))
      return false;
    ++Pos;
    while (!done() && (First(peek()) || (peek() >= '0' && peek() <= '9')))
      ++Pos;
    Out = std::string(Line.substr(Start, Pos - Start));
    return true;
  }

  /// A double-quoted label value with \\, \", \n escapes.
  bool quotedValue(std::string &Out, std::string &Err) {
    if (peek() != '"') {
      Err = "expected '\"'";
      return false;
    }
    ++Pos;
    Out.clear();
    while (!done() && peek() != '"') {
      char C = Line[Pos++];
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (done()) {
        Err = "dangling escape in label value";
        return false;
      }
      char E = Line[Pos++];
      if (E == '\\')
        Out += '\\';
      else if (E == '"')
        Out += '"';
      else if (E == 'n')
        Out += '\n';
      else {
        Err = std::string("invalid escape '\\") + E + "' in label value";
        return false;
      }
    }
    if (peek() != '"') {
      Err = "unterminated label value";
      return false;
    }
    ++Pos;
    return true;
  }
};

bool parseSampleValue(std::string_view Token, double &Out) {
  if (Token == "+Inf" || Token == "Inf") {
    Out = HUGE_VAL;
    return true;
  }
  if (Token == "-Inf") {
    Out = -HUGE_VAL;
    return true;
  }
  if (Token == "NaN") {
    Out = std::nan("");
    return true;
  }
  std::string S(Token);
  char *End = nullptr;
  Out = std::strtod(S.c_str(), &End);
  return End && *End == '\0' && End != S.c_str();
}

} // namespace

std::optional<PromDocument>
sest::obs::parsePrometheus(std::string_view Text, std::string *Error) {
  PromDocument Doc;
  auto Fail = [&](size_t LineNo, const std::string &Msg) {
    if (Error)
      *Error = "line " + std::to_string(LineNo) + ": " + Msg;
    return std::nullopt;
  };

  size_t LineNo = 0;
  for (size_t Start = 0; Start <= Text.size();) {
    size_t Nl = Text.find('\n', Start);
    std::string_view Line = Nl == std::string_view::npos
                                ? Text.substr(Start)
                                : Text.substr(Start, Nl - Start);
    Start = Nl == std::string_view::npos ? Text.size() + 1 : Nl + 1;
    ++LineNo;
    if (Line.empty())
      continue;

    if (Line[0] == '#') {
      LineParser P{Line, 1};
      P.skipSpaces();
      std::string Keyword;
      if (!P.labelName(Keyword) || Keyword != "TYPE")
        continue; // HELP and free-form comments pass through unparsed.
      P.skipSpaces();
      std::string Family, Type;
      if (!P.metricName(Family))
        return Fail(LineNo, "malformed # TYPE line: missing metric name");
      P.skipSpaces();
      if (!P.labelName(Type) ||
          (Type != "counter" && Type != "gauge" && Type != "histogram" &&
           Type != "summary" && Type != "untyped"))
        return Fail(LineNo, "malformed # TYPE line: bad type");
      P.skipSpaces();
      if (!P.done())
        return Fail(LineNo, "trailing garbage after # TYPE");
      if (!Doc.Types.emplace(Family, Type).second)
        return Fail(LineNo, "duplicate # TYPE for '" + Family + "'");
      continue;
    }

    PromSample S;
    LineParser P{Line, 0};
    if (!P.metricName(S.Name))
      return Fail(LineNo, "malformed metric name");
    if (P.peek() == '{') {
      ++P.Pos;
      P.skipSpaces();
      while (P.peek() != '}') {
        std::string K, V, Err;
        if (!P.labelName(K))
          return Fail(LineNo, "malformed label name");
        if (P.peek() != '=')
          return Fail(LineNo, "expected '=' after label name");
        ++P.Pos;
        if (!P.quotedValue(V, Err))
          return Fail(LineNo, Err);
        S.Labels.emplace_back(std::move(K), std::move(V));
        P.skipSpaces();
        if (P.peek() == ',') {
          ++P.Pos;
          P.skipSpaces();
        } else if (P.peek() != '}') {
          return Fail(LineNo, "expected ',' or '}' in label set");
        }
      }
      ++P.Pos;
    }
    P.skipSpaces();
    size_t ValStart = P.Pos;
    while (!P.done() && P.peek() != ' ' && P.peek() != '\t')
      ++P.Pos;
    if (ValStart == P.Pos)
      return Fail(LineNo, "missing sample value");
    if (!parseSampleValue(Line.substr(ValStart, P.Pos - ValStart), S.Value))
      return Fail(LineNo, "malformed sample value");
    P.skipSpaces();
    if (!P.done())
      return Fail(LineNo, "trailing garbage after sample value");
    Doc.Samples.push_back(std::move(S));
  }
  return Doc;
}

//===----------------------------------------------------------------------===//
// Lint
//===----------------------------------------------------------------------===//

namespace {

/// The declared family of one sample: its own name, or for histogram
/// component series the base name before _bucket/_sum/_count.
const std::string *sampleFamily(const PromDocument &Doc,
                                const std::string &Name) {
  if (auto It = Doc.Types.find(Name); It != Doc.Types.end())
    return &It->first;
  for (std::string_view Suffix : {"_bucket", "_sum", "_count"}) {
    if (Name.size() <= Suffix.size() ||
        Name.compare(Name.size() - Suffix.size(), Suffix.size(),
                     Suffix) != 0)
      continue;
    std::string Base = Name.substr(0, Name.size() - Suffix.size());
    if (auto It = Doc.Types.find(Base);
        It != Doc.Types.end() && It->second == "histogram")
      return &It->first;
  }
  return nullptr;
}

std::string seriesKey(const PromSample &S) {
  std::vector<std::pair<std::string, std::string>> Labels = S.Labels;
  std::sort(Labels.begin(), Labels.end());
  std::string Key = S.Name + "{";
  for (const auto &[K, V] : Labels)
    Key += K + "=\"" + promEscapeLabel(V) + "\",";
  Key += "}";
  return Key;
}

void lintHistogram(const PromDocument &Doc, const std::string &Family,
                   std::vector<std::string> &Findings) {
  struct Bucket {
    double Le;
    double Cum;
  };
  std::vector<Bucket> Buckets;
  bool SawSum = false, SawCount = false;
  double CountVal = 0.0;
  for (const PromSample &S : Doc.Samples) {
    if (S.Name == Family + "_bucket") {
      const std::string *Le = S.label("le");
      if (!Le) {
        Findings.push_back("histogram '" + Family +
                           "': bucket without le label");
        continue;
      }
      double Bound;
      if (!parseSampleValue(*Le, Bound)) {
        Findings.push_back("histogram '" + Family +
                           "': unparsable le bound '" + *Le + "'");
        continue;
      }
      Buckets.push_back({Bound, S.Value});
    } else if (S.Name == Family + "_sum") {
      SawSum = true;
      if (!std::isfinite(S.Value))
        Findings.push_back("histogram '" + Family + "': non-finite _sum");
    } else if (S.Name == Family + "_count") {
      SawCount = true;
      CountVal = S.Value;
    } else if (S.Name == Family) {
      Findings.push_back("histogram '" + Family +
                         "': bare sample without _bucket/_sum/_count");
    }
  }
  if (Buckets.empty()) {
    Findings.push_back("histogram '" + Family + "': no buckets");
    return;
  }
  for (size_t I = 1; I < Buckets.size(); ++I) {
    if (!(Buckets[I].Le > Buckets[I - 1].Le))
      Findings.push_back("histogram '" + Family +
                         "': le bounds not strictly increasing");
    if (Buckets[I].Cum < Buckets[I - 1].Cum)
      Findings.push_back("histogram '" + Family +
                         "': cumulative bucket counts decrease");
  }
  if (!std::isinf(Buckets.back().Le) || Buckets.back().Le < 0)
    Findings.push_back("histogram '" + Family +
                       "': last bucket is not le=\"+Inf\"");
  if (!SawSum)
    Findings.push_back("histogram '" + Family + "': missing _sum");
  if (!SawCount)
    Findings.push_back("histogram '" + Family + "': missing _count");
  else if (std::isinf(Buckets.back().Le) &&
           Buckets.back().Cum != CountVal)
    Findings.push_back("histogram '" + Family +
                       "': +Inf bucket disagrees with _count");
}

} // namespace

std::vector<std::string> sest::obs::lintPrometheus(std::string_view Text) {
  std::vector<std::string> Findings;
  std::string Err;
  std::optional<PromDocument> Doc = parsePrometheus(Text, &Err);
  if (!Doc) {
    Findings.push_back(Err);
    return Findings;
  }

  std::set<std::string> Seen;
  for (const PromSample &S : Doc->Samples) {
    if (!Seen.insert(seriesKey(S)).second)
      Findings.push_back("duplicate series: " + seriesKey(S));
    const std::string *Family = sampleFamily(*Doc, S.Name);
    if (!Family) {
      Findings.push_back("series without # TYPE: " + S.Name);
      continue;
    }
    const std::string &Type = Doc->Types.find(*Family)->second;
    if (Type == "counter" && (!std::isfinite(S.Value) || S.Value < 0))
      Findings.push_back("counter with non-finite or negative value: " +
                         S.Name);
    if (Type == "gauge" && !std::isfinite(S.Value))
      Findings.push_back("gauge with non-finite value: " + S.Name);
  }
  for (const auto &[Family, Type] : Doc->Types)
    if (Type == "histogram")
      lintHistogram(*Doc, Family, Findings);
  return Findings;
}

//===- obs/Export.h - Prometheus text exposition of telemetry ---*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a Telemetry registry to the Prometheus text exposition
/// format so any registry in the system — the suite runner's, sestc's,
/// or the live one inside sestd — can be scraped, snapshotted, and
/// diffed with standard tooling. The mapping:
///
///   counter   "service.requests"   -> # TYPE sest_service_requests counter
///   gauge     "pool.depth"         -> # TYPE sest_pool_depth gauge
///   histogram "service.request_us" -> one histogram family with
///             cumulative `_bucket{le="..."}` series reconstructed from
///             the log-scale bucket map, plus `_sum` / `_count`, plus
///             `_p50` / `_p90` / `_p99` gauge families for dashboards
///             that want the estimate without doing bucket math.
///
/// Name mangling is stable and total: every registry name maps to one
/// valid Prometheus metric name (dots and other invalid characters
/// become underscores under a fixed prefix), so the exported series set
/// is a pure function of the registry contents.
///
/// The module also carries the *reader* side — a parser for the subset
/// of the format the renderer emits, and `lintPrometheus`, the in-tree
/// format lint (syntax, label escaping, duplicate series, monotone
/// cumulative buckets) that tests and CI run over every exposition the
/// system writes.
///
/// Determinism: the exposition embeds no wall-clock data of its own,
/// but most series values are live measurements. The deterministic
/// scope (`ExportOptions::DeterministicOnly`) restricts output to the
/// counter families that are pure functions of the request stream (see
/// `deterministicSeriesName`), which is what the byte-identity tests
/// and CI `cmp` steps compare across `--jobs` values and cache states.
///
//===----------------------------------------------------------------------===//

#ifndef OBS_EXPORT_H
#define OBS_EXPORT_H

#include "obs/Telemetry.h"

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sest::obs {

/// Rendering options for renderPrometheus.
struct ExportOptions {
  /// Prepended to every mangled metric name.
  std::string Prefix = "sest_";
  /// Restrict output to series for which deterministicSeriesName()
  /// holds — the subset that is byte-identical across --jobs values and
  /// cold/warm cache for a fixed request stream.
  bool DeterministicOnly = false;
};

/// Mangles a registry name ("service.request_us.estimate") into a valid
/// Prometheus metric name under \p Prefix: [a-zA-Z0-9_] pass through,
/// every other byte becomes '_', and a leading digit (only possible
/// with an empty prefix) is guarded with '_'.
std::string promMetricName(std::string_view Name,
                           std::string_view Prefix = "sest_");

/// Escapes a label value for the text exposition format: backslash,
/// double quote, and newline become \\, \", and \n.
std::string promEscapeLabel(std::string_view Value);

/// Formats a sample value (shortest round-trip; integral values print
/// without a decimal point).
std::string promNumber(double Value);

/// True for registry names whose values are pure functions of the
/// request stream — the request-flow counters `service.requests`,
/// `service.requests.bad`, and the per-op `service.requests.<op>`
/// family. Latency histograms are wall-clock and cache counters depend
/// on cache state, so neither can ever be in the deterministic scope.
bool deterministicSeriesName(std::string_view Name);

/// Bounds of one log-scale histogram bucket (HistogramStats bucket
/// index -> value range). Index INT32_MIN (the non-positive-sample
/// bucket) maps to [0, 0].
double histBucketLowerBound(int32_t Index);
double histBucketUpperBound(int32_t Index);

/// One additional series spliced into an exposition — used for values
/// that live outside the Telemetry registry, like the service cache
/// tiers' lock-free atomic totals.
struct ExtraSeries {
  std::string Name;     ///< Registry-style name ("service.cache.ast.hits").
  double Value = 0.0;
  bool Counter = false; ///< TYPE counter (else gauge).
};

/// Renders \p T (plus \p Extra) as one Prometheus text exposition.
/// Output order is deterministic: counters, then gauges (each sorted by
/// name, extras merged in), then histogram families sorted by name.
std::string renderPrometheus(const Telemetry &T, const ExportOptions &O = {},
                             const std::vector<ExtraSeries> &Extra = {});

/// Appends one histogram family (`# TYPE`, cumulative `_bucket` series,
/// `_sum`, `_count`, and the `_p50`/`_p90`/`_p99` gauge families) to
/// \p Out. Shared by the cumulative renderer and the window renderer.
void renderHistogramFamily(std::string &Out, const ExportOptions &O,
                           std::string_view Name, const HistogramStats &H);

//===----------------------------------------------------------------------===//
// Reader side — parser + format lint
//===----------------------------------------------------------------------===//

/// One parsed sample line.
struct PromSample {
  std::string Name;
  /// Label pairs in document order (unescaped values).
  std::vector<std::pair<std::string, std::string>> Labels;
  double Value = 0.0;

  /// The value of label \p Key, or null when absent.
  const std::string *label(std::string_view Key) const;
};

/// One parsed exposition document.
struct PromDocument {
  std::vector<PromSample> Samples;
  /// Family name -> declared type ("counter" | "gauge" | "histogram").
  std::map<std::string, std::string, std::less<>> Types;

  /// First sample named \p Name (exact match, any labels), or null.
  const PromSample *find(std::string_view Name) const;
  /// Value of the first sample named \p Name, or \p Default.
  double valueOr(std::string_view Name, double Default) const;
};

/// Parses the renderer's subset of the text exposition format. Returns
/// nullopt on any syntax error; \p Error (when non-null) receives a
/// "line N: ..." description.
std::optional<PromDocument> parsePrometheus(std::string_view Text,
                                            std::string *Error = nullptr);

/// The in-tree format lint. Returns one finding per violation (empty =
/// clean): syntax / label-escaping errors, samples without a # TYPE
/// family, duplicate TYPE declarations, duplicate series (same name and
/// label set), non-finite or negative counter values, and histogram
/// shape errors (missing le, non-monotone le bounds or cumulative
/// counts, missing or inconsistent `le="+Inf"` / `_count` / `_sum`).
std::vector<std::string> lintPrometheus(std::string_view Text);

} // namespace sest::obs

#endif // OBS_EXPORT_H

//===- obs/Telemetry.cpp - Phase tracing and counter registry --------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "obs/Telemetry.h"

#include "support/Json.h"
#include "support/StringUtils.h"
#include "support/TextTable.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace sest;
using namespace sest::obs;

thread_local Telemetry *sest::obs::detail::Active = nullptr;

//===----------------------------------------------------------------------===//
// HistogramStats percentile buckets
//===----------------------------------------------------------------------===//

// 8 sub-buckets per power-of-two octave: relative bucket width ~9%, so
// percentile estimates sit within ~4.5% of the true sample value while
// the map stays tiny (a few dozen entries for microsecond latencies).
static constexpr int SubBucketsPerOctave = 8;

int32_t HistogramStats::bucketIndex(double Sample) {
  if (!(Sample > 0.0) || !std::isfinite(Sample))
    return INT32_MIN;
  int Exp = 0;
  double M = std::frexp(Sample, &Exp); // Sample = M * 2^Exp, M in [0.5, 1)
  // (M - 0.5) * 16 maps [0.5, 1) exactly onto [0, 8) — the subtraction is
  // exact (Sterbenz) and the scale is a power of two, so bucketing is
  // bit-deterministic across platforms.
  int Sub = static_cast<int>((M - 0.5) * (2 * SubBucketsPerOctave));
  return static_cast<int32_t>(Exp) * SubBucketsPerOctave + Sub;
}

double HistogramStats::percentile(double Q) const {
  if (Count == 0)
    return 0.0;
  uint64_t Rank = static_cast<uint64_t>(
      std::ceil(Q * static_cast<double>(Count)));
  Rank = std::max<uint64_t>(1, std::min(Rank, Count));
  uint64_t Seen = 0;
  for (const auto &[Index, N] : Buckets) {
    Seen += N;
    if (Seen < Rank)
      continue;
    if (Index == INT32_MIN)
      return Min;
    // Reconstruct the bucket bounds and answer with the midpoint.
    int32_t Exp = Index >= 0 ? Index / SubBucketsPerOctave
                             : -((-Index + SubBucketsPerOctave - 1) /
                                 SubBucketsPerOctave);
    int32_t Sub = Index - Exp * SubBucketsPerOctave;
    double Lo = std::ldexp(0.5 + static_cast<double>(Sub) /
                                     (2 * SubBucketsPerOctave),
                           Exp);
    double Hi = std::ldexp(0.5 + static_cast<double>(Sub + 1) /
                                     (2 * SubBucketsPerOctave),
                           Exp);
    return std::min(std::max((Lo + Hi) / 2.0, Min), Max);
  }
  // Bucket totals always cover Count; reachable only on a foreign
  // (hand-built) stats object with no buckets.
  return Max;
}

Telemetry::Telemetry() : Epoch(std::chrono::steady_clock::now()) {
  Root.Name = "<root>";
}

Telemetry::~Telemetry() {
  if (Installed)
    uninstall();
}

void Telemetry::install() {
  assert(!Installed && "telemetry context installed twice");
  Previous = detail::Active;
  detail::Active = this;
  Installed = true;
}

void Telemetry::uninstall() {
  assert(Installed && "uninstall() without install()");
  // Only pop ourselves if we are still the top of the ambient stack.
  if (detail::Active == this)
    detail::Active = Previous;
  Installed = false;
}

void Telemetry::setTrack(uint32_t Id, std::string_view Name) {
  Track = Id;
  if (!Name.empty())
    TrackNames[Id] = std::string(Name);
}

uint64_t Telemetry::nowUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Epoch)
          .count());
}

//===----------------------------------------------------------------------===//
// Recording
//===----------------------------------------------------------------------===//

void Telemetry::add(std::string_view Name, double Delta) {
  auto It = Counters.find(Name);
  if (It == Counters.end())
    Counters.emplace(std::string(Name), Delta);
  else
    It->second += Delta;
}

void Telemetry::raiseMax(std::string_view Name, double Value) {
  auto It = Gauges.find(Name);
  if (It == Gauges.end())
    Gauges.emplace(std::string(Name), Value);
  else if (Value > It->second)
    It->second = Value;
}

void Telemetry::record(std::string_view Name, double Sample) {
  auto It = Histograms.find(Name);
  if (It == Histograms.end()) {
    HistogramStats H;
    H.Count = 1;
    H.Sum = H.Min = H.Max = Sample;
    H.Buckets[HistogramStats::bucketIndex(Sample)] = 1;
    Histograms.emplace(std::string(Name), std::move(H));
    return;
  }
  HistogramStats &H = It->second;
  ++H.Count;
  H.Sum += Sample;
  H.Min = std::min(H.Min, Sample);
  H.Max = std::max(H.Max, Sample);
  ++H.Buckets[HistogramStats::bucketIndex(Sample)];
}

void Telemetry::beginPhase(std::string_view Name, std::string_view Detail) {
  PhaseNode *Parent = Open.empty() ? &Root : Open.back().Node;
  PhaseNode *Node = nullptr;
  for (const auto &C : Parent->Children)
    if (C->Name == Name) {
      Node = C.get();
      break;
    }
  if (!Node) {
    Parent->Children.push_back(std::make_unique<PhaseNode>());
    Node = Parent->Children.back().get();
    Node->Name = std::string(Name);
  }
  Open.push_back({Node, std::string(Detail), nowUs()});
}

void Telemetry::endPhase() {
  assert(!Open.empty() && "endPhase() without beginPhase()");
  if (Open.empty())
    return;
  OpenPhase P = std::move(Open.back());
  Open.pop_back();
  uint64_t Dur = nowUs() - P.StartUs;
  P.Node->Count += 1;
  P.Node->TotalUs += Dur;
  if (!Open.empty())
    Open.back().Node->ChildUs += Dur;
  else
    Root.ChildUs += Dur;

  TraceEvent E;
  E.Name = P.Node->Name;
  E.Detail = std::move(P.Detail);
  E.StartUs = P.StartUs;
  E.DurUs = Dur;
  E.Depth = static_cast<unsigned>(Open.size());
  E.Track = Track;
  Events.push_back(std::move(E));
}

namespace {

/// Merges \p From into \p Into: same-name children unify (first-seen
/// order preserved), everything else is appended.
void mergePhaseChildren(const PhaseNode &From, PhaseNode &Into) {
  for (const auto &FC : From.Children) {
    PhaseNode *Node = nullptr;
    for (const auto &C : Into.Children)
      if (C->Name == FC->Name) {
        Node = C.get();
        break;
      }
    if (!Node) {
      Into.Children.push_back(std::make_unique<PhaseNode>());
      Node = Into.Children.back().get();
      Node->Name = FC->Name;
    }
    Node->Count += FC->Count;
    Node->TotalUs += FC->TotalUs;
    Node->ChildUs += FC->ChildUs;
    mergePhaseChildren(*FC, *Node);
  }
}

} // namespace

void Telemetry::mergeFrom(const Telemetry &Other) {
  assert(Other.Open.empty() && "merging a context with open phases");

  for (const auto &[Name, Value] : Other.Counters)
    add(Name, Value);
  for (const auto &[Name, Value] : Other.Gauges)
    raiseMax(Name, Value);
  for (const auto &[Name, H] : Other.Histograms) {
    auto It = Histograms.find(Name);
    if (It == Histograms.end()) {
      Histograms.emplace(Name, H);
      continue;
    }
    HistogramStats &D = It->second;
    D.Count += H.Count;
    D.Sum += H.Sum;
    D.Min = std::min(D.Min, H.Min);
    D.Max = std::max(D.Max, H.Max);
    for (const auto &[Index, N] : H.Buckets)
      D.Buckets[Index] += N;
  }
  // Track labels union; events below keep their originating track, so
  // per-worker timelines survive the merge into the ambient context.
  for (const auto &[Id, Name] : Other.TrackNames)
    TrackNames.emplace(Id, Name);

  // Graft the phase tree under the innermost open phase so merged work
  // nests where the merge happens (e.g. per-run contexts under
  // "suite.run"). The grafted top-level time is child time of that
  // phase.
  PhaseNode &Parent = Open.empty() ? Root : *Open.back().Node;
  Parent.ChildUs += Other.Root.ChildUs;
  mergePhaseChildren(Other.Root, Parent);

  // Replay events on this context's clock. Both epochs come from the
  // same steady clock, so the offset lines spans up where they really
  // ran; clamp in case Other predates this context.
  int64_t EpochDelta = std::chrono::duration_cast<std::chrono::microseconds>(
                           Other.Epoch - Epoch)
                           .count();
  unsigned BaseDepth = static_cast<unsigned>(Open.size());
  Events.reserve(Events.size() + Other.Events.size());
  for (const TraceEvent &E : Other.Events) {
    TraceEvent Copy = E;
    int64_t Start = static_cast<int64_t>(E.StartUs) + EpochDelta;
    Copy.StartUs = Start > 0 ? static_cast<uint64_t>(Start) : 0;
    Copy.Depth = E.Depth + BaseDepth;
    Events.push_back(std::move(Copy));
  }
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

std::string Telemetry::traceJson() const {
  JsonWriter W;
  W.beginObject();
  W.member("displayTimeUnit", "ms");
  W.key("traceEvents").beginArray();

  // Process metadata so trace viewers show a meaningful track name.
  W.beginObject()
      .member("name", "process_name")
      .member("ph", "M")
      .member("pid", int64_t{1})
      .key("args")
      .beginObject()
      .member("name", "sest")
      .endObject()
      .endObject();

  // One thread-name metadata event per track in use (tid = track + 1,
  // so the main track renders as tid 1). Serial runs only ever touch
  // track 0 and keep a single stable timeline.
  std::map<uint32_t, std::string> Tracks;
  Tracks.emplace(Track, std::string());
  for (const TraceEvent &E : Events)
    Tracks.emplace(E.Track, std::string());
  for (auto &[Id, Name] : Tracks) {
    auto It = TrackNames.find(Id);
    if (It != TrackNames.end())
      Name = It->second;
    else
      Name = Id == 0 ? "main" : "worker-" + std::to_string(Id);
    W.beginObject()
        .member("name", "thread_name")
        .member("ph", "M")
        .member("pid", int64_t{1})
        .member("tid", static_cast<int64_t>(Id) + 1)
        .key("args")
        .beginObject()
        .member("name", Name)
        .endObject()
        .endObject();
  }

  for (const TraceEvent &E : Events) {
    W.beginObject()
        .member("name", E.Name)
        .member("cat", "phase")
        .member("ph", "X")
        .member("ts", static_cast<uint64_t>(E.StartUs))
        .member("dur", static_cast<uint64_t>(E.DurUs))
        .member("pid", int64_t{1})
        .member("tid", static_cast<int64_t>(E.Track) + 1);
    if (!E.Detail.empty())
      W.key("args").beginObject().member("detail", E.Detail).endObject();
    W.endObject();
  }

  // Final counter samples, so the numeric registry rides along in the
  // same file ("C" = counter event).
  uint64_t End = Events.empty() ? 0 : nowUs();
  auto emitCounter = [&](const std::string &Name, double Value) {
    W.beginObject()
        .member("name", Name)
        .member("ph", "C")
        .member("ts", End)
        .member("pid", int64_t{1})
        .key("args")
        .beginObject()
        .member("value", Value)
        .endObject()
        .endObject();
  };
  for (const auto &[Name, Value] : Counters)
    emitCounter(Name, Value);
  for (const auto &[Name, Value] : Gauges)
    emitCounter(Name, Value);

  W.endArray();
  W.endObject();
  return W.take();
}

std::string Telemetry::statsTable() const {
  TextTable T;
  T.setHeader(
      {"Name", "Kind", "Value", "N", "Min", "Mean", "P50", "P90", "P99",
       "Max"});
  for (const auto &[Name, Value] : Counters)
    T.addRow({Name, "counter", formatDouble(Value, 0), "", "", "", "", "",
              "", ""});
  for (const auto &[Name, Value] : Gauges)
    T.addRow({Name, "gauge", formatDouble(Value, 0), "", "", "", "", "",
              "", ""});
  for (const auto &[Name, H] : Histograms)
    T.addRow({Name, "hist", formatDouble(H.Sum, 2),
              std::to_string(H.Count), formatDouble(H.Min, 3),
              formatDouble(H.mean(), 3), formatDouble(H.p50(), 3),
              formatDouble(H.p90(), 3), formatDouble(H.p99(), 3),
              formatDouble(H.Max, 3)});
  return T.str();
}

namespace {

void summarizeNode(const PhaseNode &N, unsigned Depth, uint64_t RootUs,
                   TextTable &T) {
  std::string Indent(2 * Depth, ' ');
  double TotalMs = static_cast<double>(N.TotalUs) / 1000.0;
  double SelfMs = static_cast<double>(N.selfUs()) / 1000.0;
  double Share = RootUs ? 100.0 * static_cast<double>(N.TotalUs) /
                              static_cast<double>(RootUs)
                        : 0.0;
  T.addRow({Indent + N.Name, std::to_string(N.Count),
            formatDouble(TotalMs, 3), formatDouble(SelfMs, 3),
            formatDouble(Share, 1) + "%"});
  for (const auto &C : N.Children)
    summarizeNode(*C, Depth + 1, RootUs, T);
}

void reportNode(const PhaseNode &N, JsonWriter &W) {
  W.beginObject()
      .member("name", N.Name)
      .member("count", static_cast<uint64_t>(N.Count))
      .member("total_us", static_cast<uint64_t>(N.TotalUs))
      .member("self_us", static_cast<uint64_t>(N.selfUs()));
  W.key("children").beginArray();
  for (const auto &C : N.Children)
    reportNode(*C, W);
  W.endArray();
  W.endObject();
}

} // namespace

std::string Telemetry::phaseSummary() const {
  TextTable T;
  T.setHeader({"Phase", "Count", "Total ms", "Self ms", "% root"});
  uint64_t RootUs = Root.ChildUs;
  for (const auto &C : Root.Children)
    summarizeNode(*C, 0, RootUs, T);
  return T.str();
}

void Telemetry::writeReport(JsonWriter &W) const {
  W.beginObject();

  W.key("phases").beginArray();
  for (const auto &C : Root.Children)
    reportNode(*C, W);
  W.endArray();

  W.key("counters").beginObject();
  for (const auto &[Name, Value] : Counters)
    W.member(Name, Value);
  W.endObject();

  W.key("gauges").beginObject();
  for (const auto &[Name, Value] : Gauges)
    W.member(Name, Value);
  W.endObject();

  W.key("histograms").beginObject();
  for (const auto &[Name, H] : Histograms) {
    W.key(Name).beginObject();
    W.member("count", static_cast<uint64_t>(H.Count))
        .member("sum", H.Sum)
        .member("min", H.Min)
        .member("mean", H.mean())
        .member("p50", H.p50())
        .member("p90", H.p90())
        .member("p99", H.p99())
        .member("max", H.Max);
    W.endObject();
  }
  W.endObject();

  W.endObject();
}

//===- obs/Telemetry.h - Phase tracing and counter registry -----*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability substrate for the whole pipeline: scoped phase
/// timers that emit Chrome trace-event JSON (loadable in chrome://tracing
/// or https://ui.perfetto.dev) plus a hierarchical phase-time summary,
/// and a registry of named monotonic counters, high-water gauges, and
/// simple histograms.
///
/// Design goals, in order:
///
///  1. *Zero cost when off.* Nothing is collected unless a Telemetry
///     context is installed on the current thread. Every recording entry
///     point is an inline function whose disabled path is a single
///     thread-local pointer test; compiling with -DSEST_OBS_DISABLED
///     removes even that (the bodies become empty). Hot loops (the
///     interpreter) never call per-event — they accumulate locally and
///     flush totals once per run.
///
///  2. *Ambient, not threaded through.* The pipeline spans many layers
///     (frontend, CFG, call graph, estimators, interpreter, suite); the
///     context is an ambient per-thread pointer installed RAII-style so
///     no signature changes ripple through the stack.
///
///  3. *Uniform naming.* Counter names follow `layer.entity.metric`
///     (e.g. "cfg.blocks.built", "interp.heap_cells.high_water"); phase
///     names follow `layer.action` and nest lexically. See
///     docs/OBSERVABILITY.md for the full vocabulary.
///
//===----------------------------------------------------------------------===//

#ifndef OBS_TELEMETRY_H
#define OBS_TELEMETRY_H

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace sest {
class JsonWriter;
}

namespace sest::obs {

class Telemetry;

namespace detail {
/// The context installed on this thread; null when telemetry is off.
extern thread_local Telemetry *Active;
} // namespace detail

/// Aggregated statistics of one histogram.
///
/// Alongside count/sum/min/max the histogram keeps a sparse log-scale
/// bucket map (8 sub-buckets per octave, exact bucketing via frexp) so
/// percentiles can be estimated without retaining samples. Bucketing is
/// fully deterministic, and bucket maps merge additively, so percentile
/// estimates are identical no matter how samples were partitioned across
/// merged contexts.
struct HistogramStats {
  uint64_t Count = 0;
  double Sum = 0.0;
  double Min = 0.0;
  double Max = 0.0;
  /// Sample counts per log-scale bucket; key INT32_MIN collects
  /// non-positive (and non-finite) samples.
  std::map<int32_t, uint64_t> Buckets;

  double mean() const {
    return Count ? Sum / static_cast<double>(Count) : 0.0;
  }

  /// Estimated value at quantile \p Q in (0, 1]: the midpoint of the
  /// bucket holding the ceil(Q*Count)-th smallest sample, clamped to
  /// [Min, Max] so the extremes stay exact.
  double percentile(double Q) const;
  double p50() const { return percentile(0.50); }
  double p90() const { return percentile(0.90); }
  double p99() const { return percentile(0.99); }

  /// The bucket index of \p Sample (INT32_MIN for Sample <= 0).
  static int32_t bucketIndex(double Sample);
};

/// One completed trace span.
struct TraceEvent {
  std::string Name;   ///< Phase name ("estimate.intra").
  std::string Detail; ///< Optional argument (e.g. function name).
  uint64_t StartUs = 0;
  uint64_t DurUs = 0;
  unsigned Depth = 0;  ///< Nesting depth at begin (0 = top level).
  uint32_t Track = 0;  ///< Timeline track (0 = main; workers are 1-based).
};

/// One node of the hierarchical phase-time summary.
struct PhaseNode {
  std::string Name;
  uint64_t Count = 0;
  uint64_t TotalUs = 0;
  uint64_t ChildUs = 0;
  std::vector<std::unique_ptr<PhaseNode>> Children; ///< First-seen order.

  uint64_t selfUs() const {
    return TotalUs > ChildUs ? TotalUs - ChildUs : 0;
  }
};

/// A telemetry collection context. Create one, install() it, run the
/// pipeline, then render traceJson() / statsTable() / phaseSummary() or
/// feed writeReport() into a larger JSON document.
class Telemetry {
public:
  Telemetry();
  ~Telemetry();
  Telemetry(const Telemetry &) = delete;
  Telemetry &operator=(const Telemetry &) = delete;

  /// Installs this context as the thread's ambient collector. Nested
  /// installs stack: uninstall() restores the previous context.
  void install();
  void uninstall();
  bool installed() const { return Installed; }

  /// The context currently collecting on this thread (null = off).
  static Telemetry *active() { return detail::Active; }

  /// Assigns every span this context records to trace track \p Id
  /// (0 = the main track). Per-task contexts in the parallel pools set
  /// a 1-based worker track before running so merged traces keep one
  /// timeline per worker; \p Name labels the track in trace viewers.
  void setTrack(uint32_t Id, std::string_view Name = {});
  uint32_t track() const { return Track; }
  /// Track labels known to this context (unioned by mergeFrom()).
  const std::map<uint32_t, std::string> &trackNames() const {
    return TrackNames;
  }

  //===--------------------------------------------------------------------===//
  // Recording (normally reached via the free functions below)
  //===--------------------------------------------------------------------===//

  /// Adds \p Delta to the monotonic counter \p Name.
  void add(std::string_view Name, double Delta);
  /// Raises the high-water gauge \p Name to at least \p Value.
  void raiseMax(std::string_view Name, double Value);
  /// Records one sample into the histogram \p Name.
  void record(std::string_view Name, double Sample);

  /// Opens a phase; every phase must be closed by endPhase() in LIFO
  /// order (use ScopedPhase).
  void beginPhase(std::string_view Name, std::string_view Detail = {});
  void endPhase();

  /// Folds everything \p Other collected into this context: counters
  /// sum, gauges take the max, histograms combine, \p Other's phase
  /// tree is grafted under the innermost currently-open phase (nodes
  /// with the same name merge, preserving first-seen order), and its
  /// trace events are appended with timestamps remapped onto this
  /// context's epoch. \p Other must have no open phases. Used by the
  /// parallel suite runner to merge per-run contexts deterministically.
  void mergeFrom(const Telemetry &Other);

  //===--------------------------------------------------------------------===//
  // Inspection
  //===--------------------------------------------------------------------===//

  const std::map<std::string, double, std::less<>> &counters() const {
    return Counters;
  }
  const std::map<std::string, double, std::less<>> &gauges() const {
    return Gauges;
  }
  const std::map<std::string, HistogramStats, std::less<>> &
  histograms() const {
    return Histograms;
  }
  const std::vector<TraceEvent> &events() const { return Events; }
  const PhaseNode &phaseTree() const { return Root; }
  /// Depth of currently open (unclosed) phases.
  unsigned openPhaseDepth() const { return static_cast<unsigned>(Open.size()); }

  //===--------------------------------------------------------------------===//
  // Rendering
  //===--------------------------------------------------------------------===//

  /// The Chrome trace-event document: completed phases as "X" duration
  /// events, counters/gauges as a trailing set of "C" counter events.
  std::string traceJson() const;

  /// Counters, gauges, and histograms as an aligned text table.
  std::string statsTable() const;

  /// The hierarchical phase-time table (indentation shows nesting).
  std::string phaseSummary() const;

  /// Writes the machine-readable report object {phases, counters,
  /// gauges, histograms} into \p W (as one JSON object value).
  void writeReport(JsonWriter &W) const;

private:
  uint64_t nowUs() const;

  struct OpenPhase {
    PhaseNode *Node;
    std::string Detail;
    uint64_t StartUs;
  };

  std::chrono::steady_clock::time_point Epoch;
  uint32_t Track = 0;
  std::map<uint32_t, std::string> TrackNames;
  std::map<std::string, double, std::less<>> Counters;
  std::map<std::string, double, std::less<>> Gauges;
  std::map<std::string, HistogramStats, std::less<>> Histograms;
  std::vector<TraceEvent> Events;
  PhaseNode Root;
  std::vector<OpenPhase> Open;
  Telemetry *Previous = nullptr;
  bool Installed = false;
};

//===----------------------------------------------------------------------===//
// Free recording functions — the only API most instrumentation sites use.
// With no context installed these cost one thread-local load and branch;
// with SEST_OBS_DISABLED they compile to nothing.
//===----------------------------------------------------------------------===//

inline void counterAdd(std::string_view Name, double Delta = 1.0) {
#ifndef SEST_OBS_DISABLED
  if (Telemetry *T = detail::Active)
    T->add(Name, Delta);
#else
  (void)Name;
  (void)Delta;
#endif
}

inline void gaugeMax(std::string_view Name, double Value) {
#ifndef SEST_OBS_DISABLED
  if (Telemetry *T = detail::Active)
    T->raiseMax(Name, Value);
#else
  (void)Name;
  (void)Value;
#endif
}

inline void histRecord(std::string_view Name, double Sample) {
#ifndef SEST_OBS_DISABLED
  if (Telemetry *T = detail::Active)
    T->record(Name, Sample);
#else
  (void)Name;
  (void)Sample;
#endif
}

/// True when some context is collecting on this thread — use to guard
/// instrumentation whose *setup* is costly (e.g. a per-function loop).
inline bool telemetryActive() {
#ifndef SEST_OBS_DISABLED
  return detail::Active != nullptr;
#else
  return false;
#endif
}

/// RAII phase span. Captures the active context at construction, so it
/// stays balanced even if the context is uninstalled within the scope.
class ScopedPhase {
public:
  explicit ScopedPhase(std::string_view Name,
                       std::string_view Detail = {}) {
#ifndef SEST_OBS_DISABLED
    T = detail::Active;
    if (T)
      T->beginPhase(Name, Detail);
#else
    (void)Name;
    (void)Detail;
#endif
  }
  ~ScopedPhase() {
    if (T)
      T->endPhase();
  }
  ScopedPhase(const ScopedPhase &) = delete;
  ScopedPhase &operator=(const ScopedPhase &) = delete;

private:
  Telemetry *T = nullptr;
};

} // namespace sest::obs

#endif // OBS_TELEMETRY_H

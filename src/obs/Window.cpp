//===- obs/Window.cpp - Rolling-window telemetry snapshots -----------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "obs/Window.h"

#include <cstdint>

using namespace sest;
using namespace sest::obs;

WindowSnapshot RollingWindow::advance(const Telemetry &T, uint64_t Tick) {
  WindowSnapshot S;
  S.Tick = Tick;
  S.WindowTicks = Tick >= LastTick ? Tick - LastTick : 0;
  LastTick = Tick;

  for (const auto &[Name, V] : T.counters()) {
    auto It = PrevCounters.find(Name);
    S.CounterDeltas[Name] = V - (It == PrevCounters.end() ? 0.0 : It->second);
  }
  PrevCounters.clear();
  for (const auto &[Name, V] : T.counters())
    PrevCounters[Name] = V;

  S.Gauges = T.gauges();

  for (const auto &[Name, Cur] : T.histograms()) {
    auto It = PrevHistograms.find(Name);
    const HistogramStats *Prev =
        It == PrevHistograms.end() ? nullptr : &It->second;
    HistogramStats D;
    D.Count = Cur.Count - (Prev ? Prev->Count : 0);
    D.Sum = Cur.Sum - (Prev ? Prev->Sum : 0.0);
    for (const auto &[Index, N] : Cur.Buckets) {
      uint64_t PrevN = 0;
      if (Prev)
        if (auto B = Prev->Buckets.find(Index); B != Prev->Buckets.end())
          PrevN = B->second;
      if (N > PrevN)
        D.Buckets[Index] = N - PrevN;
    }
    // The registry only keeps all-time extremes, so clamp the window's
    // percentile range to the occupied delta buckets instead.
    if (!D.Buckets.empty()) {
      D.Min = histBucketLowerBound(D.Buckets.begin()->first);
      D.Max = histBucketUpperBound(D.Buckets.rbegin()->first);
    }
    S.HistogramDeltas[Name] = std::move(D);
  }
  PrevHistograms = T.histograms();

  return S;
}

std::string sest::obs::renderPrometheus(const WindowSnapshot &S,
                                        const ExportOptions &O) {
  // Reuse the cumulative renderer by staging the window into a scratch
  // registry under _delta names; the tick gauges ride along as extras.
  // Gauges are deliberately NOT re-rendered: a window exposition is
  // meant to be concatenated after a cumulative one (sestd --metrics
  // writes both into one file), and repeating the instantaneous gauges
  // there would produce duplicate series the lint rejects.
  Telemetry Scratch;
  for (const auto &[Name, V] : S.CounterDeltas)
    if (!O.DeterministicOnly || deterministicSeriesName(Name))
      Scratch.raiseMax(Name + "_delta", V);

  ExportOptions Plain = O;
  Plain.DeterministicOnly = false; // already filtered above
  std::vector<ExtraSeries> Extra = {
      {"window.tick", static_cast<double>(S.Tick), false},
      {"window.ticks", static_cast<double>(S.WindowTicks), false}};
  std::string Out = renderPrometheus(Scratch, Plain, Extra);

  if (!O.DeterministicOnly)
    for (const auto &[Name, H] : S.HistogramDeltas)
      if (H.Count)
        renderHistogramFamily(Out, Plain, Name + "_delta", H);
  return Out;
}

//===- obs/Window.h - Rolling-window telemetry snapshots --------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Rolling-window aggregation over a Telemetry registry: each call to
/// RollingWindow::advance() closes one window and returns the *delta*
/// of every monotonic series since the previous advance — counters
/// subtract, histogram counts/sums/buckets subtract (so windowed
/// percentiles describe only the samples that landed inside the
/// window), and high-water gauges pass through as point-in-time values.
///
/// Time never enters: the window boundary is an injected tick value
/// (sestd ticks by requests served), so for a fixed request stream and
/// fixed snapshot cadence every windowed snapshot is byte-reproducible
/// — the property the determinism tests and the CI cmp step rely on.
/// Wall-clock rates (e.g. req/s in sesttop) are always computed by the
/// *consumer* from two scrapes, never baked into a snapshot.
///
//===----------------------------------------------------------------------===//

#ifndef OBS_WINDOW_H
#define OBS_WINDOW_H

#include "obs/Export.h"
#include "obs/Telemetry.h"

#include <cstdint>
#include <map>
#include <string>

namespace sest::obs {

/// One closed window: deltas of everything monotonic, gauges as-is.
struct WindowSnapshot {
  uint64_t Tick = 0;        ///< Tick at which the window closed.
  uint64_t WindowTicks = 0; ///< Ticks covered (Tick - previous Tick).
  std::map<std::string, double, std::less<>> CounterDeltas;
  /// High-water gauges, passed through (a high-water mark cannot be
  /// windowed from a cumulative registry).
  std::map<std::string, double, std::less<>> Gauges;
  /// Per-histogram deltas. Count/Sum/Buckets are true in-window totals;
  /// Min/Max are bucket-bound approximations (the registry only keeps
  /// all-time extremes), so percentile() stays within the window's
  /// occupied buckets.
  std::map<std::string, HistogramStats, std::less<>> HistogramDeltas;
};

/// Delta tracker over successive registry observations. One instance
/// per exposition stream; observations must come from the same
/// (monotonically growing) registry.
class RollingWindow {
public:
  /// Closes the window at \p Tick against the current contents of
  /// \p T and starts the next one. Ticks should be non-decreasing.
  WindowSnapshot advance(const Telemetry &T, uint64_t Tick);

private:
  uint64_t LastTick = 0;
  std::map<std::string, double, std::less<>> PrevCounters;
  std::map<std::string, HistogramStats, std::less<>> PrevHistograms;
};

/// Renders one window as Prometheus text: `<prefix>window_tick` /
/// `<prefix>window_ticks` gauges, one `<name>_delta` gauge per counter,
/// and one `<name>_delta` histogram family per histogram (same shape as
/// the cumulative exposition). Snapshot gauges are *not* re-rendered —
/// a window section is designed to concatenate lint-clean after a
/// cumulative exposition, which already carries them. With
/// ExportOptions::DeterministicOnly only the deterministic counter
/// deltas (plus the tick gauges) are emitted.
std::string renderPrometheus(const WindowSnapshot &S,
                             const ExportOptions &O = {});

} // namespace sest::obs

#endif // OBS_WINDOW_H

//===- opt/FuncOrder.cpp - Function ordering by call arcs -----------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "opt/FuncOrder.h"

#include "obs/EventLog.h"
#include "obs/Telemetry.h"

#include <algorithm>
#include <cmath>
#include <map>

using namespace sest;
using namespace sest::opt;

namespace {

/// One merged caller→callee arc (all direct sites between the pair).
struct CallArc {
  double Weight;
  uint32_t Caller;
  uint32_t Callee;
};

bool isPlaceable(const FunctionDecl *F) {
  return F && F->isDefined() && !F->isBuiltin();
}

/// Ranks of the defined functions under \p FO: the i-th defined function
/// in order position gets rank i. Builtins/undefined functions carry no
/// code, so distance is measured over the functions that actually occupy
/// space in the image.
std::vector<uint32_t> definedRanks(const CallGraph &CG,
                                   const FunctionOrder &FO,
                                   const TranslationUnit &Unit) {
  (void)CG;
  std::vector<uint32_t> Rank(FO.Order.size(), UINT32_MAX);
  uint32_t Next = 0;
  for (uint32_t Fid : FO.Order) {
    if (Fid < Unit.Functions.size() &&
        isPlaceable(Unit.Functions[Fid]))
      Rank[Fid] = Next++;
  }
  return Rank;
}

} // namespace

FunctionOrder opt::identityFunctionOrder(const TranslationUnit &Unit) {
  FunctionOrder FO;
  const uint32_t N = static_cast<uint32_t>(Unit.Functions.size());
  FO.Order.resize(N);
  FO.Pos.resize(N);
  for (uint32_t I = 0; I < N; ++I) {
    FO.Order[I] = I;
    FO.Pos[I] = I;
  }
  FO.NumChains = N;
  return FO;
}

FunctionOrder opt::computeFunctionOrder(const TranslationUnit &Unit,
                                        const CallGraph &CG,
                                        const WeightSource &W) {
  obs::ScopedPhase Phase("opt.funcorder");
  const bool Log = obs::eventLogActive();
  const uint32_t N = static_cast<uint32_t>(Unit.Functions.size());
  FunctionOrder FO = identityFunctionOrder(Unit);
  if (N == 0)
    return FO;

  // The entry function anchors its chain's head, exactly like the entry
  // block in block layout: "main" when defined, else the lowest-id
  // defined function.
  uint32_t EntryFid = UINT32_MAX;
  for (uint32_t Fid = 0; Fid < N; ++Fid) {
    const FunctionDecl *F = Unit.Functions[Fid];
    if (!isPlaceable(F))
      continue;
    if (EntryFid == UINT32_MAX)
      EntryFid = Fid;
    if (F->name() == "main") {
      EntryFid = Fid;
      break;
    }
  }
  if (EntryFid == UINT32_MAX)
    return FO; // Nothing placeable.

  // Merge every direct call site between a pair of placeable functions
  // into one weighted arc (both directions of a mutual recursion stay
  // distinct arcs; the chain merge below picks whichever is hotter).
  std::map<std::pair<uint32_t, uint32_t>, double> PairWeight;
  for (const CallSiteInfo &S : CG.sites()) {
    if (S.isIndirect() || !isPlaceable(S.Caller) || !isPlaceable(S.Callee))
      continue;
    if (S.Caller == S.Callee)
      continue;
    double Wt = W.callSiteWeight(S.CallSiteId);
    if (Wt <= 0.0)
      continue;
    PairWeight[{S.Caller->functionId(), S.Callee->functionId()}] += Wt;
  }
  std::vector<CallArc> Arcs;
  Arcs.reserve(PairWeight.size());
  for (const auto &[Pair, Wt] : PairWeight)
    Arcs.push_back({Wt, Pair.first, Pair.second});
  std::stable_sort(Arcs.begin(), Arcs.end(),
                   [](const CallArc &A, const CallArc &B) {
                     if (A.Weight != B.Weight)
                       return A.Weight > B.Weight;
                     if (A.Caller != B.Caller)
                       return A.Caller < B.Caller;
                     return A.Callee < B.Callee;
                   });

  // Chain merge, hottest arc first: append the callee's chain to the
  // caller's when the caller is a chain tail and the callee a chain
  // head. The entry function's chain never becomes a suffix.
  std::vector<int> ChainOf(N, -1);
  std::vector<std::vector<uint32_t>> Chains;
  std::vector<double> ChainWeight;
  for (uint32_t Fid = 0; Fid < N; ++Fid) {
    if (!isPlaceable(Unit.Functions[Fid]))
      continue;
    ChainOf[Fid] = static_cast<int>(Chains.size());
    Chains.push_back({Fid});
    ChainWeight.push_back(0.0);
  }
  for (const CallArc &A : Arcs) {
    int CA = ChainOf[A.Caller], CB = ChainOf[A.Callee];
    if (CA == CB)
      continue;
    if (Chains[CA].back() != A.Caller || Chains[CB].front() != A.Callee)
      continue;
    if (A.Callee == EntryFid)
      continue;
    if (Log)
      obs::logEvent(
          "funcorder.chain.merge",
          obs::provFunction(Unit.Functions[A.Caller]->name()),
          {obs::attr("function", Unit.Functions[A.Caller]->name()),
           obs::attr("origin", W.Origin),
           obs::attr("callee", Unit.Functions[A.Callee]->name()),
           obs::attr("weight", A.Weight)});
    Chains[CA].insert(Chains[CA].end(), Chains[CB].begin(),
                      Chains[CB].end());
    ChainWeight[CA] += ChainWeight[CB] + A.Weight;
    for (uint32_t Fid : Chains[CB])
      ChainOf[Fid] = CA;
    Chains[CB].clear();
  }

  // Emit: entry chain first, then by total weight descending, minimum
  // function id ascending.
  struct ChainRef {
    double Weight;
    uint32_t MinFid;
    const std::vector<uint32_t> *Funcs;
    bool IsEntry;
  };
  std::vector<ChainRef> Live;
  for (size_t C = 0; C < Chains.size(); ++C) {
    if (Chains[C].empty())
      continue;
    uint32_t MinFid = *std::min_element(Chains[C].begin(), Chains[C].end());
    bool IsEntry = ChainOf[EntryFid] == static_cast<int>(C);
    Live.push_back({ChainWeight[C], MinFid, &Chains[C], IsEntry});
  }
  std::stable_sort(Live.begin(), Live.end(),
                   [](const ChainRef &A, const ChainRef &B) {
                     if (A.IsEntry != B.IsEntry)
                       return A.IsEntry;
                     if (A.Weight != B.Weight)
                       return A.Weight > B.Weight;
                     return A.MinFid < B.MinFid;
                   });

  // Defined functions fill the identity positions of defined functions,
  // in chain order; builtins/undefined functions are fixed points.
  std::vector<uint32_t> DefinedSlots;
  for (uint32_t Fid = 0; Fid < N; ++Fid)
    if (isPlaceable(Unit.Functions[Fid]))
      DefinedSlots.push_back(Fid);
  size_t Slot = 0;
  for (const ChainRef &C : Live)
    for (uint32_t Fid : *C.Funcs)
      FO.Order[DefinedSlots[Slot++]] = Fid;
  for (uint32_t P = 0; P < N; ++P)
    FO.Pos[FO.Order[P]] = P;
  FO.NumChains = static_cast<uint32_t>(Live.size());

  obs::counterAdd("opt.funcorder.functions", DefinedSlots.size());
  obs::counterAdd("opt.funcorder.chains", Live.size());
  if (!FO.isIdentity())
    obs::counterAdd("opt.funcorder.reordered_programs");
  return FO;
}

double opt::functionOrderCost(const TranslationUnit &Unit,
                              const CallGraph &CG, const WeightSource &W,
                              const FunctionOrder &FO,
                              const FuncOrderOptions &Options) {
  if (FO.Order.empty())
    return 0.0;
  std::vector<uint32_t> Rank = definedRanks(CG, FO, Unit);
  double Cost = 0.0;
  for (const CallSiteInfo &S : CG.sites()) {
    if (S.isIndirect() || !isPlaceable(S.Caller) || !isPlaceable(S.Callee))
      continue;
    double Wt = W.callSiteWeight(S.CallSiteId);
    if (Wt <= 0.0)
      continue;
    uint32_t CallerFid = S.Caller->functionId();
    uint32_t CalleeFid = S.Callee->functionId();
    if (CallerFid >= Rank.size() || CalleeFid >= Rank.size() ||
        Rank[CallerFid] == UINT32_MAX || Rank[CalleeFid] == UINT32_MAX)
      continue;
    double Dist = std::abs(static_cast<double>(Rank[CallerFid]) -
                           static_cast<double>(Rank[CalleeFid]));
    double Penalty = Dist > 1.0 ? Dist - 1.0 : 0.0;
    Cost += Wt * Options.DistanceCost * Penalty;
  }
  return Cost;
}

double opt::functionOrderOverlap(const TranslationUnit &Unit,
                                 const FunctionOrder &A,
                                 const FunctionOrder &B) {
  auto AdjacentPairs = [&Unit](const FunctionOrder &FO) {
    std::vector<std::pair<uint32_t, uint32_t>> Pairs;
    std::vector<uint32_t> Defined;
    for (uint32_t Fid : FO.Order)
      if (Fid < Unit.Functions.size() &&
          isPlaceable(Unit.Functions[Fid]))
        Defined.push_back(Fid);
    for (size_t I = 0; I + 1 < Defined.size(); ++I) {
      uint32_t X = Defined[I], Y = Defined[I + 1];
      Pairs.emplace_back(std::min(X, Y), std::max(X, Y));
    }
    std::sort(Pairs.begin(), Pairs.end());
    return Pairs;
  };
  std::vector<std::pair<uint32_t, uint32_t>> PA = AdjacentPairs(A),
                                             PB = AdjacentPairs(B);
  if (PA.empty() && PB.empty())
    return 1.0;
  std::vector<std::pair<uint32_t, uint32_t>> Inter, Uni;
  std::set_intersection(PA.begin(), PA.end(), PB.begin(), PB.end(),
                        std::back_inserter(Inter));
  std::set_union(PA.begin(), PA.end(), PB.begin(), PB.end(),
                 std::back_inserter(Uni));
  return Uni.empty() ? 1.0
                     : static_cast<double>(Inter.size()) /
                           static_cast<double>(Uni.size());
}

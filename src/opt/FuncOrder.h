//===- opt/FuncOrder.h - Function ordering by call arcs ---------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pettis–Hansen-style procedure ordering — the other half of the layout
/// story: chain *functions* along their hottest call-graph arcs so a hot
/// caller and its hot callee land adjacent in the program image. The pass
/// consumes the same WeightSource as block layout, so it runs unchanged
/// from static estimates or measured profiles.
///
/// The interpreters do not model instruction placement across functions,
/// so the pass is scored by an explicit locality cost: every direct call
/// pays its weight times the order-distance between caller and callee
/// (adjacent functions pay nothing). The cost is an analytic stand-in
/// for the i-cache/TLB working-set effect the original paper's linker
/// pass targeted; only relative comparisons between orders are
/// meaningful.
///
//===----------------------------------------------------------------------===//

#ifndef OPT_FUNCORDER_H
#define OPT_FUNCORDER_H

#include "callgraph/CallGraph.h"
#include "lang/Ast.h"
#include "opt/WeightSource.h"

#include <cstdint>
#include <vector>

namespace sest {
namespace opt {

/// Function-ordering knobs.
struct FuncOrderOptions {
  /// Locality cost charged per unit of call weight per unit of
  /// order-distance beyond adjacency (see functionOrderCost).
  double DistanceCost = 1.0;
};

/// A whole-program function order over function ids. Builtins and
/// undefined functions keep their identity positions: only defined
/// functions are reordered (they are the only ones with a body to
/// place).
struct FunctionOrder {
  /// Position -> function id (a permutation of 0..NumFunctions-1).
  std::vector<uint32_t> Order;
  /// Function id -> position (inverse of Order).
  std::vector<uint32_t> Pos;
  /// Number of chains the defined functions were grouped into.
  uint32_t NumChains = 0;

  bool isIdentity() const {
    for (uint32_t I = 0; I < Order.size(); ++I)
      if (Order[I] != I)
        return false;
    return true;
  }
};

/// Greedy call-arc chaining over defined functions: merge direct
/// caller→callee arcs hottest-first when the caller is a chain tail and
/// the callee a chain head (never the entry function), exactly the
/// block-chaining discipline lifted to the call graph. Chains are
/// emitted entry-function chain first, then by total weight descending
/// (minimum function id ascending on ties). Deterministic for identical
/// weights.
FunctionOrder computeFunctionOrder(const TranslationUnit &Unit,
                                   const CallGraph &CG,
                                   const WeightSource &W);

/// The identity order (functions in id order).
FunctionOrder identityFunctionOrder(const TranslationUnit &Unit);

/// Locality cost of \p FO under \p W: for every direct call site with
/// positive weight between defined functions, weight × DistanceCost ×
/// (|rank(caller) − rank(callee)| − 1), clamped at zero — adjacent (and
/// self) calls are free. Ranks count defined functions only (builtins
/// and undefined functions carry no code). Omitted (-1) sites contribute
/// nothing. This is the scalar the tuner's function-ordering dimension
/// moves.
double functionOrderCost(const TranslationUnit &Unit, const CallGraph &CG,
                         const WeightSource &W, const FunctionOrder &FO,
                         const FuncOrderOptions &Options = {});

/// The adjacency agreement of two orders: |adjacent unordered function
/// pairs in both| / |union|, over defined functions. 1.0 when both
/// orders have fewer than two defined functions.
double functionOrderOverlap(const TranslationUnit &Unit,
                            const FunctionOrder &A, const FunctionOrder &B);

} // namespace opt
} // namespace sest

#endif // OPT_FUNCORDER_H

//===- opt/Inline.cpp - Call-site inlining --------------------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "opt/Inline.h"

#include "obs/EventLog.h"
#include "obs/Telemetry.h"

#include <cstdio>
#include <set>

using namespace sest;
using namespace sest::opt;

namespace {

/// The statement-position shapes a call site may take.
enum class SiteForm {
  None,       ///< Nested inside a larger expression — not inlinable.
  Discard,    ///< f(a, b);           — result (if any) discarded.
  AssignTo,   ///< v = f(a, b);       — plain store to a scalar variable.
  DeclInitTo, ///< int v = f(a, b);   — scalar declaration initializer.
};

const VarDecl *scalarVarOf(const Expr *E) {
  const auto *Ref = exprDynCast<DeclRefExpr>(E);
  if (!Ref || !Ref->decl() || Ref->decl()->kind() != DeclKind::Var)
    return nullptr;
  const auto *V = static_cast<const VarDecl *>(Ref->decl());
  return V->type()->isScalar() ? V : nullptr;
}

/// Classifies one CFG action with respect to \p Site; fills \p Lhs with
/// the variable the call's result lands in (AssignTo/DeclInitTo).
SiteForm classifyAction(const CfgAction &A, const CallExpr *Site,
                        const VarDecl *&Lhs) {
  Lhs = nullptr;
  if (A.ActionKind == CfgAction::Kind::Eval) {
    if (A.E == Site)
      return SiteForm::Discard;
    if (const auto *Asgn = exprDynCast<AssignExpr>(A.E))
      if (Asgn->rhs() == Site && !Asgn->compoundOp())
        if ((Lhs = scalarVarOf(Asgn->lhs())))
          return SiteForm::AssignTo;
  } else if (A.ActionKind == CfgAction::Kind::DeclInit) {
    if (A.Var && A.Var->init() == Site && A.Var->type()->isScalar()) {
      Lhs = A.Var;
      return SiteForm::DeclInitTo;
    }
  }
  return SiteForm::None;
}

bool scalarOnlySignature(const FunctionDecl *F) {
  const Type *Ret = F->type()->returnType();
  if (!Ret->isVoid() && !Ret->isScalar())
    return false;
  for (const VarDecl *P : F->params())
    if (!P->type()->isScalar())
      return false;
  return true;
}

/// Clones callee AST nodes into the caller's context, substituting the
/// callee's frame variables with fresh ones whose cells live in the
/// scratch region appended to the caller's frame.
class RegionCloner {
public:
  RegionCloner(AstContext &Ctx, int64_t RegionOffset, uint32_t SiteTag)
      : Ctx(Ctx), RegionOffset(RegionOffset),
        Suffix(".i" + std::to_string(SiteTag)) {}

  /// The substitute for \p V inside the cloned region. Globals map to
  /// themselves; frame variables map to an init-less clone at the
  /// region-relative offset (initializers run via cloned DeclInit
  /// actions, see declInitVar).
  VarDecl *mapVar(const VarDecl *V) {
    if (V->storage() == StorageKind::Global)
      return const_cast<VarDecl *>(V);
    auto It = VarMap.find(V);
    if (It != VarMap.end())
      return It->second;
    VarDecl *Clone = Ctx.createDecl<VarDecl>(V->loc(), V->name() + Suffix,
                                             V->type(), nullptr,
                                             V->isParam());
    Clone->setStorage(StorageKind::Frame, RegionOffset + V->cellOffset());
    VarMap[V] = Clone;
    return Clone;
  }

  /// The variable a cloned DeclInit action declares: same region cell as
  /// mapVar(V) but carrying the cloned initializer (VarDecl's init is
  /// immutable, so references and the declaring action use two decls
  /// that share one location).
  const VarDecl *declInitVar(const VarDecl *V) {
    VarDecl *Slot = mapVar(V);
    if (!V->init())
      return Slot;
    VarDecl *D = Ctx.createDecl<VarDecl>(V->loc(), Slot->name(),
                                         V->type(), cloneExpr(V->init()),
                                         V->isParam());
    D->setStorage(StorageKind::Frame, Slot->cellOffset());
    return D;
  }

  Expr *cloneExpr(const Expr *E) {
    if (!E)
      return nullptr;
    Expr *C = nullptr;
    switch (E->kind()) {
    case ExprKind::IntLit:
      C = Ctx.create<IntLitExpr>(E->loc(),
                                 exprCast<IntLitExpr>(E)->value());
      break;
    case ExprKind::DoubleLit:
      C = Ctx.create<DoubleLitExpr>(E->loc(),
                                    exprCast<DoubleLitExpr>(E)->value());
      break;
    case ExprKind::StringLit: {
      const auto *X = exprCast<StringLitExpr>(E);
      auto *S = Ctx.create<StringLitExpr>(E->loc(), X->value());
      S->setStringId(X->stringId());
      C = S;
      break;
    }
    case ExprKind::DeclRef: {
      const auto *X = exprCast<DeclRefExpr>(E);
      auto *R = Ctx.create<DeclRefExpr>(E->loc(), X->name());
      Decl *D = X->decl();
      if (D && D->kind() == DeclKind::Var)
        R->setDecl(mapVar(static_cast<const VarDecl *>(D)));
      else
        R->setDecl(D);
      C = R;
      break;
    }
    case ExprKind::Unary: {
      const auto *X = exprCast<UnaryExpr>(E);
      C = Ctx.create<UnaryExpr>(E->loc(), X->op(),
                                cloneExpr(X->operand()));
      break;
    }
    case ExprKind::Binary: {
      const auto *X = exprCast<BinaryExpr>(E);
      C = Ctx.create<BinaryExpr>(E->loc(), X->op(), cloneExpr(X->lhs()),
                                 cloneExpr(X->rhs()));
      break;
    }
    case ExprKind::Assign: {
      const auto *X = exprCast<AssignExpr>(E);
      C = Ctx.create<AssignExpr>(E->loc(), cloneExpr(X->lhs()),
                                 cloneExpr(X->rhs()), X->compoundOp());
      break;
    }
    case ExprKind::Conditional: {
      const auto *X = exprCast<ConditionalExpr>(E);
      C = Ctx.create<ConditionalExpr>(E->loc(), cloneExpr(X->cond()),
                                      cloneExpr(X->trueExpr()),
                                      cloneExpr(X->falseExpr()));
      break;
    }
    case ExprKind::Call: {
      const auto *X = exprCast<CallExpr>(E);
      std::vector<Expr *> Args;
      Args.reserve(X->args().size());
      for (const Expr *A : X->args())
        Args.push_back(cloneExpr(A));
      auto *Call = Ctx.create<CallExpr>(E->loc(), cloneExpr(X->callee()),
                                        std::move(Args));
      // The clone keeps the original call-site id, so nested call counts
      // aggregate onto the same profile slot from every copy.
      Call->setDirectCallee(X->directCallee());
      Call->setCallSiteId(X->callSiteId());
      C = Call;
      break;
    }
    case ExprKind::Index: {
      const auto *X = exprCast<IndexExpr>(E);
      C = Ctx.create<IndexExpr>(E->loc(), cloneExpr(X->base()),
                                cloneExpr(X->index()));
      break;
    }
    case ExprKind::Member: {
      const auto *X = exprCast<MemberExpr>(E);
      auto *Mem = Ctx.create<MemberExpr>(E->loc(), cloneExpr(X->base()),
                                         X->fieldName(), X->isArrow());
      Mem->setFieldOffset(X->fieldOffset());
      C = Mem;
      break;
    }
    case ExprKind::Cast: {
      const auto *X = exprCast<CastExpr>(E);
      C = Ctx.create<CastExpr>(E->loc(), X->targetType(),
                               cloneExpr(X->operand()));
      break;
    }
    case ExprKind::InitList: {
      const auto *X = exprCast<InitListExpr>(E);
      std::vector<Expr *> Elems;
      Elems.reserve(X->elements().size());
      for (const Expr *El : X->elements())
        Elems.push_back(cloneExpr(El));
      C = Ctx.create<InitListExpr>(E->loc(), std::move(Elems));
      break;
    }
    }
    C->setType(E->type());
    return C;
  }

private:
  AstContext &Ctx;
  int64_t RegionOffset;
  std::string Suffix;
  std::map<const VarDecl *, VarDecl *> VarMap;
};

/// Copies \p From's terminator (same successor pointers, condition and
/// origin) onto \p To.
void copyTerminator(const BasicBlock *From, BasicBlock *To) {
  switch (From->terminator()) {
  case TerminatorKind::Goto:
    To->setGoto(From->successors()[0]);
    break;
  case TerminatorKind::CondBranch:
    To->setCondBranch(From->condOrValue(), From->successors()[0],
                      From->successors()[1]);
    break;
  case TerminatorKind::Switch:
    To->setSwitch(From->condOrValue(), From->switchCases(),
                  From->switchDefault());
    break;
  case TerminatorKind::Return:
    To->setReturn(From->condOrValue());
    break;
  case TerminatorKind::Unreachable:
    To->setUnreachable();
    break;
  }
  To->setTerminatorOrigin(From->terminatorOrigin());
}

bool applySite(AstContext &Ctx, CfgModule &Cfgs, const InlineDecision &D,
               InlineMap &M) {
  FunctionDecl *Caller = const_cast<FunctionDecl *>(D.Caller);
  FunctionDecl *Callee = const_cast<FunctionDecl *>(D.Callee);
  Cfg *G = Cfgs.cfg(Caller);
  const Cfg *CalleeG = Cfgs.cfg(Callee);
  if (!G || !CalleeG)
    return false;

  // Locate the site's action in the caller's *current* CFG (an earlier
  // split in the same block may have moved it to a continuation block).
  BasicBlock *B = nullptr;
  size_t ActIdx = 0;
  SiteForm Form = SiteForm::None;
  const VarDecl *Lhs = nullptr;
  for (const auto &BPtr : G->blocks()) {
    const auto &Acts = BPtr->actions();
    for (size_t I = 0; I < Acts.size() && Form == SiteForm::None; ++I) {
      Form = classifyAction(Acts[I], D.Site, Lhs);
      if (Form != SiteForm::None) {
        B = BPtr.get();
        ActIdx = I;
      }
    }
    if (Form != SiteForm::None)
      break;
  }
  if (Form == SiteForm::None)
    return false;
  const Stmt *CallOrigin = B->actions()[ActIdx].Origin;

  const uint32_t CallerFid = Caller->functionId();
  const uint32_t CalleeFid = Callee->functionId();

  // The callee's frame becomes a scratch region appended to the caller's.
  const int64_t RegionOffset = Caller->frameSizeCells();
  Caller->setFrameSizeCells(RegionOffset + Callee->frameSizeCells());
  RegionCloner Cloner(Ctx, RegionOffset, D.CallSiteId);

  std::vector<InlineMap::Origin> &CO = M.CountOrigin[CallerFid];
  std::vector<InlineMap::Origin> &AO = M.ArcOrigin[CallerFid];

  // Split B after the actions preceding the call: the continuation block
  // inherits the suffix actions and B's terminator — and with it the
  // mapping of B's original arc slots.
  BasicBlock *BPost = G->createBlock(B->label() + ".post");
  CO.push_back({});
  AO.push_back(AO[B->id()]);
  AO[B->id()] = {};
  std::vector<CfgAction> &Acts = B->actions();
  BPost->actions().assign(Acts.begin() + ActIdx + 1, Acts.end());
  Acts.erase(Acts.begin() + ActIdx, Acts.end());
  copyTerminator(B, BPost);
  BPost->setAnchor(B->anchor(), B->anchorKind());

  // Clone the callee's blocks.
  std::vector<BasicBlock *> NewB(CalleeG->size());
  for (const auto &CBPtr : CalleeG->blocks()) {
    NewB[CBPtr->id()] = G->createBlock(Callee->name() + ".inl");
    CO.push_back({CalleeFid, CBPtr->id()});
    AO.push_back({});
  }
  for (const auto &CBPtr : CalleeG->blocks()) {
    const BasicBlock *CB = CBPtr.get();
    BasicBlock *NB = NewB[CB->id()];
    for (const CfgAction &A : CB->actions()) {
      if (A.ActionKind == CfgAction::Kind::Eval) {
        NB->actions().push_back(
            {CfgAction::Kind::Eval, A.Origin, Cloner.cloneExpr(A.E),
             nullptr});
      } else if (A.ActionKind == CfgAction::Kind::DeclInit) {
        NB->actions().push_back({CfgAction::Kind::DeclInit, A.Origin,
                                 nullptr, Cloner.declInitVar(A.Var)});
      } else {
        CfgAction Z = A;
        Z.FrameOffset += RegionOffset;
        NB->actions().push_back(Z);
      }
    }
    NB->setAnchor(CB->anchor(), CB->anchorKind());
    switch (CB->terminator()) {
    case TerminatorKind::Goto:
      NB->setGoto(NewB[CB->successors()[0]->id()]);
      AO[NB->id()] = {CalleeFid, CB->id()};
      break;
    case TerminatorKind::CondBranch:
      NB->setCondBranch(Cloner.cloneExpr(CB->condOrValue()),
                        NewB[CB->successors()[0]->id()],
                        NewB[CB->successors()[1]->id()]);
      AO[NB->id()] = {CalleeFid, CB->id()};
      break;
    case TerminatorKind::Switch: {
      std::vector<SwitchCase> Cases = CB->switchCases();
      for (SwitchCase &SC : Cases)
        SC.Target = NewB[SC.Target->id()];
      NB->setSwitch(Cloner.cloneExpr(CB->condOrValue()), std::move(Cases),
                    NewB[CB->switchDefault()->id()]);
      AO[NB->id()] = {CalleeFid, CB->id()};
      break;
    }
    case TerminatorKind::Return: {
      // Return glue: evaluate the return value (converted to the
      // callee's return type, like the call would), store it where the
      // caller stored the call's result, and continue after the call.
      // The original Return has no arc slots, so the Goto's slot has no
      // mapping.
      if (const Expr *Val = CB->condOrValue()) {
        Expr *RetE = Cloner.cloneExpr(Val);
        Expr *Glue = RetE;
        if (Lhs) {
          const Type *RetTy = Callee->type()->returnType();
          auto *Cast = Ctx.create<CastExpr>(Val->loc(), RetTy, RetE);
          Cast->setType(RetTy);
          auto *Ref = Ctx.create<DeclRefExpr>(Val->loc(), Lhs->name());
          Ref->setDecl(const_cast<VarDecl *>(Lhs));
          Ref->setType(Lhs->type());
          auto *Asgn =
              Ctx.create<AssignExpr>(Val->loc(), Ref, Cast, std::nullopt);
          Asgn->setType(Lhs->type());
          Glue = Asgn;
        }
        NB->actions().push_back(
            {CfgAction::Kind::Eval, CallOrigin, Glue, nullptr});
      }
      NB->setGoto(BPost);
      break;
    }
    case TerminatorKind::Unreachable:
      NB->setUnreachable();
      AO[NB->id()] = {CalleeFid, CB->id()};
      break;
    }
    if (CB->terminator() != TerminatorKind::Return)
      NB->setTerminatorOrigin(CB->terminatorOrigin());
  }

  // Rewrite the call in B: zero the scratch region (a fresh frame starts
  // zeroed on every entry), bind parameters from the original argument
  // expressions, and jump into the cloned entry.
  if (Callee->frameSizeCells() > 0) {
    CfgAction Z{CfgAction::Kind::ZeroFrameRange, CallOrigin, nullptr,
                nullptr, RegionOffset, Callee->frameSizeCells()};
    Acts.push_back(Z);
  }
  const std::vector<Expr *> &Args = D.Site->args();
  for (size_t I = 0;
       I < Callee->params().size() && I < Args.size(); ++I) {
    VarDecl *P = Cloner.mapVar(Callee->params()[I]);
    auto *Ref = Ctx.create<DeclRefExpr>(Args[I]->loc(), P->name());
    Ref->setDecl(P);
    Ref->setType(P->type());
    auto *Asgn =
        Ctx.create<AssignExpr>(Args[I]->loc(), Ref, Args[I], std::nullopt);
    Asgn->setType(P->type());
    Acts.push_back({CfgAction::Kind::Eval, CallOrigin, Asgn, nullptr});
  }
  // The region-entry counter. The clone of the callee's entry block
  // cannot serve: the entry may be a loop header, so in-region back
  // edges would add iterations to its count. This empty trampoline
  // executes exactly once per region entry — and, having no actions, a
  // later site applied to the same caller can never split it.
  BasicBlock *RE = G->createBlock(Callee->name() + ".inl.entry");
  CO.push_back({});
  AO.push_back({});
  RE->setGoto(NewB[CalleeG->entry()->id()]);
  B->setGoto(RE);
  B->setTerminatorOrigin(nullptr);
  G->recomputePreds();

  M.Regions.push_back({CallerFid, RE->id(), CalleeFid, D.CallSiteId});
  return true;
}

} // namespace

InlinePlan sest::opt::planInlining(const TranslationUnit &Unit,
                                   const CfgModule &Cfgs,
                                   const CallGraph &CG,
                                   const WeightSource &W,
                                   const InlineOptions &Options) {
  obs::ScopedPhase Phase("opt.inline.plan");
  (void)Unit;
  const bool Log = obs::eventLogActive();
  InlinePlan Plan;
  std::set<const FunctionDecl *> Mutated;
  size_t Growth = 0;
  uint32_t Rank = 0;
  // Decision provenance: every ranked site produces exactly one
  // selected/rejected event with the first reason that disqualified it,
  // in rank order — the log reads as the budget walk itself.
  auto LogReject = [&](const RankedCallSite &R, std::string_view Reason) {
    if (Log)
      obs::logEvent(
          "inline.site.rejected", obs::provCallSite(R.Site->CallSiteId),
          {obs::attr("caller", R.Site->Caller->name()),
           obs::attr("callee",
                     R.Site->Callee ? R.Site->Callee->name() : "<indirect>"),
           obs::attr("origin", W.Origin), obs::attr("reason", Reason),
           obs::attr("weight", R.Weight),
           obs::attr("rank", static_cast<double>(Rank))});
  };
  for (const RankedCallSite &R : rankCallSites(CG, W)) {
    ++Rank;
    if (Plan.Sites.size() >= Options.TopK) {
      LogReject(R, "top-k-budget");
      break;
    }
    if (R.Weight <= 0) {
      LogReject(R, "cold");
      break; // Sorted descending: everything after is cold too.
    }
    const CallSiteInfo *S = R.Site;
    const FunctionDecl *Callee = S->Callee;
    if (!Callee || !Callee->isDefined() || Callee->isBuiltin()) {
      LogReject(R, "callee-undefined-or-builtin");
      continue;
    }
    if (Callee == S->Caller || Callee->name() == "main") {
      LogReject(R, "recursive-or-main");
      continue;
    }
    // A callee whose own CFG was mutated (as a caller) would clone its
    // inlined regions too; keep every clone pristine so the profile
    // map-back stays a direct fold.
    if (Mutated.count(Callee)) {
      LogReject(R, "callee-mutated");
      continue;
    }
    const Cfg *CalleeG = Cfgs.cfg(Callee);
    if (!CalleeG || !Cfgs.cfg(S->Caller)) {
      LogReject(R, "no-cfg");
      continue;
    }
    if (CalleeG->size() > Options.MaxCalleeBlocks) {
      LogReject(R, "callee-too-large");
      continue;
    }
    if (!scalarOnlySignature(Callee)) {
      LogReject(R, "non-scalar-signature");
      continue;
    }
    const VarDecl *Lhs = nullptr;
    SiteForm Form = SiteForm::None;
    for (const CfgAction &A : S->Block->actions()) {
      Form = classifyAction(A, S->Site, Lhs);
      if (Form != SiteForm::None)
        break;
    }
    if (Form == SiteForm::None) {
      LogReject(R, "not-statement-form");
      continue;
    }
    size_t Cost = CalleeG->size() + 1;
    if (Growth + Cost > Options.MaxTotalGrowthBlocks) {
      LogReject(R, "growth-budget");
      continue;
    }
    Growth += Cost;
    Mutated.insert(S->Caller);
    if (Log)
      obs::logEvent("inline.site.selected",
                    obs::provCallSite(S->CallSiteId),
                    {obs::attr("caller", S->Caller->name()),
                     obs::attr("callee", Callee->name()),
                     obs::attr("origin", W.Origin),
                     obs::attr("weight", R.Weight),
                     obs::attr("rank", static_cast<double>(Rank)),
                     obs::attr("cost_blocks", static_cast<double>(Cost))});
    Plan.Sites.push_back({S->CallSiteId, S->Site, S->Caller, Callee,
                          R.Weight});
  }
  obs::counterAdd("opt.inline.planned_sites", Plan.Sites.size());
  return Plan;
}

InlineMap sest::opt::applyInlining(AstContext &Ctx, CfgModule &Cfgs,
                                   const InlinePlan &Plan) {
  obs::ScopedPhase Phase("opt.inline.apply");
  const TranslationUnit &Unit = Ctx.unit();
  InlineMap M;
  const size_t NumF = Unit.Functions.size();
  M.CountOrigin.resize(NumF);
  M.ArcOrigin.resize(NumF);
  M.OrigNumBlocks.assign(NumF, 0);
  M.OrigArcSlots.resize(NumF);
  for (const auto &[F, G] : Cfgs.all()) {
    const uint32_t Fid = F->functionId();
    const uint32_t N = static_cast<uint32_t>(G->size());
    M.OrigNumBlocks[Fid] = N;
    M.OrigArcSlots[Fid].resize(N);
    M.CountOrigin[Fid].resize(N);
    M.ArcOrigin[Fid].resize(N);
    for (const auto &B : G->blocks()) {
      M.OrigArcSlots[Fid][B->id()] =
          static_cast<uint32_t>(B->successors().size());
      M.CountOrigin[Fid][B->id()] = {Fid, B->id()};
      M.ArcOrigin[Fid][B->id()] = {Fid, B->id()};
    }
  }
  uint64_t BlocksBefore = 0;
  for (const auto &[F, G] : Cfgs.all())
    BlocksBefore += G->size();
  for (const InlineDecision &D : Plan.Sites)
    if (applySite(Ctx, Cfgs, D, M))
      M.Applied.push_back(D);
  uint64_t BlocksAfter = 0;
  for (const auto &[F, G] : Cfgs.all())
    BlocksAfter += G->size();
  obs::counterAdd("opt.inline.applied_sites", M.Applied.size());
  obs::counterAdd("opt.inline.blocks_added", BlocksAfter - BlocksBefore);
  return M;
}

Profile sest::opt::mapInlinedProfile(const InlineMap &M,
                                     const Profile &P) {
  Profile Out;
  Out.ProgramName = P.ProgramName;
  Out.InputName = P.InputName;
  Out.TotalCycles = P.TotalCycles;
  Out.Functions.resize(M.OrigNumBlocks.size());
  for (size_t Fid = 0; Fid < Out.Functions.size(); ++Fid) {
    FunctionProfile &OF = Out.Functions[Fid];
    const uint32_t N = M.OrigNumBlocks[Fid];
    OF.BlockCounts.assign(N, 0.0);
    OF.ArcCounts.resize(N);
    for (uint32_t B = 0; B < N; ++B)
      OF.ArcCounts[B].assign(M.OrigArcSlots[Fid][B], 0.0);
  }
  for (size_t Fid = 0;
       Fid < P.Functions.size() && Fid < Out.Functions.size(); ++Fid) {
    const FunctionProfile &FP = P.Functions[Fid];
    Out.Functions[Fid].EntryCount = FP.EntryCount;
    const auto &CO = M.CountOrigin[Fid];
    const auto &AO = M.ArcOrigin[Fid];
    for (size_t B = 0; B < FP.BlockCounts.size(); ++B) {
      if (B < CO.size() && CO[B].valid())
        Out.Functions[CO[B].Fid].BlockCounts[CO[B].Block] +=
            FP.BlockCounts[B];
      if (B < AO.size() && AO[B].valid() && B < FP.ArcCounts.size()) {
        std::vector<double> &Dst =
            Out.Functions[AO[B].Fid].ArcCounts[AO[B].Block];
        const std::vector<double> &Src = FP.ArcCounts[B];
        for (size_t S = 0; S < Src.size() && S < Dst.size(); ++S)
          Dst[S] += Src[S];
      }
    }
  }
  Out.CallSiteCounts = P.CallSiteCounts;
  for (const InlineMap::RegionEntry &R : M.Regions) {
    if (R.CallerFid >= P.Functions.size())
      continue;
    const FunctionProfile &FP = P.Functions[R.CallerFid];
    if (R.EntryBlock >= FP.BlockCounts.size())
      continue;
    const double Entries = FP.BlockCounts[R.EntryBlock];
    Out.Functions[R.CalleeFid].EntryCount += Entries;
    if (R.CallSiteId < Out.CallSiteCounts.size())
      Out.CallSiteCounts[R.CallSiteId] += Entries;
  }
  return Out;
}

InlineVerifyResult sest::opt::compareInlinedRun(const RunResult &Base,
                                               const RunResult &Inlined,
                                               const InlineMap &M) {
  InlineVerifyResult R;
  auto Fail = [&](std::string Detail) {
    R.Match = false;
    if (R.Detail.empty())
      R.Detail = std::move(Detail);
  };
  if (Base.Ok != Inlined.Ok) {
    Fail("completion status differs (base " +
         std::string(Base.Ok ? "ok" : "aborted") + ", inlined " +
         std::string(Inlined.Ok ? "ok" : "aborted") + ")");
    return R;
  }
  if (Base.Output != Inlined.Output)
    Fail("output differs");
  if (Base.ExitCode != Inlined.ExitCode)
    Fail("exit code differs");
  if (!Base.Ok || !R.Match)
    return R; // Aborted runs stop at engine-specific points; no profile
              // comparison.

  const Profile Mapped = mapInlinedProfile(M, Inlined.TheProfile);
  const Profile &BP = Base.TheProfile;
  if (BP.Functions.size() != Mapped.Functions.size()) {
    Fail("function count differs");
    return R;
  }
  for (size_t Fid = 0; Fid < BP.Functions.size() && R.Match; ++Fid) {
    const FunctionProfile &A = BP.Functions[Fid];
    const FunctionProfile &B = Mapped.Functions[Fid];
    if (A.EntryCount != B.EntryCount)
      Fail("entry count differs for function " + std::to_string(Fid));
    if (A.BlockCounts != B.BlockCounts)
      Fail("block counts differ for function " + std::to_string(Fid));
    if (A.ArcCounts != B.ArcCounts)
      Fail("arc counts differ for function " + std::to_string(Fid));
  }
  if (R.Match && BP.CallSiteCounts != Mapped.CallSiteCounts)
    Fail("call-site counts differ");
  return R;
}

//===- opt/Inline.h - Call-site inlining ------------------------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Call-site inlining at the CFG level: the callee's blocks are cloned
/// into the caller at the top-K hottest eligible call sites (ranked by a
/// WeightSource, so estimates and profiles drive the same pass), with
/// the callee's frame mapped onto fresh cells appended to the caller's
/// frame. The transformation is semantics-preserving by construction and
/// verified by differential interpretation: an inlined program must
/// produce the same output, exit code, and — after mapInlinedProfile
/// folds cloned blocks back onto their originals — the same profile as
/// the uninlined program on every input.
///
/// Inlined call sites stop paying the interpreters' call/return overhead
/// (LayoutCostCounters::Calls/Returns), which is the realized benefit
/// the OptReport scores.
///
//===----------------------------------------------------------------------===//

#ifndef OPT_INLINE_H
#define OPT_INLINE_H

#include "callgraph/CallGraph.h"
#include "cfg/Cfg.h"
#include "interp/Interp.h"
#include "lang/Ast.h"
#include "opt/WeightSource.h"
#include "profile/Profile.h"

#include <cstdint>
#include <string>
#include <vector>

namespace sest {
namespace opt {

/// Inlining budgets.
struct InlineOptions {
  /// Maximum number of call sites inlined per program.
  unsigned TopK = 8;
  /// Callees with more CFG blocks than this are never inlined.
  size_t MaxCalleeBlocks = 24;
  /// Total program growth budget, in blocks (each applied site adds the
  /// callee's block count plus one continuation block).
  size_t MaxTotalGrowthBlocks = 200;
};

/// One call site chosen for inlining.
struct InlineDecision {
  uint32_t CallSiteId = UINT32_MAX;
  const CallExpr *Site = nullptr;
  const FunctionDecl *Caller = nullptr;
  const FunctionDecl *Callee = nullptr;
  double Weight = 0.0;
};

/// The ordered set of sites to inline (hottest first; this is also the
/// application order).
struct InlinePlan {
  std::vector<InlineDecision> Sites;
};

/// Selects the top-K hottest eligible sites under the budgets. A site is
/// eligible when it is a direct call in statement position (a standalone
/// call, a plain scalar assignment from a call, or a scalar declaration
/// initialized by a call), the callee is defined, non-builtin, not
/// "main", not the caller itself, has only scalar parameters and a
/// scalar-or-void return type, fits MaxCalleeBlocks, and the site's
/// weight is positive. Callees whose own CFG was already mutated as a
/// caller earlier in the plan are skipped, so every clone comes from a
/// pristine CFG (keeps profile map-back exact). Deterministic: ranked by
/// weight descending, call-site id ascending.
InlinePlan planInlining(const TranslationUnit &Unit, const CfgModule &Cfgs,
                        const CallGraph &CG, const WeightSource &W,
                        const InlineOptions &Options = {});

/// How inlined profile entities fold back onto the original program:
/// built by applyInlining, consumed by mapInlinedProfile.
struct InlineMap {
  /// Where one post-inline entity's counts belong in the original
  /// program; invalid entries are dropped (their counts are duplicates
  /// of an entity that is already mapped).
  struct Origin {
    uint32_t Fid = UINT32_MAX;
    uint32_t Block = UINT32_MAX;
    bool valid() const { return Fid != UINT32_MAX; }
  };
  /// [function id][post-inline block id] -> original block whose
  /// BlockCounts this block contributes to.
  std::vector<std::vector<Origin>> CountOrigin;
  /// [function id][post-inline block id] -> original block whose
  /// ArcCounts slots this block's slots map onto 1:1.
  std::vector<std::vector<Origin>> ArcOrigin;
  /// One inlined region: executing its entry block is what used to be a
  /// call — it contributes to the callee's EntryCount and the site's
  /// CallSiteCounts.
  struct RegionEntry {
    uint32_t CallerFid = 0;
    uint32_t EntryBlock = 0;
    uint32_t CalleeFid = 0;
    uint32_t CallSiteId = 0;
  };
  std::vector<RegionEntry> Regions;
  /// Pre-inline profile shape, for building the mapped profile.
  std::vector<uint32_t> OrigNumBlocks;
  std::vector<std::vector<uint32_t>> OrigArcSlots;
  /// The sites actually applied (plan order).
  std::vector<InlineDecision> Applied;
};

/// Applies \p Plan in order, mutating the caller CFGs in \p Cfgs and
/// allocating cloned AST nodes / frame cells from \p Ctx (function
/// frames grow; sites that can no longer be located are skipped).
/// The mutated program is a normal executable program: run it with the
/// unchanged runProgram. Do not rebuild the CallGraph or call
/// Cfg::simplify() afterwards — cloned call sites reuse their original
/// call-site ids, and the profile map-back depends on the block ids this
/// pass assigns.
InlineMap applyInlining(AstContext &Ctx, CfgModule &Cfgs,
                        const InlinePlan &Plan);

/// Folds a profile collected from the inlined program back onto the
/// original program's shape: cloned blocks/arcs add onto their callee
/// originals, region entries restore the callee's EntryCount and the
/// inlined site's count. On a successful run the result equals the
/// uninlined program's profile exactly (TotalCycles excluded — inlining
/// legitimately removes evaluation steps).
Profile mapInlinedProfile(const InlineMap &M, const Profile &P);

/// Differential verification verdict for one input.
struct InlineVerifyResult {
  bool Match = true;
  std::string Detail; ///< First difference, empty when Match.
};

/// Compares a baseline run of the original program against a run of the
/// inlined program on the same input: Ok/Output/ExitCode must be equal,
/// and for successful runs the mapped inlined profile must equal the
/// baseline profile bit-exactly.
InlineVerifyResult compareInlinedRun(const RunResult &Base,
                                     const RunResult &Inlined,
                                     const InlineMap &M);

} // namespace opt
} // namespace sest

#endif // OPT_INLINE_H

//===- opt/Layout.cpp - Basic-block layout & branch hints -----------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "opt/Layout.h"

#include "obs/EventLog.h"
#include "obs/Telemetry.h"

#include <algorithm>
#include <cmath>

using namespace sest;
using namespace sest::opt;

ProgramBlockOrder ProgramLayout::blockOrder() const {
  ProgramBlockOrder Out(Functions.size());
  for (size_t Fid = 0; Fid < Functions.size(); ++Fid)
    Out[Fid] = Functions[Fid].Order;
  return Out;
}

namespace {

/// One candidate arc for chaining.
struct ChainArc {
  double Weight;
  uint32_t Src;
  uint32_t Slot;
  uint32_t Dst;
};

FunctionLayout layoutFunction(const Cfg &G, uint32_t Fid,
                              std::string_view Fn, const WeightSource &W,
                              const LayoutOptions &Options) {
  const bool Log = obs::eventLogActive();
  FunctionLayout L;
  const uint32_t N = static_cast<uint32_t>(G.size());
  const uint32_t EntryId = G.entry()->id();

  // Gather positive-weight arcs, excluding self-loops and arcs into the
  // entry (the entry must stay first; chaining into it would demote it).
  std::vector<ChainArc> Arcs;
  for (const auto &BPtr : G.blocks()) {
    const BasicBlock *B = BPtr.get();
    const auto &Succs = B->successors();
    for (uint32_t S = 0; S < Succs.size(); ++S) {
      uint32_t Dst = Succs[S]->id();
      double Weight = W.arcWeight(Fid, B->id(), S);
      if (Weight <= 0 || Dst == B->id() || Dst == EntryId)
        continue;
      Arcs.push_back({Weight, B->id(), S, Dst});
    }
  }
  std::stable_sort(Arcs.begin(), Arcs.end(),
                   [](const ChainArc &A, const ChainArc &B) {
                     if (A.Weight != B.Weight)
                       return A.Weight > B.Weight;
                     if (A.Src != B.Src)
                       return A.Src < B.Src;
                     return A.Slot < B.Slot;
                   });

  // Pettis–Hansen merge: walk arcs hot-first; merge when the source is
  // still a chain tail and the destination a chain head.
  std::vector<std::vector<uint32_t>> Chains(N);
  std::vector<uint32_t> ChainOf(N);
  for (uint32_t B = 0; B < N; ++B) {
    Chains[B] = {B};
    ChainOf[B] = B;
  }
  for (const ChainArc &A : Arcs) {
    uint32_t CS = ChainOf[A.Src], CD = ChainOf[A.Dst];
    if (CS == CD || Chains[CS].back() != A.Src ||
        Chains[CD].front() != A.Dst)
      continue;
    if (Log)
      obs::logEvent("layout.chain.merge", obs::provBlock(Fn, A.Src),
                    {obs::attr("function", Fn),
                     obs::attr("origin", W.Origin),
                     obs::attr("to", static_cast<double>(A.Dst)),
                     obs::attr("slot", static_cast<double>(A.Slot)),
                     obs::attr("weight", A.Weight)});
    for (uint32_t B : Chains[CD]) {
      Chains[CS].push_back(B);
      ChainOf[B] = CS;
    }
    Chains[CD].clear();
  }

  // Classify chains: the entry chain leads; the rest are hot (ordered by
  // total block weight, hottest first) unless every block is below
  // ColdFraction of the function's hottest block — those are outlined.
  double MaxBlockWeight = 0;
  for (uint32_t B = 0; B < N; ++B)
    MaxBlockWeight = std::max(MaxBlockWeight, W.blockWeight(Fid, B));
  const double ColdCutoff = Options.ColdFraction * MaxBlockWeight;

  struct RankedChain {
    uint32_t Index;
    double TotalWeight;
    uint32_t MinBlock;
    bool Cold;
  };
  std::vector<RankedChain> Hot, Cold;
  uint32_t EntryChain = ChainOf[EntryId];
  for (uint32_t C = 0; C < N; ++C) {
    if (Chains[C].empty() || C == EntryChain)
      continue;
    RankedChain R{C, 0.0, Chains[C].front(), true};
    for (uint32_t B : Chains[C]) {
      double BW = W.blockWeight(Fid, B);
      R.TotalWeight += BW;
      R.MinBlock = std::min(R.MinBlock, B);
      if (BW >= ColdCutoff && BW > 0)
        R.Cold = false;
    }
    (R.Cold ? Cold : Hot).push_back(R);
  }
  std::stable_sort(Hot.begin(), Hot.end(),
                   [](const RankedChain &A, const RankedChain &B) {
                     if (A.TotalWeight != B.TotalWeight)
                       return A.TotalWeight > B.TotalWeight;
                     return A.MinBlock < B.MinBlock;
                   });
  std::stable_sort(Cold.begin(), Cold.end(),
                   [](const RankedChain &A, const RankedChain &B) {
                     return A.MinBlock < B.MinBlock;
                   });

  L.Order.reserve(N);
  for (uint32_t B : Chains[EntryChain])
    L.Order.push_back(B);
  for (const RankedChain &R : Hot)
    for (uint32_t B : Chains[R.Index])
      L.Order.push_back(B);
  L.FirstColdPos = static_cast<uint32_t>(L.Order.size());
  for (const RankedChain &R : Cold)
    for (uint32_t B : Chains[R.Index])
      L.Order.push_back(B);
  if (Cold.empty())
    L.FirstColdPos = static_cast<uint32_t>(L.Order.size());
  else if (Log)
    obs::logEvent(
        "layout.cold.boundary",
        obs::provBlock(Fn, L.Order[L.FirstColdPos]),
        {obs::attr("function", Fn), obs::attr("origin", W.Origin),
         obs::attr("position", static_cast<double>(L.FirstColdPos)),
         obs::attr("outlined_blocks",
                   static_cast<double>(N - L.FirstColdPos))});

  L.NumChains = static_cast<uint32_t>(1 + Hot.size() + Cold.size());
  L.Pos.resize(N);
  for (uint32_t I = 0; I < N; ++I)
    L.Pos[L.Order[I]] = I;
  return L;
}

} // namespace

ProgramLayout sest::opt::computeBlockLayout(const TranslationUnit &Unit,
                                            const CfgModule &Cfgs,
                                            const WeightSource &W,
                                            const LayoutOptions &Options) {
  obs::ScopedPhase Phase("opt.layout");
  ProgramLayout PL;
  PL.Functions.resize(Unit.Functions.size());
  uint64_t Reordered = 0;
  for (const auto &[F, G] : Cfgs.all()) {
    FunctionLayout &L = PL.Functions[F->functionId()];
    L = layoutFunction(*G, F->functionId(), F->name(), W, Options);
    if (!L.isIdentity())
      ++Reordered;
  }
  obs::counterAdd("opt.layout.functions", Cfgs.all().size());
  obs::counterAdd("opt.layout.reordered_functions", Reordered);
  return PL;
}

ProgramLayout sest::opt::identityLayout(const TranslationUnit &Unit,
                                        const CfgModule &Cfgs) {
  ProgramLayout PL;
  PL.Functions.resize(Unit.Functions.size());
  for (const auto &[F, G] : Cfgs.all()) {
    FunctionLayout &L = PL.Functions[F->functionId()];
    const uint32_t N = static_cast<uint32_t>(G->size());
    L.Order.resize(N);
    L.Pos.resize(N);
    for (uint32_t I = 0; I < N; ++I) {
      L.Order[I] = I;
      L.Pos[I] = I;
    }
    L.NumChains = 1;
    L.FirstColdPos = N;
  }
  return PL;
}

BranchHints sest::opt::computeBranchHints(const TranslationUnit &Unit,
                                          const CfgModule &Cfgs,
                                          const WeightSource &W) {
  obs::ScopedPhase Phase("opt.branch_hints");
  const bool Log = obs::eventLogActive();
  BranchHints H;
  H.PredictedSlot.resize(Unit.Functions.size());
  for (const auto &[F, G] : Cfgs.all()) {
    uint32_t Fid = F->functionId();
    std::vector<int> &Row = H.PredictedSlot[Fid];
    Row.assign(G->size(), -1);
    for (const auto &BPtr : G->blocks()) {
      const BasicBlock *B = BPtr.get();
      const auto &Succs = B->successors();
      if (Succs.size() < 2)
        continue;
      uint32_t Best = 0;
      double BestWeight = W.arcWeight(Fid, B->id(), 0);
      for (uint32_t S = 1; S < Succs.size(); ++S) {
        double Weight = W.arcWeight(Fid, B->id(), S);
        if (Weight > BestWeight) {
          BestWeight = Weight;
          Best = S;
        }
      }
      Row[B->id()] = static_cast<int>(Best);
      if (W.blockWeight(Fid, B->id()) > 0)
        for (uint32_t S = 0; S < Succs.size(); ++S)
          if (W.arcWeight(Fid, B->id(), S) <= 0) {
            H.NeverTaken.push_back({Fid, B->id(), S});
            if (Log)
              obs::logEvent("layout.hint.never_taken",
                            obs::provBlock(F->name(), B->id()),
                            {obs::attr("function", F->name()),
                             obs::attr("origin", W.Origin),
                             obs::attr("slot", static_cast<double>(S))});
          }
    }
  }
  obs::counterAdd("opt.hints.never_taken_arcs", H.NeverTaken.size());
  return H;
}

LayoutCostCounters
sest::opt::reclassifyLayoutCost(const TranslationUnit &Unit,
                                const CfgModule &Cfgs, const Profile &P,
                                const ProgramBlockOrder *Layout,
                                const LayoutCostCounters &Base) {
  std::vector<std::vector<uint32_t>> Pos =
      layoutPositions(Unit, Cfgs, Layout);
  LayoutCostCounters C;
  C.Calls = Base.Calls;
  C.Returns = Base.Returns;
  for (const auto &[F, G] : Cfgs.all()) {
    uint32_t Fid = F->functionId();
    if (Fid >= P.Functions.size())
      continue;
    const FunctionProfile &FP = P.Functions[Fid];
    const std::vector<uint32_t> &Row = Pos[Fid];
    for (const auto &BPtr : G->blocks()) {
      const BasicBlock *B = BPtr.get();
      if (B->id() >= FP.ArcCounts.size())
        continue;
      const std::vector<double> &Slots = FP.ArcCounts[B->id()];
      const auto &Succs = B->successors();
      for (uint32_t S = 0; S < Succs.size() && S < Slots.size(); ++S) {
        uint64_t Count = static_cast<uint64_t>(std::llround(Slots[S]));
        if (!Count)
          continue;
        if (Row[Succs[S]->id()] == Row[B->id()] + 1)
          C.FallThrough += Count;
        else
          C.Taken += Count;
      }
    }
  }
  return C;
}

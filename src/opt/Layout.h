//===- opt/Layout.h - Basic-block layout & branch hints ---------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pettis–Hansen-style basic-block layout: greedily chain blocks along
/// their hottest arcs so the common path becomes fall-throughs, order
/// chains hot-first, and outline cold chains to the end of the function.
/// Also: branch-hint assignment (the predicted successor slot per
/// multi-way terminator, and the arcs never predicted taken — the
/// cold-code outliner's input), and post-hoc reclassification of a
/// profile's arc counts under a layout, which is the differential oracle
/// for the interpreters' dynamic LayoutCostCounters.
///
/// Everything here consumes a WeightSource, so each pass runs unchanged
/// from static estimates or measured profiles.
///
//===----------------------------------------------------------------------===//

#ifndef OPT_LAYOUT_H
#define OPT_LAYOUT_H

#include "cfg/Cfg.h"
#include "interp/Interp.h"
#include "lang/Ast.h"
#include "opt/WeightSource.h"
#include "profile/Profile.h"

#include <cstdint>
#include <vector>

namespace sest {
namespace opt {

/// Layout knobs.
struct LayoutOptions {
  /// A chain is "cold" (outlined to the end of the function) when every
  /// block in it has weight below ColdFraction times the function's
  /// hottest block. The entry chain is never cold.
  double ColdFraction = 0.01;
};

/// The computed layout of one function.
struct FunctionLayout {
  /// Position -> block id (a permutation of 0..N-1).
  std::vector<uint32_t> Order;
  /// Block id -> position (inverse of Order).
  std::vector<uint32_t> Pos;
  /// Number of chains the blocks were grouped into.
  uint32_t NumChains = 0;
  /// Position of the first outlined cold block; == Order.size() when
  /// nothing was outlined.
  uint32_t FirstColdPos = 0;

  bool isIdentity() const {
    for (uint32_t I = 0; I < Order.size(); ++I)
      if (Order[I] != I)
        return false;
    return true;
  }
};

/// Layouts for every function, indexed by function id (empty rows for
/// builtins/undefined functions).
struct ProgramLayout {
  std::vector<FunctionLayout> Functions;

  /// The per-function block orders in the shape both interpreter engines
  /// consume (InterpOptions::Layout).
  ProgramBlockOrder blockOrder() const;
};

/// Runs the chaining pass over every defined function.
ProgramLayout computeBlockLayout(const TranslationUnit &Unit,
                                 const CfgModule &Cfgs,
                                 const WeightSource &W,
                                 const LayoutOptions &Options = {});

/// The identity layout (blocks in id order) — the CFG builder's original
/// order, for baselines and differential tests.
ProgramLayout identityLayout(const TranslationUnit &Unit,
                             const CfgModule &Cfgs);

/// Branch hints: for every multi-successor terminator, the slot the
/// weights predict, and the set of arcs never predicted taken (weight
/// zero) — candidates for cold outlining / error paths.
struct BranchHints {
  /// [function id][block id] = predicted successor slot, or -1 for
  /// blocks without a multi-successor terminator.
  std::vector<std::vector<int>> PredictedSlot;
  /// One never-predicted-taken arc.
  struct ColdArc {
    uint32_t Fid = 0;
    uint32_t Block = 0;
    uint32_t Slot = 0;
  };
  /// Arcs with weight zero whose block has weight > 0 (reachable code
  /// guarding a path the weights say is never taken), in (fid, block,
  /// slot) order.
  std::vector<ColdArc> NeverTaken;
};

/// Computes branch hints from \p W. Deterministic: ties between equal
/// slot weights resolve to the lowest slot.
BranchHints computeBranchHints(const TranslationUnit &Unit,
                               const CfgModule &Cfgs,
                               const WeightSource &W);

/// Reclassifies a measured profile's arc traversals under \p Layout:
/// every ArcCounts entry becomes FallThrough when the successor is
/// layout-adjacent, Taken otherwise. Calls/Returns are layout-independent
/// but not derivable from a Profile (exits and aborts leave frames
/// unreturned), so they are carried over from \p Base — pass the
/// counters of the run that produced \p P. The result for layout L
/// equals the counters of re-running the same input with
/// InterpOptions::Layout = L, which is the oracle the differential
/// tests pin.
LayoutCostCounters reclassifyLayoutCost(const TranslationUnit &Unit,
                                        const CfgModule &Cfgs,
                                        const Profile &P,
                                        const ProgramBlockOrder *Layout,
                                        const LayoutCostCounters &Base);

} // namespace opt
} // namespace sest

#endif // OPT_LAYOUT_H

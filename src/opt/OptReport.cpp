//===- opt/OptReport.cpp - End-to-end optimization scoring ----------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "opt/OptReport.h"

#include "backend/Backend.h"
#include "backend/Native.h"
#include "interp/bytecode/BytecodeCompiler.h"
#include "obs/EventLog.h"
#include "obs/Telemetry.h"
#include "support/Hash.h"
#include "support/Json.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <thread>
#include <tuple>

using namespace sest;
using namespace sest::opt;

const char *sest::opt::optPassSetName(OptPassSet Passes) {
  switch (Passes) {
  case OptPassSet::Layout:
    return "layout";
  case OptPassSet::Inline:
    return "inline";
  case OptPassSet::All:
    return "all";
  }
  return "all";
}

namespace {

/// Adjacent (block, next-block) pairs of a whole-program layout, tagged
/// by function id.
std::set<std::tuple<uint32_t, uint32_t, uint32_t>>
adjacentPairs(const ProgramLayout &L) {
  std::set<std::tuple<uint32_t, uint32_t, uint32_t>> Pairs;
  for (uint32_t Fid = 0; Fid < L.Functions.size(); ++Fid) {
    const std::vector<uint32_t> &Order = L.Functions[Fid].Order;
    for (size_t I = 0; I + 1 < Order.size(); ++I)
      Pairs.insert({Fid, Order[I], Order[I + 1]});
  }
  return Pairs;
}

template <typename T>
double jaccard(const std::set<T> &A, const std::set<T> &B) {
  if (A.empty() && B.empty())
    return 1.0;
  size_t Inter = 0;
  for (const T &X : A)
    Inter += B.count(X);
  const size_t Uni = A.size() + B.size() - Inter;
  return Uni ? static_cast<double>(Inter) / static_cast<double>(Uni)
             : 1.0;
}

uint32_t outlinedBlocks(const ProgramLayout &L) {
  uint32_t N = 0;
  for (const FunctionLayout &F : L.Functions)
    N += static_cast<uint32_t>(F.Order.size()) - F.FirstColdPos;
  return N;
}

uint32_t reorderedFunctions(const ProgramLayout &L) {
  uint32_t N = 0;
  for (const FunctionLayout &F : L.Functions)
    if (!F.Order.empty() && !F.isIdentity())
      ++N;
  return N;
}

/// Bitwise profile identity — the same predicate the engine
/// differential tests use (any drift is a lowering bug, not noise).
bool profilesIdentical(const Profile &A, const Profile &B) {
  if (A.Functions.size() != B.Functions.size() ||
      A.CallSiteCounts != B.CallSiteCounts ||
      A.TotalCycles != B.TotalCycles)
    return false;
  for (size_t I = 0; I < A.Functions.size(); ++I) {
    const FunctionProfile &FA = A.Functions[I];
    const FunctionProfile &FB = B.Functions[I];
    if (FA.EntryCount != FB.EntryCount ||
        FA.BlockCounts != FB.BlockCounts || FA.ArcCounts != FB.ArcCounts)
      return false;
  }
  return true;
}

/// MeasureNative: compile the identity-layout and static-layout native
/// binaries for one program and race them on the evaluation input.
/// \p PredictedCost is the classifier's reclassified layout cost — the
/// layout binary's real counters must reproduce it exactly.
NativeTimingResult measureNative(const TranslationUnit &Unit,
                                 const CfgModule &Cfgs,
                                 const ProgramInput &EvalInput,
                                 const ProgramLayout &StaticLayout,
                                 double PredictedCost,
                                 const InterpOptions &RunOpts) {
  NativeTimingResult N;
  std::string Why;
  if (!backend::nativeEngineAvailable(&Why)) {
    N.Detail = Why;
    return N;
  }
  const bc::BcModule Bc = bc::compileBytecode(Unit, Cfgs);
  backend::NativeLayoutPlan Identity;
  backend::NativeLayoutPlan Plan;
  Plan.Order = StaticLayout.blockOrder();
  Plan.FirstColdPos.reserve(StaticLayout.Functions.size());
  for (const FunctionLayout &F : StaticLayout.Functions)
    Plan.FirstColdPos.push_back(F.FirstColdPos);

  std::string Err;
  const backend::Backend &BE = backend::cBackend();
  auto AId = BE.compile(Unit, Cfgs, Bc, Identity, &Err);
  if (!AId) {
    N.Detail = "identity-layout compile failed: " + Err;
    return N;
  }
  auto ALay = BE.compile(Unit, Cfgs, Bc, Plan, &Err);
  if (!ALay) {
    N.Detail = "layout-true compile failed: " + Err;
    return N;
  }
  N.IdentityCompileMs = AId->compileMs();
  N.LayoutCompileMs = ALay->compileMs();

  // Best-of-3 wall times; the first run's results feed the checks.
  auto Race = [&](const backend::NativeArtifact &A, RunResult &First) {
    double Best = 0.0;
    for (int I = 0; I < 3; ++I) {
      const auto T0 = std::chrono::steady_clock::now();
      RunResult R = A.run(Unit, Cfgs, EvalInput, RunOpts);
      const double Ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - T0)
              .count();
      if (I == 0) {
        First = std::move(R);
        Best = Ms;
      } else {
        Best = std::min(Best, Ms);
      }
    }
    return Best;
  };
  RunResult RId, RLay;
  N.IdentityWallMs = Race(*AId, RId);
  N.LayoutWallMs = Race(*ALay, RLay);
  if (!RId.Ok || !RLay.Ok) {
    N.Detail = "native run failed: " +
               (RId.Ok ? RLay.Error : RId.Error);
    return N;
  }
  N.Available = true;
  N.ProfilesMatch = RId.Output == RLay.Output &&
                    RId.ExitCode == RLay.ExitCode &&
                    profilesIdentical(RId.TheProfile, RLay.TheProfile);
  N.LayoutCostMatch = RLay.LayoutCost.cost() == PredictedCost;
  return N;
}

OptProgramReport scoreProgram(const CompiledSuiteProgram &CSP,
                              const OptReportOptions &Options) {
  obs::ScopedPhase Phase("opt.report.program", CSP.Spec->Name);
  const bool DoLayout = Options.Passes != OptPassSet::Inline;
  const bool DoInline = Options.Passes != OptPassSet::Layout;

  OptProgramReport R;
  R.Name = CSP.Spec->Name;
  R.ProgramHash = hashHex(contentHash64(CSP.Spec->Source));
  if (!CSP.Ok || CSP.Profiles.size() < 2) {
    R.Error = CSP.Ok ? "needs at least two inputs" : CSP.Error;
    return R;
  }
  const size_t EvalIdx = CSP.Profiles.size() - 1;
  R.EvalInput = CSP.Spec->Inputs[EvalIdx].Name;
  const TranslationUnit &Unit = CSP.unit();

  // Weight sources: static pipeline, first profile, held-out aggregate.
  EstimatorOptions Est = Options.Est;
  Est.Jobs = 1; // Parallelism is across programs.
  const ProgramEstimate Estimate =
      estimateProgram(Unit, *CSP.Cfgs, *CSP.CG, Est);
  const WeightSource WStatic =
      weightsFromEstimate(Unit, *CSP.Cfgs, Estimate, Est);
  const WeightSource WProfile =
      weightsFromProfile(Unit, CSP.Profiles[0], "profile");
  Profile Held = aggregateExcept(CSP.Profiles, EvalIdx);
  const WeightSource WOracle = weightsFromProfile(Unit, Held, "oracle");
  const WeightSource *Sources[3] = {&WStatic, &WProfile, &WOracle};

  // Identity-layout baseline runs of every input (exact re-runs of the
  // profiling pass, now also carrying LayoutCostCounters).
  InterpOptions RunOpts;
  RunOpts.Engine = Options.Engine;
  std::vector<RunResult> BaseRuns(CSP.Profiles.size());
  for (size_t I = 0; I < BaseRuns.size(); ++I) {
    BaseRuns[I] = runProgram(Unit, *CSP.Cfgs, CSP.Spec->Inputs[I],
                             RunOpts);
    if (!BaseRuns[I].Ok) {
      R.Error = "baseline run failed on input " +
                CSP.Spec->Inputs[I].Name + ": " + BaseRuns[I].Error;
      return R;
    }
  }
  const LayoutCostCounters &BaseCost = BaseRuns[EvalIdx].LayoutCost;
  R.IdentityCost = BaseCost.cost();

  if (DoLayout) {
    ProgramLayout Layouts[3];
    for (int S = 0; S < 3; ++S) {
      Layouts[S] = computeBlockLayout(Unit, *CSP.Cfgs, *Sources[S],
                                      Options.Layout);
      const ProgramBlockOrder Order = Layouts[S].blockOrder();
      const LayoutCostCounters C = reclassifyLayoutCost(
          Unit, *CSP.Cfgs, CSP.Profiles[EvalIdx], &Order, BaseCost);
      LayoutSourceResult LR;
      LR.Source = Sources[S]->Origin;
      LR.Cost = C.cost();
      LR.Reduction =
          R.IdentityCost > 0
              ? (R.IdentityCost - LR.Cost) / R.IdentityCost
              : 0.0;
      LR.ReorderedFunctions = reorderedFunctions(Layouts[S]);
      LR.OutlinedBlocks = outlinedBlocks(Layouts[S]);
      R.Layout.push_back(std::move(LR));

      if (S == 0) {
        // Cross-check: a real run under the static layout must count
        // exactly what the reclassification predicts, and the layout
        // must not change behavior.
        InterpOptions LayoutOpts = RunOpts;
        LayoutOpts.Layout = &Order;
        const RunResult Real = runProgram(
            Unit, *CSP.Cfgs, CSP.Spec->Inputs[EvalIdx], LayoutOpts);
        R.VmCrossCheckOk = Real.Ok && Real.LayoutCost == C &&
                           Real.Output == BaseRuns[EvalIdx].Output;
      }
    }
    R.LayoutPairOverlap =
        jaccard(adjacentPairs(Layouts[0]), adjacentPairs(Layouts[1]));

    // Branch hints: never-predicted-taken arc agreement.
    const BranchHints HS = computeBranchHints(Unit, *CSP.Cfgs, WStatic);
    const BranchHints HP = computeBranchHints(Unit, *CSP.Cfgs, WProfile);
    std::set<std::tuple<uint32_t, uint32_t, uint32_t>> SS, SP;
    for (const BranchHints::ColdArc &A : HS.NeverTaken)
      SS.insert({A.Fid, A.Block, A.Slot});
    for (const BranchHints::ColdArc &A : HP.NeverTaken)
      SP.insert({A.Fid, A.Block, A.Slot});
    R.StaticNeverTaken = SS.size();
    R.ProfileNeverTaken = SP.size();
    R.HintAgreement = jaccard(SS, SP);

    if (Options.MeasureNative)
      R.Native =
          measureNative(Unit, *CSP.Cfgs, CSP.Spec->Inputs[EvalIdx],
                        Layouts[0], R.Layout[0].Cost, RunOpts);

    // Function ordering (the Pettis–Hansen second half): each source
    // computes its order, all orders are costed under the held-out
    // evaluation profile's call-site counts.
    const WeightSource WEval =
        weightsFromProfile(Unit, CSP.Profiles[EvalIdx], "eval");
    R.FuncOrderIdentityCost =
        functionOrderCost(Unit, *CSP.CG, WEval, identityFunctionOrder(Unit));
    FunctionOrder Orders[3];
    for (int S = 0; S < 3; ++S) {
      Orders[S] = computeFunctionOrder(Unit, *CSP.CG, *Sources[S]);
      FuncOrderSourceResult FR;
      FR.Source = Sources[S]->Origin;
      FR.Cost = functionOrderCost(Unit, *CSP.CG, WEval, Orders[S]);
      FR.Reduction = R.FuncOrderIdentityCost > 0
                         ? (R.FuncOrderIdentityCost - FR.Cost) /
                               R.FuncOrderIdentityCost
                         : 0.0;
      FR.NumChains = Orders[S].NumChains;
      FR.Reordered = !Orders[S].isIdentity();
      R.FuncOrder.push_back(std::move(FR));
    }
    R.FuncOrderOverlap = functionOrderOverlap(Unit, Orders[0], Orders[1]);
  }

  if (DoInline) {
    std::set<uint32_t> SiteSets[3];
    for (int S = 0; S < 3; ++S) {
      InlineSourceResult IR;
      IR.Source = Sources[S]->Origin;
      // Inlining mutates the program, so each variant gets a fresh
      // compile; ids are stable across compiles of the same source, so
      // the precomputed weights carry over.
      CompiledSuiteProgram Fresh = compileProgramOnly(*CSP.Spec);
      if (!Fresh.Ok) {
        IR.Verified = false;
        IR.VerifyDetail = "recompile failed: " + Fresh.Error;
        R.Inline.push_back(std::move(IR));
        continue;
      }
      const InlinePlan Plan =
          planInlining(Fresh.unit(), *Fresh.Cfgs, *Fresh.CG, *Sources[S],
                       Options.Inline);
      const InlineMap Map =
          applyInlining(*Fresh.Ctx, *Fresh.Cfgs, Plan);
      for (const InlineDecision &D : Map.Applied)
        IR.Sites.push_back(D.CallSiteId);
      SiteSets[S].insert(IR.Sites.begin(), IR.Sites.end());

      for (size_t I = 0; I < CSP.Spec->Inputs.size(); ++I) {
        const RunResult Inl = runProgram(Fresh.unit(), *Fresh.Cfgs,
                                         CSP.Spec->Inputs[I], RunOpts);
        const InlineVerifyResult V =
            compareInlinedRun(BaseRuns[I], Inl, Map);
        if (!V.Match) {
          IR.Verified = false;
          if (IR.VerifyDetail.empty())
            IR.VerifyDetail =
                CSP.Spec->Inputs[I].Name + ": " + V.Detail;
        }
        if (I == EvalIdx) {
          const double Cost = Inl.LayoutCost.cost();
          IR.CostReduction = R.IdentityCost > 0
                                 ? (R.IdentityCost - Cost) /
                                       R.IdentityCost
                                 : 0.0;
          IR.CallsRemoved = BaseCost.Calls - Inl.LayoutCost.Calls;
        }
      }
      R.Inline.push_back(std::move(IR));
    }
    R.InlineJaccard = jaccard(SiteSets[0], SiteSets[1]);
  }

  R.Ok = true;
  return R;
}

} // namespace

OptSuiteReport sest::opt::computeOptReport(
    const std::vector<CompiledSuiteProgram> &Programs,
    const OptReportOptions &Options) {
  obs::ScopedPhase Phase("opt.report");

  std::vector<const CompiledSuiteProgram *> Scored;
  for (const CompiledSuiteProgram &P : Programs)
    if (P.Spec)
      Scored.push_back(&P);

  unsigned Jobs = Options.Jobs;
  if (Jobs == 0)
    Jobs = std::max(1u, std::thread::hardware_concurrency());

  OptSuiteReport Report;
  Report.Programs.resize(Scored.size());
  if (Jobs <= 1 || Scored.size() <= 1) {
    for (size_t I = 0; I < Scored.size(); ++I)
      Report.Programs[I] = scoreProgram(*Scored[I], Options);
  } else {
    // Per-program private contexts (telemetry on a per-worker trace
    // track, plus the decision log) merged back in program order, so
    // the ambient report is identical for every job count.
    obs::TaskCapture Cap;
    std::vector<obs::TaskCapture::Slot> Slots(Scored.size());
    std::atomic<size_t> Next{0};
    auto Worker = [&](uint32_t Track) {
      std::string Name = "worker-" + std::to_string(Track);
      for (size_t I; (I = Next.fetch_add(1)) < Scored.size();)
        Cap.run(Slots[I], Track, Name, [&] {
          Report.Programs[I] = scoreProgram(*Scored[I], Options);
        });
    };
    std::vector<std::thread> Pool;
    const unsigned N = std::min<size_t>(Jobs, Scored.size());
    Pool.reserve(N);
    for (unsigned I = 0; I < N; ++I)
      Pool.emplace_back(Worker, I + 1);
    for (std::thread &T : Pool)
      T.join();
    for (obs::TaskCapture::Slot &S : Slots)
      Cap.merge(S);
  }

  // Suite aggregation.
  size_t JaccardCount = 0;
  size_t FuncOrderCount = 0;
  for (const OptProgramReport &P : Report.Programs) {
    if (!P.Ok)
      continue;
    for (const LayoutSourceResult &L : P.Layout) {
      const double Delta = P.IdentityCost - L.Cost;
      if (L.Source == "static")
        Report.StaticTotalReduction += Delta;
      else if (L.Source == "profile")
        Report.ProfileTotalReduction += Delta;
      else
        Report.OracleTotalReduction += Delta;
    }
    if (!P.VmCrossCheckOk)
      Report.AllCrossChecksOk = false;
    for (const InlineSourceResult &I : P.Inline)
      if (!I.Verified)
        Report.AllInlineVerified = false;
    if (!P.Inline.empty()) {
      Report.MeanInlineJaccard += P.InlineJaccard;
      ++JaccardCount;
    }
    for (const FuncOrderSourceResult &F : P.FuncOrder) {
      const double Delta = P.FuncOrderIdentityCost - F.Cost;
      if (F.Source == "static")
        Report.StaticFuncOrderReduction += Delta;
      else if (F.Source == "profile")
        Report.ProfileFuncOrderReduction += Delta;
    }
    if (!P.FuncOrder.empty()) {
      Report.MeanFuncOrderOverlap += P.FuncOrderOverlap;
      ++FuncOrderCount;
    }
  }
  if (JaccardCount)
    Report.MeanInlineJaccard /= static_cast<double>(JaccardCount);
  if (FuncOrderCount)
    Report.MeanFuncOrderOverlap /= static_cast<double>(FuncOrderCount);
  if (Report.ProfileFuncOrderReduction > 0)
    Report.FuncOrderRecovery = Report.StaticFuncOrderReduction /
                               Report.ProfileFuncOrderReduction;
  else
    Report.FuncOrderRecovery = 1.0;
  if (Report.ProfileTotalReduction > 0)
    Report.StaticRecoveryRatio =
        Report.StaticTotalReduction / Report.ProfileTotalReduction;
  else
    Report.StaticRecoveryRatio = 1.0;
  Report.MeetsRecoveryFloor =
      Report.StaticRecoveryRatio >= Options.StaticRecoveryFloor;

  obs::counterAdd("opt.report.programs", Report.Programs.size());
  return Report;
}

std::string sest::opt::optReportJson(const OptSuiteReport &Report,
                                     const OptReportOptions &Options) {
  const bool DoLayout = Options.Passes != OptPassSet::Inline;
  const bool DoInline = Options.Passes != OptPassSet::Layout;

  JsonWriter W;
  W.beginObject();
  W.member("schema", "sest-opt-report/1");
  W.member("passes", optPassSetName(Options.Passes));
  W.member("engine", interpEngineName(Options.Engine));
  W.member("native_timing", Options.MeasureNative);
  W.key("cost_weights").beginObject();
  W.member("fall_through", LayoutCostCounters::CostFallThrough);
  W.member("taken", LayoutCostCounters::CostTaken);
  W.member("call", LayoutCostCounters::CostCall);
  W.member("return", LayoutCostCounters::CostReturn);
  W.endObject();

  W.key("programs").beginArray();
  for (const OptProgramReport &P : Report.Programs) {
    W.beginObject();
    W.member("name", P.Name);
    W.member("program_hash", P.ProgramHash);
    W.member("ok", P.Ok);
    if (!P.Ok) {
      W.member("error", P.Error);
      W.endObject();
      continue;
    }
    W.member("eval_input", P.EvalInput);
    W.member("identity_cost", P.IdentityCost);
    if (DoLayout) {
      W.key("layout").beginObject();
      W.key("sources").beginArray();
      for (const LayoutSourceResult &L : P.Layout) {
        W.beginObject();
        W.member("source", L.Source);
        W.member("cost", L.Cost);
        W.member("reduction", L.Reduction);
        W.member("reordered_functions", L.ReorderedFunctions);
        W.member("outlined_blocks", L.OutlinedBlocks);
        W.endObject();
      }
      W.endArray();
      W.member("static_vs_profile_pair_overlap", P.LayoutPairOverlap);
      W.member("vm_crosscheck_ok", P.VmCrossCheckOk);
      W.endObject();
      W.key("func_order").beginObject();
      W.member("identity_cost", P.FuncOrderIdentityCost);
      W.key("sources").beginArray();
      for (const FuncOrderSourceResult &F : P.FuncOrder) {
        W.beginObject();
        W.member("source", F.Source);
        W.member("cost", F.Cost);
        W.member("reduction", F.Reduction);
        W.member("chains", F.NumChains);
        W.member("reordered", F.Reordered);
        W.endObject();
      }
      W.endArray();
      W.member("static_vs_profile_adjacency", P.FuncOrderOverlap);
      W.endObject();
      W.key("hints").beginObject();
      W.member("static_never_taken", P.StaticNeverTaken);
      W.member("profile_never_taken", P.ProfileNeverTaken);
      W.member("agreement", P.HintAgreement);
      W.endObject();
      if (Options.MeasureNative) {
        // The wall/compile ms fields are the report's only
        // non-deterministic values (see OptReportOptions).
        W.key("native").beginObject();
        W.member("available", P.Native.Available);
        if (!P.Native.Available) {
          W.member("detail", P.Native.Detail);
        } else {
          W.member("identity_wall_ms", P.Native.IdentityWallMs);
          W.member("layout_wall_ms", P.Native.LayoutWallMs);
          W.member("identity_compile_ms", P.Native.IdentityCompileMs);
          W.member("layout_compile_ms", P.Native.LayoutCompileMs);
          W.member("profiles_match", P.Native.ProfilesMatch);
          W.member("layout_cost_match", P.Native.LayoutCostMatch);
        }
        W.endObject();
      }
    }
    if (DoInline) {
      W.key("inline").beginObject();
      W.key("sources").beginArray();
      for (const InlineSourceResult &I : P.Inline) {
        W.beginObject();
        W.member("source", I.Source);
        W.key("sites").beginArray();
        for (uint32_t Id : I.Sites)
          W.value(Id);
        W.endArray();
        W.member("verified", I.Verified);
        if (!I.Verified)
          W.member("verify_detail", I.VerifyDetail);
        W.member("cost_reduction", I.CostReduction);
        W.member("calls_removed", I.CallsRemoved);
        W.endObject();
      }
      W.endArray();
      W.member("static_vs_profile_jaccard", P.InlineJaccard);
      W.endObject();
    }
    W.endObject();
  }
  W.endArray();

  W.key("suite").beginObject();
  uint64_t ScoredCount = 0;
  for (const OptProgramReport &P : Report.Programs)
    if (P.Ok)
      ++ScoredCount;
  W.member("programs_scored", ScoredCount);
  if (DoLayout) {
    W.key("layout").beginObject();
    W.member("static_total_reduction", Report.StaticTotalReduction);
    W.member("profile_total_reduction", Report.ProfileTotalReduction);
    W.member("oracle_total_reduction", Report.OracleTotalReduction);
    W.member("static_recovery_ratio", Report.StaticRecoveryRatio);
    W.member("recovery_floor", Options.StaticRecoveryFloor);
    W.member("meets_floor", Report.MeetsRecoveryFloor);
    W.member("all_crosschecks_ok", Report.AllCrossChecksOk);
    W.endObject();
    W.key("func_order").beginObject();
    W.member("static_reduction", Report.StaticFuncOrderReduction);
    W.member("profile_reduction", Report.ProfileFuncOrderReduction);
    W.member("static_recovery", Report.FuncOrderRecovery);
    W.member("mean_adjacency", Report.MeanFuncOrderOverlap);
    W.endObject();
  }
  if (DoInline) {
    W.key("inline").beginObject();
    W.member("mean_jaccard", Report.MeanInlineJaccard);
    W.member("all_verified", Report.AllInlineVerified);
    W.endObject();
  }
  W.endObject();

  W.endObject();
  return W.take();
}

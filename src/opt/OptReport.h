//===- opt/OptReport.h - End-to-end optimization scoring --------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end experiment the paper's title promises: run each
/// optimizer pass three ways — static-estimate-driven, one-profile-driven
/// (the first input), and oracle (the held-out aggregate of every input
/// except the evaluation one) — then measure on the evaluation input how
/// much dynamic layout cost each variant removes and how much the
/// decisions overlap. The headline number is the static recovery ratio:
/// the fraction of the profile-driven layout's cost reduction that the
/// purely static estimates recover (acceptance floor: 0.8, advisory).
///
/// Serialized as the sest-opt-report/1 JSON document, which contains no
/// wall-clock fields and is byte-stable across interpreter engines and
/// job counts.
///
//===----------------------------------------------------------------------===//

#ifndef OPT_OPTREPORT_H
#define OPT_OPTREPORT_H

#include "estimators/Pipeline.h"
#include "interp/Interp.h"
#include "opt/FuncOrder.h"
#include "opt/Inline.h"
#include "opt/Layout.h"
#include "opt/WeightSource.h"
#include "suite/SuiteRunner.h"

#include <string>
#include <vector>

namespace sest {
namespace opt {

/// Which passes the report (or sestc --optimize) exercises.
enum class OptPassSet {
  Layout,
  Inline,
  All,
};

/// Configuration for one report run.
struct OptReportOptions {
  OptPassSet Passes = OptPassSet::All;
  EstimatorOptions Est;
  LayoutOptions Layout;
  InlineOptions Inline;
  InterpEngine Engine = InterpEngine::Bytecode;
  /// Worker threads across programs (1 = serial, 0 = all cores).
  /// Results are byte-identical for every value.
  unsigned Jobs = 1;
  /// Advisory floor on the suite static recovery ratio.
  double StaticRecoveryFloor = 0.8;
  /// Also compile layout-on and layout-off native binaries from the
  /// static layout plan (the same plan the classifier scored) and time
  /// them on the evaluation input. Wall-clock fields are the one
  /// exception to the report's byte-stability guarantee; every other
  /// field stays deterministic. No-op when no host C compiler exists.
  bool MeasureNative = false;
};

/// One weight source's layout outcome on one program.
struct LayoutSourceResult {
  std::string Source; ///< "static" | "profile" | "oracle".
  double Cost = 0.0;  ///< Dynamic layout cost on the evaluation input.
  double Reduction = 0.0; ///< (identity - cost) / identity.
  uint32_t ReorderedFunctions = 0;
  uint32_t OutlinedBlocks = 0; ///< Blocks outlined past FirstColdPos.
};

/// One weight source's inlining outcome on one program.
struct InlineSourceResult {
  std::string Source;
  std::vector<uint32_t> Sites; ///< Applied call-site ids, plan order.
  bool Verified = true; ///< Differential check passed on every input.
  std::string VerifyDetail; ///< First mismatch, empty when verified.
  double CostReduction = 0.0; ///< Layout-cost reduction on eval input.
  uint64_t CallsRemoved = 0;  ///< Dynamic calls removed on eval input.
};

/// One weight source's function-ordering outcome on one program. Every
/// source's order is costed under the held-out evaluation profile's
/// call-site counts (functionOrderCost), so the comparison is
/// apples-to-apples with the layout scoring discipline.
struct FuncOrderSourceResult {
  std::string Source;
  double Cost = 0.0;      ///< Locality cost under eval-input weights.
  double Reduction = 0.0; ///< (identity - cost) / identity.
  uint32_t NumChains = 0;
  bool Reordered = false; ///< Order differs from identity.
};

/// Native-tier measurement for one program (MeasureNative only): the
/// static-weight layout plan, compiled layout-true into a real binary
/// and raced against the identity-layout binary on the evaluation
/// input. The deterministic fields double as an end-to-end check that
/// code motion never changes behavior: both binaries must produce
/// bit-identical profiles, and the layout binary's dynamic layout cost
/// must equal the classifier's reclassified prediction.
struct NativeTimingResult {
  bool Available = false; ///< Host compiler found and both builds ok.
  std::string Detail;     ///< Capability/compile diagnostic when not.
  double IdentityWallMs = 0.0; ///< Best-of-3 eval run, identity layout.
  double LayoutWallMs = 0.0;   ///< Best-of-3 eval run, static layout.
  double IdentityCompileMs = 0.0; ///< Emission + host cc + dlopen.
  double LayoutCompileMs = 0.0;
  bool ProfilesMatch = false;   ///< Binaries' profiles bit-identical.
  bool LayoutCostMatch = false; ///< Native cost == classifier's cost.
};

/// Everything measured for one program.
struct OptProgramReport {
  std::string Name;
  /// support::contentHash64 of the program source (16 hex digits); the
  /// same identity the analysis service and the accuracy report use.
  std::string ProgramHash;
  std::string EvalInput; ///< Held-out input the costs are measured on.
  bool Ok = false;
  std::string Error;
  double IdentityCost = 0.0;
  std::vector<LayoutSourceResult> Layout;
  /// Real static-layout VM run matches the reclassified prediction.
  bool VmCrossCheckOk = true;
  /// Static vs profile layout agreement: shared adjacent block pairs
  /// over the profile layout's pairs.
  double LayoutPairOverlap = 0.0;
  std::vector<InlineSourceResult> Inline;
  /// Jaccard overlap of static vs profile applied inline site sets.
  double InlineJaccard = 0.0;
  /// Function ordering (the Pettis–Hansen second half), scored like
  /// layout: identity-order locality cost on the evaluation input, one
  /// result per weight source, and static-vs-profile adjacency overlap.
  double FuncOrderIdentityCost = 0.0;
  std::vector<FuncOrderSourceResult> FuncOrder;
  double FuncOrderOverlap = 0.0;
  /// Branch hints: never-predicted-taken arc agreement (Jaccard).
  uint64_t StaticNeverTaken = 0;
  uint64_t ProfileNeverTaken = 0;
  double HintAgreement = 0.0;
  /// Layout-true native timing (filled only with MeasureNative).
  NativeTimingResult Native;
};

/// The whole-suite report.
struct OptSuiteReport {
  std::vector<OptProgramReport> Programs;
  // Suite totals over programs with Ok == true.
  double StaticTotalReduction = 0.0;  ///< Σ (identity - static cost).
  double ProfileTotalReduction = 0.0; ///< Σ (identity - profile cost).
  double OracleTotalReduction = 0.0;
  /// StaticTotalReduction / ProfileTotalReduction (1.0 when the
  /// profile-driven layout found nothing to improve).
  double StaticRecoveryRatio = 1.0;
  bool MeetsRecoveryFloor = true;
  bool AllInlineVerified = true;
  bool AllCrossChecksOk = true;
  double MeanInlineJaccard = 0.0;
  // Function-ordering totals (same discipline as the layout totals).
  double StaticFuncOrderReduction = 0.0;
  double ProfileFuncOrderReduction = 0.0;
  /// StaticFuncOrderReduction / ProfileFuncOrderReduction (1.0 when the
  /// profile-driven order found nothing to improve).
  double FuncOrderRecovery = 1.0;
  double MeanFuncOrderOverlap = 0.0;
};

/// Scores the passes over compiled-and-profiled programs (skipping
/// failed ones). Parallel across programs; byte-identical results for
/// every Jobs value and both engines.
OptSuiteReport
computeOptReport(const std::vector<CompiledSuiteProgram> &Programs,
                 const OptReportOptions &Options = {});

/// Serializes as sest-opt-report/1.
std::string optReportJson(const OptSuiteReport &Report,
                          const OptReportOptions &Options = {});

/// Short name for an OptPassSet ("layout", "inline", "all").
const char *optPassSetName(OptPassSet Passes);

} // namespace opt
} // namespace sest

#endif // OPT_OPTREPORT_H

//===- opt/Pass.cpp - Composable optimizer passes -------------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "opt/Pass.h"

#include "obs/Telemetry.h"
#include "support/Hash.h"
#include "support/Json.h"

#include <algorithm>
#include <cmath>

using namespace sest;
using namespace sest::opt;

const char *opt::passKindName(PassKind K) {
  switch (K) {
  case PassKind::Layout:
    return "layout";
  case PassKind::Inline:
    return "inline";
  case PassKind::FuncOrder:
    return "funcorder";
  }
  return "?";
}

bool opt::parsePassKind(std::string_view Name, PassKind &K) {
  if (Name == "layout") {
    K = PassKind::Layout;
    return true;
  }
  if (Name == "inline") {
    K = PassKind::Inline;
    return true;
  }
  if (Name == "funcorder") {
    K = PassKind::FuncOrder;
    return true;
  }
  return false;
}

namespace {

/// The config's order with dead passes removed: TopK == 0 means the
/// inline pass selects nothing, so "inlining off" is one canonical
/// point no matter where the pass sat in the list.
std::vector<PassKind> canonicalOrder(const TuneConfig &C) {
  std::vector<PassKind> Out;
  for (PassKind K : C.Order) {
    if (K == PassKind::Inline && C.Inline.TopK == 0)
      continue;
    if (std::find(Out.begin(), Out.end(), K) == Out.end())
      Out.push_back(K);
  }
  return Out;
}

} // namespace

bool TuneConfig::hasPass(PassKind K) const {
  std::vector<PassKind> Canon = canonicalOrder(*this);
  return std::find(Canon.begin(), Canon.end(), K) != Canon.end();
}

std::string TuneConfig::orderString() const {
  std::string Out;
  for (PassKind K : canonicalOrder(*this)) {
    if (!Out.empty())
      Out += ',';
    Out += passKindName(K);
  }
  return Out;
}

uint64_t TuneConfig::contentHash() const {
  HashBuilder H("tune-config");
  H.add(orderString());
  H.addDouble(Layout.ColdFraction);
  if (hasPass(PassKind::Inline)) {
    H.addU64(Inline.TopK);
    H.addU64(Inline.MaxCalleeBlocks);
    H.addU64(Inline.MaxTotalGrowthBlocks);
  }
  H.addDouble(FuncOrder.DistanceCost);
  return H.digest();
}

bool TuneConfig::parseOrderString(std::string_view List,
                                  std::vector<PassKind> &Out,
                                  std::string *Err) {
  Out.clear();
  size_t Pos = 0;
  while (Pos <= List.size()) {
    size_t Comma = List.find(',', Pos);
    std::string_view Name = List.substr(
        Pos, Comma == std::string_view::npos ? List.size() - Pos
                                             : Comma - Pos);
    PassKind K;
    if (!parsePassKind(Name, K)) {
      if (Err)
        *Err = "unknown pass '" + std::string(Name) + "'";
      return false;
    }
    if (std::find(Out.begin(), Out.end(), K) != Out.end()) {
      if (Err)
        *Err = "duplicate pass '" + std::string(Name) + "'";
      return false;
    }
    Out.push_back(K);
    if (Comma == std::string_view::npos)
      break;
    Pos = Comma + 1;
  }
  if (Out.empty()) {
    if (Err)
      *Err = "empty pass list";
    return false;
  }
  return true;
}

std::string TuneConfig::toJson() const {
  JsonWriter W;
  W.beginObject();
  W.member("schema", "sest-tune-config/1");
  W.key("passes").beginArray();
  for (PassKind K : canonicalOrder(*this))
    W.value(passKindName(K));
  W.endArray();
  W.key("layout").beginObject();
  W.member("cold_fraction", Layout.ColdFraction);
  W.endObject();
  W.key("inline").beginObject();
  W.member("top_k", static_cast<uint64_t>(Inline.TopK));
  W.member("max_callee_blocks", static_cast<uint64_t>(Inline.MaxCalleeBlocks));
  W.member("max_total_growth_blocks",
           static_cast<uint64_t>(Inline.MaxTotalGrowthBlocks));
  W.endObject();
  W.key("funcorder").beginObject();
  W.member("distance_cost", FuncOrder.DistanceCost);
  W.endObject();
  W.endObject();
  return W.take();
}

bool TuneConfig::fromJson(std::string_view Json, TuneConfig &Out,
                          std::string *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };
  std::optional<JsonValue> Doc = parseJson(Json);
  if (!Doc || !Doc->isObject())
    return Fail("not a JSON object");
  TuneConfig C;
  C.Order.clear();
  bool SawPasses = false;
  for (const auto &[Key, V] : Doc->Members) {
    if (Key == "schema") {
      if (!V.isString() || V.StringVal != "sest-tune-config/1")
        return Fail("unsupported schema (want sest-tune-config/1)");
    } else if (Key == "passes") {
      if (!V.isArray())
        return Fail("'passes' must be an array of pass names");
      SawPasses = true;
      for (const JsonValue &P : V.Items) {
        PassKind K;
        if (!P.isString() || !parsePassKind(P.StringVal, K))
          return Fail("unknown pass in 'passes'");
        if (std::find(C.Order.begin(), C.Order.end(), K) != C.Order.end())
          return Fail("duplicate pass '" + P.StringVal + "'");
        C.Order.push_back(K);
      }
    } else if (Key == "layout") {
      if (!V.isObject())
        return Fail("'layout' must be an object");
      for (const auto &[LK, LV] : V.Members) {
        if (LK == "cold_fraction" && LV.isNumber() && LV.NumberVal >= 0.0)
          C.Layout.ColdFraction = LV.NumberVal;
        else
          return Fail("bad layout knob '" + LK + "'");
      }
    } else if (Key == "inline") {
      if (!V.isObject())
        return Fail("'inline' must be an object");
      for (const auto &[IK, IV] : V.Members) {
        if (!IV.isNumber() || IV.NumberVal < 0.0)
          return Fail("bad inline knob '" + IK + "'");
        if (IK == "top_k")
          C.Inline.TopK = static_cast<unsigned>(IV.NumberVal);
        else if (IK == "max_callee_blocks")
          C.Inline.MaxCalleeBlocks = static_cast<size_t>(IV.NumberVal);
        else if (IK == "max_total_growth_blocks")
          C.Inline.MaxTotalGrowthBlocks = static_cast<size_t>(IV.NumberVal);
        else
          return Fail("bad inline knob '" + IK + "'");
      }
    } else if (Key == "funcorder") {
      if (!V.isObject())
        return Fail("'funcorder' must be an object");
      for (const auto &[FK, FV] : V.Members) {
        if (FK == "distance_cost" && FV.isNumber() && FV.NumberVal >= 0.0)
          C.FuncOrder.DistanceCost = FV.NumberVal;
        else
          return Fail("bad funcorder knob '" + FK + "'");
      }
    } else {
      return Fail("unknown key '" + Key + "'");
    }
  }
  if (!SawPasses || C.Order.empty())
    return Fail("'passes' must name at least one pass");
  Out = std::move(C);
  return true;
}

bool TuneConfig::canned(std::string_view Name, TuneConfig &Out) {
  TuneConfig C;
  if (Name == "layout")
    C.Order = {PassKind::Layout};
  else if (Name == "inline")
    C.Order = {PassKind::Inline};
  else if (Name == "all")
    // The historical presentation order: layout decisions are made on
    // the pristine CFG, then inlining — bit-identical to the
    // pre-pipeline `--optimize all` plumbing.
    C.Order = {PassKind::Layout, PassKind::Inline};
  else if (Name == "funcorder")
    C.Order = {PassKind::FuncOrder};
  else
    return false;
  Out = std::move(C);
  return true;
}

//===----------------------------------------------------------------------===//
// Weight + layout extension across inlining
//===----------------------------------------------------------------------===//

void opt::extendWeightsAfterInline(WeightSource &W,
                                   const TranslationUnit &Unit,
                                   const CfgModule &Cfgs,
                                   const InlineMap &M) {
  if (M.Applied.empty())
    return;
  const WeightSource Old = W;
  const size_t NumF = Unit.Functions.size();
  if (W.BlockWeights.size() < NumF)
    W.BlockWeights.resize(NumF);
  if (W.ArcWeights.size() < NumF)
    W.ArcWeights.resize(NumF);

  // Regions per caller, in creation order (EntryBlock ascending). A
  // region's blocks occupy the id range ending at its trampoline
  // (EntryBlock), so a cloned block belongs to the first region whose
  // EntryBlock is >= its id.
  std::vector<std::vector<const InlineMap::RegionEntry *>> ByCaller(NumF);
  for (const InlineMap::RegionEntry &R : M.Regions)
    if (R.CallerFid < NumF)
      ByCaller[R.CallerFid].push_back(&R);
  for (auto &V : ByCaller)
    std::sort(V.begin(), V.end(),
              [](const InlineMap::RegionEntry *A,
                 const InlineMap::RegionEntry *B) {
                return A->EntryBlock < B->EntryBlock;
              });

  auto SiteWeight = [&Old](const InlineMap::RegionEntry &R) {
    double Wt = Old.callSiteWeight(R.CallSiteId);
    return Wt > 0.0 ? Wt : 0.0;
  };
  auto RegionScale = [&Old, &SiteWeight](const InlineMap::RegionEntry &R) {
    double CalleeW = Old.functionWeight(R.CalleeFid);
    return CalleeW > 0.0 ? SiteWeight(R) / CalleeW : 1.0;
  };

  for (size_t Fid = 0; Fid < NumF && Fid < M.CountOrigin.size(); ++Fid) {
    const uint32_t OrigN =
        Fid < M.OrigNumBlocks.size() ? M.OrigNumBlocks[Fid] : 0;
    const std::vector<InlineMap::Origin> &CO = M.CountOrigin[Fid];
    if (CO.size() <= OrigN)
      continue; // Function untouched by inlining.
    const std::vector<InlineMap::Origin> &AO = M.ArcOrigin[Fid];
    const FunctionDecl *F = Unit.Functions[Fid];
    const Cfg *G = Cfgs.cfg(F);
    if (!G || G->size() != CO.size())
      continue;

    auto RegionFor =
        [&ByCaller, Fid](uint32_t B) -> const InlineMap::RegionEntry * {
      for (const InlineMap::RegionEntry *R : ByCaller[Fid])
        if (R->EntryBlock >= B)
          return R;
      return nullptr;
    };
    // Scale for weights whose origin lives in another function (a cloned
    // callee block): the fraction of the callee's executions this region
    // absorbs. Caller-origin weights transfer unscaled.
    auto ScaleFor = [&](uint32_t B, const InlineMap::Origin &O) {
      if (O.valid() && O.Fid == Fid)
        return 1.0;
      const InlineMap::RegionEntry *R = RegionFor(B);
      return R ? RegionScale(*R) : 1.0;
    };

    std::vector<double> NewBW(G->size(), 0.0);
    std::vector<std::vector<double>> NewAW(G->size());
    for (uint32_t B = 0; B < G->size(); ++B) {
      const InlineMap::Origin &BlockO = B < CO.size() ? CO[B]
                                                      : InlineMap::Origin{};
      const InlineMap::Origin &ArcO = B < AO.size() ? AO[B]
                                                    : InlineMap::Origin{};
      if (BlockO.valid()) {
        NewBW[B] =
            Old.blockWeight(BlockO.Fid, BlockO.Block) * ScaleFor(B, BlockO);
      } else if (ArcO.valid()) {
        // A continuation block: executes with its split origin.
        NewBW[B] =
            Old.blockWeight(ArcO.Fid, ArcO.Block) * ScaleFor(B, ArcO);
      } else if (const InlineMap::RegionEntry *R = RegionFor(B)) {
        // The region trampoline: once per inlined call.
        NewBW[B] = SiteWeight(*R);
      }
      const BasicBlock *BB = G->block(B);
      const size_t NS = BB->successors().size();
      NewAW[B].assign(NS, 0.0);
      if (ArcO.valid()) {
        double S = ScaleFor(B, ArcO);
        for (size_t Slot = 0; Slot < NS; ++Slot)
          NewAW[B][Slot] =
              Old.arcWeight(ArcO.Fid, ArcO.Block,
                            static_cast<uint32_t>(Slot)) *
              S;
      } else if (NS == 1) {
        // Unmapped single-successor blocks (rewired call blocks, return
        // glue, trampolines): every execution takes the one arc.
        NewAW[B][0] = NewBW[B];
      }
    }
    W.BlockWeights[Fid] = std::move(NewBW);
    W.ArcWeights[Fid] = std::move(NewAW);
  }

  // Applied sites stop paying call overhead; their callees lose the
  // absorbed invocations.
  for (const InlineDecision &D : M.Applied) {
    if (D.CallSiteId < W.CallSiteWeights.size() &&
        W.CallSiteWeights[D.CallSiteId] > 0.0) {
      double Absorbed = W.CallSiteWeights[D.CallSiteId];
      W.CallSiteWeights[D.CallSiteId] = 0.0;
      if (D.Callee) {
        uint32_t CalleeFid = D.Callee->functionId();
        if (CalleeFid < W.FunctionWeights.size())
          W.FunctionWeights[CalleeFid] =
              std::max(0.0, W.FunctionWeights[CalleeFid] - Absorbed);
      }
    }
  }
}

namespace {

/// Extends an already-computed layout over blocks the inliner appended:
/// new blocks slot in id-ascending right before the cold tail, so the
/// cold outlining boundary keeps meaning and the order stays a valid
/// permutation.
void extendLayoutAfterInline(ProgramLayout &L, const TranslationUnit &Unit,
                             const CfgModule &Cfgs) {
  if (L.Functions.size() < Unit.Functions.size())
    L.Functions.resize(Unit.Functions.size());
  for (const auto &[F, G] : Cfgs.all()) {
    FunctionLayout &FL = L.Functions[F->functionId()];
    const uint32_t N = static_cast<uint32_t>(G->size());
    const uint32_t OldN = static_cast<uint32_t>(FL.Order.size());
    if (OldN == 0 || OldN >= N)
      continue;
    std::vector<uint32_t> NewIds;
    for (uint32_t B = OldN; B < N; ++B)
      NewIds.push_back(B);
    FL.Order.insert(FL.Order.begin() + FL.FirstColdPos, NewIds.begin(),
                    NewIds.end());
    FL.FirstColdPos += static_cast<uint32_t>(NewIds.size());
    FL.Pos.assign(N, 0);
    for (uint32_t P = 0; P < N; ++P)
      FL.Pos[FL.Order[P]] = P;
  }
}

class LayoutPass final : public Pass {
public:
  PassKind kind() const override { return PassKind::Layout; }
  void run(PassContext &PC) const override {
    PC.Layout = computeBlockLayout(PC.Unit, PC.Cfgs, PC.W, PC.Config.Layout);
    PC.HasLayout = true;
  }
};

class InlinePass final : public Pass {
public:
  PassKind kind() const override { return PassKind::Inline; }
  void run(PassContext &PC) const override {
    InlinePlan Plan =
        planInlining(PC.Unit, PC.Cfgs, PC.CG, PC.W, PC.Config.Inline);
    InlineMap M = applyInlining(PC.Ctx, PC.Cfgs, Plan);
    PC.LastInlinePlan = std::move(Plan);
    if (M.Applied.empty())
      return;
    extendWeightsAfterInline(PC.W, PC.Unit, PC.Cfgs, M);
    if (PC.HasLayout)
      extendLayoutAfterInline(PC.Layout, PC.Unit, PC.Cfgs);
    PC.Inlined = std::move(M);
    PC.HasInline = true;
  }
};

class FuncOrderPass final : public Pass {
public:
  PassKind kind() const override { return PassKind::FuncOrder; }
  void run(PassContext &PC) const override {
    PC.FuncOrder = computeFunctionOrder(PC.Unit, PC.CG, PC.W);
    PC.HasFuncOrder = true;
  }
};

} // namespace

const Pass &opt::passFor(PassKind K) {
  static const LayoutPass LayoutP;
  static const InlinePass InlineP;
  static const FuncOrderPass FuncOrderP;
  switch (K) {
  case PassKind::Layout:
    return LayoutP;
  case PassKind::Inline:
    return InlineP;
  case PassKind::FuncOrder:
    return FuncOrderP;
  }
  return LayoutP;
}

Pipeline::Pipeline(const TuneConfig &TheConfig) : Config(TheConfig) {
  for (PassKind K : canonicalOrder(Config))
    Passes.push_back(&passFor(K));
}

PipelineResult Pipeline::run(AstContext &Ctx, CfgModule &Cfgs,
                             const CallGraph &CG, WeightSource W,
                             PassObserver Observer,
                             void *ObserverState) const {
  obs::ScopedPhase Phase("opt.pipeline");
  PassContext PC{Ctx,   Ctx.unit(), Cfgs,  CG, Config, std::move(W),
                 {},    false,      {},    false,
                 {},    false,      {}};
  PipelineResult R;
  for (const Pass *P : Passes) {
    P->run(PC);
    R.Trace.emplace_back(P->name());
    if (Observer)
      Observer(*P, PC, ObserverState);
  }
  obs::counterAdd("opt.pipeline.runs");
  obs::counterAdd("opt.pipeline.passes", static_cast<double>(Passes.size()));
  R.Layout = std::move(PC.Layout);
  R.HasLayout = PC.HasLayout;
  R.FuncOrder = std::move(PC.FuncOrder);
  R.HasFuncOrder = PC.HasFuncOrder;
  R.Inlined = std::move(PC.Inlined);
  R.HasInline = PC.HasInline;
  R.W = std::move(PC.W);
  return R;
}

double opt::predictedLayoutCost(const TranslationUnit &Unit,
                                const CfgModule &Cfgs, const CallGraph &CG,
                                const WeightSource &W,
                                const ProgramLayout *Layout) {
  (void)Unit;
  double Cost = 0.0;
  for (const auto &[F, G] : Cfgs.all()) {
    const uint32_t Fid = F->functionId();
    const FunctionLayout *FL = nullptr;
    if (Layout && Fid < Layout->Functions.size() &&
        Layout->Functions[Fid].Order.size() == G->size() &&
        Layout->Functions[Fid].Pos.size() == G->size())
      FL = &Layout->Functions[Fid];
    for (const auto &BPtr : G->blocks()) {
      const BasicBlock *B = BPtr.get();
      const uint32_t SrcPos = FL ? FL->Pos[B->id()] : B->id();
      const std::vector<BasicBlock *> &Succs = B->successors();
      for (size_t S = 0; S < Succs.size(); ++S) {
        double Wt = W.arcWeight(Fid, B->id(), static_cast<uint32_t>(S));
        if (Wt <= 0.0)
          continue;
        const uint32_t DstPos =
            FL ? FL->Pos[Succs[S]->id()] : Succs[S]->id();
        Cost += DstPos == SrcPos + 1
                    ? Wt * LayoutCostCounters::CostFallThrough
                    : Wt * LayoutCostCounters::CostTaken;
      }
    }
  }
  for (const CallSiteInfo &S : CG.sites()) {
    if (S.Callee && S.Callee->isBuiltin())
      continue;
    double Wt = W.callSiteWeight(S.CallSiteId);
    if (Wt <= 0.0)
      continue;
    Cost += Wt * (LayoutCostCounters::CostCall + LayoutCostCounters::CostReturn);
  }
  return Cost;
}

//===- opt/Pass.h - Composable optimizer passes -----------------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The composable pass pipeline over the optimizer: every transformation
/// (block layout, call-site inlining, function ordering) is a Pass that
/// reads and advances one PassContext, and a Pipeline (the pass
/// scheduler) runs an ordered, parameterized pass list described by an
/// explicit TuneConfig. The legacy `--optimize layout|inline|all` modes
/// are canned TuneConfigs; the autotuner (src/tune/) searches the
/// TuneConfig space with the same pipeline.
///
/// Pipeline invariants:
///  - The CallGraph is built once, on the pristine CFGs, and never
///    rebuilt (the inliner's contract: cloned call sites reuse their
///    original ids).
///  - Any pass order is valid. When inlining mutates the CFGs after a
///    layout was already computed, the layout is extended in place
///    (cloned blocks appended id-ascending per function), and the
///    WeightSource is extended so later passes see weights for cloned
///    blocks (extendWeightsAfterInline).
///  - Everything is deterministic: same config + same weights -> same
///    result, bit for bit.
///
//===----------------------------------------------------------------------===//

#ifndef OPT_PASS_H
#define OPT_PASS_H

#include "callgraph/CallGraph.h"
#include "cfg/Cfg.h"
#include "lang/Ast.h"
#include "opt/FuncOrder.h"
#include "opt/Inline.h"
#include "opt/Layout.h"
#include "opt/WeightSource.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sest {
namespace opt {

/// The passes the pipeline can schedule.
enum class PassKind {
  Layout,    ///< Basic-block chaining + cold outlining (Layout.h).
  Inline,    ///< Top-K call-site inlining (Inline.h).
  FuncOrder, ///< Function ordering by call arcs (FuncOrder.h).
};

/// Stable pass name ("layout", "inline", "funcorder").
const char *passKindName(PassKind K);

/// Parses a pass name; returns false on an unknown name.
bool parsePassKind(std::string_view Name, PassKind &K);

/// The explicit, serializable optimizer configuration: which passes run,
/// in which order, with which knobs. This is the point in the search
/// space the autotuner moves through.
struct TuneConfig {
  /// Pass execution order. Each pass appears at most once; an absent
  /// pass does not run. The default is the tuner's composition order
  /// (inline first so layout sees the final CFG).
  std::vector<PassKind> Order = {PassKind::Inline, PassKind::Layout};
  /// Layout knobs (cold-chain outlining boundary).
  LayoutOptions Layout;
  /// Inlining budgets. TopK == 0 disables the inline pass even when it
  /// is listed in Order (the canonical "inlining off" point).
  InlineOptions Inline;
  /// Function-ordering knobs.
  FuncOrderOptions FuncOrder;

  bool hasPass(PassKind K) const;

  /// Content hash over every field that influences the pipeline result
  /// (domain "tune-config"). TopK == 0 canonicalizes the inline pass
  /// away first, so "inline disabled" hashes identically regardless of
  /// where the dead pass sat in Order.
  uint64_t contentHash() const;

  /// The order as "inline,layout" (canonicalized like contentHash).
  std::string orderString() const;

  /// Parses a comma-separated pass list ("layout,inline,funcorder").
  /// Rejects unknown and duplicate passes.
  static bool parseOrderString(std::string_view List,
                               std::vector<PassKind> &Out,
                               std::string *Err = nullptr);

  /// Serializes as a sest-tune-config/1 JSON document.
  std::string toJson() const;

  /// Parses a sest-tune-config/1 document (as written by toJson /
  /// sestune). Unknown keys are rejected; absent knobs keep defaults.
  static bool fromJson(std::string_view Json, TuneConfig &Out,
                       std::string *Err = nullptr);

  /// The canned configs behind the legacy CLI modes: "layout" (layout
  /// pass only), "inline" (inline pass only), "all" (layout then inline
  /// — the historical presentation order, so results are bit-identical
  /// to the pre-pipeline plumbing), "funcorder" (function ordering
  /// only). Returns false for an unknown name.
  static bool canned(std::string_view Name, TuneConfig &Out);
};

/// The state one pipeline run threads through its passes.
struct PassContext {
  AstContext &Ctx;              ///< Owns the AST; the inliner clones from it.
  const TranslationUnit &Unit;
  CfgModule &Cfgs;              ///< Mutated in place by the inline pass.
  const CallGraph &CG;          ///< Built pre-pipeline; never rebuilt.
  const TuneConfig &Config;
  WeightSource W;               ///< Extended in place after inlining.

  ProgramLayout Layout;         ///< Valid when HasLayout.
  bool HasLayout = false;
  FunctionOrder FuncOrder;      ///< Valid when HasFuncOrder.
  bool HasFuncOrder = false;
  InlineMap Inlined;            ///< Valid when HasInline (sites applied).
  bool HasInline = false;
  /// The plan the inline pass computed (set even when nothing applied) —
  /// lets observers show the selection exactly as it was made.
  InlinePlan LastInlinePlan;
};

/// One composable transformation. Implementations are stateless
/// singletons; all state lives in the PassContext.
class Pass {
public:
  virtual ~Pass() = default;
  virtual PassKind kind() const = 0;
  const char *name() const { return passKindName(kind()); }
  virtual void run(PassContext &PC) const = 0;
};

/// The stateless singleton implementing \p K.
const Pass &passFor(PassKind K);

/// What a pipeline run produced (the movable outputs of the final
/// PassContext).
struct PipelineResult {
  ProgramLayout Layout;
  bool HasLayout = false;
  FunctionOrder FuncOrder;
  bool HasFuncOrder = false;
  InlineMap Inlined;
  bool HasInline = false;
  /// Final weights: the input WeightSource, extended past inlining.
  WeightSource W;
  /// Pass names in execution order (canonicalized).
  std::vector<std::string> Trace;
};

/// The pass scheduler: resolves a TuneConfig to its ordered pass list
/// and runs it. Construction canonicalizes the config (TopK == 0 drops
/// the inline pass).
class Pipeline {
public:
  explicit Pipeline(const TuneConfig &Config);

  /// The passes that will run, in order.
  const std::vector<const Pass *> &passes() const { return Passes; }
  const TuneConfig &config() const { return Config; }

  /// Observer called after each pass completes, with the live context —
  /// how the CLI prints per-stage decisions at the moment they are made.
  using PassObserver = void (*)(const Pass &, const PassContext &, void *);

  /// Runs every pass over a fresh context seeded with \p W. \p Cfgs is
  /// mutated in place when the inline pass applies sites.
  PipelineResult run(AstContext &Ctx, CfgModule &Cfgs, const CallGraph &CG,
                     WeightSource W, PassObserver Observer = nullptr,
                     void *ObserverState = nullptr) const;

private:
  TuneConfig Config;
  std::vector<const Pass *> Passes;
};

/// Nomenclature alias: the Pipeline *is* the pass scheduler.
using PassScheduler = Pipeline;

/// Extends \p W in place after \p M was applied: cloned blocks (and
/// their arc slots) inherit their origin's weights scaled by the inlined
/// region's site weight over the callee's invocation weight, applied
/// sites' call-site weights drop to zero (their call overhead is gone),
/// and inlined callees' invocation weights shrink by the absorbed site
/// weight. Deterministic; weights stay non-negative.
void extendWeightsAfterInline(WeightSource &W, const TranslationUnit &Unit,
                              const CfgModule &Cfgs, const InlineMap &M);

/// The analytic dynamic-cost prediction for a pipeline outcome under
/// weights \p W: every arc slot weight classified against \p Layout
/// (null = identity) as fall-through or taken, plus call/return linkage
/// overhead for every call site with positive weight whose callee is not
/// a builtin. Uses the LayoutCostCounters weights, so for measured
/// (profile) weights it equals the interpreter's reclassified cost
/// exactly; for static weights it is the estimate-driven prediction the
/// tuner's static oracle minimizes.
double predictedLayoutCost(const TranslationUnit &Unit, const CfgModule &Cfgs,
                           const CallGraph &CG, const WeightSource &W,
                           const ProgramLayout *Layout);

} // namespace opt
} // namespace sest

#endif // OPT_PASS_H

//===- opt/WeightSource.cpp - Unified optimization weights ----------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "opt/WeightSource.h"

#include "obs/Telemetry.h"

#include <algorithm>

using namespace sest;
using namespace sest::opt;

WeightSource sest::opt::weightsFromEstimate(const TranslationUnit &Unit,
                                            const CfgModule &Cfgs,
                                            const ProgramEstimate &E,
                                            const EstimatorOptions &Options,
                                            std::string Origin) {
  obs::ScopedPhase Phase("opt.weights.from_estimate");
  WeightSource W;
  W.Origin = std::move(Origin);
  W.BlockWeights = globalBlockEstimates(E);
  W.ArcWeights = globalArcEstimates(Unit, Cfgs, E, Options);
  W.FunctionWeights = E.FunctionEstimates;
  W.CallSiteWeights = E.CallSiteEstimates;
  return W;
}

WeightSource sest::opt::weightsFromProfile(const TranslationUnit &Unit,
                                           const Profile &P,
                                           std::string Origin) {
  obs::ScopedPhase Phase("opt.weights.from_profile");
  WeightSource W;
  W.Origin = std::move(Origin);
  W.BlockWeights.resize(Unit.Functions.size());
  W.ArcWeights.resize(Unit.Functions.size());
  W.FunctionWeights.assign(Unit.Functions.size(), 0.0);
  for (size_t Fid = 0; Fid < P.Functions.size() &&
                       Fid < Unit.Functions.size();
       ++Fid) {
    const FunctionProfile &FP = P.Functions[Fid];
    W.BlockWeights[Fid] = FP.BlockCounts;
    W.ArcWeights[Fid] = FP.ArcCounts;
    W.FunctionWeights[Fid] = FP.EntryCount;
  }
  W.CallSiteWeights = P.CallSiteCounts;
  return W;
}

std::vector<RankedFunction>
sest::opt::rankFunctions(const TranslationUnit &Unit,
                         const WeightSource &W) {
  std::vector<RankedFunction> Out;
  for (const FunctionDecl *F : Unit.Functions) {
    if (!F->isDefined() || F->isBuiltin())
      continue;
    Out.push_back({F, W.functionWeight(F->functionId())});
  }
  std::stable_sort(Out.begin(), Out.end(),
                   [](const RankedFunction &A, const RankedFunction &B) {
                     if (A.Weight != B.Weight)
                       return A.Weight > B.Weight;
                     return A.F->functionId() < B.F->functionId();
                   });
  return Out;
}

std::vector<RankedCallSite>
sest::opt::rankCallSites(const CallGraph &CG, const WeightSource &W) {
  std::vector<RankedCallSite> Out;
  for (const CallSiteInfo &S : CG.sites()) {
    if (S.isIndirect())
      continue;
    double Weight = W.callSiteWeight(S.CallSiteId);
    if (Weight < 0)
      continue; // Omitted by the source.
    Out.push_back({&S, Weight});
  }
  std::stable_sort(Out.begin(), Out.end(),
                   [](const RankedCallSite &A, const RankedCallSite &B) {
                     if (A.Weight != B.Weight)
                       return A.Weight > B.Weight;
                     return A.Site->CallSiteId < B.Site->CallSiteId;
                   });
  return Out;
}

//===- opt/WeightSource.h - Unified optimization weights --------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one abstraction every optimizer pass consumes: block, arc,
/// function and call-site weights for a whole program, built either from
/// a static ProgramEstimate or from a measured Profile. This is the
/// paper's thesis made operational — a pass written against WeightSource
/// cannot tell estimates from profiles, so swapping the source isolates
/// exactly how much optimization benefit the static estimators recover.
///
//===----------------------------------------------------------------------===//

#ifndef OPT_WEIGHTSOURCE_H
#define OPT_WEIGHTSOURCE_H

#include "callgraph/CallGraph.h"
#include "cfg/Cfg.h"
#include "estimators/Pipeline.h"
#include "lang/Ast.h"
#include "profile/Profile.h"

#include <string>
#include <vector>

namespace sest {
namespace opt {

/// Program-wide weights in profile shape. All vectors are indexed like
/// the corresponding Profile fields; builtins and undefined functions
/// have empty rows. Weights are non-negative except omitted call sites
/// (indirect in the static pipeline), which are -1.
struct WeightSource {
  /// Where the weights came from: "static", "profile", or "oracle"
  /// (held-out profile). Informational; passes never branch on it.
  std::string Origin;
  /// Whole-program block execution weights [function id][block id].
  std::vector<std::vector<double>> BlockWeights;
  /// Whole-program arc weights [function id][block id][successor slot].
  std::vector<std::vector<std::vector<double>>> ArcWeights;
  /// Invocation weight per function id.
  std::vector<double> FunctionWeights;
  /// Weight per call-site id; -1 for omitted (indirect) sites.
  std::vector<double> CallSiteWeights;

  double blockWeight(uint32_t Fid, uint32_t Block) const {
    if (Fid >= BlockWeights.size() || Block >= BlockWeights[Fid].size())
      return 0.0;
    return BlockWeights[Fid][Block];
  }
  double arcWeight(uint32_t Fid, uint32_t Block, uint32_t Slot) const {
    if (Fid >= ArcWeights.size() || Block >= ArcWeights[Fid].size() ||
        Slot >= ArcWeights[Fid][Block].size())
      return 0.0;
    return ArcWeights[Fid][Block][Slot];
  }
  double functionWeight(uint32_t Fid) const {
    return Fid < FunctionWeights.size() ? FunctionWeights[Fid] : 0.0;
  }
  double callSiteWeight(uint32_t SiteId) const {
    return SiteId < CallSiteWeights.size() ? CallSiteWeights[SiteId] : -1.0;
  }
};

/// Builds weights from a static estimate: global block estimates, arc
/// estimates derived from the cached branch predictions, function
/// invocation estimates, and call-site frequencies.
WeightSource weightsFromEstimate(const TranslationUnit &Unit,
                                 const CfgModule &Cfgs,
                                 const ProgramEstimate &E,
                                 const EstimatorOptions &Options,
                                 std::string Origin = "static");

/// Builds weights from a measured (or aggregated) profile. Counts are
/// used as-is — no per-entry renormalization, since optimizer decisions
/// care about absolute hotness.
WeightSource weightsFromProfile(const TranslationUnit &Unit,
                                const Profile &P,
                                std::string Origin = "profile");

/// A function ranked by invocation weight.
struct RankedFunction {
  const FunctionDecl *F = nullptr;
  double Weight = 0.0;
};

/// Defined non-builtin functions sorted hot-first (weight descending,
/// function id ascending on ties). Deterministic for identical weights.
std::vector<RankedFunction> rankFunctions(const TranslationUnit &Unit,
                                          const WeightSource &W);

/// A direct call site ranked by weight.
struct RankedCallSite {
  const CallSiteInfo *Site = nullptr;
  double Weight = 0.0;
};

/// Direct call sites sorted hot-first (weight descending, call-site id
/// ascending on ties). Indirect and omitted (-1) sites are excluded.
std::vector<RankedCallSite> rankCallSites(const CallGraph &CG,
                                          const WeightSource &W);

} // namespace opt
} // namespace sest

#endif // OPT_WEIGHTSOURCE_H

//===- profile/Profile.cpp - Execution profiles ----------------------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "profile/Profile.h"

#include "support/StringUtils.h"

#include <cassert>
#include <cstdlib>

using namespace sest;

double FunctionProfile::totalBlockCount() const {
  double Sum = 0;
  for (double C : BlockCounts)
    Sum += C;
  return Sum;
}

double Profile::totalBlockCount() const {
  double Sum = 0;
  for (const FunctionProfile &F : Functions)
    Sum += F.totalBlockCount();
  return Sum;
}

bool Profile::shapeMatches(const Profile &Other) const {
  if (Functions.size() != Other.Functions.size() ||
      CallSiteCounts.size() != Other.CallSiteCounts.size())
    return false;
  for (size_t I = 0; I < Functions.size(); ++I) {
    if (Functions[I].BlockCounts.size() !=
        Other.Functions[I].BlockCounts.size())
      return false;
    if (Functions[I].ArcCounts.size() != Other.Functions[I].ArcCounts.size())
      return false;
    for (size_t B = 0; B < Functions[I].ArcCounts.size(); ++B)
      if (Functions[I].ArcCounts[B].size() !=
          Other.Functions[I].ArcCounts[B].size())
        return false;
  }
  return true;
}

Profile sest::aggregateProfiles(const std::vector<const Profile *> &Profiles) {
  assert(!Profiles.empty() && "cannot aggregate zero profiles");

  // Common target: the mean total block count.
  double TargetTotal = 0;
  for (const Profile *P : Profiles)
    TargetTotal += P->totalBlockCount();
  TargetTotal /= static_cast<double>(Profiles.size());

  Profile Out;
  Out.ProgramName = Profiles.front()->ProgramName;
  Out.InputName = "<aggregate>";
  Out.Functions.resize(Profiles.front()->Functions.size());
  Out.CallSiteCounts.assign(Profiles.front()->CallSiteCounts.size(), 0.0);
  for (size_t F = 0; F < Out.Functions.size(); ++F) {
    const FunctionProfile &Shape = Profiles.front()->Functions[F];
    Out.Functions[F].BlockCounts.assign(Shape.BlockCounts.size(), 0.0);
    Out.Functions[F].ArcCounts.resize(Shape.ArcCounts.size());
    for (size_t B = 0; B < Shape.ArcCounts.size(); ++B)
      Out.Functions[F].ArcCounts[B].assign(Shape.ArcCounts[B].size(), 0.0);
  }

  for (const Profile *P : Profiles) {
    assert(Profiles.front()->shapeMatches(*P) &&
           "aggregating profiles of different programs");
    double Total = P->totalBlockCount();
    double Scale = Total > 0 ? TargetTotal / Total : 0.0;
    for (size_t F = 0; F < Out.Functions.size(); ++F) {
      const FunctionProfile &In = P->Functions[F];
      FunctionProfile &Acc = Out.Functions[F];
      Acc.EntryCount += In.EntryCount * Scale;
      for (size_t B = 0; B < In.BlockCounts.size(); ++B)
        Acc.BlockCounts[B] += In.BlockCounts[B] * Scale;
      for (size_t B = 0; B < In.ArcCounts.size(); ++B)
        for (size_t S = 0; S < In.ArcCounts[B].size(); ++S)
          Acc.ArcCounts[B][S] += In.ArcCounts[B][S] * Scale;
    }
    for (size_t C = 0; C < P->CallSiteCounts.size(); ++C)
      Out.CallSiteCounts[C] += P->CallSiteCounts[C] * Scale;
    Out.TotalCycles += P->TotalCycles * Scale;
  }
  return Out;
}

Profile sest::aggregateProfiles(const std::vector<Profile> &Profiles) {
  std::vector<const Profile *> Ptrs;
  Ptrs.reserve(Profiles.size());
  for (const Profile &P : Profiles)
    Ptrs.push_back(&P);
  return aggregateProfiles(Ptrs);
}

Profile sest::aggregateExcept(const std::vector<Profile> &Profiles,
                              size_t LeaveOut) {
  std::vector<const Profile *> Ptrs;
  for (size_t I = 0; I < Profiles.size(); ++I)
    if (I != LeaveOut)
      Ptrs.push_back(&Profiles[I]);
  assert(!Ptrs.empty() && "leave-one-out needs at least two profiles");
  return aggregateProfiles(Ptrs);
}

//===----------------------------------------------------------------------===//
// Text serialization
//===----------------------------------------------------------------------===//

std::string sest::writeProfileText(const Profile &P) {
  std::string Out;
  Out += "profile " + P.ProgramName + " " + P.InputName + "\n";
  Out += "cycles " + formatDouble(P.TotalCycles, 3) + "\n";
  Out += "functions " + std::to_string(P.Functions.size()) + "\n";
  for (size_t F = 0; F < P.Functions.size(); ++F) {
    const FunctionProfile &FP = P.Functions[F];
    Out += "function " + std::to_string(F) + " entry " +
           formatDouble(FP.EntryCount, 6) + "\n";
    Out += "blocks";
    for (double C : FP.BlockCounts)
      Out += " " + formatDouble(C, 6);
    Out += "\n";
    for (size_t B = 0; B < FP.ArcCounts.size(); ++B) {
      Out += "arcs " + std::to_string(B);
      for (double C : FP.ArcCounts[B])
        Out += " " + formatDouble(C, 6);
      Out += "\n";
    }
  }
  Out += "callsites";
  for (double C : P.CallSiteCounts)
    Out += " " + formatDouble(C, 6);
  Out += "\n";
  return Out;
}

bool sest::readProfileText(const std::string &Text, Profile &Out) {
  Out = Profile();
  std::vector<std::string> Lines = splitString(Text, '\n');
  size_t LineNo = 0;
  auto NextLine = [&]() -> std::vector<std::string> {
    while (LineNo < Lines.size()) {
      if (!Lines[LineNo].empty())
        return splitString(Lines[LineNo++], ' ');
      ++LineNo;
    }
    return {};
  };

  auto Header = NextLine();
  if (Header.size() != 3 || Header[0] != "profile")
    return false;
  Out.ProgramName = Header[1];
  Out.InputName = Header[2];

  auto Cycles = NextLine();
  if (Cycles.size() != 2 || Cycles[0] != "cycles")
    return false;
  Out.TotalCycles = std::strtod(Cycles[1].c_str(), nullptr);

  auto NumFns = NextLine();
  if (NumFns.size() != 2 || NumFns[0] != "functions")
    return false;
  size_t FnCount = std::strtoull(NumFns[1].c_str(), nullptr, 10);
  Out.Functions.resize(FnCount);

  for (size_t F = 0; F < FnCount; ++F) {
    auto FnLine = NextLine();
    if (FnLine.size() != 4 || FnLine[0] != "function" ||
        FnLine[2] != "entry")
      return false;
    FunctionProfile &FP = Out.Functions[F];
    FP.EntryCount = std::strtod(FnLine[3].c_str(), nullptr);
    auto BlockLine = NextLine();
    if (BlockLine.empty() || BlockLine[0] != "blocks")
      return false;
    for (size_t I = 1; I < BlockLine.size(); ++I)
      if (!BlockLine[I].empty())
        FP.BlockCounts.push_back(std::strtod(BlockLine[I].c_str(), nullptr));
    FP.ArcCounts.resize(FP.BlockCounts.size());
    for (size_t B = 0; B < FP.BlockCounts.size(); ++B) {
      auto ArcLine = NextLine();
      if (ArcLine.size() < 2 || ArcLine[0] != "arcs")
        return false;
      size_t BlockId = std::strtoull(ArcLine[1].c_str(), nullptr, 10);
      if (BlockId >= FP.ArcCounts.size())
        return false;
      for (size_t I = 2; I < ArcLine.size(); ++I)
        if (!ArcLine[I].empty())
          FP.ArcCounts[BlockId].push_back(
              std::strtod(ArcLine[I].c_str(), nullptr));
    }
  }

  auto Sites = NextLine();
  if (Sites.empty() || Sites[0] != "callsites")
    return false;
  for (size_t I = 1; I < Sites.size(); ++I)
    if (!Sites[I].empty())
      Out.CallSiteCounts.push_back(std::strtod(Sites[I].c_str(), nullptr));
  return true;
}

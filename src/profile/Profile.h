//===- profile/Profile.h - Execution profiles -------------------*- C++ -*-===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Execution profiles: per-block, per-arc, per-function-entry and
/// per-call-site counts collected by the profiling interpreter, plus the
/// aggregation the paper uses when profiles predict other profiles ("we
/// normalized them to have the same total basic block counts, then summed
/// each block's counts", §3).
///
/// Counts are doubles: raw profiles hold exact integers, aggregated
/// profiles hold scaled sums.
///
//===----------------------------------------------------------------------===//

#ifndef PROFILE_PROFILE_H
#define PROFILE_PROFILE_H

#include <cstdint>
#include <string>
#include <vector>

namespace sest {

/// Counts for one function's CFG.
struct FunctionProfile {
  /// Executions of each basic block, indexed by block id.
  std::vector<double> BlockCounts;
  /// Traversals of each arc, indexed [block id][successor slot].
  std::vector<std::vector<double>> ArcCounts;
  /// Number of invocations of the function.
  double EntryCount = 0;

  /// Sum of all block counts.
  double totalBlockCount() const;
};

/// One program execution (or an aggregate of several).
struct Profile {
  std::string ProgramName;
  std::string InputName;
  /// Indexed by function id; builtins and undefined functions have empty
  /// entries.
  std::vector<FunctionProfile> Functions;
  /// Indexed by call-site id.
  std::vector<double> CallSiteCounts;
  /// Simulated execution cost (used by the selective-optimization
  /// experiment, Fig. 10).
  double TotalCycles = 0;

  /// Sum of block counts over all functions.
  double totalBlockCount() const;

  /// True when the shapes (function/block/arc/call-site vector sizes)
  /// match, i.e. the profiles come from the same program build.
  bool shapeMatches(const Profile &Other) const;
};

/// Aggregates \p Profiles (all from the same program): each profile is
/// scaled so its total block count equals the common target (the mean of
/// the totals), then counts are summed element-wise. Requires a non-empty,
/// shape-consistent input.
Profile aggregateProfiles(const std::vector<const Profile *> &Profiles);

/// Convenience overload.
Profile aggregateProfiles(const std::vector<Profile> &Profiles);

/// Aggregate of all profiles except \p LeaveOut — the paper's
/// cross-validation scheme ("matching each profile to the aggregate of
/// all the other profiles").
Profile aggregateExcept(const std::vector<Profile> &Profiles,
                        size_t LeaveOut);

/// Serializes a profile to a line-oriented text format.
std::string writeProfileText(const Profile &P);

/// Parses the text format back; returns false (and leaves \p Out
/// partially filled) on malformed input.
bool readProfileText(const std::string &Text, Profile &Out);

} // namespace sest

#endif // PROFILE_PROFILE_H

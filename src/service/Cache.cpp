//===- service/Cache.cpp - Sharded content-addressed LRU cache -------------===//
//
// Part of the static-estimators project. See README.md for license.
//
//===----------------------------------------------------------------------===//

#include "service/Cache.h"

#include "obs/Telemetry.h"

using namespace sest;
using namespace sest::service;

ShardedCache::ShardedCache(std::string TierName, size_t BudgetBytes,
                           unsigned Shards)
    : Tier(std::move(TierName)),
      CounterHit("service.cache." + Tier + ".hit"),
      CounterMiss("service.cache." + Tier + ".miss"),
      CounterEvict("service.cache." + Tier + ".evict"),
      GaugeBytes("service.cache." + Tier + ".bytes.high_water"),
      ShardBudget(BudgetBytes / (Shards ? Shards : 1)),
      Shards_(Shards ? Shards : 1) {}

std::shared_ptr<const void> ShardedCache::get(uint64_t Key) {
  Shard &S = shardFor(Key);
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    auto It = S.Map.find(Key);
    if (It != S.Map.end()) {
      // Refresh recency: move to the front of the LRU list.
      S.Lru.splice(S.Lru.begin(), S.Lru, It->second.LruIt);
      Hits.fetch_add(1, std::memory_order_relaxed);
      obs::counterAdd(CounterHit);
      return It->second.Value;
    }
  }
  Misses.fetch_add(1, std::memory_order_relaxed);
  obs::counterAdd(CounterMiss);
  return nullptr;
}

void ShardedCache::put(uint64_t Key, std::shared_ptr<const void> Value,
                       size_t ValueBytes) {
  // Oversized values (or a zero budget = caching disabled) are not
  // admitted — admitting one would immediately evict everything else
  // and still leave the shard over budget.
  if (ShardBudget == 0 || ValueBytes > ShardBudget)
    return;

  // Evicted values are destroyed outside the shard lock: destructors of
  // large artifacts (whole ASTs) are not free, and a concurrent reader
  // may hold the last other reference.
  std::vector<std::shared_ptr<const void>> Victims;
  uint64_t Evicted = 0;
  Shard &S = shardFor(Key);
  {
    std::lock_guard<std::mutex> Lock(S.Mu);
    auto [It, Inserted] = S.Map.try_emplace(Key);
    if (!Inserted) {
      // Deterministic artifacts: the resident value equals the new one.
      S.Lru.splice(S.Lru.begin(), S.Lru, It->second.LruIt);
      return;
    }
    S.Lru.push_front(Key);
    It->second.Value = std::move(Value);
    It->second.Bytes = ValueBytes;
    It->second.LruIt = S.Lru.begin();
    S.Bytes += ValueBytes;
    Entries.fetch_add(1, std::memory_order_relaxed);
    Bytes.fetch_add(ValueBytes, std::memory_order_relaxed);

    while (S.Bytes > ShardBudget && S.Lru.size() > 1) {
      uint64_t VictimKey = S.Lru.back();
      auto VIt = S.Map.find(VictimKey);
      S.Bytes -= VIt->second.Bytes;
      Bytes.fetch_sub(VIt->second.Bytes, std::memory_order_relaxed);
      Entries.fetch_sub(1, std::memory_order_relaxed);
      Victims.push_back(std::move(VIt->second.Value));
      S.Map.erase(VIt);
      S.Lru.pop_back();
      ++Evicted;
    }
  }
  if (Evicted) {
    Evictions.fetch_add(Evicted, std::memory_order_relaxed);
    obs::counterAdd(CounterEvict, static_cast<double>(Evicted));
  }
  obs::gaugeMax(GaugeBytes,
                static_cast<double>(Bytes.load(std::memory_order_relaxed)));
}

void ShardedCache::clear() {
  for (Shard &S : Shards_) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    for (const auto &[K, E] : S.Map) {
      (void)K;
      Bytes.fetch_sub(E.Bytes, std::memory_order_relaxed);
      Entries.fetch_sub(1, std::memory_order_relaxed);
    }
    S.Map.clear();
    S.Lru.clear();
    S.Bytes = 0;
  }
}

CacheTierStats ShardedCache::stats() const {
  CacheTierStats Out;
  Out.Hits = Hits.load(std::memory_order_relaxed);
  Out.Misses = Misses.load(std::memory_order_relaxed);
  Out.Evictions = Evictions.load(std::memory_order_relaxed);
  Out.Bytes = Bytes.load(std::memory_order_relaxed);
  Out.Entries = Entries.load(std::memory_order_relaxed);
  return Out;
}
